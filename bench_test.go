package tqsim

// Benchmark harness: one testing.B target per paper table/figure plus the
// ablations DESIGN.md calls out. Each benchmark exercises the code path
// that regenerates the corresponding result; cmd/experiments prints the
// full rows/series. Reported custom metrics:
//
//   speedup        baseline wall time / TQSim wall time
//   work-ratio     TQSim kernel ops per outcome / baseline kernel ops per shot
//   fid-diff       |baseline - TQSim| normalized fidelity
//
// Benchmarks use scaled-down widths/shots so `go test -bench=.` completes
// in minutes; cmd/experiments -full runs paper-scale parameters.

import (
	"fmt"
	"testing"

	"tqsim/internal/cluster"
	"tqsim/internal/core"
	"tqsim/internal/densmat"
	"tqsim/internal/fusion"
	"tqsim/internal/gate"
	"tqsim/internal/hpcmodel"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/qmath"
	"tqsim/internal/redunelim"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
	"tqsim/internal/trajectory"
	"tqsim/internal/workloads"
)

// benchOptions are the shared scaled-down settings.
func benchOptions(seed uint64) Options {
	return Options{Seed: seed, CopyCost: 5, Epsilon: 0.05}
}

// reportComparison attaches the custom metrics to b.
func reportComparison(b *testing.B, cmp *Comparison) {
	b.ReportMetric(cmp.Speedup, "speedup")
	b.ReportMetric(cmp.WorkRatio, "work-ratio")
	b.ReportMetric(cmp.FidelityDiff, "fid-diff")
}

// BenchmarkFig01_IdealVsNoisy measures the ideal/noisy gap of Figure 1.
func BenchmarkFig01_IdealVsNoisy(b *testing.B) {
	c := workloads.QFT(10, true)
	m := SycamoreNoise()
	b.Run("ideal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunIdeal(c, 200, uint64(i))
		}
	})
	b.Run("noisy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunBaseline(c, m, 200, Options{Seed: uint64(i)})
		}
	})
}

// BenchmarkFig05_NoisyBVScaling measures the per-width noisy BV cost of
// Figure 5.
func BenchmarkFig05_NoisyBVScaling(b *testing.B) {
	m := SycamoreNoise()
	for _, w := range []int{10, 12, 14} {
		c := workloads.BV(w, workloads.BVSecret(w))
		b.Run(fmt.Sprintf("q%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunBaseline(c, m, 128, Options{Seed: uint64(i)})
			}
		})
	}
}

// BenchmarkFig09_BVMemorySpeedup measures the BV baseline/TQSim pair of
// Figure 9.
func BenchmarkFig09_BVMemorySpeedup(b *testing.B) {
	c := workloads.BV(14, workloads.BVSecret(14))
	m := SycamoreNoise()
	b.ResetTimer()
	var last *Comparison
	for i := 0; i < b.N; i++ {
		cmp, err := Compare(c, m, 600, benchOptions(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		last = cmp
	}
	reportComparison(b, last)
	b.ReportMetric(float64(last.TQSimPeakBytes), "peak-bytes")
}

// BenchmarkFig10_CopyCost profiles the state-copy cost of Figure 10.
func BenchmarkFig10_CopyCost(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = core.ProfileCopyCost(12, 50).Ratio
	}
	b.ReportMetric(ratio, "copy-cost-gates")
}

// BenchmarkFig11 measures the baseline-vs-TQSim speedup per benchmark
// class (Figure 11), one representative circuit per class.
func BenchmarkFig11(b *testing.B) {
	m := SycamoreNoise()
	cases := []string{
		"adder_n10_0", "bv_n10", "mul_n13", "qaoa_n8",
		"qft_n8", "qpe_n9_0", "qsc_n10", "qv_n10",
	}
	for _, name := range cases {
		c := BenchmarkByName(name)
		if c == nil {
			b.Fatalf("missing suite circuit %s", name)
		}
		b.Run(name, func(b *testing.B) {
			var last *Comparison
			for i := 0; i < b.N; i++ {
				cmp, err := Compare(c, m, 600, benchOptions(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				last = cmp
			}
			reportComparison(b, last)
		})
	}
}

// BenchmarkTable3_MediumCircuits measures the medium-scale pair of Table 3.
func BenchmarkTable3_MediumCircuits(b *testing.B) {
	m := SycamoreNoise()
	for _, name := range []string{"qv_n10", "qft_n12"} {
		c := BenchmarkByName(name)
		b.Run(name, func(b *testing.B) {
			var last *Comparison
			for i := 0; i < b.N; i++ {
				cmp, err := Compare(c, m, 200, benchOptions(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				last = cmp
			}
			reportComparison(b, last)
		})
	}
}

// BenchmarkFig12_FusionBackend measures TQSim on the fusion ("GPU-like")
// backend (Figure 12).
func BenchmarkFig12_FusionBackend(b *testing.B) {
	c := workloads.QSC(10, workloads.QSCDepthFor(10), 5)
	m := SycamoreNoise()
	var last *Comparison
	for i := 0; i < b.N; i++ {
		opt := benchOptions(uint64(i))
		opt.UseFusionBackend = true
		cmp, err := Compare(c, m, 600, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = cmp
	}
	reportComparison(b, last)
}

// BenchmarkFig13_Cluster measures the distributed engine and prices the
// scaling model (Figure 13).
func BenchmarkFig13_Cluster(b *testing.B) {
	m := noise.NewSycamore()
	b.Run("diststate-16nodes", func(b *testing.B) {
		c := workloads.QFT(12, true)
		for i := 0; i < b.N; i++ {
			d := cluster.NewDistState(12, 16)
			for _, g := range c.Gates {
				d.Apply(g)
			}
		}
	})
	b.Run("costmodel-sweep", func(b *testing.B) {
		c := workloads.QFT(26, true)
		var speedup float64
		for i := 0; i < b.N; i++ {
			pts := cluster.StrongScaling(c, m, 128, []int{1, 2, 4, 8, 16, 32})
			speedup = pts[len(pts)-1].Speedup
		}
		b.ReportMetric(speedup, "speedup-32nodes")
	})
}

// BenchmarkFig14_Fidelity measures the fidelity-difference pipeline
// (Figure 14).
func BenchmarkFig14_Fidelity(b *testing.B) {
	c := workloads.QPE(7, workloads.QPEPhase, true, -1)
	m := SycamoreNoise()
	var last *Comparison
	for i := 0; i < b.N; i++ {
		cmp, err := Compare(c, m, 1000, benchOptions(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		last = cmp
	}
	b.ReportMetric(last.FidelityDiff, "fid-diff")
}

// BenchmarkFig15_DensityMatrixReference measures the exact reference
// (Figure 15).
func BenchmarkFig15_DensityMatrixReference(b *testing.B) {
	c := workloads.BV(8, workloads.BVSecret(8))
	m := noise.NewSycamore()
	for i := 0; i < b.N; i++ {
		densmat.Simulate(c, m)
	}
}

// BenchmarkFig16_NoiseModels measures trajectory execution under each
// channel family (Figure 16).
func BenchmarkFig16_NoiseModels(b *testing.B) {
	c := workloads.QPE(6, workloads.QPEPhase, true, -1)
	for _, name := range []string{"DC", "TR", "AD", "PD", "ALL"} {
		m := NoiseByName(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunBaseline(c, m, 100, Options{Seed: uint64(i)})
			}
		})
	}
}

// BenchmarkFig17_Structures measures the six tree structures of the
// trade-off study (Figure 17).
func BenchmarkFig17_Structures(b *testing.B) {
	c := workloads.QPE(6, workloads.QPEPhase, true, -1)
	m := SycamoreNoise()
	for _, s := range [][]int{
		{250, 2, 2}, {20, 10, 5}, {10, 10, 10}, {5, 10, 20}, {2, 2, 250}, {250, 1, 1},
	} {
		plan := PlanStructure(c, s)
		b.Run(plan.Structure(), func(b *testing.B) {
			var ops int64
			for i := 0; i < b.N; i++ {
				res, err := RunPlan(plan, m, Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				ops = res.GateApplications
			}
			b.ReportMetric(float64(ops), "kernel-ops")
		})
	}
}

// BenchmarkFig18_QAOALandscape measures one landscape grid point pair
// (Figure 18).
func BenchmarkFig18_QAOALandscape(b *testing.B) {
	g := RandomGraph(8, 0.5, 3)
	c := QAOACircuit(g, []QAOAParams{{Gamma: 0.7, Beta: 0.3}})
	m := SycamoreNoise()
	var last *Comparison
	for i := 0; i < b.N; i++ {
		cmp, err := Compare(c, m, 300, benchOptions(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		last = cmp
	}
	reportComparison(b, last)
}

// BenchmarkFig19_RedunElim measures the redundancy-elimination analysis
// against TQSim's planning on the same circuit (Figure 19).
func BenchmarkFig19_RedunElim(b *testing.B) {
	c := workloads.QFT(10, true)
	m := noise.NewSycamore()
	b.Run("redun-elim", func(b *testing.B) {
		var nc float64
		for i := 0; i < b.N; i++ {
			nc = redunelim.Analyze(c, m, 500, uint64(i)).NormalizedComputation
		}
		b.ReportMetric(nc, "norm-comp")
	})
	b.Run("tqsim-plan", func(b *testing.B) {
		var nc float64
		for i := 0; i < b.N; i++ {
			plan := partition.Dynamic(c, m, 500, partition.DCPOptions{CopyCost: 5, Epsilon: 0.05})
			tree := float64(plan.GateWork()) + 5*float64(plan.CopyWork())
			nc = tree / (float64(plan.TotalOutcomes()) * float64(c.Len()))
		}
		b.ReportMetric(nc, "norm-comp")
	})
}

// BenchmarkFig08_GPUShotModel evaluates the Figure 8 model (cheap; included
// for completeness so every figure has a bench target).
func BenchmarkFig08_GPUShotModel(b *testing.B) {
	m := hpcmodel.DefaultA100()
	var s float64
	for i := 0; i < b.N; i++ {
		for n := 20; n <= 25; n++ {
			for _, p := range []int{1, 2, 4, 8, 16} {
				s += m.Speedup(p, n)
			}
		}
	}
	_ = s
}

// BenchmarkFig04_MemoryModel evaluates the Figure 4 curves.
func BenchmarkFig04_MemoryModel(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		for n := 10; n <= 40; n++ {
			acc += hpcmodel.StatevectorBytes(n) + hpcmodel.DensityMatrixBytes(n)
		}
	}
	_ = acc
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblation_MinLen ablates the copy-cost-derived minimum subcircuit
// length: planning with minLen 1 admits single-gate subcircuits whose copy
// overhead erodes the win.
func BenchmarkAblation_MinLen(b *testing.B) {
	c := workloads.QFT(10, true)
	m := SycamoreNoise()
	for _, cc := range []float64{0.5, 5, 20} {
		b.Run(fmt.Sprintf("copycost-%.1f", cc), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				plan := partition.Dynamic(c, m, 1000,
					partition.DCPOptions{CopyCost: cc, Epsilon: 0.05})
				speedup = plan.TheoreticalSpeedup(cc)
			}
			b.ReportMetric(speedup, "theoretical-speedup")
		})
	}
}

// BenchmarkAblation_Parallelism ablates the kernel parallelization
// threshold on a wide register.
func BenchmarkAblation_Parallelism(b *testing.B) {
	c := workloads.QFT(16, true)
	old := statevec.ParallelThreshold
	defer func() { statevec.ParallelThreshold = old }()
	for _, th := range []int{1 << 30, 1 << 14} {
		name := "parallel"
		if th == 1<<30 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			statevec.ParallelThreshold = th
			for i := 0; i < b.N; i++ {
				st := statevec.NewZero(16)
				st.ApplyAll(c.Gates)
			}
		})
	}
}

// BenchmarkAblation_FastPaths compares the specialized gate kernels with
// generic matrix application.
func BenchmarkAblation_FastPaths(b *testing.B) {
	st := statevec.NewZero(14)
	cx := NewCircuit("fast", 14).CX(0, 13).Gates[0]
	generic := cx.Matrix()
	b.Run("fast-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.Apply(cx)
		}
	})
	b.Run("generic-4x4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.Apply2Q(0, 13, generic)
		}
	})
}

// BenchmarkAblation_Sampling compares per-leaf linear-scan sampling with
// the cumulative-table path.
func BenchmarkAblation_Sampling(b *testing.B) {
	c := workloads.QFT(12, true)
	st := trajectory.IdealState(c)
	b.Run("scan-per-sample", func(b *testing.B) {
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			st.Sample(r)
		}
	})
	b.Run("cumulative-table", func(b *testing.B) {
		r := rng.New(2)
		for i := 0; i < b.N; i++ {
			st.SampleMany(256, r)
		}
	})
}

// BenchmarkKernels measures the raw gate kernels across widths — the
// engine-level numbers everything else builds on.
func BenchmarkKernels(b *testing.B) {
	for _, w := range []int{10, 14, 18} {
		st := statevec.NewZero(w)
		h := NewCircuit("k", w).H(0).Gates[0]
		cx := NewCircuit("k", w).CX(0, w-1).Gates[0]
		b.Run(fmt.Sprintf("H-q%d", w), func(b *testing.B) {
			b.SetBytes(int64(st.Bytes()))
			for i := 0; i < b.N; i++ {
				st.Apply(h)
			}
		})
		b.Run(fmt.Sprintf("CX-q%d", w), func(b *testing.B) {
			b.SetBytes(int64(st.Bytes()))
			for i := 0; i < b.N; i++ {
				st.Apply(cx)
			}
		})
		b.Run(fmt.Sprintf("copy-q%d", w), func(b *testing.B) {
			dst := statevec.NewZero(w)
			b.SetBytes(int64(st.Bytes()))
			for i := 0; i < b.N; i++ {
				dst.CopyFrom(st)
			}
		})
	}
}

// --- Kernel microbenchmarks (BenchmarkKernels_*) ---
//
// Raw per-gate-class kernel throughput, reported as amps/s (amplitudes
// visited per second, dim * iterations / elapsed). These are the numbers the
// BENCH_*.json trajectory tracks for the state-vector hot path: every
// tree-run speedup figure bottoms out here. Widths cover the sub-threshold
// serial regime (q10), the parallel regime (q20), and a cache-pressure
// point (q22, 64 MiB state). Qubit positions cover both the low-target
// contiguous-run path and the high-target strided path.

// benchKernel times g applied repeatedly to a w-qubit state.
func benchKernel(b *testing.B, w int, g gate.Gate) {
	st := statevec.NewZero(w)
	b.SetBytes(int64(st.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Apply(g)
	}
	b.ReportMetric(float64(st.Dim())*float64(b.N)/b.Elapsed().Seconds(), "amps/s")
}

// kernelWidths are the register widths every kernel class is measured at.
var kernelWidths = []int{10, 20, 22}

func BenchmarkKernels_CX(b *testing.B) {
	for _, w := range kernelWidths {
		b.Run(fmt.Sprintf("q%d/lo", w), func(b *testing.B) {
			benchKernel(b, w, gate.New(gate.KindCX, 0, 1))
		})
		b.Run(fmt.Sprintf("q%d/mid", w), func(b *testing.B) {
			benchKernel(b, w, gate.New(gate.KindCX, w/2, w/2-1))
		})
		b.Run(fmt.Sprintf("q%d/hi", w), func(b *testing.B) {
			benchKernel(b, w, gate.New(gate.KindCX, w-1, w-2))
		})
	}
}

func BenchmarkKernels_CPhase(b *testing.B) {
	for _, w := range kernelWidths {
		b.Run(fmt.Sprintf("q%d/lo-hi", w), func(b *testing.B) {
			benchKernel(b, w, gate.New(gate.KindCZ, 0, w-1))
		})
		b.Run(fmt.Sprintf("q%d/mid", w), func(b *testing.B) {
			benchKernel(b, w, gate.New(gate.KindCZ, w/2, w/2-1))
		})
	}
}

func BenchmarkKernels_Diag(b *testing.B) {
	for _, w := range kernelWidths {
		b.Run(fmt.Sprintf("q%d/T", w), func(b *testing.B) {
			benchKernel(b, w, gate.New(gate.KindT, w/2))
		})
		b.Run(fmt.Sprintf("q%d/RZ", w), func(b *testing.B) {
			benchKernel(b, w, gate.NewParam(gate.KindRZ, []float64{0.3}, w/2))
		})
	}
}

func BenchmarkKernels_1Q(b *testing.B) {
	for _, w := range kernelWidths {
		b.Run(fmt.Sprintf("q%d/lo", w), func(b *testing.B) {
			benchKernel(b, w, gate.New(gate.KindH, 0))
		})
		b.Run(fmt.Sprintf("q%d/hi", w), func(b *testing.B) {
			benchKernel(b, w, gate.New(gate.KindH, w-1))
		})
	}
}

func BenchmarkKernels_2Q(b *testing.B) {
	// CRX has no specialized fast path, so this times the generic Apply2Q
	// gather/scatter kernel.
	for _, w := range kernelWidths {
		b.Run(fmt.Sprintf("q%d/lo", w), func(b *testing.B) {
			benchKernel(b, w, gate.NewParam(gate.KindCRX, []float64{0.4}, 0, 1))
		})
		b.Run(fmt.Sprintf("q%d/hi", w), func(b *testing.B) {
			benchKernel(b, w, gate.NewParam(gate.KindCRX, []float64{0.4}, w-1, w-2))
		})
	}
}

func BenchmarkKernels_3Q(b *testing.B) {
	// A fixed random 8x8 unitary through the dense three-qubit
	// gather/scatter kernel — the widest fused-block application path.
	u8 := qmath.RandomUnitary(8, rng.New(77))
	for _, w := range kernelWidths {
		b.Run(fmt.Sprintf("q%d/hi", w), func(b *testing.B) {
			st := statevec.NewZero(w)
			b.SetBytes(int64(st.Bytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Apply3Q(w/2, w/2-1, w/2-2, u8)
			}
			b.ReportMetric(float64(st.Dim())*float64(b.N)/b.Elapsed().Seconds(), "amps/s")
		})
	}
}

func BenchmarkKernels_PhaseRun(b *testing.B) {
	// The cache-blocked fusion kernel: eight controlled phases sharing one
	// anchor applied in a single half-space sweep (one QFT row's CP chain).
	// Compare against 8x the CPhase kernel cost to see the fusion win.
	for _, w := range kernelWidths {
		var qs []int
		for q := 0; len(qs) < 8; q++ {
			if q != w/2 {
				qs = append(qs, q)
			}
		}
		phases := make([]complex128, len(qs))
		for i := range phases {
			phases[i] = complex(0.6, 0.8) // exact unit magnitude
		}
		b.Run(fmt.Sprintf("q%d/k8", w), func(b *testing.B) {
			st := statevec.NewZero(w)
			b.SetBytes(int64(st.Bytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.ApplyPhaseRun(w/2, qs, phases)
			}
			b.ReportMetric(float64(st.Dim())*float64(b.N)/b.Elapsed().Seconds(), "amps/s")
		})
	}
}

// BenchmarkFusionQFT_EndToEnd measures an ideal QFT through the fusion
// backend against direct kernel dispatch — the end-to-end number the
// fused controlled-phase runs are accountable to. Two stream shapes:
// the CP-native circuit (decompose=false) is the fusion target, where
// each QFT row's CP chain collapses into one phase-run sweep; the
// decomposed circuit (decompose=true) has no multi-qubit structure left
// by construction, so the fused leg there bounds pure bookkeeping
// overhead — it must track the plain leg, not beat it.
func BenchmarkFusionQFT_EndToEnd(b *testing.B) {
	for _, w := range []int{16, 20} {
		for _, shape := range []struct {
			name      string
			decompose bool
		}{{"cp", false}, {"decomposed", true}} {
			c := workloads.QFT(w, shape.decompose)
			b.Run(fmt.Sprintf("plain/%s/q%d", shape.name, w), func(b *testing.B) {
				st := statevec.NewZero(w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st.ApplyAll(c.Gates)
				}
			})
			b.Run(fmt.Sprintf("fused/%s/q%d", shape.name, w), func(b *testing.B) {
				st := statevec.NewZero(w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					be := fusion.New()
					for _, g := range c.Gates {
						be.Apply(st, g)
					}
					be.Flush(st)
				}
			})
		}
	}
}

// benchSink keeps pure-function benchmark results alive; without it the
// compiler inlines Prob1 and deletes the whole loop body as dead code.
var benchSink float64

func BenchmarkKernels_Prob1(b *testing.B) {
	for _, w := range kernelWidths {
		st := statevec.NewZero(w)
		st.Apply(gate.New(gate.KindH, w-1))
		b.Run(fmt.Sprintf("q%d", w), func(b *testing.B) {
			b.SetBytes(int64(st.Bytes()))
			for i := 0; i < b.N; i++ {
				benchSink += st.Prob1(w - 1)
			}
			b.ReportMetric(float64(st.Dim())*float64(b.N)/b.Elapsed().Seconds(), "amps/s")
		})
	}
}

// BenchmarkDensityMatrixStep measures one noisy density-matrix gate step —
// the quadratic-cost reference path.
func BenchmarkDensityMatrixStep(b *testing.B) {
	d := densmat.NewZero(8)
	g := NewCircuit("d", 8).H(3).Gates[0]
	ch := noise.Depolarizing1Q{P: 0.01}
	for i := 0; i < b.N; i++ {
		d.ApplyUnitary(g)
		d.ApplyChannel(ch, []int{3})
	}
}

// BenchmarkFidelityMetrics measures the Equation 8/9 pipeline.
func BenchmarkFidelityMetrics(b *testing.B) {
	c := workloads.QPE(7, workloads.QPEPhase, true, -1)
	ideal := IdealDistribution(c)
	res := RunIdeal(c, 4000, 1)
	out := CountsDist(res.Counts, c.NumQubits)
	b.ResetTimer()
	var f float64
	for i := 0; i < b.N; i++ {
		f = metrics.NormalizedFidelity(ideal, out)
	}
	_ = f
}
