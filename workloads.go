package tqsim

import (
	"tqsim/internal/graphs"
	"tqsim/internal/workloads"
)

// Graph is an undirected graph for QAOA max-cut workloads.
type Graph = graphs.Graph

// QAOAParams are the variational angles of one QAOA layer.
type QAOAParams = workloads.QAOAParams

// Benchmark couples a suite circuit with its class label.
type Benchmark = workloads.Bench

// Workload generators — the paper's Table 2 benchmark classes. Every
// generator is a pure function of its arguments: the same (width, inputs,
// seed) always yields the gate-identical circuit, so seeded workloads can be
// regenerated on any host (the tqsimd plan cache and the decision-table
// tests rely on this).

// AdderCircuit builds a Cuccaro ripple-carry adder over nBits-bit operands
// (width 2*nBits+2), inputs loaded classically.
func AdderCircuit(nBits int, a, b uint64) *Circuit {
	return workloads.Adder(nBits, a, b, -1)
}

// BVCircuit builds a Bernstein-Vazirani circuit with the given secret.
func BVCircuit(width int, secret uint64) *Circuit {
	return workloads.BV(width, secret)
}

// MulCircuit builds a Draper quantum multiplier for na- and nb-bit operands
// (width 2*(na+nb)+1).
func MulCircuit(na, nb int, a, b uint64) *Circuit {
	return workloads.Mul(na, nb, a, b, true, -1)
}

// QFTCircuit builds a quantum Fourier transform over a structured input.
func QFTCircuit(width int) *Circuit { return workloads.QFT(width, true) }

// QPECircuit builds quantum phase estimation with the given counting-qubit
// count (width counting+1) estimating phase (in turns).
func QPECircuit(counting int, phase float64) *Circuit {
	return workloads.QPE(counting, phase, true, -1)
}

// QAOACircuit builds the max-cut QAOA ansatz for a graph.
func QAOACircuit(g *Graph, layers []QAOAParams) *Circuit {
	return workloads.QAOA(g, layers)
}

// QSCCircuit builds a supremacy-style random circuit, fully determined by
// (width, depth, seed).
func QSCCircuit(width, depth int, seed uint64) *Circuit {
	return workloads.QSC(width, depth, seed)
}

// Clifford-heavy workloads — the scenario class the stabilizer backend's
// polynomial fast path unlocks at widths the dense engines cannot reach.

// GHZCircuit builds the width-qubit GHZ preparation (H + CX chain).
func GHZCircuit(width int) *Circuit { return workloads.GHZ(width) }

// CliffordCircuit builds a seeded random Clifford circuit: depth layers of
// random one-qubit Cliffords plus a random CX/CZ/SWAP pairing. The gate
// sequence is a pure function of (width, depth, seed).
func CliffordCircuit(width, depth int, seed uint64) *Circuit {
	return workloads.Clifford(width, depth, seed)
}

// CliffordPrefixCircuit builds a random Clifford prefix followed by a short
// non-Clifford tail — the hybrid dispatcher's handoff stress shape. The
// gate sequence is a pure function of (width, cliffordDepth, seed).
func CliffordPrefixCircuit(width, cliffordDepth int, seed uint64) *Circuit {
	return workloads.CliffordPrefix(width, cliffordDepth, seed)
}

// QVCircuit builds a Quantum-Volume model circuit at the canonical depth,
// fully determined by (width, seed).
func QVCircuit(width int, seed uint64) *Circuit {
	return workloads.QV(width, workloads.QVDefaultDepth, false, seed)
}

// BenchmarkSuite generates the full 48-circuit Table 2 suite; maxQubits > 0
// filters wider circuits (13 reproduces the artifact's default subset).
// The suite is fixed: repeated calls regenerate gate-identical circuits.
func BenchmarkSuite(maxQubits int) []Benchmark { return workloads.Suite(maxQubits) }

// BenchmarkByName regenerates one suite circuit from its conventional name
// (e.g. "qft_n14"); nil when unknown.
func BenchmarkByName(name string) *Circuit { return workloads.ByName(name) }

// Graph constructors for the QAOA workloads (Figure 18's three families).

// RandomGraph returns a seeded Erdős–Rényi G(n, p) graph — the same
// (n, p, seed) always yields the same edge set.
func RandomGraph(n int, p float64, seed uint64) *Graph { return graphs.Random(n, p, seed) }

// StarGraph returns the star graph on n vertices.
func StarGraph(n int) *Graph { return graphs.Star(n) }

// Regular3Graph returns a 3-regular circulant graph on n (even) vertices.
func Regular3Graph(n int) *Graph { return graphs.Regular3(n) }

// ExpectedCut computes the expected max-cut value of a shot histogram —
// the QAOA cost function of Figure 18. Deterministic in its inputs: no
// sampling happens here.
func ExpectedCut(g *Graph, counts map[uint64]int) float64 {
	return workloads.QAOAExpectedCutCounts(g, counts)
}
