GO ?= go

.PHONY: build test race bench-kernels bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages that carry concurrency: the statevec worker pool,
# the parallel tree executor, and the parallel-shot baseline.
race:
	$(GO) test -race ./internal/statevec/... ./internal/core/... ./internal/trajectory/...

# Kernel microbenchmarks: per-gate-class amps/s across widths and qubit
# positions. Track these across PRs for hot-path regressions.
bench-kernels:
	$(GO) test -run xxx -bench 'BenchmarkKernels_' -benchtime 1s .

# Full figure/table benchmark sweep (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

ci: build test race
