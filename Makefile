GO ?= go

.PHONY: build vet lint test race test-distributed test-sweep test-chaos test-store test-loadgen fuzz-smoke bench-kernels bench-sweep bench bench-trajectory bench-compare ci docs-lint docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism & serve-invariant linter suite: six project-specific
# analyzers (detrand seedderive maporder errdrop bodydrain atomicmix) over
# every package, plus the godoc and markdown-link contracts. Exits non-zero
# on any finding; see docs/static-analysis.md for the invariants and the
# //lint:allow escape hatch.
lint:
	$(GO) run ./cmd/tqsimlint ./...

# Godoc contract: every exported symbol of the public tqsim package carries
# a doc comment (determinism guarantees included — see docs/).
# (Also enforced as part of `make lint`; repolint remains as a thin alias.)
docs-lint:
	$(GO) run ./cmd/repolint -godoc .

# Docs contract: every relative markdown link resolves, and every example
# program still builds against the current API.
docs-check:
	$(GO) run ./cmd/repolint -links
	$(GO) build ./examples/...

test:
	$(GO) test ./...

# Race-check everything: the statevec worker pool, the parallel tree
# executor (on every registered backend via the conformance suite), the
# tableau tree runner, and the parallel-shot baseline all carry
# concurrency.
race:
	$(GO) test -race ./...

# Distributed serving suite under the race detector: coordinator + 3
# in-process workers (merge byte-identity, kill-one-mid-job failover,
# planner placement, local fallback), the BatchSeed partition property
# test, and the serve-layer reliability regressions (LRU plan cache,
# graceful drain, request cancellation).
test-distributed:
	$(GO) test -race ./internal/serve -run 'TestDistributed|TestShard|TestGracefulDrain|TestCancelled|TestPlanCacheLRU'

# Sweep-engine suite under the race detector: the determinism property
# tests (RunSweep per-point histograms byte-identical to standalone runs at
# derived seeds, reuse on/off, serial/parallel), the /v1/sweeps endpoint
# and streaming suites, and the distributed sweep tests (1-3 workers,
# failover, stalled-lease timeout).
test-sweep:
	$(GO) test -race . -run 'TestSweep'
	$(GO) test -race ./internal/sweep
	$(GO) test -race ./internal/serve -run 'TestSweep|TestDistributedSweep|TestLeaseTimeout|TestDrainWaitSignals|TestStreamingHeaderEmit'

# Chaos suite under the race detector: the seeded fault-plan grid (dropped
# connections, 5xx bursts, Retry-After 503s, kill-mid-lease, corrupted
# payloads, join/leave churn) whose invariant is byte-identical merged
# histograms versus the fault-free run, plus the elastic-membership,
# breaker, revival, Retry-After and drain-in-flight regressions, and the
# faultinject determinism suite.
test-chaos:
	$(GO) test -race ./internal/faultinject
	$(GO) test -race ./internal/serve -run 'TestChaos|TestLiveness|TestBreaker|TestWorkerJoin|TestWorkerRevival|TestRetryAfter|TestCoordinatorDrain|TestWorkerDrain'

# Result & snapshot store suite under the race detector: the
# content-addressed store (memory LRU, disk persistence, crash-file rescan,
# byte caps), the structural circuit digest, the cross-job snapshot cache,
# and the serve-layer replay-identity conformance grid (job/sweep/
# distributed × stream shapes, restart-with-store-dir, cross-job snapshot
# hits) plus the cache-correctness regressions (circuitHash unitary
# collision, queued-client cancellation, plan-cache counter algebra).
test-store:
	$(GO) test -race ./internal/resultstore ./internal/circuit ./internal/core -run 'TestDigest|TestPrefixDigests|TestForPlan|TestEviction|Test.*LRU|TestPut|TestDisk|TestRescan|TestReopen|TestVanished|TestConcurrent'
	$(GO) test -race ./internal/serve -run 'TestResultStore|TestSnapshotCache|TestSweepUsesSharedSnapshotCache|TestCircuitHashDistinguishesUnitaries|TestQueuedClientDisconnectCancels|TestPlanCacheStatsConsistentUnderEviction'

# Load/capacity harness suite under the race detector: the seeded
# determinism contracts (byte-identical arrival schedule and request
# sequence, including concurrent generation), the latency-histogram
# quantile-accuracy and merge property tests, the saturation-knee search
# against a synthetic queue with analytic capacity, the live end-to-end
# run against an httptest tqsimd with /v1/stats polled concurrently, and
# the server-side latency accounting.
test-loadgen:
	$(GO) test -race ./internal/loadgen ./internal/metrics
	$(GO) test -race ./internal/serve -run 'TestStatsLatency'

# Short fuzz smoke: the QASM parser/round-trip fuzzer plus its committed
# regression corpus. Go runs one fuzz target per invocation.
fuzz-smoke:
	$(GO) test ./internal/qasm -run xxx -fuzz FuzzParseQASM -fuzztime 10s

# Kernel microbenchmarks: per-gate-class amps/s across widths and qubit
# positions. Track these across PRs for hot-path regressions.
bench-kernels:
	$(GO) test -run xxx -bench 'BenchmarkKernels_' -benchtime 1s .

# Cross-point reuse benchmark: the same noise-grid sweep with prefix reuse
# on vs off; the reported gateops/sweep ratio is the work reduction (the
# run errors if reuse stops reducing work).
bench-sweep:
	$(GO) test -run xxx -bench BenchmarkSweepReuse -benchtime 1x -v .

# Full figure/table benchmark sweep (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Performance trajectory: measure kernels, sweep reuse, serve quantiles
# and the saturation knee; write BENCH_$(PR).json and gate against the
# highest-numbered committed BENCH_*.json with noise-tolerant thresholds
# (exit 1 on regression). Bump PR per stacked change: make bench-trajectory PR=9
PR ?= 10
bench-trajectory:
	$(GO) run ./cmd/benchreport -pr $(PR) -check -against auto

# Benchstat-style before/after table of two committed trajectory points
# (per-kernel amps/s ratios plus the sweep/serve/knee metrics). Defaults to
# the two highest-numbered BENCH_*.json: make bench-compare, or
# make bench-compare A=BENCH_5.json B=BENCH_9.json
A ?= $(shell ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -2 | head -1)
B ?= $(shell ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1)
bench-compare:
	$(GO) run ./cmd/benchreport -diff $(A) $(B)

ci: build vet lint test race test-distributed test-sweep test-chaos test-store test-loadgen fuzz-smoke bench-sweep bench-trajectory docs-check
