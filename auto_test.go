package tqsim_test

// Acceptance tests for planner-driven dispatch through the public API:
// Options.Backend "auto" (the RunTQSim/RunBackend default) must route a
// wide pure-Clifford Pauli-noise plan to the stabilizer engine and a narrow
// non-Clifford plan to statevec, with an explainable Decision for both, and
// must keep the histogram byte-identical to an explicit selection of the
// same engine.

import (
	"strings"
	"testing"

	"tqsim"
)

func TestAutoPicksStabilizerForWideClifford(t *testing.T) {
	c := tqsim.GHZCircuit(40) // dense state would be 16 TiB
	m := tqsim.SycamoreNoise()
	opt := tqsim.Options{Seed: 11}

	d, err := tqsim.Explain(c, m, 600, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend != "stabilizer" || d.Mode != "tableau-tree" {
		t.Fatalf("decision %s/%s, want stabilizer/tableau-tree\n%s", d.Backend, d.Mode, d)
	}
	if !strings.Contains(d.String(), "30-qubit dense limit") {
		t.Fatalf("decision does not explain the dense rejection:\n%s", d)
	}

	res, err := tqsim.RunTQSim(c, m, 600, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.BackendName != "stabilizer" {
		t.Fatalf("auto ran %q", res.BackendName)
	}
	if res.Outcomes < 600 {
		t.Fatalf("outcomes %d", res.Outcomes)
	}
	// Auto dispatch preserves the determinism contract.
	again, err := tqsim.RunTQSim(c, m, 600, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertCountsEqual(t, "auto-wide-clifford", res.Counts, again.Counts)
}

func TestAutoPicksStatevecForNarrowNonClifford(t *testing.T) {
	c := tqsim.QFTCircuit(8)
	m := tqsim.SycamoreNoise()
	opt := tqsim.Options{Seed: 3, CopyCost: 15}

	d, err := tqsim.Explain(c, m, 800, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend != "statevec" {
		t.Fatalf("decision %s, want statevec\n%s", d.Backend, d)
	}
	if d.CliffordOnly {
		t.Fatal("QFT misclassified as Clifford-only")
	}
	rejectedTableau := false
	for _, cand := range d.Rejected() {
		if cand.Mode == "tableau-tree" && strings.Contains(cand.Reason, "non-Clifford gate") {
			rejectedTableau = true
		}
	}
	if !rejectedTableau {
		t.Fatalf("tableau rejection unexplained:\n%s", d)
	}

	res, err := tqsim.RunTQSim(c, m, 800, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.BackendName != "statevec" {
		t.Fatalf("auto ran %q", res.BackendName)
	}

	// Byte-identical to selecting the decided engine explicitly at the
	// decided parallelism.
	explicit := opt
	explicit.Backend = d.Backend
	explicit.Parallelism = d.Parallelism
	ref, err := tqsim.RunTQSim(c, m, 800, explicit)
	if err != nil {
		t.Fatal(err)
	}
	assertCountsEqual(t, "auto-vs-explicit", ref.Counts, res.Counts)
}

// TestAutoHonorsMemoryClampedParallelism: when the memory budget forces the
// planner to shed workers, the run must execute at the clamped count — the
// reported peak may not exceed the budget the decision claimed to respect.
func TestAutoHonorsMemoryClampedParallelism(t *testing.T) {
	c := tqsim.QFTCircuit(12)
	m := tqsim.SycamoreNoise()
	plan := tqsim.PlanDCP(c, m, 400, tqsim.Options{CopyCost: 20})
	budget := int64(plan.Levels()+1) * (16 << 12) // exactly one worker's states
	opt := tqsim.Options{
		Seed: 2, CopyCost: 20, Backend: tqsim.AutoBackend,
		Parallelism: 8, MemoryBudgetBytes: budget,
	}
	d, err := tqsim.DecidePlan(plan, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Parallelism != 1 {
		t.Fatalf("decision kept %d workers under a one-worker budget", d.Parallelism)
	}
	res, err := tqsim.RunPlan(plan, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakStateBytes > budget {
		t.Fatalf("run peak %d exceeds the %d budget the decision enforced", res.PeakStateBytes, budget)
	}
}

// TestAutoErrorNamesEstimatedBytes: when no engine is viable the error must
// carry the hpcmodel state-vector estimate, matching denseWidthCheck's
// diagnostic style.
func TestAutoErrorNamesEstimatedBytes(t *testing.T) {
	c := tqsim.GHZCircuit(48)
	m := tqsim.NoiseByName("TRR") // non-Pauli: no polynomial route
	_, err := tqsim.RunTQSim(c, m, 100, tqsim.Options{})
	if err == nil {
		t.Fatal("expected a planner error at 48 qubits under thermal noise")
	}
	if !strings.Contains(err.Error(), "4 PiB") {
		t.Fatalf("error lacks the hpcmodel estimate: %v", err)
	}

	// The explicit-backend path (denseWidthCheck) must report the same
	// estimate, so planner rejections and CLI errors read identically.
	_, err = tqsim.RunBackend(c, nil, 16, tqsim.Options{Backend: "fusion"})
	if err == nil {
		t.Fatal("expected a width error for a dense backend at 48 qubits")
	}
	if !strings.Contains(err.Error(), "4 PiB") {
		t.Fatalf("denseWidthCheck lacks the hpcmodel estimate: %v", err)
	}
}
