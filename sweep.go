package tqsim

import (
	"context"

	"tqsim/internal/core"
	"tqsim/internal/rng"
	"tqsim/internal/sweep"
	"tqsim/internal/trajectory"
)

// Sweep types, re-exported from the grid engine (internal/sweep). A sweep
// is a first-class grid workload — circuit family × noise axis × shots ×
// partitioner × repeats — where every point routes through the planner and
// the grid executes with cross-point reuse: points sharing a circuit
// structure share one plan/decision, and Pauli-noise points over the same
// plan share ideal-prefix snapshots so only noise-divergent suffixes
// re-run.
type (
	// SweepSpec describes the grid, the seed policy, and the shared
	// execution options. See internal/sweep.Spec for field semantics.
	SweepSpec = sweep.Spec
	// SweepNoisePoint is one value on a sweep's noise axis.
	SweepNoisePoint = sweep.NoisePoint
	// SweepPartition is one value on a sweep's partitioner axis.
	SweepPartition = sweep.PartitionSpec
	// SweepPoint is one expanded grid cell.
	SweepPoint = sweep.Point
	// SweepPointResult is one executed point: coordinates, histogram (or
	// observable estimate), planner decision, and work accounting.
	SweepPointResult = sweep.PointResult
	// SweepResult aggregates a sweep run.
	SweepResult = sweep.Result
	// PreparedSweep is an expanded, validated, fully planned sweep; see
	// PrepareSweep.
	PreparedSweep = sweep.Prepared
)

// SweepSeed returns the derived seed sweep point i runs at — point 0 keeps
// the base seed, so a single-point sweep is byte-identical to RunTQSim at
// the same seed. This is the engine's determinism anchor: RunSweep point i
// equals the standalone run at SweepSeed(spec.Seed, i).
func SweepSeed(base uint64, i int) uint64 {
	return rng.SeedAt(base, uint64(i))
}

// RunSweep expands the spec's grid and executes every point with
// cross-point reuse. Per-point histograms are byte-identical to running
// each point standalone (RunTQSim for mode "tqsim", RunBackend for mode
// "baseline") at the derived per-point seeds, with reuse on or off, at any
// Concurrency — the sweep accelerates the grid without changing a single
// sample.
func RunSweep(spec *SweepSpec) (*SweepResult, error) {
	return RunSweepContext(context.Background(), spec, nil)
}

// RunSweepContext is RunSweep with cooperative cancellation and an optional
// per-point observer. onPoint runs under an internal lock as points
// complete (completion order is nondeterministic at Concurrency > 1, point
// contents are not); an onPoint error aborts the sweep.
func RunSweepContext(ctx context.Context, spec *SweepSpec, onPoint func(*SweepPointResult) error) (*SweepResult, error) {
	prep, err := PrepareSweep(spec)
	if err != nil {
		return nil, err
	}
	return prep.Run(ctx, sweepRunner, onPoint)
}

// PrepareSweep validates the spec, expands the grid, and builds every
// distinct plan and planner decision without executing anything — the
// admission-control hook tqsimd uses (PreparedSweep.MaxEstPeakBytes) before
// committing memory to a sweep. Execute with RunPreparedSweep.
func PrepareSweep(spec *SweepSpec) (*PreparedSweep, error) {
	return sweep.Prepare(spec)
}

// RunPreparedSweep executes points [from, to) of a prepared sweep — the
// range form is the distributed coordinator's lease unit; (0, NumPoints)
// runs the whole grid. Point results are a pure function of (spec, index),
// so any range partitioning reassembles into the identical sweep.
func RunPreparedSweep(ctx context.Context, prep *PreparedSweep, from, to int, onPoint func(*SweepPointResult) error) (*SweepResult, error) {
	return prep.RunRange(ctx, sweepRunner, from, to, onPoint)
}

// sweepRunner is the canonical point executor: the same planner-routed
// engine dispatch as RunPlanContext, with the sweep's shared ideal-prefix
// snapshots threaded into the dense executor, plus the observable
// estimation routes for Hamiltonian sweeps.
func sweepRunner(ctx context.Context, req *sweep.RunRequest) (*sweep.RunOutput, error) {
	opt := Options{
		Seed:         req.Seed,
		Backend:      req.Backend,
		Parallelism:  req.Parallelism,
		ClusterNodes: req.ClusterNodes,
	}
	if req.Observable != nil {
		return runSweepExpectation(ctx, req, opt)
	}
	res, err := runPlanPrefixed(ctx, req.Plan, req.Noise, opt, req.Prefix)
	if err != nil {
		return nil, err
	}
	return &sweep.RunOutput{Res: res}, nil
}

// runSweepExpectation estimates the point's observable. Mode "tqsim"
// mirrors EstimateExpectationTQSim (tree executor, dense leaf states, the
// prefix hook applies); mode "baseline" mirrors EstimateExpectationBaseline
// (trajectory engine), so sweep estimates are byte-identical to the
// standalone estimators at the derived seeds.
func runSweepExpectation(ctx context.Context, req *sweep.RunRequest, opt Options) (*sweep.RunOutput, error) {
	h := req.Observable
	if req.Mode == "baseline" {
		res, err := trajectory.RunExpectation(req.Plan.Circuit, req.Noise, h,
			req.Plan.TotalOutcomes(), trajectory.Options{Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		return &sweep.RunOutput{
			Estimate: &res.Stats,
			Res: &core.Result{
				Outcomes:         req.Plan.TotalOutcomes(),
				GateApplications: res.GateApplications,
				Structure:        req.Plan.Structure(),
				BackendName:      "statevec",
				Elapsed:          res.Elapsed,
			},
		}, nil
	}
	if err := denseWidthCheck(req.Plan.Circuit, opt.backendName(), req.Noise); err != nil {
		return nil, err
	}
	be, err := opt.backend()
	if err != nil {
		return nil, err
	}
	ex := &core.Executor{
		Backend:     be,
		Noise:       req.Noise,
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
		Context:     ctx,
		Prefix:      req.Prefix,
	}
	er, err := ex.RunExpectation(req.Plan, h)
	if err != nil {
		return nil, err
	}
	return &sweep.RunOutput{Res: er.Run, Estimate: &er.Stats}, nil
}
