// Partition trade-off: evaluate the six tree structures of the paper's
// Figure 17 on one circuit, showing how aggressive reuse buys speed at the
// cost of accuracy — and how DCP picks a safe point automatically.
//
//	go run ./examples/partition_tradeoff
package main

import (
	"fmt"
	"log"

	"tqsim"
)

func main() {
	c := tqsim.QPECircuit(6, 1.0/3.0)
	noise := tqsim.SycamoreNoise()
	const shots = 1000
	opt := tqsim.Options{Seed: 3}

	ideal := tqsim.IdealDistribution(c)
	base := tqsim.RunBaseline(c, noise, shots, opt)
	baseF := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(base.Counts, c.NumQubits))
	basePerShot := float64(base.GateApplications) / float64(base.Shots)
	fmt.Printf("circuit %s (%d gates), %d shots, baseline fidelity %.4f\n\n",
		c.Name, c.Len(), shots, baseF)

	structures := []struct {
		label   string
		arities []int
	}{
		{"DCP-like (250,2,2)", []int{250, 2, 2}},
		{"XCP (20,10,5)", []int{20, 10, 5}},
		{"UCP (10,10,10)", []int{10, 10, 10}},
		{"inverted (5,10,20)", []int{5, 10, 20}},
		{"extreme (2,2,250)", []int{2, 2, 250}},
		{"degenerate (250,1,1)", []int{250, 1, 1}},
	}
	fmt.Printf("%-22s %9s %9s %9s\n", "Structure", "WorkSpd", "Outcomes", "FidDiff")
	for _, s := range structures {
		plan := tqsim.PlanStructure(c, s.arities)
		res, err := tqsim.RunPlan(plan, noise, tqsim.Options{Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		f := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(res.Counts, c.NumQubits))
		diff := baseF - f
		if diff < 0 {
			diff = -diff
		}
		workSpd := basePerShot / (float64(res.GateApplications) / float64(res.Outcomes))
		fmt.Printf("%-22s %8.2fx %9d %9.4f\n", s.label, workSpd, res.Outcomes, diff)
	}

	auto := tqsim.PlanDCP(c, noise, shots, tqsim.Options{CopyCost: 5, Epsilon: 0.05})
	fmt.Printf("\nDCP's automatic choice: %s (theoretical bound %.2fx)\n",
		auto.Structure(), auto.TheoreticalSpeedup(5))
	fmt.Println("shape check: front-loaded structures keep accuracy; (250,1,1) collapses")
	fmt.Println("to 250 outcomes and its fidelity deviates sharply (paper Figure 17)")
}
