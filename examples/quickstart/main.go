// Quickstart: build a circuit, attach a noise model, and compare the
// conventional multi-shot simulator against TQSim's tree-based reuse.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tqsim"
)

func main() {
	// A 9-qubit quantum phase estimation instance — a long circuit with a
	// peaked output distribution, so fidelity is well conditioned.
	c := tqsim.QPECircuit(8, 1.0/3.0)
	fmt.Printf("circuit %s: %d qubits, %d gates, depth %d\n",
		c.Name, c.NumQubits, c.Len(), c.Depth())

	// Depolarizing noise at Google Sycamore error rates (0.1% one-qubit,
	// 1.5% two-qubit) — the paper's primary model.
	noise := tqsim.SycamoreNoise()

	// Show the plan DCP would choose before running anything.
	const shots = 2000
	opt := tqsim.Options{Seed: 42, CopyCost: 5, Epsilon: 0.05}
	plan := tqsim.PlanDCP(c, noise, shots, opt)
	fmt.Printf("DCP plan: structure %s, %d subcircuits, %d outcomes,\n",
		plan.Structure(), plan.Levels(), plan.TotalOutcomes())
	fmt.Printf("          theoretical speedup bound %.2fx\n",
		plan.TheoreticalSpeedup(opt.CopyCost))

	// Compare runs both simulators and reports speedup plus fidelity
	// agreement on equal-size outcome samples.
	cmp, err := tqsim.Compare(c, noise, shots, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline: %v  (normalized fidelity %+.4f)\n",
		cmp.BaselineTime, cmp.BaselineFidelity)
	fmt.Printf("tqsim:    %v  (normalized fidelity %+.4f, peak state memory %.1f MiB)\n",
		cmp.TQSimTime, cmp.TQSimFidelity, float64(cmp.TQSimPeakBytes)/(1<<20))
	fmt.Printf("\nspeedup %.2fx (work ratio %.3f), fidelity difference %.4f\n",
		cmp.Speedup, cmp.WorkRatio, cmp.FidelityDiff)
	fmt.Println("\n(paper: 1.6-3.9x speedup with fidelity differences under 0.016)")
}
