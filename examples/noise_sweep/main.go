// Noise sweep: run one circuit under all nine of the paper's noise-model
// variants (Figure 16) through the first-class sweep engine — one RunSweep
// call per simulator instead of a hand-rolled grid loop — and check TQSim's
// fidelity against both the baseline trajectory simulator and, where
// feasible, the exact density-matrix reference.
//
// The sweep engine routes every point through the planner, shares one
// partition plan per (noise, shots) cell, and reuses ideal-prefix snapshots
// across the Pauli-noise points; per-point histograms are byte-identical to
// running each point standalone at the derived seeds.
//
//	go run ./examples/noise_sweep
package main

import (
	"fmt"
	"log"

	"tqsim"
)

func main() {
	// An 8-qubit QPE estimating the non-representable phase 1/3 — the
	// paper's noise-sensitivity stressor (narrow bell-curve output).
	c := tqsim.QPECircuit(7, 1.0/3.0)
	fmt.Printf("circuit %s: %d qubits, %d gates\n", c.Name, c.NumQubits, c.Len())

	const shots = 2000
	models := []tqsim.SweepNoisePoint{
		{Name: "DC"}, {Name: "DCR"}, {Name: "TR"}, {Name: "TRR"},
		{Name: "AD"}, {Name: "ADR"}, {Name: "PD"}, {Name: "PDR"}, {Name: "ALL"},
	}
	// The paper derives the tree structure from the depolarizing model and
	// reuses it across all noise models (Section 5.5): pin the DC-derived
	// plan's bounds and arities as a single partition-axis entry, so every
	// noise point runs the identical tree — and the whole axis shares one
	// plan and one ideal-prefix snapshot set.
	opt := tqsim.Options{Seed: 11, CopyCost: 5, Epsilon: 0.05}
	plan := tqsim.PlanDCP(c, tqsim.SycamoreNoise(), shots, opt)
	fmt.Printf("tree structure %s (from the DC model, held fixed across the axis)\n", plan.Structure())
	spec := tqsim.SweepSpec{
		Circuits: []*tqsim.Circuit{c},
		Noise:    models,
		Shots:    []int{shots},
		Partitions: []tqsim.SweepPartition{
			{Strategy: "structure", Structure: plan.Arities, Bounds: plan.Bounds},
		},
		Seed:     11,
		CopyCost: 5,
		Epsilon:  0.05,
		Fidelity: true,
	}

	// One sweep per simulator: the tree engine (mode tqsim) and the
	// conventional baseline, over the identical grid and seeds.
	tree, err := tqsim.RunSweep(&spec)
	if err != nil {
		log.Fatal(err)
	}
	baseSpec := spec
	baseSpec.Mode = "baseline"
	base, err := tqsim.RunSweep(&baseSpec)
	if err != nil {
		log.Fatal(err)
	}

	ideal := tqsim.IdealDistribution(c)
	fmt.Printf("\n%-6s %10s %10s %10s\n", "Model", "Baseline", "TQSim", "Exact(DM)")
	for i := range tree.Points {
		tp, bp := tree.Points[i], base.Points[i]
		exact := "-"
		if c.NumQubits <= 8 {
			d := tqsim.ExactNoisyDistribution(c, models[i].Model())
			exact = fmt.Sprintf("%10.4f", tqsim.NormalizedFidelity(ideal, d))
		}
		fmt.Printf("%-6s %10.4f %10.4f %10s\n", tp.Noise, bp.Fidelity, tp.Fidelity, exact)
	}
	fmt.Printf("\nsweep reuse: %d plans for %d points, %d ideal-prefix hits (Pauli points)\n",
		tree.PlansBuilt, len(tree.Points), tree.PrefixReuseHits)
	fmt.Println("shape check: TQSim tracks the baseline under every channel, and both")
	fmt.Println("converge on the exact density-matrix fidelity (paper Figure 16)")
}
