// Noise sweep: run one circuit under all nine of the paper's noise-model
// variants (Figure 16) and check TQSim's fidelity against both the baseline
// trajectory simulator and, where feasible, the exact density-matrix
// reference.
//
//	go run ./examples/noise_sweep
package main

import (
	"fmt"
	"log"

	"tqsim"
)

func main() {
	// An 8-qubit QPE estimating the non-representable phase 1/3 — the
	// paper's noise-sensitivity stressor (narrow bell-curve output).
	c := tqsim.QPECircuit(7, 1.0/3.0)
	fmt.Printf("circuit %s: %d qubits, %d gates\n", c.Name, c.NumQubits, c.Len())

	ideal := tqsim.IdealDistribution(c)
	const shots = 2000
	opt := tqsim.Options{Seed: 11, CopyCost: 5, Epsilon: 0.05}

	// The paper derives the tree structure from the depolarizing model and
	// reuses it across all noise models (Section 5.5).
	plan := tqsim.PlanDCP(c, tqsim.SycamoreNoise(), shots, opt)
	fmt.Printf("tree structure %s (from the DC model)\n\n", plan.Structure())

	fmt.Printf("%-6s %10s %10s %10s\n", "Model", "Baseline", "TQSim", "Exact(DM)")
	for _, name := range []string{"DC", "DCR", "TR", "TRR", "AD", "ADR", "PD", "PDR", "ALL"} {
		model := tqsim.NoiseByName(name)

		base := tqsim.RunBaseline(c, model, shots, opt)
		baseF := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(base.Counts, c.NumQubits))

		tree, err := tqsim.RunPlan(plan, model, opt)
		if err != nil {
			log.Fatal(err)
		}
		treeF := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(tree.Counts, c.NumQubits))

		exact := "-"
		if c.NumQubits <= 8 {
			d := tqsim.ExactNoisyDistribution(c, model)
			exact = fmt.Sprintf("%10.4f", tqsim.NormalizedFidelity(ideal, d))
		}
		fmt.Printf("%-6s %10.4f %10.4f %10s\n", name, baseF, treeF, exact)
	}
	fmt.Println("\nshape check: TQSim tracks the baseline under every channel, and both")
	fmt.Println("converge on the exact density-matrix fidelity (paper Figure 16)")
}
