// VQE energy estimation: evaluate a variational ansatz's energy under a
// transverse-field Ising Hamiltonian with both simulators — the §5.7
// workload class (each optimizer step of a VQA needs one such ensemble
// estimate, so the per-point speedup multiplies across the whole run).
//
// The theta landscape is a circuit-axis sweep on the sweep engine: one
// RunSweep call per simulator evaluates every ansatz instance at derived
// seeds, sharing planner decisions per cell and ideal-prefix snapshots
// within each point's tree. Estimates are byte-identical to the standalone
// EstimateExpectation* calls at the same derived seeds.
//
//	go run ./examples/vqe_energy
package main

import (
	"fmt"
	"log"
	"math"

	"tqsim"
)

// ansatz builds a hardware-efficient variational circuit: layers of RY
// rotations and a CX entangling ladder.
func ansatz(n, layers int, theta float64) *tqsim.Circuit {
	c := tqsim.NewCircuit(fmt.Sprintf("hea_t%.2f", theta), n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(theta*float64(l+1)+0.3*float64(q), q)
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.RY(0.5*theta, q)
	}
	return c
}

func main() {
	const (
		n      = 8
		layers = 4
		shots  = 1500
	)
	thetas := []float64{0.2, 0.6, 1.0, 1.4}
	ham := tqsim.TransverseFieldIsing(n, 1.0, 0.6)

	// The circuit axis: one ansatz instance per optimizer-style theta.
	var circuits []*tqsim.Circuit
	for _, theta := range thetas {
		circuits = append(circuits, ansatz(n, layers, theta))
	}
	spec := tqsim.SweepSpec{
		Circuits:   circuits,
		Noise:      []tqsim.SweepNoisePoint{{Name: "DC"}},
		Shots:      []int{shots},
		Seed:       5,
		CopyCost:   5,
		Epsilon:    0.05,
		Observable: ham,
	}

	tq, err := tqsim.RunSweep(&spec)
	if err != nil {
		log.Fatal(err)
	}
	baseSpec := spec
	baseSpec.Mode = "baseline"
	base, err := tqsim.RunSweep(&baseSpec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("H = %s\n", ham)
	fmt.Printf("%-8s %10s %14s %16s %10s\n",
		"theta", "ideal", "baseline", "tqsim", "speedup")
	for i, theta := range thetas {
		ideal := tqsim.ExactExpectation(circuits[i], ham)
		bp, tp := base.Points[i], tq.Points[i]
		// Work-based speedup: kernel ops per estimate.
		baseOps := float64(shots) * float64(circuits[i].Len())
		speedup := baseOps / float64(tp.GateApplications)
		fmt.Printf("%-8.2f %10.4f %9.4f±%.3f %11.4f±%.3f %9.2fx\n",
			theta, ideal, bp.Estimate.Mean, bp.Estimate.StdErr,
			tp.Estimate.Mean, tp.Estimate.StdErr, speedup)
		if math.Abs(bp.Estimate.Mean-tp.Estimate.Mean) > 5*(bp.Estimate.StdErr+tp.Estimate.StdErr)+0.05 {
			fmt.Println("  WARNING: estimates disagree beyond the error bars")
		}
	}
	fmt.Printf("\nsweep: %d points, %d plans, %d ideal-prefix hits\n",
		len(tq.Points), tq.PlansBuilt, tq.PrefixReuseHits)
	fmt.Println("both estimators agree within Equation 2's standard error; noise pulls")
	fmt.Println("the energy toward zero (mixed-state limit), which is exactly what VQA")
	fmt.Println("designers use noisy simulation to quantify")
}
