// VQE energy estimation: evaluate a variational ansatz's energy under a
// transverse-field Ising Hamiltonian with both simulators — the §5.7
// workload class (each optimizer step of a VQA needs one such ensemble
// estimate, so the per-point speedup multiplies across the whole run).
//
//	go run ./examples/vqe_energy
package main

import (
	"fmt"
	"log"
	"math"

	"tqsim"
)

// ansatz builds a hardware-efficient variational circuit: layers of RY
// rotations and a CX entangling ladder.
func ansatz(n, layers int, theta float64) *tqsim.Circuit {
	c := tqsim.NewCircuit(fmt.Sprintf("hea_%d_l%d", n, layers), n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(theta*float64(l+1)+0.3*float64(q), q)
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.RY(0.5*theta, q)
	}
	return c
}

func main() {
	const (
		n      = 8
		layers = 4
		shots  = 1500
	)
	ham := tqsim.TransverseFieldIsing(n, 1.0, 0.6)
	noise := tqsim.SycamoreNoise()
	opt := tqsim.Options{Seed: 5, CopyCost: 5, Epsilon: 0.05, Parallelism: 4}

	fmt.Printf("H = %s\n", ham)
	fmt.Printf("%-8s %10s %14s %16s %10s\n",
		"theta", "ideal", "baseline", "tqsim", "speedup")

	// Sweep the variational parameter as an optimizer would.
	for _, theta := range []float64{0.2, 0.6, 1.0, 1.4} {
		c := ansatz(n, layers, theta)
		ideal := tqsim.ExactExpectation(c, ham)

		base, err := tqsim.EstimateExpectationBaseline(c, noise, ham, shots, opt)
		if err != nil {
			log.Fatal(err)
		}
		tq, run, err := tqsim.EstimateExpectationTQSim(c, noise, ham, shots, opt)
		if err != nil {
			log.Fatal(err)
		}
		// Work-based speedup: kernel ops per estimate.
		baseOps := float64(shots) * float64(c.Len())
		speedup := baseOps / float64(run.GateApplications)
		fmt.Printf("%-8.2f %10.4f %9.4f±%.3f %11.4f±%.3f %9.2fx\n",
			theta, ideal, base.Mean, base.StdErr, tq.Mean, tq.StdErr, speedup)
		if math.Abs(base.Mean-tq.Mean) > 5*(base.StdErr+tq.StdErr)+0.05 {
			fmt.Println("  WARNING: estimates disagree beyond the error bars")
		}
	}
	fmt.Println("\nboth estimators agree within Equation 2's standard error; noise pulls")
	fmt.Println("the energy toward zero (mixed-state limit), which is exactly what VQA")
	fmt.Println("designers use noisy simulation to quantify")
}
