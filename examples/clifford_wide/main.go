// Clifford at scale: the backend registry's stabilizer engine simulates
// Clifford circuits under Pauli noise in polynomial time and memory, so
// error-correction-style workloads at 30+ qubits — where a dense state
// vector would need terabytes — run in milliseconds on a laptop. The same
// engine, selected the same way (Options.Backend), transparently hands
// off to the dense kernels when a circuit leaves the Clifford group.
//
//	go run ./examples/clifford_wide
package main

import (
	"fmt"
	"log"

	"tqsim"
)

func main() {
	noise := tqsim.DepolarizingNoise(0.001, 0.01)
	const shots = 2000

	// A 48-qubit GHZ state: the dense amplitude array would be 4 PiB.
	ghz := tqsim.GHZCircuit(48)
	opt := tqsim.Options{Seed: 7, Backend: "stabilizer", Parallelism: 8}
	res, err := tqsim.RunBackend(ghz, noise, shots, opt)
	if err != nil {
		log.Fatal(err)
	}
	all1 := (uint64(1) << 48) - 1
	fmt.Printf("%s: %d qubits, %d gates  (dense state: 4 PiB; tableau: %.1f KiB)\n",
		ghz.Name, ghz.NumQubits, ghz.Len(), float64(res.PeakStateBytes)/1024)
	fmt.Printf("  %d shots in %v: |0...0> %d, |1...1> %d, noise-perturbed %d\n\n",
		res.Outcomes, res.Elapsed, res.Counts[0], res.Counts[all1],
		res.Outcomes-res.Counts[0]-res.Counts[all1])

	// A 40-qubit Bernstein-Vazirani instance — Clifford-only, so the
	// secret is recoverable at a width no dense engine reaches.
	secret := uint64(0x5A5A5A5A5A) & ((1 << 39) - 1)
	bv := tqsim.BVCircuit(40, secret)
	res, err = tqsim.RunBackend(bv, noise, shots, opt)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	mask := (uint64(1) << 39) - 1
	for out, n := range res.Counts {
		if out&mask == secret {
			hits += n
		}
	}
	fmt.Printf("%s: %d qubits, %d gates\n", bv.Name, bv.NumQubits, bv.Len())
	fmt.Printf("  secret recovered on %d/%d noisy shots in %v\n\n",
		hits, res.Outcomes, res.Elapsed)

	// The same backend on a noisy non-Clifford circuit: the hybrid
	// dispatcher absorbs the Clifford prefix — gates and the Pauli noise
	// insertions after them — into tableaux, and hands off to the dense
	// kernels at the first non-Clifford gate. Noise sampling consumes the
	// RNG exactly as the dense channels would, so the histogram is
	// byte-identical to the plain engine's.
	pfx := tqsim.CliffordPrefixCircuit(10, 6, 3)
	hybrid, err := tqsim.RunBackend(pfx, noise, shots, opt)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := tqsim.RunBackend(pfx, noise, shots, tqsim.Options{Seed: 7, Parallelism: 8})
	if err != nil {
		log.Fatal(err)
	}
	same := len(hybrid.Counts) == len(plain.Counts)
	for k, v := range plain.Counts {
		if hybrid.Counts[k] != v {
			same = false
		}
	}
	fmt.Printf("%s: %d qubits, %d gates (non-Clifford tail)\n",
		pfx.Name, pfx.NumQubits, pfx.Len())
	fmt.Printf("  hybrid %v vs dense %v, identical histograms: %v\n",
		hybrid.Elapsed, plain.Elapsed, same)
}
