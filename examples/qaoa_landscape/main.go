// QAOA landscape: regenerate a max-cut cost landscape (the paper's
// Figure 18 use case) with both simulators and print the TQSim landscape as
// an ASCII heat map alongside the speedup and landscape MSE.
//
//	go run ./examples/qaoa_landscape
package main

import (
	"fmt"
	"log"
	"math"

	"tqsim"
)

const (
	grid  = 11
	shots = 400
	seed  = 7
)

func main() {
	g := tqsim.RandomGraph(8, 0.5, 3)
	fmt.Printf("max-cut QAOA on %s: %d vertices, %d edges (optimum %d)\n",
		g.Name, g.N, g.NumEdges(), g.MaxCut())

	noise := tqsim.SycamoreNoise()
	opt := tqsim.Options{CopyCost: 5, Epsilon: 0.05}

	var baseLand, tqLand [grid][grid]float64
	var baseSec, tqSec float64
	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			gamma := -math.Pi + 2*math.Pi*float64(i)/(grid-1)
			beta := -math.Pi + 2*math.Pi*float64(j)/(grid-1)
			c := tqsim.QAOACircuit(g, []tqsim.QAOAParams{{Gamma: gamma, Beta: beta}})

			o := opt
			o.Seed = tqsim.SweepSeed(seed, 2*(i*grid+j))
			base := tqsim.RunBaseline(c, noise, shots, o)
			baseSec += base.Elapsed.Seconds()
			baseLand[i][j] = tqsim.ExpectedCut(g, base.Counts)

			o.Seed = tqsim.SweepSeed(seed, 2*(i*grid+j)+1)
			res, err := tqsim.RunTQSim(c, noise, shots, o)
			if err != nil {
				log.Fatal(err)
			}
			tqSec += res.Elapsed.Seconds()
			tqLand[i][j] = tqsim.ExpectedCut(g, res.Counts)
		}
	}

	fmt.Printf("\nTQSim cost landscape (gamma down, beta across; dark = high cut):\n")
	shades := []byte(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			lo = math.Min(lo, tqLand[i][j])
			hi = math.Max(hi, tqLand[i][j])
		}
	}
	for i := 0; i < grid; i++ {
		fmt.Print("  ")
		for j := 0; j < grid; j++ {
			level := int((tqLand[i][j] - lo) / (hi - lo + 1e-12) * float64(len(shades)-1))
			fmt.Printf("%c%c", shades[level], shades[level])
		}
		fmt.Println()
	}

	var mse float64
	opt2 := float64(g.MaxCut())
	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			d := (baseLand[i][j] - tqLand[i][j]) / opt2
			mse += d * d
		}
	}
	mse /= grid * grid
	fmt.Printf("\ngrid points %d, baseline %.1fs, tqsim %.1fs (%.2fx), landscape MSE %.5f\n",
		grid*grid, baseSec, tqSec, baseSec/tqSec, mse)
	fmt.Println("(paper Figure 18: 1.6-3.7x speedup, MSE ~0.002)")
}
