module tqsim

go 1.24
