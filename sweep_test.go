package tqsim_test

import (
	"context"
	"reflect"
	"testing"

	"tqsim"
)

// sweepTestSpec returns a noise-grid spec over a non-Clifford circuit with
// a Clifford-ish prefix — depolarizing rates low enough that many tree
// segments draw no firing channel, so prefix reuse actually engages.
func sweepTestSpec() *tqsim.SweepSpec {
	return &tqsim.SweepSpec{
		Circuit: "qft_n8",
		Noise: []tqsim.SweepNoisePoint{
			{P1: 0.0005, P2: 0.002},
			{P1: 0.001, P2: 0.015},
			{Name: "DC"},
		},
		Shots:    []int{300, 500},
		Repeats:  2,
		Seed:     42,
		CopyCost: 5,
		Backend:  "statevec",
	}
}

// TestSweepIdentityVsStandalone is the determinism contract: every sweep
// point's histogram is byte-identical to an independent RunTQSim call at the
// derived seed — with reuse on and off, serial and point-parallel.
func TestSweepIdentityVsStandalone(t *testing.T) {
	base := sweepTestSpec()

	variants := []struct {
		name string
		mut  func(*tqsim.SweepSpec)
	}{
		{"reuse-serial", func(s *tqsim.SweepSpec) {}},
		{"noreuse-serial", func(s *tqsim.SweepSpec) { s.NoReuse = true }},
		{"reuse-parallel", func(s *tqsim.SweepSpec) { s.Concurrency = 4 }},
		{"noreuse-parallel", func(s *tqsim.SweepSpec) { s.NoReuse = true; s.Concurrency = 4 }},
	}

	// Reference: each point standalone through the public entry points.
	ref := map[int]map[uint64]int{}
	refSpec := *base
	prep, err := tqsim.PrepareSweep(&refSpec)
	if err != nil {
		t.Fatal(err)
	}
	c := tqsim.BenchmarkByName(base.Circuit)
	for i := 0; i < prep.NumPoints(); i++ {
		pt := prep.Point(i)
		m := pt.Noise.Model()
		opt := tqsim.Options{
			Seed:     tqsim.SweepSeed(base.Seed, i),
			CopyCost: base.CopyCost,
			Backend:  base.Backend,
		}
		res, err := tqsim.RunTQSim(c, m, pt.Shots, opt)
		if err != nil {
			t.Fatalf("standalone point %d: %v", i, err)
		}
		ref[i] = res.Counts
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			spec := *base
			v.mut(&spec)
			res, err := tqsim.RunSweep(&spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Points) != len(ref) {
				t.Fatalf("got %d points, want %d", len(res.Points), len(ref))
			}
			for _, pr := range res.Points {
				if !reflect.DeepEqual(pr.Counts, ref[pr.Index]) {
					t.Errorf("point %d (%s): histogram differs from standalone RunTQSim",
						pr.Index, pr.Noise)
				}
				if pr.Seed != tqsim.SweepSeed(spec.Seed, pr.Index) {
					t.Errorf("point %d: seed %d, want SweepSeed derivation", pr.Index, pr.Seed)
				}
			}
			if !spec.NoReuse && res.PrefixReuseHits == 0 {
				t.Error("reuse enabled but no prefix hits — the shortcut never engaged")
			}
			if spec.NoReuse && res.PrefixReuseHits != 0 {
				t.Error("reuse disabled but prefix hits reported")
			}
		})
	}
}

// TestSweepReuseReducesWork pins the acceptance criterion: with reuse on,
// the sweep performs measurably fewer gate applications than with reuse
// off, while the histograms stay identical (checked above).
func TestSweepReuseReducesWork(t *testing.T) {
	on := sweepTestSpec()
	off := sweepTestSpec()
	off.NoReuse = true

	resOn, err := tqsim.RunSweep(on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := tqsim.RunSweep(off)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.PrefixReuseHits == 0 {
		t.Fatal("no prefix reuse hits on a light-noise sweep")
	}
	if resOn.GateApplications >= resOff.GateApplications {
		t.Fatalf("reuse on did %d gate applications, reuse off %d — expected a reduction",
			resOn.GateApplications, resOff.GateApplications)
	}
	t.Logf("gate applications: reuse on %d, off %d (ratio %.3f), prefix hits %d",
		resOn.GateApplications, resOff.GateApplications,
		float64(resOn.GateApplications)/float64(resOff.GateApplications),
		resOn.PrefixReuseHits)
}

// TestSweepPlanSharing verifies the plan/decision dedupe: repeats of one
// cell share a plan, and noise-independent partitioners share one plan
// across the whole noise axis.
func TestSweepPlanSharing(t *testing.T) {
	spec := sweepTestSpec()
	res, err := tqsim.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 3 noise × 2 shots × 2 repeats = 12 points. DCP plans depend on
	// (noise, shots): at most 6 distinct plans, and decisions likewise.
	if len(res.Points) != 12 {
		t.Fatalf("got %d points, want 12", len(res.Points))
	}
	if res.PlansBuilt > 6 {
		t.Errorf("built %d plans for 6 cells — repeats are not sharing", res.PlansBuilt)
	}
	for _, pr := range res.Points {
		if pr.Rep == 1 && !pr.PlanShared {
			t.Errorf("point %d rep 1 did not share its cell's plan", pr.Index)
		}
		if pr.Decision == nil {
			t.Errorf("point %d carries no planner decision", pr.Index)
		}
	}

	// UCP ignores noise: one plan for the whole noise axis per shot count.
	ucp := sweepTestSpec()
	ucp.Partitions = []tqsim.SweepPartition{{Strategy: "ucp", Levels: 3}}
	ucp.Repeats = 1
	resU, err := tqsim.RunSweep(ucp)
	if err != nil {
		t.Fatal(err)
	}
	if resU.PlansBuilt != 2 { // one per shots value
		t.Errorf("UCP sweep built %d plans, want 2 (noise axis must share)", resU.PlansBuilt)
	}
}

// TestSweepBaselineModeIdentity checks mode "baseline" against RunBackend.
func TestSweepBaselineModeIdentity(t *testing.T) {
	spec := &tqsim.SweepSpec{
		Circuit: "bv_n8",
		Noise:   []tqsim.SweepNoisePoint{{Name: "DC"}, {P1: 0.002, P2: 0.01}},
		Shots:   []int{200},
		Mode:    "baseline",
		Seed:    7,
		Backend: "statevec",
	}
	res, err := tqsim.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := tqsim.BenchmarkByName("bv_n8")
	for _, pr := range res.Points {
		m := tqsim.SweepNoisePoint{Name: pr.Noise}.Model()
		if pr.Noise != "DC" {
			m = tqsim.DepolarizingNoise(0.002, 0.01)
		}
		ref, err := tqsim.RunBackend(c, m, pr.Shots, tqsim.Options{
			Seed: tqsim.SweepSeed(spec.Seed, pr.Index), Backend: "statevec",
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pr.Counts, ref.Counts) {
			t.Errorf("baseline point %d differs from RunBackend", pr.Index)
		}
	}
}

// TestSweepAutoPlannerRouting: with Backend auto, the sweep resolves each
// point through the planner exactly as RunTQSim would — a Clifford circuit
// under Pauli noise lands on the tableau tree and still matches standalone.
func TestSweepAutoPlannerRouting(t *testing.T) {
	spec := &tqsim.SweepSpec{
		Circuit: "bv_n10",
		Noise:   []tqsim.SweepNoisePoint{{Name: "DC"}},
		Shots:   []int{400},
		Seed:    3,
	}
	res, err := tqsim.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Points[0]
	if pr.Backend != "stabilizer" {
		t.Fatalf("auto routed %s, want the stabilizer tableau tree", pr.Backend)
	}
	c := tqsim.BenchmarkByName("bv_n10")
	ref, err := tqsim.RunTQSim(c, tqsim.SycamoreNoise(), 400, tqsim.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pr.Counts, ref.Counts) {
		t.Error("auto-routed sweep point differs from standalone RunTQSim")
	}
}

// TestSweepObservableIdentity checks Hamiltonian sweeps against the
// standalone estimators at the derived seeds.
func TestSweepObservableIdentity(t *testing.T) {
	c := tqsim.BenchmarkByName("qft_n8")
	h := tqsim.TransverseFieldIsing(8, 1.0, 0.6)
	spec := &tqsim.SweepSpec{
		Circuits:   []*tqsim.Circuit{c},
		Noise:      []tqsim.SweepNoisePoint{{P1: 0.001, P2: 0.01}},
		Shots:      []int{250},
		Repeats:    2,
		Seed:       11,
		CopyCost:   5,
		Observable: h,
	}
	res, err := tqsim.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Points {
		if pr.Estimate == nil {
			t.Fatalf("point %d: no estimate", pr.Index)
		}
		stats, _, err := tqsim.EstimateExpectationTQSim(c, tqsim.DepolarizingNoise(0.001, 0.01), h, pr.Shots,
			tqsim.Options{Seed: tqsim.SweepSeed(spec.Seed, pr.Index), CopyCost: 5})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Mean != pr.Estimate.Mean || stats.StdErr != pr.Estimate.StdErr {
			t.Errorf("point %d: estimate %v differs from standalone %v", pr.Index, pr.Estimate, stats)
		}
	}
	if res.PrefixReuseHits == 0 {
		t.Error("observable sweep should also hit the prefix cache")
	}
}

// TestSweepFidelityAndCancel covers the fidelity observable and context
// cancellation.
func TestSweepFidelityAndCancel(t *testing.T) {
	spec := sweepTestSpec()
	spec.Fidelity = true
	res, err := tqsim.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := tqsim.BenchmarkByName(spec.Circuit)
	ideal := tqsim.IdealDistribution(c)
	for _, pr := range res.Points {
		// Equation 9 can go negative (worse than uniform); check the exact
		// value instead of a range.
		want := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(pr.Counts, pr.Width))
		if !pr.HasFidelity || pr.Fidelity != want {
			t.Errorf("point %d: fidelity %v (has=%v), want %v", pr.Index, pr.Fidelity, pr.HasFidelity, want)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tqsim.RunSweepContext(ctx, sweepTestSpec(), nil); err == nil {
		t.Error("cancelled sweep returned no error")
	}
}

// TestSweepPinnedBoundsIdentity: a "structure" partition entry with pinned
// bounds reproduces an externally derived plan exactly — the §5.5 pattern
// (derive the tree from one noise model, hold it fixed across the axis) —
// and matches a standalone RunPlan on that plan at the derived seeds.
func TestSweepPinnedBoundsIdentity(t *testing.T) {
	c := tqsim.BenchmarkByName("qft_n8")
	opt := tqsim.Options{Seed: 13, CopyCost: 5, Backend: "statevec"}
	plan := tqsim.PlanDCP(c, tqsim.SycamoreNoise(), 400, opt)
	spec := &tqsim.SweepSpec{
		Circuit: "qft_n8",
		Noise:   []tqsim.SweepNoisePoint{{Name: "DC"}, {P1: 0.0005, P2: 0.002}},
		Shots:   []int{400},
		Partitions: []tqsim.SweepPartition{
			{Strategy: "structure", Structure: plan.Arities, Bounds: plan.Bounds},
		},
		Seed:     13,
		CopyCost: 5,
		Backend:  "statevec",
	}
	res, err := tqsim.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlansBuilt != 1 {
		t.Errorf("pinned plan built %d times, want 1 (shared across the noise axis)", res.PlansBuilt)
	}
	for _, pr := range res.Points {
		if pr.Structure != plan.Structure() {
			t.Errorf("point %d ran structure %s, want pinned %s", pr.Index, pr.Structure, plan.Structure())
		}
		var m *tqsim.NoiseModel
		if pr.Noise == "DC" {
			m = tqsim.SycamoreNoise()
		} else {
			m = tqsim.DepolarizingNoise(0.0005, 0.002)
		}
		o := opt
		o.Seed = tqsim.SweepSeed(spec.Seed, pr.Index)
		ref, err := tqsim.RunPlan(plan, m, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pr.Counts, ref.Counts) {
			t.Errorf("point %d differs from standalone RunPlan on the pinned plan", pr.Index)
		}
	}
}
