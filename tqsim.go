// Package tqsim is a tree-based noisy quantum circuit simulator — a from-
// scratch Go implementation of "Accelerating Simulation of Quantum Circuits
// under Noise via Computational Reuse" (Wang, Tannu, Nair; ISCA 2025).
//
// Noisy (quantum-trajectory) simulation re-executes a circuit for thousands
// of shots. TQSim partitions the circuit into subcircuits, arranges shots as
// a simulation tree, and reuses each intermediate state across all children,
// cutting total computation by 1.5-4x with a statistically bounded accuracy
// loss.
//
// Basic use:
//
//	c := tqsim.NewCircuit("bell", 2)
//	c.H(0).CX(0, 1)
//	noise := tqsim.SycamoreNoise()
//	cmp, err := tqsim.Compare(c, noise, 4000, tqsim.Options{Seed: 1})
//	fmt.Println(cmp.Speedup, cmp.FidelityDiff)
//
// The facade re-exports the building blocks (circuits, gates, noise models,
// partition plans, metrics, workload generators) so downstream code rarely
// needs the internal packages directly.
package tqsim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"tqsim/internal/circuit"
	"tqsim/internal/cluster"
	"tqsim/internal/core"
	"tqsim/internal/densmat"
	// Registration-only import: fusion's init registers the "fusion"
	// engine in the core backend registry.
	_ "tqsim/internal/fusion"
	"tqsim/internal/gate"
	"tqsim/internal/hpcmodel"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/planner"
	"tqsim/internal/qasm"
	"tqsim/internal/rng"
	"tqsim/internal/stabilizer"
	"tqsim/internal/statevec"
	"tqsim/internal/trajectory"
)

// Re-exported core types. The facade uses type aliases so values flow
// freely between the public API and the internal engines.
type (
	// Circuit is an ordered gate list over a fixed qubit register.
	Circuit = circuit.Circuit
	// Gate is a single gate instance.
	Gate = gate.Gate
	// NoiseModel binds error channels to gates.
	NoiseModel = noise.Model
	// NoiseChannel is a single error channel.
	NoiseChannel = noise.Channel
	// Plan is a simulation-tree specification.
	Plan = partition.Plan
	// TreeResult is a TQSim run result.
	TreeResult = core.Result
	// BaselineResult is a conventional multi-shot run result.
	BaselineResult = trajectory.Result
	// Backend is a pluggable gate-execution engine.
	Backend = core.Backend
	// Dist is a dense probability distribution over basis outcomes.
	Dist = metrics.Dist
	// Decision is the planner's explainable engine choice: chosen backend,
	// worker count, shard count, cost/peak-memory estimates, and every
	// rejected candidate with its reason. Decisions are deterministic in
	// (plan, noise, budget, worker count) — with Parallelism unset the
	// worker count defaults to GOMAXPROCS, so within one process (the
	// scope of tqsimd's cache) repeated calls always agree.
	Decision = planner.Decision
	// PlannerCandidate is one engine the planner evaluated for a Decision.
	PlannerCandidate = planner.Candidate
	// PrefixSnapshots is a read-only set of ideal (noise-free) states at a
	// plan's subcircuit boundaries — the substrate of ideal-prefix reuse.
	// Safe to share across concurrent runs; see RunPlanPrefixed.
	PrefixSnapshots = core.PrefixSnapshots
	// SnapshotCache is a byte-bounded cross-job cache of ideal boundary
	// states, keyed per boundary by the structural digest of the gate
	// prefix before it. Any two jobs whose circuits share a gate prefix
	// share the cached state at every common plan boundary. Safe for
	// concurrent use; see NewSnapshotCache.
	SnapshotCache = core.SnapshotCache
)

// AutoBackend is the Options.Backend value that delegates engine selection
// to the planner. It is the effective default for RunTQSim and RunBackend:
// a zero Options runs each plan on the engine the planner picks (statevec
// for narrow non-Clifford circuits, the stabilizer tableau tree for
// Clifford circuits under Pauli noise, ...). Selection is deterministic in
// (plan, noise, budget, worker count — GOMAXPROCS when Parallelism is
// unset); the sampled histogram remains a pure function of (circuit,
// noise, shots, seed, chosen backend) exactly as with an explicit Backend.
const AutoBackend = "auto"

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// ParseQASM parses an OpenQASM 2.0 program (single quantum register,
// standard gate set) into a circuit.
func ParseQASM(name, src string) (*Circuit, error) {
	prog, err := qasm.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return prog.Circuit, nil
}

// SerializeQASM renders a circuit as OpenQASM 2.0.
func SerializeQASM(c *Circuit) (string, error) { return qasm.Serialize(c) }

// SycamoreNoise returns the paper's primary model: depolarizing channels at
// Google Sycamore error rates (0.1% one-qubit, 1.5% two-qubit).
func SycamoreNoise() *NoiseModel { return noise.NewSycamore() }

// DepolarizingNoise returns a depolarizing model at the given rates.
func DepolarizingNoise(p1, p2 float64) *NoiseModel { return noise.NewDepolarizing(p1, p2) }

// NoiseByName builds one of the paper's nine Figure-16 model variants (DC,
// DCR, TR, TRR, AD, ADR, PD, PDR, ALL); unknown names return nil (ideal).
func NoiseByName(name string) *NoiseModel { return noise.ByName(name) }

// Options tunes a simulation run.
type Options struct {
	// Seed selects the reproducible trajectory stream (default 0).
	Seed uint64
	// CopyCost overrides the state-copy cost (gate-equivalents) used by
	// DCP; zero selects the fixed library default (host-independent, so
	// plans stay reproducible across machines). cmd/tqsim profiles the host
	// instead; ProfileCopyCost exposes the same measurement.
	CopyCost float64
	// MaxLevels caps the subcircuit count (0 = automatic).
	MaxLevels int
	// MemoryBudgetBytes caps concurrent intermediate-state memory
	// (0 = unlimited).
	MemoryBudgetBytes int64
	// Backend selects the gate-execution engine by registry name:
	// "statevec", "fusion", "stabilizer", "densmat", or "cluster" — see
	// Backends — or "auto" (AutoBackend) to let the planner choose.
	// RunTQSim and RunBackend default to "auto"; RunPlan, RunBaseline and
	// the observable estimators keep "statevec" as the empty-string default
	// for compatibility. "stabilizer" is the hybrid Clifford
	// dispatcher: Clifford-only circuits under Pauli noise run entirely on
	// tableaux (polynomial time and memory, so widths beyond the dense
	// engines' reach work); circuits with non-Clifford gates run their
	// maximal Clifford prefix on tableaux and hand off to the dense
	// kernels at the first non-Clifford gate. "densmat" computes the exact
	// noisy distribution (<= 12 qubits) and samples outcomes from it.
	Backend string
	// ClusterNodes sets the shard count for the cluster backend (a power
	// of two; 0 selects the default). Ignored by other backends.
	ClusterNodes int
	// UseFusionBackend runs on the gate-fusion backend instead of the
	// plain state-vector backend. Deprecated: set Backend to "fusion";
	// Backend wins when both are set.
	UseFusionBackend bool
	// Parallelism sets worker counts: shot-level for the baseline and
	// first-level-subtree for TQSim trees (0 = sequential). Histograms are
	// seed-deterministic at any parallelism.
	Parallelism int
	// Epsilon overrides Equation 5's margin of error (0 = default 0.02).
	Epsilon float64
}

// Backends lists every registered engine name, sorted.
func Backends() []string { return core.Backends() }

// backendName resolves the effective engine name. The empty name stays
// "statevec" here — only RunTQSim and RunBackend promote it to "auto", so
// lower-level entry points keep their historical default.
func (o Options) backendName() string {
	if o.Backend != "" {
		return o.Backend
	}
	if o.UseFusionBackend {
		return "fusion"
	}
	return "statevec"
}

// autoDefault promotes the zero-value backend to planner dispatch — the
// RunTQSim/RunBackend default. The deprecated UseFusionBackend flag keeps
// its explicit meaning.
func (o Options) autoDefault() Options {
	if o.Backend == "" && !o.UseFusionBackend {
		o.Backend = AutoBackend
	}
	return o
}

// plannerBudget translates the run options into the planner's resource
// budget.
func (o Options) plannerBudget() planner.Budget {
	return planner.Budget{
		MemoryBytes:  o.MemoryBudgetBytes,
		Parallelism:  o.Parallelism,
		ClusterNodes: o.ClusterNodes,
	}
}

// resolveAuto replaces Backend "auto" with the planner's concrete choice for
// the plan, folding the decided parallelism and shard count into the
// options. Non-auto options pass through untouched.
func (o Options) resolveAuto(p *Plan, m *NoiseModel) (Options, *Decision, error) {
	if o.backendName() != AutoBackend {
		return o, nil, nil
	}
	d, err := planner.Decide(p, m, o.plannerBudget())
	if err != nil {
		return o, d, err
	}
	o.Backend = d.Backend
	// Always adopt the decided worker count: for an explicit
	// Options.Parallelism the planner starts from it and only lowers it
	// when the memory budget cannot hold that many worker state sets —
	// keeping the caller's count would overrun the budget the decision
	// just enforced.
	o.Parallelism = d.Parallelism
	if o.ClusterNodes == 0 {
		o.ClusterNodes = d.ClusterNodes
	}
	return o, d, nil
}

// DecidePlan returns the planner's Decision for an explicit plan — the
// explainability hook behind Options.Backend == "auto". The Decision lists
// the chosen engine, worker count and shard count plus every rejected
// candidate with its reason; it never executes anything. Deterministic in
// (plan, noise, budget).
func DecidePlan(p *Plan, m *NoiseModel, opt Options) (*Decision, error) {
	return planner.Decide(p, m, opt.plannerBudget())
}

// Explain returns the planner's Decision for the DCP plan RunTQSim would
// execute with these options, without running it. cmd/tqsim -explain and
// the tqsimd plan endpoint render its String form.
func Explain(c *Circuit, m *NoiseModel, shots int, opt Options) (*Decision, error) {
	return DecidePlan(PlanDCP(c, m, shots, opt), m, opt)
}

// backend constructs the gate-apply backend for the tree executor. External
// engines (densmat) and the pure-tableau path are routed before this is
// called. Only the cluster shard-count override needs a special case; every
// other name goes through the registry.
func (o Options) backend() (Backend, error) {
	name := o.backendName()
	if name == "cluster" && o.ClusterNodes > 0 {
		return cluster.NewBackend(o.ClusterNodes), nil
	}
	return core.NewBackend(name)
}

func (o Options) dcpOptions() partition.DCPOptions {
	return partition.DCPOptions{
		CopyCost:          o.CopyCost,
		Epsilon:           o.Epsilon,
		MaxLevels:         o.MaxLevels,
		MemoryBudgetBytes: o.MemoryBudgetBytes,
	}
}

// PlanDCP builds the Dynamic Circuit Partition plan for a circuit, noise
// model, and shot budget. Planning is deterministic: the same inputs (with
// an explicit CopyCost — zero selects the fixed default, never a host
// profile) always produce the same tree, which is what lets tqsimd cache
// plans by job key.
func PlanDCP(c *Circuit, m *NoiseModel, shots int, opt Options) *Plan {
	return partition.Dynamic(c, m, shots, opt.dcpOptions())
}

// PlanStructure builds a manual plan with the given arity tuple over
// equal-length subcircuits (e.g. the paper's Figure 17 structures).
func PlanStructure(c *Circuit, arities []int) *Plan {
	return partition.FromStructure(c, arities)
}

// PlanBaseline returns the conventional flat (shots, 1, ..., 1) plan: no
// subcircuit reuse, one independent trajectory per shot — what RunBackend
// executes. Exposed so services can plan and admission-check baseline jobs
// through the same DecidePlan path as tree jobs.
func PlanBaseline(c *Circuit, shots int) *Plan {
	return partition.Baseline(c, shots)
}

// RunBaseline simulates shots noisy trajectories the conventional way.
// Histograms are a pure function of (circuit, noise, shots, seed, backend):
// identical across Options.Parallelism settings and repeated runs. The
// default state-vector engine runs through the dedicated trajectory
// simulator; any other Options.Backend routes the (shots,) baseline plan
// through the selected engine. Engine errors (unknown name, width beyond
// the engine's limit) panic in this error-free signature — error-sensitive
// callers use RunBaselineBackend or RunBackend.
func RunBaseline(c *Circuit, m *NoiseModel, shots int, opt Options) *BaselineResult {
	res, err := RunBaselineBackend(c, m, shots, opt)
	if err != nil {
		panic(err)
	}
	return res
}

// RunBaselineBackend is RunBaseline with engine errors returned instead of
// panicking.
func RunBaselineBackend(c *Circuit, m *NoiseModel, shots int, opt Options) (*BaselineResult, error) {
	if opt.backendName() != "statevec" {
		res, err := RunBackend(c, m, shots, opt)
		if err != nil {
			return nil, err
		}
		return &BaselineResult{
			Counts:           res.Counts,
			Shots:            res.Outcomes,
			GateApplications: res.GateApplications,
			StateCopies:      res.StateCopies,
			PeakStateBytes:   res.PeakStateBytes,
			Elapsed:          res.Elapsed,
		}, nil
	}
	return trajectory.Run(c, m, shots, trajectory.Options{
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
	}), nil
}

// RunBackend executes shots independent trajectories of c on the engine
// selected by Options.Backend, through the tree executor's flat baseline
// plan. It is the uniform entry point the cross-backend conformance suite
// drives: every registered engine is reachable from here by name. A zero
// Backend defaults to "auto" (planner dispatch); histograms remain a pure
// function of (circuit, noise, shots, seed, chosen backend) at any
// Parallelism.
func RunBackend(c *Circuit, m *NoiseModel, shots int, opt Options) (*TreeResult, error) {
	return RunPlan(partition.Baseline(c, shots), m, opt.autoDefault())
}

// RunIdeal simulates the noise-free circuit once and samples shots
// outcomes. Deterministic in (circuit, shots, seed).
func RunIdeal(c *Circuit, shots int, seed uint64) *BaselineResult {
	return trajectory.RunIdeal(c, shots, seed)
}

// RunTQSim partitions the circuit with DCP and executes the simulation
// tree. A zero Options.Backend defaults to "auto": the planner inspects the
// plan and picks the engine (see Explain for the reasoning). For a fixed
// chosen backend the histogram is a pure function of (circuit, noise,
// shots, seed) — identical across Parallelism settings and repeated runs.
func RunTQSim(c *Circuit, m *NoiseModel, shots int, opt Options) (*TreeResult, error) {
	opt = opt.autoDefault()
	return RunPlan(PlanDCP(c, m, shots, opt), m, opt)
}

// RunPlan executes an explicit simulation-tree plan. Options.Parallelism
// distributes first-level subtrees across workers; results are
// seed-deterministic regardless.
//
// Engine routing: "auto" resolves to the planner's Decision for this plan
// first (see DecidePlan); "densmat" computes the exact distribution and
// samples the plan's leaf count from it; "stabilizer" runs Clifford-only
// circuits under
// ideal or depolarizing noise entirely on tableaux (no dense state is ever
// allocated, so widths beyond the state-vector engine work) and otherwise
// falls back to the hybrid adapter on the dense executor; everything else
// is a gate-apply backend on the dense executor.
func RunPlan(p *Plan, m *NoiseModel, opt Options) (*TreeResult, error) {
	return RunPlanContext(context.Background(), p, m, opt)
}

// RunPlanContext is RunPlan with cooperative cancellation: when ctx is
// cancelled the run stops and returns ctx.Err() instead of a result.
// Cancellation is checked once per tree node on the dense engines (a node
// is a full subcircuit instance, so in-flight trajectory work stops within
// one O(2^n) segment); the polynomial-time routes (stabilizer tableau
// tree, densmat) check only between runs, since their whole execution
// costs less than one dense node. Completed runs are unaffected by ctx:
// for a fixed chosen backend the histogram remains a pure function of
// (circuit, noise, shots, seed).
func RunPlanContext(ctx context.Context, p *Plan, m *NoiseModel, opt Options) (*TreeResult, error) {
	return runPlanPrefixed(ctx, p, m, opt, nil)
}

// RunPlanPrefixed is RunPlanContext with an optional shared ideal-prefix
// snapshot set threaded into the dense executor — the reuse hook behind the
// sweep engine's cross-point reuse and tqsimd's cross-job snapshot cache
// (SnapshotCache.ForPlan builds a matching set). A nil prefix reproduces
// RunPlanContext exactly; a matching prefix changes the work accounting
// (TreeResult.PrefixReuseHits, PeakStateBytes), never the histogram — the
// executor only consults it on the plain dense backend under Pauli-only
// noise, where a no-fire segment's state is bitwise the cached boundary
// state.
func RunPlanPrefixed(ctx context.Context, p *Plan, m *NoiseModel, opt Options, prefix *PrefixSnapshots) (*TreeResult, error) {
	return runPlanPrefixed(ctx, p, m, opt, prefix)
}

// NewSnapshotCache returns a SnapshotCache holding at most maxBytes of
// boundary states (LRU-evicted beyond it; maxBytes <= 0 is unbounded).
// tqsimd constructs one per daemon (-snapshot-cache-mb) and threads it into
// every eligible job and sweep.
func NewSnapshotCache(maxBytes int64) *SnapshotCache {
	return core.NewSnapshotCache(maxBytes)
}

// CircuitDigest returns the circuit's structural sha256 identity: width
// plus the full gate list (kinds, operand qubits, parameter bits, explicit
// matrix bytes). Total where QASM serialization is not (raw unitaries have
// no QASM 2.0 form), and collision-resistant where a name/shape fallback is
// not — the identity tqsimd keys its plan cache and result store by.
func CircuitDigest(c *Circuit) string { return c.Digest() }

// runPlanPrefixed is RunPlanPrefixed's internal form (kept separate so the
// facade's own callers read uniformly).
func runPlanPrefixed(ctx context.Context, p *Plan, m *NoiseModel, opt Options, prefix *core.PrefixSnapshots) (*TreeResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.backendName() == AutoBackend {
		resolved, _, err := opt.resolveAuto(p, m)
		if err != nil {
			return nil, err
		}
		opt = resolved
	}
	name := opt.backendName()
	if name == "densmat" {
		return runDensmat(p, m, opt)
	}
	if name == "stabilizer" && m.PauliOnly() && stabilizer.IsClifford(p.Circuit) {
		return stabilizer.RunTree(p, m, opt.Seed, opt.Parallelism)
	}
	if err := denseWidthCheck(p.Circuit, name, m); err != nil {
		return nil, err
	}
	be, err := opt.backend()
	if err != nil {
		return nil, err
	}
	ex := &core.Executor{
		Backend:     be,
		Noise:       m,
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
		Context:     ctx,
		Prefix:      prefix,
	}
	return ex.Run(p)
}

// denseWidthCheck fails with a diagnosis when a circuit is about to reach
// the dense executor at a width it cannot allocate — instead of letting
// statevec panic. Every dense-engine entry point (RunPlan, the observable
// estimators) calls it after the polynomial-path routing has declined. The
// message carries the hpcmodel state-vector estimate, the same number the
// planner's rejection reasons report, so CLI errors and Decision candidate
// tables agree.
func denseWidthCheck(c *Circuit, name string, m *NoiseModel) error {
	n := c.NumQubits
	if n <= statevec.MaxQubits {
		return nil
	}
	est := hpcmodel.FormatBytes(hpcmodel.StatevectorBytes(n))
	if name == "stabilizer" {
		return fmt.Errorf(
			"tqsim: %d qubits exceeds the %d-qubit dense limit (state vector ≈ %s) and the stabilizer fast path does not apply (circuit Clifford-only: %v, noise Pauli-only: %v)",
			n, statevec.MaxQubits, est, stabilizer.IsClifford(c), m.PauliOnly())
	}
	return fmt.Errorf("tqsim: %d qubits exceeds the %s backend's %d-qubit dense limit (state vector ≈ %s)",
		n, name, statevec.MaxQubits, est)
}

// runDensmat executes a plan's leaf count of samples from the exact
// density-matrix distribution, wrapped in the executor's result type.
func runDensmat(p *Plan, m *NoiseModel, opt Options) (*TreeResult, error) {
	start := time.Now()
	counts, err := densmat.RunCounts(p.Circuit, m, p.TotalOutcomes(), opt.Seed)
	if err != nil {
		return nil, err
	}
	return &TreeResult{
		Counts:         counts,
		Outcomes:       p.TotalOutcomes(),
		Structure:      p.Structure(),
		BackendName:    "densmat",
		PeakStateBytes: int64(16) << uint(2*p.Circuit.NumQubits),
		Elapsed:        time.Since(start),
	}, nil
}

func init() {
	// internal/observable consumes densmat, so the external registration
	// lives here rather than in a densmat init (core -> observable ->
	// densmat -> core would cycle).
	core.RegisterExternal("densmat",
		"exact density-matrix engine; runs whole circuits outside the tree executor")
}

// IdealDistribution returns the exact noise-free outcome distribution —
// fully deterministic, no sampling.
func IdealDistribution(c *Circuit) Dist {
	return metrics.NewDist(trajectory.IdealState(c).Probabilities())
}

// ExactNoisyDistribution returns the density-matrix (exact) noisy outcome
// distribution; feasible up to about 12 qubits. Fully deterministic: the
// density matrix averages over all trajectories, so there is no sampling
// and no seed.
func ExactNoisyDistribution(c *Circuit, m *NoiseModel) Dist {
	return metrics.NewDist(densmat.Simulate(c, m))
}

// CountsDist converts a shot histogram into a distribution over the
// circuit's outcome space. Deterministic in its inputs.
func CountsDist(counts map[uint64]int, numQubits int) Dist {
	return metrics.FromCounts(counts, 1<<uint(numQubits))
}

// NormalizedFidelity computes the paper's Equation 9 metric.
// Deterministic in its two distributions.
func NormalizedFidelity(ideal, output Dist) float64 {
	return metrics.NormalizedFidelity(ideal, output)
}

// Comparison reports a baseline-versus-TQSim run on one circuit — the
// measurement underlying Figures 11 and 14.
type Comparison struct {
	// CircuitName, Width and Gates identify the workload.
	CircuitName string
	Width       int
	Gates       int
	// Structure is the DCP tree, e.g. "(464,3)".
	Structure string
	// Shots is the requested shot count; Outcomes the tree's leaf count.
	Shots    int
	Outcomes int
	// BaselineTime and TQSimTime are wall-clock durations.
	BaselineTime time.Duration
	TQSimTime    time.Duration
	// Speedup is BaselineTime / TQSimTime.
	Speedup float64
	// WorkRatio is TQSim kernel work over baseline kernel work — the
	// machine-independent speedup predictor.
	WorkRatio float64
	// BaselineFidelity and TQSimFidelity are normalized fidelities versus
	// the ideal distribution (Equation 9).
	BaselineFidelity float64
	TQSimFidelity    float64
	// FidelityDiff is |BaselineFidelity - TQSimFidelity| (Figure 14's
	// y-axis).
	FidelityDiff float64
	// TQSimPeakBytes is TQSim's peak state memory (Figure 9's x-axis).
	TQSimPeakBytes int64
}

// Compare runs both simulators on the circuit and reports speedup and
// fidelity agreement. A zero or "auto" Backend is resolved through the
// planner once, against the DCP plan, and the same concrete engine then
// runs both sides — comparing a statevec baseline against a tableau tree
// would measure an engine swap, not the tree reuse.
func Compare(c *Circuit, m *NoiseModel, shots int, opt Options) (*Comparison, error) {
	opt = opt.autoDefault()
	if opt.backendName() == AutoBackend {
		resolved, _, err := opt.resolveAuto(PlanDCP(c, m, shots, opt), m)
		if err != nil {
			return nil, err
		}
		opt = resolved
	}
	base, err := RunBaselineBackend(c, m, shots, opt)
	if err != nil {
		return nil, err
	}
	tq, err := RunTQSim(c, m, shots, opt)
	if err != nil {
		return nil, err
	}
	ideal := IdealDistribution(c)
	baseF := NormalizedFidelity(ideal, CountsDist(base.Counts, c.NumQubits))
	// The tree over-provisions outcomes (the arity product rounds up past
	// the requested shots). Fidelity estimated from a histogram carries a
	// sample-size-dependent bias, so compare equal-size samples: thin the
	// tree's outcomes down to the baseline's shot count.
	tqCounts := SubsampleCounts(tq.Counts, shots, rng.SeedAt(opt.Seed, 0x5eed))
	tqF := NormalizedFidelity(ideal, CountsDist(tqCounts, c.NumQubits))
	diff := baseF - tqF
	if diff < 0 {
		diff = -diff
	}
	cmp := &Comparison{
		CircuitName:      c.Name,
		Width:            c.NumQubits,
		Gates:            c.Len(),
		Structure:        tq.Structure,
		Shots:            shots,
		Outcomes:         tq.Outcomes,
		BaselineTime:     base.Elapsed,
		TQSimTime:        tq.Elapsed,
		Speedup:          core.Speedup(base.Elapsed, tq.Elapsed),
		BaselineFidelity: baseF,
		TQSimFidelity:    tqF,
		FidelityDiff:     diff,
		TQSimPeakBytes:   tq.PeakStateBytes,
	}
	// Normalize work to a common outcome count: the baseline ran `shots`
	// trajectories while the tree produced tq.Outcomes leaves.
	basePerOutcome := float64(base.GateApplications) / float64(base.Shots)
	tqPerOutcome := float64(tq.GateApplications) / float64(tq.Outcomes)
	if basePerOutcome > 0 {
		cmp.WorkRatio = tqPerOutcome / basePerOutcome
	}
	return cmp, nil
}

// SubsampleCounts draws `target` outcomes from a histogram without
// replacement (deterministic for a given seed). The result is always a
// fresh map — histograms at or below the target are returned as a copy, so
// callers may mutate the result without corrupting the input. Fidelity
// estimated from a histogram carries a sample-size-dependent bias, so
// comparisons should thin both sides to a common count — Compare does this
// automatically.
func SubsampleCounts(counts map[uint64]int, target int, seed uint64) map[uint64]int {
	total := 0
	for _, v := range counts {
		total += v
	}
	if total <= target {
		out := make(map[uint64]int, len(counts))
		for k, v := range counts {
			out[k] = v
		}
		return out
	}
	// Expand to a flat outcome list (sorted keys — map iteration order
	// would break seed determinism) and take a partial Fisher-Yates
	// prefix. Shot counts are a few thousand, so this stays cheap.
	keys := make([]uint64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	flat := make([]uint64, 0, total)
	for _, k := range keys {
		for i := 0; i < counts[k]; i++ {
			flat = append(flat, k)
		}
	}
	r := rng.New(seed)
	out := make(map[uint64]int, len(counts))
	for i := 0; i < target; i++ {
		j := i + r.Intn(total-i)
		flat[i], flat[j] = flat[j], flat[i]
		out[flat[i]]++
	}
	return out
}

// ProfileCopyCost measures this host's state-copy cost in gate-equivalents
// at the given width (Figure 10's normalization). reps controls averaging.
// This is the one deliberately host-dependent entry point: it times real
// copies and kernels, so its result varies across machines and runs. Feed
// it into Options.CopyCost for locally tuned plans, or leave CopyCost zero
// for the fixed default when cross-host plan reproducibility matters.
func ProfileCopyCost(qubits, reps int) float64 {
	return core.ProfileCopyCost(qubits, reps).Ratio
}
