// Package tqsim is a tree-based noisy quantum circuit simulator — a from-
// scratch Go implementation of "Accelerating Simulation of Quantum Circuits
// under Noise via Computational Reuse" (Wang, Tannu, Nair; ISCA 2025).
//
// Noisy (quantum-trajectory) simulation re-executes a circuit for thousands
// of shots. TQSim partitions the circuit into subcircuits, arranges shots as
// a simulation tree, and reuses each intermediate state across all children,
// cutting total computation by 1.5-4x with a statistically bounded accuracy
// loss.
//
// Basic use:
//
//	c := tqsim.NewCircuit("bell", 2)
//	c.H(0).CX(0, 1)
//	noise := tqsim.SycamoreNoise()
//	cmp, err := tqsim.Compare(c, noise, 4000, tqsim.Options{Seed: 1})
//	fmt.Println(cmp.Speedup, cmp.FidelityDiff)
//
// The facade re-exports the building blocks (circuits, gates, noise models,
// partition plans, metrics, workload generators) so downstream code rarely
// needs the internal packages directly.
package tqsim

import (
	"sort"
	"time"

	"tqsim/internal/circuit"
	"tqsim/internal/core"
	"tqsim/internal/densmat"
	"tqsim/internal/fusion"
	"tqsim/internal/gate"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/qasm"
	"tqsim/internal/rng"
	"tqsim/internal/trajectory"
)

// Re-exported core types. The facade uses type aliases so values flow
// freely between the public API and the internal engines.
type (
	// Circuit is an ordered gate list over a fixed qubit register.
	Circuit = circuit.Circuit
	// Gate is a single gate instance.
	Gate = gate.Gate
	// NoiseModel binds error channels to gates.
	NoiseModel = noise.Model
	// NoiseChannel is a single error channel.
	NoiseChannel = noise.Channel
	// Plan is a simulation-tree specification.
	Plan = partition.Plan
	// TreeResult is a TQSim run result.
	TreeResult = core.Result
	// BaselineResult is a conventional multi-shot run result.
	BaselineResult = trajectory.Result
	// Backend is a pluggable gate-execution engine.
	Backend = core.Backend
	// Dist is a dense probability distribution over basis outcomes.
	Dist = metrics.Dist
)

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// ParseQASM parses an OpenQASM 2.0 program (single quantum register,
// standard gate set) into a circuit.
func ParseQASM(name, src string) (*Circuit, error) {
	prog, err := qasm.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return prog.Circuit, nil
}

// SerializeQASM renders a circuit as OpenQASM 2.0.
func SerializeQASM(c *Circuit) (string, error) { return qasm.Serialize(c) }

// SycamoreNoise returns the paper's primary model: depolarizing channels at
// Google Sycamore error rates (0.1% one-qubit, 1.5% two-qubit).
func SycamoreNoise() *NoiseModel { return noise.NewSycamore() }

// DepolarizingNoise returns a depolarizing model at the given rates.
func DepolarizingNoise(p1, p2 float64) *NoiseModel { return noise.NewDepolarizing(p1, p2) }

// NoiseByName builds one of the paper's nine Figure-16 model variants (DC,
// DCR, TR, TRR, AD, ADR, PD, PDR, ALL); unknown names return nil (ideal).
func NoiseByName(name string) *NoiseModel { return noise.ByName(name) }

// Options tunes a simulation run.
type Options struct {
	// Seed selects the reproducible trajectory stream (default 0).
	Seed uint64
	// CopyCost overrides the state-copy cost (gate-equivalents) used by
	// DCP; zero profiles a default.
	CopyCost float64
	// MaxLevels caps the subcircuit count (0 = automatic).
	MaxLevels int
	// MemoryBudgetBytes caps concurrent intermediate-state memory
	// (0 = unlimited).
	MemoryBudgetBytes int64
	// UseFusionBackend runs on the gate-fusion backend instead of the
	// plain state-vector backend.
	UseFusionBackend bool
	// Parallelism sets worker counts: shot-level for the baseline and
	// first-level-subtree for TQSim trees (0 = sequential). Histograms are
	// seed-deterministic at any parallelism.
	Parallelism int
	// Epsilon overrides Equation 5's margin of error (0 = default 0.02).
	Epsilon float64
}

func (o Options) backend() Backend {
	if o.UseFusionBackend {
		return fusion.New()
	}
	return core.PlainBackend{}
}

func (o Options) dcpOptions() partition.DCPOptions {
	return partition.DCPOptions{
		CopyCost:          o.CopyCost,
		Epsilon:           o.Epsilon,
		MaxLevels:         o.MaxLevels,
		MemoryBudgetBytes: o.MemoryBudgetBytes,
	}
}

// PlanDCP builds the Dynamic Circuit Partition plan for a circuit, noise
// model, and shot budget.
func PlanDCP(c *Circuit, m *NoiseModel, shots int, opt Options) *Plan {
	return partition.Dynamic(c, m, shots, opt.dcpOptions())
}

// PlanStructure builds a manual plan with the given arity tuple over
// equal-length subcircuits (e.g. the paper's Figure 17 structures).
func PlanStructure(c *Circuit, arities []int) *Plan {
	return partition.FromStructure(c, arities)
}

// RunBaseline simulates shots noisy trajectories the conventional way.
func RunBaseline(c *Circuit, m *NoiseModel, shots int, opt Options) *BaselineResult {
	return trajectory.Run(c, m, shots, trajectory.Options{
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
	})
}

// RunIdeal simulates the noise-free circuit once and samples shots
// outcomes.
func RunIdeal(c *Circuit, shots int, seed uint64) *BaselineResult {
	return trajectory.RunIdeal(c, shots, seed)
}

// RunTQSim partitions the circuit with DCP and executes the simulation
// tree.
func RunTQSim(c *Circuit, m *NoiseModel, shots int, opt Options) (*TreeResult, error) {
	return RunPlan(PlanDCP(c, m, shots, opt), m, opt)
}

// RunPlan executes an explicit simulation-tree plan. Options.Parallelism
// distributes first-level subtrees across workers; results are
// seed-deterministic regardless.
func RunPlan(p *Plan, m *NoiseModel, opt Options) (*TreeResult, error) {
	ex := &core.Executor{
		Backend:     opt.backend(),
		Noise:       m,
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
	}
	return ex.Run(p)
}

// IdealDistribution returns the exact noise-free outcome distribution.
func IdealDistribution(c *Circuit) Dist {
	return metrics.NewDist(trajectory.IdealState(c).Probabilities())
}

// ExactNoisyDistribution returns the density-matrix (exact) noisy outcome
// distribution; feasible up to about 12 qubits.
func ExactNoisyDistribution(c *Circuit, m *NoiseModel) Dist {
	return metrics.NewDist(densmat.Simulate(c, m))
}

// CountsDist converts a shot histogram into a distribution over the
// circuit's outcome space.
func CountsDist(counts map[uint64]int, numQubits int) Dist {
	return metrics.FromCounts(counts, 1<<uint(numQubits))
}

// NormalizedFidelity computes the paper's Equation 9 metric.
func NormalizedFidelity(ideal, output Dist) float64 {
	return metrics.NormalizedFidelity(ideal, output)
}

// Comparison reports a baseline-versus-TQSim run on one circuit — the
// measurement underlying Figures 11 and 14.
type Comparison struct {
	// CircuitName, Width and Gates identify the workload.
	CircuitName string
	Width       int
	Gates       int
	// Structure is the DCP tree, e.g. "(464,3)".
	Structure string
	// Shots is the requested shot count; Outcomes the tree's leaf count.
	Shots    int
	Outcomes int
	// BaselineTime and TQSimTime are wall-clock durations.
	BaselineTime time.Duration
	TQSimTime    time.Duration
	// Speedup is BaselineTime / TQSimTime.
	Speedup float64
	// WorkRatio is TQSim kernel work over baseline kernel work — the
	// machine-independent speedup predictor.
	WorkRatio float64
	// BaselineFidelity and TQSimFidelity are normalized fidelities versus
	// the ideal distribution (Equation 9).
	BaselineFidelity float64
	TQSimFidelity    float64
	// FidelityDiff is |BaselineFidelity - TQSimFidelity| (Figure 14's
	// y-axis).
	FidelityDiff float64
	// TQSimPeakBytes is TQSim's peak state memory (Figure 9's x-axis).
	TQSimPeakBytes int64
}

// Compare runs both simulators on the circuit and reports speedup and
// fidelity agreement.
func Compare(c *Circuit, m *NoiseModel, shots int, opt Options) (*Comparison, error) {
	base := RunBaseline(c, m, shots, opt)
	tq, err := RunTQSim(c, m, shots, opt)
	if err != nil {
		return nil, err
	}
	ideal := IdealDistribution(c)
	baseF := NormalizedFidelity(ideal, CountsDist(base.Counts, c.NumQubits))
	// The tree over-provisions outcomes (the arity product rounds up past
	// the requested shots). Fidelity estimated from a histogram carries a
	// sample-size-dependent bias, so compare equal-size samples: thin the
	// tree's outcomes down to the baseline's shot count.
	tqCounts := SubsampleCounts(tq.Counts, shots, opt.Seed^0x5eed)
	tqF := NormalizedFidelity(ideal, CountsDist(tqCounts, c.NumQubits))
	diff := baseF - tqF
	if diff < 0 {
		diff = -diff
	}
	cmp := &Comparison{
		CircuitName:      c.Name,
		Width:            c.NumQubits,
		Gates:            c.Len(),
		Structure:        tq.Structure,
		Shots:            shots,
		Outcomes:         tq.Outcomes,
		BaselineTime:     base.Elapsed,
		TQSimTime:        tq.Elapsed,
		Speedup:          core.Speedup(base.Elapsed, tq.Elapsed),
		BaselineFidelity: baseF,
		TQSimFidelity:    tqF,
		FidelityDiff:     diff,
		TQSimPeakBytes:   tq.PeakStateBytes,
	}
	// Normalize work to a common outcome count: the baseline ran `shots`
	// trajectories while the tree produced tq.Outcomes leaves.
	basePerOutcome := float64(base.GateApplications) / float64(base.Shots)
	tqPerOutcome := float64(tq.GateApplications) / float64(tq.Outcomes)
	if basePerOutcome > 0 {
		cmp.WorkRatio = tqPerOutcome / basePerOutcome
	}
	return cmp, nil
}

// SubsampleCounts draws `target` outcomes from a histogram without
// replacement (deterministic for a given seed). Histograms at or below the
// target are returned unchanged. Fidelity estimated from a histogram
// carries a sample-size-dependent bias, so comparisons should thin both
// sides to a common count — Compare does this automatically.
func SubsampleCounts(counts map[uint64]int, target int, seed uint64) map[uint64]int {
	total := 0
	for _, v := range counts {
		total += v
	}
	if total <= target {
		return counts
	}
	// Expand to a flat outcome list (sorted keys — map iteration order
	// would break seed determinism) and take a partial Fisher-Yates
	// prefix. Shot counts are a few thousand, so this stays cheap.
	keys := make([]uint64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	flat := make([]uint64, 0, total)
	for _, k := range keys {
		for i := 0; i < counts[k]; i++ {
			flat = append(flat, k)
		}
	}
	r := rng.New(seed)
	out := make(map[uint64]int, len(counts))
	for i := 0; i < target; i++ {
		j := i + r.Intn(total-i)
		flat[i], flat[j] = flat[j], flat[i]
		out[flat[i]]++
	}
	return out
}

// ProfileCopyCost measures this host's state-copy cost in gate-equivalents
// at the given width (Figure 10's normalization). reps controls averaging.
func ProfileCopyCost(qubits, reps int) float64 {
	return core.ProfileCopyCost(qubits, reps).Ratio
}
