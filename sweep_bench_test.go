package tqsim_test

import (
	"testing"

	"tqsim"
)

// BenchmarkSweepReuse measures the cross-point prefix-reuse win on a
// Clifford-prefix workload: the identical noise-grid sweep with reuse on
// versus off, reporting the amps-of-work ratio (gate applications with
// reuse over without — lower is better; 1.0 means the shortcut never
// fired). Histograms are byte-identical either way (TestSweepIdentity*),
// so the whole difference is eliminated redundant work.
func BenchmarkSweepReuse(b *testing.B) {
	spec := func(noReuse bool) *tqsim.SweepSpec {
		return &tqsim.SweepSpec{
			// QFT has a substantial ideal-reusable prefix under light
			// depolarizing noise; rates low enough that many tree segments
			// draw no firing channel.
			Circuit: "qft_n10",
			Noise: []tqsim.SweepNoisePoint{
				{P1: 0.0002, P2: 0.001},
				{P1: 0.0005, P2: 0.002},
				{P1: 0.001, P2: 0.005},
			},
			Shots:    []int{1000},
			Repeats:  2,
			Seed:     17,
			CopyCost: 5,
			Backend:  "statevec",
			NoReuse:  noReuse,
		}
	}

	var opsOn, opsOff, hits int64
	b.Run("reuse-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := tqsim.RunSweep(spec(false))
			if err != nil {
				b.Fatal(err)
			}
			opsOn, hits = res.GateApplications, res.PrefixReuseHits
		}
		b.ReportMetric(float64(opsOn), "gateops/sweep")
		b.ReportMetric(float64(hits), "prefix-hits/sweep")
	})
	b.Run("reuse-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := tqsim.RunSweep(spec(true))
			if err != nil {
				b.Fatal(err)
			}
			opsOff = res.GateApplications
		}
		b.ReportMetric(float64(opsOff), "gateops/sweep")
	})
	if opsOn > 0 && opsOff > 0 {
		ratio := float64(opsOn) / float64(opsOff)
		b.ReportMetric(ratio, "work-ratio")
		b.Logf("sweep work ratio (reuse on/off): %.3f — %d vs %d gate applications, %d prefix hits",
			ratio, opsOn, opsOff, hits)
		if ratio >= 1 {
			b.Errorf("prefix reuse produced no work reduction (ratio %.3f)", ratio)
		}
	}
}
