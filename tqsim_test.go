package tqsim

import (
	"math"
	"strings"
	"testing"

	"tqsim/internal/workloads"
)

func TestQuickstartFlow(t *testing.T) {
	c := NewCircuit("bell", 2)
	c.H(0).CX(0, 1)
	res := RunIdeal(c, 1000, 1)
	if res.Counts[1] != 0 || res.Counts[2] != 0 {
		t.Fatalf("bell sampled impossible outcomes: %v", res.Counts)
	}
}

func TestCompareOnSuiteCircuit(t *testing.T) {
	c := workloads.QFT(8, true)
	cmp, err := Compare(c, SycamoreNoise(), 1500, Options{Seed: 3, CopyCost: 10})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Width != 8 || cmp.Gates != c.Len() {
		t.Fatalf("identification wrong: %+v", cmp)
	}
	if cmp.Outcomes < cmp.Shots {
		t.Fatalf("outcomes %d below shots %d", cmp.Outcomes, cmp.Shots)
	}
	if cmp.WorkRatio <= 0 || cmp.WorkRatio >= 1 {
		t.Fatalf("work ratio %v should show reuse savings", cmp.WorkRatio)
	}
	// Single-seed smoke bound: fidelity estimates from 1500 shots over the
	// QFT's spread spectrum carry ~0.05 sampling noise; the averaged
	// statistical check is TestNoisyTreeMatchesBaselineFidelity and the
	// fig14 harness.
	if cmp.FidelityDiff > 0.15 {
		t.Fatalf("fidelity diff %v too large", cmp.FidelityDiff)
	}
	if !strings.HasPrefix(cmp.Structure, "(") {
		t.Fatalf("structure %q", cmp.Structure)
	}
}

func TestPlanStructureAndRunPlan(t *testing.T) {
	c := workloads.QPE(6, workloads.QPEPhase, true, -1)
	plan := PlanStructure(c, []int{50, 2, 2})
	res, err := RunPlan(plan, SycamoreNoise(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes != 200 {
		t.Fatalf("outcomes %d", res.Outcomes)
	}
}

func TestFusionBackendOption(t *testing.T) {
	c := workloads.QSC(6, 4, 2)
	res, err := RunTQSim(c, SycamoreNoise(), 400, Options{Seed: 7, UseFusionBackend: true, CopyCost: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.BackendName != "fusion" {
		t.Fatalf("backend %q", res.BackendName)
	}
}

func TestExactNoisyDistribution(t *testing.T) {
	c := NewCircuit("x", 1).X(0)
	d := ExactNoisyDistribution(c, DepolarizingNoise(0.3, 0))
	if math.Abs(d.P[0]-0.2) > 1e-12 { // 2p/3
		t.Fatalf("exact distribution %v", d.P)
	}
}

func TestQASMRoundTripFacade(t *testing.T) {
	c := workloads.BV(5, 3)
	src, err := SerializeQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseQASM("bv", src)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() || back.NumQubits != c.NumQubits {
		t.Fatal("round trip changed the circuit")
	}
}

func TestNoiseByNameFacade(t *testing.T) {
	if NoiseByName("DC") == nil || NoiseByName("ALL") == nil {
		t.Fatal("model lookup failed")
	}
	if NoiseByName("ideal") != nil {
		t.Fatal("ideal should be nil")
	}
}

func TestProfileCopyCostFacade(t *testing.T) {
	if r := ProfileCopyCost(10, 20); r <= 0 {
		t.Fatalf("ratio %v", r)
	}
}

func TestNormalizedFidelitySelf(t *testing.T) {
	c := workloads.BV(5, 3)
	ideal := IdealDistribution(c)
	if f := NormalizedFidelity(ideal, ideal); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self fidelity %v", f)
	}
}

func TestObservableFacade(t *testing.T) {
	g := RandomGraph(6, 0.5, 3)
	c := QAOACircuit(g, []QAOAParams{{Gamma: 0.6, Beta: 0.4}})
	h := MaxCutHamiltonian(g)
	ideal := ExactExpectation(c, h)
	if ideal <= 0 || ideal > float64(g.NumEdges()) {
		t.Fatalf("ideal cut expectation %v outside (0, |E|]", ideal)
	}
	opt := Options{Seed: 2, CopyCost: 5, Epsilon: 0.05}
	base, err := EstimateExpectationBaseline(c, SycamoreNoise(), h, 1500, opt)
	if err != nil {
		t.Fatal(err)
	}
	tq, run, err := EstimateExpectationTQSim(c, SycamoreNoise(), h, 1500, opt)
	if err != nil {
		t.Fatal(err)
	}
	if run.Outcomes < 1500 {
		t.Fatalf("tree produced %d estimates", run.Outcomes)
	}
	if diff := math.Abs(base.Mean - tq.Mean); diff > 5*(base.StdErr+tq.StdErr)+0.05 {
		t.Fatalf("estimates disagree: %v vs %v", base.Mean, tq.Mean)
	}
	if base.StdErr <= 0 || tq.StdErr <= 0 {
		t.Fatal("missing error bars")
	}
}

func TestTreeParallelismDeterministic(t *testing.T) {
	c := workloads.QPE(6, workloads.QPEPhase, true, -1)
	plan := PlanStructure(c, []int{20, 4, 4})
	a, err := RunPlan(plan, SycamoreNoise(), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPlan(plan, SycamoreNoise(), Options{Seed: 4, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("parallel facade run changed outcome %d", k)
		}
	}
}

func TestSubsampleCounts(t *testing.T) {
	counts := map[uint64]int{0: 700, 1: 300}
	thin := SubsampleCounts(counts, 100, 9)
	total := 0
	for _, v := range thin {
		total += v
	}
	if total != 100 {
		t.Fatalf("subsample total %d", total)
	}
	// Proportions roughly preserved.
	if thin[0] < 50 || thin[0] > 90 {
		t.Fatalf("subsample skewed: %v", thin)
	}
	// At or below target: unchanged.
	same := SubsampleCounts(counts, 2000, 9)
	if same[0] != 700 || same[1] != 300 {
		t.Fatal("under-target histogram modified")
	}
}
