package noise

import (
	"math"
	"testing"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// krausComplete checks sum_i K_i† K_i = I.
func krausComplete(t *testing.T, name string, ks []qmath.Matrix) {
	t.Helper()
	if len(ks) == 0 {
		t.Fatalf("%s: empty Kraus set", name)
	}
	sum := qmath.NewMatrix(ks[0].N)
	for _, k := range ks {
		sum = qmath.Add(sum, qmath.Mul(k.Dagger(), k))
	}
	if d := qmath.MaxAbsDiff(sum, qmath.Identity(sum.N)); d > 1e-10 {
		t.Errorf("%s: Kraus completeness violated by %v", name, d)
	}
}

func allChannels() []Channel {
	return []Channel{
		Depolarizing1Q{P: 0.03},
		Depolarizing2Q{P: 0.05},
		AmplitudeDamping{Gamma: 0.08},
		PhaseDamping{Lambda: 0.06},
		ThermalRelaxation{T1: 25, T2: 30, GateTime: 0.5},
		PerQubit{C: AmplitudeDamping{Gamma: 0.04}},
	}
}

func TestKrausCompleteness(t *testing.T) {
	for _, ch := range allChannels() {
		krausComplete(t, ch.Name(), ch.Kraus())
	}
}

func TestChannelArities(t *testing.T) {
	for _, ch := range allChannels() {
		dim := 1 << uint(ch.Arity())
		for _, k := range ch.Kraus() {
			if k.N != dim {
				t.Errorf("%s: Kraus dim %d for arity %d", ch.Name(), k.N, ch.Arity())
			}
		}
	}
}

func TestTrajectoryPreservesNorm(t *testing.T) {
	r := rng.New(1)
	for _, ch := range allChannels() {
		s := statevec.NewZero(3)
		s.Apply(gate.New(gate.KindH, 0))
		s.Apply(gate.New(gate.KindCX, 0, 1))
		s.Apply(gate.New(gate.KindH, 2))
		qs := []int{0}
		if ch.Arity() == 2 {
			qs = []int{0, 2}
		}
		for i := 0; i < 200; i++ {
			ch.ApplyTrajectory(s, qs, r)
			if d := math.Abs(s.Norm() - 1); d > 1e-9 {
				t.Fatalf("%s: norm drifted by %v after %d applications",
					ch.Name(), d, i+1)
			}
		}
	}
}

func TestDepolarizingFiresAtRate(t *testing.T) {
	const p = 0.25
	ch := Depolarizing1Q{P: p}
	r := rng.New(2)
	fired := 0
	const n = 50000
	for i := 0; i < n; i++ {
		s := statevec.NewZero(1) // |0>
		ch.ApplyTrajectory(s, []int{0}, r)
		// X and Y move |0> to |1|; Z leaves it. Count state changes and
		// scale: 2/3 of firings are visible.
		if s.Prob(1) > 0.5 {
			fired++
		}
	}
	visible := float64(fired) / n
	want := p * 2 / 3
	if math.Abs(visible-want) > 0.01 {
		t.Fatalf("visible flip rate %v, want %v", visible, want)
	}
}

func TestAmplitudeDampingDecaysExcitedState(t *testing.T) {
	const gamma = 0.2
	ch := AmplitudeDamping{Gamma: gamma}
	r := rng.New(3)
	var p1Sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		s := statevec.NewZero(1)
		s.Apply(gate.New(gate.KindX, 0)) // |1>
		ch.ApplyTrajectory(s, []int{0}, r)
		p1Sum += s.Prob(1)
	}
	mean := p1Sum / n
	if math.Abs(mean-(1-gamma)) > 0.01 {
		t.Fatalf("mean excited population %v, want %v", mean, 1-gamma)
	}
}

func TestAmplitudeDampingFixesGroundState(t *testing.T) {
	ch := AmplitudeDamping{Gamma: 0.3}
	r := rng.New(4)
	s := statevec.NewZero(1)
	for i := 0; i < 100; i++ {
		ch.ApplyTrajectory(s, []int{0}, r)
	}
	if p := s.Prob(0); math.Abs(p-1) > 1e-12 {
		t.Fatalf("ground state not fixed: P(0)=%v", p)
	}
}

func TestPhaseDampingPreservesPopulations(t *testing.T) {
	ch := PhaseDamping{Lambda: 0.4}
	r := rng.New(5)
	var p1Sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		s := statevec.NewZero(1)
		s.Apply(gate.New(gate.KindH, 0))
		for k := 0; k < 5; k++ {
			ch.ApplyTrajectory(s, []int{0}, r)
		}
		p1Sum += s.Prob1(0)
	}
	mean := p1Sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("phase damping changed population: %v", mean)
	}
}

func TestThermalRelaxationParams(t *testing.T) {
	tr := ThermalRelaxation{T1: 25, T2: 30, GateTime: 1}
	g, l := tr.params()
	if g <= 0 || g >= 1 || l <= 0 || l >= 1 {
		t.Fatalf("implausible parameters gamma=%v lambda=%v", g, l)
	}
	wantG := 1 - math.Exp(-1.0/25)
	if math.Abs(g-wantG) > 1e-12 {
		t.Fatalf("gamma %v, want %v", g, wantG)
	}
}

func TestThermalRelaxationRejectsUnphysicalT2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("T2 > 2*T1 accepted")
		}
	}()
	ThermalRelaxation{T1: 10, T2: 25, GateTime: 1}.Kraus()
}

func TestReadoutFlip(t *testing.T) {
	ro := Readout{P01: 1, P10: 0}
	r := rng.New(6)
	if got := ro.Flip(0b000, 3, r); got != 0b111 {
		t.Fatalf("P01=1 flip gave %b", got)
	}
	ro = Readout{P01: 0, P10: 1}
	if got := ro.Flip(0b101, 3, r); got != 0b000 {
		t.Fatalf("P10=1 flip gave %b", got)
	}
	ro = Readout{}
	if got := ro.Flip(0b101, 3, r); got != 0b101 {
		t.Fatalf("zero-rate readout changed bits: %b", got)
	}
}

func TestReadoutRate(t *testing.T) {
	ro := Readout{P01: 0.1, P10: 0.1}
	r := rng.New(7)
	flips := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if ro.Flip(0, 1, r) == 1 {
			flips++
		}
	}
	if f := float64(flips) / n; math.Abs(f-0.1) > 0.005 {
		t.Fatalf("flip rate %v", f)
	}
}

func TestModelGateErrorProb(t *testing.T) {
	m := NewDepolarizing(0.001, 0.015)
	g1 := gate.New(gate.KindH, 0)
	g2 := gate.New(gate.KindCX, 0, 1)
	if p := m.GateErrorProb(g1); math.Abs(p-0.001) > 1e-12 {
		t.Fatalf("1q error prob %v", p)
	}
	if p := m.GateErrorProb(g2); math.Abs(p-0.015) > 1e-12 {
		t.Fatalf("2q error prob %v", p)
	}
}

func TestSegmentErrorProbEquation4(t *testing.T) {
	m := NewDepolarizing(0.01, 0.05)
	c := circuit.New("e", 2).H(0).CX(0, 1).H(1)
	want := 1 - (1-0.01)*(1-0.05)*(1-0.01)
	if p := m.CircuitErrorProb(c); math.Abs(p-want) > 1e-12 {
		t.Fatalf("Equation 4 gives %v, want %v", p, want)
	}
}

func TestIdealModel(t *testing.T) {
	var m *Model
	if !m.Ideal() {
		t.Fatal("nil model not ideal")
	}
	if m.GateErrorProb(gate.New(gate.KindH, 0)) != 0 {
		t.Fatal("nil model has error")
	}
	s := statevec.NewZero(1)
	m.ApplyAfterGate(s, gate.New(gate.KindH, 0), rng.New(1)) // must not panic
	if m.FlipReadout(3, 2, rng.New(1)) != 3 {
		t.Fatal("nil model flipped readout")
	}
}

func TestByNameVariants(t *testing.T) {
	names := []string{"DC", "DCR", "TR", "TRR", "AD", "ADR", "PD", "PDR", "ALL"}
	for _, n := range names {
		m := ByName(n)
		if m == nil {
			t.Fatalf("ByName(%q) = nil", n)
		}
		if m.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, m.Name())
		}
		wantReadout := n == "ALL" || len(n) == 3 // DCR, TRR, ADR, PDR
		if (m.Readout != nil) != wantReadout {
			t.Fatalf("ByName(%q) readout presence wrong", n)
		}
	}
	if ByName("ideal") != nil || ByName("bogus") != nil {
		t.Fatal("ByName should return nil for ideal/unknown")
	}
}

func TestCombine(t *testing.T) {
	m := Combine("X", NewSycamore(), NewPhaseDamping(0.01))
	if len(m.OneQubit) != 2 || len(m.TwoQubit) != 2 {
		t.Fatalf("combine channel counts %d/%d", len(m.OneQubit), len(m.TwoQubit))
	}
}

func TestWithReadoutCopies(t *testing.T) {
	base := NewSycamore()
	withR := base.WithReadout(0.02)
	if base.Readout != nil {
		t.Fatal("WithReadout mutated the receiver")
	}
	if withR.Readout == nil || withR.ModelName != "DCR" {
		t.Fatal("WithReadout result wrong")
	}
}

func TestPerQubitErrorProb(t *testing.T) {
	p := PerQubit{C: Depolarizing1Q{P: 0.1}}
	want := 1 - 0.9*0.9
	if got := p.ErrorProb(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PerQubit error prob %v, want %v", got, want)
	}
}

func TestTrajectoryOpsAccounting(t *testing.T) {
	m := NewSycamore()
	if m.TrajectoryOps(gate.New(gate.KindH, 0)) != 1 {
		t.Fatal("1q op count")
	}
	if m.TrajectoryOps(gate.New(gate.KindCX, 0, 1)) != 1 {
		t.Fatal("2q op count")
	}
	var nilM *Model
	if nilM.TrajectoryOps(gate.New(gate.KindH, 0)) != 0 {
		t.Fatal("nil model op count")
	}
}

// TestSegmentFiresRNGIdentity pins the invariant ideal-prefix reuse rests
// on: when no channel fires over a segment, SegmentFires consumes the RNG
// stream exactly as the real trajectory channels would, so adopting the
// probe leaves a later trajectory on the identical stream. When something
// fires, SegmentFires must report it (the caller discards the probe and
// replays the segment for real, so consumption may then differ).
func TestSegmentFiresRNGIdentity(t *testing.T) {
	m := NewDepolarizing(0.05, 0.15) // rates high enough to exercise firing
	gs := []gate.Gate{
		gate.New(gate.KindH, 0),
		gate.New(gate.KindCX, 0, 1),
		gate.New(gate.KindT, 2),
		gate.New(gate.KindCX, 1, 2),
		gate.New(gate.KindX, 1),
	}
	st := statevec.NewZero(3)
	fires, noFires := 0, 0
	for seed := uint64(0); seed < 400; seed++ {
		probe := rng.New(seed)
		fired, ok := m.SegmentFires(gs, probe)
		if !ok {
			t.Fatal("depolarizing model must support the dry run")
		}
		// Real path on an independent generator at the same seed.
		real := rng.New(seed)
		realFired := false
		for _, g := range gs {
			st.CopyFrom(statevec.NewZero(3))
			if m.ApplyAfterGate(st, g, real) > 0 {
				realFired = true
				break
			}
		}
		if fired != realFired {
			t.Fatalf("seed %d: dry-run fired=%v, real path fired=%v", seed, fired, realFired)
		}
		if fired {
			fires++
			continue
		}
		noFires++
		// No-fire case: the probe and the real generator must be on the
		// identical stream position.
		if probe.Uint64() != real.Uint64() {
			t.Fatalf("seed %d: RNG consumption diverged on a no-fire segment", seed)
		}
	}
	if fires == 0 || noFires == 0 {
		t.Fatalf("degenerate sample: %d fires, %d no-fires", fires, noFires)
	}

	// Non-Pauli models must decline without consuming randomness.
	ad := NewAmplitudeDamping(0.1)
	r := rng.New(7)
	before := *r
	if _, ok := ad.SegmentFires(gs, r); ok {
		t.Fatal("amplitude damping cannot support a state-independent dry run")
	}
	if *r != before {
		t.Fatal("declined dry run consumed randomness")
	}

	// Nil model: never fires, consumes nothing.
	var nilM *Model
	r2 := rng.New(9)
	before2 := *r2
	if fired, ok := nilM.SegmentFires(gs, r2); !ok || fired {
		t.Fatal("nil model dry run")
	}
	if *r2 != before2 {
		t.Fatal("nil model consumed randomness")
	}
}
