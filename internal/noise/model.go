package noise

import (
	"strings"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// Readout is a classical measurement error: each measured bit flips
// 0->1 with probability P01 and 1->0 with probability P10.
type Readout struct {
	P01, P10 float64
}

// Flip perturbs the n-bit outcome according to the readout error.
func (ro Readout) Flip(bits uint64, n int, r *rng.RNG) uint64 {
	for q := 0; q < n; q++ {
		mask := uint64(1) << uint(q)
		p := ro.P01
		if bits&mask != 0 {
			p = ro.P10
		}
		if p > 0 && r.Float64() < p {
			bits ^= mask
		}
	}
	return bits
}

// Model binds noise channels to circuit execution. OneQubit channels follow
// every one-qubit gate (on its operand); TwoQubit channels follow every gate
// touching two or more qubits. Readout, when non-nil, perturbs sampled
// outcomes.
type Model struct {
	ModelName string
	OneQubit  []Channel // arity-1 channels
	TwoQubit  []Channel // arity-2 channels (wrap arity-1 with PerQubit)
	Readout   *Readout
}

// Name returns the model identifier, e.g. "DC" or "TRR".
func (m *Model) Name() string {
	if m == nil {
		return "ideal"
	}
	return m.ModelName
}

// Ideal reports whether the model applies no noise at all.
func (m *Model) Ideal() bool {
	return m == nil || (len(m.OneQubit) == 0 && len(m.TwoQubit) == 0 && m.Readout == nil)
}

// GateErrorProb returns the probability that at least one channel fires
// after gate g — the e_i of the paper's Equation 4.
func (m *Model) GateErrorProb(g gate.Gate) float64 {
	if m == nil {
		return 0
	}
	chans := m.OneQubit
	if g.Arity() >= 2 {
		chans = m.TwoQubit
	}
	keep := 1.0
	for _, c := range chans {
		keep *= 1 - c.ErrorProb()
	}
	return 1 - keep
}

// SegmentErrorProb returns 1 - prod(1 - e_i) over the gates — the paper's
// Equation 4 applied to a subcircuit.
func (m *Model) SegmentErrorProb(gs []gate.Gate) float64 {
	keep := 1.0
	for _, g := range gs {
		keep *= 1 - m.GateErrorProb(g)
	}
	return 1 - keep
}

// ApplyAfterGate stochastically applies the model's channels following gate
// g and returns the number of kernel applications performed. For gates on
// three qubits (e.g. un-decomposed Toffolis) the two-qubit channels are
// applied to the first two operands and the one-qubit channels to the
// third, a conservative approximation noted in DESIGN.md.
func (m *Model) ApplyAfterGate(s *statevec.State, g gate.Gate, r *rng.RNG) int {
	if m == nil {
		return 0
	}
	ops := 0
	switch g.Arity() {
	case 1:
		for _, c := range m.OneQubit {
			ops += c.ApplyTrajectory(s, g.Qubits, r)
		}
	case 2:
		for _, c := range m.TwoQubit {
			ops += c.ApplyTrajectory(s, g.Qubits, r)
		}
	default:
		for _, c := range m.TwoQubit {
			ops += c.ApplyTrajectory(s, g.Qubits[:2], r)
		}
		for _, c := range m.OneQubit {
			ops += c.ApplyTrajectory(s, g.Qubits[2:3], r)
		}
	}
	return ops
}

// ApplyPauliAfterGate mirrors ApplyAfterGate for purely depolarizing
// models, routing each sampled Pauli insertion through apply(qubit, pauli)
// (pauli 1=X, 2=Y, 3=Z) instead of the dense kernels — this is how the
// stabilizer engine absorbs Pauli noise into tableaux. RNG consumption is
// bit-identical to the dense channels' (including the always-taken draw per
// channel), so a trajectory that later materializes dense amplitudes
// continues on exactly the stream the dense engine would have. Returns
// ok=false without consuming any randomness when the model has non-Pauli
// channels; callers then fall back to the dense path.
func (m *Model) ApplyPauliAfterGate(g gate.Gate, r *rng.RNG, apply func(q, pauli int)) (ops int, ok bool) {
	if !m.PauliOnly() {
		return 0, false
	}
	if m == nil {
		return 0, true
	}
	one := func(q int) {
		for _, c := range m.OneQubit {
			d := c.(Depolarizing1Q)
			if r.Float64() < d.P {
				apply(q, 1+r.Intn(3))
				ops++
			}
		}
	}
	two := func(qa, qb int) {
		for _, c := range m.TwoQubit {
			d := c.(Depolarizing2Q)
			if r.Float64() < d.P {
				k := 1 + r.Intn(15)
				if a := k & 3; a != 0 {
					apply(qa, a)
					ops++
				}
				if b := k >> 2; b != 0 {
					apply(qb, b)
					ops++
				}
			}
		}
	}
	switch g.Arity() {
	case 1:
		one(g.Qubits[0])
	case 2:
		two(g.Qubits[0], g.Qubits[1])
	default:
		// Same conservative three-qubit approximation as ApplyAfterGate.
		two(g.Qubits[0], g.Qubits[1])
		one(g.Qubits[2])
	}
	return ops, true
}

// SegmentFires dry-runs the model's stochastic channel decisions over a gate
// segment without touching any state: it consumes the RNG exactly as the
// real trajectory path would up to (and excluding) the first channel that
// fires, and reports whether one fired. Valid only for Pauli-only models —
// their firing decisions are state-independent fixed-probability draws (one
// Float64 per channel per gate), so the decision can be made before any
// amplitudes exist. Non-Pauli models return ok=false without consuming any
// randomness: damping channels derive jump probabilities from the state's
// |1> marginals, so there is nothing to pre-decide.
//
// Callers use it for ideal-prefix reuse (internal/core): probe a *copy* of
// the node RNG; when fired=false, adopt the copy (the draw stream advanced
// identically to a no-fire trajectory) and skip the segment's gate work;
// when fired=true, discard the copy and run the segment normally from the
// original RNG.
func (m *Model) SegmentFires(gs []gate.Gate, r *rng.RNG) (fired, ok bool) {
	if m == nil {
		return false, true
	}
	if !m.PauliOnly() {
		return false, false
	}
	one := func() bool {
		for _, c := range m.OneQubit {
			if r.Float64() < c.(Depolarizing1Q).P {
				return true
			}
		}
		return false
	}
	two := func() bool {
		for _, c := range m.TwoQubit {
			if r.Float64() < c.(Depolarizing2Q).P {
				return true
			}
		}
		return false
	}
	for _, g := range gs {
		switch g.Arity() {
		case 1:
			if one() {
				return true, true
			}
		case 2:
			if two() {
				return true, true
			}
		default:
			// Same conservative three-qubit split as ApplyAfterGate: two-qubit
			// channels on the first two operands, one-qubit on the third.
			if two() || one() {
				return true, true
			}
		}
	}
	return false, true
}

// PauliOnly reports whether every channel of the model is depolarizing
// (Pauli), possibly plus a classical readout flip. Pauli channels map
// stabilizer states to stabilizer states, so exactly these models admit
// polynomial-time trajectory simulation on the tableau engine; damping and
// thermal channels do not (their no-jump branch is non-unitary on
// amplitudes).
func (m *Model) PauliOnly() bool {
	if m == nil {
		return true
	}
	for _, c := range m.OneQubit {
		if _, isDep := c.(Depolarizing1Q); !isDep {
			return false
		}
	}
	for _, c := range m.TwoQubit {
		if _, isDep := c.(Depolarizing2Q); !isDep {
			return false
		}
	}
	return true
}

// FlipReadout applies the readout error (if any) to an n-bit outcome.
func (m *Model) FlipReadout(bits uint64, n int, r *rng.RNG) uint64 {
	if m == nil || m.Readout == nil {
		return bits
	}
	return m.Readout.Flip(bits, n, r)
}

// TrajectoryOps returns an upper bound on the extra kernel applications the
// model adds per gate, used for computation accounting.
func (m *Model) TrajectoryOps(g gate.Gate) int {
	if m == nil {
		return 0
	}
	if g.Arity() == 1 {
		return len(m.OneQubit)
	}
	return len(m.TwoQubit)
}

// Sycamore-derived default error rates used throughout the paper
// (footnote 3): 0.1% per one-qubit gate, 1.5% per two-qubit gate.
const (
	SycamoreOneQubitError = 0.001
	SycamoreTwoQubitError = 0.015
)

// Default thermal-relaxation parameters (microseconds), conservative
// superconducting-qubit figures.
const (
	DefaultT1       = 25.0  // us
	DefaultT2       = 30.0  // us
	DefaultGateTime = 0.035 // us
)

// DefaultDampingRatio is the damping ratio used by the paper's AD/PD
// sensitivity studies (Section 4.3).
const DefaultDampingRatio = 0.01

// DefaultReadoutError is a conservative readout flip probability.
const DefaultReadoutError = 0.02

// NewDepolarizing returns the paper's primary noise model: depolarizing
// channels with the given one- and two-qubit error rates.
func NewDepolarizing(p1, p2 float64) *Model {
	return &Model{
		ModelName: "DC",
		OneQubit:  []Channel{Depolarizing1Q{P: p1}},
		TwoQubit:  []Channel{Depolarizing2Q{P: p2}},
	}
}

// NewSycamore returns the depolarizing model at Sycamore error rates.
func NewSycamore() *Model {
	return NewDepolarizing(SycamoreOneQubitError, SycamoreTwoQubitError)
}

// NewThermalRelaxation returns a thermal relaxation model. Two-qubit gates
// take twice the one-qubit gate time, a common device characteristic.
func NewThermalRelaxation(t1, t2, gateTime float64) *Model {
	return &Model{
		ModelName: "TR",
		OneQubit:  []Channel{ThermalRelaxation{T1: t1, T2: t2, GateTime: gateTime}},
		TwoQubit: []Channel{PerQubit{C: ThermalRelaxation{
			T1: t1, T2: t2, GateTime: 2 * gateTime,
		}}},
	}
}

// NewAmplitudeDamping returns an amplitude damping model with the given
// damping ratio on every gate operand.
func NewAmplitudeDamping(gamma float64) *Model {
	return &Model{
		ModelName: "AD",
		OneQubit:  []Channel{AmplitudeDamping{Gamma: gamma}},
		TwoQubit:  []Channel{PerQubit{C: AmplitudeDamping{Gamma: gamma}}},
	}
}

// NewPhaseDamping returns a phase damping model with the given ratio.
func NewPhaseDamping(lambda float64) *Model {
	return &Model{
		ModelName: "PD",
		OneQubit:  []Channel{PhaseDamping{Lambda: lambda}},
		TwoQubit:  []Channel{PerQubit{C: PhaseDamping{Lambda: lambda}}},
	}
}

// WithReadout returns a copy of the model with a readout error attached and
// "R" appended to its name (matching the paper's DCR/TRR/ADR/PDR labels).
func (m *Model) WithReadout(p float64) *Model {
	cp := *m
	cp.Readout = &Readout{P01: p, P10: p}
	cp.ModelName = m.ModelName + "R"
	return &cp
}

// Combine merges several models into one applying all their channels in
// order; the name is the concatenation (the paper's "ALL" uses every
// channel together).
func Combine(name string, models ...*Model) *Model {
	out := &Model{ModelName: name}
	for _, m := range models {
		out.OneQubit = append(out.OneQubit, m.OneQubit...)
		out.TwoQubit = append(out.TwoQubit, m.TwoQubit...)
		if m.Readout != nil {
			out.Readout = m.Readout
		}
	}
	return out
}

// ByName constructs one of the paper's nine Figure-16 model variants:
// DC, DCR, TR, TRR, AD, ADR, PD, PDR, ALL (case-insensitive).
func ByName(name string) *Model {
	base := strings.ToUpper(strings.TrimSpace(name))
	readout := false
	if base == "ALL" {
		all := Combine("ALL",
			NewSycamore(),
			NewThermalRelaxation(DefaultT1, DefaultT2, DefaultGateTime),
			NewAmplitudeDamping(DefaultDampingRatio),
			NewPhaseDamping(DefaultDampingRatio),
		)
		all.Readout = &Readout{P01: DefaultReadoutError, P10: DefaultReadoutError}
		return all
	}
	if strings.HasSuffix(base, "R") && base != "TR" {
		readout = true
		base = strings.TrimSuffix(base, "R")
	}
	// "TRR" arrives here as "TR" with readout=true; plain "TR" skipped above.
	var m *Model
	switch base {
	case "DC":
		m = NewSycamore()
	case "TR":
		m = NewThermalRelaxation(DefaultT1, DefaultT2, DefaultGateTime)
	case "AD":
		m = NewAmplitudeDamping(DefaultDampingRatio)
	case "PD":
		m = NewPhaseDamping(DefaultDampingRatio)
	case "IDEAL", "NONE", "":
		return nil
	default:
		return nil
	}
	if readout {
		m = m.WithReadout(DefaultReadoutError)
	}
	return m
}

// CircuitErrorProb returns Equation 4 evaluated over a whole circuit.
func (m *Model) CircuitErrorProb(c *circuit.Circuit) float64 {
	return m.SegmentErrorProb(c.Gates)
}
