// Package noise implements the error channels the paper evaluates —
// depolarizing (DC), thermal relaxation (TR), amplitude damping (AD), phase
// damping (PD) and readout (R) — in the two forms a trajectory simulator
// needs:
//
//   - Kraus operators, consumed by the density-matrix reference simulator
//     (internal/densmat), and
//   - stochastic trajectory application, consumed by the pure-state Monte
//     Carlo simulators (internal/trajectory and internal/core). Pauli
//     channels insert a sampled Pauli operator; damping channels use the
//     quantum-jump method (jump probability from the qubit's |1> marginal,
//     renormalization after the no-jump branch).
//
// A Model binds channels to gates: every one-qubit gate is followed by the
// model's one-qubit channels on its operand, every two-qubit gate by the
// two-qubit channels, and measurement results pass through an optional
// classical readout flip.
package noise

import (
	"fmt"
	"math"

	"tqsim/internal/qmath"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// Channel is a noise channel on one or two qubits.
type Channel interface {
	// Name returns a short identifier, e.g. "depolarizing(0.001)".
	Name() string
	// Arity returns 1 or 2.
	Arity() int
	// Kraus returns the channel's Kraus operators (dimension 2^Arity).
	// They satisfy sum_i K_i† K_i = I.
	Kraus() []qmath.Matrix
	// ApplyTrajectory stochastically applies one trajectory branch of the
	// channel to the state on the given qubits (len == Arity). The state
	// remains normalized afterwards. It returns the number of kernel
	// applications performed, for computation accounting.
	ApplyTrajectory(s *statevec.State, qubits []int, r *rng.RNG) int
	// ErrorProb returns the probability that the channel perturbs the state
	// (the "error rate" e_i used by DCP's Equation 4).
	ErrorProb() float64
}

// pauli1 returns the four single-qubit Paulis I, X, Y, Z.
func pauli1() [4]qmath.Matrix {
	return [4]qmath.Matrix{
		qmath.Identity(2),
		qmath.FromRows([][]complex128{{0, 1}, {1, 0}}),
		qmath.FromRows([][]complex128{{0, -1i}, {1i, 0}}),
		qmath.FromRows([][]complex128{{1, 0}, {0, -1}}),
	}
}

// Preallocated trajectory operators. Channels fire after every gate of every
// tree node, so the per-application qmath.FromRows allocations the originals
// made were pure hot-path garbage. X and Z go through the statevec swap and
// diagonal subspace kernels instead of the generic 2x2 path.
var (
	pauliYMat = qmath.FromRows([][]complex128{{0, -1i}, {1i, 0}})
	// adJumpMat is amplitude damping's (unnormalized) jump operator
	// K1/sqrt(gamma): |0><1|.
	adJumpMat = qmath.FromRows([][]complex128{{0, 1}, {0, 0}})
)

// applyPauli applies Pauli index p (1=X, 2=Y, 3=Z) to qubit q.
func applyPauli(s *statevec.State, q, p int) {
	switch p {
	case 1:
		s.ApplyX(q)
	case 2:
		s.Apply1Q(q, pauliYMat)
	case 3:
		s.ApplyDiag1Q(q, 1, -1)
	}
}

// Depolarizing1Q is the single-qubit depolarizing channel: with probability
// P one of X, Y, Z is applied (uniformly).
type Depolarizing1Q struct{ P float64 }

// Name implements Channel.
func (d Depolarizing1Q) Name() string { return fmt.Sprintf("depolarizing(%g)", d.P) }

// Arity implements Channel.
func (d Depolarizing1Q) Arity() int { return 1 }

// ErrorProb implements Channel.
func (d Depolarizing1Q) ErrorProb() float64 { return d.P }

// Kraus implements Channel.
func (d Depolarizing1Q) Kraus() []qmath.Matrix {
	ps := pauli1()
	out := make([]qmath.Matrix, 4)
	out[0] = ps[0].Scale(complex(math.Sqrt(1-d.P), 0))
	w := complex(math.Sqrt(d.P/3), 0)
	for i := 1; i < 4; i++ {
		out[i] = ps[i].Scale(w)
	}
	return out
}

// ApplyTrajectory implements Channel.
func (d Depolarizing1Q) ApplyTrajectory(s *statevec.State, qubits []int, r *rng.RNG) int {
	if r.Float64() >= d.P {
		return 0
	}
	applyPauli(s, qubits[0], 1+r.Intn(3))
	return 1
}

// Depolarizing2Q is the two-qubit depolarizing channel: with probability P
// one of the 15 non-identity Pauli pairs is applied (uniformly).
type Depolarizing2Q struct{ P float64 }

// Name implements Channel.
func (d Depolarizing2Q) Name() string { return fmt.Sprintf("depolarizing2(%g)", d.P) }

// Arity implements Channel.
func (d Depolarizing2Q) Arity() int { return 2 }

// ErrorProb implements Channel.
func (d Depolarizing2Q) ErrorProb() float64 { return d.P }

// Kraus implements Channel.
func (d Depolarizing2Q) Kraus() []qmath.Matrix {
	ps := pauli1()
	out := make([]qmath.Matrix, 0, 16)
	out = append(out, qmath.Identity(4).Scale(complex(math.Sqrt(1-d.P), 0)))
	w := complex(math.Sqrt(d.P/15), 0)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a == 0 && b == 0 {
				continue
			}
			// Convention: first qubit is the low bit, so it is the right
			// factor of the Kronecker product.
			out = append(out, qmath.Kron(ps[b], ps[a]).Scale(w))
		}
	}
	return out
}

// ApplyTrajectory implements Channel.
func (d Depolarizing2Q) ApplyTrajectory(s *statevec.State, qubits []int, r *rng.RNG) int {
	if r.Float64() >= d.P {
		return 0
	}
	k := 1 + r.Intn(15) // index into the 15 non-identity pairs
	a, b := k&3, k>>2
	ops := 0
	if a != 0 {
		applyPauli(s, qubits[0], a)
		ops++
	}
	if b != 0 {
		applyPauli(s, qubits[1], b)
		ops++
	}
	return ops
}

// AmplitudeDamping models energy relaxation with damping ratio Gamma:
// K0 = [[1,0],[0,sqrt(1-g)]], K1 = [[0,sqrt(g)],[0,0]].
type AmplitudeDamping struct{ Gamma float64 }

// Name implements Channel.
func (a AmplitudeDamping) Name() string { return fmt.Sprintf("amplitude-damping(%g)", a.Gamma) }

// Arity implements Channel.
func (a AmplitudeDamping) Arity() int { return 1 }

// ErrorProb implements Channel.
func (a AmplitudeDamping) ErrorProb() float64 { return a.Gamma }

// Kraus implements Channel.
func (a AmplitudeDamping) Kraus() []qmath.Matrix {
	return []qmath.Matrix{
		qmath.FromRows([][]complex128{{1, 0}, {0, complex(math.Sqrt(1-a.Gamma), 0)}}),
		qmath.FromRows([][]complex128{{0, complex(math.Sqrt(a.Gamma), 0)}, {0, 0}}),
	}
}

// ApplyTrajectory implements Channel. The jump probability is
// Gamma * P(|1>); the no-jump branch applies K0 and renormalizes.
func (a AmplitudeDamping) ApplyTrajectory(s *statevec.State, qubits []int, r *rng.RNG) int {
	if a.Gamma <= 0 {
		return 0
	}
	q := qubits[0]
	p1 := s.Prob1(q)
	pJump := a.Gamma * p1
	if r.Float64() < pJump {
		// Jump: |1> -> |0| with K1; resulting state is |0> on q.
		s.Apply1Q(q, adJumpMat)
	} else {
		// No-jump K0 = diag(1, sqrt(1-gamma)): subspace kernel, no matrix.
		s.ApplyDiag1Q(q, 1, complex(math.Sqrt(1-a.Gamma), 0))
	}
	s.Normalize()
	return 1
}

// PhaseDamping models pure dephasing with ratio Lambda:
// K0 = [[1,0],[0,sqrt(1-l)]], K1 = [[0,0],[0,sqrt(l)]].
type PhaseDamping struct{ Lambda float64 }

// Name implements Channel.
func (p PhaseDamping) Name() string { return fmt.Sprintf("phase-damping(%g)", p.Lambda) }

// Arity implements Channel.
func (p PhaseDamping) Arity() int { return 1 }

// ErrorProb implements Channel.
func (p PhaseDamping) ErrorProb() float64 { return p.Lambda }

// Kraus implements Channel.
func (p PhaseDamping) Kraus() []qmath.Matrix {
	return []qmath.Matrix{
		qmath.FromRows([][]complex128{{1, 0}, {0, complex(math.Sqrt(1-p.Lambda), 0)}}),
		qmath.FromRows([][]complex128{{0, 0}, {0, complex(math.Sqrt(p.Lambda), 0)}}),
	}
}

// ApplyTrajectory implements Channel.
func (p PhaseDamping) ApplyTrajectory(s *statevec.State, qubits []int, r *rng.RNG) int {
	if p.Lambda <= 0 {
		return 0
	}
	q := qubits[0]
	p1 := s.Prob1(q)
	pJump := p.Lambda * p1
	if r.Float64() < pJump {
		// Jump: project onto |1><1| (up to normalization).
		s.ApplyDiag1Q(q, 0, 1)
	} else {
		s.ApplyDiag1Q(q, 1, complex(math.Sqrt(1-p.Lambda), 0))
	}
	s.Normalize()
	return 1
}

// ThermalRelaxation models decoherence from T1 (relaxation) and T2
// (dephasing) during a gate of duration GateTime. It composes amplitude
// damping with gamma = 1-exp(-t/T1) and phase damping with
// lambda = 1-exp(t/T1 - 2t/T2), which reproduces the e^{-t/T2} coherence
// decay. Requires T2 <= 2*T1 (physical).
type ThermalRelaxation struct {
	T1, T2, GateTime float64
}

// Name implements Channel.
func (t ThermalRelaxation) Name() string {
	return fmt.Sprintf("thermal-relaxation(T1=%g,T2=%g,t=%g)", t.T1, t.T2, t.GateTime)
}

// Arity implements Channel.
func (t ThermalRelaxation) Arity() int { return 1 }

func (t ThermalRelaxation) params() (gamma, lambda float64) {
	if t.T2 > 2*t.T1 {
		panic("noise: thermal relaxation requires T2 <= 2*T1")
	}
	gamma = 1 - math.Exp(-t.GateTime/t.T1)
	lambda = 1 - math.Exp(t.GateTime/t.T1-2*t.GateTime/t.T2)
	if lambda < 0 {
		lambda = 0
	}
	return gamma, lambda
}

// ErrorProb implements Channel.
func (t ThermalRelaxation) ErrorProb() float64 {
	g, l := t.params()
	// Probability that at least one of the composed channels acts.
	return 1 - (1-g)*(1-l)
}

// Kraus implements Channel. The composite channel's Kraus set is the
// pairwise product of the AD and PD Kraus sets.
func (t ThermalRelaxation) Kraus() []qmath.Matrix {
	g, l := t.params()
	ad := AmplitudeDamping{Gamma: g}.Kraus()
	pd := PhaseDamping{Lambda: l}.Kraus()
	var out []qmath.Matrix
	for _, a := range ad {
		for _, p := range pd {
			out = append(out, qmath.Mul(a, p))
		}
	}
	return out
}

// ApplyTrajectory implements Channel.
func (t ThermalRelaxation) ApplyTrajectory(s *statevec.State, qubits []int, r *rng.RNG) int {
	g, l := t.params()
	ops := PhaseDamping{Lambda: l}.ApplyTrajectory(s, qubits, r)
	ops += AmplitudeDamping{Gamma: g}.ApplyTrajectory(s, qubits, r)
	return ops
}

// PerQubit adapts a single-qubit channel to two-qubit gates by applying it
// independently to each operand.
type PerQubit struct{ C Channel }

// Name implements Channel.
func (p PerQubit) Name() string { return p.C.Name() + "⊗each" }

// Arity implements Channel.
func (p PerQubit) Arity() int { return 2 }

// ErrorProb implements Channel.
func (p PerQubit) ErrorProb() float64 {
	e := p.C.ErrorProb()
	return 1 - (1-e)*(1-e)
}

// Kraus implements Channel: the product channel's Kraus set is all
// Kronecker pairs.
func (p PerQubit) Kraus() []qmath.Matrix {
	ks := p.C.Kraus()
	var out []qmath.Matrix
	for _, a := range ks {
		for _, b := range ks {
			// First qubit is the low bit → right Kronecker factor.
			out = append(out, qmath.Kron(b, a))
		}
	}
	return out
}

// ApplyTrajectory implements Channel.
func (p PerQubit) ApplyTrajectory(s *statevec.State, qubits []int, r *rng.RNG) int {
	ops := p.C.ApplyTrajectory(s, qubits[:1], r)
	ops += p.C.ApplyTrajectory(s, qubits[1:2], r)
	return ops
}
