package qmath

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"tqsim/internal/rng"
)

const tol = 1e-10

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("identity[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(1)
	m := RandomGinibre(5, r)
	if d := MaxAbsDiff(Mul(m, Identity(5)), m); d > tol {
		t.Fatalf("m*I differs from m by %v", d)
	}
	if d := MaxAbsDiff(Mul(Identity(5), m), m); d > tol {
		t.Fatalf("I*m differs from m by %v", d)
	}
}

func TestMulAssociative(t *testing.T) {
	r := rng.New(2)
	a, b, c := RandomGinibre(4, r), RandomGinibre(4, r), RandomGinibre(4, r)
	left := Mul(Mul(a, b), c)
	right := Mul(a, Mul(b, c))
	if d := MaxAbsDiff(left, right); d > 1e-8 {
		t.Fatalf("matmul not associative: diff %v", d)
	}
}

func TestMulVecAgreesWithMul(t *testing.T) {
	r := rng.New(3)
	a, b := RandomGinibre(4, r), RandomGinibre(4, r)
	// (a*b) column 0 equals a.MulVec(b column 0).
	col := make([]complex128, 4)
	for i := range col {
		col[i] = b.At(i, 0)
	}
	viaVec := a.MulVec(col)
	prod := Mul(a, b)
	for i := range viaVec {
		if cmplx.Abs(viaVec[i]-prod.At(i, 0)) > tol {
			t.Fatalf("MulVec disagrees with Mul at row %d", i)
		}
	}
}

func TestDaggerInvolution(t *testing.T) {
	r := rng.New(4)
	m := RandomGinibre(6, r)
	if d := MaxAbsDiff(m.Dagger().Dagger(), m); d > tol {
		t.Fatalf("dagger not an involution: %v", d)
	}
}

func TestDaggerOfProduct(t *testing.T) {
	r := rng.New(5)
	a, b := RandomGinibre(3, r), RandomGinibre(3, r)
	lhs := Mul(a, b).Dagger()
	rhs := Mul(b.Dagger(), a.Dagger())
	if d := MaxAbsDiff(lhs, rhs); d > 1e-9 {
		t.Fatalf("(ab)† != b†a†: %v", d)
	}
}

func TestKronDimensions(t *testing.T) {
	a, b := Identity(2), Identity(4)
	if got := Kron(a, b).N; got != 8 {
		t.Fatalf("kron dimension %d, want 8", got)
	}
}

func TestKronMixedProduct(t *testing.T) {
	r := rng.New(6)
	a, b := RandomGinibre(2, r), RandomGinibre(2, r)
	c, d := RandomGinibre(2, r), RandomGinibre(2, r)
	lhs := Mul(Kron(a, b), Kron(c, d))
	rhs := Kron(Mul(a, c), Mul(b, d))
	if diff := MaxAbsDiff(lhs, rhs); diff > 1e-9 {
		t.Fatalf("(A⊗B)(C⊗D) != (AC)⊗(BD): %v", diff)
	}
}

func TestKronIdentityTrace(t *testing.T) {
	r := rng.New(7)
	m := RandomGinibre(3, r)
	k := Kron(m, Identity(2))
	if d := cmplx.Abs(k.Trace() - 2*m.Trace()); d > tol {
		t.Fatalf("tr(M⊗I2) != 2 tr(M): %v", d)
	}
}

func TestTraceLinear(t *testing.T) {
	r := rng.New(8)
	a, b := RandomGinibre(4, r), RandomGinibre(4, r)
	if d := cmplx.Abs(Add(a, b).Trace() - a.Trace() - b.Trace()); d > tol {
		t.Fatalf("trace not additive: %v", d)
	}
}

func TestScaleSub(t *testing.T) {
	r := rng.New(9)
	m := RandomGinibre(3, r)
	if d := MaxAbsDiff(Sub(m.Scale(2), m), m); d > tol {
		t.Fatalf("2m - m != m: %v", d)
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]complex128{{1, 2}, {3}})
}

func TestRandomUnitaryIsUnitary(t *testing.T) {
	r := rng.New(10)
	for _, n := range []int{2, 3, 4, 8} {
		for rep := 0; rep < 5; rep++ {
			u := RandomUnitary(n, r)
			if !u.IsUnitary(1e-9) {
				t.Fatalf("RandomUnitary(%d) not unitary:\n%v", n, u)
			}
		}
	}
}

func TestRandomUnitaryPreservesNorm(t *testing.T) {
	r := rng.New(11)
	u := RandomUnitary(8, r)
	v := make([]complex128, 8)
	for i := range v {
		v[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	before := VecNorm(v)
	after := VecNorm(u.MulVec(v))
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("unitary changed norm: %v -> %v", before, after)
	}
}

func TestRandomUnitaryHaarPhaseSpread(t *testing.T) {
	// The (0,0) entry phase of Haar unitaries is uniform; a naive QR
	// without phase correction clusters it. Check both half-planes occur.
	r := rng.New(12)
	neg, pos := 0, 0
	for i := 0; i < 200; i++ {
		u := RandomUnitary(2, r)
		if real(u.At(0, 0)) < 0 {
			neg++
		} else {
			pos++
		}
	}
	if neg < 40 || pos < 40 {
		t.Fatalf("phase distribution skewed: neg=%d pos=%d", neg, pos)
	}
}

func TestQRReconstruction(t *testing.T) {
	r := rng.New(13)
	a := RandomGinibre(5, r)
	q, rr := qrHouseholder(a)
	if !q.IsUnitary(1e-9) {
		t.Fatal("QR produced non-unitary Q")
	}
	if d := MaxAbsDiff(Mul(q, rr), a); d > 1e-9 {
		t.Fatalf("QR does not reconstruct A: %v", d)
	}
	// R upper triangular.
	for i := 1; i < 5; i++ {
		for j := 0; j < i; j++ {
			if cmplx.Abs(rr.At(i, j)) > 1e-9 {
				t.Fatalf("R[%d][%d] = %v not zero", i, j, rr.At(i, j))
			}
		}
	}
}

func TestVecInnerProperties(t *testing.T) {
	check := func(ar, ai, br, bi int8) bool {
		a := []complex128{complex(float64(ar), float64(ai)), 1}
		b := []complex128{complex(float64(br), float64(bi)), 2i}
		// <a|b> = conj(<b|a>)
		return cmplx.Abs(VecInner(a, b)-cmplx.Conj(VecInner(b, a))) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVecDistanceZero(t *testing.T) {
	v := []complex128{1, 2i, complex(3, 4)}
	if d := VecDistance(v, v); d != 0 {
		t.Fatalf("self distance %v", d)
	}
}

func TestVecNormUnit(t *testing.T) {
	v := []complex128{complex(1/math.Sqrt2, 0), complex(0, 1/math.Sqrt2)}
	if d := math.Abs(VecNorm(v) - 1); d > tol {
		t.Fatalf("norm deviates: %v", d)
	}
}

func TestIsHermitian(t *testing.T) {
	h := FromRows([][]complex128{{2, 1i}, {-1i, 3}})
	if !h.IsHermitian(tol) {
		t.Fatal("hermitian matrix not recognized")
	}
	n := FromRows([][]complex128{{0, 1}, {2, 0}})
	if n.IsHermitian(tol) {
		t.Fatal("non-hermitian matrix accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := Identity(2)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases parent storage")
	}
}
