// Package qmath provides the dense complex linear algebra the simulator is
// built on: small square matrices for gate and Kraus operators, Kronecker
// products, Householder QR, and Haar-random unitary generation.
//
// Everything is hand-written over complex128 slices. Go has no mature BLAS
// for complex matrices; the operators in a gate-based simulator are tiny
// (2x2 to 8x8), so straightforward loops are both the simplest and the
// fastest option here. The hot path — applying a small matrix to an
// exponentially large state vector — lives in internal/statevec, not here.
package qmath

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, square, row-major complex matrix.
type Matrix struct {
	N    int          // dimension
	Data []complex128 // len N*N, row-major
}

// NewMatrix returns the zero matrix of dimension n.
func NewMatrix(n int) Matrix {
	if n <= 0 {
		panic("qmath: matrix dimension must be positive")
	}
	return Matrix{N: n, Data: make([]complex128, n*n)}
}

// FromRows builds a matrix from row slices. All rows must have equal length
// matching the number of rows.
func FromRows(rows [][]complex128) Matrix {
	n := len(rows)
	m := NewMatrix(n)
	for i, row := range rows {
		if len(row) != n {
			panic(fmt.Sprintf("qmath: row %d has %d entries, want %d", i, len(row), n))
		}
		copy(m.Data[i*n:(i+1)*n], row)
	}
	return m
}

// Identity returns the n-dimensional identity matrix.
func Identity(n int) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m Matrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	c := Matrix{N: m.N, Data: make([]complex128, len(m.Data))}
	copy(c.Data, m.Data)
	return c
}

// Mul returns the matrix product a*b.
func Mul(a, b Matrix) Matrix {
	if a.N != b.N {
		panic("qmath: dimension mismatch in Mul")
	}
	n := a.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += aik * brow[j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*v.
func (m Matrix) MulVec(v []complex128) []complex128 {
	if len(v) != m.N {
		panic("qmath: dimension mismatch in MulVec")
	}
	out := make([]complex128, m.N)
	for i := 0; i < m.N; i++ {
		row := m.Data[i*m.N : (i+1)*m.N]
		var acc complex128
		for j, x := range row {
			acc += x * v[j]
		}
		out[i] = acc
	}
	return out
}

// Add returns a+b.
func Add(a, b Matrix) Matrix {
	if a.N != b.N {
		panic("qmath: dimension mismatch in Add")
	}
	out := NewMatrix(a.N)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a-b.
func Sub(a, b Matrix) Matrix {
	if a.N != b.N {
		panic("qmath: dimension mismatch in Sub")
	}
	out := NewMatrix(a.N)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s*m.
func (m Matrix) Scale(s complex128) Matrix {
	out := NewMatrix(m.N)
	for i, x := range m.Data {
		out.Data[i] = s * x
	}
	return out
}

// Dagger returns the conjugate transpose of m.
func (m Matrix) Dagger() Matrix {
	n := m.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*n+i] = cmplx.Conj(m.Data[i*n+j])
		}
	}
	return out
}

// Trace returns the trace of m.
func (m Matrix) Trace() complex128 {
	var t complex128
	for i := 0; i < m.N; i++ {
		t += m.Data[i*m.N+i]
	}
	return t
}

// Kron returns the Kronecker product a ⊗ b.
func Kron(a, b Matrix) Matrix {
	n := a.N * b.N
	out := NewMatrix(n)
	for ia := 0; ia < a.N; ia++ {
		for ja := 0; ja < a.N; ja++ {
			av := a.At(ia, ja)
			if av == 0 {
				continue
			}
			for ib := 0; ib < b.N; ib++ {
				for jb := 0; jb < b.N; jb++ {
					out.Set(ia*b.N+ib, ja*b.N+jb, av*b.At(ib, jb))
				}
			}
		}
	}
	return out
}

// MaxAbsDiff returns the largest elementwise absolute difference |a-b|.
func MaxAbsDiff(a, b Matrix) float64 {
	if a.N != b.N {
		panic("qmath: dimension mismatch in MaxAbsDiff")
	}
	var max float64
	for i := range a.Data {
		d := cmplx.Abs(a.Data[i] - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// IsUnitary reports whether m†m is the identity within tol.
func (m Matrix) IsUnitary(tol float64) bool {
	return MaxAbsDiff(Mul(m.Dagger(), m), Identity(m.N)) <= tol
}

// IsHermitian reports whether m equals its conjugate transpose within tol.
func (m Matrix) IsHermitian(tol float64) bool {
	return MaxAbsDiff(m, m.Dagger()) <= tol
}

// String renders the matrix for debugging.
func (m Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.N; i++ {
		b.WriteByte('[')
		for j := 0; j < m.N; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			v := m.At(i, j)
			fmt.Fprintf(&b, "%.4g%+.4gi", real(v), imag(v))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// VecNorm returns the Euclidean norm of v.
func VecNorm(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// VecInner returns the inner product <a|b> (a conjugated).
func VecInner(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("qmath: dimension mismatch in VecInner")
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

// VecDistance returns the Euclidean norm of a-b.
func VecDistance(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic("qmath: dimension mismatch in VecDistance")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(s)
}
