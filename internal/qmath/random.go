package qmath

import (
	"math"
	"math/cmplx"

	"tqsim/internal/rng"
)

// RandomGinibre returns an n x n matrix with i.i.d. standard complex
// Gaussian entries (a Ginibre ensemble sample).
func RandomGinibre(n int, r *rng.RNG) Matrix {
	m := NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

// qrHouseholder factors a into q*r with q unitary and r upper triangular,
// using Householder reflections. a is not modified.
func qrHouseholder(a Matrix) (q, r Matrix) {
	n := a.N
	r = a.Clone()
	q = Identity(n)
	for k := 0; k < n-1; k++ {
		// Build the Householder vector for column k below the diagonal.
		var normx float64
		for i := k; i < n; i++ {
			v := r.At(i, k)
			normx += real(v)*real(v) + imag(v)*imag(v)
		}
		normx = math.Sqrt(normx)
		if normx == 0 {
			continue
		}
		akk := r.At(k, k)
		// alpha = -e^{i*arg(akk)} * |x| makes the reflection stable.
		phase := complex(1, 0)
		if akk != 0 {
			phase = akk / complex(cmplx.Abs(akk), 0)
		}
		alpha := -phase * complex(normx, 0)
		v := make([]complex128, n)
		v[k] = r.At(k, k) - alpha
		for i := k + 1; i < n; i++ {
			v[i] = r.At(i, k)
		}
		var vnorm2 float64
		for i := k; i < n; i++ {
			vnorm2 += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
		}
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I - 2 v v† / |v|² to r (left) and accumulate into q.
		applyHouseholderLeft(r, v, vnorm2, k)
		applyHouseholderRight(q, v, vnorm2, k)
	}
	return q, r
}

func applyHouseholderLeft(m Matrix, v []complex128, vnorm2 float64, k int) {
	n := m.N
	for j := 0; j < n; j++ {
		var dot complex128
		for i := k; i < n; i++ {
			dot += cmplx.Conj(v[i]) * m.At(i, j)
		}
		f := dot * complex(2/vnorm2, 0)
		for i := k; i < n; i++ {
			m.Set(i, j, m.At(i, j)-f*v[i])
		}
	}
}

func applyHouseholderRight(m Matrix, v []complex128, vnorm2 float64, k int) {
	n := m.N
	for i := 0; i < n; i++ {
		var dot complex128
		for j := k; j < n; j++ {
			dot += m.At(i, j) * v[j]
		}
		f := dot * complex(2/vnorm2, 0)
		for j := k; j < n; j++ {
			m.Set(i, j, m.At(i, j)-f*cmplx.Conj(v[j]))
		}
	}
}

// RandomUnitary returns an n x n unitary matrix drawn from the Haar measure.
// It QR-factors a Ginibre sample and fixes the phase ambiguity by scaling
// each column of Q with the phase of the corresponding diagonal of R, per
// Mezzadri, "How to generate random matrices from the classical compact
// groups" (2007).
func RandomUnitary(n int, r *rng.RNG) Matrix {
	g := RandomGinibre(n, r)
	q, rr := qrHouseholder(g)
	for j := 0; j < n; j++ {
		d := rr.At(j, j)
		var ph complex128 = 1
		if d != 0 {
			ph = d / complex(cmplx.Abs(d), 0)
		}
		for i := 0; i < n; i++ {
			q.Set(i, j, q.At(i, j)*ph)
		}
	}
	return q
}
