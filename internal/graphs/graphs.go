// Package graphs provides the undirected graphs the QAOA workloads solve
// max-cut on: seeded Erdős–Rényi random graphs, star graphs, and 3-regular
// graphs — the three input families of the paper's Figure 18.
package graphs

import (
	"fmt"

	"tqsim/internal/rng"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	Name  string
	N     int
	Edges [][2]int
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Validate checks vertex bounds, self-loops, and duplicate edges.
func (g *Graph) Validate() error {
	seen := map[[2]int]bool{}
	for _, e := range g.Edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= g.N || v >= g.N {
			return fmt.Errorf("graphs: edge (%d,%d) outside %d vertices", u, v, g.N)
		}
		if u == v {
			return fmt.Errorf("graphs: self-loop at %d", u)
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return fmt.Errorf("graphs: duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int {
	d := make([]int, g.N)
	for _, e := range g.Edges {
		d[e[0]]++
		d[e[1]]++
	}
	return d
}

// CutValue returns the number of edges cut by the bit-assignment (bit i of
// the mask is the side of vertex i).
func (g *Graph) CutValue(assignment uint64) int {
	cut := 0
	for _, e := range g.Edges {
		if (assignment>>uint(e[0]))&1 != (assignment>>uint(e[1]))&1 {
			cut++
		}
	}
	return cut
}

// MaxCut exhaustively finds the optimal cut value (N <= 24).
func (g *Graph) MaxCut() int {
	if g.N > 24 {
		panic("graphs: MaxCut is exhaustive; graph too large")
	}
	best := 0
	for a := uint64(0); a < 1<<uint(g.N); a++ {
		if c := g.CutValue(a); c > best {
			best = c
		}
	}
	return best
}

// Random returns a seeded Erdős–Rényi G(n, p) graph. The construction is
// deterministic for a given (n, p, seed).
func Random(n int, p float64, seed uint64) *Graph {
	r := rng.New(seed)
	g := &Graph{Name: fmt.Sprintf("random_%d", n), N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.Edges = append(g.Edges, [2]int{u, v})
			}
		}
	}
	// Guarantee connectivity of the sampled instance: chain any isolated
	// vertices to their successor so QAOA acts on every qubit.
	deg := g.Degrees()
	for v := 0; v < n; v++ {
		if deg[v] == 0 {
			w := (v + 1) % n
			g.Edges = append(g.Edges, [2]int{min(v, w), max(v, w)})
			deg[v]++
			deg[w]++
		}
	}
	return g
}

// Star returns the star graph: vertex 0 connected to all others.
func Star(n int) *Graph {
	g := &Graph{Name: fmt.Sprintf("star_%d", n), N: n}
	for v := 1; v < n; v++ {
		g.Edges = append(g.Edges, [2]int{0, v})
	}
	return g
}

// Ring returns the n-cycle.
func Ring(n int) *Graph {
	g := &Graph{Name: fmt.Sprintf("ring_%d", n), N: n}
	for v := 0; v < n; v++ {
		g.Edges = append(g.Edges, [2]int{v, (v + 1) % n})
	}
	return g
}

// Regular3 returns a 3-regular graph on n vertices (n must be even): the
// ring plus the perfect matching of antipodal chords — the standard
// "circulant" 3-regular family.
func Regular3(n int) *Graph {
	if n%2 != 0 || n < 4 {
		panic("graphs: 3-regular graphs need even n >= 4")
	}
	g := Ring(n)
	g.Name = fmt.Sprintf("3regular_%d", n)
	for v := 0; v < n/2; v++ {
		g.Edges = append(g.Edges, [2]int{v, v + n/2})
	}
	return g
}
