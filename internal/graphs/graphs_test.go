package graphs

import (
	"testing"
	"testing/quick"
)

func TestStarStructure(t *testing.T) {
	g := Star(6)
	if g.NumEdges() != 5 {
		t.Fatalf("star edges %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	if deg[0] != 5 {
		t.Fatalf("hub degree %d", deg[0])
	}
	for v := 1; v < 6; v++ {
		if deg[v] != 1 {
			t.Fatalf("leaf %d degree %d", v, deg[v])
		}
	}
}

func TestRingStructure(t *testing.T) {
	g := Ring(5)
	if g.NumEdges() != 5 {
		t.Fatalf("ring edges %d", g.NumEdges())
	}
	for _, d := range g.Degrees() {
		if d != 2 {
			t.Fatalf("ring degree %d", d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegular3(t *testing.T) {
	g := Regular3(8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v, d := range g.Degrees() {
		if d != 3 {
			t.Fatalf("vertex %d degree %d", v, d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd n accepted")
		}
	}()
	Regular3(7)
}

func TestRandomDeterministicAndValid(t *testing.T) {
	a := Random(10, 0.5, 42)
	b := Random(10, 0.5, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("random graph not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, d := range a.Degrees() {
		if d == 0 {
			t.Fatal("isolated vertex survived")
		}
	}
	c := Random(10, 0.5, 43)
	if a.NumEdges() == c.NumEdges() {
		// Possible but check edges differ somewhere.
		differ := false
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				differ = true
				break
			}
		}
		if !differ {
			t.Fatal("different seeds gave identical graphs")
		}
	}
}

func TestCutValue(t *testing.T) {
	g := Ring(4)
	if c := g.CutValue(0b0101); c != 4 {
		t.Fatalf("alternating cut %d", c)
	}
	if c := g.CutValue(0b0000); c != 0 {
		t.Fatalf("trivial cut %d", c)
	}
	if c := g.CutValue(0b0001); c != 2 {
		t.Fatalf("single vertex cut %d", c)
	}
}

func TestMaxCutKnownGraphs(t *testing.T) {
	if m := Ring(4).MaxCut(); m != 4 {
		t.Fatalf("C4 max cut %d", m)
	}
	if m := Ring(5).MaxCut(); m != 4 {
		t.Fatalf("C5 max cut %d", m)
	}
	if m := Star(6).MaxCut(); m != 5 {
		t.Fatalf("star max cut %d", m)
	}
	// K4 via Regular3(4): max cut of K4 is 4.
	if m := Regular3(4).MaxCut(); m != 4 {
		t.Fatalf("K4 max cut %d", m)
	}
}

func TestCutComplementInvariance(t *testing.T) {
	g := Random(8, 0.4, 9)
	check := func(mask uint8) bool {
		a := uint64(mask)
		comp := ^a & 0xff
		return g.CutValue(a) == g.CutValue(comp)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	bad := []*Graph{
		{N: 3, Edges: [][2]int{{0, 3}}},         // out of range
		{N: 3, Edges: [][2]int{{1, 1}}},         // self loop
		{N: 3, Edges: [][2]int{{0, 1}, {1, 0}}}, // duplicate
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("bad graph %d accepted", i)
		}
	}
}
