package partition

import (
	"math"
	"testing"
	"testing/quick"

	"tqsim/internal/circuit"
	"tqsim/internal/noise"
	"tqsim/internal/workloads"
)

func qft14() *circuit.Circuit { return workloads.QFT(14, true) }

func TestBaselinePlan(t *testing.T) {
	c := qft14()
	p := Baseline(c, 64)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalOutcomes() != 64 || p.Levels() != 1 {
		t.Fatalf("baseline plan wrong: %v", p.Structure())
	}
	if p.TotalNodes() != 65 { // 64 subcircuit nodes + root
		t.Fatalf("nodes %d", p.TotalNodes())
	}
	if p.GateWork() != int64(64*c.Len()) {
		t.Fatalf("gate work %d", p.GateWork())
	}
}

func TestInstancesEquation3(t *testing.T) {
	// Figure 7: structure (16,2,2) has instances 16, 32, 64 and 113 nodes.
	c := qft14()
	p := FromStructure(c, []int{16, 2, 2})
	inst := p.Instances()
	if inst[0] != 16 || inst[1] != 32 || inst[2] != 64 {
		t.Fatalf("instances %v", inst)
	}
	if p.TotalNodes() != 113 {
		t.Fatalf("nodes %d, want 113", p.TotalNodes())
	}
	if p.TotalOutcomes() != 64 {
		t.Fatalf("outcomes %d", p.TotalOutcomes())
	}
}

func TestTheoreticalSpeedupFormula(t *testing.T) {
	// Paper §3.6: k equal subcircuits with structure (1,...,1,N) gives
	// speedup kN/((k-1)+N) when copies are free.
	c := workloads.QFT(10, true)
	const n = 1000
	for _, k := range []int{2, 3, 5} {
		arities := make([]int, k)
		for i := range arities {
			arities[i] = 1
		}
		arities[k-1] = n
		p := FromStructure(c, arities)
		got := p.TheoreticalSpeedup(0)
		want := float64(k*n) / float64((k-1)+n)
		// Subcircuits are near-equal, not exactly equal; allow some slack.
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("k=%d: speedup %v, want ≈%v", k, got, want)
		}
	}
}

func TestUniformPlan(t *testing.T) {
	c := qft14()
	p := Uniform(c, 1000, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalOutcomes() < 1000 {
		t.Fatalf("UCP outcomes %d below 1000", p.TotalOutcomes())
	}
	// All arities equal.
	for _, a := range p.Arities[1:] {
		if a != p.Arities[0] && a != p.Arities[0]-1 {
			// Trimming may lower later arities; structure must stay near-uniform.
			t.Fatalf("UCP arities far from uniform: %v", p.Arities)
		}
	}
}

func TestExponentialPlan(t *testing.T) {
	c := qft14()
	p := Exponential(c, 1000, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalOutcomes() < 1000 {
		t.Fatalf("XCP outcomes %d", p.TotalOutcomes())
	}
	for i := 1; i < len(p.Arities); i++ {
		if p.Arities[i] > p.Arities[i-1] {
			t.Fatalf("XCP arities not decreasing: %v", p.Arities)
		}
	}
}

func TestSampleSizeEquation5(t *testing.T) {
	// Reproduce the paper's QFT_14 worked example: p̂ ≈ 0.065 (67 gates at
	// 0.1%), N = 32000 → A0 in the several-hundred range (paper: 500).
	phat := 1 - math.Pow(1-0.001, 67)
	a0 := SampleSize(1.96, phat, 0.02, 32000)
	if a0 < 300 || a0 > 800 {
		t.Fatalf("A0 = %d outside the paper's regime", a0)
	}
	// Monotonicity: more error -> more samples; larger eps -> fewer.
	if SampleSize(1.96, 0.2, 0.02, 32000) <= a0 {
		t.Fatal("sample size not increasing in p")
	}
	if SampleSize(1.96, phat, 0.05, 32000) >= a0 {
		t.Fatal("sample size not decreasing in eps")
	}
	// Clamps.
	if SampleSize(1.96, 0, 0.02, 100) != 1 {
		t.Fatal("zero error should need one sample")
	}
	if SampleSize(1.96, 0.5, 0.001, 100) != 100 {
		t.Fatal("sample size should clamp at N")
	}
}

func TestDCPStructure(t *testing.T) {
	c := qft14()
	m := noise.NewSycamore()
	p := Dynamic(c, m, 32000, DCPOptions{CopyCost: 40})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Strategy != "DCP" {
		t.Fatalf("strategy %q", p.Strategy)
	}
	if p.TotalOutcomes() < 32000 {
		t.Fatalf("outcomes %d below shots", p.TotalOutcomes())
	}
	if p.Levels() < 3 {
		t.Fatalf("DCP found only %d levels for a %d-gate circuit", p.Levels(), c.Len())
	}
	// Non-first arities admit reuse.
	for i := 1; i < len(p.Arities); i++ {
		if p.Arities[i] < 2 {
			t.Fatalf("level %d arity %d < 2: %v", i, p.Arities[i], p.Arities)
		}
	}
	// First subcircuit has the minimum length.
	if p.Bounds[0] != 40 {
		t.Fatalf("first subcircuit length %d, want copy cost 40", p.Bounds[0])
	}
	// Remaining subcircuits each have at least minLen gates.
	subs := p.Subcircuits()
	for i, sc := range subs[1:] {
		if sc.Len() < 40 {
			t.Fatalf("subcircuit %d has %d gates < copy cost", i+1, sc.Len())
		}
	}
}

func TestDCPDegradesToBaseline(t *testing.T) {
	m := noise.NewSycamore()
	// Short circuit: cannot amortize copies.
	short := circuit.New("short", 3).H(0).CX(0, 1).CX(1, 2)
	p := Dynamic(short, m, 1000, DCPOptions{CopyCost: 40})
	if p.Strategy != "baseline" || p.Levels() != 1 {
		t.Fatalf("short circuit should degrade to baseline: %v", p.Structure())
	}
	// Tiny shot budget.
	p = Dynamic(qft14(), m, 2, DCPOptions{CopyCost: 40})
	if p.Levels() != 1 {
		t.Fatalf("tiny budget should degrade to baseline: %v", p.Structure())
	}
}

func TestDCPRespectsMaxLevels(t *testing.T) {
	p := Dynamic(qft14(), noise.NewSycamore(), 32000,
		DCPOptions{CopyCost: 10, MaxLevels: 3})
	if p.Levels() > 3 {
		t.Fatalf("levels %d exceed cap", p.Levels())
	}
}

func TestDCPRespectsMemoryBudget(t *testing.T) {
	c := qft14() // 14 qubits -> 256 KiB per state
	stateBytes := int64(16) << 14
	p := Dynamic(c, noise.NewSycamore(), 32000,
		DCPOptions{CopyCost: 10, MemoryBudgetBytes: 5 * stateBytes})
	if int64(p.Levels()+1)*stateBytes > 5*stateBytes {
		t.Fatalf("plan needs %d states, budget allows 5", p.Levels()+1)
	}
}

func TestDCPTheoreticalSpeedupNearPaper(t *testing.T) {
	// The paper's QFT_14 example reports a 3.53x theoretical bound with 7
	// subcircuits at a uniform 0.1% gate error rate. Sycamore's 1.5%
	// two-qubit rate forces a larger A0 (more accuracy-critical first-level
	// nodes), so the copy-cost-inclusive bound lands lower; the plan must
	// still promise a clear win.
	p := Dynamic(qft14(), noise.NewSycamore(), 32000, DCPOptions{CopyCost: 40})
	s := p.TheoreticalSpeedup(40)
	if s < 1.4 || s > 7 {
		t.Fatalf("theoretical speedup %v outside plausible band (structure %v)",
			s, p.Structure())
	}
	// At the paper's uniform 0.1% error rate the bound recovers the
	// paper's regime.
	uniform := noise.NewDepolarizing(0.001, 0.001)
	pu := Dynamic(qft14(), uniform, 32000, DCPOptions{CopyCost: 40})
	if su := pu.TheoreticalSpeedup(40); su < 2.2 || su > 7 {
		t.Fatalf("uniform-rate speedup %v outside the paper band (structure %v)",
			su, pu.Structure())
	}
}

func TestDCPPropertyAcrossWorkloads(t *testing.T) {
	m := noise.NewSycamore()
	check := func(pick uint8, shots16 uint16) bool {
		widths := []int{6, 8, 10}
		w := widths[int(pick)%len(widths)]
		shots := 100 + int(shots16)%4000
		c := workloads.QFT(w, true)
		p := Dynamic(c, m, shots, DCPOptions{CopyCost: 20})
		if p.Validate() != nil {
			return false
		}
		if p.TotalOutcomes() < shots {
			return false
		}
		// Tree work never exceeds baseline work.
		return p.GateWork() <= p.BaselineGateWork()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFromStructureRejectsTooManyParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("impossible split accepted")
		}
	}()
	FromStructure(circuit.New("tiny", 2).H(0), []int{2, 2})
}

func TestStructureString(t *testing.T) {
	p := FromStructure(qft14(), []int{16, 2, 2})
	if p.Structure() != "(16,2,2)" {
		t.Fatalf("structure %q", p.Structure())
	}
}

func TestValidateCatchesCorruptPlans(t *testing.T) {
	c := qft14()
	bad := []*Plan{
		{Circuit: c, Arities: nil},
		{Circuit: c, Arities: []int{0}},
		{Circuit: c, Arities: []int{2, 2}, Bounds: nil},
		{Circuit: c, Arities: []int{2, 2}, Bounds: []int{0}},
		{Circuit: c, Arities: []int{2, 2}, Bounds: []int{c.Len()}},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("corrupt plan %d accepted", i)
		}
	}
}

func TestCopyWorkMatchesNodes(t *testing.T) {
	p := FromStructure(qft14(), []int{16, 2, 2})
	if p.CopyWork() != 16+32+64 {
		t.Fatalf("copy work %d", p.CopyWork())
	}
}
