// Package partition implements the circuit partitioning strategies of the
// paper's Section 3.2: Uniform Circuit Partition (UCP), Exponential Circuit
// Partition (XCP), and the proposed Dynamic Circuit Partition (DCP), which
// sizes the first subcircuit from the state-copy-cost profile and its shot
// count A0 from the statistical sample-size bound (Equations 4 and 5), then
// fills the remaining levels with a uniform arity (Equation 6).
//
// A Plan captures the result: subcircuit boundaries plus the arity sequence
// (A0, A1, ..., Ak-1) of the simulation tree, and exposes the node/outcome
// accounting (Equation 3) and the theoretical speedup bound of Section 3.6.
package partition

import (
	"fmt"
	"math"
	"strings"

	"tqsim/internal/circuit"
	"tqsim/internal/noise"
)

// Plan is a simulation-tree specification: how the circuit splits into
// subcircuits and the arity of each tree level.
type Plan struct {
	Circuit *circuit.Circuit
	// Bounds are the gate-index cut points; len(Bounds) = len(Arities)-1.
	Bounds []int
	// Arities is the tree structure (A0, ..., Ak-1): Arities[i] children
	// per node at depth i. The product is the total outcome count.
	Arities []int
	// Strategy names the partitioner that produced the plan.
	Strategy string
}

// Subcircuits materializes the gate slices between bounds.
func (p *Plan) Subcircuits() []*circuit.Circuit {
	if len(p.Bounds) == 0 {
		return []*circuit.Circuit{p.Circuit}
	}
	return p.Circuit.SplitAt(p.Bounds...)
}

// Levels returns the number of tree levels (subcircuits).
func (p *Plan) Levels() int { return len(p.Arities) }

// TotalOutcomes returns the product of arities — the leaf count.
func (p *Plan) TotalOutcomes() int {
	n := 1
	for _, a := range p.Arities {
		n *= a
	}
	return n
}

// Instances returns the instance count of each subcircuit: the paper's
// Equation 3, prod_{j<=i} A_j for the i-th (0-indexed) subcircuit.
func (p *Plan) Instances() []int {
	out := make([]int, len(p.Arities))
	acc := 1
	for i, a := range p.Arities {
		acc *= a
		out[i] = acc
	}
	return out
}

// TotalNodes returns the node count of the simulation tree including the
// initial-state root (Figure 6/7 count nodes this way).
func (p *Plan) TotalNodes() int {
	n := 1
	for _, inst := range p.Instances() {
		n += inst
	}
	return n
}

// GateWork returns the total gate applications of the tree: each instance
// of subcircuit i applies len_i gates.
func (p *Plan) GateWork() int64 {
	subs := p.Subcircuits()
	inst := p.Instances()
	var work int64
	for i, sc := range subs {
		work += int64(inst[i]) * int64(sc.Len())
	}
	return work
}

// CopyWork returns the number of state copies the tree performs: one per
// node (each instance starts from a copy of its parent's state).
func (p *Plan) CopyWork() int64 {
	var n int64
	for _, inst := range p.Instances() {
		n += int64(inst)
	}
	return n
}

// BaselineGateWork returns the gate applications a baseline (N,1,..,1)-run
// producing the same outcome count would need.
func (p *Plan) BaselineGateWork() int64 {
	return int64(p.TotalOutcomes()) * int64(p.Circuit.Len())
}

// TheoreticalSpeedup returns baseline work over tree work, including copy
// overhead weighed at copyCost gate-equivalents per copy (Section 3.6).
func (p *Plan) TheoreticalSpeedup(copyCost float64) float64 {
	tree := float64(p.GateWork()) + copyCost*float64(p.CopyWork())
	base := float64(p.BaselineGateWork()) + copyCost*float64(p.TotalOutcomes())
	if tree <= 0 {
		return 1
	}
	return base / tree
}

// Structure renders the arity tuple like "(16,2,2)".
func (p *Plan) Structure() string {
	parts := make([]string, len(p.Arities))
	for i, a := range p.Arities {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Validate checks structural invariants: positive arities, ordered bounds,
// and bound/arity count consistency.
func (p *Plan) Validate() error {
	if len(p.Arities) == 0 {
		return fmt.Errorf("partition: empty arity sequence")
	}
	for i, a := range p.Arities {
		if a < 1 {
			return fmt.Errorf("partition: arity %d at level %d", a, i)
		}
	}
	if len(p.Bounds) != len(p.Arities)-1 {
		return fmt.Errorf("partition: %d bounds for %d levels", len(p.Bounds), len(p.Arities))
	}
	prev := 0
	for _, b := range p.Bounds {
		if b <= prev || b >= p.Circuit.Len() {
			return fmt.Errorf("partition: bad bound %d (prev %d, circuit %d gates)",
				b, prev, p.Circuit.Len())
		}
		prev = b
	}
	return nil
}

// equalBounds cuts nGates into k near-equal consecutive parts and returns
// the k-1 cut points, offset by `offset`.
func equalBounds(offset, nGates, k int) []int {
	bounds := make([]int, 0, k-1)
	for i := 1; i < k; i++ {
		bounds = append(bounds, offset+i*nGates/k)
	}
	return bounds
}

// Baseline returns the (shots, 1, ..., 1)-equivalent plan: a single
// subcircuit whose arity is the shot count (Figure 6b).
func Baseline(c *circuit.Circuit, shots int) *Plan {
	return &Plan{Circuit: c, Arities: []int{shots}, Strategy: "baseline"}
}

// FromStructure builds a plan with the given arity tuple over k equal-length
// subcircuits — used for the paper's manual structures in Figure 17.
func FromStructure(c *circuit.Circuit, arities []int) *Plan {
	k := len(arities)
	if k < 1 || c.Len() < k {
		panic(fmt.Sprintf("partition: cannot cut %d gates into %d parts", c.Len(), k))
	}
	return &Plan{
		Circuit:  c,
		Bounds:   equalBounds(0, c.Len(), k),
		Arities:  append([]int(nil), arities...),
		Strategy: "manual",
	}
}

// Uniform implements UCP: k equal subcircuits, all with the same arity
// ceil(shots^(1/k)) so the outcome count reaches at least `shots`.
func Uniform(c *circuit.Circuit, shots, k int) *Plan {
	if k < 1 {
		panic("partition: UCP needs k >= 1")
	}
	a := int(math.Ceil(math.Pow(float64(shots), 1/float64(k))))
	if a < 1 {
		a = 1
	}
	// Trim overshoot: lower later arities while the product still covers shots.
	arities := make([]int, k)
	for i := range arities {
		arities[i] = a
	}
	for i := k - 1; i >= 0; i-- {
		for arities[i] > 1 {
			arities[i]--
			if product(arities) < shots {
				arities[i]++
				break
			}
		}
	}
	p := FromStructure(c, arities)
	p.Strategy = "UCP"
	return p
}

// Exponential implements XCP: arities decrease geometrically (earlier
// levels get exponentially more instances), e.g. (20,10,5) in the paper's
// Figure 17 discussion.
func Exponential(c *circuit.Circuit, shots, k int) *Plan {
	if k < 1 {
		panic("partition: XCP needs k >= 1")
	}
	// Choose a base b and top arity t so that product_i t/b^i ≈ shots with
	// the last arity >= 2. Use b = 2.
	arities := make([]int, k)
	// t^k / 2^(k(k-1)/2) = shots  =>  t = (shots * 2^(k(k-1)/2))^(1/k)
	exp := float64(k*(k-1)) / 2
	t := math.Pow(float64(shots)*math.Pow(2, exp), 1/float64(k))
	for i := range arities {
		arities[i] = int(math.Max(1, math.Round(t/math.Pow(2, float64(i)))))
	}
	for product(arities) < shots {
		arities[0]++
	}
	p := FromStructure(c, arities)
	p.Strategy = "XCP"
	return p
}

func product(xs []int) int {
	n := 1
	for _, x := range xs {
		n *= x
	}
	return n
}

// DCPOptions tunes the Dynamic Circuit Partition.
type DCPOptions struct {
	// CopyCost is the profiled state-copy cost in gate-equivalents
	// (Figure 10). It sets the minimum subcircuit length. Zero selects
	// DefaultCopyCost.
	CopyCost float64
	// Z is the confidence coefficient of Equation 5 (default 1.96 ≈ 95%).
	Z float64
	// Epsilon is the margin of error of Equation 5 (default 0.02).
	Epsilon float64
	// MaxLevels caps the number of subcircuits (0 = no cap beyond the
	// copy-cost and shot-based limits).
	MaxLevels int
	// MemoryBudgetBytes caps the number of concurrently held intermediate
	// states: levels are reduced until (levels+1) state vectors fit.
	// Zero disables the check.
	MemoryBudgetBytes int64
}

// DefaultCopyCost is a server-CPU-class state copy cost in gate-equivalents,
// in line with the Xeon systems of Figure 10. Profiling (internal/core)
// refines it per host.
const DefaultCopyCost = 30

// Defaults for Equation 5. Epsilon = 0.02 reproduces the paper's QFT_14
// worked example (A0 ≈ 500 of 32,000 shots at p̂ ≈ 0.065) to within ~15%.
const (
	DefaultZ       = 1.96
	DefaultEpsilon = 0.02
)

// SampleSize evaluates Equation 5: the minimum number of first-level nodes
// that represents an N-shot population with margin eps at confidence z,
// where p is the first subcircuit's aggregate error rate (Equation 4).
func SampleSize(z, p, eps float64, n int) int {
	if p <= 0 {
		return 1
	}
	if p > 0.5 {
		p = 0.5 // variance is maximal at 1/2; clamp keeps the bound monotone
	}
	num := z * z * p * (1 - p) / (eps * eps)
	a0 := num / (1 + num/float64(n))
	out := int(math.Ceil(a0))
	if out < 1 {
		out = 1
	}
	if out > n {
		out = n
	}
	return out
}

// Dynamic implements DCP (Section 3.2). The returned plan degrades
// gracefully: when the circuit is too short or the shot budget too small to
// admit reuse, it returns the baseline plan.
func Dynamic(c *circuit.Circuit, m *noise.Model, shots int, opt DCPOptions) *Plan {
	if opt.CopyCost <= 0 {
		opt.CopyCost = DefaultCopyCost
	}
	if opt.Z <= 0 {
		opt.Z = DefaultZ
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = DefaultEpsilon
	}
	minLen := int(math.Ceil(opt.CopyCost))
	if minLen < 1 {
		minLen = 1
	}
	total := c.Len()
	// Need a first subcircuit of minLen plus at least one more subcircuit
	// of minLen for any reuse to pay off.
	if total < 2*minLen || shots < 4 {
		return Baseline(c, shots)
	}

	// Phase 1: first subcircuit = the fewest gates that amortize a copy.
	firstLen := minLen
	phat := m.SegmentErrorProb(c.Gates[:firstLen])
	a0 := SampleSize(opt.Z, phat, opt.Epsilon, shots)

	// Phase 2: shot-based level limit — max k with floor((N/A0)^(1/k)) >= 2.
	ratio := float64(shots) / float64(a0)
	if ratio < 2 {
		return Baseline(c, shots)
	}
	kShots := int(math.Floor(math.Log2(ratio)))
	// Gate-count/copy-cost limit: each remaining subcircuit needs >= minLen gates.
	remaining := total - firstLen
	kGates := remaining / minLen
	k := kShots
	if kGates < k {
		k = kGates
	}
	if opt.MaxLevels > 0 && opt.MaxLevels-1 < k {
		k = opt.MaxLevels - 1
	}
	if opt.MemoryBudgetBytes > 0 {
		stateBytes := int64(16) << uint(c.NumQubits)
		// The executor holds one state per level plus one working copy.
		for k >= 1 && int64(k+2)*stateBytes > opt.MemoryBudgetBytes {
			k--
		}
	}
	if k < 1 {
		return Baseline(c, shots)
	}

	ar := int(math.Floor(math.Pow(ratio, 1/float64(k))))
	if ar < 2 {
		ar = 2
	}
	arities := make([]int, k+1)
	arities[0] = a0
	for i := 1; i <= k; i++ {
		arities[i] = ar
	}
	// Adjustment pass: increment arities (cycling from the level after the
	// statistically sized first one) until the outcome count covers the
	// requested shots.
	idx := 1 % len(arities)
	for product(arities) < shots {
		arities[idx]++
		idx++
		if idx == len(arities) {
			idx = 1 % len(arities)
		}
	}

	bounds := append([]int{firstLen}, equalBounds(firstLen, remaining, k)...)
	p := &Plan{Circuit: c, Bounds: bounds, Arities: arities, Strategy: "DCP"}
	if err := p.Validate(); err != nil {
		// Defensive: never hand the executor an inconsistent plan.
		return Baseline(c, shots)
	}
	return p
}
