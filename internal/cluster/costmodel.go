package cluster

import (
	"math"

	"tqsim/internal/circuit"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
)

// NetworkConfig parameterizes the interconnect and node compute rate of the
// modeled cluster. Defaults approximate a 100 Gb/s fat-tree with
// dual-socket Xeon nodes, the class of system the paper's Section 5.3 uses.
type NetworkConfig struct {
	// Nodes is the node count (power of two).
	Nodes int
	// LatencySec is the per-message-round network latency.
	LatencySec float64
	// BandwidthBytesPerSec is the per-link bandwidth.
	BandwidthBytesPerSec float64
	// GateSecPerAmp is one node's kernel time per amplitude per gate.
	GateSecPerAmp float64
	// CopySecPerByte is node-local memory copy time per byte.
	CopySecPerByte float64
}

// DefaultNetwork returns the calibrated defaults used by the Figure 13
// reproduction.
func DefaultNetwork(nodes int) NetworkConfig {
	return NetworkConfig{
		Nodes:                nodes,
		LatencySec:           5e-6,   // 5 us MPI round
		BandwidthBytesPerSec: 1.2e10, // ~100 Gb/s effective
		GateSecPerAmp:        2.5e-10,
		CopySecPerByte:       1.5e-10,
	}
}

// globalQubits returns log2(nodes).
func (c NetworkConfig) globalQubits() int {
	g := 0
	for 1<<uint(g) < c.Nodes {
		g++
	}
	return g
}

// CostReport prices one workload on the modeled cluster.
type CostReport struct {
	Nodes int
	// ComputeSec, CommSec and CopySec decompose the modeled critical-path
	// time of one run.
	ComputeSec, CommSec, CopySec float64
	// TotalSec is their sum.
	TotalSec float64
	// BytesPerNode is the modeled traffic each node sends.
	BytesPerNode float64
	// GlobalGateShare is the fraction of gate applications touching
	// global qubits.
	GlobalGateShare float64
}

// gateCost prices a single gate application (with its expected noise
// insertions) at width n over the configured node count. Noise channels on
// the same qubits inherit the gate's locality.
func (c NetworkConfig) gateCost(n int, qubits []int, expectedNoiseOps float64) (compute, comm float64, global bool) {
	shardAmps := math.Pow(2, float64(n-c.globalQubits()))
	perKernel := shardAmps * c.GateSecPerAmp
	kernels := 1 + expectedNoiseOps
	compute = perKernel * kernels
	localBoundary := n - c.globalQubits()
	for _, q := range qubits {
		if q >= localBoundary {
			global = true
		}
	}
	if global {
		shardBytes := shardAmps * 16
		comm = (c.LatencySec + shardBytes/c.BandwidthBytesPerSec) * kernels
	}
	return compute, comm, global
}

// EstimateShot prices one noisy trajectory of the circuit.
func (c NetworkConfig) EstimateShot(ckt *circuit.Circuit, m *noise.Model) CostReport {
	rep := CostReport{Nodes: c.Nodes}
	globalGates := 0
	for _, g := range ckt.Gates {
		exp := m.GateErrorProb(g)
		// Expected trajectory kernel count: a Pauli channel inserts an
		// operator with probability equal to its error rate, so the
		// expected extra kernels per gate are e * channelCount.
		noiseOps := clamp01(exp) * float64(m.TrajectoryOps(g))
		comp, comm, global := c.gateCost(ckt.NumQubits, g.Qubits, noiseOps)
		rep.ComputeSec += comp
		rep.CommSec += comm
		if global {
			globalGates++
			rep.BytesPerNode += math.Pow(2, float64(ckt.NumQubits-c.globalQubits())) * 16
		}
	}
	if len(ckt.Gates) > 0 {
		rep.GlobalGateShare = float64(globalGates) / float64(len(ckt.Gates))
	}
	rep.TotalSec = rep.ComputeSec + rep.CommSec
	return rep
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// EstimateBaseline prices an N-shot baseline run: N independent
// trajectories plus one state re-initialization each.
func (c NetworkConfig) EstimateBaseline(ckt *circuit.Circuit, m *noise.Model, shots int) CostReport {
	shot := c.EstimateShot(ckt, m)
	shardBytes := math.Pow(2, float64(ckt.NumQubits-c.globalQubits())) * 16
	rep := CostReport{
		Nodes:           c.Nodes,
		ComputeSec:      shot.ComputeSec * float64(shots),
		CommSec:         shot.CommSec * float64(shots),
		CopySec:         shardBytes * c.CopySecPerByte * float64(shots),
		BytesPerNode:    shot.BytesPerNode * float64(shots),
		GlobalGateShare: shot.GlobalGateShare,
	}
	rep.TotalSec = rep.ComputeSec + rep.CommSec + rep.CopySec
	return rep
}

// EstimatePlan prices a TQSim simulation-tree run: every subcircuit
// instance pays its own gate compute/comm, and every node of the tree pays
// one distributed state copy (node-local on each cluster node).
func (c NetworkConfig) EstimatePlan(plan *partition.Plan, m *noise.Model) CostReport {
	rep := CostReport{Nodes: c.Nodes}
	subs := plan.Subcircuits()
	inst := plan.Instances()
	shardBytes := math.Pow(2, float64(plan.Circuit.NumQubits-c.globalQubits())) * 16
	for i, sc := range subs {
		shot := c.EstimateShot(sc, m)
		k := float64(inst[i])
		rep.ComputeSec += shot.ComputeSec * k
		rep.CommSec += shot.CommSec * k
		rep.BytesPerNode += shot.BytesPerNode * k
		rep.CopySec += shardBytes * c.CopySecPerByte * k
	}
	rep.TotalSec = rep.ComputeSec + rep.CommSec + rep.CopySec
	return rep
}

// StrongScalingPoint is one (nodes, speedup) sample of Figure 13a.
type StrongScalingPoint struct {
	Nodes    int
	TotalSec float64
	Speedup  float64 // versus the 1-node configuration
}

// StrongScaling sweeps node counts for a fixed workload and reports modeled
// speedups versus one node.
func StrongScaling(ckt *circuit.Circuit, m *noise.Model, shots int, nodeCounts []int) []StrongScalingPoint {
	var out []StrongScalingPoint
	var base float64
	for i, nodes := range nodeCounts {
		cfg := DefaultNetwork(nodes)
		rep := cfg.EstimateBaseline(ckt, m, shots)
		if i == 0 {
			base = rep.TotalSec
		}
		out = append(out, StrongScalingPoint{
			Nodes:    nodes,
			TotalSec: rep.TotalSec,
			Speedup:  base / rep.TotalSec,
		})
	}
	return out
}
