// Package cluster implements the multi-node substrate of the paper's
// Section 5.3 (the qHiPSTER role): a distributed state-vector simulator
// whose 2^n amplitudes are sharded over P (power-of-two) nodes, plus an
// interconnect cost model that turns the real communication volumes of the
// gate stream into modeled wall time for strong- and weak-scaling studies
// (Figure 13).
//
// DistState executes gates for real across shard boundaries — qubits in the
// top log2(P) positions are "global" and require pairwise amplitude
// exchange between node shards, exactly as on a real cluster — so its
// numerics are testable against the single-node engine. The cost model then
// prices each gate's compute and communication with configurable node and
// network parameters, which is how a single machine reproduces the *shape*
// of 32-node scaling (see DESIGN.md's substitution table).
package cluster

import (
	"fmt"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/statevec"
)

// DistState is an n-qubit state distributed over Nodes shards.
// Qubits [0, n-g) are node-local; qubits [n-g, n) are global, where
// g = log2(Nodes).
type DistState struct {
	n      int
	nodes  int
	global int // log2(nodes)
	shards [][]complex128
	// wrapped[i] is a statevec view over shards[i], built once so every
	// node-local gate reuses the engine's strided fast-path kernels (and
	// the worker pool) without re-wrapping per gate.
	wrapped []*statevec.State
	// BytesSent accumulates the total amplitude traffic between shards.
	BytesSent int64
	// Exchanges counts pairwise shard exchanges (message rounds).
	Exchanges int64
}

// log2pow returns log2 of a power of two.
func log2pow(p int) int {
	g := 0
	for 1<<uint(g) < p {
		g++
	}
	return g
}

// distLayout validates the (n, nodes) geometry and returns a DistState
// shell with empty shard slots; callers fill the shards with owned or
// aliased storage.
func distLayout(n, nodes int) *DistState {
	if nodes < 1 || nodes&(nodes-1) != 0 {
		panic("cluster: node count must be a power of two")
	}
	g := log2pow(nodes)
	if n-g < 1 {
		panic(fmt.Sprintf("cluster: %d qubits cannot shard over %d nodes", n, nodes))
	}
	d := &DistState{n: n, nodes: nodes, global: g}
	d.shards = make([][]complex128, nodes)
	d.wrapped = make([]*statevec.State, nodes)
	return d
}

// NewDistState returns |0...0> over the given node count (a power of two,
// with at least one local qubit per shard).
func NewDistState(n, nodes int) *DistState {
	d := distLayout(n, nodes)
	shardLen := 1 << uint(n-d.global)
	for i := range d.shards {
		d.shards[i] = make([]complex128, shardLen)
		d.wrapped[i] = statevec.Wrap(d.shards[i])
	}
	d.shards[0][0] = 1
	return d
}

// Over returns a DistState whose shards alias the amplitude storage of s
// instead of owning their own: shard i is the i-th contiguous slice of the
// little-endian amplitude array, exactly the memory layout a real cluster
// partitions. Mutations through the returned DistState are visible in s
// (and vice versa), which is how the cluster backend adapter executes the
// sharded code paths against executor-owned states. The current contents of
// s are adopted as-is.
func Over(s *statevec.State, nodes int) *DistState {
	d := distLayout(s.NumQubits(), nodes)
	amps := s.Amplitudes()
	shardLen := 1 << uint(d.n-d.global)
	for i := range d.shards {
		d.shards[i] = amps[i*shardLen : (i+1)*shardLen : (i+1)*shardLen]
		d.wrapped[i] = statevec.Wrap(d.shards[i])
	}
	return d
}

// NumQubits returns n.
func (d *DistState) NumQubits() int { return d.n }

// Nodes returns the shard count.
func (d *DistState) Nodes() int { return d.nodes }

// LocalQubits returns the number of node-local qubits.
func (d *DistState) LocalQubits() int { return d.n - d.global }

// ShardBytes returns the per-shard amplitude storage.
func (d *DistState) ShardBytes() int64 { return int64(len(d.shards[0])) * 16 }

// Gather reassembles the full state vector (tests and sampling).
func (d *DistState) Gather() *statevec.State {
	full := make([]complex128, 1<<uint(d.n))
	shardLen := len(d.shards[0])
	for s, sh := range d.shards {
		copy(full[s*shardLen:(s+1)*shardLen], sh)
	}
	return statevec.FromAmplitudes(full)
}

// isGlobal reports whether qubit q is a global (inter-node) qubit.
func (d *DistState) isGlobal(q int) bool { return q >= d.n-d.global }

// globalBit returns the shard-index bit of a global qubit.
func (d *DistState) globalBit(q int) int { return q - (d.n - d.global) }

// Apply1Q applies a 2x2 matrix to qubit t, exchanging shard halves when t
// is global.
func (d *DistState) Apply1Q(t int, m qmath.Matrix) {
	if !d.isGlobal(t) {
		for _, w := range d.wrapped {
			w.Apply1Q(t, m)
		}
		return
	}
	bit := 1 << uint(d.globalBit(t))
	m00, m01, m10, m11 := m.Data[0], m.Data[1], m.Data[2], m.Data[3]
	for s := range d.shards {
		if s&bit != 0 {
			continue
		}
		lo, hi := d.shards[s], d.shards[s|bit]
		for i := range lo {
			a0, a1 := lo[i], hi[i]
			lo[i] = m00*a0 + m01*a1
			hi[i] = m10*a0 + m11*a1
		}
		// On a real cluster each partner sends its full shard half to the
		// other; account both directions.
		d.BytesSent += 2 * d.ShardBytes()
		d.Exchanges++
	}
}

// Apply2Q applies a 4x4 matrix to qubits (q0, q1), q0 the low bit of the
// gate's basis index, handling all locality combinations.
func (d *DistState) Apply2Q(q0, q1 int, m qmath.Matrix) {
	g0, g1 := d.isGlobal(q0), d.isGlobal(q1)
	switch {
	case !g0 && !g1:
		for _, w := range d.wrapped {
			w.Apply2Q(q0, q1, m)
		}
	case g0 && g1:
		b0 := 1 << uint(d.globalBit(q0))
		b1 := 1 << uint(d.globalBit(q1))
		for s := range d.shards {
			if s&b0 != 0 || s&b1 != 0 {
				continue
			}
			sh := [4][]complex128{
				d.shards[s], d.shards[s|b0], d.shards[s|b1], d.shards[s|b0|b1],
			}
			md := m.Data
			for i := range sh[0] {
				a0, a1, a2, a3 := sh[0][i], sh[1][i], sh[2][i], sh[3][i]
				sh[0][i] = md[0]*a0 + md[1]*a1 + md[2]*a2 + md[3]*a3
				sh[1][i] = md[4]*a0 + md[5]*a1 + md[6]*a2 + md[7]*a3
				sh[2][i] = md[8]*a0 + md[9]*a1 + md[10]*a2 + md[11]*a3
				sh[3][i] = md[12]*a0 + md[13]*a1 + md[14]*a2 + md[15]*a3
			}
			d.BytesSent += 4 * 3 * d.ShardBytes() / 4 // all-to-all among 4 shards
			d.Exchanges += 3
		}
	default:
		// One global, one local. Normalize so qg is global, ql local, and
		// record whether the local qubit is the gate's low bit.
		qg, ql := q0, q1
		localIsLow := false
		if g1 {
			qg, ql = q1, q0
			localIsLow = true
		}
		bit := 1 << uint(d.globalBit(qg))
		lmask := 1 << uint(ql)
		md := m.Data
		for s := range d.shards {
			if s&bit != 0 {
				continue
			}
			lo, hi := d.shards[s], d.shards[s|bit]
			half := len(lo) / 2
			for i := 0; i < half; i++ {
				off := i & (lmask - 1)
				i0 := ((i >> uint(ql)) << uint(ql+1)) | off
				i1 := i0 | lmask
				// Gate basis: index = bit(q0) | bit(q1)<<1.
				var v [4]complex128
				if localIsLow {
					v = [4]complex128{lo[i0], lo[i1], hi[i0], hi[i1]}
				} else {
					v = [4]complex128{lo[i0], hi[i0], lo[i1], hi[i1]}
				}
				var w [4]complex128
				for row := 0; row < 4; row++ {
					w[row] = md[row*4]*v[0] + md[row*4+1]*v[1] +
						md[row*4+2]*v[2] + md[row*4+3]*v[3]
				}
				if localIsLow {
					lo[i0], lo[i1], hi[i0], hi[i1] = w[0], w[1], w[2], w[3]
				} else {
					lo[i0], hi[i0], lo[i1], hi[i1] = w[0], w[1], w[2], w[3]
				}
			}
			d.BytesSent += 2 * d.ShardBytes()
			d.Exchanges++
		}
	}
}

// localQubits reports whether every operand of g is node-local.
func (d *DistState) localQubits(g gate.Gate) bool {
	for _, q := range g.Qubits {
		if d.isGlobal(q) {
			return false
		}
	}
	return true
}

// hasFastKernel reports whether statevec.Apply dispatches this kind to a
// specialized kernel that never builds the gate matrix. Only these kinds
// are routed per-shard through Apply; for the rest, building g.Matrix()
// once here and sharing it across shards beats rebuilding it per shard.
func hasFastKernel(k gate.Kind) bool {
	switch k {
	case gate.KindX, gate.KindZ, gate.KindS, gate.KindSdg, gate.KindT,
		gate.KindTdg, gate.KindP, gate.KindRZ, gate.KindCX, gate.KindCZ,
		gate.KindCP:
		return true
	}
	return false
}

// Apply applies a 1- or 2-qubit gate instance. Wider gates must be
// decomposed before distribution (the suite's generators already emit
// 1q/2q streams when asked). Gates whose operands are all node-local are
// dispatched through the statevec fast-path kernels (specialized X, CX,
// CZ/CP and diagonal kernels), not the generic dense matrix path.
func (d *DistState) Apply(g gate.Gate) {
	switch g.Arity() {
	case 1:
		if g.Kind == gate.KindI {
			return
		}
		if !d.isGlobal(g.Qubits[0]) && hasFastKernel(g.Kind) {
			for _, w := range d.wrapped {
				w.Apply(g)
			}
			return
		}
		d.Apply1Q(g.Qubits[0], g.Matrix())
	case 2:
		if d.localQubits(g) && hasFastKernel(g.Kind) {
			for _, w := range d.wrapped {
				w.Apply(g)
			}
			return
		}
		d.Apply2Q(g.Qubits[0], g.Qubits[1], g.Matrix())
	default:
		panic("cluster: gates wider than 2 qubits must be decomposed for distribution")
	}
}

// CopyFrom copies all shards from src (the distributed state copy TQSim
// performs between tree nodes; purely node-local on a real cluster).
func (d *DistState) CopyFrom(src *DistState) {
	if d.n != src.n || d.nodes != src.nodes {
		panic("cluster: CopyFrom shape mismatch")
	}
	for i := range d.shards {
		copy(d.shards[i], src.shards[i])
	}
}

// Clone deep-copies the distributed state.
func (d *DistState) Clone() *DistState {
	c := NewDistState(d.n, d.nodes)
	c.CopyFrom(d)
	return c
}

// ResetZero restores |0...0> without reallocating.
func (d *DistState) ResetZero() {
	for _, sh := range d.shards {
		for i := range sh {
			sh[i] = 0
		}
	}
	d.shards[0][0] = 1
}
