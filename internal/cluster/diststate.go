// Package cluster implements the multi-node substrate of the paper's
// Section 5.3 (the qHiPSTER role): a distributed state-vector simulator
// whose 2^n amplitudes are sharded over P (power-of-two) nodes, plus an
// interconnect cost model that turns the real communication volumes of the
// gate stream into modeled wall time for strong- and weak-scaling studies
// (Figure 13).
//
// DistState executes gates for real across shard boundaries — qubits in the
// top log2(P) positions are "global" and require pairwise amplitude
// exchange between node shards, exactly as on a real cluster — so its
// numerics are testable against the single-node engine. The cost model then
// prices each gate's compute and communication with configurable node and
// network parameters, which is how a single machine reproduces the *shape*
// of 32-node scaling (see DESIGN.md's substitution table).
package cluster

import (
	"fmt"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/statevec"
)

// DistState is an n-qubit state distributed over Nodes shards.
// Qubits [0, n-g) are node-local; qubits [n-g, n) are global, where
// g = log2(Nodes).
//
// Since the statevec layout went structure-of-arrays, shards are zero-copy
// views (statevec.State.View) over one backing state's re/im planes: shard i
// windows the i-th contiguous 2^(n-g) amplitudes of the little-endian
// array, exactly the memory a real cluster node would own. Node-local gates
// run the engine's fast-path kernels through the views; global gates stream
// the views' component planes directly. No amplitude is ever copied between
// the backing state and its shards.
type DistState struct {
	n      int
	nodes  int
	global int // log2(nodes)
	// backing is the full-register state the shard views window. It is
	// owned by the DistState (NewDistState) or aliases an executor-owned
	// state (Over).
	backing *statevec.State
	// shard[i] is the zero-copy view over backing amplitudes
	// [i*2^(n-g), (i+1)*2^(n-g)).
	shard []*statevec.State
	// BytesSent accumulates the total amplitude traffic between shards.
	BytesSent int64
	// Exchanges counts pairwise shard exchanges (message rounds).
	Exchanges int64
}

// log2pow returns log2 of a power of two.
func log2pow(p int) int {
	g := 0
	for 1<<uint(g) < p {
		g++
	}
	return g
}

// layoutCheck validates the (n, nodes) geometry and returns log2(nodes).
func layoutCheck(n, nodes int) int {
	if nodes < 1 || nodes&(nodes-1) != 0 {
		panic("cluster: node count must be a power of two")
	}
	g := log2pow(nodes)
	if n-g < 1 {
		panic(fmt.Sprintf("cluster: %d qubits cannot shard over %d nodes", n, nodes))
	}
	return g
}

// over builds the shard views for a backing state.
func over(backing *statevec.State, nodes int) *DistState {
	n := backing.NumQubits()
	g := layoutCheck(n, nodes)
	d := &DistState{n: n, nodes: nodes, global: g, backing: backing}
	shardLen := 1 << uint(n-g)
	d.shard = make([]*statevec.State, nodes)
	for i := range d.shard {
		d.shard[i] = backing.View(i*shardLen, shardLen)
	}
	return d
}

// NewDistState returns |0...0> over the given node count (a power of two,
// with at least one local qubit per shard).
func NewDistState(n, nodes int) *DistState {
	layoutCheck(n, nodes)
	return over(statevec.NewZero(n), nodes)
}

// Over returns a DistState whose shards alias the amplitude storage of s
// instead of owning their own: shard i is a view over the i-th contiguous
// window of the little-endian amplitude planes, exactly the memory layout a
// real cluster partitions. Mutations through the returned DistState are
// visible in s (and vice versa), which is how the cluster backend adapter
// executes the sharded code paths against executor-owned states. The
// current contents of s are adopted as-is.
func Over(s *statevec.State, nodes int) *DistState {
	return over(s, nodes)
}

// NumQubits returns n.
func (d *DistState) NumQubits() int { return d.n }

// Nodes returns the shard count.
func (d *DistState) Nodes() int { return d.nodes }

// LocalQubits returns the number of node-local qubits.
func (d *DistState) LocalQubits() int { return d.n - d.global }

// ShardBytes returns the per-shard amplitude storage.
func (d *DistState) ShardBytes() int64 { return int64(d.shard[0].Bytes()) }

// Gather reassembles the full state vector (tests and sampling).
func (d *DistState) Gather() *statevec.State {
	return d.backing.Clone()
}

// isGlobal reports whether qubit q is a global (inter-node) qubit.
func (d *DistState) isGlobal(q int) bool { return q >= d.n-d.global }

// globalBit returns the shard-index bit of a global qubit.
func (d *DistState) globalBit(q int) int { return q - (d.n - d.global) }

// Apply1Q applies a 2x2 matrix to qubit t, exchanging shard halves when t
// is global. Global pairs stream the two shards' component planes — the
// arithmetic mirrors statevec's 1q kernels (same products, same summation
// order, real-matrix plane-split fast path) so sharded histograms stay
// byte-identical to the single-node engine's.
func (d *DistState) Apply1Q(t int, m qmath.Matrix) {
	if !d.isGlobal(t) {
		for _, w := range d.shard {
			w.Apply1Q(t, m)
		}
		return
	}
	bit := 1 << uint(d.globalBit(t))
	m00, m01, m10, m11 := m.Data[0], m.Data[1], m.Data[2], m.Data[3]
	allReal := imag(m00) == 0 && imag(m01) == 0 && imag(m10) == 0 && imag(m11) == 0
	for s := range d.shard {
		if s&bit != 0 {
			continue
		}
		lor, loi := d.shard[s].Components()
		hir, hii := d.shard[s|bit].Components()
		if allReal {
			r00, r01, r10, r11 := real(m00), real(m01), real(m10), real(m11)
			for i := range lor {
				a0, a1 := lor[i], hir[i]
				lor[i] = r00*a0 + r01*a1
				hir[i] = r10*a0 + r11*a1
			}
			for i := range loi {
				a0, a1 := loi[i], hii[i]
				loi[i] = r00*a0 + r01*a1
				hii[i] = r10*a0 + r11*a1
			}
		} else {
			m00r, m00i := real(m00), imag(m00)
			m01r, m01i := real(m01), imag(m01)
			m10r, m10i := real(m10), imag(m10)
			m11r, m11i := real(m11), imag(m11)
			for i := range lor {
				a0r, a0i := lor[i], loi[i]
				a1r, a1i := hir[i], hii[i]
				lor[i] = (m00r*a0r - m00i*a0i) + (m01r*a1r - m01i*a1i)
				loi[i] = (m00r*a0i + m00i*a0r) + (m01r*a1i + m01i*a1r)
				hir[i] = (m10r*a0r - m10i*a0i) + (m11r*a1r - m11i*a1i)
				hii[i] = (m10r*a0i + m10i*a0r) + (m11r*a1i + m11i*a1r)
			}
		}
		// On a real cluster each partner sends its full shard half to the
		// other; account both directions.
		d.BytesSent += 2 * d.ShardBytes()
		d.Exchanges++
	}
}

// mix4 transforms one 4-slot amplitude group in split form, mirroring the
// ((t0+t1)+t2)+t3 association of statevec's Apply2Q.
func mix4(md []complex128, vr, vi *[4]float64) (wr, wi [4]float64) {
	for row := 0; row < 4; row++ {
		var ar, ai float64
		for col := 0; col < 4; col++ {
			mr, mi := real(md[row*4+col]), imag(md[row*4+col])
			ar += mr*vr[col] - mi*vi[col]
			ai += mr*vi[col] + mi*vr[col]
		}
		wr[row], wi[row] = ar, ai
	}
	return wr, wi
}

// Apply2Q applies a 4x4 matrix to qubits (q0, q1), q0 the low bit of the
// gate's basis index, handling all locality combinations.
func (d *DistState) Apply2Q(q0, q1 int, m qmath.Matrix) {
	g0, g1 := d.isGlobal(q0), d.isGlobal(q1)
	switch {
	case !g0 && !g1:
		for _, w := range d.shard {
			w.Apply2Q(q0, q1, m)
		}
	case g0 && g1:
		b0 := 1 << uint(d.globalBit(q0))
		b1 := 1 << uint(d.globalBit(q1))
		md := m.Data
		for s := range d.shard {
			if s&b0 != 0 || s&b1 != 0 {
				continue
			}
			var rr, ii [4][]float64
			for k, sh := range [4]int{s, s | b0, s | b1, s | b0 | b1} {
				rr[k], ii[k] = d.shard[sh].Components()
			}
			for i := range rr[0] {
				vr := [4]float64{rr[0][i], rr[1][i], rr[2][i], rr[3][i]}
				vi := [4]float64{ii[0][i], ii[1][i], ii[2][i], ii[3][i]}
				wr, wi := mix4(md, &vr, &vi)
				for k := 0; k < 4; k++ {
					rr[k][i], ii[k][i] = wr[k], wi[k]
				}
			}
			d.BytesSent += 4 * 3 * d.ShardBytes() / 4 // all-to-all among 4 shards
			d.Exchanges += 3
		}
	default:
		// One global, one local. Normalize so qg is global, ql local, and
		// record whether the local qubit is the gate's low bit.
		qg, ql := q0, q1
		localIsLow := false
		if g1 {
			qg, ql = q1, q0
			localIsLow = true
		}
		bit := 1 << uint(d.globalBit(qg))
		lmask := 1 << uint(ql)
		md := m.Data
		for s := range d.shard {
			if s&bit != 0 {
				continue
			}
			lor, loi := d.shard[s].Components()
			hir, hii := d.shard[s|bit].Components()
			half := len(lor) / 2
			for i := 0; i < half; i++ {
				off := i & (lmask - 1)
				i0 := ((i >> uint(ql)) << uint(ql+1)) | off
				i1 := i0 | lmask
				// Gate basis: index = bit(q0) | bit(q1)<<1.
				var vr, vi [4]float64
				if localIsLow {
					vr = [4]float64{lor[i0], lor[i1], hir[i0], hir[i1]}
					vi = [4]float64{loi[i0], loi[i1], hii[i0], hii[i1]}
				} else {
					vr = [4]float64{lor[i0], hir[i0], lor[i1], hir[i1]}
					vi = [4]float64{loi[i0], hii[i0], loi[i1], hii[i1]}
				}
				wr, wi := mix4(md, &vr, &vi)
				if localIsLow {
					lor[i0], lor[i1], hir[i0], hir[i1] = wr[0], wr[1], wr[2], wr[3]
					loi[i0], loi[i1], hii[i0], hii[i1] = wi[0], wi[1], wi[2], wi[3]
				} else {
					lor[i0], hir[i0], lor[i1], hir[i1] = wr[0], wr[1], wr[2], wr[3]
					loi[i0], hii[i0], loi[i1], hii[i1] = wi[0], wi[1], wi[2], wi[3]
				}
			}
			d.BytesSent += 2 * d.ShardBytes()
			d.Exchanges++
		}
	}
}

// localQubits reports whether every operand of g is node-local.
func (d *DistState) localQubits(g gate.Gate) bool {
	for _, q := range g.Qubits {
		if d.isGlobal(q) {
			return false
		}
	}
	return true
}

// hasFastKernel reports whether statevec.Apply dispatches this kind to a
// specialized kernel that never builds the gate matrix. Only these kinds
// are routed per-shard through Apply; for the rest, building g.Matrix()
// once here and sharing it across shards beats rebuilding it per shard.
func hasFastKernel(k gate.Kind) bool {
	switch k {
	case gate.KindX, gate.KindZ, gate.KindS, gate.KindSdg, gate.KindT,
		gate.KindTdg, gate.KindP, gate.KindRZ, gate.KindCX, gate.KindCZ,
		gate.KindCP:
		return true
	}
	return false
}

// Apply applies a 1- or 2-qubit gate instance. Wider gates must be
// decomposed before distribution (the suite's generators already emit
// 1q/2q streams when asked). Gates whose operands are all node-local are
// dispatched through the statevec fast-path kernels (specialized X, CX,
// CZ/CP and diagonal kernels), not the generic dense matrix path.
func (d *DistState) Apply(g gate.Gate) {
	switch g.Arity() {
	case 1:
		if g.Kind == gate.KindI {
			return
		}
		if !d.isGlobal(g.Qubits[0]) && hasFastKernel(g.Kind) {
			for _, w := range d.shard {
				w.Apply(g)
			}
			return
		}
		d.Apply1Q(g.Qubits[0], g.Matrix())
	case 2:
		if d.localQubits(g) && hasFastKernel(g.Kind) {
			for _, w := range d.shard {
				w.Apply(g)
			}
			return
		}
		d.Apply2Q(g.Qubits[0], g.Qubits[1], g.Matrix())
	default:
		panic("cluster: gates wider than 2 qubits must be decomposed for distribution")
	}
}

// CopyFrom copies all shards from src (the distributed state copy TQSim
// performs between tree nodes; purely node-local on a real cluster).
func (d *DistState) CopyFrom(src *DistState) {
	if d.n != src.n || d.nodes != src.nodes {
		panic("cluster: CopyFrom shape mismatch")
	}
	d.backing.CopyFrom(src.backing)
}

// Clone deep-copies the distributed state.
func (d *DistState) Clone() *DistState {
	c := NewDistState(d.n, d.nodes)
	c.CopyFrom(d)
	return c
}

// ResetZero restores |0...0> without reallocating.
func (d *DistState) ResetZero() {
	d.backing.ResetZero()
}
