package cluster

import (
	"math"
	"testing"

	"tqsim/internal/gate"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
	"tqsim/internal/workloads"
)

// randomGateStream builds a 1q/2q gate mix touching local and global qubits.
func randomGateStream(n int, count int, seed uint64) []gate.Gate {
	r := rng.New(seed)
	var gs []gate.Gate
	for len(gs) < count {
		switch r.Intn(5) {
		case 0:
			gs = append(gs, gate.New(gate.KindH, r.Intn(n)))
		case 1:
			gs = append(gs, gate.NewParam(gate.KindRZ, []float64{r.Float64()}, r.Intn(n)))
		case 2:
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				gs = append(gs, gate.New(gate.KindCX, a, b))
			}
		case 3:
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				gs = append(gs, gate.NewParam(gate.KindCP, []float64{r.Float64()}, a, b))
			}
		case 4:
			u := qmath.RandomUnitary(4, r)
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				gs = append(gs, gate.NewUnitary(u, "su4", a, b))
			}
		}
	}
	return gs
}

func TestDistStateMatchesSingleNode(t *testing.T) {
	const n = 6
	gs := randomGateStream(n, 40, 3)
	ref := statevec.NewZero(n)
	for _, g := range gs {
		ref.Apply(g)
	}
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		d := NewDistState(n, nodes)
		for _, g := range gs {
			d.Apply(g)
		}
		got := d.Gather()
		if dist := qmath.VecDistance(got.Amplitudes(), ref.Amplitudes()); dist > 1e-9 {
			t.Errorf("%d nodes: distributed result deviates by %v", nodes, dist)
		}
	}
}

func TestDistStateCommunicationAccounting(t *testing.T) {
	const n = 5
	d := NewDistState(n, 4) // global qubits: 3, 4
	d.Apply(gate.New(gate.KindH, 0))
	if d.BytesSent != 0 {
		t.Fatalf("local gate sent %d bytes", d.BytesSent)
	}
	d.Apply(gate.New(gate.KindH, 4))
	if d.BytesSent == 0 {
		t.Fatal("global gate sent nothing")
	}
	before := d.BytesSent
	d.Apply(gate.New(gate.KindCX, 3, 4)) // both global
	if d.BytesSent <= before {
		t.Fatal("global 2q gate sent nothing")
	}
}

func TestDistStateMixedLocalityGate(t *testing.T) {
	const n = 5
	gs := []gate.Gate{
		gate.New(gate.KindH, 0),
		gate.New(gate.KindCX, 0, 4),   // local control, global target
		gate.New(gate.KindCX, 4, 1),   // global control, local target
		gate.New(gate.KindCZ, 3, 4),   // both global
		gate.New(gate.KindSWAP, 2, 3), // local/global
	}
	ref := statevec.NewZero(n)
	for _, g := range gs {
		ref.Apply(g)
	}
	d := NewDistState(n, 4)
	for _, g := range gs {
		d.Apply(g)
	}
	if dist := qmath.VecDistance(d.Gather().Amplitudes(), ref.Amplitudes()); dist > 1e-10 {
		t.Fatalf("mixed locality deviates by %v", dist)
	}
}

func TestDistStateCloneAndReset(t *testing.T) {
	d := NewDistState(4, 2)
	d.Apply(gate.New(gate.KindH, 0))
	c := d.Clone()
	c.Apply(gate.New(gate.KindX, 3))
	if qmath.VecDistance(c.Gather().Amplitudes(), d.Gather().Amplitudes()) < 1e-12 {
		t.Fatal("clone aliases parent")
	}
	d.ResetZero()
	if d.Gather().Prob(0) != 1 {
		t.Fatal("reset failed")
	}
}

func TestDistStateRejectsBadShapes(t *testing.T) {
	for _, f := range []func(){
		func() { NewDistState(4, 3) }, // not a power of two
		func() { NewDistState(2, 8) }, // more shards than amplitudes/2
		func() { NewDistState(3, 8).Apply(gate.New(gate.KindCCX, 0, 1, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad shape accepted")
				}
			}()
			f()
		}()
	}
}

func TestCostModelStrongScalingShape(t *testing.T) {
	// Figure 13a's shape: larger circuits scale better because compute
	// per node shrinks slower than communication grows.
	m := noise.NewSycamore()
	nodes := []int{1, 2, 4, 8, 16, 32}
	small := StrongScaling(workloads.BV(22, workloads.BVSecret(22)), m, 100, nodes)
	large := StrongScaling(workloads.QFT(28, true), m, 100, nodes)
	if small[len(small)-1].Speedup >= float64(nodes[len(nodes)-1]) {
		t.Fatalf("small circuit scaled perfectly (%v), expected comm-bound", small[len(small)-1].Speedup)
	}
	if large[len(large)-1].Speedup <= small[len(small)-1].Speedup {
		t.Fatalf("large circuit (%v) does not outscale small (%v)",
			large[len(large)-1].Speedup, small[len(small)-1].Speedup)
	}
	// Speedups increase with nodes for the large circuit.
	for i := 1; i < len(large); i++ {
		if large[i].Speedup < large[i-1].Speedup*0.9 {
			t.Fatalf("large circuit speedup regressed at %d nodes", large[i].Nodes)
		}
	}
}

func TestCostModelTQSimBeatsBaseline(t *testing.T) {
	// Figure 13b: TQSim's modeled time undercuts the baseline's at every
	// node count.
	m := noise.NewSycamore()
	c := workloads.QFT(24, true)
	plan := partition.Dynamic(c, m, 4000, partition.DCPOptions{CopyCost: 30})
	if plan.Levels() < 2 {
		t.Fatalf("DCP degenerate: %v", plan.Structure())
	}
	for _, nodes := range []int{1, 4, 16} {
		cfg := DefaultNetwork(nodes)
		base := cfg.EstimateBaseline(c, m, plan.TotalOutcomes())
		tq := cfg.EstimatePlan(plan, m)
		if tq.TotalSec >= base.TotalSec {
			t.Fatalf("%d nodes: TQSim %v >= baseline %v", nodes, tq.TotalSec, base.TotalSec)
		}
		speedup := base.TotalSec / tq.TotalSec
		if speedup > 6 {
			t.Fatalf("%d nodes: implausible modeled speedup %v", nodes, speedup)
		}
	}
}

func TestCostReportComposition(t *testing.T) {
	m := noise.NewSycamore()
	c := workloads.QFT(20, true)
	cfg := DefaultNetwork(4)
	rep := cfg.EstimateBaseline(c, m, 10)
	if rep.TotalSec <= 0 || rep.ComputeSec <= 0 || rep.CopySec <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
	if math.Abs(rep.TotalSec-(rep.ComputeSec+rep.CommSec+rep.CopySec)) > 1e-12 {
		t.Fatal("total != sum of parts")
	}
	if rep.GlobalGateShare <= 0 || rep.GlobalGateShare >= 1 {
		t.Fatalf("global gate share %v", rep.GlobalGateShare)
	}
	// Single node: no communication.
	rep1 := DefaultNetwork(1).EstimateBaseline(c, m, 10)
	if rep1.CommSec != 0 {
		t.Fatalf("1-node comm %v", rep1.CommSec)
	}
}

func TestShardBytes(t *testing.T) {
	d := NewDistState(10, 4)
	if d.ShardBytes() != 16*(1<<8) {
		t.Fatalf("shard bytes %d", d.ShardBytes())
	}
	if d.LocalQubits() != 8 || d.Nodes() != 4 || d.NumQubits() != 10 {
		t.Fatal("shape accessors wrong")
	}
}
