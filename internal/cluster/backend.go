// Backend adapts the sharded distributed-state engine to the tree
// executor's gate-apply interface: every gate routes through a DistState
// view built over the executor-owned amplitude array (see Over), so the
// real inter-shard exchange code paths run — and their communication volume
// is accounted — while the numerics stay bitwise identical to the
// single-node engine (local gates reuse the statevec kernels; global-gate
// loops use the same multiply-add ordering).
package cluster

import (
	"sync/atomic"

	"tqsim/internal/core"
	"tqsim/internal/gate"
	"tqsim/internal/statevec"
)

// trafficStats aggregates exchange accounting. It is shared (by pointer)
// between a backend and its forks, so Traffic() on the caller's instance
// sees parallel workers' totals; deltas are rolled in per gate with
// atomics (one exchange moves at least a shard half, so the atomic adds
// are noise).
type trafficStats struct {
	bytes     atomic.Int64
	exchanges atomic.Int64
}

// DefaultNodes is the shard count used when none is configured — the
// smallest cluster with two levels of global qubits.
const DefaultNodes = 4

// Backend implements core.Backend and core.Forker over DistState views.
type Backend struct {
	nodes int
	// views caches one DistState per executor state buffer; buffers are
	// reused across the whole tree walk, so this stays at one entry per
	// tree level within a run (and is bounded across runs, see view).
	views map[*statevec.State]*DistState
	stats *trafficStats
}

// NewBackend returns a cluster backend sharding over the given node count
// (<= 0 selects DefaultNodes; other values round down to a power of two,
// matching how a scheduler would place shards). Registers too narrow to
// give every shard at least one local qubit fall back to fewer nodes, down
// to plain single-node application.
func NewBackend(nodes int) *Backend {
	if nodes <= 0 {
		nodes = DefaultNodes
	}
	nodes = 1 << uint(log2floor(nodes))
	return &Backend{
		nodes: nodes,
		views: make(map[*statevec.State]*DistState),
		stats: &trafficStats{},
	}
}

// log2floor returns floor(log2(v)) for v >= 1.
func log2floor(v int) int {
	g := 0
	for 1<<uint(g+1) <= v {
		g++
	}
	return g
}

// Name implements core.Backend.
func (b *Backend) Name() string { return "cluster" }

// Fork implements core.Forker: view caches are per-worker state; the
// traffic counters stay shared so the caller's instance sees the totals.
func (b *Backend) Fork() core.Backend {
	return &Backend{
		nodes: b.nodes,
		views: make(map[*statevec.State]*DistState),
		stats: b.stats,
	}
}

// maxCachedViews bounds the view cache. A tree run touches levels+1 state
// buffers, so the bound is never hit within a run; it exists so a backend
// reused across many Executor runs (each allocating fresh buffers) does not
// retain every dead run's amplitude arrays through stale views.
const maxCachedViews = 64

// view returns (building if needed) the DistState aliasing s, or nil when s
// is too narrow to shard at all.
func (b *Backend) view(s *statevec.State) *DistState {
	if d, ok := b.views[s]; ok {
		return d
	}
	if len(b.views) >= maxCachedViews {
		// Accounting is rolled into stats per gate, so eviction loses
		// nothing.
		clear(b.views)
	}
	nodes := b.nodes
	for nodes > 1 && s.NumQubits()-log2pow(nodes) < 1 {
		nodes >>= 1
	}
	var d *DistState
	if nodes > 1 {
		d = Over(s, nodes)
	}
	b.views[s] = d
	return d
}

// Apply implements core.Backend. Gates wider than two qubits are applied on
// the gathered view (a real deployment would decompose them; the suite's
// generators emit 1q/2q streams when asked).
func (b *Backend) Apply(s *statevec.State, g gate.Gate) {
	d := b.view(s)
	if d == nil || g.Arity() > 2 {
		s.Apply(g)
		return
	}
	beforeBytes, beforeExch := d.BytesSent, d.Exchanges
	d.Apply(g)
	if delta := d.BytesSent - beforeBytes; delta != 0 {
		b.stats.bytes.Add(delta)
		b.stats.exchanges.Add(d.Exchanges - beforeExch)
	}
}

// Flush implements core.Backend: gates apply immediately.
func (b *Backend) Flush(*statevec.State) {}

// Traffic returns the communication accounting across every gate this
// backend (and its forks, including parallel workers) has applied: total
// bytes exchanged between shards and pairwise exchange rounds, cumulative
// over the backend's lifetime.
func (b *Backend) Traffic() (bytesSent, exchanges int64) {
	return b.stats.bytes.Load(), b.stats.exchanges.Load()
}

// Compile-time interface checks.
var (
	_ core.Backend = (*Backend)(nil)
	_ core.Forker  = (*Backend)(nil)
)

func init() {
	core.Register("cluster", func() core.Backend { return NewBackend(0) })
}
