package workloads

import (
	"math"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
)

// QSC builds a quantum-supremacy-style random circuit (Arute et al. 2019
// pattern): `depth` cycles, each a layer of random single-qubit gates from
// {sqrt(X), sqrt(Y), sqrt(W)} — never repeating on a qubit between
// consecutive cycles — followed by a brick-work pattern of CZ gates. These
// structure-free circuits are the paper's hard-to-simulate accuracy
// stressor.
func QSC(width, depth int, seed uint64) *circuit.Circuit {
	c := circuit.New(nameWith("qsc", width, -1), width)
	r := rng.New(seed)
	oneQ := []gate.Kind{gate.KindSX, gate.KindSY, gate.KindSW}
	last := make([]int, width)
	for q := range last {
		last[q] = -1
	}
	for d := 0; d < depth; d++ {
		for q := 0; q < width; q++ {
			k := r.Intn(3)
			for k == last[q] {
				k = r.Intn(3)
			}
			last[q] = k
			c.Append(gate.New(oneQ[k], q))
		}
		// Brick-work entangler: alternate pairings (0,1)(2,3)... and
		// (1,2)(3,4)... between cycles.
		start := d % 2
		for q := start; q+1 < width; q += 2 {
			c.CZ(q, q+1)
		}
	}
	return c
}

// QSCDepthFor returns the cycle count that lands the supremacy circuit near
// the paper's gate counts (38 at 8 qubits to 160 at 16 qubits).
func QSCDepthFor(width int) int {
	// gates per cycle ≈ width + width/2.
	perCycle := width + width/2
	d := int(math.Round(10 * float64(width) / float64(perCycle)))
	if d < 3 {
		d = 3
	}
	return d
}

// QV builds a Quantum-Volume-style model circuit (Cross et al. 2019):
// `depth` layers; each layer applies a random qubit permutation and a
// random SU(4) block to each adjacent pair. When haar is true the block is
// a Haar-random 4x4 unitary kept as a single two-qubit gate; otherwise it
// is emitted in its universal 3-CNOT form — eight random U3 gates
// interleaved with three CNOTs — which matches the paper's per-width gate
// counts (330..660 = 33*width at depth 6).
func QV(width, depth int, haar bool, seed uint64) *circuit.Circuit {
	c := circuit.New(nameWith("qv", width, -1), width)
	r := rng.New(seed)
	for d := 0; d < depth; d++ {
		perm := r.Perm(width)
		for p := 0; p+1 < width; p += 2 {
			a, b := perm[p], perm[p+1]
			if haar {
				u := qmath.RandomUnitary(4, r)
				c.Append(gate.NewUnitary(u, "su4", a, b))
				continue
			}
			randomU3 := func(q int) {
				c.U3(r.Float64()*math.Pi, r.Float64()*2*math.Pi, r.Float64()*2*math.Pi, q)
			}
			randomU3(a)
			randomU3(b)
			c.CX(a, b)
			randomU3(a)
			randomU3(b)
			c.CX(a, b)
			randomU3(a)
			randomU3(b)
			c.CX(a, b)
			randomU3(a)
			randomU3(b)
		}
	}
	return c
}

// QVDefaultDepth is the layer count that reproduces the paper's QV gate
// counts (33 gates per qubit).
const QVDefaultDepth = 6
