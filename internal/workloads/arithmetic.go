package workloads

import (
	"math"

	"tqsim/internal/circuit"
)

// Adder builds a Cuccaro ripple-carry adder computing a+b with nBits-bit
// operands, Toffolis decomposed into the Clifford+T gate set. Register
// layout: qubit 0 is the carry-in, then (b_i, a_i) pairs interleaved, and
// the final qubit is the carry-out, giving width 2*nBits + 2 — the 4- and
// 10-qubit ADDER benchmarks use nBits = 1 and 4. aVal and bVal are the
// classical inputs loaded with X gates (the paper's three variants per
// width differ only in inputs).
func Adder(nBits int, aVal, bVal uint64, variant int) *circuit.Circuit {
	if nBits < 1 {
		panic("workloads: adder needs at least 1 bit")
	}
	width := 2*nBits + 2
	c := circuit.New(nameWith("adder", width, variant), width)
	cin := 0
	bReg := make([]int, nBits)
	aReg := make([]int, nBits)
	for i := 0; i < nBits; i++ {
		bReg[i] = 1 + 2*i
		aReg[i] = 2 + 2*i
	}
	cout := 2*nBits + 1

	prepareValue(c, aVal, aReg)
	prepareValue(c, bVal, bReg)

	maj := func(x, y, z int) { // MAJ(c, b, a)
		c.CX(z, y)
		c.CX(z, x)
		toffoli(c, x, y, z)
	}
	uma := func(x, y, z int) { // UMA(c, b, a)
		toffoli(c, x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}

	maj(cin, bReg[0], aReg[0])
	for i := 1; i < nBits; i++ {
		maj(aReg[i-1], bReg[i], aReg[i])
	}
	c.CX(aReg[nBits-1], cout)
	for i := nBits - 1; i >= 1; i-- {
		uma(aReg[i-1], bReg[i], aReg[i])
	}
	uma(cin, bReg[0], aReg[0])
	return c
}

// AdderSum returns the expected measurement outcome of Adder: the sum bits
// land in the b register and the carry-out qubit; the a register and
// carry-in return to their inputs.
func AdderSum(nBits int, aVal, bVal uint64) uint64 {
	sum := aVal + bVal
	var out uint64
	for i := 0; i < nBits; i++ {
		if sum>>uint(i)&1 == 1 {
			out |= 1 << uint(1+2*i) // b_i holds sum bit i
		}
		if aVal>>uint(i)&1 == 1 {
			out |= 1 << uint(2+2*i) // a_i restored
		}
	}
	if sum>>uint(nBits)&1 == 1 {
		out |= 1 << uint(2*nBits+1) // carry-out
	}
	return out
}

// BV builds the Bernstein–Vazirani circuit on `width` qubits (width-1 data
// qubits plus one ancilla) for the given secret string (bit i of secret is
// data qubit i). Gate count grows linearly with width — the paper's
// worst-case benchmark for TQSim.
func BV(width int, secret uint64) *circuit.Circuit {
	if width < 2 {
		panic("workloads: BV needs at least 2 qubits")
	}
	c := circuit.New(nameWith("bv", width, -1), width)
	anc := width - 1
	c.X(anc)
	for q := 0; q < width; q++ {
		c.H(q)
	}
	for q := 0; q < width-1; q++ {
		if secret>>uint(q)&1 == 1 {
			c.CX(q, anc)
		}
	}
	for q := 0; q < width-1; q++ {
		c.H(q)
	}
	return c
}

// BVSecret is the deterministic secret the suite uses: alternating bits
// starting with 1 (101010...) over width-1 data bits.
func BVSecret(width int) uint64 {
	var s uint64
	for q := 0; q < width-1; q += 2 {
		s |= 1 << uint(q)
	}
	return s
}

// BVExpected returns the noiseless BV outcome: the secret on the data
// qubits; the ancilla measures 1 (it stays in |-> = H|1>, and the final
// basis measurement of |-> is uniform — by convention we report the secret
// with ancilla marginalized, so callers comparing full outcomes should
// mask the ancilla bit).
func BVExpected(width int, secret uint64) uint64 {
	return secret
}

// Mul builds a Draper (QFT-based) multiplier computing aVal*bVal for
// operands of na and nb bits. The product register has na+nb+1 qubits, so
// the total width is 2*(na+nb)+1 — 13, 15 and 25 qubits for the paper's
// (3,3), (3,4) and (6,6) instances. decomposeCP selects primitive-gate
// decomposition of the controlled phases (matching the paper's larger MUL
// gate counts).
func Mul(na, nb int, aVal, bVal uint64, decomposeCP bool, variant int) *circuit.Circuit {
	if na < 1 || nb < 1 {
		panic("workloads: multiplier needs positive operand widths")
	}
	np := na + nb + 1
	width := na + nb + np
	c := circuit.New(nameWith("mul", width, variant), width)
	aReg := rangeInts(0, na)
	bReg := rangeInts(na, nb)
	pReg := rangeInts(na+nb, np)

	prepareValue(c, aVal, aReg)
	prepareValue(c, bVal, bReg)

	qftRegister(c, pReg, decomposeCP, false)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			// Adds 2^(i+j) into the Fourier-space product register,
			// controlled on a_i and b_j. Our qftRegister leaves output bit
			// k of the transform on pReg[k] (its bit-reversal and the
			// Draper phase ladder cancel), so the rotation for weight-2^k
			// output bits lands on pReg[k] with angle 2pi * 2^(i+j) / 2^(k+1).
			for k := 0; k < np; k++ {
				theta := 2 * math.Pi * float64(uint64(1)<<uint(i+j)) /
					math.Pow(2, float64(k+1))
				theta = math.Mod(theta, 2*math.Pi)
				if theta == 0 {
					continue
				}
				ccphase(c, theta, aReg[i], bReg[j], pReg[k], decomposeCP)
			}
		}
	}
	qftRegister(c, pReg, decomposeCP, true)
	return c
}

// MulExpected returns the expected measurement outcome of Mul: operands
// unchanged, product register holding aVal*bVal.
func MulExpected(na, nb int, aVal, bVal uint64) uint64 {
	prod := (aVal & (1<<uint(na) - 1)) * (bVal & (1<<uint(nb) - 1))
	out := aVal&(1<<uint(na)-1) | (bVal&(1<<uint(nb)-1))<<uint(na)
	out |= prod << uint(na+nb)
	return out
}

// qftRegister applies the (inverse, when inv is true) quantum Fourier
// transform over the given qubit list, without the terminal swaps: the
// Draper adder convention keeps the register bit-reversed internally, and
// the inverse undoes it symmetrically.
func qftRegister(c *circuit.Circuit, reg []int, decomposeCP, inv bool) {
	n := len(reg)
	if !inv {
		for i := n - 1; i >= 0; i-- {
			c.H(reg[i])
			for j := i - 1; j >= 0; j-- {
				cphase(c, math.Pi/math.Pow(2, float64(i-j)), reg[j], reg[i], decomposeCP)
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			cphase(c, -math.Pi/math.Pow(2, float64(i-j)), reg[j], reg[i], decomposeCP)
		}
		c.H(reg[i])
	}
}
