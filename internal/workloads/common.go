// Package workloads generates the paper's benchmark suite (Table 2): ADDER,
// BV, MUL, QAOA, QFT, QPE, QSC and QV circuits across the widths and gate
// counts of Figure 11. Every generator is deterministic for a given
// parameter set and seed, so experiments are reproducible end to end.
package workloads

import (
	"fmt"

	"tqsim/internal/circuit"
)

// toffoli appends the standard 15-gate {H, T, CX} decomposition of a
// Toffoli gate CCX(c0, c1, t), keeping the gate stream strictly one- and
// two-qubit so noise channels attach uniformly.
func toffoli(c *circuit.Circuit, c0, c1, t int) {
	c.H(t)
	c.CX(c1, t)
	c.Tdg(t)
	c.CX(c0, t)
	c.T(t)
	c.CX(c1, t)
	c.Tdg(t)
	c.CX(c0, t)
	c.T(c1)
	c.T(t)
	c.H(t)
	c.CX(c0, c1)
	c.T(c0)
	c.Tdg(c1)
	c.CX(c0, c1)
}

// cphase appends a controlled phase of angle theta. When decompose is true
// it uses the 5-gate {RZ, CX} decomposition
//
//	CP(θ) = RZ(θ/2)@c · CX(c,t) · RZ(-θ/2)@t · CX(c,t) · RZ(θ/2)@t
//
// (up to global phase); otherwise the native two-qubit CP gate.
func cphase(c *circuit.Circuit, theta float64, ctl, tgt int, decompose bool) {
	if !decompose {
		c.CP(theta, ctl, tgt)
		return
	}
	c.RZ(theta/2, ctl)
	c.CX(ctl, tgt)
	c.RZ(-theta/2, tgt)
	c.CX(ctl, tgt)
	c.RZ(theta/2, tgt)
}

// swapGate appends a SWAP, either native or as three CNOTs.
func swapGate(c *circuit.Circuit, a, b int, decompose bool) {
	if !decompose {
		c.SWAP(a, b)
		return
	}
	c.CX(a, b)
	c.CX(b, a)
	c.CX(a, b)
}

// ccphase appends a doubly-controlled phase CCP(theta) on (c0, c1, t) using
// the standard 5 controlled-phase construction.
func ccphase(c *circuit.Circuit, theta float64, c0, c1, t int, decompose bool) {
	cphase(c, theta/2, c1, t, decompose)
	c.CX(c0, c1)
	cphase(c, -theta/2, c1, t, decompose)
	c.CX(c0, c1)
	cphase(c, theta/2, c0, t, decompose)
}

// prepareValue loads the classical value into the register qubits (LSB
// first) with X gates.
func prepareValue(c *circuit.Circuit, value uint64, reg []int) {
	for i, q := range reg {
		if value>>uint(i)&1 == 1 {
			c.X(q)
		}
	}
}

// rangeInts returns [start, start+count).
func rangeInts(start, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// nameWith builds the conventional benchmark name "class_nQUBITS" with an
// optional variant suffix.
func nameWith(class string, qubits, variant int) string {
	if variant < 0 {
		return fmt.Sprintf("%s_n%d", class, qubits)
	}
	return fmt.Sprintf("%s_n%d_%d", class, qubits, variant)
}
