package workloads

import (
	"fmt"
	"sort"
	"strings"

	"tqsim/internal/circuit"
	"tqsim/internal/graphs"
)

// Class names, in the paper's presentation order.
var Classes = []string{"adder", "bv", "mul", "qaoa", "qft", "qpe", "qsc", "qv"}

// Bench couples a generated circuit with its class for suite-level reports.
type Bench struct {
	Class   string
	Circuit *circuit.Circuit
}

// qaoaGraph builds the deterministic graph instance backing a suite QAOA
// circuit of the given width.
func qaoaGraph(width int) *graphs.Graph {
	return graphs.Random(width, 0.5, uint64(width)*1009)
}

// defaultQAOALayers are the fixed angles the suite evaluates (two layers).
func defaultQAOALayers() []QAOAParams {
	return []QAOAParams{{Gamma: 0.7, Beta: 0.3}, {Gamma: 0.4, Beta: 0.6}}
}

// Suite generates the full 48-circuit benchmark suite of Table 2: eight
// classes with six instances each, spanning 4 to 25 qubits. maxQubits > 0
// filters out wider circuits (the artifact's default subset uses 13).
func Suite(maxQubits int) []Bench {
	var out []Bench
	add := func(class string, c *circuit.Circuit) {
		if maxQubits > 0 && c.NumQubits > maxQubits {
			return
		}
		out = append(out, Bench{Class: class, Circuit: c})
	}

	// ADDER: three input variants at 4 and 10 qubits.
	for v, io := range [][2]uint64{{0, 1}, {1, 1}, {1, 0}} {
		add("adder", Adder(1, io[0], io[1], v))
	}
	for v, io := range [][2]uint64{{5, 9}, {15, 1}, {7, 7}} {
		add("adder", Adder(4, io[0], io[1], v))
	}

	// BV: widths 6..16 with alternating-bit secrets.
	for _, w := range []int{6, 8, 10, 12, 14, 16} {
		add("bv", BV(w, BVSecret(w)))
	}

	// MUL: (3,3) at 13 qubits, four input variants of (3,4) at 15 qubits,
	// and (6,6) at 25 qubits. Native controlled phases keep the gate
	// counts in Table 2's band (92-1477).
	add("mul", Mul(3, 3, 3, 5, false, -1))
	for v, io := range [][2]uint64{{3, 11}, {5, 9}, {7, 13}, {6, 10}} {
		add("mul", Mul(3, 4, io[0], io[1], false, v))
	}
	add("mul", Mul(6, 6, 27, 45, false, -1))

	// QAOA: widths 6..15 on seeded random graphs, two layers.
	for _, w := range []int{6, 8, 9, 11, 13, 15} {
		add("qaoa", QAOA(qaoaGraph(w), defaultQAOALayers()))
	}

	// QFT: widths 8..18, decomposed.
	for _, w := range []int{8, 10, 12, 14, 16, 18} {
		add("qft", QFT(w, true))
	}

	// QPE: widths 4..16 (counting = width-1); the two 9-qubit variants
	// differ in controlled-phase decomposition, as in the paper.
	add("qpe", QPE(3, QPEPhase, true, -1))
	add("qpe", QPE(5, QPEPhase, true, -1))
	add("qpe", QPE(8, QPEPhase, true, 0))
	add("qpe", QPE(8, QPEPhase, false, 1))
	add("qpe", QPE(10, QPEPhase, true, -1))
	add("qpe", QPE(15, QPEPhase, true, -1))

	// QSC: widths 8..16, depth tuned to the paper's gate counts.
	for _, w := range []int{8, 9, 10, 12, 15, 16} {
		add("qsc", QSC(w, QSCDepthFor(w), uint64(w)*31))
	}

	// QV: widths 10..20 at the canonical depth.
	for _, w := range []int{10, 12, 14, 16, 18, 20} {
		add("qv", QV(w, QVDefaultDepth, false, uint64(w)*97))
	}
	return out
}

// ByName regenerates a single suite circuit from its conventional name
// (e.g. "qft_n14", "adder_n4_1"). It returns nil when the name is unknown.
func ByName(name string) *circuit.Circuit {
	for _, b := range Suite(0) {
		if b.Circuit.Name == name {
			return b.Circuit
		}
	}
	return nil
}

// ClassOf returns the class prefix of a benchmark name.
func ClassOf(name string) string {
	if i := strings.IndexByte(name, '_'); i > 0 {
		return name[:i]
	}
	return name
}

// CharacteristicsRow is one line of Table 2.
type CharacteristicsRow struct {
	Class          string
	WidthMin       int
	WidthMax       int
	GatesMin       int
	GatesMax       int
	Instances      int
	TwoQubitShare  float64
	MeanDepth      float64
	ExampleCircuit string
}

// Characteristics summarizes the suite per class — the data behind Table 2.
func Characteristics(suite []Bench) []CharacteristicsRow {
	byClass := map[string][]Bench{}
	for _, b := range suite {
		byClass[b.Class] = append(byClass[b.Class], b)
	}
	var rows []CharacteristicsRow
	for _, class := range Classes {
		bs := byClass[class]
		if len(bs) == 0 {
			continue
		}
		row := CharacteristicsRow{
			Class: class, WidthMin: 1 << 30, GatesMin: 1 << 30,
			Instances: len(bs), ExampleCircuit: bs[0].Circuit.Name,
		}
		var twoQ, total, depth int
		for _, b := range bs {
			c := b.Circuit
			row.WidthMin = minInt(row.WidthMin, c.NumQubits)
			row.WidthMax = maxInt(row.WidthMax, c.NumQubits)
			row.GatesMin = minInt(row.GatesMin, c.Len())
			row.GatesMax = maxInt(row.GatesMax, c.Len())
			twoQ += c.TwoQubitGates()
			total += c.Len()
			depth += c.Depth()
		}
		if total > 0 {
			row.TwoQubitShare = float64(twoQ) / float64(total)
		}
		row.MeanDepth = float64(depth) / float64(len(bs))
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Class < rows[j].Class })
	return rows
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatCharacteristics renders Table 2 as aligned text.
func FormatCharacteristics(rows []CharacteristicsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-9s %-11s %-6s %-7s %-7s\n",
		"Class", "Width", "Gates", "Insts", "2Q%", "Depth")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %2d-%-6d %4d-%-6d %-6d %6.1f%% %7.1f\n",
			strings.ToUpper(r.Class), r.WidthMin, r.WidthMax,
			r.GatesMin, r.GatesMax, r.Instances, 100*r.TwoQubitShare, r.MeanDepth)
	}
	return b.String()
}
