package workloads

import (
	"math"
	"testing"
	"testing/quick"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/graphs"
	"tqsim/internal/statevec"
)

func newTestCircuit(n int) *circuit.Circuit { return circuit.New("test", n) }

func TestAdderComputesSums(t *testing.T) {
	check := func(a8, b8 uint8) bool {
		nBits := 3
		a := uint64(a8) & 7
		b := uint64(b8) & 7
		c := Adder(nBits, a, b, -1)
		st := statevec.NewZero(c.Width())
		st.ApplyAll(c.Gates)
		want := AdderSum(nBits, a, b)
		return math.Abs(st.Prob(want)-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAdderWidths(t *testing.T) {
	if w := Adder(1, 0, 1, 0).Width(); w != 4 {
		t.Fatalf("1-bit adder width %d, want 4", w)
	}
	if w := Adder(4, 5, 9, 0).Width(); w != 10 {
		t.Fatalf("4-bit adder width %d, want 10", w)
	}
}

func TestBVRecoversSecret(t *testing.T) {
	for _, width := range []int{4, 6, 8, 10} {
		secret := BVSecret(width)
		c := BV(width, secret)
		st := statevec.NewZero(width)
		st.ApplyAll(c.Gates)
		// The data qubits must read the secret with certainty; the ancilla
		// (in |->) measures uniformly, so both its outcomes are valid.
		dataMask := uint64(1)<<uint(width-1) - 1
		p := st.Probabilities()
		var pSecret float64
		for x, px := range p {
			if uint64(x)&dataMask == secret {
				pSecret += px
			}
		}
		if math.Abs(pSecret-1) > 1e-9 {
			t.Fatalf("width %d: P(secret)=%v", width, pSecret)
		}
	}
}

func TestBVGateCountLinear(t *testing.T) {
	c6 := BV(6, BVSecret(6))
	c16 := BV(16, BVSecret(16))
	if c16.Len()-c6.Len() > 40 {
		t.Fatalf("BV gate growth not linear: %d -> %d", c6.Len(), c16.Len())
	}
	// Paper's Table 2 band: 16-46 gates across widths 6-16.
	if c6.Len() < 12 || c6.Len() > 22 || c16.Len() < 36 || c16.Len() > 52 {
		t.Fatalf("BV counts (%d,%d) outside the Table 2 band", c6.Len(), c16.Len())
	}
}

func TestMulComputesProducts(t *testing.T) {
	cases := [][2]uint64{{0, 0}, {1, 1}, {3, 5}, {7, 7}, {2, 6}}
	for _, io := range cases {
		c := Mul(3, 3, io[0], io[1], false, -1)
		st := statevec.NewZero(c.Width())
		st.ApplyAll(c.Gates)
		want := MulExpected(3, 3, io[0], io[1])
		if p := st.Prob(want); math.Abs(p-1) > 1e-6 {
			// Find the actual peak for diagnostics.
			probs := st.Probabilities()
			best, bp := 0, 0.0
			for i, q := range probs {
				if q > bp {
					best, bp = i, q
				}
			}
			t.Fatalf("mul(%d,%d): P(want=%b)=%v, peak at %b with %v",
				io[0], io[1], want, p, best, bp)
		}
	}
}

func TestMulDecomposedMatchesNative(t *testing.T) {
	a := Mul(2, 2, 3, 2, false, -1)
	b := Mul(2, 2, 3, 2, true, -1)
	sa := statevec.NewZero(a.Width())
	sa.ApplyAll(a.Gates)
	sb := statevec.NewZero(b.Width())
	sb.ApplyAll(b.Gates)
	want := MulExpected(2, 2, 3, 2)
	if math.Abs(sa.Prob(want)-1) > 1e-6 || math.Abs(sb.Prob(want)-1) > 1e-6 {
		t.Fatalf("native %v decomposed %v", sa.Prob(want), sb.Prob(want))
	}
	if b.Len() <= a.Len() {
		t.Fatal("decomposition did not increase gate count")
	}
}

func TestMulWidths(t *testing.T) {
	if w := Mul(3, 3, 1, 1, false, -1).Width(); w != 13 {
		t.Fatalf("mul(3,3) width %d, want 13", w)
	}
	if w := Mul(3, 4, 1, 1, false, -1).Width(); w != 15 {
		t.Fatalf("mul(3,4) width %d, want 15", w)
	}
}

func TestQFTOfGHZHasCosineSpectrum(t *testing.T) {
	// QFT of (|0...0> + |1...1>)/sqrt(2): the |1...1> branch contributes
	// phases e^{-2 pi i y / 2^n} relative to the flat |0...0> branch, so
	// P(y) = cos^2(pi y / 2^n) / 2^(n-1) after the terminal bit-reversal
	// swaps. Check against the analytic form at the measured ordering.
	const n = 5
	c := QFT(n, false)
	st := statevec.NewZero(n)
	st.ApplyAll(c.Gates)
	p := st.Probabilities()
	var sum float64
	maxP, minP := 0.0, 1.0
	for _, q := range p {
		sum += q
		if q > maxP {
			maxP = q
		}
		if q < minP {
			minP = q
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Structured, not uniform: peak at 2/2^n, troughs at ~0.
	if math.Abs(maxP-2.0/(1<<n)) > 1e-9 {
		t.Fatalf("peak probability %v, want %v", maxP, 2.0/(1<<n))
	}
	if minP > 1e-9 {
		t.Fatalf("spectrum has no zeros: min %v", minP)
	}
}

func TestQFTDecomposedMatchesNative(t *testing.T) {
	a := QFT(5, false)
	b := QFT(5, true)
	sa := statevec.NewZero(5)
	sa.ApplyAll(a.Gates)
	sb := statevec.NewZero(5)
	sb.ApplyAll(b.Gates)
	// Distributions must agree (global phases may differ).
	pa, pb := sa.Probabilities(), sb.Probabilities()
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-9 {
			t.Fatalf("decomposed QFT diverges at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
	if b.Len() <= a.Len() {
		t.Fatal("decomposition did not increase gate count")
	}
}

func TestQFTInverseIsIdentity(t *testing.T) {
	c := QFT(4, false)
	inv := c.Inverse()
	st := statevec.NewZero(4)
	st.ApplyAll(c.Gates)
	st.ApplyAll(inv.Gates)
	// Input preparation (X on even qubits) is part of the circuit, so the
	// round trip returns to |0...0>... it returns to the prepared state
	// reversed through prep: full inverse undoes everything -> |0>.
	if p := st.Prob(0); math.Abs(p-1) > 1e-9 {
		t.Fatalf("QFT then inverse leaves P(0)=%v", p)
	}
}

func TestQPEEstimatesPhase(t *testing.T) {
	const counting = 6
	c := QPE(counting, QPEPhase, false, -1)
	st := statevec.NewZero(c.Width())
	st.ApplyAll(c.Gates)
	// The counting register peaks at round(phase * 2^t).
	wantIdx := uint64(math.Round(QPEPhase * math.Pow(2, counting)))
	probs := st.Probabilities()
	var best uint64
	bp := 0.0
	countMask := uint64(1)<<counting - 1
	marginal := map[uint64]float64{}
	for x, p := range probs {
		marginal[uint64(x)&countMask] += p
	}
	for x, p := range marginal {
		if p > bp {
			best, bp = x, p
		}
	}
	if best != wantIdx {
		t.Fatalf("QPE peak at %d, want %d (P=%v)", best, wantIdx, bp)
	}
	if bp < 0.4 {
		t.Fatalf("QPE peak too flat: %v", bp)
	}
}

func TestQPEVariantsAgree(t *testing.T) {
	a := QPE(5, QPEPhase, false, 0)
	b := QPE(5, QPEPhase, true, 1)
	sa := statevec.NewZero(a.Width())
	sa.ApplyAll(a.Gates)
	sb := statevec.NewZero(b.Width())
	sb.ApplyAll(b.Gates)
	pa, pb := sa.Probabilities(), sb.Probabilities()
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-9 {
			t.Fatalf("QPE variants diverge at %d", i)
		}
	}
}

func TestQAOAStructure(t *testing.T) {
	g := graphs.Random(6, 0.5, 7)
	layers := defaultQAOALayers()
	c := QAOA(g, layers)
	if c.Width() != 6 {
		t.Fatalf("width %d", c.Width())
	}
	wantLen := 6 + len(layers)*(3*g.NumEdges()+6)
	if c.Len() != wantLen {
		t.Fatalf("gate count %d, want %d", c.Len(), wantLen)
	}
}

func TestQAOAZeroAnglesGiveUniform(t *testing.T) {
	g := graphs.Ring(5)
	c := QAOA(g, []QAOAParams{{Gamma: 0, Beta: 0}})
	st := statevec.NewZero(5)
	st.ApplyAll(c.Gates)
	for i, p := range st.Probabilities() {
		if math.Abs(p-1.0/32) > 1e-9 {
			t.Fatalf("outcome %d probability %v", i, p)
		}
	}
}

func TestQAOAExpectedCut(t *testing.T) {
	g := graphs.Ring(4)
	// Perfect alternating cut 0101 cuts all 4 edges.
	probs := make([]float64, 16)
	probs[0b0101] = 1
	if e := QAOAExpectedCut(g, probs); e != 4 {
		t.Fatalf("expected cut %v", e)
	}
	counts := map[uint64]int{0b0101: 1, 0b0000: 1}
	if e := QAOAExpectedCutCounts(g, counts); e != 2 {
		t.Fatalf("expected cut from counts %v", e)
	}
	if e := QAOAExpectedCutCounts(g, nil); e != 0 {
		t.Fatalf("empty counts %v", e)
	}
}

func TestQSCProperties(t *testing.T) {
	c := QSC(8, QSCDepthFor(8), 1)
	if c.Width() != 8 {
		t.Fatalf("width %d", c.Width())
	}
	// Deterministic by seed.
	c2 := QSC(8, QSCDepthFor(8), 1)
	if c.Len() != c2.Len() {
		t.Fatal("QSC not deterministic")
	}
	for i := range c.Gates {
		if c.Gates[i].Kind != c2.Gates[i].Kind {
			t.Fatal("QSC gate streams differ across identical seeds")
		}
	}
	// No repeated 1q gate on the same qubit in consecutive cycles.
	var lastKind [8]gate.Kind
	for q := range lastKind {
		lastKind[q] = gate.KindI
	}
	for _, g := range c.Gates {
		if g.Arity() == 1 {
			q := g.Qubits[0]
			if g.Kind == lastKind[q] {
				t.Fatal("QSC repeated a 1q gate on consecutive cycles")
			}
			lastKind[q] = g.Kind
		}
	}
}

func TestQVGateCount(t *testing.T) {
	// Decomposed QV at depth 6: 33 gates per qubit (Table 2's 330..660).
	for _, w := range []int{10, 12} {
		c := QV(w, QVDefaultDepth, false, 1)
		if c.Len() != 33*w {
			t.Fatalf("QV width %d has %d gates, want %d", w, c.Len(), 33*w)
		}
	}
}

func TestQVHaarVariant(t *testing.T) {
	c := QV(4, 2, true, 3)
	st := statevec.NewZero(4)
	st.ApplyAll(c.Gates)
	if d := math.Abs(st.Norm() - 1); d > 1e-9 {
		t.Fatalf("QV haar circuit broke normalization by %v", d)
	}
	for _, g := range c.Gates {
		if g.Kind != gate.KindUnitary {
			t.Fatal("haar QV should contain only unitary blocks")
		}
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite(0)
	if len(suite) != 48 {
		t.Fatalf("suite has %d circuits, want 48", len(suite))
	}
	perClass := map[string]int{}
	for _, b := range suite {
		perClass[b.Class]++
	}
	for _, class := range Classes {
		if perClass[class] != 6 {
			t.Fatalf("class %s has %d instances, want 6", class, perClass[class])
		}
	}
}

func TestSuiteFilter(t *testing.T) {
	small := Suite(13)
	if len(small) >= 48 || len(small) == 0 {
		t.Fatalf("filtered suite has %d circuits", len(small))
	}
	for _, b := range small {
		if b.Circuit.NumQubits > 13 {
			t.Fatalf("filter leaked %s", b.Circuit.Name)
		}
	}
}

func TestSuiteWidthBands(t *testing.T) {
	rows := Characteristics(Suite(0))
	if len(rows) != 8 {
		t.Fatalf("%d classes", len(rows))
	}
	band := map[string][2]int{ // paper's Table 2 width ranges
		"adder": {4, 10}, "bv": {6, 16}, "mul": {13, 25}, "qaoa": {6, 15},
		"qft": {8, 18}, "qpe": {4, 16}, "qsc": {8, 16}, "qv": {10, 20},
	}
	for _, r := range rows {
		want := band[r.Class]
		if r.WidthMin != want[0] || r.WidthMax != want[1] {
			t.Errorf("%s widths %d-%d, want %d-%d",
				r.Class, r.WidthMin, r.WidthMax, want[0], want[1])
		}
	}
	if FormatCharacteristics(rows) == "" {
		t.Fatal("empty characteristics table")
	}
}

func TestByName(t *testing.T) {
	c := ByName("bv_n6")
	if c == nil || c.NumQubits != 6 {
		t.Fatal("ByName failed for bv_n6")
	}
	if ByName("nope_n3") != nil {
		t.Fatal("unknown name resolved")
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf("qft_n14") != "qft" || ClassOf("adder_n4_1") != "adder" {
		t.Fatal("ClassOf parsing wrong")
	}
}

func TestToffoliDecompositionCorrect(t *testing.T) {
	// The 15-gate network must equal CCX on all 8 basis states.
	for basis := uint64(0); basis < 8; basis++ {
		direct := statevec.NewBasis(3, basis)
		direct.Apply(gate.New(gate.KindCCX, 0, 1, 2))
		dec := statevec.NewBasis(3, basis)
		c := newTestCircuit(3)
		toffoli(c, 0, 1, 2)
		dec.ApplyAll(c.Gates)
		f := direct.FidelityWith(dec)
		if math.Abs(f-1) > 1e-9 {
			t.Fatalf("toffoli decomposition wrong on basis %b (fidelity %v)", basis, f)
		}
	}
}
