// Clifford-heavy workload generators: circuits whose gates lie (entirely or
// mostly) in the Clifford group, the scenario class the stabilizer engine's
// polynomial fast path unlocks at widths the dense engines cannot reach —
// error-correction-style stabilizer circuits, GHZ fan-outs, and
// Clifford-prefix circuits that exercise the hybrid dispatcher's tableau ->
// state-vector handoff.
package workloads

import (
	"fmt"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/rng"
)

// GHZ returns the width-qubit GHZ preparation (H on qubit 0, then a CX
// fan-out chain) — the minimal fully entangling Clifford circuit.
func GHZ(width int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("ghz_n%d", width), width)
	c.H(0)
	for q := 1; q < width; q++ {
		c.CX(q-1, q)
	}
	return c
}

// cliffordOneQubit is the single-qubit gate pool for random Clifford
// circuits, restricted to kinds the tableau engine applies natively.
var cliffordOneQubit = []gate.Kind{
	gate.KindH, gate.KindS, gate.KindSdg, gate.KindX, gate.KindY, gate.KindZ,
}

// Clifford returns a seeded random width-qubit Clifford circuit of the
// given depth. Each layer applies an independent random one-qubit Clifford
// to every qubit, then entangles a random qubit pairing with CX, CZ, or
// SWAP — the dense/random end of the Clifford scenario spectrum, as used by
// stabilizer-simulation benchmarks.
func Clifford(width, depth int, seed uint64) *circuit.Circuit {
	if width < 2 {
		panic("workloads: Clifford needs at least two qubits")
	}
	c := circuit.New(fmt.Sprintf("clifford_n%d_d%d", width, depth), width)
	r := rng.New(rng.SeedAt(seed, 0xc11f))
	for d := 0; d < depth; d++ {
		for q := 0; q < width; q++ {
			c.Append(gate.New(cliffordOneQubit[r.Intn(len(cliffordOneQubit))], q))
		}
		perm := r.Perm(width)
		for i := 0; i+1 < width; i += 2 {
			a, b := perm[i], perm[i+1]
			switch r.Intn(3) {
			case 0:
				c.CX(a, b)
			case 1:
				c.CZ(a, b)
			default:
				c.Append(gate.New(gate.KindSWAP, a, b))
			}
		}
	}
	return c
}

// CliffordPrefix returns a circuit whose first part is Clifford (a random
// Clifford circuit of cliffordDepth layers) followed by a short
// non-Clifford tail (a T + RZ + CP layer). It exercises the hybrid
// dispatcher's handoff: the prefix runs on tableaux, the tail on dense
// kernels.
func CliffordPrefix(width, cliffordDepth int, seed uint64) *circuit.Circuit {
	c := Clifford(width, cliffordDepth, seed)
	c.Name = fmt.Sprintf("cliffpfx_n%d_d%d", width, cliffordDepth)
	r := rng.New(rng.SeedAt(seed, 0x7a11))
	for q := 0; q < width; q++ {
		c.Append(gate.New(gate.KindT, q))
	}
	for q := 0; q+1 < width; q += 2 {
		c.Append(gate.NewParam(gate.KindCP, []float64{0.3 + 0.1*r.Float64()}, q, q+1))
	}
	return c
}
