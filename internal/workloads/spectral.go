package workloads

import (
	"math"
	"slices"

	"tqsim/internal/circuit"
	"tqsim/internal/graphs"
)

// QFT builds the quantum Fourier transform on `width` qubits over the
// input (|0> + |1>)/sqrt(2) ⊗ |0...0>, with controlled phases and swaps
// decomposed into primitive gates when decompose is true — matching the
// paper's QFT gate counts (e.g. 237 gates at 10 qubits, 472 at 14). The
// superposed input matters: QFT of a computational basis state has exactly
// uniform outcome probabilities, which makes the normalized-fidelity metric
// (Equation 9) degenerate; superposing x=0 and x=1 yields the structured
// cos^2(pi*y/2^n) spectrum a fidelity study needs, at the cost of a single
// extra Hadamard.
func QFT(width int, decompose bool) *circuit.Circuit {
	c := circuit.New(nameWith("qft", width, -1), width)
	c.H(0)
	for i := width - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			cphase(c, math.Pi/math.Pow(2, float64(i-j)), j, i, decompose)
		}
	}
	for q := 0; q < width/2; q++ {
		swapGate(c, q, width-1-q, decompose)
	}
	return c
}

// QPEPhase is the eigenphase the suite's QPE instances estimate: 1/3, which
// no fixed-point fraction represents exactly, producing the narrow
// bell-curve output distribution the paper's Figure 16 relies on.
const QPEPhase = 1.0 / 3.0

// QPE builds quantum phase estimation with `counting` counting qubits and a
// single eigenstate qubit (width = counting+1) for U = P(2*pi*phase). The
// eigenstate qubit is prepared in |1>. decompose selects primitive-gate
// controlled phases (the paper's two 9-qubit QPE variants differ in
// exactly this way).
func QPE(counting int, phase float64, decompose bool, variant int) *circuit.Circuit {
	width := counting + 1
	c := circuit.New(nameWith("qpe", width, variant), width)
	eigen := counting
	c.X(eigen)
	for q := 0; q < counting; q++ {
		c.H(q)
	}
	for j := 0; j < counting; j++ {
		theta := 2 * math.Pi * phase * math.Pow(2, float64(j))
		theta = math.Mod(theta, 2*math.Pi)
		cphase(c, theta, j, eigen, decompose)
	}
	inverseQFT(c, counting, decompose)
	return c
}

// inverseQFT applies the inverse QFT on qubits [0, n) including swaps.
func inverseQFT(c *circuit.Circuit, n int, decompose bool) {
	for q := 0; q < n/2; q++ {
		swapGate(c, q, n-1-q, decompose)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			cphase(c, -math.Pi/math.Pow(2, float64(i-j)), j, i, decompose)
		}
		c.H(i)
	}
}

// QAOAParams are the variational angles of one QAOA layer.
type QAOAParams struct {
	Gamma, Beta float64
}

// QAOA builds the max-cut QAOA ansatz for the graph: the |+>^n preparation,
// then per layer the cost unitary (CX·RZ(2γ)·CX per edge) and the RX(2β)
// mixer on every qubit. The widths 6..15 with 1-2 layers reproduce the
// paper's QAOA gate counts (58-175).
func QAOA(g *graphs.Graph, layers []QAOAParams) *circuit.Circuit {
	c := circuit.New(nameWith("qaoa", g.N, -1), g.N)
	for q := 0; q < g.N; q++ {
		c.H(q)
	}
	for _, l := range layers {
		for _, e := range g.Edges {
			c.CX(e[0], e[1])
			c.RZ(2*l.Gamma, e[1])
			c.CX(e[0], e[1])
		}
		for q := 0; q < g.N; q++ {
			c.RX(2*l.Beta, q)
		}
	}
	return c
}

// QAOAExpectedCut returns the expected cut value of a sampled outcome
// distribution: sum_x p(x) * cut(x). Used for the Figure 18 landscapes.
func QAOAExpectedCut(g *graphs.Graph, probs []float64) float64 {
	var e float64
	for x, p := range probs {
		if p > 0 {
			e += p * float64(g.CutValue(uint64(x)))
		}
	}
	return e
}

// QAOAExpectedCutCounts computes the expected cut from a shot histogram.
func QAOAExpectedCutCounts(g *graphs.Graph, counts map[uint64]int) float64 {
	// Sorted outcome order keeps the float sum reproducible across runs.
	outcomes := make([]uint64, 0, len(counts))
	for x := range counts {
		outcomes = append(outcomes, x)
	}
	slices.Sort(outcomes)
	var e float64
	total := 0
	for _, x := range outcomes {
		n := counts[x]
		e += float64(n) * float64(g.CutValue(x))
		total += n
	}
	if total == 0 {
		return 0
	}
	return e / float64(total)
}
