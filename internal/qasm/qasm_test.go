package qasm

import (
	"math"
	"strings"
	"testing"

	"tqsim/internal/gate"
	"tqsim/internal/statevec"
	"tqsim/internal/workloads"
)

const bellSrc = `
OPENQASM 2.0;
include "qelib1.inc";
// a bell pair
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`

func TestParseBell(t *testing.T) {
	prog, err := Parse("bell", bellSrc)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	if c.NumQubits != 2 || c.Len() != 2 {
		t.Fatalf("parsed %d qubits, %d gates", c.NumQubits, c.Len())
	}
	if c.Gates[0].Kind != gate.KindH || c.Gates[1].Kind != gate.KindCX {
		t.Fatalf("gates %v %v", c.Gates[0], c.Gates[1])
	}
	if prog.CregSize != 2 || len(prog.Measured) != 2 || prog.Measured[1] != 1 {
		t.Fatalf("measurement bookkeeping wrong: %+v", prog)
	}
}

func TestParseParameterExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[1];
rz(pi/2) q[0];
rz(-pi/4) q[0];
rz(2*pi) q[0];
rz(3.5e-1) q[0];
rz((1+2)*pi) q[0];
rz(2^3) q[0];
u3(pi/2, 0, pi) q[0];
`
	prog, err := Parse("expr", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{math.Pi / 2, -math.Pi / 4, 2 * math.Pi, 0.35, 3 * math.Pi, 8}
	for i, w := range want {
		if got := prog.Circuit.Gates[i].Params[0]; math.Abs(got-w) > 1e-12 {
			t.Errorf("param %d = %v, want %v", i, got, w)
		}
	}
	u3 := prog.Circuit.Gates[6]
	if u3.Kind != gate.KindU3 || len(u3.Params) != 3 {
		t.Fatalf("u3 parsed as %v", u3)
	}
}

func TestParseU2AndU1Aliases(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[1];
u1(0.5) q[0];
u(0.1, 0.2) q[0];
`
	prog, err := Parse("alias", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.Gates[0].Kind != gate.KindP {
		t.Fatal("u1 should alias p")
	}
	u2 := prog.Circuit.Gates[1]
	if u2.Kind != gate.KindU3 || math.Abs(u2.Params[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("u2 expansion wrong: %v", u2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no qreg", "OPENQASM 2.0; h q[0];"},
		{"unknown gate", "OPENQASM 2.0; qreg q[2]; frobnicate q[0];"},
		{"out of range", "OPENQASM 2.0; qreg q[2]; x q[5];"},
		{"unknown register", "OPENQASM 2.0; qreg q[2]; x r[0];"},
		{"custom gates", "OPENQASM 2.0; qreg q[1]; gate foo a { x a; }"},
		{"division by zero", "OPENQASM 2.0; qreg q[1]; rz(1/0) q[0];"},
		{"redeclared qreg", "OPENQASM 2.0; qreg q[1]; qreg q[2];"},
		{"qreg after gate", "OPENQASM 2.0; qreg q[1]; x q[0]; qreg r[1];"},
		{"zero-size qreg", "OPENQASM 2.0; qreg q[0]; "},
		{"bad params", "OPENQASM 2.0; qreg q[1]; rz() q[0];"},
		{"missing semicolon", "OPENQASM 2.0; qreg q[2]; x q[0]"},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, c.src); err == nil {
			t.Errorf("%s: parse accepted invalid program", c.name)
		}
	}
}

func TestMultipleRegisters(t *testing.T) {
	// QASMBench-style: a data register plus an ancilla register,
	// concatenated in declaration order.
	src := `OPENQASM 2.0;
qreg q[3];
qreg anc[2];
creg c[3];
creg ca[2];
h q[0];
x anc[1];
cx q[2], anc[0];
measure anc[1] -> ca[1];
`
	prog, err := Parse("multi", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumQubits != 5 {
		t.Fatalf("width %d, want 5", prog.Circuit.NumQubits)
	}
	if prog.Registers["q"].Offset != 0 || prog.Registers["anc"].Offset != 3 {
		t.Fatalf("register layout %+v", prog.Registers)
	}
	if prog.CregSize != 5 {
		t.Fatalf("creg size %d", prog.CregSize)
	}
	// x anc[1] must land on concatenated qubit 4.
	if prog.Circuit.Gates[1].Qubits[0] != 4 {
		t.Fatalf("ancilla gate on qubit %d", prog.Circuit.Gates[1].Qubits[0])
	}
	// cx q[2], anc[0] spans the registers: qubits 2 and 3.
	cx := prog.Circuit.Gates[2]
	if cx.Qubits[0] != 2 || cx.Qubits[1] != 3 {
		t.Fatalf("cross-register cx on %v", cx.Qubits)
	}
	// Simulate: |q0 in +, anc1 flipped> — P(bit 4 set) = 1.
	st := statevec.NewZero(5)
	st.ApplyAll(prog.Circuit.Gates)
	if p := st.Prob1(4); math.Abs(p-1) > 1e-12 {
		t.Fatalf("ancilla flip lost: %v", p)
	}
}

func TestBarrierAndIncludeSkipped(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
barrier q[0], q[1];
x q[1];
`
	prog, err := Parse("barrier", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.Len() != 2 {
		t.Fatalf("barrier not skipped: %d gates", prog.Circuit.Len())
	}
}

func TestRoundTripSuiteCircuits(t *testing.T) {
	// Serialize then re-parse suite circuits; final distributions must
	// match exactly.
	circuits := []string{"bv_n6", "qft_n8", "qpe_n4", "adder_n4_0"}
	for _, name := range circuits {
		c := workloads.ByName(name)
		if c == nil {
			t.Fatalf("suite circuit %s missing", name)
		}
		src, err := Serialize(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prog, err := Parse(name, src)
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", name, err, src)
		}
		a := statevec.NewZero(c.NumQubits)
		a.ApplyAll(c.Gates)
		b := statevec.NewZero(prog.Circuit.NumQubits)
		b.ApplyAll(prog.Circuit.Gates)
		pa, pb := a.Probabilities(), b.Probabilities()
		for i := range pa {
			if math.Abs(pa[i]-pb[i]) > 1e-9 {
				t.Fatalf("%s: round trip changed distribution at %d", name, i)
			}
		}
	}
}

func TestSerializeRejectsUnitary(t *testing.T) {
	c := workloads.QV(4, 1, true, 1) // haar blocks have no QASM form
	if _, err := Serialize(c); err == nil {
		t.Fatal("serialize accepted explicit unitary")
	}
}

func TestSerializeFormat(t *testing.T) {
	c := workloads.BV(4, 1)
	src, err := Serialize(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OPENQASM 2.0;", "qreg q[4];", "measure q[3] -> c[3];"} {
		if !strings.Contains(src, want) {
			t.Fatalf("serialized output missing %q:\n%s", want, src)
		}
	}
}

func TestLexerStringsAndComments(t *testing.T) {
	lx := newLexer("// comment\nfoo \"bar\" 1.5e3")
	t1, _ := lx.next()
	t2, _ := lx.next()
	t3, _ := lx.next()
	if t1.text != "foo" || t2.text != "bar" || t3.text != "1.5e3" {
		t.Fatalf("lexer gave %q %q %q", t1.text, t2.text, t3.text)
	}
	if t1.line != 2 {
		t.Fatalf("line tracking wrong: %d", t1.line)
	}
}
