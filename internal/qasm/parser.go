package qasm

import (
	"fmt"
	"math"
	"strconv"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
)

// Program is a parsed OpenQASM 2.0 program. Multiple quantum registers are
// supported and concatenated into one contiguous qubit space in declaration
// order (QASMBench files frequently declare a data register plus an
// ancilla register). Measurements are recorded but not represented as
// gates (the simulators measure all qubits at the end).
type Program struct {
	Circuit *circuit.Circuit
	// Registers maps each declared qreg name to its offset in the
	// concatenated qubit space.
	Registers map[string]Register
	// Measured maps classical bits to the qubits they read, in program
	// order.
	Measured map[int]int
	// CregSize is the total declared classical register size (0 when
	// absent).
	CregSize int
}

// Register locates one declared qreg within the concatenated qubit space.
type Register struct {
	Offset, Size int
}

// MaxQubits caps the total declared register width. No engine simulates
// anything near it (the tableau engine tops out at 64 packed outcome bits),
// and an uncapped width lets a three-line program demand petabyte-scale
// serialization work — found by FuzzParseQASM via "qreg q[9999999999999999]".
const MaxQubits = 4096

type parser struct {
	toks []token
	pos  int
	regs map[string]Register
	// regOrder preserves declaration order for width accounting.
	width  int
	sealed bool // true once a gate/measure statement has used the registers
}

// Parse parses OpenQASM 2.0 source into a Program.
func Parse(name, src string) (*Program, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	p := &parser{toks: toks}
	return p.parseProgram(name)
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) take() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) expectSymbol(s string) error {
	t := p.take()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("qasm: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.take()
	if t.kind != tokIdent {
		return t, fmt.Errorf("qasm: line %d: expected identifier, got %q", t.line, t.text)
	}
	return t, nil
}

// skipStatement consumes tokens through the next semicolon.
func (p *parser) skipStatement() {
	for !p.atEOF() {
		t := p.take()
		if t.kind == tokSymbol && t.text == ";" {
			return
		}
	}
}

// ensureCircuit materializes the circuit once registers are in use; further
// qreg declarations are rejected after this point.
func (p *parser) ensureCircuit(prog *Program, name string, line int) error {
	p.sealed = true
	if prog.Circuit != nil {
		return nil
	}
	if p.width == 0 {
		return fmt.Errorf("qasm: line %d: gate before qreg", line)
	}
	prog.Circuit = circuit.New(name, p.width)
	return nil
}

func (p *parser) parseProgram(name string) (*Program, error) {
	p.regs = map[string]Register{}
	prog := &Program{Measured: map[int]int{}, Registers: p.regs}

	for !p.atEOF() {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("qasm: line %d: unexpected token %q", t.line, t.text)
		}
		switch t.text {
		case "OPENQASM":
			p.take()
			v := p.take() // version number
			if v.kind != tokNumber {
				return nil, fmt.Errorf("qasm: line %d: bad version %q", v.line, v.text)
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
		case "include":
			p.skipStatement()
		case "barrier":
			p.skipStatement()
		case "qreg":
			p.take()
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			size, err := p.parseIndex()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
			if p.sealed {
				return nil, fmt.Errorf("qasm: line %d: qreg after first gate", id.line)
			}
			if _, dup := p.regs[id.text]; dup {
				return nil, fmt.Errorf("qasm: line %d: register %q redeclared", id.line, id.text)
			}
			if size < 1 {
				return nil, fmt.Errorf("qasm: line %d: register %q has size %d", id.line, id.text, size)
			}
			if size > MaxQubits || p.width+size > MaxQubits {
				return nil, fmt.Errorf("qasm: line %d: register %q pushes the program past %d qubits",
					id.line, id.text, MaxQubits)
			}
			p.regs[id.text] = Register{Offset: p.width, Size: size}
			p.width += size
		case "creg":
			p.take()
			if _, err := p.expectIdent(); err != nil {
				return nil, err
			}
			size, err := p.parseIndex()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
			if size < 0 || size > MaxQubits || prog.CregSize+size > MaxQubits {
				return nil, fmt.Errorf("qasm: line %d: classical registers exceed %d bits",
					t.line, MaxQubits)
			}
			prog.CregSize += size
		case "measure":
			p.take()
			if err := p.ensureCircuit(prog, name, t.line); err != nil {
				return nil, err
			}
			q, err := p.parseQubitRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("->"); err != nil {
				return nil, err
			}
			if _, err := p.expectIdent(); err != nil {
				return nil, err
			}
			cbit, err := p.parseIndex()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
			prog.Measured[cbit] = q
		case "gate", "opaque", "if", "reset":
			// Custom gate definitions and classical control are outside
			// the supported subset.
			return nil, fmt.Errorf("qasm: line %d: %q unsupported", t.line, t.text)
		default:
			if err := p.ensureCircuit(prog, name, t.line); err != nil {
				return nil, err
			}
			if err := p.parseGateStatement(prog.Circuit); err != nil {
				return nil, err
			}
		}
	}
	if prog.Circuit == nil {
		if p.width == 0 {
			return nil, fmt.Errorf("qasm: no qreg declaration")
		}
		prog.Circuit = circuit.New(name, p.width)
	}
	return prog, nil
}

// parseIndex parses "[ n ]" and returns n.
func (p *parser) parseIndex() (int, error) {
	if err := p.expectSymbol("["); err != nil {
		return 0, err
	}
	t := p.take()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("qasm: line %d: expected index, got %q", t.line, t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("qasm: line %d: bad index %q", t.line, t.text)
	}
	if err := p.expectSymbol("]"); err != nil {
		return 0, err
	}
	return n, nil
}

// parseQubitRef parses "name[i]" and resolves it to a concatenated-space
// qubit index.
func (p *parser) parseQubitRef() (int, error) {
	id, err := p.expectIdent()
	if err != nil {
		return 0, err
	}
	reg, ok := p.regs[id.text]
	if !ok {
		return 0, fmt.Errorf("qasm: line %d: unknown register %q", id.line, id.text)
	}
	i, err := p.parseIndex()
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= reg.Size {
		return 0, fmt.Errorf("qasm: line %d: qubit %s[%d] out of range", id.line, id.text, i)
	}
	return reg.Offset + i, nil
}

// gateTable maps QASM mnemonics to kinds and expected parameter counts.
var gateTable = map[string]gate.Kind{
	"id": gate.KindI, "x": gate.KindX, "y": gate.KindY, "z": gate.KindZ,
	"h": gate.KindH, "s": gate.KindS, "sdg": gate.KindSdg,
	"t": gate.KindT, "tdg": gate.KindTdg, "sx": gate.KindSX,
	"rx": gate.KindRX, "ry": gate.KindRY, "rz": gate.KindRZ,
	"p": gate.KindP, "u1": gate.KindP, "u3": gate.KindU3, "u": gate.KindU3,
	"cx": gate.KindCX, "CX": gate.KindCX, "cy": gate.KindCY,
	"cz": gate.KindCZ, "ch": gate.KindCH,
	"cp": gate.KindCP, "cu1": gate.KindCP, "crz": gate.KindCRZ,
	"crx": gate.KindCRX, "cry": gate.KindCRY,
	"swap": gate.KindSWAP, "ccx": gate.KindCCX, "cswap": gate.KindCSWAP,
}

func (p *parser) parseGateStatement(c *circuit.Circuit) error {
	id := p.take()
	kind, ok := gateTable[id.text]
	if !ok {
		return fmt.Errorf("qasm: line %d: unknown gate %q", id.line, id.text)
	}
	var params []float64
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.take()
		for {
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			params = append(params, v)
			t := p.take()
			if t.kind == tokSymbol && t.text == ")" {
				break
			}
			if t.kind != tokSymbol || t.text != "," {
				return fmt.Errorf("qasm: line %d: expected , or ) in params", t.line)
			}
		}
	}
	var qubits []int
	for {
		q, err := p.parseQubitRef()
		if err != nil {
			return err
		}
		qubits = append(qubits, q)
		t := p.take()
		if t.kind == tokSymbol && t.text == ";" {
			break
		}
		if t.kind != tokSymbol || t.text != "," {
			return fmt.Errorf("qasm: line %d: expected , or ; after qubit", t.line)
		}
	}
	// "u" with two params is u2(phi, lambda) = u3(pi/2, phi, lambda).
	if (id.text == "u" || id.text == "u2") && len(params) == 2 {
		params = append([]float64{math.Pi / 2}, params...)
		kind = gate.KindU3
	}
	g := gate.Gate{Kind: kind, Qubits: qubits, Params: params}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("qasm: line %d: %v", id.line, err)
	}
	c.Append(g)
	return nil
}

// parseExpr evaluates a constant parameter expression with +,-,*,/,^,
// parentheses, pi, and unary minus.
func (p *parser) parseExpr() (float64, error) { return p.parseAddSub() }

func (p *parser) parseAddSub() (float64, error) {
	v, err := p.parseMulDiv()
	if err != nil {
		return 0, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.take()
			rhs, err := p.parseMulDiv()
			if err != nil {
				return 0, err
			}
			if t.text == "+" {
				v += rhs
			} else {
				v -= rhs
			}
			continue
		}
		return v, nil
	}
}

func (p *parser) parseMulDiv() (float64, error) {
	v, err := p.parsePow()
	if err != nil {
		return 0, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.take()
			rhs, err := p.parsePow()
			if err != nil {
				return 0, err
			}
			if t.text == "*" {
				v *= rhs
			} else {
				if rhs == 0 {
					return 0, fmt.Errorf("qasm: line %d: division by zero", t.line)
				}
				v /= rhs
			}
			continue
		}
		return v, nil
	}
}

func (p *parser) parsePow() (float64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	t := p.peek()
	if t.kind == tokSymbol && t.text == "^" {
		p.take()
		rhs, err := p.parsePow() // right-associative
		if err != nil {
			return 0, err
		}
		return math.Pow(v, rhs), nil
	}
	return v, nil
}

func (p *parser) parseUnary() (float64, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "-" {
		p.take()
		v, err := p.parseUnary()
		return -v, err
	}
	if t.kind == tokSymbol && t.text == "+" {
		p.take()
		return p.parseUnary()
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (float64, error) {
	t := p.take()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, fmt.Errorf("qasm: line %d: bad number %q", t.line, t.text)
		}
		return v, nil
	case t.kind == tokIdent && t.text == "pi":
		return math.Pi, nil
	case t.kind == tokSymbol && t.text == "(":
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return 0, err
		}
		return v, nil
	}
	return 0, fmt.Errorf("qasm: line %d: unexpected %q in expression", t.line, t.text)
}
