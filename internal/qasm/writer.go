package qasm

import (
	"fmt"
	"strings"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
)

// kindToQASM maps gate kinds back to QASM mnemonics. KindUnitary has no
// QASM 2.0 representation and is rejected by Serialize.
var kindToQASM = map[gate.Kind]string{
	gate.KindI: "id", gate.KindX: "x", gate.KindY: "y", gate.KindZ: "z",
	gate.KindH: "h", gate.KindS: "s", gate.KindSdg: "sdg",
	gate.KindT: "t", gate.KindTdg: "tdg", gate.KindSX: "sx",
	gate.KindRX: "rx", gate.KindRY: "ry", gate.KindRZ: "rz",
	gate.KindP: "p", gate.KindU3: "u3",
	gate.KindCX: "cx", gate.KindCY: "cy", gate.KindCZ: "cz",
	gate.KindCH: "ch", gate.KindCP: "cp", gate.KindCRZ: "crz",
	gate.KindCRX: "crx", gate.KindCRY: "cry",
	gate.KindSWAP: "swap", gate.KindCCX: "ccx", gate.KindCSWAP: "cswap",
}

// Serialize renders a circuit as OpenQASM 2.0 with a terminal full-register
// measurement. Gates without a QASM representation (explicit unitaries,
// sqrt-Y, sqrt-W) return an error.
func Serialize(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	fmt.Fprintf(&b, "creg c[%d];\n", c.NumQubits)
	for _, g := range c.Gates {
		name, ok := kindToQASM[g.Kind]
		if !ok {
			return "", fmt.Errorf("qasm: gate %s has no QASM 2.0 form", g.Kind)
		}
		b.WriteString(name)
		if len(g.Params) > 0 {
			b.WriteByte('(')
			for i, p := range g.Params {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%.17g", p)
			}
			b.WriteByte(')')
		}
		b.WriteByte(' ')
		for i, q := range g.Qubits {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "q[%d]", q)
		}
		b.WriteString(";\n")
	}
	for q := 0; q < c.NumQubits; q++ {
		fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", q, q)
	}
	return b.String(), nil
}
