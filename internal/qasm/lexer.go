// Package qasm implements a parser and serializer for the OpenQASM 2.0
// subset the benchmark suite uses: qreg/creg declarations, the standard
// gate set (with parameter expressions), barrier and measure statements.
// It lets externally authored circuits (e.g. QASMBench files, which the
// paper draws benchmarks from) run on the simulator, and round-trips the
// suite's own circuits for interchange.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) [ ] { } , ; ->
	tokString
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

// next returns the next token, skipping whitespace and comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case unicode.IsDigit(rune(c)) || c == '.':
		seenE := false
		for l.pos < len(l.src) {
			r := l.src[l.pos]
			if r >= '0' && r <= '9' || r == '.' {
				l.pos++
				continue
			}
			if (r == 'e' || r == 'E') && !seenE {
				seenE = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("qasm: line %d: unterminated string", l.line)
		}
		l.pos++
		return token{kind: tokString, text: l.src[start+1 : l.pos-1], line: l.line}, nil
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{kind: tokSymbol, text: "->", line: l.line}, nil
	case strings.ContainsRune("()[]{},;+-*/^", rune(c)):
		l.pos++
		return token{kind: tokSymbol, text: string(c), line: l.line}, nil
	}
	return token{}, fmt.Errorf("qasm: line %d: unexpected character %q", l.line, c)
}
