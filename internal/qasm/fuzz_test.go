package qasm

import (
	"testing"

	"tqsim/internal/circuit"
	"tqsim/internal/workloads"
)

// fuzzSeeds is the hand-written half of the corpus: valid programs
// covering every statement form, plus malformed fragments that must error
// rather than panic.
var fuzzSeeds = []string{
	// Valid programs.
	"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\n",
	"OPENQASM 2.0;\nqreg q[3];\nu3(pi/2,0,pi) q[0];\ncp(pi/4) q[0],q[2];\nbarrier q;\nid q[1];\n",
	"OPENQASM 2.0;\nqreg a[2];\nqreg b[1];\ncreg c[3];\nccx a[0],a[1],b[0];\nswap a[0],b[0];\nmeasure a[0] -> c[0];\n",
	"OPENQASM 2.0;\nqreg q[1];\nrz(-2.5e-3) q[0];\np(1.0/3.0*pi) q[0];\nu(0.1,0.2) q[0];\nu1(0.3) q[0];\n",
	"// comment\nOPENQASM 2.0;\nqreg q[2];\ncz q[0],q[1];\ncrz(pi^2) q[0],q[1];\n",
	// Malformed fragments: wrong operands, duplicate qubits, bad indices,
	// missing semicolons, truncated expressions, unknown gates.
	"OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n",
	"OPENQASM 2.0;\nqreg q[2];\nh q[5];\n",
	"OPENQASM 2.0;\nqreg q[2];\nh q[0]",
	"OPENQASM 2.0;\nqreg q[0];\n",
	"OPENQASM 2.0;\nqreg q[2];\nrx() q[0];\n",
	"OPENQASM 2.0;\nqreg q[2];\nrx(1+) q[0];\n",
	"OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n",
	"qreg q[2];",
	"OPENQASM 2.0;\nqreg q[99999999999999999999];\n",
	"OPENQASM 2.0;\nqreg q[2];\nmeasure q[0] -> x[0];\n",
	"\"unterminated",
}

// corpusCircuits is the generator half of the corpus: a cross-section of
// the workload suite, so the fuzzer starts from every gate form the
// generators emit.
var corpusCircuits = []string{
	"bv_n6", "qft_n8", "qpe_n4", "adder_n4_0", "qaoa_n6",
}

// FuzzParseQASM asserts two properties on arbitrary input: the parser
// never panics (it returns errors), and accepted programs survive a
// parse -> serialize -> parse round trip with an identical gate stream.
func FuzzParseQASM(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for _, name := range corpusCircuits {
		c := workloads.ByName(name)
		if c == nil {
			f.Fatalf("suite circuit %s missing", name)
		}
		src, err := Serialize(c)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz", src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out, err := Serialize(prog.Circuit)
		if err != nil {
			// The parser only emits kinds from its gate table, all of
			// which have QASM forms.
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		prog2, err := Parse("fuzz-roundtrip", out)
		if err != nil {
			t.Fatalf("serialized output failed to re-parse: %v\n%s", err, out)
		}
		assertSameCircuit(t, prog.Circuit, prog2.Circuit)
	})
}

// TestParseSerializeRoundTripGenerators is the non-fuzz property test over
// the workload generators: parse(serialize(c)) must reproduce c's gate
// stream exactly — the writer emits %.17g, so parameters round-trip to the
// bit — and serialization must be a textual fixed point.
func TestParseSerializeRoundTripGenerators(t *testing.T) {
	names := []string{
		"bv_n6", "bv_n16", "qft_n8", "qft_n14", "qpe_n4", "adder_n4_0",
		"adder_n10_0", "qaoa_n6", "mul_n13",
	}
	circuits := make([]*circuit.Circuit, 0, len(names)+3)
	for _, name := range names {
		c := workloads.ByName(name)
		if c == nil {
			t.Fatalf("suite circuit %s missing", name)
		}
		circuits = append(circuits, c)
	}
	circuits = append(circuits,
		workloads.GHZ(8),
		workloads.Clifford(6, 5, 3),
		workloads.CliffordPrefix(5, 4, 9),
	)
	for _, c := range circuits {
		src, err := Serialize(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		prog, err := Parse(c.Name, src)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", c.Name, err)
		}
		assertSameCircuit(t, c, prog.Circuit)
		src2, err := Serialize(prog.Circuit)
		if err != nil {
			t.Fatalf("%s: re-serialize: %v", c.Name, err)
		}
		if src != src2 {
			t.Fatalf("%s: serialization is not a fixed point", c.Name)
		}
	}
}

// assertSameCircuit requires bit-exact gate streams: kinds, operands, and
// parameters.
func assertSameCircuit(t *testing.T, a, b *circuit.Circuit) {
	t.Helper()
	if a.NumQubits != b.NumQubits {
		t.Fatalf("width changed: %d vs %d", a.NumQubits, b.NumQubits)
	}
	if len(a.Gates) != len(b.Gates) {
		t.Fatalf("gate count changed: %d vs %d", len(a.Gates), len(b.Gates))
	}
	for i := range a.Gates {
		ga, gb := a.Gates[i], b.Gates[i]
		if ga.Kind != gb.Kind {
			t.Fatalf("gate %d kind: %v vs %v", i, ga.Kind, gb.Kind)
		}
		if len(ga.Qubits) != len(gb.Qubits) || len(ga.Params) != len(gb.Params) {
			t.Fatalf("gate %d shape changed: %v vs %v", i, ga, gb)
		}
		for j := range ga.Qubits {
			if ga.Qubits[j] != gb.Qubits[j] {
				t.Fatalf("gate %d operand %d: %d vs %d", i, j, ga.Qubits[j], gb.Qubits[j])
			}
		}
		for j := range ga.Params {
			if ga.Params[j] != gb.Params[j] {
				t.Fatalf("gate %d param %d: %v vs %v", i, j, ga.Params[j], gb.Params[j])
			}
		}
	}
}
