package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop flags discarded errors from stream-emit calls. A dropped
// Encode/Write/Flush error on a response path is the header-emit bug
// class: the server keeps computing batches into a connection that is
// already gone, books the job as completed, and the client sees a
// truncated stream with no error. Two forms are flagged:
//
//   - a bare expression statement (enc.Encode(v), w.Flush()) whose
//     callee's final result is an error — the drop is invisible;
//   - an all-blank assignment of an Encode or Flush result
//     (_ = enc.Encode(v)) — explicit, but stream emits must abort, so
//     even the explicit form needs a handler or a //lint:allow with a
//     reason.
//
// Receivers documented to never fail (hash.Hash, bytes.Buffer,
// strings.Builder) are exempt, as are deferred calls.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "stream-emit errors (Encode/Write/Flush) must be handled or explicitly " +
		"annotated; a silent drop keeps serving into a dead connection",
	Run: runErrDrop,
}

// emitMethods are the names treated as stream emits when the signature's
// final result is an error.
var emitMethods = map[string]bool{
	"Encode": true, "EncodeToken": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Flush": true,
}

// mustHandleMethods must have their error consumed even when the drop is
// explicit: Encode and Flush are the NDJSON stream-emit calls.
var mustHandleMethods = map[string]bool{"Encode": true, "Flush": true}

func runErrDrop(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, isCall := stmt.X.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if recv, name, drop := droppedEmit(pass.Info, call, emitMethods); drop {
					pass.Reportf(stmt.Pos(),
						"%s.%s error silently discarded; handle it (stream emits must abort) or assign it away explicitly",
						types.TypeString(recv, types.RelativeTo(pass.Pkg)), name)
				}
			case *ast.AssignStmt:
				if stmt.Tok != token.ASSIGN || len(stmt.Rhs) != 1 || !allBlank(stmt.Lhs) {
					return true
				}
				call, isCall := stmt.Rhs[0].(*ast.CallExpr)
				if !isCall {
					return true
				}
				if recv, name, drop := droppedEmit(pass.Info, call, mustHandleMethods); drop {
					pass.Reportf(stmt.Pos(),
						"%s.%s error discarded with _; a failed stream emit must abort the response (or carry a //lint:allow errdrop reason)",
						types.TypeString(recv, types.RelativeTo(pass.Pkg)), name)
				}
			}
			return true
		})
	}
	return nil
}

// droppedEmit reports whether the call is a fallible stream emit from the
// given method set on a receiver that can actually fail.
func droppedEmit(info *types.Info, call *ast.CallExpr, methods map[string]bool) (recv types.Type, name string, drop bool) {
	recv, name, sig, isMethod := methodCall(info, call)
	if !isMethod || !methods[name] || !lastResultIsError(sig) {
		return nil, "", false
	}
	if implementsHash(recv) || isInfallibleBuffer(recv) {
		return nil, "", false
	}
	return recv, name, true
}

// isInfallibleBuffer matches in-memory writers whose Write-family methods
// are documented to always return a nil error.
func isInfallibleBuffer(t types.Type) bool {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "bytes" && name == "Buffer") || (pkg == "strings" && name == "Builder")
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, isIdent := e.(*ast.Ident)
		if !isIdent || id.Name != "_" {
			return false
		}
	}
	return true
}
