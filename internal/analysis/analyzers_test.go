package analysis_test

import (
	"testing"

	"tqsim/internal/analysis"
	"tqsim/internal/analysis/analysistest"
)

// Each fixture contains at least one failing case per analyzer —
// including a reproduction of every historical bug shape from CHANGES.md
// (the PR 5 stream-header emit drop, the PR 7 hash-collision map range,
// the PR 5 undrained stalling handler) — plus the compliant shapes the
// analyzer must stay silent on and one //lint:allow escape-hatch case.

func TestDetRandFixture(t *testing.T) {
	analysistest.Run(t, analysis.DetRand, "detrand")
}

func TestDetRandSeedFixture(t *testing.T) {
	analysistest.Run(t, analysis.DetRand, "detrandseed")
}

func TestSeedDeriveFixture(t *testing.T) {
	analysistest.Run(t, analysis.SeedDerive, "seedderive")
}

func TestMapOrderFixture(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder")
}

func TestErrDropFixture(t *testing.T) {
	analysistest.Run(t, analysis.ErrDrop, "errdrop")
}

func TestBodyDrainFixture(t *testing.T) {
	analysistest.Run(t, analysis.BodyDrain, "bodydrain")
}

func TestAtomicMixFixture(t *testing.T) {
	analysistest.Run(t, analysis.AtomicMix, "atomicmix")
}

// TestAnalyzersRegistered pins the suite: all six invariants stay wired
// into the multichecker.
func TestAnalyzersRegistered(t *testing.T) {
	want := []string{"detrand", "seedderive", "maporder", "errdrop", "bodydrain", "atomicmix"}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q must carry a Doc and a Run", a.Name)
		}
	}
}
