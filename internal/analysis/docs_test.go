package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tqsim/internal/analysis"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckGodocFlagsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `package a

// Documented is fine.
func Documented() {}

func Undocumented() {}

func unexported() {}
`)
	diags, err := analysis.CheckGodoc(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "Undocumented") || diags[0].Analyzer != "godoc" {
		t.Fatalf("wrong finding: %v", diags[0])
	}
}

func TestCheckLinksFlagsBrokenRelativeLinks(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "real.md", "# target\n")
	writeFile(t, dir, "doc.md",
		"[ok](real.md) [external](https://example.com) [anchor](#x)\n[broken](missing.md)\n")
	diags, err := analysis.CheckLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "links" || d.Pos.Line != 2 || !strings.Contains(d.Message, "missing.md") {
		t.Fatalf("wrong finding: %v", d)
	}
}
