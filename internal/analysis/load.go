package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: a directory's package
// (including its in-package _test.go files) or, separately, the
// directory's external foo_test package.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// ImportPath is the module-relative import path of the unit; the
	// external test unit carries a "_test" suffix.
	ImportPath string
	// Fset is the file set shared by every unit of one Loader.
	Fset *token.FileSet
	// Files are the parsed sources of this unit, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the unit's type facts.
	Info *types.Info
}

// Loader parses and type-checks package units using only the standard
// library: imports (both standard-library and module-internal) resolve
// through go/importer's source importer, so loading works offline with no
// compiled export data and no third-party dependency.
type Loader struct {
	// Fset is shared across every unit the loader produces.
	Fset *token.FileSet
	// TypeErrors collects non-fatal type-checking problems; analyzers
	// still run on partially checked units, so one broken file degrades
	// rather than disables the sweep.
	TypeErrors []error

	imp types.Importer
}

// NewLoader constructs a loader. Cgo is disabled on the default build
// context so packages with pure-Go fallbacks (net, os/user) type-check
// from source everywhere.
func NewLoader() *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir loads the package units in one directory: the package itself
// (with in-package test files) and, when present, the external _test
// package. Directories with no Go files return no units and no error.
func (l *Loader) LoadDir(dir, importPath string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", filepath.Join(dir, e.Name()), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// Split into check units by package clause: in-package files (and
	// their _test.go siblings) check together; an external foo_test
	// package is its own unit.
	byName := map[string][]*ast.File{}
	var names []string
	for _, f := range files {
		name := f.Name.Name
		if _, seen := byName[name]; !seen {
			names = append(names, name)
		}
		byName[name] = append(byName[name], f)
	}
	sort.Strings(names)
	var pkgs []*Package
	for _, name := range names {
		unit := byName[name]
		path := importPath
		if strings.HasSuffix(name, "_test") {
			path += "_test"
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: l.imp,
			Error:    func(err error) { l.TypeErrors = append(l.TypeErrors, err) },
		}
		pkg, _ := conf.Check(path, l.Fset, unit, info)
		pkgs = append(pkgs, &Package{
			Dir:        dir,
			ImportPath: path,
			Fset:       l.Fset,
			Files:      unit,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// LoadTree loads every package unit under root, skipping .git, testdata
// and hidden directories. importPrefix is the module path mapped to root.
func (l *Loader) LoadTree(root, importPrefix string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := importPrefix
		if rel != "." {
			importPath = importPrefix + "/" + filepath.ToSlash(rel)
		}
		units, err := l.LoadDir(path, importPath)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, units...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// ModuleRoot walks upward from dir to the directory containing go.mod and
// returns it with the declared module path.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
