package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// This file carries the repository's documentation contracts, folded in
// from cmd/repolint so `make lint` is the one CI lint gate: CheckGodoc
// (every exported symbol has a doc comment) and CheckLinks (every
// relative markdown link resolves). Both return findings in the same
// Diagnostic shape as the analyzers; cmd/repolint remains a thin alias
// over these functions.

// CheckGodoc reports every exported top-level symbol in the package
// directory that lacks a doc comment. Grouped const/var/type declarations
// count as documented when the group has a doc comment.
func CheckGodoc(dir string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	report := func(pos token.Pos, kind, name string) {
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "godoc",
			Message:  fmt.Sprintf("exported %s %s has no doc comment", kind, name),
		})
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Doc != nil {
						continue // group comment covers every spec
					}
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
								report(sp.Pos(), "type", sp.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								if name.IsExported() && sp.Doc == nil && sp.Comment == nil {
									report(name.Pos(), "value", name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return diags, nil
}

// exportedRecv reports whether a function is package-level or a method on
// an exported receiver type — unexported receivers keep their methods out
// of godoc, so they are exempt.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// CheckLinks walks the tree for markdown files and verifies every
// relative link target exists. External schemes and pure anchors are
// skipped; fragments are stripped before the existence check.
func CheckLinks(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") ||
					strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					diags = append(diags, Diagnostic{
						Pos:      token.Position{Filename: path, Line: i + 1},
						Analyzer: "links",
						Message:  fmt.Sprintf("broken link %q (%s does not exist)", m[1], resolved),
					})
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return diags, nil
}
