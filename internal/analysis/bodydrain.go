package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// BodyDrain flags HTTP handlers that return without consuming the
// request body. net/http only detects a client disconnect — and cancels
// the request context — once the body has been read, so a handler that
// stalls or replies without touching r.Body silently breaks context
// cancellation and connection reuse. This is the lease-timeout footgun:
// a test worker that parked on r.Context().Done() without draining first
// could never observe the coordinator hanging up.
//
// The check applies to the serve and faultinject packages and to every
// _test.go file (where stub workers live). A handler passes when it
// references r.Body (decode, drain, close), or hands the request on to
// another function (delegation is assumed to consume it). Handlers that
// ignore the request entirely — including a blank _ parameter — are
// flagged; genuinely body-less endpoints can annotate with
// //lint:allow bodydrain.
var BodyDrain = &Analyzer{
	Name: "bodydrain",
	Doc: "HTTP handlers must drain r.Body (or delegate the request) before returning; " +
		"an unread body suppresses client-disconnect context cancellation",
	Run: runBodyDrain,
}

func runBodyDrain(pass *Pass) error {
	pkgScoped := map[string]bool{"serve": true, "faultinject": true}[basePkgName(pass.Pkg.Name())]
	for _, file := range pass.Files {
		inScope := pkgScoped ||
			strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		if !inScope {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			reqIdent, isHandler := handlerRequestParam(pass.Info, ftype)
			if !isHandler {
				return true
			}
			if reqIdent.Name == "_" {
				pass.Reportf(ftype.Pos(),
					"handler ignores *http.Request; name it and drain r.Body (io.Copy(io.Discard, r.Body)) before returning")
				return true
			}
			obj := pass.Info.Defs[reqIdent]
			if obj == nil {
				return true
			}
			if !consumesRequest(pass.Info, body, obj) {
				pass.Reportf(ftype.Pos(),
					"handler returns without draining %s.Body; drain it or pass the request on", reqIdent.Name)
			}
			return true
		})
	}
	return nil
}

// handlerRequestParam matches the (http.ResponseWriter, *http.Request)
// signature and returns the request parameter's identifier.
func handlerRequestParam(info *types.Info, ftype *ast.FuncType) (*ast.Ident, bool) {
	params := ftype.Params
	if params == nil {
		return nil, false
	}
	var idents []*ast.Ident
	var typs []types.Type
	for _, field := range params.List {
		tv, found := info.Types[field.Type]
		if !found {
			return nil, false
		}
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{ast.NewIdent("_")}
		}
		for _, name := range names {
			idents = append(idents, name)
			typs = append(typs, tv.Type)
		}
	}
	if len(typs) != 2 {
		return nil, false
	}
	if !isNamedType(typs[0], "net/http", "ResponseWriter") {
		return nil, false
	}
	ptr, isPtr := typs[1].(*types.Pointer)
	if !isPtr || !isNamedType(ptr.Elem(), "net/http", "Request") {
		return nil, false
	}
	return idents[1], true
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// consumesRequest reports whether the handler body references the request
// object's Body or passes the request value onward as a call argument.
func consumesRequest(info *types.Info, body *ast.BlockStmt, req types.Object) bool {
	consumed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if consumed {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "Body" && exprIsObject(info, x.X, req) {
				consumed = true
				return false
			}
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if exprIsObject(info, arg, req) {
					consumed = true
					return false
				}
			}
		}
		return true
	})
	return consumed
}

// exprIsObject reports whether e denotes exactly the given object,
// looking through parentheses and unary &.
func exprIsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.Ident:
			return info.Uses[x] == obj
		default:
			return false
		}
	}
}
