// Package analysis implements tqsimlint: a suite of project-specific
// static analyzers that mechanize the determinism and serve-layer
// invariants this reproduction's correctness guarantees rest on.
//
// Every guarantee the conformance suites make — byte-identical histograms
// across backends, worker counts, cache replays and fault injection —
// depends on conventions that were previously enforced by hand and had
// each already been violated once: seeds must derive through rng.SeedAt,
// map iteration must not feed order-sensitive sinks, stream-emit errors
// must abort, HTTP handlers must drain request bodies, and atomically
// accessed fields must never see plain loads or stores. Each analyzer in
// this package encodes one of those invariants; cmd/tqsimlint runs them
// all over the repository as the single `make lint` CI gate.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Reportf, analysistest-style fixtures) but is built entirely on the
// standard library's go/ast and go/types so the module keeps zero
// third-party dependencies and lints offline. Intentional exceptions are
// annotated in source with an auditable escape hatch:
//
//	//lint:allow <analyzer> -- reason
//
// placed on the flagged line or the line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package unit through its Pass and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint:allow comments.
	Name string
	// Doc is the one-paragraph invariant statement shown by -list.
	Doc string
	// Run executes the analyzer over one package unit.
	Run func(*Pass) error
}

// Pass carries one type-checked package unit (a package, or the external
// _test package of a directory) through an analyzer run.
type Pass struct {
	// Analyzer is the check this pass executes.
	Analyzer *Analyzer
	// Fset maps AST positions back to file coordinates.
	Fset *token.FileSet
	// Files are the parsed source files of the unit, comments included.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the unit's type-checking facts (Types, Defs, Uses,
	// Selections).
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, in the repolint file:pos convention.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the check that produced it.
	Analyzer string
	// Message states the violated invariant and the fix direction.
	Message string
}

// String renders the finding as "file:line:col: [analyzer] message" so
// editors and CI annotations can jump to it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full tqsimlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRand,
		SeedDerive,
		MapOrder,
		ErrDrop,
		BodyDrain,
		AtomicMix,
	}
}

// allowRe matches the escape-hatch comment: //lint:allow name1,name2
// optionally followed by "-- reason".
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_,-]+)`)

// allowedLines collects, per file line, the set of analyzer names a
// //lint:allow comment suppresses. An allow comment suppresses findings
// on its own line and on the line directly below it (so it can sit on the
// flagged statement or stand alone above it).
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					out[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = map[string]bool{}
					byLine[pos.Line] = set
				}
				for _, name := range strings.Split(m[1], ",") {
					set[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return out
}

// Run executes every analyzer over every package unit and returns the
// surviving findings sorted by position. //lint:allow-suppressed findings
// are dropped here so every front end shares the escape hatch.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := allowedLines(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		diags = suppress(diags, allow)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppress filters out findings covered by a //lint:allow comment on the
// finding's line or the line above it.
func suppress(diags []Diagnostic, allow map[string]map[int]map[string]bool) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		byLine := allow[d.Pos.Filename]
		if byLine != nil &&
			(byLine[d.Pos.Line][d.Analyzer] || byLine[d.Pos.Line-1][d.Analyzer]) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// ---- shared type predicates ----

var (
	writerIface *types.Interface
	hashIface   *types.Interface
)

func init() {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	intT := types.Typ[types.Int]
	errT := types.Universe.Lookup("error").Type()
	sig := func(params, results []types.Type) *types.Signature {
		tuple := func(ts []types.Type) *types.Tuple {
			vars := make([]*types.Var, len(ts))
			for i, t := range ts {
				vars[i] = types.NewVar(token.NoPos, nil, "", t)
			}
			return types.NewTuple(vars...)
		}
		return types.NewSignatureType(nil, nil, nil, tuple(params), tuple(results), false)
	}
	write := types.NewFunc(token.NoPos, nil, "Write", sig([]types.Type{byteSlice}, []types.Type{intT, errT}))
	writerIface = types.NewInterfaceType([]*types.Func{write}, nil)
	writerIface.Complete()
	// hash.Hash, reconstructed structurally so analyzers can exempt
	// hash writes (documented to never return an error) without
	// importing the package under analysis.
	hashIface = types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig([]types.Type{byteSlice}, []types.Type{intT, errT})),
		types.NewFunc(token.NoPos, nil, "Sum", sig([]types.Type{byteSlice}, []types.Type{byteSlice})),
		types.NewFunc(token.NoPos, nil, "Reset", sig(nil, nil)),
		types.NewFunc(token.NoPos, nil, "Size", sig(nil, []types.Type{intT})),
		types.NewFunc(token.NoPos, nil, "BlockSize", sig(nil, []types.Type{intT})),
	}, nil)
	hashIface.Complete()
}

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, writerIface) || types.Implements(types.NewPointer(t), writerIface)
}

// implementsHash reports whether t (or *t) satisfies hash.Hash.
func implementsHash(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, hashIface) || types.Implements(types.NewPointer(t), hashIface)
}

// methodCall decomposes a call expression into its receiver type, method
// name and signature. ok is false for non-method calls (package functions,
// conversions, builtins).
func methodCall(info *types.Info, call *ast.CallExpr) (recv types.Type, name string, sigT *types.Signature, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", nil, false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, "", nil, false
	}
	fn, isFunc := selection.Obj().(*types.Func)
	if !isFunc {
		return nil, "", nil, false
	}
	return selection.Recv(), fn.Name(), fn.Type().(*types.Signature), true
}

// lastResultIsError reports whether the signature's final result is the
// built-in error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res == nil || res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// pkgFunc resolves a call to a package-level function and returns its
// package path and name ("fmt", "Fprintf"); ok is false otherwise.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, found := info.Uses[sel.Sel]
	if !found {
		return "", "", false
	}
	fn, isFunc := obj.(*types.Func)
	if !isFunc || fn.Pkg() == nil {
		return "", "", false
	}
	if _, isMethod := info.Selections[sel]; isMethod {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// basePkgName strips the external-test suffix: "serve_test" → "serve".
func basePkgName(name string) string {
	return strings.TrimSuffix(name, "_test")
}
