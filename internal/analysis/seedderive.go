package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeedDerive enforces the one shared seed-derivation rule: child seeds
// come from rng.SeedAt(seed, index), never from arithmetic on the seed
// value. Ad-hoc derivations (seed+i, seed^0xabc, seed*7919) were how
// batch seeds and sweep seeds diverged before rng.SeedAt became
// canonical: two layers deriving "the seed for unit i" differently makes
// the same request produce different histograms depending on which layer
// ran it. internal/rng itself is exempt — it implements the derivation.
var SeedDerive = &Analyzer{
	Name: "seedderive",
	Doc: "derived seeds must flow through rng.SeedAt(seed, index); " +
		"arithmetic on a seed value (seed+i, seed^const) forks the stream ad hoc",
	Run: runSeedDerive,
}

// seedArithOps are the operators that constitute an ad-hoc derivation
// when applied to a seed. Comparisons are fine.
var seedArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.XOR: true, token.OR: true, token.AND: true,
	token.AND_NOT: true, token.SHL: true, token.SHR: true,
}

// seedAssignOps are the compound-assignment forms of seedArithOps.
var seedAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true, token.XOR_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.AND_NOT_ASSIGN: true,
	token.SHL_ASSIGN: true, token.SHR_ASSIGN: true,
}

const seedDeriveFix = "derive child seeds with rng.SeedAt(seed, index) instead"

func runSeedDerive(pass *Pass) error {
	if basePkgName(pass.Pkg.Name()) == "rng" {
		return nil // the package that implements the derivation
	}
	for _, file := range pass.Files {
		// A for-loop post statement over a seed variable enumerates
		// distinct base seeds (for seed := 1; seed <= 8; seed++) — that is
		// iteration, not child-stream derivation. ast.Inspect visits the
		// ForStmt before its children, so the set fills in time.
		forPosts := map[ast.Stmt]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			if f, isFor := n.(*ast.ForStmt); isFor && f.Post != nil {
				forPosts[f.Post] = true
			}
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if !seedArithOps[x.Op] || !isIntExpr(pass.Info, x) {
					return true
				}
				if seedOperand(x.X) || seedOperand(x.Y) {
					pass.Reportf(x.Pos(), "arithmetic on a seed (%s); %s", x.Op, seedDeriveFix)
				}
			case *ast.AssignStmt:
				if !seedAssignOps[x.Tok] || len(x.Lhs) != 1 || forPosts[x] {
					return true
				}
				if seedOperand(x.Lhs[0]) && isIntExpr(pass.Info, x.Lhs[0]) {
					pass.Reportf(x.Pos(), "in-place arithmetic on a seed (%s); %s", x.Tok, seedDeriveFix)
				}
			case *ast.IncDecStmt:
				if !forPosts[x] && seedOperand(x.X) && isIntExpr(pass.Info, x.X) {
					pass.Reportf(x.Pos(), "in-place arithmetic on a seed (%s); %s", x.Tok, seedDeriveFix)
				}
			}
			return true
		})
	}
	return nil
}

// seedOperand reports whether the expression denotes a seed value: an
// identifier, selector or index expression whose name mentions "seed",
// looked at through parentheses and type conversions.
func seedOperand(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			// A single-argument call is unwrapped as a potential
			// conversion (uint64(seed)); anything else breaks the chain.
			if len(x.Args) != 1 {
				return false
			}
			if id, isIdent := x.Fun.(*ast.Ident); isIdent && id.Name == "len" {
				return false // len(seeds) is a count, not a seed
			}
			e = x.Args[0]
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return strings.Contains(strings.ToLower(x.Name), "seed")
		case *ast.SelectorExpr:
			return strings.Contains(strings.ToLower(x.Sel.Name), "seed")
		default:
			return false
		}
	}
}

// isIntExpr reports whether the expression type-checks to an integer:
// seed streams are integers, so float and string arithmetic never counts.
func isIntExpr(info *types.Info, e ast.Expr) bool {
	tv, found := info.Types[e]
	if !found || tv.Type == nil {
		return false
	}
	basic, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && basic.Info()&types.IsInteger != 0
}
