package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` loops over maps whose body feeds an
// order-sensitive sink: a hash or io.Writer, a stream encoder, fmt
// output, or a non-commutative accumulator (string concatenation,
// floating-point summation). Go randomizes map iteration order per run,
// so such a loop produces different bytes on every execution — the exact
// shape of the circuitHash collision class, where digest input order
// must be canonical for content-addressed replay to be sound. Writing
// into another map, counting, or integer summation is commutative and is
// not flagged; the idiomatic fix is to collect and sort the keys first.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "a range over a map must not write into a hash, stream encoder or other " +
		"order-sensitive sink; map iteration order is randomized per run",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, isRange := n.(*ast.RangeStmt)
			if !isRange {
				return true
			}
			tv, found := pass.Info.Types[rs.X]
			if !found || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink, what := findOrderSink(pass.Info, rs.Body, rangeKeyObject(pass.Info, rs)); sink != nil {
				pass.Reportf(rs.Pos(),
					"range over a map %s (line %d); iteration order is randomized — sort the keys first",
					what, pass.Fset.Position(sink.Pos()).Line)
			}
			return true
		})
	}
	return nil
}

// findOrderSink scans a range body for the first order-sensitive write
// and describes it. Nested function literals are included: they run (or
// capture state) per iteration.
func findOrderSink(info *types.Info, body *ast.BlockStmt, keyObj types.Object) (sink ast.Node, what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if recv, name, _, isMethod := methodCall(info, x); isMethod {
				switch name {
				case "Write", "WriteString", "WriteByte", "WriteRune", "Sum":
					if implementsWriter(recv) || implementsHash(recv) {
						sink, what = x, "writes into a hash/io.Writer"
						return false
					}
				case "Encode", "EncodeToken":
					sink, what = x, "encodes onto a stream"
					return false
				}
				return true
			}
			if path, name, isPkgFn := pkgFunc(info, x); isPkgFn && path == "fmt" &&
				(name == "Fprint" || name == "Fprintf" || name == "Fprintln") {
				sink, what = x, "prints to a writer"
				return false
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isOrderSensitiveAccum(info, x.Lhs[0]) {
				// Accumulating into a slot selected by the range key
				// (p[k] += v) touches a distinct cell per iteration — the
				// result is a set of independent sums, order-insensitive.
				if ix, isIndex := x.Lhs[0].(*ast.IndexExpr); isIndex &&
					keyObj != nil && exprUsesObject(info, ix.Index, keyObj) {
					return true
				}
				sink, what = x, "accumulates into an order-sensitive value (string/float +=)"
				return false
			}
		}
		return true
	})
	return sink, what
}

// rangeKeyObject resolves the object bound to the range statement's key
// variable, or nil when the key is blank or absent.
func rangeKeyObject(info *types.Info, rs *ast.RangeStmt) types.Object {
	id, isIdent := rs.Key.(*ast.Ident)
	if !isIdent || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj // for k := range m
	}
	return info.Uses[id] // for k = range m
}

// exprUsesObject reports whether any identifier inside e resolves to obj.
func exprUsesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, isIdent := n.(*ast.Ident); isIdent && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isOrderSensitiveAccum reports whether += on this operand depends on
// iteration order: string concatenation always, floating-point summation
// because rounding is not associative. Integer summation is commutative
// and exact, so it is exempt.
func isOrderSensitiveAccum(info *types.Info, e ast.Expr) bool {
	tv, found := info.Types[e]
	if !found || tv.Type == nil {
		return false
	}
	basic, isBasic := tv.Type.Underlying().(*types.Basic)
	if !isBasic {
		return false
	}
	return basic.Info()&(types.IsString|types.IsFloat|types.IsComplex) != 0
}
