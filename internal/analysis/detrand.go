package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// simPackages names the packages whose every random draw must be
// reproducible: a simulation result is a pure function of (circuit, noise,
// seed), so these packages may only consume randomness through
// internal/rng streams.
var simPackages = map[string]bool{
	"statevec":   true,
	"core":       true,
	"noise":      true,
	"stabilizer": true,
	"sweep":      true,
	"trajectory": true,
	"densmat":    true,
	"fusion":     true,
	"cluster":    true,
}

// DetRand forbids nondeterministic randomness sources on simulation
// paths: math/rand (global state, process-lifetime seeding) anywhere in a
// simulation package, and wall-clock-derived seeds anywhere in the repo.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand in simulation packages and time-derived seeds anywhere: " +
		"every draw must come from a deterministic internal/rng stream keyed by the job seed",
	Run: runDetRand,
}

func runDetRand(pass *Pass) error {
	sim := simPackages[basePkgName(pass.Pkg.Name())]
	for _, file := range pass.Files {
		if sim {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(),
						"%s is banned in simulation packages; draw from internal/rng streams keyed by the job seed", path)
				}
			}
		}
		walkWithParents(file, func(n ast.Node, parents []ast.Node) {
			call, isCall := n.(*ast.CallExpr)
			if !isCall || !isTimeNowUnix(pass.Info, call) {
				return
			}
			switch {
			case sim:
				pass.Reportf(call.Pos(),
					"wall-clock value in a simulation package; results must be a pure function of (circuit, noise, seed)")
			case usedAsSeed(pass.Info, parents):
				pass.Reportf(call.Pos(),
					"time-derived seed; seeds must be explicit inputs so runs can be replayed byte-identically")
			}
		})
	}
	return nil
}

// isTimeNowUnix matches time.Now().UnixNano() / time.Now().Unix() /
// time.Now().UnixMicro() / time.Now().UnixMilli().
func isTimeNowUnix(info *types.Info, call *ast.CallExpr) bool {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || !strings.HasPrefix(sel.Sel.Name, "Unix") {
		return false
	}
	inner, isCall := sel.X.(*ast.CallExpr)
	if !isCall {
		return false
	}
	innerSel, isSel := inner.Fun.(*ast.SelectorExpr)
	if !isSel || innerSel.Sel.Name != "Now" {
		return false
	}
	obj, found := info.Uses[innerSel.Sel]
	if !found {
		return false
	}
	fn, isFunc := obj.(*types.Func)
	return isFunc && fn.Pkg() != nil && fn.Pkg().Path() == "time"
}

// usedAsSeed reports whether the expression whose parent chain is given
// flows into a seed: converted to uint64, passed to a callee whose name
// mentions "seed", or assigned to a seed-named variable or field.
func usedAsSeed(info *types.Info, parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			// A conversion to uint64 (the repo's seed type) or a call to a
			// seed-shaped function.
			if tv, found := info.Types[p.Fun]; found && tv.IsType() {
				if basic, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && basic.Kind() == types.Uint64 {
					return true
				}
				continue
			}
			if name := calleeName(p); strings.Contains(strings.ToLower(name), "seed") {
				return true
			}
			return false
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if nameContainsSeed(lhs) {
					return true
				}
			}
			return false
		case *ast.KeyValueExpr:
			return nameContainsSeed(p.Key)
		case *ast.BinaryExpr, *ast.UnaryExpr:
			continue
		default:
			return false
		}
	}
	return false
}

// calleeName returns the called function's short name, "" if unresolvable.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// nameContainsSeed reports whether an identifier or selector is
// seed-named.
func nameContainsSeed(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(x.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(x.Sel.Name), "seed")
	}
	return false
}

// walkWithParents traverses the AST keeping the chain of enclosing nodes;
// parents[len-1] is the immediate parent of n.
func walkWithParents(root ast.Node, fn func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
