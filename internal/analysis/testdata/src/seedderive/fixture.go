// Fixture for the seedderive analyzer: derived seeds must flow through
// rng.SeedAt. Ad-hoc arithmetic (seed+i, seed^const) is how batch and
// sweep seed derivations diverged before SeedAt became canonical.
package fixture

import "tqsim/internal/rng"

type opts struct {
	Seed uint64
	seed uint64
}

// badOffsets reproduces the pre-SeedAt derivations.
func badOffsets(seed uint64, i int) []uint64 {
	out := []uint64{
		seed + uint64(i),       // want `arithmetic on a seed`
		seed ^ 0xc11f,          // want `arithmetic on a seed`
		seed * 7919,            // want `arithmetic on a seed`
		1 + seed,               // want `arithmetic on a seed`
		uint64(int(seed) + 42), // want `arithmetic on a seed`
	}
	return out
}

// badFieldArith derives from seed-named fields and elements.
func badFieldArith(o opts, seeds []uint64, i int) uint64 {
	a := o.Seed + 7     // want `arithmetic on a seed`
	b := o.seed ^ 0xf16 // want `arithmetic on a seed`
	c := seeds[i] + 1   // want `arithmetic on a seed`
	return a + b + c
}

// badInPlace mutates a seed in place.
func badInPlace(o *opts) {
	o.Seed++        // want `in-place arithmetic on a seed`
	o.Seed += 3     // want `in-place arithmetic on a seed`
	o.seed ^= 0xabc // want `in-place arithmetic on a seed`
}

// goodSeedAt is the canonical derivation: every child stream is keyed by
// (base seed, index) through the one shared rule.
func goodSeedAt(seed uint64, i int) uint64 {
	return rng.SeedAt(seed, uint64(i))
}

// goodIndexArith does arithmetic on the index, not the seed — SeedAt
// consumes indices, so offsetting them is fine.
func goodIndexArith(seed uint64, i int) uint64 {
	return rng.SeedAt(seed, 1000+uint64(i))
}

// goodEnumeration iterates distinct base seeds: a for-loop post statement
// is enumeration, not child-stream derivation.
func goodEnumeration() uint64 {
	var acc uint64
	for seed := uint64(1); seed <= 8; seed++ {
		acc ^= rng.SeedAt(seed, 0)
	}
	for seed := uint64(0); seed < 64; seed += 7 {
		acc ^= rng.SeedAt(seed, 0)
	}
	return acc
}

// goodComparisons compares seeds without deriving from them.
func goodComparisons(seed uint64, seeds []uint64) bool {
	return seed == 0 || len(seeds) > 1
}

// allowedArith shows the escape hatch for a justified exception.
func allowedArith(seed uint64) uint64 {
	return seed + 1 //lint:allow seedderive -- fixture: proves the escape hatch
}
