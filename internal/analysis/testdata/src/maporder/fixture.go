// Fixture for the maporder analyzer: a range over a map must never feed
// an order-sensitive sink, because Go randomizes map iteration order per
// run. badDigest reproduces the circuitHash bug class: hashing map
// entries in iteration order makes the same logical content produce a
// different digest on every run, which breaks content-addressed replay.
package fixture

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// badDigest is the historical hash-collision shape: map entries written
// into a digest in random iteration order.
func badDigest(counts map[uint64]int) [32]byte {
	h := sha256.New()
	for k, v := range counts { // want `range over a map writes into a hash`
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], k)
		binary.LittleEndian.PutUint64(buf[8:], uint64(v))
		h.Write(buf[:])
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// badStream emits one NDJSON line per map entry: the wire order changes
// every run.
func badStream(w io.Writer, points map[string]float64) {
	enc := json.NewEncoder(w)
	for name, v := range points { // want `range over a map encodes onto a stream`
		_ = enc.Encode(map[string]any{"name": name, "v": v})
	}
}

// badPrint writes formatted entries straight to a writer.
func badPrint(w io.Writer, m map[string]int) {
	for k, v := range m { // want `range over a map prints to a writer`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// badAccumulate concatenates strings and sums floats: neither is
// commutative, so the result depends on iteration order.
func badAccumulate(m map[string]float64) (string, float64) {
	var keys string
	var total float64
	for k := range m { // want `order-sensitive value`
		keys += k
	}
	for _, v := range m { // want `order-sensitive value`
		total += v
	}
	return keys, total
}

// goodSortedDigest is the idiomatic fix: collect, sort, then hash.
func goodSortedDigest(counts map[uint64]int) [32]byte {
	keys := make([]uint64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := sha256.New()
	for _, k := range keys {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], k)
		binary.LittleEndian.PutUint64(buf[8:], uint64(counts[k]))
		h.Write(buf[:])
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// goodCommutative sums integers and rebuilds maps: both are
// order-insensitive.
func goodCommutative(m map[string]int) (int, map[string]int) {
	total := 0
	out := make(map[string]int, len(m))
	for k, v := range m {
		total += v
		out[k] = v
	}
	return total, out
}

// goodPerSlot accumulates into a distinct slot per key: each iteration
// touches its own cell, so the result is order-insensitive even though
// the element type is float.
func goodPerSlot(counts map[int]int, inv float64) []float64 {
	p := make([]float64, 8)
	for k, c := range counts {
		if k < len(p) {
			p[k] += float64(c) * inv
		}
	}
	return p
}

// allowedStream shows the escape hatch for a sink that is genuinely
// order-insensitive downstream.
func allowedStream(w io.Writer, m map[string]int) {
	//lint:allow maporder -- fixture: proves the escape hatch
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
