// Fixture for the bodydrain analyzer. The package is named serve so the
// check applies to non-test files. badStallingLease reproduces the PR 5
// lease-timeout footgun: a handler that parks on the request context
// without consuming the body never observes the client hanging up,
// because net/http only cancels r.Context() once the body is read.
package serve

import (
	"encoding/json"
	"io"
	"net/http"
)

// badStallingLease is the historical stalled-worker shape: waits for
// cancellation that can never arrive.
func badStallingLease(w http.ResponseWriter, r *http.Request) { // want `returns without draining`
	<-r.Context().Done()
	w.WriteHeader(http.StatusServiceUnavailable)
}

// badIgnoresRequest replies without ever consuming the request.
func badIgnoresRequest(w http.ResponseWriter, _ *http.Request) { // want `handler ignores \*http.Request`
	w.WriteHeader(http.StatusOK)
}

// badOnlyURL routes on the URL but leaves the body unread.
func badOnlyURL(w http.ResponseWriter, r *http.Request) { // want `returns without draining`
	if r.URL.Path == "/v1/thing" {
		w.WriteHeader(http.StatusOK)
		return
	}
	w.WriteHeader(http.StatusNotFound)
}

// badLiteral flags handler literals too.
var badLiteral = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { // want `returns without draining`
	w.WriteHeader(http.StatusTeapot)
})

// goodDrains consumes the body explicitly before stalling.
func goodDrains(w http.ResponseWriter, r *http.Request) {
	_, _ = io.Copy(io.Discard, r.Body)
	<-r.Context().Done()
	w.WriteHeader(http.StatusServiceUnavailable)
}

// goodDecodes consumes the body by decoding it.
func goodDecodes(w http.ResponseWriter, r *http.Request) {
	var v struct{}
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// goodDelegates hands the request on; the delegate owns the drain.
type goodDelegates struct{ inner http.Handler }

// ServeHTTP forwards every request to the wrapped handler.
func (g *goodDelegates) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.inner.ServeHTTP(w, r)
}

// allowedNoBody shows the escape hatch for a genuinely body-less
// endpoint.
//
//lint:allow bodydrain -- fixture: proves the escape hatch
func allowedNoBody(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
}
