// Fixture for the atomicmix analyzer: a field accessed through
// sync/atomic anywhere in the package must never also see plain loads or
// stores — that is a data race the race detector only catches when a
// test happens to interleave it. Histogram buckets and membership
// counters are the repo's risk surface for this shape.
package fixture

import "sync/atomic"

type hist struct {
	count   uint64
	dropped uint64
	name    string
}

// record is the hot path: atomic increments.
func record(h *hist) {
	atomic.AddUint64(&h.count, 1)
}

// badSnapshot reads the atomically written counter with a plain load.
func badSnapshot(h *hist) uint64 {
	return h.count // want `plain access to count`
}

// badReset stores over the atomically written counter plainly.
func badReset(h *hist) {
	h.count = 0 // want `plain access to count`
}

// goodSnapshot routes every access through sync/atomic.
func goodSnapshot(h *hist) uint64 {
	return atomic.LoadUint64(&h.count)
}

// goodPlainField never touches the counter family: plain access to a
// plain field is fine.
func goodPlainField(h *hist) string {
	h.dropped = 0 // dropped is never accessed atomically
	return h.name
}

// goodInit builds an unpublished value: composite-literal initialization
// is exempt.
func goodInit() *hist {
	return &hist{count: 0, name: "fresh"}
}

// allowedPrePublish shows the escape hatch for deliberate
// pre-publication initialization.
func allowedPrePublish() *hist {
	h := new(hist)
	h.count = 1 //lint:allow atomicmix -- fixture: proves the escape hatch
	return h
}
