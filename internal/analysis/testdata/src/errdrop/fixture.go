// Fixture for the errdrop analyzer: discarded stream-emit errors.
// badStreamHeader reproduces the PR 5 runStreaming bug shape — the NDJSON
// plan-header emit error was dropped, so a client that disconnected
// before the first byte still had every batch computed into a dead
// connection.
package fixture

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"io"
	"strings"
)

type header struct {
	Batches int
}

// badStreamHeader drops the header-emit error and keeps going: the
// historical header-emit bug.
func badStreamHeader(w io.Writer, batches []int) {
	enc := json.NewEncoder(w)
	enc.Encode(&header{Batches: len(batches)}) // want `error silently discarded`
	for range batches {
		_ = enc.Encode(struct{}{}) // want `error discarded with _`
	}
}

// badFlush drops a buffered-writer flush error: bytes written so far may
// never reach the underlying stream.
func badFlush(bw *bufio.Writer) {
	bw.Flush() // want `error silently discarded`
}

// badWrite drops a write result entirely.
func badWrite(w io.Writer, b []byte) {
	w.Write(b) // want `error silently discarded`
}

// goodStreamHeader is the post-fix shape: a failed header emit aborts
// before any batch runs.
func goodStreamHeader(w io.Writer, batches []int) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(&header{Batches: len(batches)}); err != nil {
		return err
	}
	for range batches {
		if err := enc.Encode(struct{}{}); err != nil {
			return err
		}
	}
	return nil
}

// goodExplicitWrite may discard a write result visibly: unlike Encode and
// Flush, a deliberate `_, _ =` on Write is legal because the drop is in
// the reader's face.
func goodExplicitWrite(w io.Writer, b []byte) {
	_, _ = w.Write(b)
}

// goodInfallible writes to receivers documented never to fail: hashes and
// in-memory buffers.
func goodInfallible(buf *bytes.Buffer, sb *strings.Builder, b []byte) {
	h := sha256.New()
	h.Write(b)
	buf.Write(b)
	sb.WriteString("x")
}

// goodDeferredFlush defers the flush: deferred emits are a terminal
// best-effort by construction.
func goodDeferredFlush(bw *bufio.Writer) {
	defer bw.Flush()
}

// allowedEncode shows the escape hatch for a terminal response write
// where nothing can be done about a failure.
func allowedEncode(w io.Writer, v any) {
	_ = json.NewEncoder(w).Encode(v) //lint:allow errdrop -- fixture: proves the escape hatch
}
