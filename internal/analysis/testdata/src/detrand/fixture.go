// Fixture for the detrand analyzer. The package is named statevec so it
// counts as a simulation package: math/rand and wall-clock values are
// banned outright here, and time-derived seeds are banned everywhere.
package statevec

import (
	"math/rand" // want `math/rand is banned in simulation packages`
	"time"
)

// badGlobalRand draws from the process-global generator: irreproducible.
func badGlobalRand() int {
	return rand.Int()
}

// badWallClockSeed seeds from the clock inside a simulation package.
func badWallClockSeed() uint64 {
	return uint64(time.Now().UnixNano()) // want `wall-clock value in a simulation package`
}

// goodExplicitSeed threads a caller-provided seed: reproducible.
func goodExplicitSeed(seed uint64) uint64 {
	return seed
}

// goodProfiling measures elapsed wall time without touching any seed:
// timing instrumentation stays legal in simulation packages.
func goodProfiling() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// allowedWallClock shows the auditable escape hatch.
func allowedWallClock() uint64 {
	//lint:allow detrand -- fixture: proves the escape hatch suppresses
	return uint64(time.Now().UnixNano())
}
