// Fixture for detrand's repo-wide rule: outside simulation packages the
// clock is fine for timing, but never as a seed — a time-derived seed
// makes the run impossible to replay.
package loadtool

import "time"

type options struct {
	Seed uint64
}

// badSeedFromClock converts the clock into the repo's uint64 seed type.
func badSeedFromClock() uint64 {
	return uint64(time.Now().UnixNano()) // want `time-derived seed`
}

// badSeedField assigns the clock to a seed-named field.
func badSeedField(o *options) {
	o.Seed = uint64(time.Now().UnixNano()) // want `time-derived seed`
}

// goodElapsed uses the clock for what it is for.
func goodElapsed() int64 {
	start := time.Now()
	return time.Since(start).Nanoseconds()
}

// goodTimestamp records a non-seed timestamp; Unix values that do not
// flow into seeds are legal outside simulation packages.
func goodTimestamp() (ts int64) {
	ts = time.Now().Unix()
	return ts
}
