// Package analysistest runs tqsimlint analyzers over fixture packages and
// checks their findings against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// A fixture is a directory under testdata/src/<name> holding one package.
// Every line that must produce a finding carries a comment of the form
//
//	code() // want "regexp"
//
// where the quoted pattern must match the diagnostic's message (backquoted
// strings work too). The harness fails the test when a finding has no
// matching want on its line, or a want goes unmatched — so each fixture
// proves both that the analyzer fires on the bug shape and that it stays
// silent on the compliant shapes around it.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"tqsim/internal/analysis"
)

// loader is shared across the test binary: the source importer caches
// type-checked dependencies (net/http, encoding/json, ...) so only the
// first fixture pays the stdlib type-checking cost.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
)

func sharedLoader() *analysis.Loader {
	loaderOnce.Do(func() { loader = analysis.NewLoader() })
	return loader
}

// wantRe matches one expectation: want "pattern" or want `pattern`.
var wantRe = regexp.MustCompile("want (?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one // want pattern awaiting a finding.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> relative to the current package
// directory, executes the analyzer, and diffs findings against the
// fixture's // want annotations.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	l := sharedLoader()
	pkgs, err := l.LoadDir(dir, "tqsimlint/fixture/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s contains no Go files", fixture)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
	}
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatalf("parsing want annotations: %v", err)
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want annotations; every fixture must prove at least one failing case", fixture)
	}
	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("%s: unexpected finding: %s", fixture, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected finding matching %q, got none",
				fixture, w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation on the finding's line whose
// pattern matches the message.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if w.matched || w.line != line || w.file != file {
			continue
		}
		if w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants scans every fixture file for // want annotations.
func parseWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				text := m[1]
				if text == "" {
					text = m[2]
				}
				pat, err := regexp.Compile(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", path, i+1, text, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, pattern: pat})
			}
		}
	}
	return wants, nil
}
