package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix flags struct fields (and package-level variables) that are
// accessed both through sync/atomic calls and through plain loads or
// stores in the same package. A plain read of a field that is atomically
// written elsewhere is a data race the race detector only catches when
// the interleaving happens in a test run; the linter catches the pattern
// unconditionally. Latency-histogram buckets and fleet-membership
// counters are exactly this risk surface: hot-path increments are
// atomic, and a "harmless" plain read in a snapshot or merge path
// reintroduces the race. The fix is to route every access through
// sync/atomic (or the typed atomic.Uint64 family, which makes mixing
// impossible); deliberate pre-publication initialization can carry
// //lint:allow atomicmix. Composite-literal initialization is exempt —
// the value is unpublished while being built.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed via sync/atomic must never also be accessed with plain " +
		"loads/stores; route every access through atomics",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: every &x.f (or &v) handed to a sync/atomic function marks
	// the object atomic and its node sanctioned.
	atomicObjs := map[types.Object]bool{}
	sanctioned := map[ast.Node]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall || !isAtomicCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				unary, isUnary := arg.(*ast.UnaryExpr)
				if !isUnary {
					continue
				}
				if obj := addressedObject(pass.Info, unary.X); obj != nil {
					atomicObjs[obj] = true
					sanctioned[unary.X] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}
	// Pass 2: any other access to those objects is a plain (racy) access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sanctioned[n] {
				return false // the &x.f argument of the atomic call itself
			}
			if lit, isLit := n.(*ast.CompositeLit); isLit {
				for _, elt := range lit.Elts {
					if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
						sanctioned[kv.Key] = true // initialization before publication
					}
				}
				return true
			}
			switch x := n.(type) {
			case *ast.SelectorExpr:
				obj := pass.Info.Uses[x.Sel]
				if obj != nil && atomicObjs[obj] && !sanctioned[x] {
					pass.Reportf(x.Pos(),
						"plain access to %s, which is accessed atomically elsewhere in this package; use sync/atomic for every access",
						x.Sel.Name)
					return false
				}
			case *ast.Ident:
				obj := pass.Info.Uses[x]
				if obj != nil && atomicObjs[obj] && !sanctioned[x] {
					pass.Reportf(x.Pos(),
						"plain access to %s, which is accessed atomically elsewhere in this package; use sync/atomic for every access",
						x.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether the call resolves to a sync/atomic
// package-level function (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	path, name, isPkgFn := pkgFunc(info, call)
	if !isPkgFn || path != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addressedObject resolves &expr to the field or variable object being
// addressed: a struct field selection or a plain identifier.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, isSel := info.Selections[x]; isSel && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.Ident:
		if obj, isVar := info.Uses[x].(*types.Var); isVar {
			return obj
		}
	}
	return nil
}
