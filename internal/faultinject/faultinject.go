// Package faultinject provides seeded, deterministic fault plans for
// exercising the serve layer's failure paths: delayed responses, dropped
// connections, 5xx bursts, workers killed mid-lease (work executed,
// response lost), and silently corrupted shard payloads.
//
// A Plan is a seed plus an ordered list of Rules. Each rule owns an
// independent RNG stream derived from the plan seed, and its fire/skip
// decision for the k-th matching request is the k-th draw from that stream
// — so the fault schedule is a pure function of (plan, per-rule match
// ordinal), reproducible across runs regardless of wall-clock timing. The
// chaos suite leans on this: for any seeded plan, the serve layer must
// reassemble results byte-identical to the fault-free run.
//
// Faults inject at two seams, matching the two places real failures occur:
//
//   - Injector.RoundTripper wraps an http.RoundTripper (the coordinator's
//     client transport, via serve.Config.Transport): delays, requests
//     dropped before reaching the worker, synthesized 5xx answers,
//     responses discarded after the worker did the work, and corrupted
//     response bodies.
//   - Injector.Middleware wraps an http.Handler (a worker): delays, aborted
//     connections, 5xx answers (optionally with Retry-After), handlers run
//     to completion with the response then thrown away (kill-mid-lease),
//     and corrupted response bodies.
//
// The package is a test harness, not a test file, so integration suites in
// other packages (and future chaos tooling) can share it.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tqsim/internal/rng"
)

// Kind names a fault class.
type Kind string

// The fault classes a Rule can inject.
const (
	// Delay sleeps Rule.Delay before forwarding the request.
	Delay Kind = "delay"
	// Drop fails the call without reaching the handler: the client sees a
	// transport error, the server never saw the request.
	Drop Kind = "drop"
	// Err5xx answers Rule.Status (default 500) without doing the work.
	Err5xx Kind = "5xx"
	// KillMidLease runs the real handler — the work happens — then throws
	// the response away and aborts: the acknowledgment is lost, so the
	// caller must requeue without double-counting.
	KillMidLease Kind = "kill-mid-lease"
	// Corrupt runs the real handler and flips one digit in the JSON
	// response body, keeping it syntactically valid: only a checksum can
	// tell.
	Corrupt Kind = "corrupt"
)

// Rule is one fault source inside a Plan.
type Rule struct {
	// Kind selects the fault class.
	Kind Kind
	// Path restricts the rule to one URL path (e.g. "/v1/shard");
	// empty matches every request.
	Path string
	// Probability is the chance a matching request fires the rule,
	// decided by the rule's seeded stream (1 = always).
	Probability float64
	// After skips the first After matching requests before the rule may
	// fire — "dies after its first lease" is After: 1.
	After int
	// Count caps how many times the rule fires (0 = unlimited).
	Count int
	// Delay is the injected latency for Kind Delay.
	Delay time.Duration
	// Status is the answer for Kind Err5xx (default 500).
	Status int
	// RetryAfter, for Err5xx answers, adds a Retry-After header with this
	// many whole seconds.
	RetryAfter time.Duration
}

// Plan is a complete, reproducible fault schedule.
type Plan struct {
	// Seed derives every rule's decision stream.
	Seed uint64
	// Rules fire independently; the first rule that fires on a request
	// wins (at most one fault per request).
	Rules []Rule
}

// Injector evaluates a Plan against live traffic. Construct with New; one
// Injector holds the mutable match/fire counters, so wrap every seam of
// one simulated component with the same Injector.
type Injector struct {
	plan Plan

	mu      sync.Mutex
	streams []*rng.RNG
	seen    []int
	fired   []int
}

// New returns an Injector for the plan. Each rule's stream is derived as
// rng.SeedAt(plan.Seed, rule index), so rules decide independently and the
// whole schedule replays from the seed.
func New(plan Plan) *Injector {
	in := &Injector{
		plan:    plan,
		streams: make([]*rng.RNG, len(plan.Rules)),
		seen:    make([]int, len(plan.Rules)),
		fired:   make([]int, len(plan.Rules)),
	}
	for i := range plan.Rules {
		in.streams[i] = rng.New(rng.SeedAt(plan.Seed, uint64(i)))
	}
	return in
}

// Fired returns how many times each rule has fired, in rule order.
func (in *Injector) Fired() []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]int(nil), in.fired...)
}

// FiredTotal returns the total fault count across all rules.
func (in *Injector) FiredTotal() int {
	n := 0
	for _, k := range in.Fired() {
		n += k
	}
	return n
}

// decide returns the first rule firing for this request path, or nil.
// Every matching rule's stream advances exactly once per matching request
// whether or not it fires, keeping the schedule an index-pure function.
func (in *Injector) decide(path string) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	var hit *Rule
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		if r.Path != "" && r.Path != path {
			continue
		}
		ordinal := in.seen[i]
		in.seen[i]++
		roll := in.streams[i].Float64()
		if hit != nil {
			continue // stream advanced; an earlier rule already claimed the request
		}
		if ordinal < r.After || (r.Count > 0 && in.fired[i] >= r.Count) {
			continue
		}
		if roll < r.Probability {
			in.fired[i]++
			hit = r
		}
	}
	return hit
}

// errDropped is the transport error surfaced for Drop and KillMidLease
// faults on the client seam.
type errDropped struct{ kind Kind }

func (e *errDropped) Error() string { return fmt.Sprintf("faultinject: connection %s", e.kind) }

type roundTripper struct {
	in   *Injector
	next http.RoundTripper
}

// RoundTripper wraps a client transport with the plan. Pass the result as
// serve.Config.Transport to put the plan between a coordinator and its
// workers. next nil means http.DefaultTransport.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &roundTripper{in: in, next: next}
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	r := rt.in.decide(req.URL.Path)
	if r == nil {
		return rt.next.RoundTrip(req)
	}
	switch r.Kind {
	case Delay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(r.Delay):
		}
		return rt.next.RoundTrip(req)
	case Drop:
		// The request never reaches the server: close the body (the
		// contract when RoundTrip errors) and fail.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &errDropped{kind: Drop}
	case Err5xx:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		resp := &http.Response{
			StatusCode: statusOr500(r.Status),
			Status:     http.StatusText(statusOr500(r.Status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(bytes.NewReader([]byte("injected fault"))),
			Request: req,
		}
		setRetryAfter(resp.Header, r)
		return resp, nil
	case KillMidLease:
		// The server does the work; the response is lost on the way back.
		resp, err := rt.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &errDropped{kind: KillMidLease}
	case Corrupt:
		resp, err := rt.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		body = CorruptJSON(body)
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return rt.next.RoundTrip(req)
}

// Middleware wraps a server handler with the plan — the worker-side seam.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := in.decide(req.URL.Path)
		if r == nil {
			next.ServeHTTP(w, req)
			return
		}
		switch r.Kind {
		case Delay:
			select {
			case <-req.Context().Done():
				return
			case <-time.After(r.Delay):
			}
			next.ServeHTTP(w, req)
		case Drop:
			// Abort the connection without a response; net/http recovers
			// ErrAbortHandler quietly and the client sees a transport error.
			panic(http.ErrAbortHandler)
		case Err5xx:
			setRetryAfter(w.Header(), r)
			http.Error(w, "injected fault", statusOr500(r.Status))
		case KillMidLease:
			rec := &bufferedResponse{header: make(http.Header)}
			next.ServeHTTP(rec, req)    // the work happens...
			panic(http.ErrAbortHandler) // ...the acknowledgment is lost
		case Corrupt:
			rec := &bufferedResponse{header: make(http.Header)}
			next.ServeHTTP(rec, req)
			body := CorruptJSON(rec.body.Bytes())
			for k, v := range rec.header {
				if k == "Content-Length" {
					continue
				}
				w.Header()[k] = v
			}
			w.WriteHeader(rec.statusOr200())
			_, _ = w.Write(body)
		default:
			next.ServeHTTP(w, req)
		}
	})
}

func statusOr500(status int) int {
	if status == 0 {
		return http.StatusInternalServerError
	}
	return status
}

func setRetryAfter(h http.Header, r *Rule) {
	if r.RetryAfter > 0 {
		secs := int(r.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		h.Set("Retry-After", strconv.Itoa(secs))
	}
}

// bufferedResponse captures a handler's output so a fault can discard or
// mutate it before anything reaches the wire.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) {
	if b.status == 0 {
		b.status = status
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.WriteHeader(http.StatusOK)
	return b.body.Write(p)
}

func (b *bufferedResponse) statusOr200() int {
	if b.status == 0 {
		return http.StatusOK
	}
	return b.status
}

// CorruptJSON flips one decimal digit of a JSON document, preferring the
// payload section after a "batches" key (the shard protocol's data), and
// keeps the document syntactically valid — the corruption only a checksum
// catches. Documents with no digits are returned unchanged.
func CorruptJSON(body []byte) []byte {
	out := append([]byte(nil), body...)
	start := 0
	if i := bytes.Index(out, []byte(`"batches"`)); i >= 0 {
		start = i
	}
	for i := start; i < len(out); i++ {
		if out[i] >= '0' && out[i] <= '9' {
			if out[i] == '9' {
				out[i] = '8'
			} else {
				out[i]++
			}
			return out
		}
	}
	return out
}
