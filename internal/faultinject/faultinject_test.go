package faultinject

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// replay records which of n simulated requests a plan fires on.
func replay(p Plan, path string, n int) []string {
	in := New(p)
	out := make([]string, n)
	for i := 0; i < n; i++ {
		if r := in.decide(path); r != nil {
			out[i] = string(r.Kind)
		}
	}
	return out
}

func TestPlanScheduleIsDeterministicInSeed(t *testing.T) {
	p := Plan{Seed: 42, Rules: []Rule{
		{Kind: Err5xx, Path: "/v1/shard", Probability: 0.4},
		{Kind: Corrupt, Path: "/v1/shard", Probability: 0.3, After: 2},
	}}
	a := replay(p, "/v1/shard", 64)
	b := replay(p, "/v1/shard", 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan, different schedules:\n%v\n%v", a, b)
	}
	fired := 0
	for _, k := range a {
		if k != "" {
			fired++
		}
	}
	if fired == 0 || fired == 64 {
		t.Fatalf("probability 0.4 fired %d/64 times", fired)
	}

	p2 := p
	p2.Seed = 43
	if reflect.DeepEqual(a, replay(p2, "/v1/shard", 64)) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

func TestAfterAndCountBoundFiring(t *testing.T) {
	p := Plan{Seed: 1, Rules: []Rule{
		{Kind: Drop, Probability: 1, After: 3, Count: 2},
	}}
	got := replay(p, "/x", 10)
	want := []string{"", "", "", "drop", "drop", "", "", "", "", ""}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("After/Count schedule wrong: %v", got)
	}
	if total := New(p).FiredTotal(); total != 0 {
		t.Fatalf("fresh injector reports %d fired", total)
	}
}

func TestPathFilterAndFirstRuleWins(t *testing.T) {
	p := Plan{Seed: 9, Rules: []Rule{
		{Kind: Err5xx, Path: "/a", Probability: 1},
		{Kind: Drop, Path: "", Probability: 1},
	}}
	in := New(p)
	if r := in.decide("/a"); r == nil || r.Kind != Err5xx {
		t.Fatalf("first matching rule did not win: %+v", r)
	}
	if r := in.decide("/b"); r == nil || r.Kind != Drop {
		t.Fatalf("path filter leaked: %+v", r)
	}
	if fired := in.Fired(); fired[0] != 1 || fired[1] != 1 {
		t.Fatalf("fired counters wrong: %v", fired)
	}
}

// echoHandler answers a small JSON document resembling a shard response.
func echoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"backend":"statevec","batches":[{"batch":3,"counts":{"5":17}}]}`)
	})
}

func TestMiddlewareErr5xxAndRetryAfter(t *testing.T) {
	in := New(Plan{Seed: 1, Rules: []Rule{
		{Kind: Err5xx, Probability: 1, Status: 503, RetryAfter: 7 * time.Second, Count: 1},
	}})
	ts := httptest.NewServer(in.Middleware(echoHandler()))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("injected 503 wrong: %d %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Count: 1 exhausted — the next request passes through untouched.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"batch":3`) {
		t.Fatalf("pass-through wrong: %d %s", resp.StatusCode, body)
	}
}

func TestMiddlewareDropAbortsConnection(t *testing.T) {
	in := New(Plan{Seed: 1, Rules: []Rule{{Kind: Drop, Probability: 1}}})
	ts := httptest.NewServer(in.Middleware(echoHandler()))
	defer ts.Close()
	if _, err := http.Get(ts.URL); err == nil {
		t.Fatal("dropped connection produced a response")
	}
}

func TestMiddlewareKillMidLeaseRunsHandlerThenAborts(t *testing.T) {
	var ran atomic.Int32
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		ran.Add(1)
		io.WriteString(w, "done")
	})
	in := New(Plan{Seed: 1, Rules: []Rule{{Kind: KillMidLease, Probability: 1, Count: 1}}})
	ts := httptest.NewServer(in.Middleware(inner))
	defer ts.Close()
	if _, err := http.Get(ts.URL); err == nil {
		t.Fatal("kill-mid-lease produced a response")
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("handler ran %d times; the work must happen before the response is lost", got)
	}
}

func TestCorruptKeepsJSONValidButChangesContent(t *testing.T) {
	in := New(Plan{Seed: 1, Rules: []Rule{{Kind: Corrupt, Probability: 1}}})
	ts := httptest.NewServer(in.Middleware(echoHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v map[string]any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("corrupted body no longer parses: %v\n%s", err, body)
	}
	if strings.Contains(string(body), `"batch":3`) {
		t.Fatalf("corruption did not change the payload: %s", body)
	}
}

func TestRoundTripperDropAndErr5xx(t *testing.T) {
	ts := httptest.NewServer(echoHandler())
	defer ts.Close()

	in := New(Plan{Seed: 5, Rules: []Rule{
		{Kind: Drop, Probability: 1, Count: 1},
		{Kind: Err5xx, Probability: 1, Status: 503, RetryAfter: time.Second, Count: 1},
	}})
	hc := &http.Client{Transport: in.RoundTripper(nil)}

	if _, err := hc.Get(ts.URL); err == nil {
		t.Fatal("dropped request produced a response")
	}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("synthesized 503 wrong: %d %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = hc.Get(ts.URL) // rules exhausted: passes through
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pass-through status %d", resp.StatusCode)
	}
}

func TestCorruptJSONTargetsBatchesSection(t *testing.T) {
	doc := []byte(`{"v2":"x","batches":[{"batch":10}]}`)
	got := CorruptJSON(doc)
	if string(got) == string(doc) {
		t.Fatal("no corruption applied")
	}
	// The digit inside "v2" (before the batches key) must be untouched.
	if !strings.Contains(string(got), `"v2"`) {
		t.Fatalf("corruption hit bytes before the batches payload: %s", got)
	}
	if !json.Valid(got) {
		t.Fatalf("corrupted doc invalid: %s", got)
	}
	// Digit-free documents pass through unchanged.
	if out := CorruptJSON([]byte(`{"a":"b"}`)); string(out) != `{"a":"b"}` {
		t.Fatalf("digit-free doc mutated: %s", out)
	}
}
