// Package rng provides a small, fast, deterministic and splittable
// pseudo-random number generator used throughout the simulator.
//
// Reproducibility is a first-class requirement for a Monte Carlo trajectory
// simulator: a seed plus a circuit must always reproduce the same set of
// noisy trajectories, independent of goroutine scheduling. The generator is
// xoshiro256** seeded through SplitMix64, following the reference
// constructions by Blackman and Vigna. Each logical stream (a shot, a tree
// node, a cluster node) derives its own child generator via Split, so
// parallel work never contends on a shared source and never depends on
// execution order.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// instances with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances the SplitMix64 state and returns the next value.
// It is used only for seeding, as recommended by the xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the stream identified by seed.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	// xoshiro must not start from the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent child generator. The child stream is keyed by
// the parent stream so that sibling splits are decorrelated; the parent
// advances exactly once.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// SplitAt derives a child generator keyed by both the parent stream and a
// caller-supplied index. Unlike Split, it does not advance the parent, so
// children can be created in any order (or in parallel) with identical
// results. Useful for per-shot and per-node streams.
func (r *RNG) SplitAt(index uint64) *RNG {
	// Hash the current state with the index through SplitMix64.
	sm := r.s0 ^ rotl(r.s2, 13) ^ (index * 0xd1342543de82ef95)
	return New(splitMix64(&sm))
}

// SeedAt derives the seed of sub-stream `index` of a base seed. Index 0
// returns the base seed unchanged, so a unit (a batch, a sweep point) at
// index 0 reproduces the single-run stream exactly; later indices select
// statistically independent streams, deterministically. This is the one
// shared derivation rule for "run i of a family keyed by one seed" —
// tqsimd's batch seeds and the sweep engine's point seeds both use it, so a
// sweep point and the equivalent standalone run always agree.
func SeedAt(seed uint64, index uint64) uint64 {
	if index == 0 {
		return seed
	}
	return New(seed).SplitAt(index).Uint64()
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		threshold := -uint64(n) % uint64(n)
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method. Used for Haar-random unitary generation.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice samples an index from the (not necessarily normalized) weight
// vector w. It panics when all weights are zero or negative.
func (r *RNG) Choice(w []float64) int {
	var total float64
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		panic("rng: Choice with non-positive total weight")
	}
	target := r.Float64() * total
	var acc float64
	for i, x := range w {
		if x <= 0 {
			continue
		}
		acc += x
		if target < acc {
			return i
		}
	}
	// Numerical slack: return the last positive-weight index.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return len(w) - 1
}
