package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds collided %d/100 times", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Reseed(7)
	if got := r.Uint64(); got != first {
		t.Fatalf("reseed did not restore stream: %d != %d", got, first)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v deviates from 0.1", b, frac)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(13)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling splits collided %d/100 times", same)
	}
}

func TestSplitAtOrderIndependent(t *testing.T) {
	a := New(21)
	b := New(21)
	// Derive children in different orders; same index must give the same
	// stream.
	a3 := a.SplitAt(3)
	a1 := a.SplitAt(1)
	b1 := b.SplitAt(1)
	b3 := b.SplitAt(3)
	for i := 0; i < 50; i++ {
		if a3.Uint64() != b3.Uint64() || a1.Uint64() != b1.Uint64() {
			t.Fatal("SplitAt streams depend on derivation order")
		}
	}
}

func TestSplitAtDistinctIndices(t *testing.T) {
	p := New(33)
	c0, c1 := p.SplitAt(0), p.SplitAt(1)
	if c0.Uint64() == c1.Uint64() {
		t.Fatal("adjacent SplitAt indices produced identical first values")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%20) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceWeights(t *testing.T) {
	r := New(19)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("weight-1 index frequency %v deviates from 0.25", frac0)
	}
}

func TestChoicePanicsOnZeroMass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice with zero mass did not panic")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

// TestSeedAt pins the shared sub-stream derivation: index 0 is the base
// seed itself (a family's unit 0 reproduces the standalone run), later
// indices are the SplitAt-derived streams, deterministically.
func TestSeedAt(t *testing.T) {
	if got := SeedAt(42, 0); got != 42 {
		t.Fatalf("SeedAt(42,0) = %d, want the base seed", got)
	}
	want := New(42).SplitAt(7).Uint64()
	if got := SeedAt(42, 7); got != want {
		t.Fatalf("SeedAt(42,7) = %d, want %d", got, want)
	}
	if SeedAt(42, 1) == SeedAt(42, 2) || SeedAt(42, 1) == 42 {
		t.Fatal("derived seeds must be distinct from each other and the base")
	}
	if SeedAt(42, 3) != SeedAt(42, 3) {
		t.Fatal("derivation must be deterministic")
	}
}
