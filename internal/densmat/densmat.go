// Package densmat implements the density-matrix simulator used as the exact
// reference for noisy simulation (paper §2.3, Figure 15). The density matrix
// of an n-qubit system is stored as a flattened 2^n x 2^n complex matrix and
// evolves under unitaries as rho -> U rho U† and under channels as
// rho -> sum_i K_i rho K_i†.
//
// Implementation note: the row-major flattening of rho is exactly a 2n-qubit
// state vector (column bits are qubits 0..n-1, row bits are qubits n..2n-1),
// so all operator applications reuse the tuned kernels of internal/statevec:
// left-multiplication by U touches row qubits with U, right-multiplication
// by U† touches column qubits with conj(U). The O(4^n) memory growth this
// package exhibits is itself one of the paper's observations (Figure 4).
package densmat

import (
	"fmt"
	"math/cmplx"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/noise"
	"tqsim/internal/qmath"
	"tqsim/internal/statevec"
)

// MaxQubits bounds the register so the 4^n allocation stays sane.
const MaxQubits = 12

// Density is an n-qubit mixed state.
type Density struct {
	n int
	// vec holds the flattened density matrix as a 2n-qubit state vector.
	vec *statevec.State
}

// NewZero returns the pure |0...0><0...0| density matrix.
func NewZero(n int) *Density {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("densmat: unsupported qubit count %d", n))
	}
	return &Density{n: n, vec: statevec.NewZero(2 * n)}
}

// FromPure builds the rank-one density matrix |psi><psi|.
func FromPure(s *statevec.State) *Density {
	n := s.NumQubits()
	if n > MaxQubits {
		panic("densmat: state too wide")
	}
	d := NewZero(n)
	dim := 1 << uint(n)
	sr, si := s.Components()
	dr, di := d.vec.Components()
	for r := 0; r < dim; r++ {
		ar, ai := sr[r], si[r]
		row := r * dim
		for c := 0; c < dim; c++ {
			// amps[r] * conj(amps[c]), expanded term by term.
			br, bi := sr[c], -si[c]
			dr[row+c] = ar*br - ai*bi
			di[row+c] = ar*bi + ai*br
		}
	}
	return d
}

// NumQubits returns n.
func (d *Density) NumQubits() int { return d.n }

// Dim returns 2^n.
func (d *Density) Dim() int { return 1 << uint(d.n) }

// Bytes returns the memory footprint of the density matrix.
func (d *Density) Bytes() int { return d.vec.Bytes() }

// At returns the matrix element rho[r][c].
func (d *Density) At(r, c int) complex128 {
	return d.vec.Amplitude(uint64(r)<<uint(d.n) | uint64(c))
}

// Trace returns tr(rho); 1 for a valid density matrix.
func (d *Density) Trace() complex128 {
	var t complex128
	dim := d.Dim()
	for i := 0; i < dim; i++ {
		t += d.At(i, i)
	}
	return t
}

// Purity returns tr(rho^2); 1 for pure states, 1/2^n for maximally mixed.
func (d *Density) Purity() float64 {
	// tr(rho^2) = sum_{rc} rho[r][c] * rho[c][r] = sum |rho[r][c]|^2 for
	// Hermitian rho.
	var p float64
	re, im := d.vec.Components()
	for i := range re {
		p += re[i]*re[i] + im[i]*im[i]
	}
	return p
}

// Clone deep-copies the density matrix.
func (d *Density) Clone() *Density {
	return &Density{n: d.n, vec: d.vec.Clone()}
}

// applyLeft applies matrix m to the row-index qubits listed in qs.
func (d *Density) applyLeft(qs []int, m qmath.Matrix) {
	shifted := make([]int, len(qs))
	for i, q := range qs {
		shifted[i] = q + d.n
	}
	d.applyOn(shifted, m)
}

// applyRight applies conj(m) to the column-index qubits (realizing
// right-multiplication by m†).
func (d *Density) applyRight(qs []int, m qmath.Matrix) {
	conj := qmath.NewMatrix(m.N)
	for i, v := range m.Data {
		conj.Data[i] = cmplx.Conj(v)
	}
	d.applyOn(qs, conj)
}

func (d *Density) applyOn(qs []int, m qmath.Matrix) {
	switch len(qs) {
	case 1:
		d.vec.Apply1Q(qs[0], m)
	case 2:
		d.vec.Apply2Q(qs[0], qs[1], m)
	case 3:
		d.vec.Apply3Q(qs[0], qs[1], qs[2], m)
	default:
		panic("densmat: unsupported operator arity")
	}
}

// ApplyUnitary evolves rho -> U rho U† for the gate instance.
func (d *Density) ApplyUnitary(g gate.Gate) {
	m := g.Matrix()
	d.applyLeft(g.Qubits, m)
	d.applyRight(g.Qubits, m)
}

// ApplyKraus evolves rho -> sum_i K_i rho K_i† on the given qubits.
func (d *Density) ApplyKraus(kraus []qmath.Matrix, qubits []int) {
	if len(kraus) == 0 {
		return
	}
	if len(kraus) == 1 {
		d.applyLeft(qubits, kraus[0])
		d.applyRight(qubits, kraus[0])
		return
	}
	orig := d.vec.Clone()
	accum := statevec.NewZero(2 * d.n)
	accum.ZeroAmplitudes()
	for _, k := range kraus {
		d.vec.CopyFrom(orig)
		d.applyLeft(qubits, k)
		d.applyRight(qubits, k)
		accum.AddFrom(d.vec)
	}
	d.vec.CopyFrom(accum)
}

// ApplyChannel applies a noise channel on the given qubits.
func (d *Density) ApplyChannel(ch noise.Channel, qubits []int) {
	d.ApplyKraus(ch.Kraus(), qubits)
}

// applyModelAfterGate applies a noise model's channels following gate g.
func (d *Density) applyModelAfterGate(m *noise.Model, g gate.Gate) {
	if m == nil {
		return
	}
	switch g.Arity() {
	case 1:
		for _, c := range m.OneQubit {
			d.ApplyChannel(c, g.Qubits)
		}
	case 2:
		for _, c := range m.TwoQubit {
			d.ApplyChannel(c, g.Qubits)
		}
	default:
		for _, c := range m.TwoQubit {
			d.ApplyChannel(c, g.Qubits[:2])
		}
		for _, c := range m.OneQubit {
			d.ApplyChannel(c, g.Qubits[2:3])
		}
	}
}

// Run evolves the density matrix through the whole circuit under the model.
func (d *Density) Run(c *circuit.Circuit, m *noise.Model) {
	if c.NumQubits != d.n {
		panic("densmat: circuit width mismatch")
	}
	for _, g := range c.Gates {
		d.ApplyUnitary(g)
		d.applyModelAfterGate(m, g)
	}
}

// Probabilities returns the measurement distribution diag(rho), with the
// model's readout error (if any) folded in as a classical confusion map.
func (d *Density) Probabilities(m *noise.Model) []float64 {
	dim := d.Dim()
	p := make([]float64, dim)
	for i := 0; i < dim; i++ {
		p[i] = real(d.At(i, i))
	}
	if m == nil || m.Readout == nil {
		return p
	}
	// Apply the per-qubit confusion matrix [[1-p01, p10], [p01, 1-p10]]
	// one bit at a time (tensor structure keeps this O(n * 2^n)).
	ro := m.Readout
	for q := 0; q < d.n; q++ {
		mask := 1 << uint(q)
		for i := 0; i < dim; i++ {
			if i&mask != 0 {
				continue
			}
			j := i | mask
			p0, p1 := p[i], p[j]
			p[i] = p0*(1-ro.P01) + p1*ro.P10
			p[j] = p0*ro.P01 + p1*(1-ro.P10)
		}
	}
	return p
}

// Simulate runs a fresh density-matrix simulation of circuit c under model
// m and returns the outcome distribution.
func Simulate(c *circuit.Circuit, m *noise.Model) []float64 {
	d := NewZero(c.NumQubits)
	d.Run(c, m)
	return d.Probabilities(m)
}
