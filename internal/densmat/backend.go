// Whole-circuit entry point for the exact density-matrix engine. densmat
// does not plug into the tree executor's gate-apply interface — it evolves
// a mixed state for the whole circuit at once, averaging over every noise
// realization analytically — so the facade registers it as an external
// engine and routes "densmat" runs through RunCounts. (The registration
// lives in the facade: internal/observable consumes this package, so
// importing internal/core from here would cycle.)
package densmat

import (
	"fmt"

	"tqsim/internal/circuit"
	"tqsim/internal/noise"
	"tqsim/internal/rng"
)

// RunCounts computes the exact noisy outcome distribution and draws
// `outcomes` seed-deterministic samples from it. Unlike the trajectory
// engines, the distribution itself carries no sampling error and the
// histogram is trivially independent of any parallelism setting.
func RunCounts(c *circuit.Circuit, m *noise.Model, outcomes int, seed uint64) (map[uint64]int, error) {
	if c.NumQubits > MaxQubits {
		return nil, fmt.Errorf("densmat: %d qubits exceeds the %d-qubit density-matrix limit",
			c.NumQubits, MaxQubits)
	}
	probs := Simulate(c, m)
	cum := make([]float64, len(probs))
	var acc float64
	for i, p := range probs {
		acc += p
		cum[i] = acc
	}
	r := rng.New(rng.SeedAt(seed, 0xdea5ed))
	counts := make(map[uint64]int)
	for i := 0; i < outcomes; i++ {
		target := r.Float64() * acc
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		counts[uint64(lo)]++
	}
	return counts, nil
}
