package densmat

import (
	"math"
	"math/cmplx"
	"testing"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/noise"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

func TestZeroStateProperties(t *testing.T) {
	d := NewZero(3)
	if tr := d.Trace(); cmplx.Abs(tr-1) > 1e-12 {
		t.Fatalf("trace %v", tr)
	}
	if p := d.Purity(); math.Abs(p-1) > 1e-12 {
		t.Fatalf("purity %v", p)
	}
	if d.At(0, 0) != 1 {
		t.Fatal("rho[0][0] != 1")
	}
}

func TestPureEvolutionMatchesStatevec(t *testing.T) {
	c := circuit.New("mix", 4).
		H(0).CX(0, 1).T(1).RZ(0.7, 2).CZ(1, 2).
		U3(0.3, 0.1, -0.4, 3).SWAP(0, 3).CCX(0, 1, 2)
	// State-vector reference.
	sv := statevec.NewZero(4)
	sv.ApplyAll(c.Gates)
	svProbs := sv.Probabilities()
	// Density-matrix evolution with no noise.
	dm := Simulate(c, nil)
	for i := range svProbs {
		if math.Abs(svProbs[i]-dm[i]) > 1e-10 {
			t.Fatalf("probability mismatch at %d: %v vs %v", i, svProbs[i], dm[i])
		}
	}
}

func TestFromPure(t *testing.T) {
	sv := statevec.NewZero(2)
	sv.Apply(gate.New(gate.KindH, 0))
	sv.Apply(gate.New(gate.KindCX, 0, 1))
	d := FromPure(sv)
	if p := d.Purity(); math.Abs(p-1) > 1e-12 {
		t.Fatalf("pure state purity %v", p)
	}
	if v := real(d.At(0, 0)); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("rho[0][0] = %v", v)
	}
	if v := real(d.At(0, 3)); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("bell coherence rho[0][3] = %v", v)
	}
}

func TestTracePreservedUnderChannels(t *testing.T) {
	channels := []noise.Channel{
		noise.Depolarizing1Q{P: 0.1},
		noise.AmplitudeDamping{Gamma: 0.2},
		noise.PhaseDamping{Lambda: 0.15},
		noise.ThermalRelaxation{T1: 25, T2: 30, GateTime: 1},
	}
	for _, ch := range channels {
		d := NewZero(2)
		d.ApplyUnitary(gate.New(gate.KindH, 0))
		d.ApplyUnitary(gate.New(gate.KindCX, 0, 1))
		d.ApplyChannel(ch, []int{0})
		if tr := d.Trace(); cmplx.Abs(tr-1) > 1e-10 {
			t.Errorf("%s: trace %v after channel", ch.Name(), tr)
		}
	}
}

func TestDepolarizingReducesPurity(t *testing.T) {
	d := NewZero(1)
	d.ApplyUnitary(gate.New(gate.KindH, 0))
	before := d.Purity()
	d.ApplyChannel(noise.Depolarizing1Q{P: 0.3}, []int{0})
	after := d.Purity()
	if after >= before {
		t.Fatalf("purity did not drop: %v -> %v", before, after)
	}
}

func TestFullDepolarizingGivesMaximallyMixed(t *testing.T) {
	d := NewZero(1)
	d.ApplyUnitary(gate.New(gate.KindH, 0))
	// p=0.75 single-qubit depolarizing is the fully depolarizing channel.
	d.ApplyChannel(noise.Depolarizing1Q{P: 0.75}, []int{0})
	if pur := d.Purity(); math.Abs(pur-0.5) > 1e-10 {
		t.Fatalf("purity %v, want 0.5", pur)
	}
	if p := real(d.At(0, 0)); math.Abs(p-0.5) > 1e-10 {
		t.Fatalf("population %v", p)
	}
}

func TestAmplitudeDampingSteadyState(t *testing.T) {
	d := NewZero(1)
	d.ApplyUnitary(gate.New(gate.KindX, 0)) // |1><1|
	ch := noise.AmplitudeDamping{Gamma: 0.5}
	for i := 0; i < 30; i++ {
		d.ApplyChannel(ch, []int{0})
	}
	if p := real(d.At(0, 0)); math.Abs(p-1) > 1e-4 {
		t.Fatalf("did not relax to ground state: P(0)=%v", p)
	}
}

func TestExactDepolarizingProbabilities(t *testing.T) {
	// One qubit, X then depolarizing(p): P(0) = 2p/3 analytically
	// (I keeps |1>, X,Y flip to |0| with weight p/3 each... work it out:
	// rho = (1-p)|1><1| + p/3(X|1><1|X + Y|1><1|Y + Z|1><1|Z)
	//     = (1-p)|1><1| + p/3(|0><0| + |0><0| + |1><1|)
	// P(0) = 2p/3.
	const p = 0.3
	d := NewZero(1)
	d.ApplyUnitary(gate.New(gate.KindX, 0))
	d.ApplyChannel(noise.Depolarizing1Q{P: p}, []int{0})
	probs := d.Probabilities(nil)
	if math.Abs(probs[0]-2*p/3) > 1e-12 {
		t.Fatalf("P(0) = %v, want %v", probs[0], 2*p/3)
	}
}

func TestReadoutConfusion(t *testing.T) {
	d := NewZero(2) // |00>
	m := &noise.Model{ModelName: "R", Readout: &noise.Readout{P01: 0.1, P10: 0.2}}
	probs := d.Probabilities(m)
	// P(00) = 0.9*0.9, P(01)=P(10)=0.1*0.9, P(11)=0.01.
	if math.Abs(probs[0]-0.81) > 1e-12 || math.Abs(probs[3]-0.01) > 1e-12 {
		t.Fatalf("readout confusion wrong: %v", probs)
	}
}

func TestRunWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch accepted")
		}
	}()
	NewZero(2).Run(circuit.New("w", 3), nil)
}

func TestCloneIndependence(t *testing.T) {
	d := NewZero(2)
	c := d.Clone()
	c.ApplyUnitary(gate.New(gate.KindX, 0))
	if real(d.At(0, 0)) != 1 {
		t.Fatal("clone aliases parent")
	}
}

func TestTwoQubitChannel(t *testing.T) {
	d := NewZero(2)
	d.ApplyUnitary(gate.New(gate.KindH, 0))
	d.ApplyUnitary(gate.New(gate.KindCX, 0, 1))
	d.ApplyChannel(noise.Depolarizing2Q{P: 0.2}, []int{0, 1})
	if tr := d.Trace(); cmplx.Abs(tr-1) > 1e-10 {
		t.Fatalf("trace %v", tr)
	}
	if pur := d.Purity(); pur >= 1 {
		t.Fatalf("purity did not drop: %v", pur)
	}
}

func TestBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized register accepted")
		}
	}()
	NewZero(MaxQubits + 1)
}

func TestRandomCircuitTraceStability(t *testing.T) {
	r := rng.New(9)
	c := circuit.New("rand", 3)
	kinds := []gate.Kind{gate.KindH, gate.KindT, gate.KindX, gate.KindS}
	for i := 0; i < 20; i++ {
		c.Append(gate.New(kinds[r.Intn(len(kinds))], r.Intn(3)))
		if r.Float64() < 0.4 {
			a, b := r.Intn(3), r.Intn(3)
			if a != b {
				c.CX(a, b)
			}
		}
	}
	d := NewZero(3)
	d.Run(c, noise.NewSycamore())
	if tr := d.Trace(); cmplx.Abs(tr-1) > 1e-8 {
		t.Fatalf("trace drifted to %v", tr)
	}
	probs := d.Probabilities(nil)
	var sum float64
	for _, p := range probs {
		if p < -1e-10 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}
