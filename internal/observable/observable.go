// Package observable implements Pauli-string observables and Hamiltonians:
// the quantities variational algorithms estimate from noisy simulations
// (paper §5.7) and the vehicles for the paper's Equation 2 — the standard
// error of a trajectory-ensemble estimate falls as sigma/sqrt(N).
//
// A PauliString is a tensor product of single-qubit Paulis with a real
// coefficient; a Hamiltonian is a sum of strings. Expectations are computed
// exactly on state vectors (one O(2^n) pass per string) and exactly on
// density matrices (tr(rho P) via the strings' permutation structure).
package observable

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tqsim/internal/densmat"
	"tqsim/internal/statevec"
)

// Pauli labels a single-qubit Pauli operator.
type Pauli byte

// Pauli operators.
const (
	I Pauli = 'I'
	X Pauli = 'X'
	Y Pauli = 'Y'
	Z Pauli = 'Z'
)

// PauliString is Coef * P_{q1} ⊗ P_{q2} ⊗ ... acting on the listed qubits
// (identity elsewhere).
type PauliString struct {
	Coef   float64
	Qubits []int
	Ops    []Pauli
}

// NewPauliString builds a string from a spec like "ZZ" on the given qubits.
func NewPauliString(coef float64, spec string, qubits ...int) PauliString {
	if len(spec) != len(qubits) {
		panic(fmt.Sprintf("observable: spec %q needs %d qubits, got %d",
			spec, len(spec), len(qubits)))
	}
	ops := make([]Pauli, len(spec))
	for i, ch := range strings.ToUpper(spec) {
		switch Pauli(ch) {
		case I, X, Y, Z:
			ops[i] = Pauli(ch)
		default:
			panic(fmt.Sprintf("observable: unknown Pauli %q", ch))
		}
	}
	return PauliString{Coef: coef, Qubits: append([]int(nil), qubits...), Ops: ops}
}

// Validate checks qubit distinctness and op labels.
func (p PauliString) Validate(numQubits int) error {
	if len(p.Qubits) != len(p.Ops) {
		return fmt.Errorf("observable: %d qubits for %d ops", len(p.Qubits), len(p.Ops))
	}
	seen := map[int]bool{}
	for i, q := range p.Qubits {
		if q < 0 || q >= numQubits {
			return fmt.Errorf("observable: qubit %d out of range", q)
		}
		if seen[q] {
			return fmt.Errorf("observable: qubit %d repeated", q)
		}
		seen[q] = true
		switch p.Ops[i] {
		case I, X, Y, Z:
		default:
			return fmt.Errorf("observable: bad op %q", p.Ops[i])
		}
	}
	return nil
}

// String renders like "+0.5*Z0Z3".
func (p PauliString) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%+g*", p.Coef)
	type qo struct {
		q  int
		op Pauli
	}
	items := make([]qo, 0, len(p.Qubits))
	for i, q := range p.Qubits {
		if p.Ops[i] != I {
			items = append(items, qo{q, p.Ops[i]})
		}
	}
	if len(items) == 0 {
		b.WriteString("I")
		return b.String()
	}
	sort.Slice(items, func(i, j int) bool { return items[i].q < items[j].q })
	for _, it := range items {
		fmt.Fprintf(&b, "%c%d", it.op, it.q)
	}
	return b.String()
}

// pauliAction returns, for basis index `idx`, the paired basis index and the
// phase factor such that P|idx> = phase * |paired>.
func (p PauliString) pauliAction(idx uint64) (uint64, complex128) {
	out := idx
	phase := complex(1, 0)
	for i, q := range p.Qubits {
		bit := idx >> uint(q) & 1
		switch p.Ops[i] {
		case I:
		case X:
			out ^= 1 << uint(q)
		case Y:
			out ^= 1 << uint(q)
			if bit == 0 {
				phase *= 1i // Y|0> = i|1>
			} else {
				phase *= -1i // Y|1> = -i|0>
			}
		case Z:
			if bit == 1 {
				phase = -phase
			}
		}
	}
	return out, phase
}

// ExpectationState returns <psi|P|psi> (real for Hermitian P).
func (p PauliString) ExpectationState(s *statevec.State) float64 {
	re, im := s.Components()
	var acc complex128
	for idx := range re {
		a := complex(re[idx], im[idx])
		if a == 0 {
			continue
		}
		paired, phase := p.pauliAction(uint64(idx))
		// <psi|P|psi> = sum_idx conj(amp[paired'])... accumulate
		// conj(amps[j]) * (P|idx>)_j * amps[idx] with j = paired. Reading
		// the planes directly avoids materializing an interleaved snapshot
		// per Pauli term.
		acc += complex(re[paired], -im[paired]) * phase * a
	}
	return p.Coef * real(acc)
}

// ExpectationDensity returns tr(rho * P) for the density matrix.
func (p PauliString) ExpectationDensity(d *densmat.Density) float64 {
	dim := uint64(d.Dim())
	var acc complex128
	for col := uint64(0); col < dim; col++ {
		row, phase := p.pauliAction(col)
		// (rho P)_{col,col} = sum_k rho[col][k] P[k][col]; P has a single
		// non-zero per column at k = row with value phase.
		acc += d.At(int(col), int(row)) * phase
	}
	return p.Coef * real(acc)
}

// ExpectationCounts estimates the expectation from a measurement histogram.
// Only Z/I strings are measurable in the computational basis; others return
// an error.
func (p PauliString) ExpectationCounts(counts map[uint64]int) (float64, error) {
	for _, op := range p.Ops {
		if op != Z && op != I {
			return 0, fmt.Errorf("observable: %s is not Z-diagonal; measure in a rotated basis", p)
		}
	}
	// Sum in sorted outcome order so the float accumulation is
	// reproducible: map iteration order is randomized per run.
	outcomes := make([]uint64, 0, len(counts))
	for bits := range counts {
		outcomes = append(outcomes, bits)
	}
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i] < outcomes[j] })
	total := 0
	var acc float64
	for _, bits := range outcomes {
		n := counts[bits]
		sign := 1.0
		for i, q := range p.Qubits {
			if p.Ops[i] == Z && bits>>uint(q)&1 == 1 {
				sign = -sign
			}
		}
		acc += sign * float64(n)
		total += n
	}
	if total == 0 {
		return 0, fmt.Errorf("observable: empty histogram")
	}
	return p.Coef * acc / float64(total), nil
}

// Hamiltonian is a real linear combination of Pauli strings.
type Hamiltonian struct {
	Name  string
	Terms []PauliString
}

// Validate checks every term.
func (h *Hamiltonian) Validate(numQubits int) error {
	for i, t := range h.Terms {
		if err := t.Validate(numQubits); err != nil {
			return fmt.Errorf("term %d: %w", i, err)
		}
	}
	return nil
}

// ExpectationState returns <psi|H|psi>.
func (h *Hamiltonian) ExpectationState(s *statevec.State) float64 {
	var acc float64
	for _, t := range h.Terms {
		acc += t.ExpectationState(s)
	}
	return acc
}

// ExpectationDensity returns tr(rho H).
func (h *Hamiltonian) ExpectationDensity(d *densmat.Density) float64 {
	var acc float64
	for _, t := range h.Terms {
		acc += t.ExpectationDensity(d)
	}
	return acc
}

// String renders the Hamiltonian as a sum of terms.
func (h *Hamiltonian) String() string {
	parts := make([]string, len(h.Terms))
	for i, t := range h.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// TransverseFieldIsing builds H = -J sum_<ij> Z_i Z_j - hx sum_i X_i on a
// ring of n qubits — the standard VQE test Hamiltonian.
func TransverseFieldIsing(n int, j, hx float64) *Hamiltonian {
	h := &Hamiltonian{Name: fmt.Sprintf("tfim_%d", n)}
	for q := 0; q < n; q++ {
		h.Terms = append(h.Terms, NewPauliString(-j, "ZZ", q, (q+1)%n))
	}
	for q := 0; q < n; q++ {
		h.Terms = append(h.Terms, NewPauliString(-hx, "X", q))
	}
	return h
}

// MaxCutHamiltonian builds the max-cut cost observable
// sum_<ij> (1 - Z_i Z_j)/2 for the given edge list.
func MaxCutHamiltonian(n int, edges [][2]int) *Hamiltonian {
	h := &Hamiltonian{Name: fmt.Sprintf("maxcut_%d", n)}
	for _, e := range edges {
		// Constant 1/2 per edge plus -1/2 Z_iZ_j.
		h.Terms = append(h.Terms, NewPauliString(-0.5, "ZZ", e[0], e[1]))
	}
	// The constant offset |E|/2 is representable as a coefficient on the
	// empty string.
	h.Terms = append(h.Terms, PauliString{Coef: float64(len(edges)) / 2})
	return h
}

// EstimateStats summarizes a per-trajectory sample of expectation values.
type EstimateStats struct {
	Mean float64
	// StdDev is the sample standard deviation across trajectories.
	StdDev float64
	// StdErr = StdDev / sqrt(N) — the paper's Equation 2.
	StdErr float64
	N      int
}

// Summarize computes the ensemble statistics of per-trajectory values.
func Summarize(values []float64) EstimateStats {
	n := len(values)
	if n == 0 {
		return EstimateStats{}
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	var sd float64
	if n > 1 {
		sd = math.Sqrt(ss / float64(n-1))
	}
	return EstimateStats{
		Mean:   mean,
		StdDev: sd,
		StdErr: sd / math.Sqrt(float64(n)),
		N:      n,
	}
}
