package observable

import (
	"math"
	"testing"
	"testing/quick"

	"tqsim/internal/circuit"
	"tqsim/internal/densmat"
	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// denseOperator expands a Pauli string into its full 2^n x 2^n matrix.
func denseOperator(n int, p PauliString) qmath.Matrix {
	mats := map[Pauli]qmath.Matrix{
		I: qmath.Identity(2),
		X: qmath.FromRows([][]complex128{{0, 1}, {1, 0}}),
		Y: qmath.FromRows([][]complex128{{0, -1i}, {1i, 0}}),
		Z: qmath.FromRows([][]complex128{{1, 0}, {0, -1}}),
	}
	full := qmath.Identity(1)
	for q := n - 1; q >= 0; q-- {
		op := I
		for i, pq := range p.Qubits {
			if pq == q {
				op = p.Ops[i]
			}
		}
		full = qmath.Kron(full, mats[op])
	}
	return full.Scale(complex(p.Coef, 0))
}

func randomState(n int, seed uint64) *statevec.State {
	r := rng.New(seed)
	amps := make([]complex128, 1<<uint(n))
	for i := range amps {
		amps[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	s := statevec.FromAmplitudes(amps)
	s.Normalize()
	return s
}

func TestExpectationAgainstDense(t *testing.T) {
	const n = 4
	strings := []PauliString{
		NewPauliString(1, "Z", 0),
		NewPauliString(1, "X", 2),
		NewPauliString(1, "Y", 3),
		NewPauliString(0.5, "ZZ", 0, 3),
		NewPauliString(-0.7, "XY", 1, 2),
		NewPauliString(2, "XYZ", 0, 1, 3),
		NewPauliString(1.5, "ZI", 2, 0),
		{Coef: 3}, // constant term
	}
	for seed := uint64(1); seed <= 3; seed++ {
		st := randomState(n, seed)
		for _, p := range strings {
			want := real(qmath.VecInner(st.Amplitudes(),
				denseOperator(n, p).MulVec(st.Amplitudes())))
			got := p.ExpectationState(st)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("seed %d %s: %v, want %v", seed, p, got, want)
			}
		}
	}
}

func TestExpectationKnownStates(t *testing.T) {
	// <0|Z|0> = 1, <1|Z|1> = -1, <+|X|+> = 1.
	zero := statevec.NewZero(1)
	if v := NewPauliString(1, "Z", 0).ExpectationState(zero); math.Abs(v-1) > 1e-12 {
		t.Fatalf("<0|Z|0> = %v", v)
	}
	one := statevec.NewBasis(1, 1)
	if v := NewPauliString(1, "Z", 0).ExpectationState(one); math.Abs(v+1) > 1e-12 {
		t.Fatalf("<1|Z|1> = %v", v)
	}
	plus := statevec.NewZero(1)
	plus.Apply(gate.New(gate.KindH, 0))
	if v := NewPauliString(1, "X", 0).ExpectationState(plus); math.Abs(v-1) > 1e-12 {
		t.Fatalf("<+|X|+> = %v", v)
	}
	if v := NewPauliString(1, "Z", 0).ExpectationState(plus); math.Abs(v) > 1e-12 {
		t.Fatalf("<+|Z|+> = %v", v)
	}
}

func TestBellCorrelators(t *testing.T) {
	bell := statevec.NewZero(2)
	bell.Apply(gate.New(gate.KindH, 0))
	bell.Apply(gate.New(gate.KindCX, 0, 1))
	for _, spec := range []string{"ZZ", "XX"} {
		if v := NewPauliString(1, spec, 0, 1).ExpectationState(bell); math.Abs(v-1) > 1e-12 {
			t.Fatalf("<bell|%s|bell> = %v", spec, v)
		}
	}
	if v := NewPauliString(1, "YY", 0, 1).ExpectationState(bell); math.Abs(v+1) > 1e-12 {
		t.Fatalf("<bell|YY|bell> = %v", v)
	}
	if v := NewPauliString(1, "Z", 0).ExpectationState(bell); math.Abs(v) > 1e-12 {
		t.Fatalf("<bell|Z0|bell> = %v", v)
	}
}

func TestExpectationDensityMatchesState(t *testing.T) {
	c := circuit.New("mix", 3).H(0).CX(0, 1).T(1).RZ(0.4, 2).CZ(1, 2)
	st := statevec.NewZero(3)
	st.ApplyAll(c.Gates)
	d := densmat.FromPure(st)
	terms := []PauliString{
		NewPauliString(1, "Z", 0),
		NewPauliString(1, "XX", 0, 2),
		NewPauliString(-0.3, "YZ", 1, 2),
	}
	for _, p := range terms {
		sv := p.ExpectationState(st)
		dm := p.ExpectationDensity(d)
		if math.Abs(sv-dm) > 1e-9 {
			t.Errorf("%s: statevec %v vs density %v", p, sv, dm)
		}
	}
}

func TestExpectationCounts(t *testing.T) {
	// Histogram 75% |00>, 25% |11>: <ZZ> = 1, <Z0> = 0.5.
	counts := map[uint64]int{0b00: 3, 0b11: 1}
	zz := NewPauliString(1, "ZZ", 0, 1)
	v, err := zz.ExpectationCounts(counts)
	if err != nil || math.Abs(v-1) > 1e-12 {
		t.Fatalf("<ZZ> = %v, %v", v, err)
	}
	z0 := NewPauliString(1, "Z", 0)
	v, err = z0.ExpectationCounts(counts)
	if err != nil || math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("<Z0> = %v, %v", v, err)
	}
	if _, err := NewPauliString(1, "X", 0).ExpectationCounts(counts); err == nil {
		t.Fatal("X accepted for computational-basis counts")
	}
	if _, err := zz.ExpectationCounts(nil); err == nil {
		t.Fatal("empty histogram accepted")
	}
}

func TestHamiltonianSum(t *testing.T) {
	st := randomState(3, 5)
	h := &Hamiltonian{Terms: []PauliString{
		NewPauliString(0.5, "Z", 0),
		NewPauliString(-1.5, "XX", 1, 2),
	}}
	want := h.Terms[0].ExpectationState(st) + h.Terms[1].ExpectationState(st)
	if got := h.ExpectationState(st); math.Abs(got-want) > 1e-12 {
		t.Fatalf("hamiltonian sum %v, want %v", got, want)
	}
}

func TestTransverseFieldIsingGroundStateBounds(t *testing.T) {
	// For the 1D TFIM ring, the all-|+> product state has energy -n*hx and
	// the all-|0> state has energy -n*J; any state's energy is within
	// [-n*(J+hx), n*(J+hx)].
	const n = 4
	h := TransverseFieldIsing(n, 1.0, 0.5)
	if err := h.Validate(n); err != nil {
		t.Fatal(err)
	}
	zero := statevec.NewZero(n)
	if v := h.ExpectationState(zero); math.Abs(v-(-4)) > 1e-12 {
		t.Fatalf("all-zero TFIM energy %v, want -4", v)
	}
	plus := statevec.NewZero(n)
	for q := 0; q < n; q++ {
		plus.Apply(gate.New(gate.KindH, q))
	}
	if v := h.ExpectationState(plus); math.Abs(v-(-2)) > 1e-12 {
		t.Fatalf("all-plus TFIM energy %v, want -2", v)
	}
}

func TestMaxCutHamiltonianMatchesCutCount(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	h := MaxCutHamiltonian(3, edges)
	// |010>: cuts edges (0,1) and (1,2) -> 2.
	st := statevec.NewBasis(3, 0b010)
	if v := h.ExpectationState(st); math.Abs(v-2) > 1e-12 {
		t.Fatalf("cut value %v, want 2", v)
	}
	// |000>: cuts nothing.
	if v := h.ExpectationState(statevec.NewZero(3)); math.Abs(v) > 1e-12 {
		t.Fatalf("trivial cut %v", v)
	}
}

func TestSummarizeEquation2(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.N != 4 {
		t.Fatalf("stats %+v", s)
	}
	wantSD := math.Sqrt(5.0 / 3)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Fatalf("stddev %v", s.StdDev)
	}
	if math.Abs(s.StdErr-wantSD/2) > 1e-12 {
		t.Fatalf("stderr %v", s.StdErr)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty stats %+v", z)
	}
}

func TestValidation(t *testing.T) {
	bad := []PauliString{
		{Coef: 1, Qubits: []int{0, 0}, Ops: []Pauli{Z, Z}},
		{Coef: 1, Qubits: []int{5}, Ops: []Pauli{Z}},
		{Coef: 1, Qubits: []int{0}, Ops: []Pauli{'Q'}},
		{Coef: 1, Qubits: []int{0, 1}, Ops: []Pauli{Z}},
	}
	for i, p := range bad {
		if p.Validate(3) == nil {
			t.Errorf("bad string %d accepted", i)
		}
	}
}

func TestStringRendering(t *testing.T) {
	p := NewPauliString(0.5, "ZX", 3, 0)
	if got := p.String(); got != "+0.5*X0Z3" {
		t.Fatalf("rendering %q", got)
	}
	c := PauliString{Coef: -2}
	if got := c.String(); got != "-2*I" {
		t.Fatalf("constant rendering %q", got)
	}
}

func TestExpectationBounded(t *testing.T) {
	// |<psi|P|psi>| <= |coef| for any unit state and Pauli string.
	check := func(seed uint64) bool {
		st := randomState(3, seed)
		p := NewPauliString(1, "XYZ", 0, 1, 2)
		v := p.ExpectationState(st)
		return v >= -1-1e-9 && v <= 1+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
