// Package planner turns "which engine should run this job?" from a caller
// decision into a computed one. Given a simulation-tree plan, a noise model
// and a resource budget, Decide inspects the plan — register width, Clifford
// prefix length, noise class, and the hpcmodel cost/memory estimates — and
// selects a backend, a worker count, and (for the sharded engine) a shard
// count. The result is an explainable Decision: every registered engine
// appears as a Candidate with its cost estimate and, when rejected, the
// reason, so CLI tools and the tqsimd service can show *why* a job landed on
// an engine instead of silently picking one.
//
// The planner is deterministic in (plan, noise, budget, worker count): the
// same inputs always produce the same Decision. With Budget.Parallelism 0
// the worker count defaults to the host's GOMAXPROCS, so decisions agree
// across hosts only when Parallelism is pinned; within one process (the
// tqsimd plan cache's scope) repeated calls always agree. The chosen
// *backend* is worker-count-independent except through a memory budget's
// worker clamp. Cost estimates are in abstract work units (amplitude
// touches for dense engines, tableau word operations scaled by WordOpCost
// for the stabilizer engine); they order engines, they do not predict
// wall-clock.
package planner

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"tqsim/internal/circuit"
	"tqsim/internal/cluster"
	"tqsim/internal/core"
	"tqsim/internal/densmat"
	"tqsim/internal/hpcmodel"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/stabilizer"
	"tqsim/internal/statevec"
)

// Cost-model constants. These encode the dispatch policy; the decision-table
// test in planner_test.go pins the choices they imply.
const (
	// WordOpCost scales tableau word operations into the same abstract unit
	// as dense amplitude touches. Tableau updates are cache-resident integer
	// ops; amplitude passes stream complex128s from memory, so a word op is
	// cheaper than an amplitude touch.
	WordOpCost = 0.25
	// HybridOverhead is the fixed fraction of the dense tree cost charged to
	// the stabilizer hybrid path for shadow bookkeeping plus the one-off
	// tableau→state-vector conversion at handoff. The hybrid therefore wins
	// exactly when the Clifford prefix covers more than this fraction of the
	// tree's gate work.
	HybridOverhead = 0.15
	// FusionDiscount is the dense-cost fraction fusion saves per fusible
	// one-qubit gate on ideal runs. Under noise every gate is followed by a
	// channel that flushes the fusion buffer, so the discount applies only
	// to ideal models; noisy runs instead pay FusionNoisePenalty.
	FusionDiscount = 0.35
	// FusionNoisePenalty is the buffer-management overhead fusion pays when
	// per-gate noise forces a flush after every gate.
	FusionNoisePenalty = 0.02
	// ClusterPenalty is the single-host overhead of the sharded engine's
	// inter-shard exchanges. It keeps cluster from being auto-selected
	// unless the caller asked for shards (Budget.ClusterNodes > 0).
	ClusterPenalty = 0.20
)

// Budget carries the resource knobs the planner honors.
type Budget struct {
	// MemoryBytes caps a candidate's estimated peak state memory
	// (0 = unlimited). Dense candidates shed workers to fit; a candidate
	// that cannot fit even single-threaded is rejected.
	MemoryBytes int64
	// Parallelism fixes the worker count (0 = the planner picks
	// min(GOMAXPROCS, first-level arity)).
	Parallelism int
	// ClusterNodes requests the sharded engine with that many virtual nodes
	// (0 = no preference; cluster then only runs if explicitly selected).
	ClusterNodes int
}

// Candidate records one engine the planner evaluated.
type Candidate struct {
	// Backend is the registry name the candidate would select.
	Backend string
	// Mode distinguishes execution modes sharing a registry name
	// ("tableau-tree" vs "hybrid-handoff" for the stabilizer engine).
	Mode string
	// Viable reports whether the engine can run the plan within budget.
	Viable bool
	// Reason explains a rejection, or summarizes the estimate for a viable
	// candidate.
	Reason string
	// EstCost is the abstract work estimate (see the package comment);
	// meaningful only for viable candidates.
	EstCost float64
	// EstPeakBytes is the estimated peak state memory at the candidate's
	// worker count.
	EstPeakBytes int64
	// Parallelism is the worker count the candidate would use (possibly
	// memory-clamped below the requested count).
	Parallelism int
}

// Decision is the planner's explainable output: the chosen engine plus
// every candidate it beat.
type Decision struct {
	// Backend is the chosen registry name.
	Backend string
	// Mode is the chosen candidate's execution mode (see Candidate.Mode).
	Mode string
	// Parallelism is the chosen worker count.
	Parallelism int
	// ClusterNodes is the shard count when Backend is "cluster"; 0 otherwise.
	ClusterNodes int
	// EstCost and EstPeakBytes echo the chosen candidate's estimates.
	EstCost      float64
	EstPeakBytes int64
	// Width, TotalGates, CliffordPrefix, CliffordOnly and PauliNoise record
	// the plan facts the decision was computed from.
	Width          int
	TotalGates     int
	CliffordPrefix int
	CliffordOnly   bool
	PauliNoise     bool
	// Candidates lists every engine evaluated, in evaluation order; the
	// chosen one has Backend == Decision.Backend and Viable == true.
	Candidates []Candidate
	// Why is a one-line human explanation of the choice.
	Why string
}

// Rejected returns the candidates that were not viable.
func (d *Decision) Rejected() []Candidate {
	var out []Candidate
	for _, c := range d.Candidates {
		if !c.Viable {
			out = append(out, c)
		}
	}
	return out
}

// String renders the decision and the full candidate table, one line each —
// the -explain output of cmd/tqsim and the tqsimd plan endpoint.
func (d *Decision) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "planner: %s", d.Why)
	for _, c := range d.Candidates {
		mark := "rejected"
		if c.Viable {
			mark = fmt.Sprintf("cost %.3g, peak %s, workers %d",
				c.EstCost, hpcmodel.FormatBytes(float64(c.EstPeakBytes)), c.Parallelism)
		}
		name := c.Backend
		if c.Mode != "" {
			name += "/" + c.Mode
		}
		fmt.Fprintf(&b, "\n  %-26s %s: %s", name, mark, c.Reason)
	}
	return b.String()
}

// CliffordPrefixLen returns the number of leading gates drawn from the
// stabilizer engine's Clifford set — the segment the hybrid dispatcher can
// shadow on tableaux before materializing dense amplitudes.
func CliffordPrefixLen(c *circuit.Circuit) int {
	for i, g := range c.Gates {
		if !stabilizer.IsCliffordKind(g.Kind) {
			return i
		}
	}
	return len(c.Gates)
}

// analysis gathers the plan facts every candidate evaluation shares.
type analysis struct {
	plan     *partition.Plan
	n        int
	levels   int
	gateWork float64 // tree gate applications (Equation 3 accounting)
	copyWork float64 // tree state copies
	outcomes float64
	prefix   int
	total    int
	clifford bool
	pauli    bool
	// denseAmps is 2^n as a float (safe beyond 63 qubits).
	denseAmps float64
	// denseCost is the dense-engine tree cost: every gate application and
	// every state copy streams the full amplitude array once.
	denseCost float64
	workers   int // requested worker count before memory clamping
	frac1q    float64
}

func analyze(p *partition.Plan, m *noise.Model, b Budget) analysis {
	c := p.Circuit
	a := analysis{
		plan:     p,
		n:        c.NumQubits,
		levels:   p.Levels(),
		gateWork: float64(p.GateWork()),
		copyWork: float64(p.CopyWork()),
		outcomes: float64(p.TotalOutcomes()),
		prefix:   CliffordPrefixLen(c),
		total:    c.Len(),
		pauli:    m.PauliOnly(),
	}
	a.clifford = a.prefix == a.total
	a.denseAmps = hpcmodel.StatevectorBytes(a.n) / hpcmodel.BytesPerAmplitude
	a.denseCost = (a.gateWork + a.copyWork) * a.denseAmps
	a.workers = b.Parallelism
	if a.workers < 1 {
		a.workers = runtime.GOMAXPROCS(0)
	}
	if a.workers > p.Arities[0] {
		a.workers = p.Arities[0]
	}
	oneQ := 0
	for _, g := range c.Gates {
		if g.Arity() == 1 {
			oneQ++
		}
	}
	if a.total > 0 {
		a.frac1q = float64(oneQ) / float64(a.total)
	}
	return a
}

// densePeakBytes is the dense executor's peak amplitude memory at a worker
// count — core.DensePeakBytes, the same formula the executor reports, so
// admission estimates and observed PeakStateBytes agree.
func (a analysis) densePeakBytes(workers int) int64 {
	return core.DensePeakBytes(workers, a.levels, a.n)
}

// fitDense memory-clamps a dense candidate: sheds workers until the peak
// fits the budget, or reports infeasibility. It mirrors the admission
// arithmetic tqsimd uses, so service rejections and planner rejections
// agree.
func (a analysis) fitDense(b Budget) (workers int, peak int64, ok bool) {
	workers = a.workers
	peak = a.densePeakBytes(workers)
	if b.MemoryBytes <= 0 {
		return workers, peak, true
	}
	for workers > 1 && peak > b.MemoryBytes {
		workers--
		peak = a.densePeakBytes(workers)
	}
	return workers, peak, peak <= b.MemoryBytes
}

// Decide selects an engine, worker count and shard count for the plan under
// the noise model and budget. The returned Decision always carries the full
// candidate table; the error (no engine can run the plan) summarizes it and
// includes the hpcmodel memory estimate — the same number denseWidthCheck
// reports — so planner and facade diagnostics agree.
func Decide(p *partition.Plan, m *noise.Model, b Budget) (*Decision, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := analyze(p, m, b)
	d := &Decision{
		Width:          a.n,
		TotalGates:     a.total,
		CliffordPrefix: a.prefix,
		CliffordOnly:   a.clifford,
		PauliNoise:     a.pauli,
	}

	d.Candidates = append(d.Candidates,
		candTableau(a, b),
		candHybrid(a, b),
		candDense(a, b, "statevec", a.denseCost,
			"dense state-vector kernels; the conformance reference"),
		candFusion(a, b, m),
		candCluster(a, b),
		candDensmat(a, m),
	)

	best := -1
	for i, c := range d.Candidates {
		if !c.Viable {
			continue
		}
		// Budget.ClusterNodes is an explicit shard request: cluster wins
		// outright when viable.
		if b.ClusterNodes > 0 && c.Backend == "cluster" {
			best = i
			break
		}
		if best < 0 || c.EstCost < d.Candidates[best].EstCost {
			best = i
		}
	}
	if best < 0 {
		return d, fmt.Errorf(
			"planner: no engine can run %d qubits under noise %s (dense state vector ≈ %s): %s",
			a.n, m.Name(), hpcmodel.FormatBytes(hpcmodel.StatevectorBytes(a.n)),
			rejectionSummary(d.Candidates))
	}
	chosen := d.Candidates[best]
	d.Backend = chosen.Backend
	d.Mode = chosen.Mode
	d.Parallelism = chosen.Parallelism
	d.EstCost = chosen.EstCost
	d.EstPeakBytes = chosen.EstPeakBytes
	if chosen.Backend == "cluster" {
		d.ClusterNodes = b.ClusterNodes
		if d.ClusterNodes <= 0 {
			d.ClusterNodes = cluster.DefaultNodes
		}
	}
	d.Why = fmt.Sprintf("%s (%s): %s", d.Backend, modeOrDefault(chosen), chosen.Reason)
	return d, nil
}

func modeOrDefault(c Candidate) string {
	if c.Mode != "" {
		return c.Mode
	}
	return "dense-tree"
}

func rejectionSummary(cands []Candidate) string {
	parts := make([]string, 0, len(cands))
	for _, c := range cands {
		if !c.Viable {
			parts = append(parts, c.Backend+": "+c.Reason)
		}
	}
	return strings.Join(parts, "; ")
}

// candTableau evaluates the pure-tableau stabilizer path: the whole tree on
// CHP tableaux, polynomial in width.
func candTableau(a analysis, b Budget) Candidate {
	c := Candidate{Backend: "stabilizer", Mode: "tableau-tree", Parallelism: a.workers}
	switch {
	case !a.clifford:
		c.Reason = fmt.Sprintf("non-Clifford gate at index %d of %d", a.prefix, a.total)
	case !a.pauli:
		c.Reason = "noise is not Pauli-only; tableaux cannot absorb it"
	case a.n > stabilizer.MaxTreeQubits:
		c.Reason = fmt.Sprintf("%d qubits exceeds the %d-qubit outcome packing limit",
			a.n, stabilizer.MaxTreeQubits)
	default:
		c.Viable = true
		nn := float64(a.n)
		// Gate updates are O(n) row sweeps, copies O(n^2/64) words, each
		// leaf measurement O(n^2).
		c.EstCost = WordOpCost * (a.gateWork*nn + a.copyWork*nn*nn/64 + a.outcomes*nn*nn)
		c.EstPeakBytes = int64(a.workers) * int64(a.levels+1) * stabilizer.TableauBytes(a.n)
		c.Reason = "Clifford-only circuit under Pauli noise runs entirely on tableaux"
		if b.MemoryBytes > 0 && c.EstPeakBytes > b.MemoryBytes {
			// Tableaux are tiny; a budget below one tableau set is degenerate
			// but must still reject cleanly.
			c.Viable = false
			c.Reason = fmt.Sprintf("tableau peak %s exceeds budget %s",
				hpcmodel.FormatBytes(float64(c.EstPeakBytes)), hpcmodel.FormatBytes(float64(b.MemoryBytes)))
		}
	}
	return c
}

// candHybrid evaluates the stabilizer hybrid path: Clifford prefix on
// tableaux, dense kernels after handoff. Histograms are byte-identical to
// statevec because the handoff precedes sampling.
func candHybrid(a analysis, b Budget) Candidate {
	c := Candidate{Backend: "stabilizer", Mode: "hybrid-handoff"}
	switch {
	case a.clifford:
		c.Reason = "circuit is Clifford-only; the tableau-tree mode subsumes the hybrid"
		return c
	case !a.pauli:
		c.Reason = "non-Pauli noise materializes dense amplitudes at the first noisy gate"
		return c
	case a.prefix == 0:
		c.Reason = "no Clifford prefix to shadow"
		return c
	case a.n > statevec.MaxQubits:
		c.Reason = fmt.Sprintf("%d qubits exceeds the %d-qubit dense limit after handoff (state vector ≈ %s)",
			a.n, statevec.MaxQubits, hpcmodel.FormatBytes(hpcmodel.StatevectorBytes(a.n)))
		return c
	}
	workers, peak, ok := a.fitDense(b)
	if !ok {
		c.Reason = overBudget(peak, b)
		return c
	}
	prefFrac := float64(a.prefix) / float64(a.total)
	c.Viable = true
	c.Parallelism = workers
	c.EstPeakBytes = peak
	c.EstCost = a.denseCost * (1 - prefFrac + HybridOverhead)
	c.Reason = fmt.Sprintf("%d/%d-gate Clifford prefix shadowed on tableaux before dense handoff",
		a.prefix, a.total)
	return c
}

func candDense(a analysis, b Budget, name string, cost float64, why string) Candidate {
	c := Candidate{Backend: name}
	if a.n > statevec.MaxQubits {
		c.Reason = fmt.Sprintf("%d qubits exceeds the %d-qubit dense limit (state vector ≈ %s)",
			a.n, statevec.MaxQubits, hpcmodel.FormatBytes(hpcmodel.StatevectorBytes(a.n)))
		return c
	}
	workers, peak, ok := a.fitDense(b)
	if !ok {
		c.Reason = overBudget(peak, b)
		return c
	}
	c.Viable = true
	c.Parallelism = workers
	c.EstPeakBytes = peak
	c.EstCost = cost
	c.Reason = why
	return c
}

func candFusion(a analysis, b Budget, m *noise.Model) Candidate {
	if m.Ideal() {
		cost := a.denseCost * (1 - FusionDiscount*a.frac1q)
		return candDense(a, b, "fusion", cost, fmt.Sprintf(
			"ideal run fuses the %.0f%% one-qubit gates into neighbors", 100*a.frac1q))
	}
	cost := a.denseCost * (1 + FusionNoisePenalty)
	return candDense(a, b, "fusion", cost,
		"per-gate noise flushes the fusion buffer after every gate; no fusion wins")
}

func candCluster(a analysis, b Budget) Candidate {
	nodes := b.ClusterNodes
	why := fmt.Sprintf("single-host shard exchanges add ~%.0f%% overhead; select explicitly or set ClusterNodes", 100*ClusterPenalty)
	if nodes > 0 {
		why = fmt.Sprintf("explicit request for %d shards", nodes)
	}
	return candDense(a, b, "cluster", a.denseCost*(1+ClusterPenalty), why)
}

// candDensmat is policy-rejected for auto dispatch: the exact engine samples
// from the noise-averaged distribution, so its histograms carry no
// trajectory error and differ from every trajectory engine's at the same
// seed. Auto-selection must preserve trajectory sampling semantics; callers
// who want exactness select "densmat" explicitly.
func candDensmat(a analysis, m *noise.Model) Candidate {
	c := Candidate{Backend: "densmat"}
	if a.n > densmat.MaxQubits {
		c.Reason = fmt.Sprintf("%d qubits exceeds the %d-qubit density-matrix limit (ρ ≈ %s)",
			a.n, densmat.MaxQubits, hpcmodel.FormatBytes(hpcmodel.DensityMatrixBytes(a.n)))
		return c
	}
	c.EstCost = a.gateWork / a.outcomes * a.denseAmps * a.denseAmps
	c.Reason = "exact-distribution engine changes sampling semantics (no trajectory error); select explicitly"
	_ = m
	return c
}

// PeakBytes estimates the peak state memory of running the plan on an
// explicitly named engine at the budget's worker count — the admission
// estimate tqsimd uses when a job pins its backend (auto jobs use the
// chosen candidate's estimate from Decide). Widths beyond an engine's
// reach return a saturating "infinite" estimate: the run will fail with a
// width diagnostic, and admission against any finite budget rejects first.
func PeakBytes(p *partition.Plan, m *noise.Model, name string, b Budget) int64 {
	a := analyze(p, m, b)
	const infinite = math.MaxInt64 / 4
	switch {
	case name == "densmat":
		dm := hpcmodel.DensityMatrixBytes(a.n)
		if dm > float64(infinite) {
			return infinite
		}
		return int64(dm)
	case name == "stabilizer" && a.clifford && a.pauli && a.n <= stabilizer.MaxTreeQubits:
		return int64(a.workers) * int64(a.levels+1) * stabilizer.TableauBytes(a.n)
	case a.n > statevec.MaxQubits:
		return infinite
	default:
		return a.densePeakBytes(a.workers)
	}
}

// WorkerSlots returns how many shards of a job a worker can execute
// concurrently under its advertised memory budget: budget / estPeak,
// clamped to the worker's execution slots. estPeak is the job's admission
// estimate (PeakBytes or the auto Decision's EstPeakBytes — both built on
// core.DensePeakBytes / stabilizer.TableauBytes). A zero budget means
// unlimited memory; a zero return means the job can never be placed on
// that worker, however idle it is — the distributed coordinator uses this
// to skip workers a job cannot fit on instead of dispatching shards that
// would bounce off the worker's own admission control.
func WorkerSlots(estPeak, budgetBytes int64, maxConcurrent int) int {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	if budgetBytes <= 0 || estPeak <= 0 {
		return maxConcurrent
	}
	slots := budgetBytes / estPeak
	if slots > int64(maxConcurrent) {
		return maxConcurrent
	}
	return int(slots)
}

func overBudget(peak int64, b Budget) string {
	return fmt.Sprintf("estimated peak %s exceeds the %s memory budget even single-threaded",
		hpcmodel.FormatBytes(float64(peak)), hpcmodel.FormatBytes(float64(b.MemoryBytes)))
}
