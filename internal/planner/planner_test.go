package planner

import (
	"strings"
	"testing"

	"tqsim/internal/circuit"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/workloads"
)

// TestDecisionTable pins the dispatch policy across the workload grid ×
// noise class × width plane: each row is (circuit shape, noise, budget) →
// (backend, mode). Changing a cost constant that flips one of these rows
// must update this table deliberately.
func TestDecisionTable(t *testing.T) {
	pauli := noise.NewSycamore()
	thermal := noise.ByName("TRR")
	var ideal *noise.Model

	cases := []struct {
		name        string
		plan        *partition.Plan
		noise       *noise.Model
		budget      Budget
		wantBackend string
		wantMode    string
	}{
		// Clifford-only × Pauli noise: tableau tree at any width ≤ 64.
		{"ghz8/pauli", dcp(workloads.GHZ(8), pauli, 2000), pauli, Budget{}, "stabilizer", "tableau-tree"},
		{"ghz40/pauli", dcp(workloads.GHZ(40), pauli, 2000), pauli, Budget{}, "stabilizer", "tableau-tree"},
		{"bv32/pauli", dcp(workloads.BV(32, 0xABCDE), pauli, 1000), pauli, Budget{}, "stabilizer", "tableau-tree"},
		{"clifford56/ideal", dcp(workloads.Clifford(56, 6, 3), ideal, 500), ideal, Budget{}, "stabilizer", "tableau-tree"},

		// Non-Clifford, narrow: dense state vector (the acceptance shape).
		{"qft10/pauli", dcp(workloads.QFT(10, true), pauli, 2000), pauli, Budget{}, "statevec", ""},
		{"qsc8/pauli", dcp(workloads.QSC(8, 6, 1), pauli, 2000), pauli, Budget{}, "statevec", ""},
		{"qft6/thermal", dcp(workloads.QFT(6, true), thermal, 1000), thermal, Budget{}, "statevec", ""},

		// Long Clifford prefix + short non-Clifford tail under Pauli noise:
		// hybrid handoff shadows the prefix.
		{"cliffprefix12/pauli", dcp(workloads.CliffordPrefix(12, 24, 5), pauli, 2000), pauli, Budget{}, "stabilizer", "hybrid-handoff"},

		// Clifford circuit under non-Pauli noise: tableaux cannot absorb the
		// channels, so a narrow circuit falls back to dense kernels.
		{"ghz10/thermal", dcp(workloads.GHZ(10), thermal, 1000), thermal, Budget{}, "statevec", ""},

		// Ideal runs fuse one-qubit gates: the fusion engine wins on
		// 1q-heavy circuits.
		{"qsc8/ideal", dcp(workloads.QSC(8, 6, 1), ideal, 2000), ideal, Budget{}, "fusion", ""},

		// Explicit shard request: cluster wins outright when viable.
		{"qft10/pauli/shards", dcp(workloads.QFT(10, true), pauli, 2000), pauli, Budget{ClusterNodes: 8}, "cluster", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Decide(tc.plan, tc.noise, tc.budget)
			if err != nil {
				t.Fatalf("Decide: %v", err)
			}
			if d.Backend != tc.wantBackend || d.Mode != tc.wantMode {
				t.Fatalf("chose %s/%s, want %s/%s\n%s",
					d.Backend, d.Mode, tc.wantBackend, tc.wantMode, d)
			}
			if d.Why == "" || len(d.Candidates) != 6 {
				t.Fatalf("decision not explainable: why=%q candidates=%d", d.Why, len(d.Candidates))
			}
			if d.EstCost <= 0 {
				t.Fatalf("chosen candidate carries no cost estimate: %+v", d)
			}
		})
	}
}

// TestDecisionExplainsRejections asserts the two acceptance-criteria shapes
// produce Decisions whose candidate tables explain both the choice and the
// rejections.
func TestDecisionExplainsRejections(t *testing.T) {
	pauli := noise.NewSycamore()

	// 40-qubit pure Clifford + Pauli noise → stabilizer; dense engines must
	// be rejected with the width (and byte-estimate) reason.
	d, err := Decide(dcp(workloads.GHZ(40), pauli, 2000), pauli, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend != "stabilizer" || d.Mode != "tableau-tree" {
		t.Fatalf("40q Clifford chose %s/%s", d.Backend, d.Mode)
	}
	if !d.CliffordOnly || !d.PauliNoise || d.Width != 40 {
		t.Fatalf("plan facts wrong: %+v", d)
	}
	found := 0
	for _, c := range d.Rejected() {
		if c.Backend == "statevec" || c.Backend == "fusion" || c.Backend == "cluster" {
			if !strings.Contains(c.Reason, "30-qubit dense limit") || !strings.Contains(c.Reason, "TiB") {
				t.Fatalf("dense rejection lacks width/bytes: %q", c.Reason)
			}
			found++
		}
	}
	if found != 3 {
		t.Fatalf("expected 3 dense rejections, got %d\n%s", found, d)
	}

	// Narrow non-Clifford → statevec; the tableau candidate must name the
	// first non-Clifford gate index.
	d, err = Decide(dcp(workloads.QFT(10, true), pauli, 2000), pauli, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend != "statevec" {
		t.Fatalf("narrow non-Clifford chose %s", d.Backend)
	}
	var tableau *Candidate
	for i := range d.Candidates {
		if d.Candidates[i].Mode == "tableau-tree" {
			tableau = &d.Candidates[i]
		}
	}
	if tableau == nil || tableau.Viable || !strings.Contains(tableau.Reason, "non-Clifford gate at index") {
		t.Fatalf("tableau rejection unexplained: %+v", tableau)
	}
}

// TestMemoryBudgetShedsWorkersThenRejects drives the admission arithmetic:
// a budget that fits only a single worker clamps Parallelism to 1, and a
// budget below one state set rejects every dense engine.
func TestMemoryBudgetShedsWorkersThenRejects(t *testing.T) {
	pauli := noise.NewSycamore()
	plan := dcp(workloads.QFT(12, true), pauli, 2000)
	levels := plan.Levels()
	stateBytes := int64(16) << 12

	oneWorker := Budget{Parallelism: 8, MemoryBytes: int64(levels+1) * stateBytes}
	d, err := Decide(plan, pauli, oneWorker)
	if err != nil {
		t.Fatal(err)
	}
	if d.Parallelism != 1 {
		t.Fatalf("expected memory clamp to 1 worker, got %d", d.Parallelism)
	}
	if d.EstPeakBytes > oneWorker.MemoryBytes {
		t.Fatalf("peak %d exceeds budget %d", d.EstPeakBytes, oneWorker.MemoryBytes)
	}

	tooSmall := Budget{MemoryBytes: stateBytes} // < (levels+1) states even for 1 worker
	if _, err := Decide(plan, pauli, tooSmall); err == nil {
		t.Fatal("expected no-viable-engine error under a one-state budget")
	} else if !strings.Contains(err.Error(), "memory budget") {
		t.Fatalf("budget rejection not explained: %v", err)
	}
}

// TestCliffordPrefixLen pins the prefix scan against hand-built circuits.
func TestCliffordPrefixLen(t *testing.T) {
	c := workloads.GHZ(5)
	if got := CliffordPrefixLen(c); got != c.Len() {
		t.Fatalf("GHZ prefix %d, want %d", got, c.Len())
	}
	c.T(0).H(1)
	want := c.Len() - 2
	if got := CliffordPrefixLen(c); got != want {
		t.Fatalf("prefix %d, want %d", got, want)
	}
}

// TestDeciderDeterministic: same inputs, same Decision — the property the
// tqsimd plan cache relies on.
func TestDeciderDeterministic(t *testing.T) {
	pauli := noise.NewSycamore()
	plan := dcp(workloads.CliffordPrefix(10, 16, 7), pauli, 1500)
	a, err := Decide(plan, pauli, Budget{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decide(plan, pauli, Budget{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("decisions diverged:\n%s\nvs\n%s", a, b)
	}
}

func dcp(c *circuit.Circuit, m *noise.Model, shots int) *partition.Plan {
	return partition.Dynamic(c, m, shots, partition.DCPOptions{CopyCost: 20})
}

func TestWorkerSlots(t *testing.T) {
	cases := []struct {
		est, budget int64
		maxc, want  int
	}{
		{1 << 20, 4 << 20, 8, 4},  // budget-bound
		{1 << 20, 64 << 20, 4, 4}, // slot-bound
		{1 << 20, 0, 4, 4},        // unlimited memory
		{8 << 20, 4 << 20, 4, 0},  // never fits
		{0, 4 << 20, 4, 4},        // no estimate: slot-bound
	}
	for _, tc := range cases {
		if got := WorkerSlots(tc.est, tc.budget, tc.maxc); got != tc.want {
			t.Fatalf("WorkerSlots(%d,%d,%d) = %d, want %d", tc.est, tc.budget, tc.maxc, got, tc.want)
		}
	}
	if got := WorkerSlots(1<<20, 1<<40, 0); got < 1 {
		t.Fatalf("zero maxConcurrent must default to GOMAXPROCS, got %d", got)
	}
}
