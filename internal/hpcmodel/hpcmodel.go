// Package hpcmodel captures the platform-level characterizations the paper
// reports alongside the algorithm: memory scaling of state-vector versus
// density-matrix simulation (Figure 4), the simulation-time/memory growth
// of noisy runs (Figure 5), GPU parallel-shot saturation (Figure 8), the
// state-copy-cost table across six machines (Figure 10), and the HPC system
// inventory of Table 1.
//
// The published machines (Frontier, Summit, Perlmutter, A100/V100 nodes)
// are modeled from their documented parameters — this host cannot reproduce
// them physically, and DESIGN.md records the substitution. Host-measured
// numbers (internal/core's profiler) complement the models where hardware
// is available.
package hpcmodel

import (
	"fmt"
	"math"
)

// BytesPerAmplitude is the storage of one complex128 amplitude.
const BytesPerAmplitude = 16

// FormatBytes renders a byte count with a binary-prefix unit (KiB … EiB),
// e.g. 17179869184 -> "16 GiB". Every memory estimate the planner, the
// facade's width diagnostics and the tqsimd admission controller print goes
// through here, so their numbers always agree textually.
func FormatBytes(b float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	switch {
	case b >= 1024: // beyond EiB: scientific notation beats a 13-digit count
		return fmt.Sprintf("%.3g %s", b, units[i])
	case b == math.Trunc(b):
		return fmt.Sprintf("%.0f %s", b, units[i])
	default:
		return fmt.Sprintf("%.1f %s", b, units[i])
	}
}

// StatevectorBytes returns the memory of an n-qubit state vector: 16 * 2^n.
func StatevectorBytes(n int) float64 {
	return BytesPerAmplitude * math.Pow(2, float64(n))
}

// DensityMatrixBytes returns the memory of an n-qubit density matrix:
// 16 * 4^n.
func DensityMatrixBytes(n int) float64 {
	return BytesPerAmplitude * math.Pow(4, float64(n))
}

// MaxQubitsStatevector returns the widest register a memory budget holds as
// a state vector.
func MaxQubitsStatevector(budgetBytes float64) int {
	return int(math.Floor(math.Log2(budgetBytes / BytesPerAmplitude)))
}

// MaxQubitsDensityMatrix returns the widest register a memory budget holds
// as a density matrix.
func MaxQubitsDensityMatrix(budgetBytes float64) int {
	return int(math.Floor(math.Log2(budgetBytes/BytesPerAmplitude) / 2))
}

// Reference memory capacities for Figure 4's horizontal lines.
const (
	LaptopMemoryBytes    = 16e9      // 16 GB laptop
	ElCapitanMemoryBytes = 5.4375e15 // ~5.4 PB aggregate (El Capitan)
)

// System describes one HPC platform of Table 1.
type System struct {
	Name          string
	GPUs          int
	GPUModel      string
	GPUMemoryGB   float64 // per GPU
	CPUMemoryGB   float64 // per node
	UsableGPUs    int     // GPUs usable for balanced simulation
	UsableMemGBpG float64 // usable simulation memory per GPU (metadata deducted)
}

// Table1 lists the paper's three HPC systems.
func Table1() []System {
	return []System{
		{Name: "Frontier (ORNL)", GPUs: 4, GPUModel: "AMD MI250X",
			GPUMemoryGB: 128, CPUMemoryGB: 512, UsableGPUs: 4, UsableMemGBpG: 64},
		{Name: "Summit (ORNL)", GPUs: 6, GPUModel: "NVIDIA V100",
			GPUMemoryGB: 16, CPUMemoryGB: 512, UsableGPUs: 4, UsableMemGBpG: 8},
		{Name: "Perlmutter (NERSC)", GPUs: 4, GPUModel: "NVIDIA A100",
			GPUMemoryGB: 40, CPUMemoryGB: 256, UsableGPUs: 4, UsableMemGBpG: 32},
	}
}

// MemoryUtilization returns the fraction of a node's total memory
// (GPU + CPU) that baseline state-vector simulation can actually use — the
// §3.3 underutilization numbers (Frontier 25%, Summit 5.3%, Perlmutter
// 30.8% with the paper's accounting).
func (s System) MemoryUtilization() float64 {
	totalGB := float64(s.GPUs)*s.GPUMemoryGB + s.CPUMemoryGB
	usableGB := float64(s.UsableGPUs) * s.UsableMemGBpG
	return usableGB / totalGB
}

// CopyCostEntry is one bar of Figure 10: the state-copy cost of a machine,
// normalized to its own single-gate execution time.
type CopyCostEntry struct {
	Machine string
	Memory  string
	// Cost is the copy time in gate-equivalents.
	Cost float64
}

// Figure10Table returns the paper's six profiled systems. Server CPUs pay
// the most (slower DDR4 plus faster gate kernels); HBM2 GPUs the least.
func Figure10Table() []CopyCostEntry {
	return []CopyCostEntry{
		{Machine: "Nvidia RTX 3060 (desktop)", Memory: "12 GB GDDR5", Cost: 10},
		{Machine: "AMD Ryzen 3800x (desktop)", Memory: "16 GB DDR4", Cost: 18},
		{Machine: "Intel Core i7 (desktop)", Memory: "16 GB DDR4", Cost: 20},
		{Machine: "Intel Xeon 6138 (server)", Memory: "128 GB DDR4", Cost: 35},
		{Machine: "Intel Xeon 6130 (server)", Memory: "192 GB DDR4", Cost: 40},
		{Machine: "Nvidia Tesla V100 (server)", Memory: "16 GB HBM2", Cost: 5},
	}
}

// GPUShotModel models Figure 8: how many noisy shots an A100-class GPU can
// usefully run in parallel at a given register width. One shot of an
// n-qubit circuit occupies a utilization fraction U(n) of the device; the
// speedup of p parallel shots saturates at 1/U(n).
type GPUShotModel struct {
	// SaturationQubits is the width at which a single shot saturates the
	// device (≈ 21.6 for the A100 in the paper's measurements).
	SaturationQubits float64
	// MemoryBytes is the device memory (40 GB for the A100).
	MemoryBytes float64
}

// DefaultA100 returns the model fitted to the paper's A100-40GB results.
func DefaultA100() GPUShotModel {
	return GPUShotModel{SaturationQubits: 21.6, MemoryBytes: 40e9}
}

// Utilization returns the device fraction one n-qubit shot occupies.
func (m GPUShotModel) Utilization(n int) float64 {
	u := math.Pow(2, float64(n)-m.SaturationQubits)
	if u > 1 {
		return 1
	}
	return u
}

// Speedup returns the modeled speedup of p parallel shots over one shot at
// width n: min(p, 1/U(n)), clipped by memory capacity.
func (m GPUShotModel) Speedup(p, n int) float64 {
	if float64(p)*StatevectorBytes(n) > m.MemoryBytes {
		// Cannot host p state vectors at all.
		maxP := math.Floor(m.MemoryBytes / StatevectorBytes(n))
		if maxP < 1 {
			return 0
		}
		p = int(maxP)
	}
	limit := 1 / m.Utilization(n)
	if float64(p) < limit {
		return float64(p)
	}
	return limit
}

// MemoryUsage returns the amplitude memory of p parallel n-qubit shots.
func (m GPUShotModel) MemoryUsage(p, n int) float64 {
	return float64(p) * StatevectorBytes(n)
}

// NoisyScalingModel extrapolates Figure 5: noisy multi-shot simulation time
// and memory versus width, anchored at a host-measured (width, seconds)
// point. Time doubles per qubit (O(2^n) per gate, gate count linear in n
// for BV adds another linear factor).
type NoisyScalingModel struct {
	AnchorQubits  int
	AnchorSeconds float64
	// GateGrowth is the per-qubit multiplicative gate-count factor
	// (BV ≈ (n+…)/n ≈ linear; we fold it in as measured).
	GateGrowth float64
}

// SecondsAt extrapolates the simulation time at width n.
func (m NoisyScalingModel) SecondsAt(n int) float64 {
	dn := float64(n - m.AnchorQubits)
	growth := math.Pow(2, dn)
	if m.GateGrowth > 0 {
		growth *= math.Pow(m.GateGrowth, dn)
	}
	return m.AnchorSeconds * growth
}
