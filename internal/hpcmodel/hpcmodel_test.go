package hpcmodel

import (
	"math"
	"testing"
)

func TestMemoryFormulas(t *testing.T) {
	if got := StatevectorBytes(10); got != 16*1024 {
		t.Fatalf("statevector bytes %v", got)
	}
	if got := DensityMatrixBytes(5); got != 16*1024 {
		t.Fatalf("density bytes %v", got)
	}
	// Density matrix of n qubits equals state vector of 2n qubits.
	if DensityMatrixBytes(8) != StatevectorBytes(16) {
		t.Fatal("4^n relation broken")
	}
}

func TestFigure4Crossovers(t *testing.T) {
	// Paper: a 16 GB laptop runs 30 qubits as a state vector but El
	// Capitan cannot hold 25 qubits as a density matrix... (it holds
	// fewer than 25; check both anchors).
	if got := MaxQubitsStatevector(LaptopMemoryBytes); got != 29 && got != 30 {
		t.Fatalf("laptop statevector qubits %d", got)
	}
	if got := MaxQubitsDensityMatrix(ElCapitanMemoryBytes); got >= 25 {
		t.Fatalf("El Capitan density qubits %d, paper says < 25", got)
	}
	if MaxQubitsDensityMatrix(LaptopMemoryBytes) >= MaxQubitsStatevector(LaptopMemoryBytes) {
		t.Fatal("density should always hold fewer qubits")
	}
}

func TestTable1Utilization(t *testing.T) {
	systems := Table1()
	if len(systems) != 3 {
		t.Fatalf("%d systems", len(systems))
	}
	want := map[string]float64{ // §3.3's underutilization figures
		"Frontier (ORNL)":    0.25,
		"Summit (ORNL)":      0.053,
		"Perlmutter (NERSC)": 0.308,
	}
	for _, s := range systems {
		got := s.MemoryUtilization()
		if math.Abs(got-want[s.Name]) > 0.01 {
			t.Errorf("%s utilization %.3f, want %.3f", s.Name, got, want[s.Name])
		}
	}
}

func TestFigure10Table(t *testing.T) {
	entries := Figure10Table()
	if len(entries) != 6 {
		t.Fatalf("%d entries", len(entries))
	}
	byName := map[string]float64{}
	for _, e := range entries {
		if e.Cost <= 0 {
			t.Errorf("%s non-positive cost", e.Machine)
		}
		byName[e.Machine] = e.Cost
	}
	// Paper's shape: server CPUs most expensive, HBM2 GPU least.
	if byName["Intel Xeon 6130 (server)"] <= byName["Intel Core i7 (desktop)"] {
		t.Fatal("server CPU should cost more than desktop")
	}
	if byName["Nvidia Tesla V100 (server)"] >= byName["Nvidia RTX 3060 (desktop)"] {
		t.Fatal("HBM2 GPU should cost least")
	}
}

func TestGPUShotModelShape(t *testing.T) {
	m := DefaultA100()
	// Figure 8's shape: 20 qubits gain ~3x, saturating; >= 24 qubits gain
	// nothing.
	s20 := m.Speedup(16, 20)
	if s20 < 2 || s20 > 4 {
		t.Fatalf("20-qubit parallel speedup %v, want ~3", s20)
	}
	if s := m.Speedup(16, 24); s > 1.05 {
		t.Fatalf("24-qubit speedup %v, want ~1", s)
	}
	// Monotone in p until saturation.
	if m.Speedup(2, 20) > m.Speedup(4, 20) {
		t.Fatal("speedup not monotone in parallel shots")
	}
	// One shot is the unit baseline.
	if s := m.Speedup(1, 22); math.Abs(s-1) > 1e-9 {
		t.Fatalf("single-shot speedup %v", s)
	}
}

func TestGPUShotModelMemory(t *testing.T) {
	m := DefaultA100()
	// 25 qubits * 16 shots = 8 GB — fits; usage matches formula.
	if got := m.MemoryUsage(16, 25); math.Abs(got-16*StatevectorBytes(25)) > 1 {
		t.Fatalf("memory usage %v", got)
	}
	// 30 qubits (16 GB each): only 2 fit in 40 GB.
	if s := m.Speedup(8, 30); s > 2.01 {
		t.Fatalf("memory cap not enforced: %v", s)
	}
}

func TestNoisyScalingModel(t *testing.T) {
	m := NoisyScalingModel{AnchorQubits: 12, AnchorSeconds: 10, GateGrowth: 1.05}
	if got := m.SecondsAt(12); got != 10 {
		t.Fatalf("anchor %v", got)
	}
	if m.SecondsAt(13) <= 2*10*0.99 {
		t.Fatalf("per-qubit growth too slow: %v", m.SecondsAt(13))
	}
	// Exponential shape: 4 qubits ≈ 16x or more with gate growth.
	if m.SecondsAt(16)/m.SecondsAt(12) < 16 {
		t.Fatal("scaling not exponential")
	}
}
