package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"tqsim/internal/rng"
)

func uniform(dim int) Dist {
	p := make([]float64, dim)
	for i := range p {
		p[i] = 1 / float64(dim)
	}
	return NewDist(p)
}

func point(dim, at int) Dist {
	p := make([]float64, dim)
	p[at] = 1
	return NewDist(p)
}

func randomDist(dim int, r *rng.RNG) Dist {
	p := make([]float64, dim)
	var sum float64
	for i := range p {
		p[i] = r.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return NewDist(p)
}

func TestStateFidelityIdentical(t *testing.T) {
	r := rng.New(1)
	d := randomDist(16, r)
	if f := StateFidelity(d, d); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self fidelity %v", f)
	}
}

func TestStateFidelityOrthogonal(t *testing.T) {
	a, b := point(8, 0), point(8, 5)
	if f := StateFidelity(a, b); f != 0 {
		t.Fatalf("orthogonal fidelity %v", f)
	}
}

func TestStateFidelitySymmetric(t *testing.T) {
	r := rng.New(2)
	a, b := randomDist(16, r), randomDist(16, r)
	if math.Abs(StateFidelity(a, b)-StateFidelity(b, a)) > 1e-12 {
		t.Fatal("fidelity not symmetric")
	}
}

func TestStateFidelityRange(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		a, b := randomDist(8, r), randomDist(8, r)
		f := StateFidelity(a, b)
		return f >= 0 && f <= 1+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformFidelityOfPoint(t *testing.T) {
	// F_s(point, uniform) = (sqrt(1/D))^2 = 1/D.
	d := point(16, 3)
	if f := UniformFidelity(d); math.Abs(f-1.0/16) > 1e-12 {
		t.Fatalf("uniform fidelity %v, want 1/16", f)
	}
}

func TestNormalizedFidelityAnchors(t *testing.T) {
	ideal := point(16, 3)
	// Perfect output -> 1.
	if f := NormalizedFidelity(ideal, ideal); math.Abs(f-1) > 1e-12 {
		t.Fatalf("perfect normalized fidelity %v", f)
	}
	// Uniform output -> 0 (the property Equation 9 exists for).
	if f := NormalizedFidelity(ideal, uniform(16)); math.Abs(f) > 1e-12 {
		t.Fatalf("uniform normalized fidelity %v", f)
	}
}

func TestNormalizedFidelityUniformIdeal(t *testing.T) {
	// Degenerate case: ideal itself uniform falls back to raw fidelity.
	u := uniform(8)
	if f := NormalizedFidelity(u, u); math.Abs(f-1) > 1e-12 {
		t.Fatalf("degenerate case %v", f)
	}
}

func TestFromCounts(t *testing.T) {
	counts := map[uint64]int{0: 3, 3: 1}
	d := FromCounts(counts, 4)
	if math.Abs(d.P[0]-0.75) > 1e-12 || math.Abs(d.P[3]-0.25) > 1e-12 {
		t.Fatalf("FromCounts %v", d.P)
	}
	if err := d.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	empty := FromCounts(nil, 4)
	if empty.Sum() != 0 {
		t.Fatal("empty counts should give zero mass")
	}
}

func TestFromCountsIgnoresOutOfRange(t *testing.T) {
	d := FromCounts(map[uint64]int{0: 1, 100: 1}, 4)
	if math.Abs(d.P[0]-0.5) > 1e-12 {
		t.Fatalf("out-of-range key mishandled: %v", d.P)
	}
}

func TestTVDProperties(t *testing.T) {
	a, b := point(4, 0), point(4, 3)
	if v := TVD(a, b); math.Abs(v-1) > 1e-12 {
		t.Fatalf("disjoint TVD %v", v)
	}
	if v := TVD(a, a); v != 0 {
		t.Fatalf("self TVD %v", v)
	}
	r := rng.New(3)
	x, y := randomDist(8, r), randomDist(8, r)
	if math.Abs(TVD(x, y)-TVD(y, x)) > 1e-12 {
		t.Fatal("TVD not symmetric")
	}
}

func TestMSE(t *testing.T) {
	if v := MSE([]float64{1, 2, 3}, []float64{1, 2, 3}); v != 0 {
		t.Fatalf("self MSE %v", v)
	}
	if v := MSE([]float64{0, 0}, []float64{1, 2}); math.Abs(v-2.5) > 1e-12 {
		t.Fatalf("MSE %v, want 2.5", v)
	}
	if v := MSE(nil, nil); v != 0 {
		t.Fatalf("empty MSE %v", v)
	}
}

func TestHellinger(t *testing.T) {
	a := point(4, 0)
	if h := HellingerDistance(a, a); h > 1e-9 {
		t.Fatalf("self Hellinger %v", h)
	}
	if h := HellingerDistance(a, point(4, 1)); math.Abs(h-1) > 1e-12 {
		t.Fatalf("disjoint Hellinger %v", h)
	}
}

func TestValidateCatchesBadDistributions(t *testing.T) {
	if err := NewDist([]float64{0.5, 0.4}).Validate(1e-6); err == nil {
		t.Fatal("sub-normalized distribution accepted")
	}
	if err := NewDist([]float64{1.2, -0.2}).Validate(1e-6); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Fatalf("mean %v", m)
	}
	if m := Max(xs); m != 4 {
		t.Fatalf("max %v", m)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("stddev %v", s)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty-input conventions broken")
	}
}

func TestStandardError(t *testing.T) {
	if se := StandardError(2, 4); se != 1 {
		t.Fatalf("standard error %v", se)
	}
	if !math.IsInf(StandardError(1, 0), 1) {
		t.Fatal("zero-N standard error should be +Inf")
	}
}

func TestDimensionMismatchesPanic(t *testing.T) {
	a, b := uniform(4), uniform(8)
	for _, f := range []func(){
		func() { StateFidelity(a, b) },
		func() { TVD(a, b) },
		func() { MSE([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("dimension mismatch accepted")
				}
			}()
			f()
		}()
	}
}

func TestMergeCountsOrderIndependent(t *testing.T) {
	parts := []map[uint64]int{
		{0: 3, 1: 2},
		{1: 5, 7: 1},
		{0: 1, 7: 4, 9: 2},
	}
	want := map[uint64]int{0: 4, 1: 7, 7: 5, 9: 2}
	// Every merge order must produce the identical histogram.
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}}
	for _, ord := range orders {
		got := map[uint64]int{}
		for _, i := range ord {
			MergeCounts(got, parts[i])
		}
		if len(got) != len(want) {
			t.Fatalf("order %v: support %d", ord, len(got))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("order %v: key %d = %d, want %d", ord, k, got[k], v)
			}
		}
	}
}
