package metrics

import (
	"math"
	"sort"
	"testing"
	"time"

	"tqsim/internal/rng"
)

// sampleSets generates the three distribution shapes the quantile bound is
// pinned on: uniform (flat density), exponential (heavy right tail — the
// shape real latencies take under load) and bimodal (cache-hit vs
// cache-miss style two-cluster latencies).
func sampleSets(n int, seed uint64) map[string][]time.Duration {
	r := rng.New(seed)
	uniform := make([]time.Duration, n)
	expo := make([]time.Duration, n)
	bimodal := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		// Uniform on [1ms, 100ms).
		uniform[i] = time.Millisecond + time.Duration(r.Float64()*99e6)
		// Exponential with mean 10ms (clamped away from zero).
		expo[i] = time.Duration(math.Max(1, -math.Log(1-r.Float64())*10e6))
		// Bimodal: 70% near 1ms, 30% near 80ms, each with ±20% jitter.
		mode := 1e6
		if r.Float64() < 0.3 {
			mode = 80e6
		}
		bimodal[i] = time.Duration(mode * (0.8 + 0.4*r.Float64()))
	}
	return map[string][]time.Duration{"uniform": uniform, "exponential": expo, "bimodal": bimodal}
}

// exactQuantile is the reference: the rank-⌈qN⌉ order statistic.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestLatencyHistQuantileAccuracy pins the documented error bound: for
// uniform, exponential and bimodal samples, every reported p50/p95/p99 is
// an upper bound on the exact sample quantile with relative error below
// QuantileRelErrorBound (2^(1/8)-1 ≈ 9.05%).
func TestLatencyHistQuantileAccuracy(t *testing.T) {
	const n = 20000
	for name, samples := range sampleSets(n, 12345) {
		h := &LatencyHist{}
		for _, d := range samples {
			h.Record(d)
		}
		sorted := append([]time.Duration(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0.5, 0.95, 0.99} {
			got := h.Quantile(q)
			want := exactQuantile(sorted, q)
			if got < want {
				t.Errorf("%s q=%.2f: histogram quantile %v below exact %v (must be an upper bound)",
					name, q, got, want)
			}
			relErr := float64(got-want) / float64(want)
			// +1ns absolute slack for the integer rounding of bucket edges.
			if relErr > QuantileRelErrorBound+1/float64(want) {
				t.Errorf("%s q=%.2f: relative error %.4f exceeds bound %.4f (got %v, exact %v)",
					name, q, relErr, QuantileRelErrorBound, got, want)
			}
		}
		if h.Count() != n {
			t.Errorf("%s: count %d, want %d", name, h.Count(), n)
		}
	}
}

// TestLatencyHistMerge verifies merge(h1, h2) equals the histogram of the
// concatenated samples: identical bucket arrays, counts, means and
// quantiles.
func TestLatencyHistMerge(t *testing.T) {
	for name, samples := range sampleSets(8000, 999) {
		whole := &LatencyHist{}
		h1, h2 := &LatencyHist{}, &LatencyHist{}
		for i, d := range samples {
			whole.Record(d)
			if i%2 == 0 {
				h1.Record(d)
			} else {
				h2.Record(d)
			}
		}
		h1.Merge(h2)
		if h1.Count() != whole.Count() {
			t.Fatalf("%s: merged count %d != whole %d", name, h1.Count(), whole.Count())
		}
		if h1.Mean() != whole.Mean() {
			t.Errorf("%s: merged mean %v != whole %v", name, h1.Mean(), whole.Mean())
		}
		mb, wb := h1.Buckets(), whole.Buckets()
		for i := range mb {
			if mb[i] != wb[i] {
				t.Fatalf("%s: bucket %d: merged %d != whole %d", name, i, mb[i], wb[i])
			}
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1} {
			if h1.Quantile(q) != whole.Quantile(q) {
				t.Errorf("%s q=%.2f: merged %v != whole %v", name, q, h1.Quantile(q), whole.Quantile(q))
			}
		}
	}
}

// TestLatencyHistEdges covers the clamping paths: zero/negative durations,
// the 1ns floor, and quantiles on an empty histogram.
func TestLatencyHistEdges(t *testing.T) {
	h := &LatencyHist{}
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zero quantiles and mean")
	}
	h.Record(0)
	h.Record(-5 * time.Second)
	h.Record(1)
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("all-floor samples: q1 = %v, want 1ns", got)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
}
