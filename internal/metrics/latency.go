package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Log-bucketed latency histogram shared by the serve layer (server-side
// per-request accounting in /v1/stats) and internal/loadgen (client-side
// measurement in tqsimgen), so the two views are directly comparable and
// mergeable.
//
// Buckets grow geometrically with latBucketsPerOctave buckets per factor-2
// of nanoseconds: bucket i covers (2^((i-1)/8), 2^(i/8)] ns. 512 buckets
// span 64 octaves — 1 ns to ~585 years — so no latency a service can
// produce falls off the end.

const (
	// latBucketsPerOctave buckets per power of two of nanoseconds sets the
	// resolution: each bucket's bounds are a factor 2^(1/8) ≈ 1.0905 apart.
	latBucketsPerOctave = 8
	latNumBuckets       = 512
)

// QuantileRelErrorBound is the documented worst-case relative error of
// LatencyHist.Quantile versus the exact sample quantile: the returned value
// is the upper edge of the bucket holding the rank-⌈qN⌉ sample, and that
// sample is greater than upper/2^(1/8), so the error is strictly below
// 2^(1/8)-1 ≈ 9.05%. TestLatencyHistQuantileAccuracy pins this bound on
// uniform, exponential and bimodal samples.
var QuantileRelErrorBound = math.Pow(2, 1.0/latBucketsPerOctave) - 1

// LatencyHist is a mergeable, log-bucketed latency histogram safe for
// concurrent use: Record and the read side touch only atomics, so a
// server can record per-request latencies while /v1/stats computes
// quantiles with no lock and no torn counters. The zero value is ready to
// use (do not copy a LatencyHist after first use).
type LatencyHist struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	buckets [latNumBuckets]atomic.Uint64
}

// latBucketOf maps a duration to its bucket index.
func latBucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 1 {
		return 0
	}
	i := int(math.Ceil(math.Log2(float64(ns)) * latBucketsPerOctave))
	if i < 0 {
		i = 0
	}
	if i >= latNumBuckets {
		i = latNumBuckets - 1
	}
	return i
}

// latBucketUpper returns bucket i's inclusive upper bound.
func latBucketUpper(i int) time.Duration {
	return time.Duration(math.Ceil(math.Pow(2, float64(i)/latBucketsPerOctave)))
}

// Record adds one observation. Non-positive durations land in the lowest
// bucket.
func (h *LatencyHist) Record(d time.Duration) {
	h.buckets[latBucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean of the recorded durations (exact, not
// bucketed), or 0 when empty.
func (h *LatencyHist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / int64(n))
}

// Merge adds o's observations into h. Because buckets are additive,
// merge(h1, h2) holds exactly the histogram of the concatenated samples:
// every quantile of the merged histogram equals the quantile of a single
// histogram fed both sample sets (TestLatencyHistMerge).
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sumNS.Add(o.sumNS.Load())
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) of the
// recorded durations: the upper edge of the bucket containing the sample
// of rank ⌈q·N⌉. The relative error versus the exact sample quantile is
// below QuantileRelErrorBound. Returns 0 on an empty histogram.
//
// The bucket array is snapshotted first and the rank computed from the
// snapshot's own total, so a quantile read concurrent with Record is
// internally consistent (it reflects some valid recent sample set).
func (h *LatencyHist) Quantile(q float64) time.Duration {
	var snap [latNumBuckets]uint64
	var total uint64
	for i := range h.buckets {
		snap[i] = h.buckets[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range snap {
		cum += n
		if cum >= rank {
			return latBucketUpper(i)
		}
	}
	return latBucketUpper(latNumBuckets - 1)
}

// Buckets returns a snapshot of the raw bucket counts (index i covers
// (2^((i-1)/8), 2^(i/8)] ns). Exposed for tests and serialization.
func (h *LatencyHist) Buckets() []uint64 {
	out := make([]uint64, latNumBuckets)
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}
