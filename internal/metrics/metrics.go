// Package metrics implements the paper's figures of merit: state fidelity
// over outcome distributions (Equation 8), the normalized fidelity of
// Lubinski et al. and Hashim et al. (Equation 9), plus the auxiliary
// distances (total variation, mean squared error) used in the QAOA
// landscape study.
package metrics

import (
	"fmt"
	"math"
	"slices"
)

// Dist is a dense probability distribution over 2^n basis outcomes.
type Dist struct {
	P []float64
}

// NewDist wraps a dense probability vector. The vector is not copied.
func NewDist(p []float64) Dist { return Dist{P: p} }

// FromCounts converts a shot histogram into a distribution over dim
// outcomes.
func FromCounts(counts map[uint64]int, dim int) Dist {
	p := make([]float64, dim)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return Dist{P: p}
	}
	inv := 1 / float64(total)
	for k, c := range counts {
		if k < uint64(dim) {
			p[k] += float64(c) * inv
		}
	}
	return Dist{P: p}
}

// Dim returns the outcome-space size.
func (d Dist) Dim() int { return len(d.P) }

// Sum returns the total probability mass (≈1 for a proper distribution).
func (d Dist) Sum() float64 {
	var s float64
	for _, x := range d.P {
		s += x
	}
	return s
}

// Validate returns an error when the distribution has negative entries or
// mass far from one.
func (d Dist) Validate(tol float64) error {
	var s float64
	for i, x := range d.P {
		if x < -tol {
			return fmt.Errorf("metrics: negative probability %g at %d", x, i)
		}
		s += x
	}
	if math.Abs(s-1) > tol {
		return fmt.Errorf("metrics: total mass %g deviates from 1", s)
	}
	return nil
}

// StateFidelity computes Equation 8:
//
//	F_s(P_ideal, P_out) = ( sum_x sqrt(P_ideal(x) * P_out(x)) )^2
//
// i.e. the squared Bhattacharyya coefficient of the two distributions.
func StateFidelity(ideal, out Dist) float64 {
	if ideal.Dim() != out.Dim() {
		panic("metrics: dimension mismatch in StateFidelity")
	}
	var s float64
	for i, p := range ideal.P {
		q := out.P[i]
		if p > 0 && q > 0 {
			s += math.Sqrt(p * q)
		}
	}
	return s * s
}

// UniformFidelity computes F_s(P_ideal, P_uniform), the random-guessing
// floor subtracted by the normalized metric.
func UniformFidelity(ideal Dist) float64 {
	var s float64
	for _, p := range ideal.P {
		if p > 0 {
			s += math.Sqrt(p)
		}
	}
	d := float64(ideal.Dim())
	return s * s / d
}

// NormalizedFidelity computes Equation 9:
//
//	F = (F_s(ideal, out) - F_s(ideal, uni)) / (1 - F_s(ideal, uni))
//
// which is 1 for a perfect output and 0 for a uniformly random one.
func NormalizedFidelity(ideal, out Dist) float64 {
	fu := UniformFidelity(ideal)
	if fu >= 1-1e-9 {
		// Ideal distribution is (numerically) uniform; Equation 9's
		// denominator vanishes and the metric is undefined. Return the raw
		// fidelity as the sensible limit.
		return StateFidelity(ideal, out)
	}
	return (StateFidelity(ideal, out) - fu) / (1 - fu)
}

// TVD returns the total variation distance (1/2) * sum |p - q|.
func TVD(a, b Dist) float64 {
	if a.Dim() != b.Dim() {
		panic("metrics: dimension mismatch in TVD")
	}
	var s float64
	for i := range a.P {
		s += math.Abs(a.P[i] - b.P[i])
	}
	return s / 2
}

// TVDCounts returns the total variation distance between two histograms of
// `total` outcomes each, without densifying to the full 2^n outcome space —
// the cross-backend conformance comparisons use it on wide registers where
// a Dist would be infeasible.
func TVDCounts(a, b map[uint64]int, total int) float64 {
	// Accumulate in sorted key order: float addition is not associative,
	// so summing in randomized map order would make the distance drift in
	// the last bits from run to run.
	keys := make([]uint64, 0, len(a)+len(b))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, seen := a[k]; !seen {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	var s float64
	for _, k := range keys {
		s += math.Abs(float64(a[k] - b[k]))
	}
	return s / (2 * float64(total))
}

// MergeCounts adds the src histogram into dst. Histogram merging is
// commutative and associative, which is what makes sharded execution
// deterministic: any partition of a job's batches over any worker set
// merges to the identical histogram, regardless of completion order.
func MergeCounts(dst, src map[uint64]int) {
	for k, v := range src {
		dst[k] += v
	}
}

// MSE returns the mean squared error between two real-valued series, used
// for the QAOA cost-landscape comparison (Figure 18).
func MSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: length mismatch in MSE")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// HellingerDistance returns sqrt(1 - BC) where BC is the Bhattacharyya
// coefficient — an auxiliary distance used in tests.
func HellingerDistance(a, b Dist) float64 {
	bc := math.Sqrt(StateFidelity(a, b))
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// StandardError returns sigma/sqrt(N) — the paper's Equation 2 for the
// statistical error of an N-trajectory ensemble.
func StandardError(sigma float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return sigma / math.Sqrt(float64(n))
}
