package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"tqsim/internal/gate"
)

// Digest returns a collision-resistant structural identity of the circuit:
// a sha256 over the register width and the full gate list — kind, operand
// qubits, parameter bits, and (for explicit-matrix gates) every matrix
// entry's bits. Unlike a QASM rendering it is total: gates with no QASM 2.0
// form (raw unitaries, SY, SW) digest their content instead of falling back
// to a name/shape identity, so two same-shape circuits with different
// unitaries never collide. The name is deliberately excluded — the digest
// identifies what the circuit computes, and callers that need the label in
// their key (the result store echoes it in responses) mix it in themselves.
func (c *Circuit) Digest() string {
	h := newDigest(c)
	for _, g := range c.Gates {
		writeGate(h, g)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// PrefixDigests returns the structural digest of each gate prefix
// Gates[0:cut] for a strictly increasing cut list (each cut in [0, Len]).
// All digests come from one streaming pass: digest i commits the width and
// the first cuts[i] gates, so it equals Digest() of the corresponding
// prefix slice. This is the cross-job snapshot-cache key: the ideal state
// at a plan boundary depends only on the gates before it, so two circuits
// sharing a gate prefix share the digest — and the cached state — at every
// common boundary, whatever their suffixes or names.
func (c *Circuit) PrefixDigests(cuts []int) []string {
	h := newDigest(c)
	out := make([]string, 0, len(cuts))
	prev := 0
	for _, cut := range cuts {
		if cut < prev || cut > len(c.Gates) {
			panic(fmt.Sprintf("circuit %q: bad prefix cut %d (prev %d, len %d)",
				c.Name, cut, prev, len(c.Gates)))
		}
		for _, g := range c.Gates[prev:cut] {
			writeGate(h, g)
		}
		// Sum appends to a copy of the running state without resetting it,
		// so each boundary digest commits exactly the gates seen so far.
		out = append(out, hex.EncodeToString(h.Sum(nil)))
		prev = cut
	}
	return out
}

func newDigest(c *Circuit) hash.Hash {
	h := sha256.New()
	var buf [8]byte
	h.Write([]byte("tqsim-circuit-v1\x00"))
	binary.LittleEndian.PutUint64(buf[:], uint64(c.NumQubits))
	h.Write(buf[:])
	return h
}

// writeGate commits one gate to the digest with length-prefixed fields, so
// distinct gate lists can never produce the same byte stream.
func writeGate(h hash.Hash, g gate.Gate) {
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.Kind))
	put(uint64(len(g.Qubits)))
	for _, q := range g.Qubits {
		put(uint64(q))
	}
	put(uint64(len(g.Params)))
	for _, p := range g.Params {
		put(math.Float64bits(p))
	}
	if g.U == nil {
		put(0)
		return
	}
	put(uint64(g.U.N))
	for _, a := range g.U.Data {
		put(math.Float64bits(real(a)))
		put(math.Float64bits(imag(a)))
	}
}
