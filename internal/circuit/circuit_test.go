package circuit

import (
	"strings"
	"testing"

	"tqsim/internal/gate"
)

func bell() *Circuit {
	return New("bell", 2).H(0).CX(0, 1)
}

func TestBuilderChaining(t *testing.T) {
	c := New("chain", 3).H(0).CX(0, 1).RZ(0.5, 2).CCX(0, 1, 2).SWAP(0, 2)
	if c.Len() != 5 {
		t.Fatalf("len %d, want 5", c.Len())
	}
	if c.Width() != 3 {
		t.Fatalf("width %d", c.Width())
	}
}

func TestAppendValidatesBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range qubit accepted")
		}
	}()
	New("bad", 2).X(2)
}

func TestAppendValidatesGate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid gate accepted")
		}
	}()
	New("bad", 2).Append(gate.Gate{Kind: gate.KindCX, Qubits: []int{0}})
}

func TestDepth(t *testing.T) {
	// H(0) H(1) run in parallel; CX serializes; X(0) adds one more level.
	c := New("d", 2).H(0).H(1).CX(0, 1).X(0)
	if got := c.Depth(); got != 3 {
		t.Fatalf("depth %d, want 3", got)
	}
	if got := New("e", 4).Depth(); got != 0 {
		t.Fatalf("empty depth %d", got)
	}
}

func TestTwoQubitGates(t *testing.T) {
	c := New("2q", 3).H(0).CX(0, 1).CZ(1, 2).T(2).CCX(0, 1, 2)
	if got := c.TwoQubitGates(); got != 3 {
		t.Fatalf("two-qubit count %d, want 3", got)
	}
}

func TestSliceSharing(t *testing.T) {
	c := New("s", 2).H(0).CX(0, 1).X(1).Z(0)
	sl := c.Slice(1, 3)
	if sl.Len() != 2 {
		t.Fatalf("slice len %d", sl.Len())
	}
	if sl.Gates[0].Kind != gate.KindCX || sl.Gates[1].Kind != gate.KindX {
		t.Fatal("slice picked wrong gates")
	}
	// Full-capacity slicing must protect the parent from appends.
	sl.Append(gate.New(gate.KindH, 0))
	if c.Gates[3].Kind != gate.KindZ {
		t.Fatal("appending to a slice clobbered the parent circuit")
	}
}

func TestSliceBounds(t *testing.T) {
	c := bell()
	for _, bad := range [][2]int{{-1, 1}, {0, 3}, {2, 1}} {
		func() {
			defer func() { recover() }()
			c.Slice(bad[0], bad[1])
			t.Fatalf("bad slice %v accepted", bad)
		}()
	}
}

func TestSplitAt(t *testing.T) {
	c := New("sp", 2).H(0).X(1).CX(0, 1).Z(0).H(1)
	parts := c.SplitAt(2, 3)
	if len(parts) != 3 {
		t.Fatalf("parts %d", len(parts))
	}
	if parts[0].Len() != 2 || parts[1].Len() != 1 || parts[2].Len() != 2 {
		t.Fatalf("part lengths %d %d %d", parts[0].Len(), parts[1].Len(), parts[2].Len())
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != c.Len() {
		t.Fatal("split lost gates")
	}
}

func TestSplitAtRejectsBadBounds(t *testing.T) {
	c := New("sp", 2).H(0).X(1).CX(0, 1)
	for _, bad := range [][]int{{0}, {3}, {2, 2}, {2, 1}} {
		func() {
			defer func() { recover() }()
			c.SplitAt(bad...)
			t.Fatalf("bad bounds %v accepted", bad)
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	c := bell()
	cl := c.Clone()
	cl.X(0)
	if c.Len() != 2 {
		t.Fatal("clone shares gate slice growth with parent")
	}
}

func TestInverseReversesAndDaggers(t *testing.T) {
	c := New("inv", 2).H(0).S(1).CX(0, 1).T(0)
	inv := c.Inverse()
	if inv.Len() != c.Len() {
		t.Fatal("inverse changed length")
	}
	if inv.Gates[0].Kind != gate.KindTdg {
		t.Fatalf("first inverse gate %v", inv.Gates[0].Kind)
	}
	if inv.Gates[3].Kind != gate.KindH {
		t.Fatalf("last inverse gate %v", inv.Gates[3].Kind)
	}
}

func TestConcat(t *testing.T) {
	a := bell()
	b := New("x", 2).X(0)
	a.Concat(b)
	if a.Len() != 3 {
		t.Fatal("concat failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch accepted")
		}
	}()
	a.Concat(New("w", 3))
}

func TestStringRendering(t *testing.T) {
	s := bell().String()
	if !strings.Contains(s, "h q[0];") || !strings.Contains(s, "cx q[0],q[1];") {
		t.Fatalf("unexpected rendering:\n%s", s)
	}
}

func TestGateKindCounts(t *testing.T) {
	c := New("k", 2).H(0).H(1).CX(0, 1)
	m := c.GateKindCounts()
	if m["h"] != 2 || m["cx"] != 1 {
		t.Fatalf("counts %v", m)
	}
}

func TestNewRejectsZeroQubits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-width circuit accepted")
		}
	}()
	New("z", 0)
}
