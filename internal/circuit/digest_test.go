package circuit

import (
	"testing"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
)

// phaseGate returns a 1-qubit explicit-unitary diag(1, p) gate.
func phaseGate(p complex128, q int) gate.Gate {
	u := qmath.Identity(2)
	u.Set(1, 1, p)
	return gate.NewUnitary(u, "phase", q)
}

// TestDigestDistinguishesUnitaries is the collision regression: two
// circuits with the same name, width and gate count, differing only in an
// explicit unitary's matrix (no QASM 2.0 form, so any QASM-based identity
// falls back to name/shape), must digest differently.
func TestDigestDistinguishesUnitaries(t *testing.T) {
	build := func(p complex128) *Circuit {
		c := New("twin", 2)
		c.H(0).CX(0, 1)
		c.Append(phaseGate(p, 1))
		return c
	}
	a, b := build(1i), build(-1i)
	if a.Len() != b.Len() || a.NumQubits != b.NumQubits || a.Name != b.Name {
		t.Fatal("test circuits must share shape")
	}
	if a.Digest() == b.Digest() {
		t.Fatal("circuits differing only in an explicit unitary share a digest")
	}
	// Equal content must stay equal.
	if build(1i).Digest() != a.Digest() {
		t.Fatal("digest is not deterministic")
	}
}

// TestDigestIgnoresName: the digest identifies the computation; labels are
// mixed in by callers that want them.
func TestDigestIgnoresName(t *testing.T) {
	a := New("alpha", 3).H(0).CX(0, 1).CX(1, 2)
	b := New("beta", 3).H(0).CX(0, 1).CX(1, 2)
	if a.Digest() != b.Digest() {
		t.Fatal("digest depends on the circuit name")
	}
}

// TestDigestSensitivity: width, gate kind, operand order and parameters all
// change the digest.
func TestDigestSensitivity(t *testing.T) {
	base := New("c", 3).H(0).CX(0, 1).RZ(0.5, 2)
	variants := []*Circuit{
		New("c", 4).H(0).CX(0, 1).RZ(0.5, 2),  // width
		New("c", 3).H(0).CX(1, 0).RZ(0.5, 2),  // operand order
		New("c", 3).H(0).CZ(0, 1).RZ(0.5, 2),  // kind
		New("c", 3).H(0).CX(0, 1).RZ(0.25, 2), // parameter
		New("c", 3).H(0).CX(0, 1),             // length
	}
	seen := map[string]bool{base.Digest(): true}
	for i, v := range variants {
		d := v.Digest()
		if seen[d] {
			t.Fatalf("variant %d collides with an earlier digest", i)
		}
		seen[d] = true
	}
}

// TestPrefixDigests: the streamed boundary digests must equal Digest() of
// the corresponding truncated circuits, and the full-length cut must equal
// the whole circuit's digest.
func TestPrefixDigests(t *testing.T) {
	c := New("p", 3).H(0).CX(0, 1).CX(1, 2).RZ(0.3, 0).H(2)
	cuts := []int{0, 2, 4, c.Len()}
	got := c.PrefixDigests(cuts)
	if len(got) != len(cuts) {
		t.Fatalf("got %d digests for %d cuts", len(got), len(cuts))
	}
	for i, cut := range cuts {
		trunc := &Circuit{Name: c.Name, NumQubits: c.NumQubits, Gates: c.Gates[:cut]}
		if want := trunc.Digest(); got[i] != want {
			t.Fatalf("cut %d: streamed digest differs from truncated-circuit digest", cut)
		}
	}
	if got[len(got)-1] != c.Digest() {
		t.Fatal("full-length prefix digest differs from Digest()")
	}
}

// TestPrefixDigestsSharedPrefix: circuits equal up to a cut share every
// boundary digest at or before it, and differ after it — the property the
// cross-job snapshot cache keys on.
func TestPrefixDigestsSharedPrefix(t *testing.T) {
	a := New("a", 2).H(0).CX(0, 1).RZ(0.5, 0).H(1)
	b := New("b", 2).H(0).CX(0, 1).RZ(0.7, 0).H(1) // diverges at gate 2
	cuts := []int{2, 4}
	da, db := a.PrefixDigests(cuts), b.PrefixDigests(cuts)
	if da[0] != db[0] {
		t.Fatal("shared 2-gate prefix digests differ")
	}
	if da[1] == db[1] {
		t.Fatal("digests after the divergence point collide")
	}
}

func TestPrefixDigestsBadCutsPanic(t *testing.T) {
	c := New("x", 1).H(0)
	for _, cuts := range [][]int{{2}, {1, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("cuts %v did not panic", cuts)
				}
			}()
			c.PrefixDigests(cuts)
		}()
	}
}
