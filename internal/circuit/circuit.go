// Package circuit defines the quantum circuit intermediate representation
// used everywhere in the simulator: an ordered gate list over a fixed qubit
// register, a fluent builder, slicing into subcircuits (the unit TQSim
// partitions and reuses), and basic structural statistics.
package circuit

import (
	"fmt"
	"strings"

	"tqsim/internal/gate"
)

// Circuit is an ordered list of gates over NumQubits qubits. Measurement is
// implicit: simulators sample all qubits in the computational basis at the
// end of the circuit. Name is a human-readable identifier such as "qft_14".
type Circuit struct {
	Name      string
	NumQubits int
	Gates     []gate.Gate
}

// New returns an empty circuit over n qubits.
func New(name string, n int) *Circuit {
	if n <= 0 {
		panic("circuit: qubit count must be positive")
	}
	return &Circuit{Name: name, NumQubits: n}
}

// Append adds gates to the end of the circuit, validating qubit bounds.
func (c *Circuit) Append(gs ...gate.Gate) *Circuit {
	for _, g := range gs {
		if err := g.Validate(); err != nil {
			panic(fmt.Sprintf("circuit %q: %v", c.Name, err))
		}
		for _, q := range g.Qubits {
			if q >= c.NumQubits {
				panic(fmt.Sprintf("circuit %q: gate %s uses qubit %d outside register of %d",
					c.Name, g, q, c.NumQubits))
			}
		}
		c.Gates = append(c.Gates, g)
	}
	return c
}

// Convenience builders. Each appends one gate and returns the circuit so
// construction chains naturally: c.H(0).CX(0, 1).RZ(0.3, 1).
func (c *Circuit) I(q int) *Circuit   { return c.Append(gate.New(gate.KindI, q)) }
func (c *Circuit) X(q int) *Circuit   { return c.Append(gate.New(gate.KindX, q)) }
func (c *Circuit) Y(q int) *Circuit   { return c.Append(gate.New(gate.KindY, q)) }
func (c *Circuit) Z(q int) *Circuit   { return c.Append(gate.New(gate.KindZ, q)) }
func (c *Circuit) H(q int) *Circuit   { return c.Append(gate.New(gate.KindH, q)) }
func (c *Circuit) S(q int) *Circuit   { return c.Append(gate.New(gate.KindS, q)) }
func (c *Circuit) Sdg(q int) *Circuit { return c.Append(gate.New(gate.KindSdg, q)) }
func (c *Circuit) T(q int) *Circuit   { return c.Append(gate.New(gate.KindT, q)) }
func (c *Circuit) Tdg(q int) *Circuit { return c.Append(gate.New(gate.KindTdg, q)) }
func (c *Circuit) SX(q int) *Circuit  { return c.Append(gate.New(gate.KindSX, q)) }
func (c *Circuit) SY(q int) *Circuit  { return c.Append(gate.New(gate.KindSY, q)) }
func (c *Circuit) SW(q int) *Circuit  { return c.Append(gate.New(gate.KindSW, q)) }
func (c *Circuit) CX(ctl, tgt int) *Circuit {
	return c.Append(gate.New(gate.KindCX, ctl, tgt))
}
func (c *Circuit) CY(ctl, tgt int) *Circuit {
	return c.Append(gate.New(gate.KindCY, ctl, tgt))
}
func (c *Circuit) CZ(a, b int) *Circuit { return c.Append(gate.New(gate.KindCZ, a, b)) }
func (c *Circuit) CH(ctl, tgt int) *Circuit {
	return c.Append(gate.New(gate.KindCH, ctl, tgt))
}
func (c *Circuit) SWAP(a, b int) *Circuit { return c.Append(gate.New(gate.KindSWAP, a, b)) }
func (c *Circuit) CCX(c0, c1, t int) *Circuit {
	return c.Append(gate.New(gate.KindCCX, c0, c1, t))
}
func (c *Circuit) RX(theta float64, q int) *Circuit {
	return c.Append(gate.NewParam(gate.KindRX, []float64{theta}, q))
}
func (c *Circuit) RY(theta float64, q int) *Circuit {
	return c.Append(gate.NewParam(gate.KindRY, []float64{theta}, q))
}
func (c *Circuit) RZ(theta float64, q int) *Circuit {
	return c.Append(gate.NewParam(gate.KindRZ, []float64{theta}, q))
}
func (c *Circuit) P(theta float64, q int) *Circuit {
	return c.Append(gate.NewParam(gate.KindP, []float64{theta}, q))
}
func (c *Circuit) U3(theta, phi, lambda float64, q int) *Circuit {
	return c.Append(gate.NewParam(gate.KindU3, []float64{theta, phi, lambda}, q))
}
func (c *Circuit) CP(theta float64, ctl, tgt int) *Circuit {
	return c.Append(gate.NewParam(gate.KindCP, []float64{theta}, ctl, tgt))
}
func (c *Circuit) CRZ(theta float64, ctl, tgt int) *Circuit {
	return c.Append(gate.NewParam(gate.KindCRZ, []float64{theta}, ctl, tgt))
}

// Len returns the gate count ("circuit length" in the paper's terms).
func (c *Circuit) Len() int { return len(c.Gates) }

// Width returns the qubit count ("circuit width" in the paper's terms).
func (c *Circuit) Width() int { return c.NumQubits }

// TwoQubitGates returns the count of gates acting on two or more qubits.
func (c *Circuit) TwoQubitGates() int {
	n := 0
	for _, g := range c.Gates {
		if g.Arity() >= 2 {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the longest chain of gates that must run
// sequentially because they share qubits.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	for _, g := range c.Gates {
		d := 0
		for _, q := range g.Qubits {
			if level[q] > d {
				d = level[q]
			}
		}
		d++
		for _, q := range g.Qubits {
			level[q] = d
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}

// Clone returns a deep copy; gate slices are copied, matrices shared
// (gates are immutable by convention).
func (c *Circuit) Clone() *Circuit {
	out := New(c.Name, c.NumQubits)
	out.Gates = append([]gate.Gate(nil), c.Gates...)
	return out
}

// Slice returns the subcircuit containing gates [from, to). The result
// shares gate storage with the parent.
func (c *Circuit) Slice(from, to int) *Circuit {
	if from < 0 || to > len(c.Gates) || from > to {
		panic(fmt.Sprintf("circuit %q: bad slice [%d,%d) of %d gates",
			c.Name, from, to, len(c.Gates)))
	}
	return &Circuit{
		Name:      fmt.Sprintf("%s[%d:%d]", c.Name, from, to),
		NumQubits: c.NumQubits,
		Gates:     c.Gates[from:to:to],
	}
}

// SplitAt cuts the circuit into len(bounds)+1 consecutive subcircuits at the
// given gate-index boundaries. Bounds must be strictly increasing and within
// (0, Len).
func (c *Circuit) SplitAt(bounds ...int) []*Circuit {
	prev := 0
	parts := make([]*Circuit, 0, len(bounds)+1)
	for _, b := range bounds {
		if b <= prev || b >= len(c.Gates) {
			panic(fmt.Sprintf("circuit %q: bad split bound %d (prev %d, len %d)",
				c.Name, b, prev, len(c.Gates)))
		}
		parts = append(parts, c.Slice(prev, b))
		prev = b
	}
	parts = append(parts, c.Slice(prev, len(c.Gates)))
	return parts
}

// Inverse returns the adjoint circuit: gates reversed, each replaced by its
// dagger. Useful for QPE's inverse QFT and for mirror-circuit testing.
func (c *Circuit) Inverse() *Circuit {
	out := New(c.Name+"_inv", c.NumQubits)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		out.Append(c.Gates[i].Dagger())
	}
	return out
}

// Concat appends a full copy of other's gates to c. Widths must match.
func (c *Circuit) Concat(other *Circuit) *Circuit {
	if other.NumQubits != c.NumQubits {
		panic(fmt.Sprintf("circuit: concat width mismatch %d vs %d",
			c.NumQubits, other.NumQubits))
	}
	return c.Append(other.Gates...)
}

// String renders the circuit one gate per line, QASM-like.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: %d qubits, %d gates\n", c.Name, c.NumQubits, len(c.Gates))
	for _, g := range c.Gates {
		b.WriteString(g.String())
		b.WriteString(";\n")
	}
	return b.String()
}

// GateKindCounts tallies gates by kind mnemonic, for reporting.
func (c *Circuit) GateKindCounts() map[string]int {
	m := map[string]int{}
	for _, g := range c.Gates {
		m[g.Kind.String()]++
	}
	return m
}
