package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMemoryLRUEviction(t *testing.T) {
	s := mustOpen(t, Config{MaxEntries: 2})
	s.Put("a", []byte("aa"))
	s.Put("b", []byte("bb"))
	if _, ok := s.Get("a"); !ok { // refresh a: b is now least recent
		t.Fatal("a missing before eviction")
	}
	s.Put("c", []byte("cc"))
	if _, ok := s.Get("b"); ok {
		t.Fatal("least-recently-used entry b survived over the cap")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Bytes() != 4 {
		t.Fatalf("Bytes = %d, want 4", s.Bytes())
	}
}

func TestPutOverwriteSameKey(t *testing.T) {
	s := mustOpen(t, Config{MaxEntries: 4})
	s.Put("k", []byte("v1"))
	s.Put("k", []byte("longer-v2"))
	got, ok := s.Get("k")
	if !ok || !bytes.Equal(got, []byte("longer-v2")) {
		t.Fatalf("got %q, %v", got, ok)
	}
	if s.Len() != 1 || s.Bytes() != int64(len("longer-v2")) {
		t.Fatalf("Len %d Bytes %d after overwrite", s.Len(), s.Bytes())
	}
}

func TestDiskPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{MaxEntries: 8, Dir: dir})
	s.Put("deadbeef", []byte(`{"v":1}`))

	// The entry landed as a whole file under its final name.
	body, err := os.ReadFile(filepath.Join(dir, "deadbeef.json"))
	if err != nil || !bytes.Equal(body, []byte(`{"v":1}`)) {
		t.Fatalf("disk body %q, err %v", body, err)
	}

	// A fresh store over the same directory serves it without re-Put.
	s2 := mustOpen(t, Config{MaxEntries: 8, Dir: dir})
	got, ok := s2.Get("deadbeef")
	if !ok || !bytes.Equal(got, []byte(`{"v":1}`)) {
		t.Fatalf("reopened store: got %q, %v", got, ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
}

func TestDiskServesMemoryEvictedEntry(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{MaxEntries: 1, Dir: dir})
	s.Put("old", []byte("old-body"))
	s.Put("new", []byte("new-body")) // evicts "old" from the memory front
	got, ok := s.Get("old")
	if !ok || !bytes.Equal(got, []byte("old-body")) {
		t.Fatalf("disk fallthrough: got %q, %v", got, ok)
	}
}

func TestRescanIgnoresTempAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	s.Put("real", []byte("body"))
	// A crash mid-write leaves a temp file; unrelated files happen too.
	for _, name := range []string{".tmp-12345", "README", "sub.json.bak"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "nested.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Config{Dir: dir})
	if s2.Len() != 1 {
		t.Fatalf("rescan indexed %d entries, want 1", s2.Len())
	}
	if _, ok := s2.Get("real"); !ok {
		t.Fatal("real entry lost in rescan")
	}
}

func TestDiskByteCapEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("x"), 100)
	s := mustOpen(t, Config{MaxEntries: 1, Dir: dir, MaxDiskBytes: 250})
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("k%d", i), body)
	}
	// 400 bytes written into a 250-byte cap: the two oldest are gone — from
	// the index and from disk.
	for i, wantAlive := range []bool{false, false, true, true} {
		key := fmt.Sprintf("k%d", i)
		if _, ok := s.Get(key); ok != wantAlive {
			t.Fatalf("%s alive=%v, want %v", key, ok, wantAlive)
		}
		_, err := os.Stat(filepath.Join(dir, key+".json"))
		if alive := err == nil; alive != wantAlive {
			t.Fatalf("%s file exists=%v, want %v", key, alive, wantAlive)
		}
	}
	if s.Bytes() != 200 {
		t.Fatalf("Bytes = %d, want 200", s.Bytes())
	}
}

func TestReopenTrimsDirtyDirectoryOldestFirst(t *testing.T) {
	dir := t.TempDir()
	// Simulate a directory written under a larger (or absent) cap, with
	// distinct mtimes so the rescan's age ordering is deterministic.
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 4; i++ {
		p := filepath.Join(dir, fmt.Sprintf("k%d.json", i))
		if err := os.WriteFile(p, bytes.Repeat([]byte("y"), 100), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	s := mustOpen(t, Config{Dir: dir, MaxDiskBytes: 250})
	if s.Len() != 2 || s.Bytes() != 200 {
		t.Fatalf("after trim: Len %d Bytes %d, want 2/200", s.Len(), s.Bytes())
	}
	for i, wantAlive := range []bool{false, false, true, true} {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); ok != wantAlive {
			t.Fatalf("k%d alive=%v, want %v", i, ok, wantAlive)
		}
	}
}

func TestVanishedFileBecomesCleanMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{MaxEntries: 1, Dir: dir})
	s.Put("gone", []byte("body"))
	s.Put("other", []byte("body")) // push "gone" out of the memory front
	if err := os.Remove(filepath.Join(dir, "gone.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("gone"); ok {
		t.Fatal("vanished file still served")
	}
	// The index entry is dropped too: Len reflects reality.
	if s.Len() != 1 {
		t.Fatalf("Len = %d after vanish, want 1", s.Len())
	}
}

// TestConcurrentAccess exercises the store under the race detector: mixed
// puts and gets across goroutines over a shared small cap.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, Config{MaxEntries: 8, Dir: t.TempDir(), MaxDiskBytes: 1 << 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%20)
				if i%3 == 0 {
					s.Put(key, []byte(key))
				} else if body, ok := s.Get(key); ok && !bytes.Equal(body, []byte(key)) {
					t.Errorf("key %s returned body %q", key, body)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := s.Len(); n < 1 || n > 20 {
		t.Fatalf("Len = %d out of range", n)
	}
}
