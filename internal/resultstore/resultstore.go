// Package resultstore implements a persistent, content-addressed store of
// finished simulation results. Keys are hex sha256 digests the serve layer
// derives from everything that shapes a result — canonical circuit content,
// noise model, seed, shots, batch structure, and every decision-shaping
// option — so a lookup hit IS the result: the simulator's determinism
// contract makes the stored bytes identical to what a fresh run would
// produce, and the daemon serves exact replays without simulating.
//
// Layout: an in-memory LRU front (entry-capped) over an optional on-disk
// backing directory (byte-capped). Disk writes are atomic — the body lands
// in a temp file in the same directory and is renamed into place — so a
// crash mid-write never leaves a torn entry, and a restarted daemon rescans
// the directory to serve every previously stored result. Values are opaque
// byte blobs owned by the store after Put and read-only after Get.
package resultstore

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config tunes a Store. The zero value is a memory-only store at the
// default entry cap.
type Config struct {
	// MaxEntries caps the in-memory LRU front (default 512).
	MaxEntries int
	// Dir, when non-empty, persists every entry to this directory (created
	// if missing) and serves memory misses from it — results survive
	// restarts.
	Dir string
	// MaxDiskBytes caps the backing directory's total size; the
	// oldest-written entries are removed beyond it (default 1 GiB; only
	// meaningful with Dir).
	MaxDiskBytes int64
}

// Store is a content-addressed result store. Safe for concurrent use.
type Store struct {
	cfg Config

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	mem      map[string]*list.Element
	memBytes int64

	// disk indexes the backing dir: key -> size. evictOrder holds keys
	// oldest-write-first, so the disk cap evicts in write order (the disk
	// tier is an archive, not a working set — recency lives in the memory
	// front).
	disk       map[string]int64
	evictOrder []string
	diskBytes  int64
}

type memEntry struct {
	key  string
	body []byte
}

// Open returns a ready store, creating and rescanning the backing
// directory when Config.Dir is set. Entries found on disk are indexed (not
// loaded); a dirty directory over the byte cap is trimmed oldest-first.
func Open(cfg Config) (*Store, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 512
	}
	if cfg.MaxDiskBytes <= 0 {
		cfg.MaxDiskBytes = 1 << 30
	}
	s := &Store{
		cfg:  cfg,
		ll:   list.New(),
		mem:  make(map[string]*list.Element),
		disk: make(map[string]int64),
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	type onDisk struct {
		key  string
		size int64
		mod  time.Time
	}
	var found []onDisk
	for _, e := range entries {
		name := e.Name()
		key, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{key: key, size: info.Size(), mod: info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod.Before(found[j].mod) })
	for _, f := range found {
		s.disk[f.key] = f.size
		s.evictOrder = append(s.evictOrder, f.key)
		s.diskBytes += f.size
	}
	s.mu.Lock()
	s.evictDiskLocked()
	s.mu.Unlock()
	return s, nil
}

// Get returns the stored body for key. Memory misses fall through to the
// backing directory; a disk hit is promoted into the memory front. The
// returned slice is shared — callers must treat it as read-only.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.ll.MoveToFront(el)
		body := el.Value.(*memEntry).body
		s.mu.Unlock()
		return body, true
	}
	_, onDisk := s.disk[key]
	s.mu.Unlock()
	if !onDisk {
		return nil, false
	}
	body, err := os.ReadFile(s.path(key))
	if err != nil {
		// The file vanished under us (external cleanup); drop the index
		// entry so the key reads as a clean miss from now on.
		s.mu.Lock()
		s.dropDiskLocked(key)
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.addMemLocked(key, body)
	s.mu.Unlock()
	return body, true
}

// Put stores body under key, in the memory front and (when configured) the
// backing directory. The store owns body after the call. Disk failures are
// swallowed: persistence is an optimization, and a result that only made
// the memory tier is still a correct replay source.
func (s *Store) Put(key string, body []byte) {
	s.mu.Lock()
	s.addMemLocked(key, body)
	_, exists := s.disk[key]
	s.mu.Unlock()
	if s.cfg.Dir == "" || exists {
		return
	}
	// Atomic write-then-rename in the same directory: readers (and crash
	// recovery) only ever see whole bodies under final names.
	tmp, err := os.CreateTemp(s.cfg.Dir, ".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.mu.Lock()
	if _, dup := s.disk[key]; !dup {
		s.disk[key] = int64(len(body))
		s.evictOrder = append(s.evictOrder, key)
		s.diskBytes += int64(len(body))
		s.evictDiskLocked()
	}
	s.mu.Unlock()
}

// Len returns the stored entry count: distinct keys across both tiers.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Dir == "" {
		return s.ll.Len()
	}
	n := len(s.disk)
	for key := range s.mem {
		if _, onDisk := s.disk[key]; !onDisk {
			n++
		}
	}
	return n
}

// Bytes returns the stored result bytes: the backing directory's total when
// one is configured, the memory front's otherwise.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Dir == "" {
		return s.memBytes
	}
	return s.diskBytes
}

func (s *Store) path(key string) string {
	return filepath.Join(s.cfg.Dir, key+".json")
}

func (s *Store) addMemLocked(key string, body []byte) {
	if el, ok := s.mem[key]; ok {
		e := el.Value.(*memEntry)
		s.memBytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		s.ll.MoveToFront(el)
		return
	}
	s.mem[key] = s.ll.PushFront(&memEntry{key: key, body: body})
	s.memBytes += int64(len(body))
	for s.ll.Len() > s.cfg.MaxEntries {
		back := s.ll.Back()
		e := back.Value.(*memEntry)
		s.ll.Remove(back)
		delete(s.mem, e.key)
		s.memBytes -= int64(len(e.body))
	}
}

func (s *Store) evictDiskLocked() {
	for s.diskBytes > s.cfg.MaxDiskBytes && len(s.evictOrder) > 0 {
		key := s.evictOrder[0]
		s.dropDiskLocked(key)
		os.Remove(s.path(key))
	}
}

func (s *Store) dropDiskLocked(key string) {
	size, ok := s.disk[key]
	if !ok {
		return
	}
	delete(s.disk, key)
	s.diskBytes -= size
	for i, k := range s.evictOrder {
		if k == key {
			s.evictOrder = append(s.evictOrder[:i], s.evictOrder[i+1:]...)
			break
		}
	}
}
