// Package sweep implements the parameter/noise sweep engine: a first-class
// grid workload over (circuit family × noise axis × shots × partition ×
// repeats) points, where every point routes through internal/planner and
// the grid executes with cross-point reuse.
//
// Two reuse levels extend the paper's intra-tree redundancy elimination to
// the inter-point level:
//
//   - Plan/decision reuse: points sharing a circuit structure share one
//     partition plan and one planner Decision — a plan is built once per
//     distinct (circuit, noise-if-it-shapes-the-plan, shots, partitioner)
//     key, not once per point, so repeat and noise axes hit the cache.
//   - Ideal-prefix reuse: under Pauli-only noise, points over the same plan
//     boundaries share one set of ideal boundary snapshots
//     (core.PrefixSnapshots). A tree node whose parent is still on the
//     ideal trajectory and whose segment draws no firing channel skips its
//     gate work entirely; only noise-divergent suffixes re-run.
//
// Determinism contract: point i runs at the derived seed
// rng.SeedAt(Spec.Seed, i) and its histogram is a pure function of (spec,
// i) — byte-identical to running the point standalone (tqsim.RunTQSim /
// tqsim.RunBackend at that seed), with reuse on or off, at any concurrency,
// and whether the points ran in one process or were sharded across tqsimd
// workers. That identity is what makes the reuse safe: it changes the work
// accounting, never the samples.
//
// The engine is execution-agnostic: Prepare expands and plans the grid, and
// Run drives an injected Runner (the tqsim facade supplies the canonical
// planner-routed one) so this package never depends on the facade.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"tqsim/internal/circuit"
	"tqsim/internal/core"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/observable"
	"tqsim/internal/partition"
	"tqsim/internal/planner"
	"tqsim/internal/qasm"
	"tqsim/internal/rng"
	"tqsim/internal/trajectory"
	"tqsim/internal/workloads"
)

// MaxPoints caps a sweep's expanded grid; beyond it Prepare errors instead
// of silently planning an absurd workload.
const MaxPoints = 1 << 16

// NoisePoint is one value on the noise axis: either a named model (the
// paper's DC/DCR/TR/TRR/AD/ADR/PD/PDR/ALL set, or "ideal") or an anonymous
// depolarizing model at explicit rates.
type NoisePoint struct {
	// Name selects a named model; empty selects depolarizing at P1/P2
	// (both zero = ideal).
	Name string `json:"name,omitempty"`
	// P1 and P2 are the one- and two-qubit depolarizing rates used when
	// Name is empty.
	P1 float64 `json:"p1,omitempty"`
	P2 float64 `json:"p2,omitempty"`
}

// knownNoise lists the valid canonical Name values (ByName's vocabulary);
// lookups normalize case the same way noise.ByName does.
var knownNoise = map[string]bool{
	"": true, "IDEAL": true, "NONE": true, "DC": true, "DCR": true, "TR": true,
	"TRR": true, "AD": true, "ADR": true, "PD": true, "PDR": true, "ALL": true,
}

// Model constructs the noise model (nil = ideal).
func (np NoisePoint) Model() *noise.Model {
	if np.Name != "" {
		return noise.ByName(np.Name)
	}
	if np.P1 == 0 && np.P2 == 0 {
		return nil
	}
	return noise.NewDepolarizing(np.P1, np.P2)
}

// Label renders the axis value for reports and cache keys, canonicalized
// the way noise.ByName resolves names so "dc" and "DC" share one cache
// entry.
func (np NoisePoint) Label() string {
	switch {
	case np.Name != "":
		return strings.ToUpper(strings.TrimSpace(np.Name))
	case np.P1 == 0 && np.P2 == 0:
		return "ideal"
	default:
		return fmt.Sprintf("depol(%g,%g)", np.P1, np.P2)
	}
}

func (np NoisePoint) validate() error {
	if np.Name != "" && (np.P1 != 0 || np.P2 != 0) {
		return fmt.Errorf("noise point %q also sets p1/p2; use one or the other", np.Name)
	}
	if !knownNoise[strings.ToUpper(strings.TrimSpace(np.Name))] {
		return fmt.Errorf("unknown noise model %q", np.Name)
	}
	if np.P1 < 0 || np.P1 > 1 || np.P2 < 0 || np.P2 > 1 {
		return fmt.Errorf("depolarizing rates must be in [0,1], got p1=%g p2=%g", np.P1, np.P2)
	}
	return nil
}

// PartitionSpec is one value on the partitioner axis.
type PartitionSpec struct {
	// Strategy selects the partitioner: "dcp" (default), "ucp", "xcp", or
	// "structure" (explicit arities).
	Strategy string `json:"strategy,omitempty"`
	// Levels is the subcircuit count for ucp/xcp (default 3).
	Levels int `json:"levels,omitempty"`
	// Structure is the explicit arity tuple for strategy "structure".
	Structure []int `json:"structure,omitempty"`
	// Bounds optionally pins the subcircuit cut points for strategy
	// "structure" (len = len(Structure)-1); empty cuts equal-length
	// subcircuits. This is how a sweep holds one externally derived tree —
	// e.g. the paper's §5.5 DC-derived plan — fixed across a noise axis:
	// copy a plan's Bounds and Arities into one partition entry.
	Bounds []int `json:"bounds,omitempty"`
}

// Label renders the axis value for reports and cache keys.
func (ps PartitionSpec) Label() string {
	switch ps.strategy() {
	case "dcp":
		return "DCP"
	case "ucp":
		return fmt.Sprintf("UCP:%d", ps.levels())
	case "xcp":
		return fmt.Sprintf("XCP:%d", ps.levels())
	default:
		parts := make([]string, len(ps.Structure))
		for i, a := range ps.Structure {
			parts[i] = fmt.Sprint(a)
		}
		label := "(" + strings.Join(parts, ",") + ")"
		if len(ps.Bounds) > 0 {
			// Pinned cut points are part of the plan identity: two specs
			// with equal arities but different bounds must not share a
			// plan-cache key (Label doubles as that key).
			cuts := make([]string, len(ps.Bounds))
			for i, b := range ps.Bounds {
				cuts[i] = fmt.Sprint(b)
			}
			label += "@" + strings.Join(cuts, ",")
		}
		return label
	}
}

func (ps PartitionSpec) strategy() string {
	if ps.Strategy == "" {
		return "dcp"
	}
	return strings.ToLower(ps.Strategy)
}

func (ps PartitionSpec) levels() int {
	if ps.Levels <= 0 {
		return 3
	}
	return ps.Levels
}

// noiseShapesPlan reports whether the partitioner consults the noise model
// (only DCP sizes A0 from the segment error rate); noise-independent
// strategies share one plan across the whole noise axis.
func (ps PartitionSpec) noiseShapesPlan() bool { return ps.strategy() == "dcp" }

// plan builds the partition plan for one (circuit, noise, shots) cell.
func (ps PartitionSpec) plan(c *circuit.Circuit, m *noise.Model, shots int, opt partition.DCPOptions) (*partition.Plan, error) {
	switch ps.strategy() {
	case "dcp":
		return partition.Dynamic(c, m, shots, opt), nil
	case "ucp":
		if c.Len() < ps.levels() {
			return nil, fmt.Errorf("ucp: circuit %s has %d gates, fewer than %d levels", c.Name, c.Len(), ps.levels())
		}
		return partition.Uniform(c, shots, ps.levels()), nil
	case "xcp":
		if c.Len() < ps.levels() {
			return nil, fmt.Errorf("xcp: circuit %s has %d gates, fewer than %d levels", c.Name, c.Len(), ps.levels())
		}
		return partition.Exponential(c, shots, ps.levels()), nil
	case "structure":
		if len(ps.Structure) == 0 {
			return nil, errors.New("structure partition needs a non-empty arity tuple")
		}
		if c.Len() < len(ps.Structure) {
			return nil, fmt.Errorf("structure: circuit %s has %d gates, fewer than %d levels", c.Name, c.Len(), len(ps.Structure))
		}
		if len(ps.Bounds) > 0 {
			p := &partition.Plan{
				Circuit:  c,
				Bounds:   append([]int(nil), ps.Bounds...),
				Arities:  append([]int(nil), ps.Structure...),
				Strategy: "manual",
			}
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("structure: %w", err)
			}
			return p, nil
		}
		return partition.FromStructure(c, ps.Structure), nil
	default:
		return nil, fmt.Errorf("unknown partition strategy %q (have dcp, ucp, xcp, structure)", ps.Strategy)
	}
}

// Spec describes a sweep: one circuit source (or an explicit circuit axis),
// the grid axes, the seed policy, and the execution options every point
// shares. The zero values of the axis fields select a single-point default
// (DC noise, DCP partition, one repeat).
type Spec struct {
	// QASM is an OpenQASM 2.0 program (exactly one of QASM, Circuit, or
	// Circuits selects the circuit source).
	QASM string `json:"qasm,omitempty"`
	// Circuit names a benchmark-suite circuit (e.g. "qft_n12").
	Circuit string `json:"circuit,omitempty"`
	// Circuits is a Go-API-only circuit axis (e.g. a variational ansatz
	// family); it does not cross the wire.
	Circuits []*circuit.Circuit `json:"-"`

	// Noise is the noise axis (default: the DC model).
	Noise []NoisePoint `json:"noise,omitempty"`
	// Shots is the shot-budget axis (at least one positive entry).
	Shots []int `json:"shots"`
	// Partitions is the partitioner axis (default: DCP). Ignored in
	// baseline mode, which always runs the flat plan.
	Partitions []PartitionSpec `json:"partitions,omitempty"`
	// Repeats runs each grid cell this many times at distinct derived
	// seeds (default 1) — the replication axis of sensitivity studies.
	Repeats int `json:"repeats,omitempty"`

	// Seed is the base seed; point i runs at rng.SeedAt(Seed, i).
	Seed uint64 `json:"seed,omitempty"`
	// Mode is "tqsim" (tree reuse, default) or "baseline" (flat plan).
	Mode string `json:"mode,omitempty"`
	// Backend picks the engine by registry name or "auto" (default):
	// every point's plan routes through the planner either way.
	Backend string `json:"backend,omitempty"`
	// Fidelity requests the per-point normalized fidelity versus the
	// circuit's ideal distribution (computed once per circuit).
	Fidelity bool `json:"fidelity,omitempty"`
	// NoReuse disables cross-point prefix reuse (plan dedupe still
	// applies); per-point histograms are byte-identical either way — the
	// switch exists for A/B work measurements and regression tests.
	NoReuse bool `json:"no_reuse,omitempty"`
	// Concurrency runs up to this many points in parallel (default 1).
	// Histograms are unaffected; only completion order changes.
	Concurrency int `json:"concurrency,omitempty"`

	// Observable, when set, evaluates the ensemble expectation of this
	// Hamiltonian at every point instead of sampling histograms (the VQA
	// workflow). Go-API-only.
	Observable *observable.Hamiltonian `json:"-"`

	// CopyCost, MaxLevels, MemoryBudgetBytes, Parallelism, Epsilon and
	// ClusterNodes mirror tqsim.Options (zero = defaults). CopyCost zero
	// selects the fixed library default so plans are host-independent.
	CopyCost          float64 `json:"copy_cost,omitempty"`
	MaxLevels         int     `json:"max_levels,omitempty"`
	MemoryBudgetBytes int64   `json:"memory_budget_bytes,omitempty"`
	Parallelism       int     `json:"parallelism,omitempty"`
	Epsilon           float64 `json:"epsilon,omitempty"`
	ClusterNodes      int     `json:"cluster_nodes,omitempty"`
}

func (s *Spec) dcpOptions() partition.DCPOptions {
	return partition.DCPOptions{
		CopyCost:          s.CopyCost,
		Epsilon:           s.Epsilon,
		MaxLevels:         s.MaxLevels,
		MemoryBudgetBytes: s.MemoryBudgetBytes,
	}
}

func (s *Spec) budget() planner.Budget {
	return planner.Budget{
		MemoryBytes:  s.MemoryBudgetBytes,
		Parallelism:  s.Parallelism,
		ClusterNodes: s.ClusterNodes,
	}
}

func (s *Spec) mode() string {
	if s.Mode == "" {
		return "tqsim"
	}
	return s.Mode
}

// Point is one expanded grid cell: the axis coordinates plus the derived
// seed. Points are a pure function of the spec — expansion order is
// circuits × noise × shots × partitions × repeats, row-major.
type Point struct {
	// Index is the point's position in the expanded grid and the input to
	// its seed derivation.
	Index int
	// CircuitIndex selects into the resolved circuit axis.
	CircuitIndex int
	// Noise, Shots and Partition are the cell's axis coordinates.
	Noise     NoisePoint
	Shots     int
	Partition PartitionSpec
	// Rep is the replication index within the cell (0-based).
	Rep int
	// Seed is rng.SeedAt(spec.Seed, Index) — the stream the point runs at.
	Seed uint64
}

// RunRequest is one point's execution order, handed to the Runner with
// every planner decision already folded in.
type RunRequest struct {
	// Plan is the (possibly shared) partition plan.
	Plan *partition.Plan
	// Noise is the point's noise model (nil = ideal).
	Noise *noise.Model
	// Mode is "tqsim" or "baseline".
	Mode string
	// Seed is the point's derived seed.
	Seed uint64
	// Backend is the resolved engine name (never "auto").
	Backend string
	// Parallelism and ClusterNodes carry the resolved worker/shard counts.
	Parallelism  int
	ClusterNodes int
	// Prefix, when non-nil, is the shared ideal-prefix snapshot set the
	// executor may reuse (nil when reuse is off or inapplicable).
	Prefix *core.PrefixSnapshots
	// Observable, when non-nil, switches the point to expectation
	// estimation.
	Observable *observable.Hamiltonian
}

// RunOutput is a Runner's result for one point: the tree result and, for
// observable sweeps, the ensemble estimate.
type RunOutput struct {
	Res      *core.Result
	Estimate *observable.EstimateStats
}

// Runner executes one prepared point. The tqsim facade supplies the
// canonical implementation (planner-routed engines, prefix hook wired);
// tests may substitute instrumented runners.
type Runner func(ctx context.Context, req *RunRequest) (*RunOutput, error)

// PointResult is one executed point.
type PointResult struct {
	// Index, Circuit, Width, Noise, Shots, Partition, Rep and Seed echo
	// the point's coordinates.
	Index     int
	Circuit   string
	Width     int
	Noise     string
	Shots     int
	Partition string
	Rep       int
	Seed      uint64
	// Backend and Structure report the engine and tree the point ran on.
	Backend   string
	Structure string
	// Outcomes and Counts are the sampled histogram (Counts empty for
	// observable sweeps).
	Outcomes int
	Counts   map[uint64]int
	// GateApplications, StateCopies, PrefixReuseHits and PeakStateBytes
	// carry the executor's work accounting; PrefixReuseHits counts tree
	// nodes served from the shared ideal-prefix snapshots.
	GateApplications int64
	StateCopies      int64
	PrefixReuseHits  int64
	PeakStateBytes   int64
	// PlanShared reports whether the point's plan/decision came from the
	// cross-point cache rather than being built for this point alone.
	PlanShared bool
	// Fidelity is the normalized fidelity versus the ideal distribution;
	// valid only when HasFidelity (Spec.Fidelity on a histogram sweep).
	Fidelity    float64
	HasFidelity bool
	// Estimate is the observable estimate for observable sweeps.
	Estimate *observable.EstimateStats
	// Decision is the planner's (shared) decision for the point's plan.
	Decision *planner.Decision
	// Elapsed is the point's wall-clock duration.
	Elapsed time.Duration
}

// Result aggregates a sweep run.
type Result struct {
	// Points holds one entry per executed point, in index order.
	Points []PointResult
	// PlansBuilt is the number of distinct partition plans constructed;
	// DecisionsBuilt the number of distinct planner decisions. Points
	// beyond those counts shared a cached plan/decision.
	PlansBuilt     int
	DecisionsBuilt int
	// GateApplications, StateCopies and PrefixReuseHits total the per-point
	// work accounting.
	GateApplications int64
	StateCopies      int64
	PrefixReuseHits  int64
	// Elapsed is the whole sweep's wall-clock duration.
	Elapsed time.Duration
}

// PlanError marks a Prepare failure that is a resource rejection (the
// planner found no engine that can run a point within budget) rather than a
// malformed spec — services map it to 413 instead of 400.
type PlanError struct{ Err error }

// Error implements error.
func (e *PlanError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying planner error.
func (e *PlanError) Unwrap() error { return e.Err }

// planEntry is one distinct (plan, noise) cell shared by its points.
type planEntry struct {
	plan         *partition.Plan
	decision     *planner.Decision
	backend      string
	parallelism  int
	clusterNodes int
	estPeak      int64
	reusable     bool
	prefixKey    string
	points       int // how many grid points share this entry
}

// prefixEntry lazily builds one shared snapshot set.
type prefixEntry struct {
	once sync.Once
	ps   *core.PrefixSnapshots
	err  error
}

// idealEntry lazily builds one circuit's ideal distribution.
type idealEntry struct {
	once sync.Once
	dist metrics.Dist
}

// Prepared is an expanded, validated, fully planned sweep ready to run.
// All plan construction and planner routing happens in Prepare, so
// MaxEstPeakBytes is available for admission control before any execution,
// and Run only executes.
type Prepared struct {
	spec     Spec
	circuits []*circuit.Circuit
	points   []Point
	entries  map[string]*planEntry
	keys     []string // entry key per point index
	plans    int      // distinct partition plans built

	prefixes map[string]*prefixEntry
	ideals   []idealEntry

	// snapCache, when set, sources the ideal-prefix snapshots from the
	// shared cross-job cache instead of building sweep-private sets — see
	// UseSnapshotCache.
	snapCache *core.SnapshotCache
}

// UseSnapshotCache routes the sweep's ideal-prefix snapshots through a
// shared cross-job cache: boundary states another job or sweep already
// computed are adopted instead of rebuilt, and states this sweep computes
// are published for the next one. Histograms are unaffected — the cache
// yields sets bitwise equal to NewPrefixSnapshots. Call before Run; the
// serve layer attaches its daemon-wide cache here.
func (p *Prepared) UseSnapshotCache(sc *core.SnapshotCache) { p.snapCache = sc }

// Prepare validates the spec, expands the grid, and builds every distinct
// plan and planner decision once. A *PlanError distinguishes "no engine can
// run this" from spec validation errors.
func Prepare(spec *Spec) (*Prepared, error) {
	s := *spec // normalized copy; the caller's spec is never mutated
	if s.Repeats <= 0 {
		s.Repeats = 1
	}
	if len(s.Noise) == 0 {
		s.Noise = []NoisePoint{{Name: "DC"}}
	}
	if len(s.Partitions) == 0 || s.mode() == "baseline" {
		s.Partitions = []PartitionSpec{{}}
	}
	if s.mode() != "tqsim" && s.mode() != "baseline" {
		return nil, fmt.Errorf("sweep: mode must be tqsim or baseline, not %q", s.Mode)
	}
	if len(s.Shots) == 0 {
		return nil, errors.New("sweep: shots axis needs at least one entry")
	}
	for _, n := range s.Shots {
		if n <= 0 {
			return nil, fmt.Errorf("sweep: shots must be positive, got %d", n)
		}
	}
	for _, np := range s.Noise {
		if err := np.validate(); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}

	circuits, err := resolveCircuits(&s)
	if err != nil {
		return nil, err
	}

	total := len(circuits) * len(s.Noise) * len(s.Shots) * len(s.Partitions) * s.Repeats
	if total > MaxPoints {
		return nil, fmt.Errorf("sweep: grid expands to %d points, above the %d cap", total, MaxPoints)
	}

	p := &Prepared{
		spec:     s,
		circuits: circuits,
		entries:  make(map[string]*planEntry),
		prefixes: make(map[string]*prefixEntry),
		ideals:   make([]idealEntry, len(circuits)),
	}
	planCache := make(map[string]*partition.Plan)

	// Expand row-major: circuits × noise × shots × partitions × repeats.
	// Repeats are innermost so a cell's replicas are adjacent and the
	// plan/decision cache hits immediately.
	idx := 0
	for ci := range circuits {
		for _, np := range s.Noise {
			for _, shots := range s.Shots {
				for _, part := range s.Partitions {
					for rep := 0; rep < s.Repeats; rep++ {
						pt := Point{
							Index:        idx,
							CircuitIndex: ci,
							Noise:        np,
							Shots:        shots,
							Partition:    part,
							Rep:          rep,
							Seed:         rng.SeedAt(s.Seed, uint64(idx)),
						}
						key, err := p.ensureEntry(planCache, pt)
						if err != nil {
							return nil, err
						}
						p.points = append(p.points, pt)
						p.keys = append(p.keys, key)
						idx++
					}
				}
			}
		}
	}
	p.plans = len(planCache)
	return p, nil
}

func resolveCircuits(s *Spec) ([]*circuit.Circuit, error) {
	sources := 0
	if s.QASM != "" {
		sources++
	}
	if s.Circuit != "" {
		sources++
	}
	if len(s.Circuits) > 0 {
		sources++
	}
	if sources != 1 {
		return nil, errors.New("sweep: provide exactly one of qasm, circuit, or a circuit list")
	}
	switch {
	case s.QASM != "":
		prog, err := qasm.Parse("sweep", s.QASM)
		if err != nil {
			return nil, fmt.Errorf("sweep: qasm: %w", err)
		}
		return []*circuit.Circuit{prog.Circuit}, nil
	case s.Circuit != "":
		c := workloads.ByName(s.Circuit)
		if c == nil {
			return nil, fmt.Errorf("sweep: unknown suite circuit %q", s.Circuit)
		}
		return []*circuit.Circuit{c}, nil
	default:
		return s.Circuits, nil
	}
}

// ensureEntry returns the point's entry key, building the plan (through the
// structural plan cache) and the planner decision on first sight.
func (p *Prepared) ensureEntry(planCache map[string]*partition.Plan, pt Point) (string, error) {
	s := &p.spec
	m := pt.Noise.Model()

	// Structural plan identity: noise participates only when the
	// partitioner consults it, so noise-independent strategies (and the
	// baseline flat plan) share one plan across the whole noise axis.
	planNoise := ""
	if s.mode() == "tqsim" && pt.Partition.noiseShapesPlan() {
		planNoise = pt.Noise.Label()
	}
	planKey := fmt.Sprintf("%d|%s|%d|%s|%s", pt.CircuitIndex, planNoise, pt.Shots, pt.Partition.Label(), s.mode())
	// The decision additionally depends on the point's noise class.
	entryKey := fmt.Sprintf("%s|%s", planKey, pt.Noise.Label())

	if e, ok := p.entries[entryKey]; ok {
		e.points++
		return entryKey, nil
	}

	plan, ok := planCache[planKey]
	if !ok {
		var err error
		c := p.circuits[pt.CircuitIndex]
		if s.mode() == "baseline" {
			plan = partition.Baseline(c, pt.Shots)
		} else if plan, err = pt.Partition.plan(c, m, pt.Shots, s.dcpOptions()); err != nil {
			return "", fmt.Errorf("sweep: %w", err)
		}
		planCache[planKey] = plan
	}

	decision, err := planner.Decide(plan, m, s.budget())
	if err != nil {
		return "", &PlanError{Err: fmt.Errorf("sweep point %d (%s): %w", pt.Index, entryKey, err)}
	}
	e := &planEntry{plan: plan, decision: decision, points: 1}
	if s.Observable != nil && (s.Backend == "" || s.Backend == "auto") {
		// Observables evaluate <H> on dense leaf states, so auto resolves to
		// the dense reference engine — the same rule as the facade's
		// expectation estimators, which the determinism contract mirrors.
		e.backend = "statevec"
		e.parallelism = s.Parallelism
		e.clusterNodes = s.ClusterNodes
		e.estPeak = planner.PeakBytes(plan, m, "statevec", s.budget())
	} else if s.Backend == "" || s.Backend == "auto" {
		// Mirror the facade's resolveAuto: adopt the decided engine and
		// worker count; the shard count only when the caller left it free.
		e.backend = decision.Backend
		e.parallelism = decision.Parallelism
		e.clusterNodes = s.ClusterNodes
		if e.clusterNodes == 0 {
			e.clusterNodes = decision.ClusterNodes
		}
		e.estPeak = decision.EstPeakBytes
	} else {
		e.backend = s.Backend
		e.parallelism = s.Parallelism
		e.clusterNodes = s.ClusterNodes
		e.estPeak = planner.PeakBytes(plan, m, s.Backend, s.budget())
	}

	// Prefix reuse: plain dense engine, Pauli-only noise, reuse not
	// disabled. The executor re-checks the same conditions, so a wrong
	// answer here costs work, never correctness.
	if !s.NoReuse && e.backend == "statevec" && m.PauliOnly() {
		e.reusable = true
		e.prefixKey = fmt.Sprintf("%d|%s", pt.CircuitIndex, core.PrefixKey(plan))
		if _, ok := p.prefixes[e.prefixKey]; !ok {
			p.prefixes[e.prefixKey] = &prefixEntry{}
		}
	}
	p.entries[entryKey] = e
	return entryKey, nil
}

// NumPoints returns the expanded grid size.
func (p *Prepared) NumPoints() int { return len(p.points) }

// Point returns point i's coordinates.
func (p *Prepared) Point(i int) Point { return p.points[i] }

// Circuit returns the resolved circuit of point i.
func (p *Prepared) Circuit(i int) *circuit.Circuit {
	return p.circuits[p.points[i].CircuitIndex]
}

// Spec returns the normalized spec (axes defaulted, repeats clamped).
func (p *Prepared) Spec() *Spec { return &p.spec }

// MaxEstPeakBytes returns the largest single-point admission estimate
// (planner peak plus the shared snapshot set where reuse applies) — the
// number services reserve against their memory budget, since points beyond
// Concurrency never run simultaneously.
func (p *Prepared) MaxEstPeakBytes() int64 {
	var maxPeak int64
	for _, e := range p.entries {
		peak := e.estPeak
		if e.reusable {
			peak += core.SnapshotBytes(e.plan.Levels(), e.plan.Circuit.NumQubits)
		}
		if peak > maxPeak {
			maxPeak = peak
		}
	}
	return maxPeak
}

// prefix returns the entry's shared snapshots, building them exactly once
// across all points and workers. Build failures disable reuse for the entry
// (correctness never depends on the snapshots existing).
func (p *Prepared) prefix(e *planEntry) *core.PrefixSnapshots {
	pe := p.prefixes[e.prefixKey]
	pe.once.Do(func() {
		if p.snapCache != nil {
			pe.ps, pe.err = p.snapCache.ForPlan(e.plan)
			return
		}
		pe.ps, pe.err = core.NewPrefixSnapshots(e.plan)
	})
	if pe.err != nil {
		return nil
	}
	return pe.ps
}

// idealDist returns circuit ci's ideal outcome distribution, computed once.
func (p *Prepared) idealDist(ci int) metrics.Dist {
	ie := &p.ideals[ci]
	ie.once.Do(func() {
		c := p.circuits[ci]
		ie.dist = metrics.NewDist(trajectory.IdealState(c).Probabilities())
	})
	return ie.dist
}

// Run executes every point through the runner. onPoint, when non-nil,
// observes each result as it completes (under an internal lock; with
// Concurrency > 1 completion order is nondeterministic, point contents are
// not); an onPoint error aborts the sweep. The returned Result lists points
// in index order regardless of completion order.
func (p *Prepared) Run(ctx context.Context, runner Runner, onPoint func(*PointResult) error) (*Result, error) {
	return p.RunRange(ctx, runner, 0, len(p.points), onPoint)
}

// RunRange executes points [from, to) — the distributed coordinator's lease
// unit. Point seeds and plans come from the full grid, so a range run is
// byte-identical to the same points of a full run.
func (p *Prepared) RunRange(ctx context.Context, runner Runner, from, to int, onPoint func(*PointResult) error) (*Result, error) {
	if from < 0 || to > len(p.points) || from > to {
		return nil, fmt.Errorf("sweep: range [%d,%d) outside the %d-point grid", from, to, len(p.points))
	}
	start := time.Now()
	n := to - from
	results := make([]*PointResult, n)

	workers := p.spec.Concurrency
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	indices := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				pr, err := p.runPoint(ctx, runner, i)
				if err != nil {
					fail(err)
					return
				}
				results[i-from] = pr
				if onPoint != nil {
					mu.Lock()
					err := onPoint(pr)
					mu.Unlock()
					if err != nil {
						fail(fmt.Errorf("sweep: point observer: %w", err))
						return
					}
				}
			}
		}()
	}
feed:
	for i := from; i < to; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{
		PlansBuilt:     p.plans,
		DecisionsBuilt: len(p.entries),
		Elapsed:        time.Since(start),
	}
	for _, pr := range results {
		res.Points = append(res.Points, *pr)
		res.GateApplications += pr.GateApplications
		res.StateCopies += pr.StateCopies
		res.PrefixReuseHits += pr.PrefixReuseHits
	}
	return res, nil
}

// runPoint executes one point.
func (p *Prepared) runPoint(ctx context.Context, runner Runner, i int) (*PointResult, error) {
	pt := p.points[i]
	e := p.entries[p.keys[i]]
	req := &RunRequest{
		Plan:         e.plan,
		Noise:        pt.Noise.Model(),
		Mode:         p.spec.mode(),
		Seed:         pt.Seed,
		Backend:      e.backend,
		Parallelism:  e.parallelism,
		ClusterNodes: e.clusterNodes,
		Observable:   p.spec.Observable,
	}
	if e.reusable {
		req.Prefix = p.prefix(e)
	}
	start := time.Now()
	out, err := runner(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("sweep point %d (%s): %w", pt.Index, pointLabel(p.circuits[pt.CircuitIndex].Name, pt), err)
	}
	c := p.circuits[pt.CircuitIndex]
	pr := &PointResult{
		Index:      pt.Index,
		Circuit:    c.Name,
		Width:      c.NumQubits,
		Noise:      pt.Noise.Label(),
		Shots:      pt.Shots,
		Partition:  pt.Partition.Label(),
		Rep:        pt.Rep,
		Seed:       pt.Seed,
		PlanShared: e.points > 1,
		Decision:   e.decision,
		Estimate:   out.Estimate,
		Elapsed:    time.Since(start),
	}
	if r := out.Res; r != nil {
		pr.Backend = r.BackendName
		pr.Structure = r.Structure
		pr.Outcomes = r.Outcomes
		pr.Counts = r.Counts
		pr.GateApplications = r.GateApplications
		pr.StateCopies = r.StateCopies
		pr.PrefixReuseHits = r.PrefixReuseHits
		pr.PeakStateBytes = r.PeakStateBytes
	}
	if p.spec.Fidelity && len(pr.Counts) > 0 {
		pr.Fidelity = metrics.NormalizedFidelity(
			p.idealDist(pt.CircuitIndex),
			metrics.FromCounts(pr.Counts, 1<<uint(c.NumQubits)))
		pr.HasFidelity = true
	}
	return pr, nil
}

func pointLabel(circuit string, pt Point) string {
	return fmt.Sprintf("%s noise=%s shots=%d part=%s rep=%d",
		circuit, pt.Noise.Label(), pt.Shots, pt.Partition.Label(), pt.Rep)
}
