package sweep

// Pure grid-engine unit tests: expansion order, seed derivation, spec
// validation, label canonicalization, plan dedupe bookkeeping. The
// execution-level determinism property tests live in the root package
// (sweep_test.go) where the canonical runner is available, and the service
// and distributed suites in internal/serve.

import (
	"strings"
	"testing"

	"tqsim/internal/rng"
)

func validSpec() *Spec {
	return &Spec{
		Circuit: "qft_n8",
		Noise:   []NoisePoint{{Name: "DC"}, {P1: 0.001, P2: 0.01}},
		Shots:   []int{100, 200},
		Repeats: 2,
		Seed:    5,
	}
}

func TestExpansionOrderAndSeeds(t *testing.T) {
	prep, err := Prepare(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if prep.NumPoints() != 8 {
		t.Fatalf("expanded %d points, want 2 noise × 2 shots × 2 reps = 8", prep.NumPoints())
	}
	// Row-major: noise outermost (single circuit), repeats innermost.
	want := []struct {
		noise string
		shots int
		rep   int
	}{
		{"DC", 100, 0}, {"DC", 100, 1}, {"DC", 200, 0}, {"DC", 200, 1},
		{"depol(0.001,0.01)", 100, 0}, {"depol(0.001,0.01)", 100, 1},
		{"depol(0.001,0.01)", 200, 0}, {"depol(0.001,0.01)", 200, 1},
	}
	for i, w := range want {
		pt := prep.Point(i)
		if pt.Index != i || pt.Noise.Label() != w.noise || pt.Shots != w.shots || pt.Rep != w.rep {
			t.Errorf("point %d = %+v, want %+v", i, pt, w)
		}
		if pt.Seed != rng.SeedAt(5, uint64(i)) {
			t.Errorf("point %d seed %d, want rng.SeedAt derivation", i, pt.Seed)
		}
	}
	if prep.Point(0).Seed != 5 {
		t.Error("point 0 must keep the base seed")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Circuit = ""; s.QASM = "" }, // no source
		func(s *Spec) { s.QASM = "x" },                // two sources
		func(s *Spec) { s.Shots = nil },               // no shots axis
		func(s *Spec) { s.Shots = []int{0} },          // non-positive shots
		func(s *Spec) { s.Noise = []NoisePoint{{Name: "WAT"}} },
		func(s *Spec) { s.Noise = []NoisePoint{{Name: "DC", P1: 0.1}} }, // name + rates
		func(s *Spec) { s.Noise = []NoisePoint{{P1: 1.5}} },             // rate out of range
		func(s *Spec) { s.Mode = "magic" },
		func(s *Spec) { s.Circuit = "nope_n9" },
		func(s *Spec) { s.Partitions = []PartitionSpec{{Strategy: "wat"}} },
		func(s *Spec) { s.Partitions = []PartitionSpec{{Strategy: "structure"}} }, // empty tuple
		func(s *Spec) { s.Shots = []int{1}; s.Repeats = MaxPoints + 1 },           // grid cap
	}
	for i, mut := range bad {
		s := validSpec()
		mut(s)
		if _, err := Prepare(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestNoiseNamesCaseInsensitive(t *testing.T) {
	s := validSpec()
	s.Noise = []NoisePoint{{Name: "dc"}, {Name: "ideal"}, {Name: "Trr"}}
	prep, err := Prepare(s)
	if err != nil {
		t.Fatalf("lowercase noise names rejected: %v", err)
	}
	if got := prep.Point(0).Noise.Label(); got != "DC" {
		t.Errorf("label %q not canonicalized", got)
	}
	if m := prep.Point(0).Noise.Model(); m == nil || m.Name() != "DC" {
		t.Errorf("lowercase name resolved to %v", m.Name())
	}
	if m := (NoisePoint{Name: "ideal"}).Model(); m != nil {
		t.Error("ideal must resolve to the nil model")
	}
}

func TestPlanDedupeBookkeeping(t *testing.T) {
	// UCP ignores noise, so both noise points share one plan per shots
	// value but keep separate decisions (noise class differs).
	s := validSpec()
	s.Partitions = []PartitionSpec{{Strategy: "ucp", Levels: 3}}
	prep, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	if prep.plans != 2 {
		t.Errorf("built %d plans, want 2 (one per shots value, shared across noise)", prep.plans)
	}
	if len(prep.entries) != 4 {
		t.Errorf("built %d decisions, want 4 (per noise × shots)", len(prep.entries))
	}
	// Baseline mode ignores the partitioner axis entirely.
	b := validSpec()
	b.Mode = "baseline"
	b.Partitions = []PartitionSpec{{Strategy: "ucp"}, {Strategy: "xcp"}}
	bp, err := Prepare(b)
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumPoints() != 8 {
		t.Errorf("baseline sweep expanded %d points, want 8 (partitions collapsed)", bp.NumPoints())
	}
	for i := 0; i < bp.NumPoints(); i++ {
		if got := bp.Point(i).Partition.Label(); got != "DCP" {
			t.Errorf("baseline point %d partition %q", i, got)
		}
	}
}

func TestPartitionLabels(t *testing.T) {
	cases := map[string]PartitionSpec{
		"DCP":    {},
		"UCP:3":  {Strategy: "UCP"},
		"XCP:5":  {Strategy: "xcp", Levels: 5},
		"(64,4)": {Strategy: "structure", Structure: []int{64, 4}},
	}
	for want, ps := range cases {
		if got := ps.Label(); got != want {
			t.Errorf("label %q, want %q", got, want)
		}
	}
	if !strings.Contains((NoisePoint{P1: 0.5}).Label(), "depol") {
		t.Error("anonymous depolarizing label")
	}
}
