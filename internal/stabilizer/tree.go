// Tree execution on tableaux: the same simulation-tree reuse the paper
// applies to state vectors, applied to the polynomial stabilizer
// representation. Every tree node costs an O(n^2/64)-word tableau copy plus
// O(n)-per-gate Clifford updates, so Clifford circuits under Pauli noise run
// at widths the dense engines cannot touch (a 36-qubit state vector is
// 1 TiB; its tableau is ~650 bytes). Node RNG streams use the executor's
// DFS sequence numbering, so histograms are seed-deterministic at any
// parallelism, exactly like the dense tree walk.
package stabilizer

import (
	"fmt"
	"sync"
	"time"

	"tqsim/internal/core"
	"tqsim/internal/gate"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/rng"
)

// MaxTreeQubits bounds tableau tree runs: MeasureAll packs outcomes into a
// uint64, one bit per qubit.
const MaxTreeQubits = 64

// RunTree executes a simulation-tree plan entirely on tableaux. The
// circuit must be Clifford-only and the model ideal or purely depolarizing
// (plus optional readout flips); anything else returns an error — callers
// fall back to the dense executor with the hybrid Backend adapter.
func RunTree(plan *partition.Plan, m *noise.Model, seed uint64, parallelism int) (*core.Result, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	n := plan.Circuit.NumQubits
	if n > MaxTreeQubits {
		return nil, fmt.Errorf("stabilizer: %d qubits exceeds the %d-qubit outcome packing limit", n, MaxTreeQubits)
	}
	if !m.PauliOnly() {
		return nil, fmt.Errorf("stabilizer: model %s is not expressible as Pauli noise", m.Name())
	}
	if !IsClifford(plan.Circuit) {
		return nil, fmt.Errorf("stabilizer: circuit %s contains non-Clifford gates", plan.Circuit.Name)
	}

	subs := plan.Subcircuits()
	levels := plan.Levels()
	rootRNG := rng.New(seed)

	// The executor's DFS sequence numbering (core.SubtreeSpan) keys node
	// RNG streams identically across the dense and tableau walks.
	subtreeNodes := core.SubtreeSpan(plan.Arities, 0)

	workers := parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > plan.Arities[0] {
		workers = plan.Arities[0]
	}

	res := &core.Result{
		Counts:      make(map[uint64]int),
		Structure:   plan.Structure(),
		BackendName: "stabilizer",
	}
	res.PeakStateBytes = int64(workers) * int64(levels+1) * TableauBytes(n)

	type shard struct {
		counts             map[uint64]int
		outcomes           int
		ops, copies, nodes int64
	}
	shards := make([]shard, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := &shards[w]
			sh.counts = make(map[uint64]int)
			levelTab := make([]*Tableau, levels)
			for i := range levelTab {
				levelTab[i] = New(n)
			}
			root := New(n)
			runSegment := func(t *Tableau, gs []gate.Gate, r *rng.RNG) {
				for _, g := range gs {
					if g.Kind != gate.KindI {
						// Clifford-ness was verified up front; Apply cannot
						// fail here.
						if err := t.Apply(g); err != nil {
							panic(err)
						}
						sh.ops++
					}
					// Pauli-only-ness was verified up front; the channel
					// sampling (and RNG consumption) is the dense engines'.
					n, _ := m.ApplyPauliAfterGate(g, r, t.ApplyPauli)
					sh.ops += int64(n)
				}
			}
			leaf := func(t *Tableau, r *rng.RNG) {
				out := t.MeasureAll(r)
				out = m.FlipReadout(out, n, r)
				sh.counts[out]++
				sh.outcomes++
			}
			var walk func(level int, parent *Tableau, seqBase uint64)
			walk = func(level int, parent *Tableau, seqBase uint64) {
				arity := plan.Arities[level]
				gates := subs[level].Gates
				blockLen := core.SubtreeSpan(plan.Arities, level)
				for child := 0; child < arity; child++ {
					seq := seqBase + uint64(child)*blockLen
					t := levelTab[level]
					t.CopyFrom(parent)
					sh.copies++
					sh.nodes++
					r := rootRNG.SplitAt(seq)
					runSegment(t, gates, r)
					if level == levels-1 {
						leaf(t, r)
					} else {
						walk(level+1, t, seq+1)
					}
				}
			}
			arity0 := plan.Arities[0]
			gates0 := subs[0].Gates
			for child := w; child < arity0; child += workers {
				seq := 1 + uint64(child)*subtreeNodes
				t := levelTab[0]
				t.CopyFrom(root)
				sh.copies++
				sh.nodes++
				r := rootRNG.SplitAt(seq)
				runSegment(t, gates0, r)
				if levels == 1 {
					leaf(t, r)
				} else {
					walk(1, t, seq+1)
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range shards {
		for k, v := range shards[i].counts {
			res.Counts[k] += v
		}
		res.Outcomes += shards[i].outcomes
		res.GateApplications += shards[i].ops
		res.StateCopies += shards[i].copies
		res.Nodes += shards[i].nodes
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
