// Backend adapts the CHP tableau engine to the tree executor's gate-apply
// interface — the hybrid Clifford dispatcher of the backend registry. States
// reachable from |0...0> through Clifford gates are shadowed by tableaux
// (O(n) per gate, O(n^2/64) per tree copy, O(n^2) per sample); the first
// non-Clifford gate, noise channel, or observable on a state triggers a
// one-time tableau -> state-vector handoff and execution continues on the
// dense kernels. Dense-only states pass straight through, so the adapter is
// semantically identical to PlainBackend on arbitrary circuits and
// polynomially cheap on Clifford prefixes.
package stabilizer

import (
	"sync/atomic"

	"tqsim/internal/core"
	"tqsim/internal/gate"
	"tqsim/internal/noise"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// hybridStats counts fast-path vs dense work. It is shared (by pointer)
// between a backend and its forks, so parallel tree runs aggregate into
// the instance the caller holds; atomics keep the cross-worker increments
// race-free.
type hybridStats struct {
	clifford atomic.Int64
	dense    atomic.Int64
	handoffs atomic.Int64
}

// Backend implements core.Backend, core.Forker and core.StateShadow.
type Backend struct {
	// shadows maps executor state buffers to their live tableaux. Keys are
	// stable: the executor reuses one buffer per tree level and never
	// reallocates amplitudes mid-run.
	shadows map[*statevec.State]*Tableau
	stats   *hybridStats
}

// NewBackend returns an empty hybrid stabilizer backend.
func NewBackend() *Backend {
	return &Backend{
		shadows: make(map[*statevec.State]*Tableau),
		stats:   &hybridStats{},
	}
}

// Name implements core.Backend.
func (b *Backend) Name() string { return "stabilizer" }

// Fork implements core.Forker: shadow maps are per-worker state; the
// dispatch counters stay shared so the caller's instance sees the totals.
func (b *Backend) Fork() core.Backend {
	return &Backend{shadows: make(map[*statevec.State]*Tableau), stats: b.stats}
}

// CliffordGates returns the number of gate and noise applications absorbed
// by tableaux; DenseGates the number applied to amplitudes; Handoffs the
// number of tableau -> state-vector materializations. The ratio quantifies
// how much of a workload ran on the fast path. Counts aggregate across
// parallel workers.
func (b *Backend) CliffordGates() int64 { return b.stats.clifford.Load() }

// DenseGates returns the dense kernel application count; see CliffordGates.
func (b *Backend) DenseGates() int64 { return b.stats.dense.Load() }

// Handoffs returns the materialization count; see CliffordGates.
func (b *Backend) Handoffs() int64 { return b.stats.handoffs.Load() }

// Apply implements core.Backend: Clifford gates land on the state's tableau
// when one is live; anything else materializes first, then runs dense.
func (b *Backend) Apply(s *statevec.State, g gate.Gate) {
	if t := b.shadows[s]; t != nil {
		if err := t.Apply(g); err == nil {
			b.stats.clifford.Add(1)
			return
		}
		b.materialize(s, t)
	}
	s.Apply(g)
	b.stats.dense.Add(1)
}

// Flush implements core.Backend. Per the StateShadow contract it
// materializes the dense amplitudes of a shadowed state; for dense states it
// is a no-op (gates were applied immediately).
func (b *Backend) Flush(s *statevec.State) {
	if t := b.shadows[s]; t != nil {
		b.materialize(s, t)
	}
}

func (b *Backend) materialize(s *statevec.State, t *Tableau) {
	t.WriteState(s)
	delete(b.shadows, s)
	b.stats.handoffs.Add(1)
}

// BindZero implements core.StateShadow: the run's root is |0...0>, the one
// state a fresh tableau represents by construction. Prior-run bookkeeping
// is dropped (state buffers from finished runs are garbage).
func (b *Backend) BindZero(s *statevec.State) {
	clear(b.shadows)
	b.shadows[s] = New(s.NumQubits())
}

// CopyState implements core.StateShadow. Copying a shadowed state clones the
// tableau and skips the dense copy entirely — the dense buffer of dst is
// stale until materialized, which only StateShadow-aware paths observe.
func (b *Backend) CopyState(dst, src *statevec.State) {
	if t := b.shadows[src]; t != nil {
		if existing := b.shadows[dst]; existing != nil {
			existing.CopyFrom(t)
		} else {
			b.shadows[dst] = t.Clone()
		}
		return
	}
	delete(b.shadows, dst)
	dst.CopyFrom(src)
}

// ApplyNoise implements core.StateShadow: Pauli (depolarizing) channels are
// absorbed into a live tableau — stabilizer states stay stabilizer under
// Pauli insertions — with RNG consumption identical to the dense channels',
// so trajectories that later hand off to dense kernels are bit-for-bit the
// trajectories the plain backend would have run. Dense states and
// non-Pauli models report handled=false and take the executor's dense path.
func (b *Backend) ApplyNoise(s *statevec.State, g gate.Gate, m *noise.Model, r *rng.RNG) (int, bool) {
	t := b.shadows[s]
	if t == nil {
		return 0, false
	}
	ops, ok := m.ApplyPauliAfterGate(g, r, t.ApplyPauli)
	if ok && ops > 0 {
		b.stats.clifford.Add(int64(ops))
	}
	return ops, ok
}

// SampleState implements core.StateShadow: shadowed leaves sample by tableau
// measurement in O(n^2) without touching amplitudes; dense leaves sample the
// usual cumulative scan. Tableau measurement collapses the shadow, which is
// safe: the executor overwrites leaf buffers before reuse.
func (b *Backend) SampleState(s *statevec.State, r *rng.RNG) uint64 {
	if t := b.shadows[s]; t != nil {
		return t.MeasureAll(r)
	}
	return s.Sample(r)
}

// Compile-time interface checks.
var (
	_ core.Backend     = (*Backend)(nil)
	_ core.Forker      = (*Backend)(nil)
	_ core.StateShadow = (*Backend)(nil)
)

func init() {
	core.Register("stabilizer", func() core.Backend { return NewBackend() })
}
