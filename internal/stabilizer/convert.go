// Tableau → state-vector conversion: the handoff half of the hybrid
// Clifford dispatcher. A stabilizer state |psi> is the unique (+1)-eigenstate
// of its n stabilizer generators, so
//
//	|psi><psi| = prod_i (I + g_i) / 2
//
// and for any basis state |x> with <x|psi> != 0 the projector product
// applied to |x> is proportional to |psi>. The conversion finds such an x by
// measuring every qubit on a scratch copy with forced outcomes (a measured
// outcome always has nonzero probability), then applies the n projectors to
// a dense vector in O(n * 2^n) — the same order as applying n dense gates,
// paid once per handoff instead of once per Clifford gate.
//
// All intermediate amplitudes are Gaussian integers (the projector sums add
// and subtract exact +-1 and +-i multiples), so cancellation is exact and
// the only rounding is the final normalization.
package stabilizer

import (
	"fmt"
	"math/bits"
	"math/cmplx"

	"tqsim/internal/statevec"
)

// iPow is i^k for k in 0..3.
var iPow = [4]complex128{1, 1i, -1, -1i}

// basisCandidate returns a computational basis state with nonzero amplitude
// in the tableau's state, deterministically (random measurement branches are
// forced to 0). The tableau is not modified.
func (t *Tableau) basisCandidate() uint64 {
	if t.n > 64 {
		panic("stabilizer: basisCandidate supports at most 64 qubits")
	}
	c := t.Clone()
	var out uint64
	zero := func() uint8 { return 0 }
	for q := 0; q < c.n; q++ {
		if c.measureWith(q, zero) == 1 {
			out |= 1 << uint(q)
		}
	}
	return out
}

// rowMasks packs stabilizer row i's X and Z parts into single words (valid
// for n <= 64) plus the phase contribution that does not depend on the basis
// state: 2*r + (#Y sites), mod 4.
func (t *Tableau) rowMasks(row int) (xmask, zmask uint64, basePhase int) {
	xmask = t.x[row][0]
	zmask = t.z[row][0]
	basePhase = 2 * int(t.r[row])
	basePhase += bits.OnesCount64(xmask & zmask)
	return xmask, zmask, basePhase & 3
}

// WriteState materializes the tableau's state into s, overwriting every
// amplitude. Widths must match and n must be small enough for a dense state
// (the statevec engine caps at 30 qubits, well under this routine's 64-qubit
// packing limit). The global phase is canonicalized so the amplitude of the
// projection's anchor basis state is real and positive; callers comparing
// against an independently evolved dense state should compare up to global
// phase.
func (t *Tableau) WriteState(s *statevec.State) {
	if t.n != s.NumQubits() {
		panic(fmt.Sprintf("stabilizer: WriteState width mismatch (%d vs %d)",
			t.n, s.NumQubits()))
	}
	if t.n > 64 {
		panic("stabilizer: WriteState supports at most 64 qubits")
	}
	anchor := t.basisCandidate()
	// The projector product is computed in local interleaved buffers (every
	// intermediate value is a Gaussian integer, see the package comment) and
	// bulk-written into the SoA state once at the end.
	cur := make([]complex128, s.Dim())
	cur[anchor] = 1
	next := make([]complex128, len(cur))
	for row := t.n; row < 2*t.n; row++ {
		// next = (I + g_row) cur, dropping the 1/2: normalization is exact
		// at the end and unnormalized sums keep every value a Gaussian
		// integer.
		xmask, zmask, basePhase := t.rowMasks(row)
		clear(next)
		for b, a := range cur {
			if a == 0 {
				continue
			}
			next[b] += a
			// g |b> = i^(base + 2*popcount(z & b)) |b ^ x>: Z sites
			// contribute (-1)^b_j, Y sites i*(-1)^b_j with the i folded
			// into basePhase.
			ph := iPow[(basePhase+2*bits.OnesCount64(zmask&uint64(b)))&3]
			next[uint64(b)^xmask] += ph * a
		}
		cur, next = next, cur
	}
	// The anchor survives projection with a real positive coefficient only
	// up to the stabilizer phases; canonicalize on it, then normalize.
	if a := cur[anchor]; a != 0 {
		rot := cmplx.Conj(a) / complex(cmplx.Abs(a), 0)
		for i := range cur {
			cur[i] *= rot
		}
	}
	s.SetAmplitudes(cur)
	s.Normalize()
}

// ToState returns the tableau's state as a fresh dense state vector.
func (t *Tableau) ToState() *statevec.State {
	s := statevec.NewZero(t.n)
	t.WriteState(s)
	return s
}
