package stabilizer_test

// Tests for the hybrid-dispatch machinery: tableau -> state-vector
// conversion, the gate-apply adapter through the tree executor, and the
// pure-tableau tree runner. These live in an external test package because
// they drive internal/core, which the stabilizer package imports.

import (
	"math"
	"testing"

	"tqsim/internal/core"
	"tqsim/internal/gate"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/rng"
	"tqsim/internal/stabilizer"
	"tqsim/internal/statevec"
	"tqsim/internal/workloads"
)

// TestWriteStateMatchesDense checks the conversion against independent
// dense evolution on random Clifford circuits: fidelity must be 1 (global
// phase is not compared; the conversion canonicalizes its own).
func TestWriteStateMatchesDense(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		c := workloads.Clifford(6, 5, seed)
		tab := stabilizer.New(c.NumQubits)
		dense := statevec.NewZero(c.NumQubits)
		for _, g := range c.Gates {
			if err := tab.Apply(g); err != nil {
				t.Fatal(err)
			}
			dense.Apply(g)
		}
		conv := tab.ToState()
		if f := conv.FidelityWith(dense); math.Abs(f-1) > 1e-12 {
			t.Fatalf("seed %d: conversion fidelity %g", seed, f)
		}
		if n := conv.Norm(); math.Abs(n-1) > 1e-12 {
			t.Fatalf("seed %d: conversion norm %g", seed, n)
		}
	}
}

// TestCYMatchesDense pins the tableau CY decomposition against the dense
// kernel.
func TestCYMatchesDense(t *testing.T) {
	gates := []gate.Gate{
		gate.New(gate.KindH, 0),
		gate.New(gate.KindCY, 0, 1),
		gate.New(gate.KindS, 1),
		gate.New(gate.KindCY, 1, 0),
	}
	tab := stabilizer.New(2)
	dense := statevec.NewZero(2)
	for _, g := range gates {
		if err := tab.Apply(g); err != nil {
			t.Fatal(err)
		}
		dense.Apply(g)
	}
	if f := tab.ToState().FidelityWith(dense); math.Abs(f-1) > 1e-12 {
		t.Fatalf("CY fidelity %g", f)
	}
}

// TestIsCliffordKindMatchesApply locks the O(1) kind predicate to the
// tableau engine's actual gate support: for every gate kind, IsCliffordKind
// must agree with whether Tableau.Apply accepts an instance of it.
func TestIsCliffordKindMatchesApply(t *testing.T) {
	one := []float64{0.3}
	instances := []gate.Gate{
		gate.New(gate.KindI, 0), gate.New(gate.KindX, 0), gate.New(gate.KindY, 0),
		gate.New(gate.KindZ, 0), gate.New(gate.KindH, 0), gate.New(gate.KindS, 0),
		gate.New(gate.KindSdg, 0), gate.New(gate.KindT, 0), gate.New(gate.KindTdg, 0),
		gate.New(gate.KindSX, 0), gate.New(gate.KindSY, 0), gate.New(gate.KindSW, 0),
		gate.NewParam(gate.KindRX, one, 0), gate.NewParam(gate.KindRY, one, 0),
		gate.NewParam(gate.KindRZ, one, 0), gate.NewParam(gate.KindP, one, 0),
		gate.NewParam(gate.KindU3, []float64{0.1, 0.2, 0.3}, 0),
		gate.New(gate.KindCX, 0, 1), gate.New(gate.KindCY, 0, 1),
		gate.New(gate.KindCZ, 0, 1), gate.NewParam(gate.KindCP, one, 0, 1),
		gate.NewParam(gate.KindCRZ, one, 0, 1), gate.NewParam(gate.KindCRX, one, 0, 1),
		gate.NewParam(gate.KindCRY, one, 0, 1), gate.New(gate.KindCH, 0, 1),
		gate.New(gate.KindSWAP, 0, 1), gate.New(gate.KindCCX, 0, 1, 2),
		gate.New(gate.KindCSWAP, 0, 1, 2),
	}
	for _, g := range instances {
		err := stabilizer.New(3).Apply(g)
		if got, want := stabilizer.IsCliffordKind(g.Kind), err == nil; got != want {
			t.Fatalf("IsCliffordKind(%v)=%v but Apply error=%v", g.Kind, got, err)
		}
	}
}

// TestMeasureDestabilizerPhase is the regression test for the rowsum fix:
// measuring after this sequence multiplies the measured stabilizer into its
// own anticommuting destabilizer partner (Y_q * X_q = iZ_q), which used to
// panic on the imaginary intermediate phase. Destabilizer phase bits are
// write-only, so the measurement must succeed, and outcome statistics must
// match the dense engine's marginal.
func TestMeasureDestabilizerPhase(t *testing.T) {
	build := func() *stabilizer.Tableau {
		tab := stabilizer.New(2)
		for _, g := range []gate.Gate{
			gate.New(gate.KindSdg, 1),
			gate.New(gate.KindSWAP, 1, 0),
			gate.New(gate.KindH, 0),
		} {
			if err := tab.Apply(g); err != nil {
				t.Fatal(err)
			}
		}
		return tab
	}
	r := rng.New(7)
	ones := 0
	const shots = 4000
	for i := 0; i < shots; i++ {
		if build().Measure(0, r) == 1 {
			ones++
		}
	}
	// The dense state assigns probability 1/2 to qubit 0 being 1.
	if frac := float64(ones) / shots; math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("qubit-0 marginal %.3f, want ~0.5", frac)
	}
}

// TestHybridBackendMatchesPlainOnClifford runs a Clifford circuit with a
// non-Clifford-triggering noise model through the executor on both the
// plain and the hybrid stabilizer backend: the hybrid adapter must shadow
// the whole ideal prefix on tableaux and still produce a valid,
// deterministic histogram (outcome distribution checked against the dense
// run via total variation).
func TestHybridBackendMatchesPlainOnClifford(t *testing.T) {
	c := workloads.Clifford(5, 6, 3)
	plan := partition.FromStructure(c, []int{64, 8})
	plain, err := (&core.Executor{Seed: 9}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	be := stabilizer.NewBackend()
	hybrid, err := (&core.Executor{Seed: 9, Backend: be}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.Outcomes != plain.Outcomes {
		t.Fatalf("outcomes %d vs %d", hybrid.Outcomes, plain.Outcomes)
	}
	if be.DenseGates() != 0 || be.Handoffs() != 0 {
		t.Fatalf("ideal Clifford run touched dense kernels: dense=%d handoffs=%d",
			be.DenseGates(), be.Handoffs())
	}
	if tv := metrics.TVDCounts(plain.Counts, hybrid.Counts, plain.Outcomes); tv > 0.12 {
		t.Fatalf("hybrid vs plain total variation %.3f", tv)
	}
	// Determinism: an independent identical run must match byte for byte.
	again, err := (&core.Executor{Seed: 9, Backend: stabilizer.NewBackend(), Parallelism: 8}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCounts(t, hybrid.Counts, again.Counts)
}

// TestHybridHandoffMatchesPlain runs a Clifford-prefix circuit (tableau
// prefix, dense tail after the handoff) and compares the full histogram
// against the plain backend: after materialization the leaf sampling is
// dense, so the histogram must be identical given that converted amplitudes
// agree to ~1e-15 (a sampling flip would need the RNG to land within fp
// noise of a cumulative boundary).
func TestHybridHandoffMatchesPlain(t *testing.T) {
	c := workloads.CliffordPrefix(5, 5, 11)
	plan := partition.FromStructure(c, []int{48, 4})
	plain, err := (&core.Executor{Seed: 13}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	be := stabilizer.NewBackend()
	hybrid, err := (&core.Executor{Seed: 13, Backend: be}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if be.Handoffs() == 0 || be.CliffordGates() == 0 || be.DenseGates() == 0 {
		t.Fatalf("expected mixed execution: clifford=%d dense=%d handoffs=%d",
			be.CliffordGates(), be.DenseGates(), be.Handoffs())
	}
	assertSameCounts(t, plain.Counts, hybrid.Counts)

	// Counters aggregate across forked workers: a parallel run of the same
	// plan must report the same totals on the caller's instance.
	bePar := stabilizer.NewBackend()
	if _, err := (&core.Executor{Seed: 13, Backend: bePar, Parallelism: 8}).Run(plan); err != nil {
		t.Fatal(err)
	}
	if bePar.CliffordGates() != be.CliffordGates() || bePar.DenseGates() != be.DenseGates() ||
		bePar.Handoffs() != be.Handoffs() {
		t.Fatalf("parallel counters diverge: clifford %d vs %d, dense %d vs %d, handoffs %d vs %d",
			bePar.CliffordGates(), be.CliffordGates(), bePar.DenseGates(), be.DenseGates(),
			bePar.Handoffs(), be.Handoffs())
	}
}

// TestHybridBackendWithPauliNoiseMatchesPlain: Pauli (depolarizing) noise
// is absorbed into the tableau with RNG consumption identical to the dense
// channels', so even a noisy Clifford-prefix trajectory hands off to the
// dense kernels on exactly the stream the plain backend would have used —
// the histogram must be byte-identical, and the prefix (gates and noise
// insertions) must have run on tableaux.
func TestHybridBackendWithPauliNoiseMatchesPlain(t *testing.T) {
	c := workloads.CliffordPrefix(5, 5, 19)
	m := noise.NewSycamore()
	plan := partition.FromStructure(c, []int{32, 4})
	plain, err := (&core.Executor{Noise: m, Seed: 4}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	be := stabilizer.NewBackend()
	hybrid, err := (&core.Executor{Noise: m, Seed: 4, Backend: be}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if be.CliffordGates() == 0 || be.Handoffs() == 0 {
		t.Fatalf("Pauli noise was not absorbed: clifford=%d handoffs=%d",
			be.CliffordGates(), be.Handoffs())
	}
	assertSameCounts(t, plain.Counts, hybrid.Counts)
}

// TestHybridBackendWithDampingNoiseMatchesPlain: non-Pauli channels need
// amplitudes after every gate, so the adapter materializes at the first
// noisy gate and must degenerate to exactly the dense execution.
func TestHybridBackendWithDampingNoiseMatchesPlain(t *testing.T) {
	c := workloads.QSC(5, 4, 3)
	m := noise.NewAmplitudeDamping(0.01)
	plan := partition.FromStructure(c, []int{16, 4})
	plain, err := (&core.Executor{Noise: m, Seed: 4}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := (&core.Executor{Noise: m, Seed: 4, Backend: stabilizer.NewBackend()}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCounts(t, plain.Counts, hybrid.Counts)
}

// TestRunTreeDeterminism checks the pure-tableau tree runner's histograms
// are identical across parallelism settings and repeated runs.
func TestRunTreeDeterminism(t *testing.T) {
	c := workloads.Clifford(8, 6, 21)
	m := noise.NewSycamore()
	plan := partition.FromStructure(c, []int{32, 4})
	ref, err := stabilizer.RunTree(plan, m, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Outcomes != plan.TotalOutcomes() {
		t.Fatalf("outcomes %d, want %d", ref.Outcomes, plan.TotalOutcomes())
	}
	for _, par := range []int{1, 3, 8} {
		res, err := stabilizer.RunTree(plan, m, 5, par)
		if err != nil {
			t.Fatal(err)
		}
		assertSameCounts(t, ref.Counts, res.Counts)
	}
}

// TestRunTreeMatchesDenseDistribution cross-checks the tableau tree against
// the dense executor distributionally on a noisy Clifford workload — the
// two engines share trajectory semantics but not RNG consumption, so only
// the distributions agree.
func TestRunTreeMatchesDenseDistribution(t *testing.T) {
	c := workloads.BV(6, workloads.BVSecret(6))
	m := noise.NewDepolarizing(0.002, 0.02)
	plan := partition.FromStructure(c, []int{512})
	tab, err := stabilizer.RunTree(plan, m, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := (&core.Executor{Noise: m, Seed: 3}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if tv := metrics.TVDCounts(tab.Counts, dense.Counts, tab.Outcomes); tv > 0.1 {
		t.Fatalf("tableau vs dense total variation %.3f", tv)
	}
}

// TestRunTreeWide runs a 40-qubit Clifford workload — far beyond the dense
// engines' reach — through the tableau tree with noise, checking shape and
// determinism.
func TestRunTreeWide(t *testing.T) {
	c := workloads.GHZ(40)
	m := noise.NewDepolarizing(0.001, 0.01)
	plan := partition.Baseline(c, 256)
	res, err := stabilizer.RunTree(plan, m, 17, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes != 256 {
		t.Fatalf("outcomes %d", res.Outcomes)
	}
	// Under weak noise the two GHZ branches dominate.
	all0, all1 := res.Counts[0], res.Counts[(uint64(1)<<40)-1]
	if all0+all1 < 180 {
		t.Fatalf("GHZ branches hold %d/256 outcomes", all0+all1)
	}
	again, err := stabilizer.RunTree(plan, m, 17, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCounts(t, res.Counts, again.Counts)
}

// TestRunTreeRejectsNonClifford ensures the runner refuses circuits and
// models it cannot simulate exactly.
func TestRunTreeRejectsNonClifford(t *testing.T) {
	plan := partition.Baseline(workloads.QFT(4, true), 8)
	if _, err := stabilizer.RunTree(plan, nil, 1, 0); err == nil {
		t.Fatal("expected error for non-Clifford circuit")
	}
	plan = partition.Baseline(workloads.GHZ(4), 8)
	if _, err := stabilizer.RunTree(plan, noise.NewAmplitudeDamping(0.01), 1, 0); err == nil {
		t.Fatal("expected error for non-Pauli noise")
	}
}

func assertSameCounts(t *testing.T, want, got map[uint64]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("histogram support %d vs %d", len(want), len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("outcome %d: %d vs %d", k, v, got[k])
		}
	}
}
