package stabilizer

import (
	"math"
	"testing"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/rng"
	"tqsim/internal/trajectory"
	"tqsim/internal/workloads"
)

func TestZeroStateMeasuresZero(t *testing.T) {
	tab := New(4)
	r := rng.New(1)
	if out := tab.MeasureAll(r); out != 0 {
		t.Fatalf("zero state measured %b", out)
	}
}

func TestXFlipsOutcome(t *testing.T) {
	tab := New(3)
	tab.X(1)
	if out := tab.MeasureAll(rng.New(1)); out != 0b010 {
		t.Fatalf("X result %b", out)
	}
}

func TestHGivesRandomOutcome(t *testing.T) {
	r := rng.New(7)
	ones := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		tab := New(1)
		tab.H(0)
		ones += tab.Measure(0, r)
	}
	f := float64(ones) / trials
	if math.Abs(f-0.5) > 0.02 {
		t.Fatalf("H outcome frequency %v", f)
	}
}

func TestMeasurementCollapse(t *testing.T) {
	// After measuring a superposed qubit, remeasuring gives the same bit.
	r := rng.New(9)
	for i := 0; i < 100; i++ {
		tab := New(1)
		tab.H(0)
		first := tab.Measure(0, r)
		second := tab.Measure(0, r)
		if first != second {
			t.Fatal("measurement did not collapse the state")
		}
	}
}

func TestBellCorrelations(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 200; i++ {
		tab := New(2)
		tab.H(0)
		tab.CX(0, 1)
		a := tab.Measure(0, r)
		b := tab.Measure(1, r)
		if a != b {
			t.Fatal("bell pair anticorrelated")
		}
	}
}

func TestGHZ(t *testing.T) {
	r := rng.New(13)
	sawZero, sawOnes := false, false
	for i := 0; i < 200; i++ {
		tab := New(5)
		tab.H(0)
		for q := 1; q < 5; q++ {
			tab.CX(q-1, q)
		}
		out := tab.MeasureAll(r)
		if out != 0 && out != 31 {
			t.Fatalf("GHZ measured %b", out)
		}
		if out == 0 {
			sawZero = true
		} else {
			sawOnes = true
		}
	}
	if !sawZero || !sawOnes {
		t.Fatal("GHZ outcomes not random")
	}
}

func TestSGate(t *testing.T) {
	// HSSH = HZH = X: |0> -> |1>.
	tab := New(1)
	tab.H(0)
	tab.S(0)
	tab.S(0)
	tab.H(0)
	if out := tab.Measure(0, rng.New(1)); out != 1 {
		t.Fatalf("HSSH|0> measured %d", out)
	}
}

func TestSdgViaApply(t *testing.T) {
	tab := New(1)
	c := circuit.New("sdg", 1).H(0).S(0).Sdg(0).H(0)
	for _, g := range c.Gates {
		if err := tab.Apply(g); err != nil {
			t.Fatal(err)
		}
	}
	if out := tab.Measure(0, rng.New(1)); out != 0 {
		t.Fatalf("H S Sdg H |0> measured %d", out)
	}
}

func TestSwap(t *testing.T) {
	tab := New(2)
	tab.X(0)
	if err := tab.Apply(gate.New(gate.KindSWAP, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if out := tab.MeasureAll(rng.New(1)); out != 0b10 {
		t.Fatalf("swap result %b", out)
	}
}

func TestIsClifford(t *testing.T) {
	if !IsClifford(workloads.BV(8, workloads.BVSecret(8))) {
		t.Fatal("BV should be Clifford")
	}
	if IsClifford(workloads.QFT(4, false)) {
		t.Fatal("QFT should not be Clifford")
	}
}

func TestRejectsNonClifford(t *testing.T) {
	tab := New(1)
	if err := tab.Apply(gate.New(gate.KindT, 0)); err == nil {
		t.Fatal("T gate accepted")
	}
}

func TestNoisyBVMatchesStatevectorTrajectories(t *testing.T) {
	// The independent-oracle test: stabilizer and state-vector trajectory
	// simulations of noisy BV must produce statistically matching outcome
	// distributions.
	c := workloads.BV(7, workloads.BVSecret(7))
	const shots = 30000
	stab, err := Counts(c, 0.01, 0.05, shots, 3)
	if err != nil {
		t.Fatal(err)
	}
	sv := trajectory.Run(c, noise.NewDepolarizing(0.01, 0.05), shots,
		trajectory.Options{Seed: 4, Parallelism: 8})
	a := metrics.FromCounts(stab, 1<<7)
	b := metrics.FromCounts(sv.Counts, 1<<7)
	if tvd := metrics.TVD(a, b); tvd > 0.025 {
		t.Fatalf("stabilizer vs statevector TVD %v", tvd)
	}
}

func TestDeterministicMeasurementOfStabilizerState(t *testing.T) {
	// |0> H S S H  = X|0> = |1> is deterministic; repeat many seeds.
	for seed := uint64(0); seed < 20; seed++ {
		tab := New(2)
		tab.H(0)
		tab.S(0)
		tab.S(0)
		tab.H(0)
		tab.CX(0, 1)
		out := tab.MeasureAll(rng.New(seed))
		if out != 0b11 {
			t.Fatalf("seed %d: measured %b, want 11", seed, out)
		}
	}
}

func TestWideRegister(t *testing.T) {
	// Exercise the multi-word bit-packing path (> 64 qubits).
	tab := New(70)
	tab.X(69)
	tab.H(0)
	tab.CX(0, 65)
	r := rng.New(5)
	a := tab.Measure(0, r)
	b := tab.Measure(65, r)
	if a != b {
		t.Fatal("wide-register CX correlation broken")
	}
	if tab.Measure(69, r) != 1 {
		t.Fatal("wide-register X lost")
	}
}
