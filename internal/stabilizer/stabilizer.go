// Package stabilizer implements a CHP-style tableau simulator (Aaronson &
// Gottesman 2004) for Clifford circuits under Pauli noise. The paper notes
// (§4.2) that the BV benchmark is Clifford-only and therefore admits exact
// polynomial-time stabilizer simulation under Pauli channels; this package
// provides that independent oracle, which the test suite uses to cross-check
// the state-vector trajectory engine on Clifford workloads.
//
// The tableau stores 2n+1 rows of X/Z bit matrices plus sign bits: rows
// 0..n-1 are destabilizers, rows n..2n-1 stabilizers, and row 2n is
// scratch for measurement.
package stabilizer

import (
	"fmt"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/rng"
)

// Tableau is the stabilizer state of an n-qubit system.
type Tableau struct {
	n int
	// x[i][j], z[i][j] are the X/Z parts of row i for qubit j, packed in
	// uint64 words.
	x, z  [][]uint64
	r     []uint8 // phase bits (0 or 1, meaning +1 or -1)
	words int
}

// New returns the |0...0> stabilizer state.
func New(n int) *Tableau {
	if n < 1 {
		panic("stabilizer: need at least one qubit")
	}
	words := (n + 63) / 64
	t := &Tableau{n: n, words: words}
	rows := 2*n + 1
	t.x = make([][]uint64, rows)
	t.z = make([][]uint64, rows)
	t.r = make([]uint8, rows)
	for i := range t.x {
		t.x[i] = make([]uint64, words)
		t.z[i] = make([]uint64, words)
	}
	for i := 0; i < n; i++ {
		t.setX(i, i, true)   // destabilizer i = X_i
		t.setZ(n+i, i, true) // stabilizer i = Z_i
	}
	return t
}

// NumQubits returns n.
func (t *Tableau) NumQubits() int { return t.n }

// Bytes returns the approximate memory footprint of the tableau — the
// polynomial-space analogue of statevec.State.Bytes for cost accounting.
func (t *Tableau) Bytes() int64 { return TableauBytes(t.n) }

// TableauBytes returns an n-qubit tableau's footprint without allocating
// one: 2n+1 rows of x and z bit-vectors (ceil(n/64) words each) plus the
// phase column. The planner's memory estimates and the tree runner's peak
// accounting both use this, so admission control and the reported
// PeakStateBytes always agree.
func TableauBytes(n int) int64 {
	rows := int64(2*n + 1)
	words := int64((n + 63) / 64)
	return rows*words*16 + rows
}

// Clone deep-copies the tableau.
func (t *Tableau) Clone() *Tableau {
	c := New(t.n)
	c.CopyFrom(t)
	return c
}

// CopyFrom overwrites t with src without reallocating. Widths must match.
// This is the tableau analogue of statevec.State.CopyFrom: O(n^2/64) words
// instead of O(2^n) amplitudes, which is what makes tree reuse essentially
// free on the stabilizer engine.
func (t *Tableau) CopyFrom(src *Tableau) {
	if t.n != src.n {
		panic("stabilizer: CopyFrom width mismatch")
	}
	for i := range t.x {
		copy(t.x[i], src.x[i])
		copy(t.z[i], src.z[i])
	}
	copy(t.r, src.r)
}

func (t *Tableau) getX(row, q int) bool { return t.x[row][q/64]>>(uint(q)%64)&1 == 1 }
func (t *Tableau) getZ(row, q int) bool { return t.z[row][q/64]>>(uint(q)%64)&1 == 1 }

func (t *Tableau) setX(row, q int, v bool) {
	if v {
		t.x[row][q/64] |= 1 << (uint(q) % 64)
	} else {
		t.x[row][q/64] &^= 1 << (uint(q) % 64)
	}
}

func (t *Tableau) setZ(row, q int, v bool) {
	if v {
		t.z[row][q/64] |= 1 << (uint(q) % 64)
	} else {
		t.z[row][q/64] &^= 1 << (uint(q) % 64)
	}
}

// H applies a Hadamard to qubit q.
func (t *Tableau) H(q int) {
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.getX(i, q), t.getZ(i, q)
		if xi && zi {
			t.r[i] ^= 1
		}
		t.setX(i, q, zi)
		t.setZ(i, q, xi)
	}
}

// S applies the phase gate to qubit q.
func (t *Tableau) S(q int) {
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.getX(i, q), t.getZ(i, q)
		if xi && zi {
			t.r[i] ^= 1
		}
		t.setZ(i, q, zi != xi)
	}
}

// X applies Pauli-X (= HZH; flips stabilizer phases with Z on q).
func (t *Tableau) X(q int) {
	for i := 0; i < 2*t.n; i++ {
		if t.getZ(i, q) {
			t.r[i] ^= 1
		}
	}
}

// Z applies Pauli-Z.
func (t *Tableau) Z(q int) {
	for i := 0; i < 2*t.n; i++ {
		if t.getX(i, q) {
			t.r[i] ^= 1
		}
	}
}

// Y applies Pauli-Y (= iXZ; phase flips where X xor Z acts).
func (t *Tableau) Y(q int) {
	t.Z(q)
	t.X(q)
}

// CX applies a CNOT with control c and target g.
func (t *Tableau) CX(c, g int) {
	for i := 0; i < 2*t.n; i++ {
		xc, zc := t.getX(i, c), t.getZ(i, c)
		xt, zt := t.getX(i, g), t.getZ(i, g)
		if xc && zt && (xt == zc) {
			t.r[i] ^= 1
		}
		t.setX(i, g, xt != xc)
		t.setZ(i, c, zc != zt)
	}
}

// CZ applies a controlled-Z (H on target conjugating CX).
func (t *Tableau) CZ(a, b int) {
	t.H(b)
	t.CX(a, b)
	t.H(b)
}

// rowsum implements the CHP "rowsum" operation: row h *= row i, tracking
// the phase exponent mod 4.
//
// For stabilizer and scratch rows (h >= n) the summed rows always commute,
// so the resulting phase is guaranteed real (+-1) and an imaginary result
// is a corruption bug worth panicking over. Destabilizer rows (h < n) are
// different: the measurement update multiplies the measured stabilizer into
// every row carrying X on the target — including the destabilizer paired
// with an anticommuting stabilizer (e.g. Y_q times X_q = iZ_q), where an
// odd phase exponent is legitimate. Destabilizer phase bits are write-only
// in the algorithm (no observable ever reads them; the destabilizer group
// is defined up to phase), so the imaginary factor is dropped there, as in
// the reference CHP implementation.
func (t *Tableau) rowsum(h, i int) {
	// Phase exponent accumulates 2*r_h + 2*r_i + sum of g() terms.
	phase := 2*int(t.r[h]) + 2*int(t.r[i])
	for q := 0; q < t.n; q++ {
		x1, z1 := t.getX(i, q), t.getZ(i, q)
		x2, z2 := t.getX(h, q), t.getZ(h, q)
		phase += gPhase(x1, z1, x2, z2)
		t.setX(h, q, x1 != x2)
		t.setZ(h, q, z1 != z2)
	}
	phase %= 4
	if phase < 0 {
		phase += 4
	}
	if phase&1 == 1 && h >= t.n {
		panic("stabilizer: rowsum produced imaginary phase on a stabilizer row")
	}
	// For odd phases (destabilizer rows only) this drops the imaginary
	// unit and keeps the sign bit.
	t.r[h] = uint8(phase >> 1)
}

// gPhase is the CHP g function: the exponent of i contributed when the
// Pauli with bits (x1,z1) multiplies (x2,z2).
func gPhase(x1, z1, x2, z2 bool) int {
	switch {
	case !x1 && !z1:
		return 0
	case x1 && z1: // Y
		return b2i(z2) - b2i(x2)
	case x1 && !z1: // X
		if z2 && x2 {
			return 1
		}
		if z2 && !x2 {
			return -1
		}
		return 0
	default: // Z
		if x2 && !z2 {
			return 1
		}
		if x2 && z2 {
			return -1
		}
		return 0
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Measure measures qubit q in the computational basis, returning the
// outcome bit. Random outcomes draw from r.
func (t *Tableau) Measure(q int, r *rng.RNG) int {
	return t.measureWith(q, func() uint8 {
		if r.Float64() < 0.5 {
			return 1
		}
		return 0
	})
}

// measureWith measures qubit q, resolving random outcomes through choose.
// Passing a constant choose function collapses onto a fixed branch, which is
// how the dense-conversion code deterministically finds a basis state of
// nonzero amplitude.
func (t *Tableau) measureWith(q int, choose func() uint8) int {
	n := t.n
	// Case 1: some stabilizer anticommutes with Z_q (has X on q) —
	// outcome is random.
	p := -1
	for i := n; i < 2*n; i++ {
		if t.getX(i, q) {
			p = i
			break
		}
	}
	if p >= 0 {
		for i := 0; i < 2*n; i++ {
			if i != p && t.getX(i, q) {
				t.rowsum(i, p)
			}
		}
		// Destabilizer row p-n gets the old stabilizer; stabilizer p
		// becomes ±Z_q.
		copy(t.x[p-n], t.x[p])
		copy(t.z[p-n], t.z[p])
		t.r[p-n] = t.r[p]
		for w := 0; w < t.words; w++ {
			t.x[p][w] = 0
			t.z[p][w] = 0
		}
		t.setZ(p, q, true)
		out := choose()
		t.r[p] = out
		return int(out)
	}
	// Case 2: deterministic — accumulate into the scratch row.
	scratch := 2 * n
	for w := 0; w < t.words; w++ {
		t.x[scratch][w] = 0
		t.z[scratch][w] = 0
	}
	t.r[scratch] = 0
	for i := 0; i < n; i++ {
		if t.getX(i, q) {
			t.rowsum(scratch, i+n)
		}
	}
	return int(t.r[scratch])
}

// MeasureAll measures every qubit (in order) and returns the packed
// outcome.
func (t *Tableau) MeasureAll(r *rng.RNG) uint64 {
	if t.n > 64 {
		panic("stabilizer: MeasureAll supports at most 64 qubits")
	}
	var out uint64
	for q := 0; q < t.n; q++ {
		if t.Measure(q, r) == 1 {
			out |= 1 << uint(q)
		}
	}
	return out
}

// Apply applies a Clifford gate instance. Non-Clifford kinds return an
// error.
func (t *Tableau) Apply(g gate.Gate) error {
	switch g.Kind {
	case gate.KindI:
	case gate.KindX:
		t.X(g.Qubits[0])
	case gate.KindY:
		t.Y(g.Qubits[0])
	case gate.KindZ:
		t.Z(g.Qubits[0])
	case gate.KindH:
		t.H(g.Qubits[0])
	case gate.KindS:
		t.S(g.Qubits[0])
	case gate.KindSdg:
		t.S(g.Qubits[0])
		t.Z(g.Qubits[0])
	case gate.KindCX:
		t.CX(g.Qubits[0], g.Qubits[1])
	case gate.KindCY:
		// CY = S_t CX S_t† (Y = S X S†): apply S† to the target, CX, S.
		tgt := g.Qubits[1]
		t.S(tgt)
		t.Z(tgt) // S then Z is S†
		t.CX(g.Qubits[0], tgt)
		t.S(tgt)
	case gate.KindCZ:
		t.CZ(g.Qubits[0], g.Qubits[1])
	case gate.KindSWAP:
		a, b := g.Qubits[0], g.Qubits[1]
		t.CX(a, b)
		t.CX(b, a)
		t.CX(a, b)
	default:
		return fmt.Errorf("stabilizer: %s is not a supported Clifford gate", g.Kind)
	}
	return nil
}

// ApplyPauli applies Pauli index p (1=X, 2=Y, 3=Z, matching the encoding
// of noise.Model.ApplyPauliAfterGate) to qubit q; 0 is the identity.
func (t *Tableau) ApplyPauli(q, p int) {
	switch p {
	case 1:
		t.X(q)
	case 2:
		t.Y(q)
	case 3:
		t.Z(q)
	}
}

// IsCliffordKind reports whether Apply handles the gate kind. It must stay
// in lockstep with Apply's switch; TestIsCliffordKindMatchesApply enforces
// that.
func IsCliffordKind(k gate.Kind) bool {
	switch k {
	case gate.KindI, gate.KindX, gate.KindY, gate.KindZ, gate.KindH,
		gate.KindS, gate.KindSdg, gate.KindCX, gate.KindCY, gate.KindCZ,
		gate.KindSWAP:
		return true
	}
	return false
}

// IsClifford reports whether every gate of the circuit is in the supported
// Clifford set. O(gates): a kind check, no tableau evolution.
func IsClifford(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		if !IsCliffordKind(g.Kind) {
			return false
		}
	}
	return true
}

// RunNoisy performs one Pauli-noise trajectory of a Clifford circuit:
// depolarizing insertions after each gate at the given rates, then a full
// measurement. It returns an error for non-Clifford gates.
func RunNoisy(c *circuit.Circuit, p1, p2 float64, r *rng.RNG) (uint64, error) {
	t := New(c.NumQubits)
	for _, g := range c.Gates {
		if err := t.Apply(g); err != nil {
			return 0, err
		}
		if g.Arity() == 1 {
			if p1 > 0 && r.Float64() < p1 {
				t.ApplyPauli(g.Qubits[0], 1+r.Intn(3))
			}
		} else if p2 > 0 && r.Float64() < p2 {
			k := 1 + r.Intn(15)
			t.ApplyPauli(g.Qubits[0], k&3)
			t.ApplyPauli(g.Qubits[1], k>>2)
		}
	}
	return t.MeasureAll(r), nil
}

// Counts runs `shots` noisy Clifford trajectories and histograms outcomes.
func Counts(c *circuit.Circuit, p1, p2 float64, shots int, seed uint64) (map[uint64]int, error) {
	root := rng.New(seed)
	out := make(map[uint64]int)
	for s := 0; s < shots; s++ {
		v, err := RunNoisy(c, p1, p2, root.SplitAt(uint64(s)))
		if err != nil {
			return nil, err
		}
		out[v]++
	}
	return out, nil
}
