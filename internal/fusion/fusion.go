// Package fusion implements a gate-fusion backend: gates accumulate into
// larger fused units before touching the state, so an ideal-circuit segment
// costs one kernel sweep per fused structure instead of one per gate. It
// stands in for the accelerated (cuStateVec-class) backend of the paper's
// Figure 12: a genuinely different execution engine behind the same
// core.Backend interface, demonstrating that TQSim's scheduler is
// backend-agnostic.
//
// Three fusion structures are maintained, with mutually disjoint qubit
// support:
//
//   - per-qubit 1q runs: consecutive single-qubit gates on one qubit
//     multiply into a single 2x2 matrix (one kernel sweep per run);
//   - a diagonal phase run: controlled-phase gates (CZ/CP) that share a
//     common qubit accumulate and apply in one pass over the common qubit's
//     half-space via statevec.ApplyPhaseRun — the QFT pattern, where row i
//     carries n-1-i CPs on one target, collapses from n-1-i quarter-space
//     sweeps to a single half-space sweep;
//   - a dense 2q block: a two-qubit gate without a specialized kernel
//     (CRX/CRY/SWAP/generic unitaries) opens a 4x4 block on its qubit pair;
//     subsequent same-pair two-qubit gates and single-qubit gates on either
//     block qubit fold into the 4x4 product, and the whole block applies in
//     one Apply2Q sweep (or one ApplyDiag2Q sweep when the product collapses
//     to a diagonal, e.g. the CX·RZ·CX ZZ-interaction pattern).
//
// Singleton flushes route to the exact kernels the plain backend uses
// (Apply1Q / ApplyCPhase / Apply2Q / the fast-path Apply dispatch), so a
// workload that admits no fusion executes bit-identically to the reference.
// The executor flushes before every noise channel, so noisy segments
// degenerate to exactly these singleton paths — the paper's §1 observation
// that noise disrupts fusion — while ideal segments fuse freely.
package fusion

import (
	"math/cmplx"

	"tqsim/internal/core"
	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/statevec"
)

// Backend buffers gates into fused structures. It satisfies core.Backend.
//
// Buffers are qubit-indexed slices grown on demand rather than maps: the
// executor flushes after every gate of a noisy segment, so the
// buffer/flush pair runs once per gate and map hashing + allocation would
// sit directly on the hot path. Fused products are multiplied in place into
// the pending storage, so a run of k gates costs one matrix allocation,
// not k.
type Backend struct {
	// pending[q] holds the accumulated 2x2 unitary awaiting application to
	// qubit q; it is valid iff runLen[q] > 0.
	pending []qmath.Matrix
	// pendGate[q] is the original gate when runLen[q] == 1, so a singleton
	// flush can route through the plain dispatcher's specialized kernel
	// (applyH, applyDiag1q, ...) instead of a dense 2x2 sweep.
	pendGate []gate.Gate
	// runLen tracks the constituent count of each pending matrix.
	runLen []int
	// touched lists qubits with possibly-pending work, so Flush skips the
	// untouched remainder of the register.
	touched []int

	// Diagonal phase run: controlled-phase gates whose pairs all share at
	// least one qubit. phCommon holds the qubits common to every entry
	// (empty == no active run); phPairs/phPhases list the entries in
	// arrival order.
	phCommon []int
	phPairs  [][2]int
	phPhases []complex128

	// Dense 2q block: blkM is the accumulated 4x4 product on pair blkQ
	// (blkQ[0] = low matrix bit), valid iff blkLen > 0. blkLen counts the
	// constituent gates folded in. blkGate is the opening gate, so a
	// singleton flush routes through the plain dispatcher's specialized
	// kernels (e.g. the SWAP permutation) instead of a dense 4x4 sweep.
	blkQ    [2]int
	blkM    qmath.Matrix
	blkGate gate.Gate
	blkLen  int

	// FusedRuns counts multi-constituent flushes of any structure;
	// SingleFlushes counts structures flushed with only one constituent
	// gate. The ratio quantifies how much fusion a workload admitted.
	// PhaseRuns and DenseBlocks break FusedRuns down by structure: fused
	// controlled-phase runs and fused dense 2q blocks respectively (1q runs
	// are the remainder).
	FusedRuns     int64
	SingleFlushes int64
	PhaseRuns     int64
	DenseBlocks   int64
}

// New returns an empty fusion backend.
func New() *Backend {
	return &Backend{}
}

// grow ensures the per-qubit buffers cover qubit q.
func (b *Backend) grow(q int) {
	for len(b.pending) <= q {
		b.pending = append(b.pending, qmath.Matrix{})
		b.pendGate = append(b.pendGate, gate.Gate{})
		b.runLen = append(b.runLen, 0)
	}
}

// Name implements core.Backend.
func (b *Backend) Name() string { return "fusion" }

// Fork implements core.Forker: fusion state is per-execution-stream, so
// parallel tree workers each get a fresh backend. Fusion statistics are
// then per-worker; callers aggregating FusedRuns should sum across forks if
// they need totals.
func (b *Backend) Fork() core.Backend { return New() }

// Compile-time interface checks.
var (
	_ core.Backend = (*Backend)(nil)
	_ core.Forker  = (*Backend)(nil)
)

func init() {
	core.Register("fusion", func() core.Backend { return New() })
}

// --- 4x4 and Kronecker helpers ---

// mul4x4 sets dst = m * p (4x4 row-major), reading both fully before
// writing so dst may alias m or p.
func mul4x4(dst, m, p []complex128) {
	var out [16]complex128
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out[4*r+c] = m[4*r]*p[c] + m[4*r+1]*p[4+c] +
				m[4*r+2]*p[8+c] + m[4*r+3]*p[12+c]
		}
	}
	copy(dst, out[:])
}

// kron2 expands the 2x2 matrix m acting on one bit of a two-qubit basis
// into a 4x4: bit selects which basis bit m acts on (0 = low, 1 = high);
// the other bit is identity.
func kron2(m []complex128, bit int) [16]complex128 {
	var k [16]complex128
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			rb, cb := r>>uint(bit)&1, c>>uint(bit)&1
			ro, co := r>>uint(1-bit)&1, c>>uint(1-bit)&1
			if ro == co {
				k[4*r+c] = m[2*rb+cb]
			}
		}
	}
	return k
}

// permute4 returns m with its two basis bits exchanged — the matrix of the
// same operator when the qubit pair is named in the opposite order.
func permute4(m []complex128) [16]complex128 {
	swap := [4]int{0, 2, 1, 3}
	var out [16]complex128
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out[4*r+c] = m[4*swap[r]+swap[c]]
		}
	}
	return out
}

// diag4 reports whether m is diagonal and returns its diagonal if so.
func diag4(m []complex128) (d [4]complex128, ok bool) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if r != c && m[4*r+c] != 0 {
				return d, false
			}
		}
		d[r] = m[4*r+r]
	}
	return d, true
}

// mul2x2 sets dst = m * p (2x2), reading both fully before writing so dst
// may alias p.
func mul2x2(dst, m, p []complex128) {
	d0 := m[0]*p[0] + m[1]*p[2]
	d1 := m[0]*p[1] + m[1]*p[3]
	d2 := m[2]*p[0] + m[3]*p[2]
	d3 := m[2]*p[1] + m[3]*p[3]
	dst[0], dst[1], dst[2], dst[3] = d0, d1, d2, d3
}

// --- structure queries ---

func (b *Backend) phaseRunActive() bool { return len(b.phPairs) > 0 }

// phaseRunHas reports whether q appears in any gate of the phase run.
func (b *Backend) phaseRunHas(q int) bool {
	for _, p := range b.phPairs {
		if p[0] == q || p[1] == q {
			return true
		}
	}
	return false
}

func (b *Backend) blockActive() bool { return b.blkLen > 0 }

func (b *Backend) blockHas(q int) bool {
	return b.blkLen > 0 && (b.blkQ[0] == q || b.blkQ[1] == q)
}

// blockSamePair reports whether {a, b} is the block's pair (either order).
func (b *Backend) blockSamePair(a, bq int) bool {
	return b.blkLen > 0 &&
		((b.blkQ[0] == a && b.blkQ[1] == bq) || (b.blkQ[0] == bq && b.blkQ[1] == a))
}

// --- flushes ---

// flushQubit applies the pending matrix for qubit q, if any. The qubit may
// linger on the touched list until the next Flush; runLen guards validity.
func (b *Backend) flushQubit(s *statevec.State, q int) {
	if q >= len(b.runLen) || b.runLen[q] == 0 {
		return
	}
	if b.runLen[q] == 1 {
		// The original gate, through the plain dispatcher: bit-identical to
		// unfused execution, and it keeps the specialized kernels (a noisy
		// segment degenerates every run to this path).
		s.Apply(b.pendGate[q])
		b.SingleFlushes++
	} else {
		s.Apply1Q(q, b.pending[q])
		b.FusedRuns++
	}
	b.runLen[q] = 0
}

// flushPhaseRun applies the accumulated controlled-phase run. A singleton
// routes to ApplyCPhase — the exact kernel the plain backend uses for
// CZ/CP — so unfused execution stays bit-identical to the reference.
func (b *Backend) flushPhaseRun(s *statevec.State) {
	if !b.phaseRunActive() {
		return
	}
	if len(b.phPairs) == 1 {
		s.ApplyCPhase(b.phPairs[0][0], b.phPairs[0][1], b.phPhases[0])
		b.SingleFlushes++
	} else {
		anchor := b.phCommon[0]
		others := make([]int, len(b.phPairs))
		for i, p := range b.phPairs {
			if p[0] == anchor {
				others[i] = p[1]
			} else {
				others[i] = p[0]
			}
		}
		s.ApplyPhaseRun(anchor, others, b.phPhases)
		b.FusedRuns++
		b.PhaseRuns++
	}
	b.phCommon = b.phCommon[:0]
	b.phPairs = b.phPairs[:0]
	b.phPhases = b.phPhases[:0]
}

// flushBlock applies the accumulated dense 2q block. A singleton is the
// original gate matrix and routes through Apply2Q exactly as the plain
// backend would; a fused block whose product collapsed to a diagonal takes
// the cheaper ApplyDiag2Q sweep.
func (b *Backend) flushBlock(s *statevec.State) {
	if b.blkLen == 0 {
		return
	}
	if b.blkLen == 1 {
		// The opening gate alone: apply it through the plain dispatcher so
		// specialized kernels (SWAP's permutation) still fire unfused.
		s.Apply(b.blkGate)
		b.SingleFlushes++
	} else {
		if d, ok := diag4(b.blkM.Data); ok {
			s.ApplyDiag2Q(b.blkQ[0], b.blkQ[1], d[0], d[1], d[2], d[3])
		} else {
			s.Apply2Q(b.blkQ[0], b.blkQ[1], b.blkM)
		}
		b.FusedRuns++
		b.DenseBlocks++
	}
	b.blkLen = 0
}

// Flush implements core.Backend: applies every pending fused structure.
// Supports are mutually disjoint, so order is free mathematically; a fixed
// order (block, phase run, 1q runs in first-touch order) keeps runs
// reproducible.
func (b *Backend) Flush(s *statevec.State) {
	b.flushBlock(s)
	b.flushPhaseRun(s)
	for _, q := range b.touched {
		b.flushQubit(s, q)
	}
	b.touched = b.touched[:0]
}

// --- folding ---

// pend1q buffers a single-qubit gate on qubit q (caller has already
// resolved structure conflicts on q).
func (b *Backend) pend1q(q int, g gate.Gate) {
	b.grow(q)
	if b.runLen[q] > 0 {
		// Later gate multiplies on the left, in place.
		mul2x2(b.pending[q].Data, g.Matrix().Data, b.pending[q].Data)
		b.runLen[q]++
	} else {
		b.pending[q] = g.Matrix()
		b.pendGate[q] = g
		b.runLen[q] = 1
		b.touched = append(b.touched, q)
	}
}

// absorbPending folds qubit q's pending 1q run (if any) into the block as a
// right factor (it precedes the block's gates) and returns its length.
func (b *Backend) absorbPending(q int) int {
	if q >= len(b.runLen) || b.runLen[q] == 0 {
		return 0
	}
	bit := 0
	if q == b.blkQ[1] {
		bit = 1
	}
	k := kron2(b.pending[q].Data, bit)
	mul4x4(b.blkM.Data, b.blkM.Data, k[:])
	n := b.runLen[q]
	b.runLen[q] = 0
	return n
}

// startBlock opens a dense 2q block with gate g on (a, b), folding any
// pending 1q runs on the pair into the product.
func (b *Backend) startBlock(a, bq int, g gate.Gate) {
	b.blkQ = [2]int{a, bq}
	b.blkM = g.Matrix()
	b.blkGate = g
	b.blkLen = 1
	b.blkLen += b.absorbPending(a)
	b.blkLen += b.absorbPending(bq)
}

// foldBlock2Q left-multiplies a same-pair two-qubit matrix into the block,
// permuting basis bits when the gate names the pair in the opposite order.
func (b *Backend) foldBlock2Q(a int, m qmath.Matrix) {
	if a == b.blkQ[0] {
		mul4x4(b.blkM.Data, m.Data, b.blkM.Data)
	} else {
		p := permute4(m.Data)
		mul4x4(b.blkM.Data, p[:], b.blkM.Data)
	}
	b.blkLen++
}

// foldBlock1Q left-multiplies a single-qubit matrix on block qubit q into
// the block.
func (b *Backend) foldBlock1Q(q int, m qmath.Matrix) {
	bit := 0
	if q == b.blkQ[1] {
		bit = 1
	}
	k := kron2(m.Data, bit)
	mul4x4(b.blkM.Data, k[:], b.blkM.Data)
	b.blkLen++
}

// foldBlockDiag left-multiplies diag(d) (in the block's bit order) into the
// block: row r scales by d[r].
func (b *Backend) foldBlockDiag(d [4]complex128) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			b.blkM.Data[4*r+c] *= d[r]
		}
	}
	b.blkLen++
}

// cphasePhase returns the diagonal phase of a CZ/CP gate, computed exactly
// as the statevec fast-path dispatch computes it.
func cphasePhase(g gate.Gate) complex128 {
	if g.Kind == gate.KindCZ {
		return -1
	}
	return cmplx.Exp(complex(0, g.Params[0]))
}

// applyPhaseGate routes a CZ/CP gate into the phase run, extending it when
// the pair keeps a common qubit with every prior entry and restarting it
// otherwise.
func (b *Backend) applyPhaseGate(s *statevec.State, g gate.Gate) {
	a, bq := g.Qubits[0], g.Qubits[1]
	phase := cphasePhase(g)
	// A same-pair dense block absorbs the gate as a diagonal factor. CZ/CP
	// are symmetric under qubit exchange, so no bit permutation is needed.
	if b.blockSamePair(a, bq) {
		var d [4]complex128
		d[0], d[1], d[2], d[3] = 1, 1, 1, phase
		b.foldBlockDiag(d)
		return
	}
	if b.blockHas(a) || b.blockHas(bq) {
		b.flushBlock(s)
	}
	b.flushQubit(s, a)
	b.flushQubit(s, bq)
	if b.phaseRunActive() {
		var common []int
		for _, q := range b.phCommon {
			if q == a || q == bq {
				common = append(common, q)
			}
		}
		if len(common) == 0 {
			b.flushPhaseRun(s)
		} else {
			b.phCommon = append(b.phCommon[:0], common...)
			b.phPairs = append(b.phPairs, [2]int{a, bq})
			b.phPhases = append(b.phPhases, phase)
			return
		}
	}
	b.phCommon = append(b.phCommon[:0], a, bq)
	b.phPairs = append(b.phPairs, [2]int{a, bq})
	b.phPhases = append(b.phPhases, phase)
}

// hasFastKernel2Q reports whether the statevec dispatcher has a specialized
// kernel for the two-qubit kind (such gates never open a dense block: their
// per-gate kernels beat a generic 4x4 sweep).
func hasFastKernel2Q(k gate.Kind) bool {
	switch k {
	case gate.KindCX, gate.KindCZ, gate.KindCP:
		return true
	}
	return false
}

// Apply implements core.Backend. Gates accumulate into the fusion
// structures; anything that cannot fuse flushes the structures overlapping
// its qubits and applies directly.
func (b *Backend) Apply(s *statevec.State, g gate.Gate) {
	if g.Kind == gate.KindI {
		return
	}
	switch g.Arity() {
	case 1:
		q := g.Qubits[0]
		if b.blockHas(q) {
			b.foldBlock1Q(q, g.Matrix())
			return
		}
		if b.phaseRunActive() && b.phaseRunHas(q) {
			b.flushPhaseRun(s)
		}
		b.pend1q(q, g)
		return
	case 2:
		if g.Kind == gate.KindCZ || g.Kind == gate.KindCP {
			b.applyPhaseGate(s, g)
			return
		}
		a, bq := g.Qubits[0], g.Qubits[1]
		if !hasFastKernel2Q(g.Kind) {
			if b.blockSamePair(a, bq) {
				b.foldBlock2Q(a, g.Matrix())
				return
			}
			// One block slot: an active block on any other pair flushes
			// before the new one opens.
			b.flushBlock(s)
			if b.phaseRunActive() && (b.phaseRunHas(a) || b.phaseRunHas(bq)) {
				b.flushPhaseRun(s)
			}
			b.startBlock(a, bq, g)
			return
		}
		// CX: folds into an existing same-pair block (as a matrix factor)
		// but never opens one — its specialized kernel beats a 4x4 sweep.
		if b.blockSamePair(a, bq) {
			b.foldBlock2Q(a, g.Matrix())
			return
		}
		if b.blockHas(a) || b.blockHas(bq) {
			b.flushBlock(s)
		}
		if b.phaseRunActive() && (b.phaseRunHas(a) || b.phaseRunHas(bq)) {
			b.flushPhaseRun(s)
		}
		b.flushQubit(s, a)
		b.flushQubit(s, bq)
		s.Apply(g)
		return
	}
	// Wider gates: flush every structure overlapping an operand, then apply
	// through the dispatcher.
	for _, q := range g.Qubits {
		if b.blockHas(q) {
			b.flushBlock(s)
		}
		if b.phaseRunActive() && b.phaseRunHas(q) {
			b.flushPhaseRun(s)
		}
		b.flushQubit(s, q)
	}
	s.Apply(g)
}
