// Package fusion implements a gate-fusion backend: consecutive single-qubit
// gates on the same qubit are multiplied into one 2x2 matrix before touching
// the state, so an ideal-circuit segment costs one kernel sweep per fused
// run instead of one per gate. It stands in for the accelerated
// (cuStateVec-class) backend of the paper's Figure 12: a genuinely different
// execution engine behind the same core.Backend interface, demonstrating
// that TQSim's scheduler is backend-agnostic.
//
// The package also demonstrates the paper's §1 observation that noise
// *disrupts* fusion: the executor flushes before every noise channel, so
// noisy segments degenerate to single-gate application, while ideal
// segments fuse freely.
package fusion

import (
	"tqsim/internal/core"
	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/statevec"
)

// Backend buffers single-qubit gates per qubit and fuses them. It satisfies
// core.Backend.
type Backend struct {
	// pending[q] is the accumulated 2x2 unitary awaiting application to
	// qubit q (nil when none).
	pending map[int]qmath.Matrix
	// FusedRuns counts fused applications; SingleFlushes counts pending
	// matrices flushed with only one constituent gate. The ratio
	// quantifies how much fusion a workload admitted.
	FusedRuns     int64
	SingleFlushes int64
	// runLen tracks the constituent count of each pending matrix.
	runLen map[int]int
}

// New returns an empty fusion backend.
func New() *Backend {
	return &Backend{pending: map[int]qmath.Matrix{}, runLen: map[int]int{}}
}

// Name implements core.Backend.
func (b *Backend) Name() string { return "fusion" }

// Fork implements core.Forker: fusion state (pending per-qubit matrices) is
// per-execution-stream, so parallel tree workers each get a fresh backend.
// Fusion statistics are then per-worker; callers aggregating FusedRuns
// should sum across forks if they need totals.
func (b *Backend) Fork() core.Backend { return New() }

// Compile-time interface checks.
var (
	_ core.Backend = (*Backend)(nil)
	_ core.Forker  = (*Backend)(nil)
)

// flushQubit applies the pending matrix for qubit q, if any.
func (b *Backend) flushQubit(s *statevec.State, q int) {
	m, ok := b.pending[q]
	if !ok {
		return
	}
	s.Apply1Q(q, m)
	if b.runLen[q] > 1 {
		b.FusedRuns++
	} else {
		b.SingleFlushes++
	}
	delete(b.pending, q)
	delete(b.runLen, q)
}

// Flush implements core.Backend: applies every pending fused matrix.
func (b *Backend) Flush(s *statevec.State) {
	for q := range b.pending {
		b.flushQubit(s, q)
	}
}

// Apply implements core.Backend. Single-qubit gates accumulate into the
// per-qubit pending matrix; wider gates flush their operands first and then
// apply directly.
func (b *Backend) Apply(s *statevec.State, g gate.Gate) {
	if g.Kind == gate.KindI {
		return
	}
	if g.Arity() == 1 {
		q := g.Qubits[0]
		m := g.Matrix()
		if prev, ok := b.pending[q]; ok {
			b.pending[q] = qmath.Mul(m, prev) // later gate multiplies on the left
			b.runLen[q]++
		} else {
			b.pending[q] = m
			b.runLen[q] = 1
		}
		return
	}
	for _, q := range g.Qubits {
		b.flushQubit(s, q)
	}
	s.Apply(g)
}
