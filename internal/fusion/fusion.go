// Package fusion implements a gate-fusion backend: consecutive single-qubit
// gates on the same qubit are multiplied into one 2x2 matrix before touching
// the state, so an ideal-circuit segment costs one kernel sweep per fused
// run instead of one per gate. It stands in for the accelerated
// (cuStateVec-class) backend of the paper's Figure 12: a genuinely different
// execution engine behind the same core.Backend interface, demonstrating
// that TQSim's scheduler is backend-agnostic.
//
// The package also demonstrates the paper's §1 observation that noise
// *disrupts* fusion: the executor flushes before every noise channel, so
// noisy segments degenerate to single-gate application, while ideal
// segments fuse freely.
package fusion

import (
	"tqsim/internal/core"
	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/statevec"
)

// Backend buffers single-qubit gates per qubit and fuses them. It satisfies
// core.Backend.
//
// Buffers are qubit-indexed slices grown on demand rather than maps: the
// executor flushes after every gate of a noisy segment, so the
// buffer/flush pair runs once per gate and the map hashing + allocation of
// the original implementation sat directly on the hot path. Fused products
// are multiplied in place into the pending matrix's storage, so a run of k
// gates costs one matrix allocation, not k.
type Backend struct {
	// pending[q] holds the accumulated 2x2 unitary awaiting application to
	// qubit q; it is valid iff runLen[q] > 0.
	pending []qmath.Matrix
	// runLen tracks the constituent count of each pending matrix.
	runLen []int
	// touched lists qubits with possibly-pending work, so Flush skips the
	// untouched remainder of the register.
	touched []int
	// FusedRuns counts fused applications; SingleFlushes counts pending
	// matrices flushed with only one constituent gate. The ratio
	// quantifies how much fusion a workload admitted.
	FusedRuns     int64
	SingleFlushes int64
}

// New returns an empty fusion backend.
func New() *Backend {
	return &Backend{}
}

// grow ensures the per-qubit buffers cover qubit q.
func (b *Backend) grow(q int) {
	for len(b.pending) <= q {
		b.pending = append(b.pending, qmath.Matrix{})
		b.runLen = append(b.runLen, 0)
	}
}

// Name implements core.Backend.
func (b *Backend) Name() string { return "fusion" }

// Fork implements core.Forker: fusion state (pending per-qubit matrices) is
// per-execution-stream, so parallel tree workers each get a fresh backend.
// Fusion statistics are then per-worker; callers aggregating FusedRuns
// should sum across forks if they need totals.
func (b *Backend) Fork() core.Backend { return New() }

// Compile-time interface checks.
var (
	_ core.Backend = (*Backend)(nil)
	_ core.Forker  = (*Backend)(nil)
)

func init() {
	core.Register("fusion", func() core.Backend { return New() })
}

// flushQubit applies the pending matrix for qubit q, if any. The qubit may
// linger on the touched list until the next Flush; runLen guards validity.
func (b *Backend) flushQubit(s *statevec.State, q int) {
	if q >= len(b.runLen) || b.runLen[q] == 0 {
		return
	}
	s.Apply1Q(q, b.pending[q])
	if b.runLen[q] > 1 {
		b.FusedRuns++
	} else {
		b.SingleFlushes++
	}
	b.runLen[q] = 0
}

// Flush implements core.Backend: applies every pending fused matrix, in
// first-touch order (deterministic, unlike the original map iteration —
// pending 1q matrices on distinct qubits commute, but a fixed order keeps
// runs reproducible).
func (b *Backend) Flush(s *statevec.State) {
	for _, q := range b.touched {
		b.flushQubit(s, q)
	}
	b.touched = b.touched[:0]
}

// mul2x2 sets dst = m * p (2x2), reading both fully before writing so dst
// may alias p.
func mul2x2(dst, m, p []complex128) {
	d0 := m[0]*p[0] + m[1]*p[2]
	d1 := m[0]*p[1] + m[1]*p[3]
	d2 := m[2]*p[0] + m[3]*p[2]
	d3 := m[2]*p[1] + m[3]*p[3]
	dst[0], dst[1], dst[2], dst[3] = d0, d1, d2, d3
}

// Apply implements core.Backend. Single-qubit gates accumulate into the
// per-qubit pending matrix; wider gates flush their operands first and then
// apply directly.
func (b *Backend) Apply(s *statevec.State, g gate.Gate) {
	if g.Kind == gate.KindI {
		return
	}
	if g.Arity() == 1 {
		q := g.Qubits[0]
		b.grow(q)
		m := g.Matrix()
		if b.runLen[q] > 0 {
			// Later gate multiplies on the left, in place.
			mul2x2(b.pending[q].Data, m.Data, b.pending[q].Data)
			b.runLen[q]++
		} else {
			b.pending[q] = m
			b.runLen[q] = 1
			b.touched = append(b.touched, q)
		}
		return
	}
	for _, q := range g.Qubits {
		b.flushQubit(s, q)
	}
	s.Apply(g)
}
