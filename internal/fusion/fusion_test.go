package fusion

import (
	"testing"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
	"tqsim/internal/workloads"
)

func TestFusedMatchesDirect(t *testing.T) {
	// Long 1q runs plus entanglers; fused execution must be numerically
	// identical to direct application.
	c := workloads.QSC(6, 5, 9)
	direct := statevec.NewZero(6)
	for _, g := range c.Gates {
		direct.Apply(g)
	}
	b := New()
	fused := statevec.NewZero(6)
	for _, g := range c.Gates {
		b.Apply(fused, g)
	}
	b.Flush(fused)
	if d := qmath.VecDistance(direct.Amplitudes(), fused.Amplitudes()); d > 1e-9 {
		t.Fatalf("fusion deviates by %v", d)
	}
}

func TestFusionActuallyFuses(t *testing.T) {
	b := New()
	s := statevec.NewZero(2)
	// Three consecutive 1q gates on qubit 0 must apply as one kernel.
	b.Apply(s, gate.New(gate.KindH, 0))
	b.Apply(s, gate.New(gate.KindT, 0))
	b.Apply(s, gate.New(gate.KindH, 0))
	b.Flush(s)
	if b.FusedRuns != 1 || b.SingleFlushes != 0 {
		t.Fatalf("fused=%d single=%d, want 1/0", b.FusedRuns, b.SingleFlushes)
	}
}

func TestFusionOrderWithinQubit(t *testing.T) {
	// HT != TH: fusion must preserve order (later gate on the left).
	r := rng.New(4)
	amps := make([]complex128, 4)
	for i := range amps {
		amps[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	ref := statevec.FromAmplitudes(amps)
	ref.Normalize()
	fused := ref.Clone()

	ref.Apply(gate.New(gate.KindH, 0))
	ref.Apply(gate.New(gate.KindT, 0))

	b := New()
	b.Apply(fused, gate.New(gate.KindH, 0))
	b.Apply(fused, gate.New(gate.KindT, 0))
	b.Flush(fused)
	if d := qmath.VecDistance(ref.Amplitudes(), fused.Amplitudes()); d > 1e-12 {
		t.Fatalf("fusion reordered gates: %v", d)
	}
}

func TestTwoQubitGateFlushesOperands(t *testing.T) {
	b := New()
	s := statevec.NewZero(2)
	b.Apply(s, gate.New(gate.KindH, 0))
	b.Apply(s, gate.New(gate.KindH, 1))
	// CX must see both Hadamards applied.
	b.Apply(s, gate.New(gate.KindCX, 0, 1))
	b.Flush(s)
	ref := statevec.NewZero(2)
	ref.Apply(gate.New(gate.KindH, 0))
	ref.Apply(gate.New(gate.KindH, 1))
	ref.Apply(gate.New(gate.KindCX, 0, 1))
	if d := qmath.VecDistance(ref.Amplitudes(), s.Amplitudes()); d > 1e-12 {
		t.Fatalf("flush-before-2q broken: %v", d)
	}
	if b.SingleFlushes != 2 {
		t.Fatalf("single flushes %d, want 2", b.SingleFlushes)
	}
}

// randFusionState returns a normalized random dense state for differential
// fusion tests.
func randFusionState(n int, seed uint64) *statevec.State {
	r := rng.New(seed)
	amps := make([]complex128, 1<<uint(n))
	for i := range amps {
		amps[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	s := statevec.FromAmplitudes(amps)
	s.Normalize()
	return s
}

// runFused applies the gates through a fresh backend (with a final flush)
// and directly, returning both states and the backend for stats checks.
func runFused(t *testing.T, n int, seed uint64, gs []gate.Gate) (direct, fused *statevec.State, b *Backend) {
	t.Helper()
	direct = randFusionState(n, seed)
	fused = direct.Clone()
	for _, g := range gs {
		direct.Apply(g)
	}
	b = New()
	for _, g := range gs {
		b.Apply(fused, g)
	}
	b.Flush(fused)
	return direct, fused, b
}

func TestPhaseRunFusesQFTRow(t *testing.T) {
	// A QFT row: H on the target, then a CP chain sharing it. The chain
	// must fuse into a single phase-run flush and match direct execution.
	gs := []gate.Gate{gate.New(gate.KindH, 0)}
	for j := 1; j < 5; j++ {
		gs = append(gs, gate.NewParam(gate.KindCP, []float64{1.0 / float64(int(1)<<uint(j))}, j, 0))
	}
	direct, fused, b := runFused(t, 5, 11, gs)
	if d := qmath.VecDistance(direct.Amplitudes(), fused.Amplitudes()); d > 1e-12 {
		t.Fatalf("phase run deviates by %v", d)
	}
	if b.PhaseRuns != 1 {
		t.Fatalf("PhaseRuns = %d, want 1 (4 CPs in one sweep)", b.PhaseRuns)
	}
}

func TestPhaseRunRestartsWithoutCommonQubit(t *testing.T) {
	// CZ(0,1) then CZ(2,3): no shared qubit, so two singleton flushes.
	gs := []gate.Gate{
		gate.New(gate.KindCZ, 0, 1),
		gate.New(gate.KindCZ, 2, 3),
	}
	direct, fused, b := runFused(t, 4, 12, gs)
	if d := qmath.VecDistance(direct.Amplitudes(), fused.Amplitudes()); d != 0 {
		t.Fatalf("singleton CZ flushes must be bit-identical, got %v", d)
	}
	if b.PhaseRuns != 0 || b.SingleFlushes != 2 {
		t.Fatalf("PhaseRuns=%d SingleFlushes=%d, want 0/2", b.PhaseRuns, b.SingleFlushes)
	}
}

func TestDenseBlockFoldsSamePair(t *testing.T) {
	// CRX opens a block; the interleaved 1q gate on a block qubit and the
	// same-pair CRY (named in swapped order) fold into the 4x4 product.
	gs := []gate.Gate{
		gate.NewParam(gate.KindCRX, []float64{0.4}, 1, 3),
		gate.New(gate.KindT, 3),
		gate.NewParam(gate.KindCRY, []float64{0.7}, 3, 1),
	}
	direct, fused, b := runFused(t, 4, 13, gs)
	if d := qmath.VecDistance(direct.Amplitudes(), fused.Amplitudes()); d > 1e-12 {
		t.Fatalf("dense block deviates by %v", d)
	}
	if b.DenseBlocks != 1 || b.SingleFlushes != 0 {
		t.Fatalf("DenseBlocks=%d SingleFlushes=%d, want 1/0", b.DenseBlocks, b.SingleFlushes)
	}
}

func TestDenseBlockDiagonalCollapse(t *testing.T) {
	// Two CRZs on the same pair multiply to a diagonal, taking the
	// ApplyDiag2Q flush; correctness is what matters here.
	gs := []gate.Gate{
		gate.NewParam(gate.KindCRZ, []float64{0.3}, 0, 2),
		gate.NewParam(gate.KindCRZ, []float64{0.9}, 0, 2),
	}
	direct, fused, b := runFused(t, 3, 14, gs)
	if d := qmath.VecDistance(direct.Amplitudes(), fused.Amplitudes()); d > 1e-12 {
		t.Fatalf("diagonal block deviates by %v", d)
	}
	if b.DenseBlocks != 1 {
		t.Fatalf("DenseBlocks=%d, want 1", b.DenseBlocks)
	}
}

func TestDisjointBlocksDoNotClobber(t *testing.T) {
	// Regression: a second block-opening gate on a disjoint pair must flush
	// the first block, not overwrite it.
	gs := []gate.Gate{
		gate.New(gate.KindS, 3),
		gate.New(gate.KindY, 1),
		gate.New(gate.KindSWAP, 3, 1),
		gate.New(gate.KindSWAP, 4, 0),
		gate.New(gate.KindSWAP, 5, 2),
	}
	direct, fused, _ := runFused(t, 6, 15, gs)
	if d := qmath.VecDistance(direct.Amplitudes(), fused.Amplitudes()); d > 1e-12 {
		t.Fatalf("disjoint blocks deviate by %v", d)
	}
}

func TestCXFoldsIntoSamePairBlock(t *testing.T) {
	// CX never opens a block but folds into an existing same-pair one: the
	// CX·CRZ·CX sandwich is one fused block.
	gs := []gate.Gate{
		gate.NewParam(gate.KindCRX, []float64{0.2}, 0, 1),
		gate.New(gate.KindCX, 0, 1),
		gate.New(gate.KindCX, 1, 0),
	}
	direct, fused, b := runFused(t, 3, 16, gs)
	if d := qmath.VecDistance(direct.Amplitudes(), fused.Amplitudes()); d > 1e-12 {
		t.Fatalf("CX fold deviates by %v", d)
	}
	if b.DenseBlocks != 1 {
		t.Fatalf("DenseBlocks=%d, want 1", b.DenseBlocks)
	}
}

func TestFusedRandomSoup(t *testing.T) {
	// Differential fuzz across every structure interaction: random gates of
	// every fusable kind against direct execution.
	r := rng.New(99)
	const n = 6
	for trial := 0; trial < 25; trial++ {
		var gs []gate.Gate
		for i := 0; i < 60; i++ {
			switch r.Intn(8) {
			case 0:
				gs = append(gs, gate.New(gate.KindH, r.Intn(n)))
			case 1:
				gs = append(gs, gate.New(gate.KindT, r.Intn(n)))
			case 2:
				gs = append(gs, gate.NewParam(gate.KindRZ, []float64{r.Float64()}, r.Intn(n)))
			case 3:
				p := r.Perm(n)
				gs = append(gs, gate.New(gate.KindCX, p[0], p[1]))
			case 4:
				p := r.Perm(n)
				gs = append(gs, gate.New(gate.KindCZ, p[0], p[1]))
			case 5:
				p := r.Perm(n)
				gs = append(gs, gate.NewParam(gate.KindCP, []float64{r.Float64()}, p[0], p[1]))
			case 6:
				p := r.Perm(n)
				gs = append(gs, gate.NewParam(gate.KindCRX, []float64{r.Float64()}, p[0], p[1]))
			default:
				p := r.Perm(n)
				gs = append(gs, gate.New(gate.KindSWAP, p[0], p[1]))
			}
		}
		direct, fused, _ := runFused(t, n, uint64(trial)+20, gs)
		if d := qmath.VecDistance(direct.Amplitudes(), fused.Amplitudes()); d > 1e-11 {
			t.Fatalf("trial %d: fused soup deviates by %v", trial, d)
		}
	}
}

func TestIdentityGateSkipped(t *testing.T) {
	b := New()
	s := statevec.NewZero(1)
	b.Apply(s, gate.New(gate.KindI, 0))
	b.Flush(s)
	if b.FusedRuns != 0 && b.SingleFlushes != 0 {
		t.Fatal("identity gate produced work")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "fusion" {
		t.Fatal("name")
	}
}
