package fusion

import (
	"testing"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
	"tqsim/internal/workloads"
)

func TestFusedMatchesDirect(t *testing.T) {
	// Long 1q runs plus entanglers; fused execution must be numerically
	// identical to direct application.
	c := workloads.QSC(6, 5, 9)
	direct := statevec.NewZero(6)
	for _, g := range c.Gates {
		direct.Apply(g)
	}
	b := New()
	fused := statevec.NewZero(6)
	for _, g := range c.Gates {
		b.Apply(fused, g)
	}
	b.Flush(fused)
	if d := qmath.VecDistance(direct.Amplitudes(), fused.Amplitudes()); d > 1e-9 {
		t.Fatalf("fusion deviates by %v", d)
	}
}

func TestFusionActuallyFuses(t *testing.T) {
	b := New()
	s := statevec.NewZero(2)
	// Three consecutive 1q gates on qubit 0 must apply as one kernel.
	b.Apply(s, gate.New(gate.KindH, 0))
	b.Apply(s, gate.New(gate.KindT, 0))
	b.Apply(s, gate.New(gate.KindH, 0))
	b.Flush(s)
	if b.FusedRuns != 1 || b.SingleFlushes != 0 {
		t.Fatalf("fused=%d single=%d, want 1/0", b.FusedRuns, b.SingleFlushes)
	}
}

func TestFusionOrderWithinQubit(t *testing.T) {
	// HT != TH: fusion must preserve order (later gate on the left).
	r := rng.New(4)
	amps := make([]complex128, 4)
	for i := range amps {
		amps[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	ref := statevec.FromAmplitudes(amps)
	ref.Normalize()
	fused := ref.Clone()

	ref.Apply(gate.New(gate.KindH, 0))
	ref.Apply(gate.New(gate.KindT, 0))

	b := New()
	b.Apply(fused, gate.New(gate.KindH, 0))
	b.Apply(fused, gate.New(gate.KindT, 0))
	b.Flush(fused)
	if d := qmath.VecDistance(ref.Amplitudes(), fused.Amplitudes()); d > 1e-12 {
		t.Fatalf("fusion reordered gates: %v", d)
	}
}

func TestTwoQubitGateFlushesOperands(t *testing.T) {
	b := New()
	s := statevec.NewZero(2)
	b.Apply(s, gate.New(gate.KindH, 0))
	b.Apply(s, gate.New(gate.KindH, 1))
	// CX must see both Hadamards applied.
	b.Apply(s, gate.New(gate.KindCX, 0, 1))
	b.Flush(s)
	ref := statevec.NewZero(2)
	ref.Apply(gate.New(gate.KindH, 0))
	ref.Apply(gate.New(gate.KindH, 1))
	ref.Apply(gate.New(gate.KindCX, 0, 1))
	if d := qmath.VecDistance(ref.Amplitudes(), s.Amplitudes()); d > 1e-12 {
		t.Fatalf("flush-before-2q broken: %v", d)
	}
	if b.SingleFlushes != 2 {
		t.Fatalf("single flushes %d, want 2", b.SingleFlushes)
	}
}

func TestIdentityGateSkipped(t *testing.T) {
	b := New()
	s := statevec.NewZero(1)
	b.Apply(s, gate.New(gate.KindI, 0))
	b.Flush(s)
	if b.FusedRuns != 0 && b.SingleFlushes != 0 {
		t.Fatal("identity gate produced work")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "fusion" {
		t.Fatal("name")
	}
}
