package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tqsim/internal/serve"
)

// newLiveServer hosts a full tqsimd — result store, snapshot cache,
// admission control — on an httptest listener.
func newLiveServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{
		MaxConcurrent:      4,
		QueueDepth:         64,
		StoreEntries:       256,
		SnapshotCacheBytes: 8 << 20,
	}))
	t.Cleanup(ts.Close)
	return ts
}

func fetchStats(t *testing.T, client *http.Client, base string) serve.Stats {
	t.Helper()
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return st
}

// TestLiveRunAgainstServer is the end-to-end acceptance path: a
// full-rate open-loop run with the default mix (jobs, sweeps, streams,
// replays) against a live server, while four goroutines hammer
// /v1/stats the whole time. Run under -race by make test-loadgen, this
// doubles as the stats-vs-traffic race satellite.
func TestLiveRunAgainstServer(t *testing.T) {
	ts := newLiveServer(t)

	spec := &Spec{
		Arrival:        "poisson",
		Rate:           60,
		Duration:       2 * time.Second,
		Seed:           99,
		ReplayFraction: 0.3,
		SLOp99:         2 * time.Second,
	}

	// Concurrent stats pollers for the whole run.
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for g := 0; g < 4; g++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + "/v1/stats")
				if err != nil {
					continue
				}
				var st serve.Stats
				_ = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
			}
		}()
	}

	rep, err := RunWithClient(context.Background(), ts.Client(), ts.URL, spec)
	close(stop)
	pollers.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if rep.Sent < 60 {
		t.Fatalf("sent only %d requests at 60/s over 2s", rep.Sent)
	}
	if rep.Completed == 0 {
		t.Fatalf("no requests completed: %+v", rep)
	}
	if rep.TransportErrors > 0 {
		t.Fatalf("%d transport errors against local server", rep.TransportErrors)
	}
	if rep.StreamErrors > 0 {
		t.Fatalf("%d stream errors", rep.StreamErrors)
	}
	if rep.Replays == 0 {
		t.Fatal("replay fraction 0.3 produced no replay requests")
	}
	if rep.P50 <= 0 || rep.P99 < rep.P95 || rep.P95 < rep.P50 {
		t.Fatalf("quantiles inconsistent: p50 %v p95 %v p99 %v", rep.P50, rep.P95, rep.P99)
	}
	if rep.Throughput <= 0 || rep.Goodput > rep.Throughput {
		t.Fatalf("throughput %f goodput %f inconsistent", rep.Throughput, rep.Goodput)
	}

	// Server-side cross-check: the server's own latency histogram saw
	// every 2xx completion the client counted (modulo in-flight races —
	// the run has fully drained here, so counts must line up).
	st := fetchStats(t, ts.Client(), ts.URL)
	if st.LatencyCount == 0 {
		t.Fatal("server recorded no latency samples")
	}
	if int(st.LatencyCount) != rep.Status["2xx"] {
		t.Fatalf("server latency_count %d != client 2xx count %d", st.LatencyCount, rep.Status["2xx"])
	}
	if st.LatencyP50MS <= 0 || st.LatencyP99MS < st.LatencyP50MS {
		t.Fatalf("server quantiles inconsistent: p50 %.3f p99 %.3f", st.LatencyP50MS, st.LatencyP99MS)
	}
	// The server measures handler time, a subset of the client's
	// request round trip; its median cannot exceed the client's by more
	// than the histogram's bucketing error.
	slack := 1 + 2*0.0906
	if st.LatencyP50MS > rep.P50MS*slack+1 {
		t.Fatalf("server p50 %.3fms above client p50 %.3fms", st.LatencyP50MS, rep.P50MS)
	}
}

// TestLiveClosedLoop drives the same server with K closed-loop clients
// and think time, bounded by MaxRequests.
func TestLiveClosedLoop(t *testing.T) {
	ts := newLiveServer(t)
	spec := &Spec{
		Arrival:     "closed",
		Clients:     3,
		Think:       5 * time.Millisecond,
		Duration:    5 * time.Second,
		MaxRequests: 60,
		Seed:        7,
	}
	rep, err := RunWithClient(context.Background(), ts.Client(), ts.URL, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 60 {
		t.Fatalf("sent %d, want exactly MaxRequests=60", rep.Sent)
	}
	if rep.Completed != 60 {
		t.Fatalf("completed %d of 60 at trivial load: %+v", rep.Completed, rep)
	}
	if rep.Offered <= 0 {
		t.Fatal("closed loop reported no achieved rate")
	}
}

// TestLiveAdmissionBreakdown saturates a one-slot, shallow-queue server
// and checks rejections land in the status breakdown rather than the
// latency histogram.
func TestLiveAdmissionBreakdown(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{MaxConcurrent: 1, QueueDepth: 1}))
	t.Cleanup(ts.Close)
	spec := &Spec{
		Arrival:  "fixed",
		Rate:     400,
		Duration: 1 * time.Second,
		Seed:     3,
		Mix: []MixEntry{{
			Weight: 1, Kind: "job", Circuit: "bv_n10", Noise: "DC", Shots: 500,
		}},
	}
	rep, err := RunWithClient(context.Background(), ts.Client(), ts.URL, spec)
	if err != nil {
		t.Fatal(err)
	}
	rejected := rep.Status["429"] + rep.Status["503"]
	if rejected == 0 {
		t.Fatalf("one-slot server absorbed 400/s without rejections: %+v", rep.Status)
	}
	if int(rep.Hist.Count()) != rep.Completed {
		t.Fatalf("histogram holds %d samples but %d completed — rejections leaked in", rep.Hist.Count(), rep.Completed)
	}
}
