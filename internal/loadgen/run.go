package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tqsim/internal/metrics"
)

// Report is the measured outcome of one run. The latency histogram covers
// completed (2xx) requests only; rejections and transport errors are
// broken out so a saturated server's fast 429s never masquerade as low
// latency.
type Report struct {
	Target  string  `json:"target"`
	Arrival string  `json:"arrival"`
	Offered float64 `json:"offered_rps"` // scheduled (open) or achieved (closed) req/s
	Sent    int     `json:"sent"`
	// Completed counts 2xx responses whose body (including an NDJSON
	// stream) finished without an error record.
	Completed int `json:"completed"`
	// Dropped counts open-loop arrivals shed at MaxInFlight.
	Dropped int `json:"dropped"`
	// Status maps status classes to counts: "2xx" plus the individual
	// admission-control codes ("413", "429", "503") and any other code.
	Status          map[string]int `json:"status"`
	TransportErrors int            `json:"transport_errors"`
	StreamErrors    int            `json:"stream_errors"`
	Replays         int            `json:"replays"`

	P50       time.Duration `json:"-"`
	P95       time.Duration `json:"-"`
	P99       time.Duration `json:"-"`
	Mean      time.Duration `json:"-"`
	P50MS     float64       `json:"p50_ms"`
	P95MS     float64       `json:"p95_ms"`
	P99MS     float64       `json:"p99_ms"`
	MeanMS    float64       `json:"mean_ms"`
	ElapsedS  float64       `json:"elapsed_s"`
	Elapsed   time.Duration `json:"-"`
	SLO       time.Duration `json:"-"`
	SLOMS     float64       `json:"slo_p99_ms,omitempty"`
	SLOBreach int           `json:"slo_violations"`
	// Throughput is completed requests per second of wall time; Goodput
	// additionally requires the request met the SLO.
	Throughput float64 `json:"throughput_rps"`
	Goodput    float64 `json:"goodput_rps"`

	// Hist is the client-side latency histogram (mergeable across runs).
	Hist *metrics.LatencyHist `json:"-"`
}

// runState accumulates concurrent per-request outcomes.
type runState struct {
	hist      metrics.LatencyHist
	completed atomic.Int64
	sent      atomic.Int64
	dropped   atomic.Int64
	transport atomic.Int64
	streamErr atomic.Int64
	replays   atomic.Int64
	sloBreach atomic.Int64

	mu     sync.Mutex
	status map[string]int
}

func (st *runState) countStatus(code int) {
	key := strconv.Itoa(code)
	if code >= 200 && code < 300 {
		key = "2xx"
	}
	st.mu.Lock()
	st.status[key]++
	st.mu.Unlock()
}

// Run drives the target with the spec's arrival process and request mix
// and reports latency quantiles, throughput, goodput and the error
// breakdown. ctx cancels the run early (the report covers what ran).
func Run(ctx context.Context, target string, spec *Spec) (*Report, error) {
	return RunWithClient(ctx, nil, target, spec)
}

// RunWithClient is Run with a caller-supplied HTTP client (e.g. an
// httptest server's). A nil client uses a fresh one with Spec.Timeout.
func RunWithClient(ctx context.Context, client *http.Client, target string, spec *Spec) (*Report, error) {
	c, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	if client == nil {
		client = &http.Client{Timeout: c.Timeout}
	}
	st := &runState{status: make(map[string]int)}
	start := time.Now()
	var offered float64
	switch c.Arrival {
	case "poisson", "fixed":
		sched, err := c.Schedule()
		if err != nil {
			return nil, err
		}
		if err := c.runOpenLoop(ctx, client, target, st, sched, start); err != nil {
			return nil, err
		}
		offered = float64(len(sched)) / c.Duration.Seconds()
	case "closed":
		c.runClosedLoop(ctx, client, target, st, start)
		// A closed loop offers exactly what it achieves.
		offered = float64(st.sent.Load()) / time.Since(start).Seconds()
	}
	elapsed := time.Since(start)

	rep := &Report{
		Target:          target,
		Arrival:         c.Arrival,
		Offered:         offered,
		Sent:            int(st.sent.Load()),
		Completed:       int(st.completed.Load()),
		Dropped:         int(st.dropped.Load()),
		Status:          st.status,
		TransportErrors: int(st.transport.Load()),
		StreamErrors:    int(st.streamErr.Load()),
		Replays:         int(st.replays.Load()),
		Elapsed:         elapsed,
		ElapsedS:        elapsed.Seconds(),
		SLO:             c.SLOp99,
		SLOMS:           durMS(c.SLOp99),
		SLOBreach:       int(st.sloBreach.Load()),
		Hist:            &st.hist,
	}
	rep.P50, rep.P95, rep.P99 = st.hist.Quantile(0.50), st.hist.Quantile(0.95), st.hist.Quantile(0.99)
	rep.Mean = st.hist.Mean()
	rep.P50MS, rep.P95MS, rep.P99MS, rep.MeanMS = durMS(rep.P50), durMS(rep.P95), durMS(rep.P99), durMS(rep.Mean)
	if s := elapsed.Seconds(); s > 0 {
		rep.Throughput = float64(rep.Completed) / s
		rep.Goodput = float64(rep.Completed-rep.SLOBreach) / s
	}
	return rep, nil
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// runOpenLoop paces the precomputed schedule, shedding (not queueing)
// arrivals past MaxInFlight so the offered process stays open-loop.
func (c *Spec) runOpenLoop(ctx context.Context, client *http.Client, target string, st *runState, sched []time.Duration, start time.Time) error {
	// Pre-generate the request sequence so marshaling cost never skews the
	// pacing loop.
	reqs := make([]*Request, len(sched))
	for i := range sched {
		r, err := c.requestAt(i)
		if err != nil {
			return err
		}
		reqs[i] = r
	}
	sem := make(chan struct{}, c.MaxInFlight)
	var wg sync.WaitGroup
pace:
	for i, off := range sched {
		if wait := time.Until(start.Add(off)); wait > 0 {
			select {
			case <-ctx.Done():
				break pace
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			break pace
		}
		select {
		case sem <- struct{}{}:
		default:
			st.dropped.Add(1)
			continue
		}
		wg.Add(1)
		go func(r *Request) {
			defer wg.Done()
			defer func() { <-sem }()
			c.doRequest(ctx, client, target, st, r)
		}(reqs[i])
	}
	wg.Wait()
	return nil
}

// runClosedLoop runs Clients concurrent request loops with think time.
// Client k issues requests k, k+Clients, k+2·Clients, … so the request
// sequence stays a pure function of the spec even though interleaving
// across clients is timing-dependent.
func (c *Spec) runClosedLoop(ctx context.Context, client *http.Client, target string, st *runState, start time.Time) {
	var issued atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < c.Clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			think := c.thinkStream(k)
			for i := k; ; i += c.Clients {
				if ctx.Err() != nil || time.Since(start) >= c.Duration {
					return
				}
				if c.MaxRequests > 0 && issued.Add(1) > int64(c.MaxRequests) {
					return
				}
				r, err := c.requestAt(i)
				if err != nil {
					return
				}
				c.doRequest(ctx, client, target, st, r)
				if t := think(); t > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(t):
					}
				}
			}
		}(k)
	}
	wg.Wait()
}

// streamRecord is the minimal shape of one NDJSON line: enough to spot a
// terminal error record in a 200-status stream.
type streamRecord struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

// doRequest issues one request, reads the full response (all NDJSON lines
// for streams) and records latency and classification. Latency is
// first-byte-to-last-byte inclusive: the client-side view of the whole
// request, directly comparable to the server's /v1/stats histogram.
func (c *Spec) doRequest(ctx context.Context, client *http.Client, target string, st *runState, r *Request) {
	st.sent.Add(1)
	if r.Replay {
		st.replays.Add(1)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, target+r.Path, bytes.NewReader(r.Body))
	if err != nil {
		st.transport.Add(1)
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		st.transport.Add(1)
		return
	}
	ok := resp.StatusCode >= 200 && resp.StatusCode < 300
	if ok && r.Stream {
		ok = drainStream(resp)
	} else {
		// Read (and discard) the whole body so latency covers the full
		// response and the connection can be reused.
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			ok = false
		}
	}
	resp.Body.Close()
	lat := time.Since(t0)
	st.countStatus(resp.StatusCode)
	if !ok {
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			st.streamErr.Add(1)
		}
		return
	}
	st.completed.Add(1)
	st.hist.Record(lat)
	if c.SLOp99 > 0 && lat > c.SLOp99 {
		st.sloBreach.Add(1)
	}
}

// drainStream consumes an NDJSON response and reports whether it finished
// without an error record.
func drainStream(resp *http.Response) bool {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	ok := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec streamRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Type == "error" {
			ok = false
		}
	}
	if sc.Err() != nil {
		ok = false
	}
	return ok
}

// String renders the report for humans.
func (r *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "arrival %s offered %.1f req/s over %.1fs\n", r.Arrival, r.Offered, r.ElapsedS)
	fmt.Fprintf(&b, "sent %d completed %d dropped %d transport-errors %d stream-errors %d replays %d\n",
		r.Sent, r.Completed, r.Dropped, r.TransportErrors, r.StreamErrors, r.Replays)
	fmt.Fprintf(&b, "status:")
	for _, k := range []string{"2xx", "413", "429", "503"} {
		fmt.Fprintf(&b, " %s=%d", k, r.Status[k])
	}
	extra := make([]string, 0, len(r.Status))
	for k := range r.Status {
		switch k {
		case "2xx", "413", "429", "503":
		default:
			extra = append(extra, k)
		}
	}
	sort.Strings(extra) // deterministic report bytes regardless of map order
	for _, k := range extra {
		fmt.Fprintf(&b, " %s=%d", k, r.Status[k])
	}
	fmt.Fprintf(&b, "\nlatency p50 %v p95 %v p99 %v mean %v\n", r.P50, r.P95, r.P99, r.Mean)
	fmt.Fprintf(&b, "throughput %.1f/s goodput %.1f/s", r.Throughput, r.Goodput)
	if r.SLO > 0 {
		fmt.Fprintf(&b, " (SLO p99 %v, %d violations)", r.SLO, r.SLOBreach)
	}
	return b.String()
}
