package loadgen

import (
	"fmt"
	"math"
	"time"

	"tqsim/internal/rng"
)

// Schedule materializes the open-loop arrival offsets (relative to the run
// start) for the spec: exponential inter-arrival gaps at Rate for
// "poisson", uniform 1/Rate spacing for "fixed". The schedule is a pure
// function of (Spec, Seed): the gap stream is keyed by
// rng.SeedAt(Seed, streamArrival), offsets accumulate in float64 seconds
// with no clock or scheduling input, and repeated calls return
// byte-identical slices. Closed-loop specs have no pre-computed schedule
// (arrivals depend on completions); Schedule returns an error for them.
func (s *Spec) Schedule() ([]time.Duration, error) {
	c, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	switch c.Arrival {
	case "poisson":
		r := rng.New(rng.SeedAt(c.Seed, streamArrival))
		var out []time.Duration
		t := 0.0
		horizon := c.Duration.Seconds()
		for len(out) < scheduleCap {
			// Inverse-CDF exponential gap; 1-U keeps the argument in (0,1].
			t += -math.Log(1-r.Float64()) / c.Rate
			if t >= horizon {
				break
			}
			if c.MaxRequests > 0 && len(out) >= c.MaxRequests {
				break
			}
			out = append(out, time.Duration(t*float64(time.Second)))
		}
		return out, nil
	case "fixed":
		n := int(c.Rate * c.Duration.Seconds())
		if c.MaxRequests > 0 && n > c.MaxRequests {
			n = c.MaxRequests
		}
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(float64(i) / c.Rate * float64(time.Second))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("loadgen: arrival %q has no open-loop schedule", c.Arrival)
	}
}

// thinkStream returns client c's deterministic think-time stream for a
// closed-loop run: successive calls yield the client's think times in
// order, exponentially distributed around Spec.Think. Each client's stream
// is keyed by rng.SeedAt over the think base stream, so streams are
// independent of scheduling and of each other.
func (s *Spec) thinkStream(client int) func() time.Duration {
	r := rng.New(rng.SeedAt(rng.SeedAt(s.Seed, streamThink), uint64(client)))
	return func() time.Duration {
		if s.Think <= 0 {
			return 0
		}
		return time.Duration(-math.Log(1-r.Float64()) * float64(s.Think))
	}
}
