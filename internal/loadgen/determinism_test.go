package loadgen

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// detSpec is a spec exercising every deterministic stream: Poisson
// arrivals, a mixed job/sweep/stream/replay request sequence.
func detSpec(seed uint64) *Spec {
	return &Spec{
		Arrival:        "poisson",
		Rate:           200,
		Duration:       2 * time.Second,
		Seed:           seed,
		ReplayFraction: 0.25,
		SLOp99:         500 * time.Millisecond,
	}
}

// TestScheduleDeterministic pins the seeded-determinism contract of the
// arrival schedule: the same (seed, spec) produces the byte-identical
// offset sequence on every call, and different seeds diverge.
func TestScheduleDeterministic(t *testing.T) {
	for _, arrival := range []string{"poisson", "fixed"} {
		spec := detSpec(7)
		spec.Arrival = arrival
		s1, err := spec.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := spec.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		if len(s1) == 0 {
			t.Fatalf("%s: empty schedule", arrival)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("%s: offset %d differs across runs: %v vs %v", arrival, i, s1[i], s2[i])
			}
		}
		for i := 1; i < len(s1); i++ {
			if s1[i] < s1[i-1] {
				t.Fatalf("%s: schedule not monotone at %d", arrival, i)
			}
			if s1[i] >= spec.Duration {
				t.Fatalf("%s: offset %d past the run duration", arrival, i)
			}
		}
	}
	other, err := detSpec(8).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := detSpec(7).Schedule()
	same := len(other) == len(base)
	if same {
		for i := range base {
			if base[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestRequestSequenceDeterministic pins the request-sequence half of the
// contract: request i's body bytes are a pure function of (spec, i) —
// identical when generated twice, in reverse order, or concurrently from
// many goroutines (run under -race by make test-loadgen).
func TestRequestSequenceDeterministic(t *testing.T) {
	const n = 250
	spec := detSpec(41)
	want := make([][]byte, n)
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		r, err := spec.RequestAt(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i], paths[i] = r.Body, r.Path
	}

	// Reverse order.
	for i := n - 1; i >= 0; i-- {
		r, err := spec.RequestAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Body, want[i]) || r.Path != paths[i] {
			t.Fatalf("request %d differs when generated in reverse order", i)
		}
	}

	// Concurrently, every index from several goroutines at once.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				r, err := spec.RequestAt(i)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(r.Body, want[i]) {
					t.Errorf("request %d differs under concurrent generation", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The sequence covers the whole mix: jobs, sweeps, and replays.
	var jobs, sweeps, replays int
	for i := 0; i < n; i++ {
		r, _ := spec.RequestAt(i)
		switch r.Kind {
		case "job":
			jobs++
		case "sweep":
			sweeps++
		}
		if r.Replay {
			replays++
		}
	}
	if jobs == 0 || sweeps == 0 || replays == 0 {
		t.Fatalf("mix not exercised: %d jobs, %d sweeps, %d replays", jobs, sweeps, replays)
	}
	// Replay requests must share one pinned body per mix class, so a
	// result store can actually answer the repeats.
	seen := map[string]map[string]bool{}
	for i := 0; i < n; i++ {
		r, _ := spec.RequestAt(i)
		if !r.Replay {
			continue
		}
		if seen[r.Path] == nil {
			seen[r.Path] = map[string]bool{}
		}
		seen[r.Path][string(r.Body)] = true
	}
	for path, bodies := range seen {
		if len(bodies) > len(DefaultMix) {
			t.Fatalf("%s replay requests spread over %d distinct bodies", path, len(bodies))
		}
	}
}

// TestSpecValidation covers the rejection paths.
func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{Arrival: "poisson", Duration: time.Second},                                        // no rate
		{Arrival: "warp", Rate: 10, Duration: time.Second},                                 // unknown process
		{Arrival: "fixed", Rate: 10},                                                       // no duration
		{Arrival: "fixed", Rate: 1e9, Duration: time.Hour},                                 // schedule cap
		{Rate: 10, Duration: time.Second, Mix: []MixEntry{{}}},                             // empty mix entry
		{Rate: 10, Duration: time.Second, Mix: []MixEntry{{Weight: 1, Circuit: "bv_n10"}}}, // no shots
	}
	for i, s := range cases {
		if _, err := s.Schedule(); err == nil {
			if _, err := s.RequestAt(0); err == nil {
				t.Errorf("case %d: invalid spec accepted", i)
			}
		}
	}
}
