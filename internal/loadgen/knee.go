package loadgen

import (
	"context"
	"fmt"
	"math"
	"time"
)

// The saturation-knee search: ramp the offered rate geometrically until the
// SLO first breaks, then bisect the bracket to the knee — the highest rate
// the target sustains under the SLO. Trials are injected as a function so
// the search is testable against a synthetic service with a known analytic
// capacity (TestFindKneeAnalyticCeiling) and reusable over any Spec.

// TrialFunc runs one fixed-duration trial at the given offered rate.
type TrialFunc func(ctx context.Context, rate float64) (*Report, error)

// KneeSpec configures the knee search.
type KneeSpec struct {
	// StartRate is the first probed rate (default 8/s). It should be a
	// rate the target trivially sustains.
	StartRate float64
	// MaxRate bounds the ramp (default 4096/s); a target that sustains
	// MaxRate reports an open-ended (non-converged) knee at MaxRate.
	MaxRate float64
	// SLOp99 is the p99 latency bound a trial must meet (required).
	SLOp99 time.Duration
	// MaxErrorFraction is the largest tolerated fraction of non-completed
	// requests (errors, rejections, drops) before a trial counts as a
	// breach even when p99 holds (default 0.01).
	MaxErrorFraction float64
	// Tolerance is the relative width of the final bracket: bisection
	// stops when (firstBad-knee)/firstBad ≤ Tolerance (default 0.1).
	Tolerance float64
}

// Trial is one probed rate and its outcome.
type Trial struct {
	Rate   float64 `json:"rate"`
	Breach bool    `json:"breach"`
	Reason string  `json:"reason,omitempty"`
	P99MS  float64 `json:"p99_ms"`
	ErrFrc float64 `json:"error_fraction"`
}

// KneeResult is the outcome of FindKnee.
type KneeResult struct {
	// Knee is the highest probed rate that met the SLO (0 when even
	// StartRate breached and bisection could not find a sustainable rate).
	Knee float64 `json:"knee_rps"`
	// FirstBad is the lowest probed rate that breached (0 when the target
	// sustained MaxRate).
	FirstBad float64 `json:"first_bad_rps"`
	// Converged reports the bracket reached Tolerance; false means the
	// ramp hit MaxRate without a breach.
	Converged bool    `json:"converged"`
	Trials    []Trial `json:"trials"`
}

func (ks KneeSpec) withDefaults() (KneeSpec, error) {
	if ks.StartRate <= 0 {
		ks.StartRate = 8
	}
	if ks.MaxRate <= 0 {
		ks.MaxRate = 4096
	}
	if ks.MaxRate < ks.StartRate {
		return ks, fmt.Errorf("loadgen: knee max rate %.1f below start rate %.1f", ks.MaxRate, ks.StartRate)
	}
	if ks.SLOp99 <= 0 {
		return ks, fmt.Errorf("loadgen: knee search needs a p99 SLO")
	}
	if ks.MaxErrorFraction <= 0 {
		ks.MaxErrorFraction = 0.01
	}
	if ks.Tolerance <= 0 {
		ks.Tolerance = 0.1
	}
	return ks, nil
}

// breach classifies one trial against the SLO.
func (ks KneeSpec) breach(rep *Report) (bool, string, float64) {
	attempts := rep.Sent + rep.Dropped
	errFrac := 0.0
	if attempts > 0 {
		errFrac = float64(attempts-rep.Completed) / float64(attempts)
	}
	switch {
	case rep.Completed == 0:
		return true, "no requests completed", errFrac
	case errFrac > ks.MaxErrorFraction:
		return true, fmt.Sprintf("error fraction %.3f > %.3f", errFrac, ks.MaxErrorFraction), errFrac
	case rep.P99 > ks.SLOp99:
		return true, fmt.Sprintf("p99 %v > SLO %v", rep.P99, ks.SLOp99), errFrac
	}
	return false, "", errFrac
}

// FindKnee locates the saturation knee: it doubles the offered rate from
// StartRate until a trial breaches the SLO (p99 above SLOp99, or too many
// rejections/errors), then bisects the [good, bad] bracket until its
// relative width is within Tolerance. The reported knee is always a rate
// that was actually probed and met the SLO — the search never extrapolates
// above a measured breach, so it cannot report a rate above the service's
// true capacity.
func FindKnee(ctx context.Context, spec KneeSpec, trial TrialFunc) (*KneeResult, error) {
	ks, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &KneeResult{}
	probe := func(rate float64) (bool, error) {
		rep, err := trial(ctx, rate)
		if err != nil {
			return false, fmt.Errorf("trial at %.1f req/s: %w", rate, err)
		}
		breach, why, errFrac := ks.breach(rep)
		res.Trials = append(res.Trials, Trial{
			Rate: rate, Breach: breach, Reason: why, P99MS: rep.P99MS, ErrFrc: errFrac,
		})
		return breach, nil
	}

	// Ramp: double until the first breach (or MaxRate sustained).
	good, bad := 0.0, 0.0
	for rate := ks.StartRate; ; rate = math.Min(rate*2, ks.MaxRate) {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		breach, err := probe(rate)
		if err != nil {
			return res, err
		}
		if breach {
			bad = rate
			break
		}
		good = rate
		if rate >= ks.MaxRate {
			res.Knee, res.Converged = good, false
			return res, nil
		}
	}

	// Bisect [good, bad] to the knee. good may be 0 (StartRate breached):
	// the bracket still tightens toward the highest sustainable rate, with
	// an absolute floor so a target that sustains nothing terminates with
	// knee 0 instead of bisecting toward 0 forever.
	for bad-good > ks.Tolerance*bad && bad > ks.Tolerance*ks.StartRate {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		mid := (good + bad) / 2
		breach, err := probe(mid)
		if err != nil {
			return res, err
		}
		if breach {
			bad = mid
		} else {
			good = mid
		}
	}
	res.Knee, res.FirstBad, res.Converged = good, bad, true
	return res, nil
}
