// Package loadgen is the tqsim load/capacity harness: a seeded,
// deterministic workload generator that drives a live (or httptest-hosted)
// tqsimd over HTTP with open-loop (Poisson, fixed-rate) or closed-loop
// (K clients with think time) arrival processes and a configurable request
// mix — jobs and sweeps, streaming and JSON shapes, fresh seeds and
// store-replay repeats — recording per-request latency into a mergeable
// log-bucketed histogram (internal/metrics.LatencyHist) with p50/p95/p99,
// throughput, goodput-under-SLO and a 413/429/503/error breakdown.
//
// Determinism contract: the arrival schedule and the request sequence are
// pure functions of (Spec, Seed) — Schedule and RequestAt produce
// byte-identical output across runs, in any order, from any number of
// goroutines (TestScheduleDeterministic, TestRequestSequenceDeterministic).
// What the harness *measures* (latencies, error counts) is of course a
// property of the target at run time; what it *offers* is reproducible by
// seed, so two capacity experiments differ only in the system under test.
//
// FindKnee ramps the offered rate and bisects to the saturation knee: the
// highest rate whose p99 still meets the SLO. cmd/tqsimgen is the CLI.
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"tqsim/internal/rng"
	"tqsim/internal/serve"
	"tqsim/internal/sweep"
)

// Seed-derivation stream indices: each deterministic sub-stream of a run is
// keyed by rng.SeedAt(Spec.Seed, stream), the same derivation rule tqsimd
// batch seeds and sweep point seeds use, so streams never alias each other
// or the per-request streams derived below them.
const (
	streamArrival = 1 // open-loop inter-arrival gaps
	streamMix     = 2 // base of the per-request body streams
	streamThink   = 3 // base of the per-client think-time streams
	streamReplay  = 4 // the pinned seed shared by replay requests
)

// MixEntry is one weighted request class in the generated mix.
type MixEntry struct {
	// Weight is the relative probability of this class (must be positive).
	Weight float64 `json:"weight"`
	// Kind is "job" (POST /v1/jobs, the default) or "sweep"
	// (POST /v1/sweeps).
	Kind string `json:"kind,omitempty"`
	// Circuit names a benchmark-suite circuit (e.g. "bv_n10").
	Circuit string `json:"circuit"`
	// Noise names the model (default "DC"; "ideal" for noise-free).
	Noise string `json:"noise,omitempty"`
	// Shots per request (jobs) or per sweep point.
	Shots int `json:"shots"`
	// BatchShots forwards to the job request (0 = server default).
	BatchShots int `json:"batch_shots,omitempty"`
	// Stream requests the NDJSON shape instead of one JSON body.
	Stream bool `json:"stream,omitempty"`
	// Backend pins an engine by name ("" = auto).
	Backend string `json:"backend,omitempty"`
	// NoisePoints sizes a sweep's depolarizing-noise axis (kind "sweep";
	// default 2). Rates are deterministic in the point index.
	NoisePoints int `json:"noise_points,omitempty"`
	// Repeats is the sweep's repeat axis (default 1).
	Repeats int `json:"repeats,omitempty"`
}

// DefaultMix is a small mixed workload that a modest tqsimd holds at tens
// of requests per second: mostly cheap BV jobs, some QFT, a streaming
// class, and an occasional two-point sweep.
var DefaultMix = []MixEntry{
	{Weight: 6, Kind: "job", Circuit: "bv_n10", Noise: "DC", Shots: 200},
	{Weight: 2, Kind: "job", Circuit: "qft_n8", Noise: "DC", Shots: 100},
	{Weight: 1, Kind: "job", Circuit: "bv_n8", Noise: "ideal", Shots: 400, Stream: true, BatchShots: 100},
	{Weight: 1, Kind: "sweep", Circuit: "bv_n8", Shots: 100, NoisePoints: 2, Repeats: 1},
}

// Spec configures one load-generation run.
type Spec struct {
	// Arrival selects the process: "poisson" (open-loop, exponential
	// inter-arrivals — the default), "fixed" (open-loop, uniform spacing)
	// or "closed" (Clients concurrent loops with think time).
	Arrival string `json:"arrival,omitempty"`
	// Rate is the offered request rate per second (open-loop processes).
	Rate float64 `json:"rate,omitempty"`
	// Clients is the closed-loop concurrency (default 4).
	Clients int `json:"clients,omitempty"`
	// Think is the closed-loop mean think time between a client's requests
	// (exponentially distributed; 0 = none).
	Think time.Duration `json:"think,omitempty"`
	// Duration bounds the run (required).
	Duration time.Duration `json:"duration"`
	// MaxRequests optionally caps the total requests issued (0 = no cap).
	MaxRequests int `json:"max_requests,omitempty"`
	// Seed keys every deterministic stream of the run.
	Seed uint64 `json:"seed"`
	// Mix is the weighted request mix (nil = DefaultMix).
	Mix []MixEntry `json:"mix,omitempty"`
	// ReplayFraction is the fraction of requests issued with a pinned
	// simulation seed, so a result-store-enabled server answers the repeats
	// as replays — the heavy-repeat-traffic scenario (0 = all fresh seeds).
	ReplayFraction float64 `json:"replay_fraction,omitempty"`
	// SLOp99 is the latency SLO goodput is measured against (0 = all
	// completed requests are good).
	SLOp99 time.Duration `json:"slo_p99,omitempty"`
	// Timeout bounds one request (default 30s).
	Timeout time.Duration `json:"timeout,omitempty"`
	// MaxInFlight caps concurrent open-loop requests; arrivals beyond it
	// are dropped and counted, not queued (queueing would silently turn an
	// open-loop run into a closed-loop one). Default 1024.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// scheduleCap bounds the materialized open-loop schedule.
const scheduleCap = 2_000_000

func (s *Spec) withDefaults() (*Spec, error) {
	c := *s
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	switch c.Arrival {
	case "poisson", "fixed":
		if c.Rate <= 0 {
			return nil, fmt.Errorf("loadgen: arrival %q needs a positive rate", c.Arrival)
		}
	case "closed":
		if c.Clients <= 0 {
			c.Clients = 4
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (have poisson, fixed, closed)", c.Arrival)
	}
	if c.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive")
	}
	if c.Rate*c.Duration.Seconds() > scheduleCap {
		return nil, fmt.Errorf("loadgen: rate %.0f over %v expands past the %d-request schedule cap",
			c.Rate, c.Duration, scheduleCap)
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix
	}
	total := 0.0
	for i, m := range c.Mix {
		if m.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: mix[%d] weight must be positive", i)
		}
		if m.Kind != "" && m.Kind != "job" && m.Kind != "sweep" {
			return nil, fmt.Errorf("loadgen: mix[%d] kind %q (have job, sweep)", i, m.Kind)
		}
		if m.Circuit == "" {
			return nil, fmt.Errorf("loadgen: mix[%d] needs a circuit", i)
		}
		if m.Shots <= 0 {
			return nil, fmt.Errorf("loadgen: mix[%d] shots must be positive", i)
		}
		total += m.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: mix weights sum to zero")
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	return &c, nil
}

// LoadMix reads a JSON mix file (an array of MixEntry).
func LoadMix(path string) ([]MixEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mix []MixEntry
	if err := json.Unmarshal(raw, &mix); err != nil {
		return nil, fmt.Errorf("mix %s: %w", path, err)
	}
	return mix, nil
}

// Request is one generated request, a pure function of (Spec, Index).
type Request struct {
	Index  int
	Kind   string // "job" | "sweep"
	Path   string // "/v1/jobs" | "/v1/sweeps"
	Stream bool
	Body   []byte
	// Replay marks a request issued with the pinned replay seed.
	Replay bool
}

// RequestAt builds request i of the sequence. Each request draws from its
// own derived RNG stream (rng.SeedAt over the mix base stream), so requests
// can be generated in any order — or concurrently — with byte-identical
// bodies. encoding/json marshals struct fields in declaration order and map
// keys sorted, so the body bytes themselves are deterministic.
func (s *Spec) RequestAt(i int) (*Request, error) {
	c, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	return c.requestAt(i)
}

func (s *Spec) requestAt(i int) (*Request, error) {
	r := rng.New(rng.SeedAt(rng.SeedAt(s.Seed, streamMix), uint64(i)))
	weights := make([]float64, len(s.Mix))
	for k, m := range s.Mix {
		weights[k] = m.Weight
	}
	m := s.Mix[r.Choice(weights)]

	// The per-request simulation seed: fresh from the request stream, or
	// the pinned replay seed for the configured fraction — repeated
	// identical bodies are exactly what a content-addressed result store
	// answers without simulating.
	replay := s.ReplayFraction > 0 && r.Float64() < s.ReplayFraction
	simSeed := r.Uint64()
	if replay {
		simSeed = rng.SeedAt(s.Seed, streamReplay)
	}

	kind := m.Kind
	if kind == "" {
		kind = "job"
	}
	req := &Request{Index: i, Kind: kind, Replay: replay}
	switch kind {
	case "job":
		noise := m.Noise
		if noise == "" {
			noise = "DC"
		}
		body, err := json.Marshal(&serve.JobRequest{
			Circuit:    m.Circuit,
			Noise:      noise,
			Shots:      m.Shots,
			Seed:       simSeed,
			BatchShots: m.BatchShots,
			Stream:     m.Stream,
			Backend:    m.Backend,
		})
		if err != nil {
			return nil, err
		}
		req.Path, req.Stream, req.Body = "/v1/jobs", m.Stream, body
	case "sweep":
		points := m.NoisePoints
		if points <= 0 {
			points = 2
		}
		repeats := m.Repeats
		if repeats <= 0 {
			repeats = 1
		}
		axis := make([]sweep.NoisePoint, points)
		for k := range axis {
			axis[k] = sweep.NoisePoint{P1: 0.0002 * float64(k+1), P2: 0.001 * float64(k+1)}
		}
		stream := m.Stream
		sr := serve.SweepRequest{Spec: sweep.Spec{
			Circuit: m.Circuit,
			Noise:   axis,
			Shots:   []int{m.Shots},
			Repeats: repeats,
			Seed:    simSeed,
			Backend: m.Backend,
		}}
		sr.Stream = &stream
		body, err := json.Marshal(&sr)
		if err != nil {
			return nil, err
		}
		req.Path, req.Stream, req.Body = "/v1/sweeps", stream, body
	}
	return req, nil
}
