package loadgen

import (
	"container/heap"
	"context"
	"testing"
	"time"

	"tqsim/internal/metrics"
)

// syntheticService simulates an M/D/c FCFS queue: `servers` parallel
// workers each taking exactly `service` per request, with an unbounded
// queue. Its analytic capacity is servers/service req/s: below that rate
// waiting time stays bounded, above it the queue (and so p99) grows
// without limit over the trial. This gives the knee search a target with
// a known right answer.
type syntheticService struct {
	servers  int
	service  time.Duration
	duration time.Duration
}

// capacity is the analytic saturation rate in requests per second.
func (s syntheticService) capacity() float64 {
	return float64(s.servers) / s.service.Seconds()
}

type busyHeap []float64 // server free times, min-heap

func (h busyHeap) Len() int            { return len(h) }
func (h busyHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h busyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *busyHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *busyHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// trial runs one discrete-event simulation at the offered rate and
// renders it as a loadgen Report, exactly as a live trial would.
func (s syntheticService) trial(_ context.Context, rate float64) (*Report, error) {
	n := int(rate * s.duration.Seconds())
	if n < 1 {
		n = 1
	}
	free := make(busyHeap, s.servers) // all servers free at t=0
	heap.Init(&free)
	var hist metrics.LatencyHist
	svc := s.service.Seconds()
	for i := 0; i < n; i++ {
		arrive := float64(i) / rate
		begin := free[0]
		if arrive > begin {
			begin = arrive
		}
		done := begin + svc
		free[0] = done
		heap.Fix(&free, 0)
		hist.Record(time.Duration((done - arrive) * float64(time.Second)))
	}
	rep := &Report{
		Arrival:   "fixed",
		Offered:   rate,
		Sent:      n,
		Completed: n,
		Hist:      &hist,
	}
	rep.P50, rep.P95, rep.P99 = hist.Quantile(0.50), hist.Quantile(0.95), hist.Quantile(0.99)
	rep.P50MS, rep.P95MS, rep.P99MS = durMS(rep.P50), durMS(rep.P95), durMS(rep.P99)
	return rep, nil
}

// TestFindKneeAnalyticCeiling checks the knee search against the
// synthetic queue's analytic capacity: the found knee converges to
// within tolerance of the ceiling and — because the knee is always an
// actually-probed, non-breaching rate — never exceeds it.
func TestFindKneeAnalyticCeiling(t *testing.T) {
	svc := syntheticService{
		servers:  4,
		service:  10 * time.Millisecond,
		duration: 10 * time.Second,
	}
	cap := svc.capacity() // 400 req/s
	ks := KneeSpec{
		StartRate: 10,
		MaxRate:   10000,
		// Well below cap the p99 is the bare service time (10ms); at or
		// above cap the queue grows for the whole trial and p99 explodes,
		// so any SLO comfortably above 10ms separates the two regimes.
		SLOp99:    40 * time.Millisecond,
		Tolerance: 0.05,
	}
	res, err := FindKnee(context.Background(), ks, svc.trial)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("knee search did not converge: %+v", res)
	}
	// With deterministic arrivals the queue is stable at exactly ρ=1, so
	// the knee may equal capacity — but can never exceed it, because the
	// knee is always a probed rate and any rate above capacity grows the
	// queue for the whole trial and breaches.
	if res.Knee > cap {
		t.Fatalf("knee %.1f above analytic capacity %.1f", res.Knee, cap)
	}
	// The knee must be close below capacity: queueing only pushes p99
	// past 40ms near saturation, so the knee should land within ~25%.
	if res.Knee < 0.70*cap {
		t.Fatalf("knee %.1f implausibly far below capacity %.1f", res.Knee, cap)
	}
	if res.FirstBad <= res.Knee {
		t.Fatalf("bracket inverted: knee %.1f, first bad %.1f", res.Knee, res.FirstBad)
	}
	if w := (res.FirstBad - res.Knee) / res.FirstBad; w > ks.Tolerance {
		t.Fatalf("bracket width %.3f above tolerance %.3f", w, ks.Tolerance)
	}
	// Every trial's verdict must be consistent with the capacity: every
	// rate strictly above capacity breaches.
	for _, tr := range res.Trials {
		if tr.Rate > cap && !tr.Breach {
			t.Fatalf("trial at %.1f > capacity %.1f did not breach", tr.Rate, cap)
		}
	}
}

// TestFindKneeOpenEnded: a service that never breaches reports a
// non-converged knee at MaxRate.
func TestFindKneeOpenEnded(t *testing.T) {
	fast := func(_ context.Context, rate float64) (*Report, error) {
		var hist metrics.LatencyHist
		hist.Record(time.Millisecond)
		return &Report{Offered: rate, Sent: 100, Completed: 100, P99: time.Millisecond, Hist: &hist}, nil
	}
	res, err := FindKnee(context.Background(), KneeSpec{StartRate: 10, MaxRate: 100, SLOp99: 50 * time.Millisecond}, fast)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("expected open-ended (non-converged) result")
	}
	if res.Knee != 100 {
		t.Fatalf("open-ended knee %.1f, want MaxRate 100", res.Knee)
	}
}

// TestFindKneeAlwaysBreaching: a service that always breaches bisects
// down and reports a zero knee rather than inventing capacity.
func TestFindKneeAlwaysBreaching(t *testing.T) {
	dead := func(_ context.Context, rate float64) (*Report, error) {
		return &Report{Offered: rate, Sent: 100, Completed: 0}, nil
	}
	res, err := FindKnee(context.Background(), KneeSpec{StartRate: 8, MaxRate: 64, SLOp99: 50 * time.Millisecond}, dead)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Knee != 0 {
		t.Fatalf("dead service: got knee %.1f converged %v, want 0 and true", res.Knee, res.Converged)
	}
}

// TestKneeSpecValidation rejects a missing SLO and inverted rate bounds.
func TestKneeSpecValidation(t *testing.T) {
	noop := func(_ context.Context, rate float64) (*Report, error) { return &Report{}, nil }
	if _, err := FindKnee(context.Background(), KneeSpec{}, noop); err == nil {
		t.Fatal("missing SLO accepted")
	}
	if _, err := FindKnee(context.Background(), KneeSpec{StartRate: 100, MaxRate: 10, SLOp99: time.Second}, noop); err == nil {
		t.Fatal("MaxRate < StartRate accepted")
	}
}
