package serve

// Multi-worker integration suite for the distributed shard protocol: an
// in-process coordinator fronting three in-process workers (httptest), with
// fault injection for the failover paths. The acceptance property
// throughout: a sharded job's merged histogram is byte-identical to the
// single-process run of the same request at the same seed — including
// after a worker is killed mid-job and its leases are re-dispatched.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"tqsim"
	"tqsim/internal/metrics"
	"tqsim/internal/rng"
)

// countingWorker wraps a worker handler and counts shard leases served.
type countingWorker struct {
	inner  http.Handler
	shards atomic.Int64
}

func (c *countingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" {
		c.shards.Add(1)
	}
	c.inner.ServeHTTP(w, r)
}

// killableWorker serves exactly one shard lease, then fails every request —
// a worker that dies mid-job.
type killableWorker struct {
	inner  http.Handler
	leases atomic.Int64
	killed atomic.Bool
}

func (k *killableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" && k.leases.Add(1) > 1 {
		k.killed.Store(true)
	}
	if k.killed.Load() {
		http.Error(w, "worker killed", http.StatusInternalServerError)
		return
	}
	k.inner.ServeHTTP(w, r)
}

// sameJSONCounts asserts two histograms serialize to identical bytes
// (encoding/json sorts map keys, so byte equality is histogram equality).
func sameJSONCounts(t *testing.T, ctx string, want, got map[string]int) {
	t.Helper()
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, g) {
		t.Fatalf("%s: histograms differ\nwant %s\ngot  %s", ctx, w, g)
	}
}

// singleProcessReference runs the request on a fresh single-process server.
func singleProcessReference(t *testing.T, req *JobRequest) *JobResponse {
	t.Helper()
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run failed: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	return &jr
}

// distributedJob is the suite's standard multi-batch request: 16 batches.
func distributedJob(seed uint64) *JobRequest {
	return &JobRequest{Circuit: "qft_n8", Noise: "DC", Shots: 800, Seed: seed, BatchShots: 50}
}

func TestDistributedMergeByteIdenticalToSingleProcess(t *testing.T) {
	var counters []*countingWorker
	var urls []string
	for i := 0; i < 3; i++ {
		cw := &countingWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 2})}
		ws := httptest.NewServer(cw)
		defer ws.Close()
		counters = append(counters, cw)
		urls = append(urls, ws.URL)
	}
	coord := New(Config{Workers: urls})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	req := distributedJob(42)
	ref := singleProcessReference(t, req)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed job failed: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if !jr.Distributed {
		t.Fatal("job did not report distributed execution")
	}
	if jr.Batches != 16 || jr.Outcomes != ref.Outcomes {
		t.Fatalf("batches %d outcomes %d, reference outcomes %d", jr.Batches, jr.Outcomes, ref.Outcomes)
	}
	sameJSONCounts(t, "distributed merge", ref.Counts, jr.Counts)

	st := coord.Snapshot()
	if st.ShardsDispatched == 0 || st.BatchesRun != 16 {
		t.Fatalf("coordinator did not shard: %+v", st)
	}
	if st.WorkersAlive != 3 || st.WorkersTotal != 3 {
		t.Fatalf("pool accounting wrong: %+v", st)
	}
	total := int64(0)
	for _, cw := range counters {
		total += cw.shards.Load()
	}
	if total == 0 {
		t.Fatal("no worker served a shard")
	}

	// Re-running the identical request over a different worker count (one
	// worker) must merge to the identical histogram.
	solo := New(Config{Workers: urls[:1]})
	ts2 := httptest.NewServer(solo)
	defer ts2.Close()
	resp, body = postJSON(t, ts2.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one-worker job failed: %d: %s", resp.StatusCode, body)
	}
	var jr2 JobResponse
	if err := json.Unmarshal(body, &jr2); err != nil {
		t.Fatal(err)
	}
	sameJSONCounts(t, "one-worker merge", ref.Counts, jr2.Counts)
}

func TestDistributedFailoverKillWorkerMidJob(t *testing.T) {
	kw := &killableWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 2})}
	var urls []string
	for i := 0; i < 3; i++ {
		var h http.Handler = New(Config{WorkerMode: true, MaxConcurrent: 2})
		if i == 1 {
			h = kw
		}
		ws := httptest.NewServer(h)
		defer ws.Close()
		urls = append(urls, ws.URL)
	}
	coord := New(Config{Workers: urls})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	req := distributedJob(7)
	ref := singleProcessReference(t, req)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover job failed: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	sameJSONCounts(t, "failover merge", ref.Counts, jr.Counts)
	if jr.Outcomes != ref.Outcomes {
		t.Fatalf("outcomes %d, want %d", jr.Outcomes, ref.Outcomes)
	}

	// The killed worker must actually have died mid-job (it saw more than
	// one lease), its unacked leases must have been re-dispatched, and the
	// failure recorded — never double-counted (outcome equality above
	// already proves that).
	if !kw.killed.Load() {
		t.Fatal("fault injection never fired: the worker was not offered a second lease")
	}
	st := coord.Snapshot()
	if st.WorkerFailures == 0 || st.ShardsRequeued == 0 {
		t.Fatalf("failover not recorded: %+v", st)
	}
	if st.WorkersAlive != 2 {
		t.Fatalf("dead worker still counted alive: %+v", st)
	}
	if st.BatchesRun != 16 {
		t.Fatalf("batches run %d, want 16", st.BatchesRun)
	}
}

func TestDistributedPlacementSkipsWorkerJobCannotFit(t *testing.T) {
	// Worker 0 advertises a memory budget below one worker-state set of the
	// job; planner-driven placement must never lease to it.
	tiny := &countingWorker{inner: New(Config{WorkerMode: true, MemoryBudgetBytes: 2048})}
	big := &countingWorker{inner: New(Config{WorkerMode: true})}
	tinyS := httptest.NewServer(tiny)
	defer tinyS.Close()
	bigS := httptest.NewServer(big)
	defer bigS.Close()

	coord := New(Config{Workers: []string{tinyS.URL, bigS.URL}})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	req := distributedJob(3)
	ref := singleProcessReference(t, req)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("placement job failed: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	sameJSONCounts(t, "placement merge", ref.Counts, jr.Counts)
	if tiny.shards.Load() != 0 {
		t.Fatalf("coordinator leased %d shards to a worker the job cannot fit on", tiny.shards.Load())
	}
	if big.shards.Load() == 0 {
		t.Fatal("the fitting worker served nothing")
	}
}

func TestDistributedLocalFallbackWhenPoolIsDown(t *testing.T) {
	// Both workers are unreachable from the start: the coordinator must
	// finish the job locally with the identical histogram.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	dead.Close() // closed listener: connection refused

	coord := New(Config{Workers: []string{dead.URL, "http://127.0.0.1:1"}})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	req := distributedJob(11)
	ref := singleProcessReference(t, req)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback job failed: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	sameJSONCounts(t, "local fallback merge", ref.Counts, jr.Counts)
	st := coord.Snapshot()
	if st.WorkersAlive != 0 {
		t.Fatalf("dead pool counted alive: %+v", st)
	}
	if st.BatchesRun != 16 {
		t.Fatalf("batches run %d, want 16", st.BatchesRun)
	}
}

func TestShardEndpointRequiresWorkerMode(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/shard", &ShardRequest{Job: *distributedJob(1), From: 0, To: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-worker accepted a lease: %d: %s", resp.StatusCode, body)
	}

	// A worker advertises itself and serves a lease directly.
	ws := httptest.NewServer(New(Config{WorkerMode: true, MaxConcurrent: 3, MemoryBudgetBytes: 1 << 30}))
	defer ws.Close()
	hr, err := http.Get(ws.URL + "/v1/worker")
	if err != nil {
		t.Fatal(err)
	}
	var info WorkerInfo
	if err := json.NewDecoder(hr.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if !info.Worker || info.MaxConcurrent != 3 || info.MemoryBudgetBytes != 1<<30 || info.Draining {
		t.Fatalf("worker info wrong: %+v", info)
	}

	resp, body = postJSON(t, ws.URL+"/v1/shard", &ShardRequest{Job: *distributedJob(5), From: 2, To: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker lease failed: %d: %s", resp.StatusCode, body)
	}
	var sr ShardResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Batches) != 3 {
		t.Fatalf("lease [2,5) returned %d batches", len(sr.Batches))
	}
	for k, sb := range sr.Batches {
		i := k + 2
		if sb.Batch != i || sb.Seed != BatchSeed(5, i) || sb.Outcomes < 50 {
			t.Fatalf("shard batch %d wrong: %+v", i, sb)
		}
	}

	// Lease bounds are validated.
	resp, body = postJSON(t, ws.URL+"/v1/shard", &ShardRequest{Job: *distributedJob(5), From: 4, To: 99})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range lease accepted: %d: %s", resp.StatusCode, body)
	}
}

// TestShardPartitionMergeDeterminism is the property test for the
// BatchSeed / merge contract: any partition of a job's batches over 1..4
// workers, merged in any order, equals the flat sequential merge.
func TestShardPartitionMergeDeterminism(t *testing.T) {
	c := tqsim.QFTCircuit(5)
	m := tqsim.NoiseByName("DC")
	const shots, batch, seed = 330, 50, 123 // 6 full batches + ragged 30
	j := &job{shots: shots, batchSize: batch}
	n := j.numBatches()

	// Per-batch histograms, computed once: batch i is a pure function of
	// (circuit, noise, size_i, BatchSeed(seed, i)).
	per := make([]map[uint64]int, n)
	flat := map[uint64]int{}
	for i := 0; i < n; i++ {
		res, err := tqsim.RunTQSim(c, m, j.batchShots(i), tqsim.Options{Seed: BatchSeed(seed, i)})
		if err != nil {
			t.Fatal(err)
		}
		per[i] = res.Counts
		metrics.MergeCounts(flat, res.Counts)
	}

	equal := func(ctx string, got map[uint64]int) {
		t.Helper()
		if len(got) != len(flat) {
			t.Fatalf("%s: support %d vs %d", ctx, len(got), len(flat))
		}
		for k, v := range flat {
			if got[k] != v {
				t.Fatalf("%s: outcome %d: %d vs %d", ctx, k, got[k], v)
			}
		}
	}

	r := rng.New(99)
	for workers := 1; workers <= 4; workers++ {
		// Three partition schemes: round-robin, contiguous ranges, random.
		assign := make([][]int, 3)
		for i := 0; i < n; i++ {
			assign[0] = append(assign[0], i%workers)
			assign[1] = append(assign[1], i*workers/n)
			assign[2] = append(assign[2], r.Intn(workers))
		}
		for scheme, owners := range assign {
			// Each worker merges its own batches; worker merges then merge
			// in reverse worker order (a different order than arrival).
			perWorker := make([]map[uint64]int, workers)
			for w := range perWorker {
				perWorker[w] = map[uint64]int{}
			}
			for i, w := range owners {
				metrics.MergeCounts(perWorker[w], per[i])
			}
			got := map[uint64]int{}
			for w := workers - 1; w >= 0; w-- {
				metrics.MergeCounts(got, perWorker[w])
			}
			equal("workers="+strconv.Itoa(workers)+" scheme="+strconv.Itoa(scheme), got)
		}
	}
}
