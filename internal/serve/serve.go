// Package serve implements the tqsimd HTTP/JSON service: a long-running
// entry point that accepts OpenQASM (or benchmark-suite) simulation jobs,
// admission-controls them with the planner's cost/memory estimates, batches
// shots through a bounded scheduler, caches simulation plans keyed by
// (circuit hash, noise, options), and streams per-batch histograms as
// NDJSON. cmd/tqsimd is a thin main around New.
//
// Determinism contract: a job that fits in one batch returns a histogram
// byte-identical to tqsim.RunTQSim (mode "tqsim") or tqsim.RunBackend
// (mode "baseline") at the same seed and options. A job split into B
// batches runs batch i at the derived seed BatchSeed(seed, i) (batch 0
// keeps the job seed) and returns the merged histogram — equal to merging
// B single-process runs at those seeds, regardless of how many jobs the
// server is executing concurrently.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tqsim"
	"tqsim/internal/hpcmodel"
	"tqsim/internal/planner"
	"tqsim/internal/rng"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent bounds jobs executing simultaneously
	// (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds jobs waiting for an execution slot; beyond it the
	// server answers 429 instead of queueing unboundedly (default 16).
	QueueDepth int
	// MemoryBudgetBytes caps the planner-estimated peak state memory of
	// all running jobs combined. A job whose estimate alone exceeds the
	// budget is rejected 413; one that merely doesn't fit *now* is
	// rejected 503 for the client to retry (0 = unlimited).
	MemoryBudgetBytes int64
	// MaxShots rejects absurd jobs up front (default 1<<22).
	MaxShots int
	// DefaultBatchShots splits jobs into batches of this many shots when
	// the request doesn't choose (0 = one batch per job).
	DefaultBatchShots int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxShots <= 0 {
		c.MaxShots = 1 << 22
	}
	return c
}

// Stats is the /v1/stats payload.
type Stats struct {
	JobsCompleted     uint64 `json:"jobs_completed"`
	JobsFailed        uint64 `json:"jobs_failed"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	RejectedMemory    uint64 `json:"rejected_memory"`
	BatchesRun        uint64 `json:"batches_run"`
	PlanCacheHits     uint64 `json:"plan_cache_hits"`
	PlanCacheMisses   uint64 `json:"plan_cache_misses"`
	MemoryInUseBytes  int64  `json:"memory_in_use_bytes"`
}

// Server is the tqsimd HTTP handler. Construct with New.
type Server struct {
	cfg Config
	mux *http.ServeMux

	slots   chan struct{} // execution permits (MaxConcurrent)
	pending atomic.Int64  // running + queued jobs

	memMu     sync.Mutex
	memInUse  int64
	planMu    sync.Mutex
	planCache map[string]*cachedPlan
	stats     [7]atomic.Uint64 // indexed by the stat* constants
}

type cachedPlan struct {
	plan     *tqsim.Plan
	decision *tqsim.Decision
}

const (
	statCompleted = iota
	statFailed
	statQueueFull
	statMemory
	statBatches
	statPlanHits
	statPlanMisses
)

// New returns a ready-to-serve handler.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg.withDefaults(),
		mux:       http.NewServeMux(),
		planCache: make(map[string]*cachedPlan),
	}
	s.slots = make(chan struct{}, s.cfg.MaxConcurrent)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/backends", s.handleBackends)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// JobRequest is the POST /v1/jobs (and /v1/plan) body. Exactly one of QASM
// or Circuit selects the program.
type JobRequest struct {
	// QASM is an OpenQASM 2.0 program.
	QASM string `json:"qasm,omitempty"`
	// Circuit names a benchmark-suite circuit (e.g. "qft_n12") instead.
	Circuit string `json:"circuit,omitempty"`
	// Noise names the model: DC (default), DCR, TR, TRR, AD, ADR, PD, PDR,
	// ALL, or "ideal".
	Noise string `json:"noise,omitempty"`
	// Shots is the requested sample count (required, positive).
	Shots int `json:"shots"`
	// Seed selects the reproducible trajectory stream.
	Seed uint64 `json:"seed"`
	// Mode is "tqsim" (tree reuse, default) or "baseline" (flat plan).
	Mode string `json:"mode,omitempty"`
	// Backend picks the engine by registry name or "auto" (default).
	Backend string `json:"backend,omitempty"`
	// BatchShots splits the job into batches of this many shots
	// (0 = the server's DefaultBatchShots; negative = force one batch).
	BatchShots int `json:"batch_shots,omitempty"`
	// Stream requests an NDJSON per-batch stream instead of one JSON body.
	Stream bool `json:"stream,omitempty"`
	// CopyCost, MaxLevels, MemoryBudgetBytes, Parallelism, Epsilon and
	// ClusterNodes forward to tqsim.Options (zero = defaults). CopyCost is
	// never host-profiled in the daemon: plans must be deterministic so the
	// plan cache and cross-host replay agree.
	CopyCost          float64 `json:"copy_cost,omitempty"`
	MaxLevels         int     `json:"max_levels,omitempty"`
	MemoryBudgetBytes int64   `json:"memory_budget_bytes,omitempty"`
	Parallelism       int     `json:"parallelism,omitempty"`
	Epsilon           float64 `json:"epsilon,omitempty"`
	ClusterNodes      int     `json:"cluster_nodes,omitempty"`
}

// DecisionJSON is the wire form of a planner Decision.
type DecisionJSON struct {
	Backend      string          `json:"backend"`
	Mode         string          `json:"mode,omitempty"`
	Parallelism  int             `json:"parallelism"`
	ClusterNodes int             `json:"cluster_nodes,omitempty"`
	EstPeakBytes int64           `json:"est_peak_bytes"`
	EstPeak      string          `json:"est_peak"`
	Why          string          `json:"why"`
	Rejected     []CandidateJSON `json:"rejected,omitempty"`
}

// CandidateJSON is one rejected engine in a DecisionJSON.
type CandidateJSON struct {
	Backend string `json:"backend"`
	Mode    string `json:"mode,omitempty"`
	Reason  string `json:"reason"`
}

func decisionJSON(d *tqsim.Decision) *DecisionJSON {
	if d == nil {
		return nil
	}
	out := &DecisionJSON{
		Backend:      d.Backend,
		Mode:         d.Mode,
		Parallelism:  d.Parallelism,
		ClusterNodes: d.ClusterNodes,
		EstPeakBytes: d.EstPeakBytes,
		EstPeak:      hpcmodel.FormatBytes(float64(d.EstPeakBytes)),
		Why:          d.Why,
	}
	for _, c := range d.Rejected() {
		out.Rejected = append(out.Rejected, CandidateJSON{Backend: c.Backend, Mode: c.Mode, Reason: c.Reason})
	}
	return out
}

// JobResponse is the non-streaming POST /v1/jobs body. Counts keys are the
// decimal basis indices, values the shot counts.
type JobResponse struct {
	Circuit   string         `json:"circuit"`
	Width     int            `json:"width"`
	Backend   string         `json:"backend"`
	Structure string         `json:"structure"`
	Outcomes  int            `json:"outcomes"`
	Batches   int            `json:"batches"`
	Counts    map[string]int `json:"counts"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Decision  *DecisionJSON  `json:"decision,omitempty"`
	PlanHit   bool           `json:"plan_cache_hit"`
}

// batchLine is one NDJSON record of a streaming response.
type batchLine struct {
	Type      string         `json:"type"` // "plan" | "batch" | "done" | "error"
	Batch     int            `json:"batch,omitempty"`
	Batches   int            `json:"batches,omitempty"`
	Shots     int            `json:"shots,omitempty"`
	Seed      uint64         `json:"seed,omitempty"`
	Structure string         `json:"structure,omitempty"`
	Backend   string         `json:"backend,omitempty"`
	Counts    map[string]int `json:"counts,omitempty"`
	Outcomes  int            `json:"outcomes,omitempty"`
	ElapsedMS float64        `json:"elapsed_ms,omitempty"`
	Decision  *DecisionJSON  `json:"decision,omitempty"`
	Error     string         `json:"error,omitempty"`
}

var knownNoise = map[string]bool{
	"": true, "ideal": true, "DC": true, "DCR": true, "TR": true, "TRR": true,
	"AD": true, "ADR": true, "PD": true, "PDR": true, "ALL": true,
}

// job is a validated, planned request ready to execute.
type job struct {
	circuit *tqsim.Circuit
	noise   *tqsim.NoiseModel
	opt     tqsim.Options
	shots   int
	mode    string
	// batchSize is the per-batch shot count; 0 runs one batch. Batches are
	// never materialized as a slice: a max-shots job at batch size 1 is
	// millions of batches but only two distinct sizes, so plans are held
	// per size and batch i's size is computed on demand.
	batchSize  int
	planBySize map[int]*cachedPlan
	decision   *tqsim.Decision
	// estPeak is the admission-control estimate: the chosen candidate's
	// peak for auto jobs, the named engine's for explicit ones.
	estPeak int64
	planHit bool
	stream  bool
}

// numBatches returns how many batches the job runs.
func (j *job) numBatches() int {
	if j.batchSize <= 0 || j.batchSize >= j.shots {
		return 1
	}
	return (j.shots + j.batchSize - 1) / j.batchSize
}

// batchShots returns batch i's shot count (the last batch is ragged).
func (j *job) batchShots(i int) int {
	n := j.numBatches()
	if n == 1 {
		return j.shots
	}
	if i == n-1 {
		return j.shots - (n-1)*j.batchSize
	}
	return j.batchSize
}

// planFor returns the cached plan for batch i.
func (j *job) planFor(i int) *cachedPlan { return j.planBySize[j.batchShots(i)] }

// httpError carries a status code with the message.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// prepare validates the request, resolves the circuit and noise model,
// plans every batch (through the cache) and records the planner decision.
func (s *Server) prepare(req *JobRequest) (*job, *httpError) {
	if (req.QASM == "") == (req.Circuit == "") {
		return nil, errf(http.StatusBadRequest, "provide exactly one of qasm or circuit")
	}
	if req.Shots <= 0 {
		return nil, errf(http.StatusBadRequest, "shots must be positive")
	}
	if req.Shots > s.cfg.MaxShots {
		return nil, errf(http.StatusRequestEntityTooLarge,
			"shots %d exceeds the server limit %d", req.Shots, s.cfg.MaxShots)
	}
	if !knownNoise[req.Noise] {
		return nil, errf(http.StatusBadRequest, "unknown noise model %q", req.Noise)
	}
	mode := req.Mode
	if mode == "" {
		mode = "tqsim"
	}
	if mode != "tqsim" && mode != "baseline" {
		return nil, errf(http.StatusBadRequest, "mode must be tqsim or baseline, not %q", req.Mode)
	}
	backend := req.Backend
	if backend == "" {
		backend = tqsim.AutoBackend
	}
	if backend != tqsim.AutoBackend && !slices.Contains(tqsim.Backends(), backend) {
		return nil, errf(http.StatusBadRequest, "unknown backend %q (have auto, %v)",
			req.Backend, tqsim.Backends())
	}

	var c *tqsim.Circuit
	var err error
	if req.QASM != "" {
		c, err = tqsim.ParseQASM("job", req.QASM)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "qasm: %v", err)
		}
	} else if c = tqsim.BenchmarkByName(req.Circuit); c == nil {
		return nil, errf(http.StatusBadRequest, "unknown suite circuit %q", req.Circuit)
	}

	noiseName := req.Noise
	if noiseName == "" {
		noiseName = "DC"
	}
	m := tqsim.NoiseByName(noiseName) // nil for "ideal"

	j := &job{
		circuit:    c,
		noise:      m,
		shots:      req.Shots,
		mode:       mode,
		stream:     req.Stream,
		planBySize: make(map[int]*cachedPlan, 2),
		opt: tqsim.Options{
			Seed:              req.Seed,
			CopyCost:          req.CopyCost,
			MaxLevels:         req.MaxLevels,
			MemoryBudgetBytes: req.MemoryBudgetBytes,
			Backend:           backend,
			ClusterNodes:      req.ClusterNodes,
			Parallelism:       req.Parallelism,
			Epsilon:           req.Epsilon,
		},
	}
	j.batchSize = req.BatchShots
	if j.batchSize == 0 {
		j.batchSize = s.cfg.DefaultBatchShots
	}

	// Plan the (at most two) distinct batch sizes: the full batch and the
	// ragged last one.
	hash := circuitHash(c, noiseName, mode, &j.opt)
	n := j.numBatches()
	for _, i := range []int{0, n - 1} {
		size := j.batchShots(i)
		if _, done := j.planBySize[size]; done {
			continue
		}
		cp, hit, herr := s.planBatch(hash, c, m, size, mode, j.opt)
		if herr != nil {
			return nil, herr
		}
		j.planBySize[size] = cp
		if j.decision == nil {
			j.decision = cp.decision
			j.planHit = hit
		}
	}

	// Admission estimate: auto jobs run the decided candidate; explicit
	// jobs run the named engine, so estimate that engine's peak directly.
	if backend == tqsim.AutoBackend {
		j.estPeak = j.decision.EstPeakBytes
	} else {
		budget := j.opt.MemoryBudgetBytes
		if budget == 0 {
			budget = s.cfg.MemoryBudgetBytes
		}
		j.estPeak = planner.PeakBytes(j.planFor(0).plan, m, backend, planner.Budget{
			MemoryBytes:  budget,
			Parallelism:  req.Parallelism,
			ClusterNodes: req.ClusterNodes,
		})
	}
	return j, nil
}

// planBatch returns the cached plan+decision for one batch size, computing
// and caching it on miss.
func (s *Server) planBatch(hash string, c *tqsim.Circuit, m *tqsim.NoiseModel, shots int, mode string, opt tqsim.Options) (*cachedPlan, bool, *httpError) {
	key := fmt.Sprintf("%s|%d", hash, shots)
	s.planMu.Lock()
	cp, ok := s.planCache[key]
	s.planMu.Unlock()
	if ok {
		s.stats[statPlanHits].Add(1)
		return cp, true, nil
	}
	s.stats[statPlanMisses].Add(1)

	var plan *tqsim.Plan
	if mode == "baseline" {
		plan = tqsim.PlanBaseline(c, shots)
	} else {
		plan = tqsim.PlanDCP(c, m, shots, opt)
	}
	// The planner admission-checks against the server budget even for
	// explicit backends: its fitDense arithmetic is the single source of
	// peak-memory truth.
	budgetOpt := opt
	if budgetOpt.MemoryBudgetBytes == 0 {
		budgetOpt.MemoryBudgetBytes = s.cfg.MemoryBudgetBytes
	}
	decision, err := tqsim.DecidePlan(plan, m, budgetOpt)
	if err != nil {
		s.stats[statMemory].Add(1)
		return nil, false, errf(http.StatusRequestEntityTooLarge, "planner: %v", err)
	}
	cp = &cachedPlan{plan: plan, decision: decision}
	s.planMu.Lock()
	s.planCache[key] = cp
	s.planMu.Unlock()
	return cp, false, nil
}

// circuitHash keys the plan cache: canonical QASM of the parsed circuit
// plus every option that shapes the plan or the decision.
func circuitHash(c *tqsim.Circuit, noiseName, mode string, opt *tqsim.Options) string {
	src, err := tqsim.SerializeQASM(c)
	if err != nil {
		// Unserializable circuits (raw unitary gates) fall back to the
		// structural identity; suite circuits by name are stable.
		src = fmt.Sprintf("%s/%d/%d", c.Name, c.NumQubits, c.Len())
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%g\x00%d\x00%d\x00%s\x00%d\x00%d\x00%g",
		src, noiseName, mode, opt.CopyCost, opt.MaxLevels, opt.MemoryBudgetBytes,
		opt.Backend, opt.ClusterNodes, opt.Parallelism, opt.Epsilon)
	return hex.EncodeToString(h.Sum(nil))
}

// BatchSeed derives batch i's trajectory seed from the job seed. Batch 0
// keeps the job seed, so single-batch jobs are byte-identical to
// tqsim.RunTQSim at the same seed; later batches use statistically
// independent split streams, deterministically.
func BatchSeed(seed uint64, i int) uint64 {
	if i == 0 {
		return seed
	}
	return rng.New(seed).SplitAt(uint64(i)).Uint64()
}

// acquire takes an execution slot, bounded by MaxConcurrent running plus
// QueueDepth waiting. Reports false when the queue is full.
func (s *Server) acquire() bool {
	if s.pending.Add(1) > int64(s.cfg.MaxConcurrent+s.cfg.QueueDepth) {
		s.pending.Add(-1)
		return false
	}
	s.slots <- struct{}{}
	return true
}

func (s *Server) release() {
	<-s.slots
	s.pending.Add(-1)
}

// reserveMemory admits a job against the shared budget using the planner's
// peak estimate. 413 when the job can never fit, 503 when it doesn't fit
// right now.
func (s *Server) reserveMemory(est int64) *httpError {
	if s.cfg.MemoryBudgetBytes <= 0 {
		return nil
	}
	if est > s.cfg.MemoryBudgetBytes {
		s.stats[statMemory].Add(1)
		return errf(http.StatusRequestEntityTooLarge,
			"estimated peak %s exceeds the server budget %s",
			hpcmodel.FormatBytes(float64(est)), hpcmodel.FormatBytes(float64(s.cfg.MemoryBudgetBytes)))
	}
	s.memMu.Lock()
	defer s.memMu.Unlock()
	if s.memInUse+est > s.cfg.MemoryBudgetBytes {
		s.stats[statMemory].Add(1)
		return errf(http.StatusServiceUnavailable,
			"estimated peak %s does not fit the budget right now (%s of %s in use); retry",
			hpcmodel.FormatBytes(float64(est)), hpcmodel.FormatBytes(float64(s.memInUse)),
			hpcmodel.FormatBytes(float64(s.cfg.MemoryBudgetBytes)))
	}
	s.memInUse += est
	return nil
}

func (s *Server) releaseMemory(est int64) {
	if s.cfg.MemoryBudgetBytes <= 0 {
		return
	}
	s.memMu.Lock()
	s.memInUse -= est
	s.memMu.Unlock()
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, herr := s.prepare(&req)
	if herr != nil {
		s.stats[statFailed].Add(1)
		writeError(w, herr.status, herr.msg)
		return
	}
	if !s.acquire() {
		s.stats[statQueueFull].Add(1)
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full (%d running + %d queued)", s.cfg.MaxConcurrent, s.cfg.QueueDepth))
		return
	}
	defer s.release()
	// Memory is reserved only once the job holds an execution slot:
	// queued jobs consume no state memory, so they must not pin the budget
	// against the jobs actually running.
	if herr := s.reserveMemory(j.estPeak); herr != nil {
		writeError(w, herr.status, herr.msg)
		return
	}
	defer s.releaseMemory(j.estPeak)

	if j.stream {
		s.runStreaming(w, j)
		return
	}
	resp, herr := s.runJob(j, nil)
	if herr != nil {
		s.stats[statFailed].Add(1)
		writeError(w, herr.status, herr.msg)
		return
	}
	s.stats[statCompleted].Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// runJob executes every batch sequentially (the scheduler bounds jobs, not
// batches) and merges histograms. onBatch, when non-nil, observes each
// batch result as it completes — the streaming hook.
func (s *Server) runJob(j *job, onBatch func(i int, res *tqsim.TreeResult, seed uint64) error) (*JobResponse, *httpError) {
	start := time.Now()
	merged := make(map[uint64]int)
	outcomes := 0
	backend := ""
	structure := ""
	for i, n := 0, j.numBatches(); i < n; i++ {
		cp := j.planFor(i)
		opt := j.opt
		if opt.Backend == tqsim.AutoBackend {
			// Execute exactly the configuration the job was admitted on:
			// re-deciding inside RunPlan would ignore the server budget and
			// could run more workers (or another engine) than the reserved
			// estimate covers.
			opt.Backend = cp.decision.Backend
			opt.Parallelism = cp.decision.Parallelism
			if opt.ClusterNodes == 0 {
				opt.ClusterNodes = cp.decision.ClusterNodes
			}
		}
		opt.Seed = BatchSeed(j.opt.Seed, i)
		res, err := tqsim.RunPlan(cp.plan, j.noise, opt)
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "batch %d: %v", i, err)
		}
		s.stats[statBatches].Add(1)
		for k, v := range res.Counts {
			merged[k] += v
		}
		outcomes += res.Outcomes
		backend = res.BackendName
		structure = res.Structure
		if onBatch != nil {
			if err := onBatch(i, res, opt.Seed); err != nil {
				return nil, errf(http.StatusInternalServerError, "stream: %v", err)
			}
		}
	}
	return &JobResponse{
		Circuit:   j.circuit.Name,
		Width:     j.circuit.NumQubits,
		Backend:   backend,
		Structure: structure,
		Outcomes:  outcomes,
		Batches:   j.numBatches(),
		Counts:    countsJSON(merged),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Decision:  decisionJSON(j.decision),
		PlanHit:   j.planHit,
	}, nil
}

// runStreaming writes the NDJSON stream: a plan header, one line per
// batch, and a final done line with the merged histogram.
func (s *Server) runStreaming(w http.ResponseWriter, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(line *batchLine) error {
		if err := enc.Encode(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	_ = emit(&batchLine{
		Type:      "plan",
		Batches:   j.numBatches(),
		Structure: j.planFor(0).plan.Structure(),
		Backend:   j.decision.Backend,
		Decision:  decisionJSON(j.decision),
	})
	resp, herr := s.runJob(j, func(i int, res *tqsim.TreeResult, seed uint64) error {
		return emit(&batchLine{
			Type:   "batch",
			Batch:  i,
			Shots:  res.Outcomes,
			Seed:   seed,
			Counts: countsJSON(res.Counts),
		})
	})
	if herr != nil {
		s.stats[statFailed].Add(1)
		_ = emit(&batchLine{Type: "error", Error: herr.msg})
		return
	}
	s.stats[statCompleted].Add(1)
	_ = emit(&batchLine{
		Type:      "done",
		Batches:   resp.Batches,
		Outcomes:  resp.Outcomes,
		Counts:    resp.Counts,
		ElapsedMS: resp.ElapsedMS,
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, herr := s.prepare(&req)
	if herr != nil {
		writeError(w, herr.status, herr.msg)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"circuit":   j.circuit.Name,
		"width":     j.circuit.NumQubits,
		"structure": j.planFor(0).plan.Structure(),
		"batches":   j.numBatches(),
		"decision":  decisionJSON(j.decision),
		"explain":   j.decision.String(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleBackends(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"backends": append([]string{tqsim.AutoBackend}, tqsim.Backends()...),
	})
}

// Snapshot returns the current counters (also served at /v1/stats).
func (s *Server) Snapshot() Stats {
	s.memMu.Lock()
	inUse := s.memInUse
	s.memMu.Unlock()
	return Stats{
		JobsCompleted:     s.stats[statCompleted].Load(),
		JobsFailed:        s.stats[statFailed].Load(),
		RejectedQueueFull: s.stats[statQueueFull].Load(),
		RejectedMemory:    s.stats[statMemory].Load(),
		BatchesRun:        s.stats[statBatches].Load(),
		PlanCacheHits:     s.stats[statPlanHits].Load(),
		PlanCacheMisses:   s.stats[statPlanMisses].Load(),
		MemoryInUseBytes:  inUse,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// countsJSON renders a histogram with decimal string keys. Response bytes
// are deterministic because encoding/json serializes map keys in sorted
// (lexicographic) order itself.
func countsJSON(counts map[uint64]int) map[string]int {
	out := make(map[string]int, len(counts))
	for k, v := range counts {
		out[strconv.FormatUint(k, 10)] = v
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
