// Package serve implements the tqsimd HTTP/JSON service: a long-running
// entry point that accepts OpenQASM (or benchmark-suite) simulation jobs,
// admission-controls them with the planner's cost/memory estimates, batches
// shots through a bounded scheduler, caches simulation plans keyed by
// (circuit hash, noise, options) in a bounded LRU, and streams per-batch
// histograms as NDJSON. POST /v1/sweeps serves whole parameter/noise grids
// through the internal/sweep engine (plan and ideal-prefix reuse across
// points), streaming one NDJSON line per point. cmd/tqsimd is a thin main
// around New.
//
// With Config.StoreEntries or Config.StoreDir set, finished jobs and sweeps
// are recorded in a content-addressed result store (internal/resultstore)
// and repeated requests replay byte-identically without simulating; with
// Config.SnapshotCacheBytes set, ideal prefix snapshots are shared across
// jobs and sweeps whose circuits share gate prefixes (core.SnapshotCache).
//
// The same Server type implements both distributed roles (see protocol.go
// for the wire contract): a worker (Config.WorkerMode) additionally serves
// POST /v1/shard leases, and a coordinator (Config.Workers) shards
// multi-batch jobs — and multi-point sweeps — across its worker pool,
// health-checks the workers, bounds every lease round trip by
// Config.LeaseTimeout, and re-dispatches a failed or hung worker's unacked
// leases — falling back to local execution when no worker can take the
// work.
//
// Determinism contract: a job that fits in one batch returns a histogram
// byte-identical to tqsim.RunTQSim (mode "tqsim") or tqsim.RunBackend
// (mode "baseline") at the same seed and options. A job split into B
// batches runs batch i at the derived seed BatchSeed(seed, i) (batch 0
// keeps the job seed) and returns the merged histogram — equal to merging
// B single-process runs at those seeds, regardless of how many jobs the
// server is executing concurrently, and — because batch i's histogram is a
// pure function of the job request and i — regardless of how many workers
// the batches were sharded over or how failed leases were re-dispatched.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tqsim"
	"tqsim/internal/hpcmodel"
	"tqsim/internal/metrics"
	"tqsim/internal/planner"
	"tqsim/internal/resultstore"
	"tqsim/internal/rng"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent bounds jobs executing simultaneously
	// (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds jobs waiting for an execution slot; beyond it the
	// server answers 429 instead of queueing unboundedly (default 16).
	QueueDepth int
	// MemoryBudgetBytes caps the planner-estimated peak state memory of
	// all running jobs combined. A job whose estimate alone exceeds the
	// budget is rejected 413; one that merely doesn't fit *now* is
	// rejected 503 for the client to retry (0 = unlimited).
	MemoryBudgetBytes int64
	// MaxShots rejects absurd jobs up front (default 1<<22).
	MaxShots int
	// DefaultBatchShots splits jobs into batches of this many shots when
	// the request doesn't choose (0 = one batch per job).
	DefaultBatchShots int
	// PlanCacheEntries caps the plan cache (default 256). The cache is LRU:
	// under sustained traffic from many distinct circuits old plans are
	// evicted instead of growing without bound.
	PlanCacheEntries int
	// MaxSweepPoints caps a sweep's expanded grid size (default 4096);
	// larger sweeps are rejected 413 before any planning work.
	MaxSweepPoints int
	// WorkerMode enables the shard-lease endpoints (POST /v1/shard,
	// honored GET /v1/worker): the tqsimd -worker role.
	WorkerMode bool
	// Workers lists worker base URLs (e.g. "http://10.0.0.2:8651"); when
	// non-empty the server acts as a coordinator and shards multi-batch
	// jobs across them.
	Workers []string
	// LeaseTimeout bounds one shard lease's round trip, including its retry
	// attempts (default 10m, negative = unlimited). A worker that accepts a
	// lease and then hangs — alive TCP, no response — used to stall the
	// whole job forever; on timeout the worker is marked dead and the lease
	// requeues to the rest of the pool. Size it above the longest
	// legitimate lease (a lease is a handful of batches), not above zero.
	LeaseTimeout time.Duration
	// AcceptWorkers enables elastic membership on a coordinator with no
	// static worker list: workers self-register via POST /v1/workers
	// (tqsimd -worker -join). A server with Config.Workers accepts
	// registrations regardless.
	AcceptWorkers bool
	// SuspectAfter and DeadAfter drive the liveness state machine for
	// workers that heartbeat: a worker whose last heartbeat (or probe, or
	// completed lease) is older than SuspectAfter gets no new leases; older
	// than DeadAfter it is declared dead until it announces or answers a
	// probe again (defaults 5s / 15s). Static -workers entries that never
	// heartbeat are exempt — they keep probe-based liveness.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// LeaseRetries bounds per-worker retry attempts after a failed lease or
	// probe call, with exponential backoff and jitter between attempts
	// (default 2, negative = no retries).
	LeaseRetries int
	// RetryBackoff is the base backoff before the first retry; attempt k
	// waits a jittered RetryBackoff<<k (default 25ms).
	RetryBackoff time.Duration
	// RetryAfterCap caps how long the coordinator honors a worker's
	// Retry-After hint on 503 before retrying (default 2s). Exhausted
	// retries exclude the worker from the job, as before.
	RetryAfterCap time.Duration
	// BreakerThreshold opens a worker's circuit breaker after this many
	// consecutive failed lease attempts; after BreakerCooldown the breaker
	// half-opens and admits one trial lease (defaults 5 / 5s; threshold
	// negative = breaker disabled).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeBackoff spaces health probes of a non-alive worker (default 5s):
	// probing runs on the job submission path and after mid-job failures,
	// and a blackholed worker must not add probe latency to every job.
	ProbeBackoff time.Duration
	// Transport overrides the HTTP transport for coordinator→worker calls
	// (nil = http.DefaultTransport). The fault-injection hook:
	// internal/faultinject wraps it to inject delays, drops and corruption
	// deterministically.
	Transport http.RoundTripper
	// JitterSeed seeds the backoff-jitter stream (default 1) so retry
	// schedules replay deterministically under a fixed fault plan.
	JitterSeed uint64
	// StoreEntries enables the content-addressed result store and caps its
	// in-memory LRU front. A stored job or sweep is replayed byte-identical
	// from the store — the simulator's determinism contract makes the
	// stored bytes exactly what a fresh run would produce — without
	// consuming an execution slot. 0 disables the store unless StoreDir is
	// set (the library default; tqsimd enables it).
	StoreEntries int
	// StoreDir persists stored results to this directory (atomic
	// write-then-rename), so replays survive daemon restarts. Empty keeps
	// the store memory-only.
	StoreDir string
	// StoreMaxBytes caps StoreDir's total size (default 1 GiB).
	StoreMaxBytes int64
	// SnapshotCacheBytes enables the cross-job ideal-prefix snapshot cache
	// and caps its resident state bytes. Boundary states are keyed by the
	// structural digest of the gate prefix before them, so any two jobs —
	// or sweep points — whose circuits share a gate prefix share the cached
	// ideal states at common plan boundaries. 0 disables the cache (the
	// library default; tqsimd enables it); negative selects no byte cap.
	SnapshotCacheBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxShots <= 0 {
		c.MaxShots = 1 << 22
	}
	if c.PlanCacheEntries <= 0 {
		c.PlanCacheEntries = 256
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	if c.LeaseTimeout == 0 {
		c.LeaseTimeout = 10 * time.Minute
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 5 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 15 * time.Second
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter
	}
	if c.LeaseRetries == 0 {
		c.LeaseRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ProbeBackoff <= 0 {
		c.ProbeBackoff = 5 * time.Second
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	return c
}

// Stats is the /v1/stats payload.
type Stats struct {
	JobsCompleted     uint64 `json:"jobs_completed"`
	JobsFailed        uint64 `json:"jobs_failed"`
	JobsCanceled      uint64 `json:"jobs_canceled"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	RejectedMemory    uint64 `json:"rejected_memory"`
	RejectedDraining  uint64 `json:"rejected_draining"`
	BatchesRun        uint64 `json:"batches_run"`
	SweepsCompleted   uint64 `json:"sweeps_completed"`
	SweepPointsRun    uint64 `json:"sweep_points_run"`
	PlanCacheHits     uint64 `json:"plan_cache_hits"`
	PlanCacheMisses   uint64 `json:"plan_cache_misses"`
	PlanCacheEvicted  uint64 `json:"plan_cache_evicted"`
	PlanCacheEntries  int    `json:"plan_cache_entries"`
	MemoryInUseBytes  int64  `json:"memory_in_use_bytes"`
	Draining          bool   `json:"draining"`
	// Coordinator-only counters: shard leases handed to workers, leases
	// re-dispatched after a failure, and workers declared dead.
	ShardsDispatched uint64 `json:"shards_dispatched,omitempty"`
	ShardsRequeued   uint64 `json:"shards_requeued,omitempty"`
	WorkerFailures   uint64 `json:"worker_failures,omitempty"`
	WorkersAlive     int    `json:"workers_alive,omitempty"`
	WorkersTotal     int    `json:"workers_total,omitempty"`
	// Resilient-dispatch counters: lease retry attempts, shard responses
	// rejected by checksum, Retry-After waits honored, and elastic
	// membership churn (self-registrations and dead→alive revivals).
	LeaseRetries     uint64 `json:"lease_retries,omitempty"`
	ChecksumFailures uint64 `json:"checksum_failures,omitempty"`
	RetryAfterWaits  uint64 `json:"retry_after_waits,omitempty"`
	WorkersJoined    uint64 `json:"workers_joined,omitempty"`
	WorkersRevived   uint64 `json:"workers_revived,omitempty"`
	// Workers is the per-worker registry view: liveness state, breaker
	// state, heartbeat age, lease/retry/requeue counts and utilization.
	Workers []WorkerStat `json:"workers,omitempty"`
	// Result-store counters: jobs and sweeps answered as stored replays vs
	// looked up and missed, and the store's entry count and resident bytes
	// (disk bytes when a backing directory is configured).
	ResultsHits    uint64 `json:"results_hits"`
	ResultsMisses  uint64 `json:"results_misses"`
	ResultsEntries int    `json:"results_entries"`
	ResultsBytes   int64  `json:"results_bytes"`
	// Snapshot-cache counters: ideal boundary states served from the
	// cross-job cache vs computed (counted per boundary, not per plan), and
	// the cache's resident state bytes.
	SnapshotHits   uint64 `json:"snapshot_hits"`
	SnapshotMisses uint64 `json:"snapshot_misses"`
	SnapshotBytes  int64  `json:"snapshot_bytes"`
	// Per-request latency accounting over completed jobs and sweeps
	// (replays included; rejections and failures excluded), measured from
	// request receipt to response completion on a log-bucketed histogram
	// (internal/metrics.LatencyHist). This is the server-side view the
	// tqsimgen load harness cross-checks its client-side measurements
	// against: client p99 ≥ server p99, with the gap being network and
	// client-side queueing.
	LatencyCount  uint64  `json:"latency_count"`
	LatencyMeanMS float64 `json:"latency_mean_ms"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP95MS  float64 `json:"latency_p95_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
}

// Server is the tqsimd HTTP handler. Construct with New.
type Server struct {
	cfg Config
	mux *http.ServeMux

	slots    chan struct{} // execution permits (MaxConcurrent)
	draining atomic.Bool

	// pendMu guards the pending-job count and the idle signal. DrainWait
	// blocks on idleCh (closed by release when the count reaches zero)
	// instead of polling — drain completes the instant the last job does.
	pendMu  sync.Mutex
	pending int
	idleCh  chan struct{}

	memMu     sync.Mutex
	memInUse  int64
	planMu    sync.Mutex
	planCache *lruCache[*cachedPlan]
	// sweepMu guards sweepPreps, the worker's cache of prepared sweeps:
	// a coordinator cuts one sweep into several leases per worker, and
	// re-preparing per lease would rebuild the grid's plans and ideal
	// prefix snapshots the previous lease already paid for.
	sweepMu    sync.Mutex
	sweepPreps *lruCache[*sweepJob]
	pool       *registry // non-nil when coordinating a worker fleet
	stats      [statCount]atomic.Uint64

	// results replays finished jobs and sweeps byte-identically without
	// simulating; snapCache shares ideal boundary states across jobs. Both
	// nil when disabled by config. storeErr records a failed store open
	// (e.g. an unwritable StoreDir): New still returns a working server so
	// the signature stays error-free, and cmd/tqsimd checks StoreError.
	results   *resultstore.Store
	snapCache *tqsim.SnapshotCache
	storeErr  error

	// reqLat is the per-request latency histogram behind the /v1/stats
	// latency_* fields: every completed job and sweep (stored replays
	// included) records its receipt-to-completion wall time. Atomic
	// buckets, so recording never contends with a concurrent stats read.
	reqLat metrics.LatencyHist
}

// recordLatency books one completed request into the latency histogram.
func (s *Server) recordLatency(start time.Time) { s.reqLat.Record(time.Since(start)) }

type cachedPlan struct {
	plan     *tqsim.Plan
	decision *tqsim.Decision
}

const (
	statCompleted = iota
	statFailed
	statCanceled
	statQueueFull
	statMemory
	statDraining
	statBatches
	statPlanHits
	statPlanMisses
	statPlanEvicted
	statShardsDispatched
	statShardsRequeued
	statWorkerFailures
	statSweepsCompleted
	statSweepPoints
	statLeaseRetries
	statChecksumFails
	statRetryAfterWaits
	statWorkersJoined
	statWorkersRevived
	statResultsHits
	statResultsMisses
	statCount
)

// statusClientClosedRequest classifies a job stopped because the client
// went away (nginx's 499 convention). It is never written to a live
// client — the connection is already gone — but it routes the bookkeeping:
// cancelled jobs count as canceled, not failed.
const statusClientClosedRequest = 499

// New returns a ready-to-serve handler.
func New(cfg Config) *Server {
	s := &Server{
		cfg: cfg.withDefaults(),
		mux: http.NewServeMux(),
	}
	s.planCache = newLRU[*cachedPlan](s.cfg.PlanCacheEntries)
	// A handful of entries suffices: the cache exists so the several
	// leases of one in-flight sweep share one Prepared (and its lazily
	// built snapshots), not to retain history. Snapshots pinned by idle
	// entries are bounded by this cap times the per-sweep snapshot set.
	s.sweepPreps = newLRU[*sweepJob](4)
	s.slots = make(chan struct{}, s.cfg.MaxConcurrent)
	if len(s.cfg.Workers) > 0 || s.cfg.AcceptWorkers {
		s.pool = newRegistry(s.cfg)
	}
	if s.cfg.StoreEntries > 0 || s.cfg.StoreDir != "" {
		st, err := resultstore.Open(resultstore.Config{
			MaxEntries:   s.cfg.StoreEntries,
			Dir:          s.cfg.StoreDir,
			MaxDiskBytes: s.cfg.StoreMaxBytes,
		})
		if err != nil {
			s.storeErr = err
		} else {
			s.results = st
		}
	}
	if s.cfg.SnapshotCacheBytes != 0 {
		s.snapCache = tqsim.NewSnapshotCache(s.cfg.SnapshotCacheBytes)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/backends", s.handleBackends)
	s.mux.HandleFunc("GET /v1/worker", s.handleWorkerInfo)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweeps)
	s.mux.HandleFunc("POST /v1/shard", s.handleShard)
	s.mux.HandleFunc("POST /v1/workers", s.handleWorkerJoin)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StoreError reports why the result store failed to open (nil when the
// store is disabled or healthy). New never fails: a server with a broken
// store still simulates correctly, it just cannot replay — callers that
// consider persistence mandatory (cmd/tqsimd with -store-dir) check here.
func (s *Server) StoreError() error { return s.storeErr }

// BeginDrain moves the server into draining mode: new submissions (jobs and
// shard leases) are rejected 503 with a Retry-After header while in-flight
// work runs to completion. cmd/tqsimd calls it on SIGTERM immediately
// before http.Server.Shutdown, which waits for the in-flight handlers.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainWait blocks until no jobs are running or queued, or ctx expires.
// cmd/tqsimd calls it between BeginDrain and http.Server.Shutdown: while
// it waits the listener stays open, so late submissions receive the
// documented 503 + Retry-After instead of a connection refusal — the
// difference between a load balancer retrying elsewhere and surfacing an
// error to the client.
//
// The wait is a completion signal, not a poll: release closes the idle
// channel when the pending count reaches zero, so drain returns the moment
// the last job finishes and burns no timer churn while waiting. The ctx
// cancel path is unchanged.
func (s *Server) DrainWait(ctx context.Context) error {
	for {
		s.pendMu.Lock()
		if s.pending == 0 {
			s.pendMu.Unlock()
			return nil
		}
		if s.idleCh == nil {
			s.idleCh = make(chan struct{})
		}
		idle := s.idleCh
		s.pendMu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-idle:
			// Re-check: a submission may have slipped in between the close
			// and this wakeup (possible when DrainWait is used without
			// BeginDrain, e.g. in tests).
		}
	}
}

// rejectDraining answers a submission arriving during drain.
func (s *Server) rejectDraining(w http.ResponseWriter) {
	s.stats[statDraining].Add(1)
	writeError(w, http.StatusServiceUnavailable, "server is draining; retry")
}

// JobRequest is the POST /v1/jobs (and /v1/plan) body. Exactly one of QASM
// or Circuit selects the program.
type JobRequest struct {
	// QASM is an OpenQASM 2.0 program.
	QASM string `json:"qasm,omitempty"`
	// Circuit names a benchmark-suite circuit (e.g. "qft_n12") instead.
	Circuit string `json:"circuit,omitempty"`
	// Noise names the model: DC (default), DCR, TR, TRR, AD, ADR, PD, PDR,
	// ALL, or "ideal".
	Noise string `json:"noise,omitempty"`
	// Shots is the requested sample count (required, positive).
	Shots int `json:"shots"`
	// Seed selects the reproducible trajectory stream.
	Seed uint64 `json:"seed"`
	// Mode is "tqsim" (tree reuse, default) or "baseline" (flat plan).
	Mode string `json:"mode,omitempty"`
	// Backend picks the engine by registry name or "auto" (default).
	Backend string `json:"backend,omitempty"`
	// BatchShots splits the job into batches of this many shots
	// (0 = the server's DefaultBatchShots; negative = force one batch).
	BatchShots int `json:"batch_shots,omitempty"`
	// Stream requests an NDJSON per-batch stream instead of one JSON body.
	Stream bool `json:"stream,omitempty"`
	// CopyCost, MaxLevels, MemoryBudgetBytes, Parallelism, Epsilon and
	// ClusterNodes forward to tqsim.Options (zero = defaults). CopyCost is
	// never host-profiled in the daemon: plans must be deterministic so the
	// plan cache and cross-host replay agree.
	CopyCost          float64 `json:"copy_cost,omitempty"`
	MaxLevels         int     `json:"max_levels,omitempty"`
	MemoryBudgetBytes int64   `json:"memory_budget_bytes,omitempty"`
	Parallelism       int     `json:"parallelism,omitempty"`
	Epsilon           float64 `json:"epsilon,omitempty"`
	ClusterNodes      int     `json:"cluster_nodes,omitempty"`
}

// DecisionJSON is the wire form of a planner Decision.
type DecisionJSON struct {
	Backend      string          `json:"backend"`
	Mode         string          `json:"mode,omitempty"`
	Parallelism  int             `json:"parallelism"`
	ClusterNodes int             `json:"cluster_nodes,omitempty"`
	EstPeakBytes int64           `json:"est_peak_bytes"`
	EstPeak      string          `json:"est_peak"`
	Why          string          `json:"why"`
	Rejected     []CandidateJSON `json:"rejected,omitempty"`
}

// CandidateJSON is one rejected engine in a DecisionJSON.
type CandidateJSON struct {
	Backend string `json:"backend"`
	Mode    string `json:"mode,omitempty"`
	Reason  string `json:"reason"`
}

func decisionJSON(d *tqsim.Decision) *DecisionJSON {
	if d == nil {
		return nil
	}
	out := &DecisionJSON{
		Backend:      d.Backend,
		Mode:         d.Mode,
		Parallelism:  d.Parallelism,
		ClusterNodes: d.ClusterNodes,
		EstPeakBytes: d.EstPeakBytes,
		EstPeak:      hpcmodel.FormatBytes(float64(d.EstPeakBytes)),
		Why:          d.Why,
	}
	for _, c := range d.Rejected() {
		out.Rejected = append(out.Rejected, CandidateJSON{Backend: c.Backend, Mode: c.Mode, Reason: c.Reason})
	}
	return out
}

// JobResponse is the non-streaming POST /v1/jobs body. Counts keys are the
// decimal basis indices, values the shot counts.
type JobResponse struct {
	Circuit   string         `json:"circuit"`
	Width     int            `json:"width"`
	Backend   string         `json:"backend"`
	Structure string         `json:"structure"`
	Outcomes  int            `json:"outcomes"`
	Batches   int            `json:"batches"`
	Counts    map[string]int `json:"counts"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Decision  *DecisionJSON  `json:"decision,omitempty"`
	PlanHit   bool           `json:"plan_cache_hit"`
	// Distributed reports whether batches were sharded across the worker
	// pool (the histogram is byte-identical either way).
	Distributed bool `json:"distributed,omitempty"`
}

// batchLine is one NDJSON record of a streaming response. In distributed
// mode batch lines arrive in shard-completion order, which is not
// deterministic — each line's content and the final merged histogram are.
type batchLine struct {
	Type      string         `json:"type"` // "plan" | "batch" | "done" | "error"
	Batch     int            `json:"batch,omitempty"`
	Batches   int            `json:"batches,omitempty"`
	Shots     int            `json:"shots,omitempty"`
	Seed      uint64         `json:"seed,omitempty"`
	Structure string         `json:"structure,omitempty"`
	Backend   string         `json:"backend,omitempty"`
	Counts    map[string]int `json:"counts,omitempty"`
	Outcomes  int            `json:"outcomes,omitempty"`
	ElapsedMS float64        `json:"elapsed_ms,omitempty"`
	Decision  *DecisionJSON  `json:"decision,omitempty"`
	Error     string         `json:"error,omitempty"`
}

var knownNoise = map[string]bool{
	"": true, "ideal": true, "DC": true, "DCR": true, "TR": true, "TRR": true,
	"AD": true, "ADR": true, "PD": true, "PDR": true, "ALL": true,
}

// job is a validated, planned request ready to execute.
type job struct {
	circuit *tqsim.Circuit
	noise   *tqsim.NoiseModel
	opt     tqsim.Options
	shots   int
	mode    string
	// batchSize is the per-batch shot count; 0 runs one batch. Batches are
	// never materialized as a slice: a max-shots job at batch size 1 is
	// millions of batches but only two distinct sizes, so plans are held
	// per size and batch i's size is computed on demand.
	batchSize  int
	planBySize map[int]*cachedPlan
	decision   *tqsim.Decision
	// estPeak is the admission-control estimate: the chosen candidate's
	// peak for auto jobs, the named engine's for explicit ones.
	estPeak int64
	planHit bool
	stream  bool
	// wire is the request to forward in shard leases, with every value that
	// shapes batch arithmetic pinned to the coordinator's resolution (the
	// worker must never re-apply its own defaults and diverge).
	wire *JobRequest
}

// numBatches returns how many batches the job runs.
func (j *job) numBatches() int {
	if j.batchSize <= 0 || j.batchSize >= j.shots {
		return 1
	}
	return (j.shots + j.batchSize - 1) / j.batchSize
}

// batchShots returns batch i's shot count (the last batch is ragged).
func (j *job) batchShots(i int) int {
	n := j.numBatches()
	if n == 1 {
		return j.shots
	}
	if i == n-1 {
		return j.shots - (n-1)*j.batchSize
	}
	return j.batchSize
}

// planFor returns the cached plan for batch i.
func (j *job) planFor(i int) *cachedPlan { return j.planBySize[j.batchShots(i)] }

// httpError carries a status code with the message.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// prepare validates the request, resolves the circuit and noise model,
// plans every batch (through the cache) and records the planner decision.
func (s *Server) prepare(req *JobRequest) (*job, *httpError) {
	if (req.QASM == "") == (req.Circuit == "") {
		return nil, errf(http.StatusBadRequest, "provide exactly one of qasm or circuit")
	}
	if req.Shots <= 0 {
		return nil, errf(http.StatusBadRequest, "shots must be positive")
	}
	if req.Shots > s.cfg.MaxShots {
		return nil, errf(http.StatusRequestEntityTooLarge,
			"shots %d exceeds the server limit %d", req.Shots, s.cfg.MaxShots)
	}
	if !knownNoise[req.Noise] {
		return nil, errf(http.StatusBadRequest, "unknown noise model %q", req.Noise)
	}
	mode := req.Mode
	if mode == "" {
		mode = "tqsim"
	}
	if mode != "tqsim" && mode != "baseline" {
		return nil, errf(http.StatusBadRequest, "mode must be tqsim or baseline, not %q", req.Mode)
	}
	backend := req.Backend
	if backend == "" {
		backend = tqsim.AutoBackend
	}
	if backend != tqsim.AutoBackend && !slices.Contains(tqsim.Backends(), backend) {
		return nil, errf(http.StatusBadRequest, "unknown backend %q (have auto, %v)",
			req.Backend, tqsim.Backends())
	}

	var c *tqsim.Circuit
	var err error
	if req.QASM != "" {
		c, err = tqsim.ParseQASM("job", req.QASM)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "qasm: %v", err)
		}
	} else if c = tqsim.BenchmarkByName(req.Circuit); c == nil {
		return nil, errf(http.StatusBadRequest, "unknown suite circuit %q", req.Circuit)
	}

	noiseName := req.Noise
	if noiseName == "" {
		noiseName = "DC"
	}
	m := tqsim.NoiseByName(noiseName) // nil for "ideal"

	j := &job{
		circuit:    c,
		noise:      m,
		shots:      req.Shots,
		mode:       mode,
		stream:     req.Stream,
		planBySize: make(map[int]*cachedPlan, 2),
		opt: tqsim.Options{
			Seed:              req.Seed,
			CopyCost:          req.CopyCost,
			MaxLevels:         req.MaxLevels,
			MemoryBudgetBytes: req.MemoryBudgetBytes,
			Backend:           backend,
			ClusterNodes:      req.ClusterNodes,
			Parallelism:       req.Parallelism,
		},
	}
	j.opt.Epsilon = req.Epsilon
	j.batchSize = req.BatchShots
	if j.batchSize == 0 {
		j.batchSize = s.cfg.DefaultBatchShots
	}
	wire := *req
	wire.Stream = false
	wire.Noise = noiseName
	wire.Mode = mode
	wire.Backend = backend
	wire.BatchShots = j.batchSize
	if wire.BatchShots == 0 {
		wire.BatchShots = -1 // pin "one batch" against remote defaults
	}
	j.wire = &wire

	// Plan the (at most two) distinct batch sizes: the full batch and the
	// ragged last one.
	hash := circuitHash(c, noiseName, mode, &j.opt)
	n := j.numBatches()
	for _, i := range []int{0, n - 1} {
		size := j.batchShots(i)
		if _, done := j.planBySize[size]; done {
			continue
		}
		cp, hit, herr := s.planBatch(hash, c, m, size, mode, j.opt)
		if herr != nil {
			return nil, herr
		}
		j.planBySize[size] = cp
		if j.decision == nil {
			j.decision = cp.decision
			j.planHit = hit
		}
	}

	// Admission estimate: auto jobs run the decided candidate; explicit
	// jobs run the named engine, so estimate that engine's peak directly.
	if backend == tqsim.AutoBackend {
		j.estPeak = j.decision.EstPeakBytes
	} else {
		budget := j.opt.MemoryBudgetBytes
		if budget == 0 {
			budget = s.cfg.MemoryBudgetBytes
		}
		j.estPeak = planner.PeakBytes(j.planFor(0).plan, m, backend, planner.Budget{
			MemoryBytes:  budget,
			Parallelism:  req.Parallelism,
			ClusterNodes: req.ClusterNodes,
		})
	}

	// Pin the two planner inputs that default from host/server state —
	// worker count (GOMAXPROCS) and memory budget (server config) — into
	// the shard-lease request. Planner decisions are deterministic in
	// (plan, noise, budget, worker count), so with these pinned a worker
	// re-planning the wire request resolves "auto" to the same engine the
	// coordinator did; left unpinned, a heterogeneous worker could pick a
	// different engine (e.g. tableau vs dense, whose per-seed sampling
	// differs) and break the byte-identical-merge guarantee.
	if wire.Parallelism == 0 {
		wire.Parallelism = j.decision.Parallelism
	}
	if wire.MemoryBudgetBytes == 0 {
		wire.MemoryBudgetBytes = s.cfg.MemoryBudgetBytes
	}
	return j, nil
}

// planBatch returns the cached plan+decision for one batch size, computing
// and caching it on miss.
func (s *Server) planBatch(hash string, c *tqsim.Circuit, m *tqsim.NoiseModel, shots int, mode string, opt tqsim.Options) (*cachedPlan, bool, *httpError) {
	key := fmt.Sprintf("%s|%d", hash, shots)
	s.planMu.Lock()
	cp, ok := s.planCache.get(key)
	s.planMu.Unlock()
	if ok {
		s.stats[statPlanHits].Add(1)
		return cp, true, nil
	}
	s.stats[statPlanMisses].Add(1)

	var plan *tqsim.Plan
	if mode == "baseline" {
		plan = tqsim.PlanBaseline(c, shots)
	} else {
		plan = tqsim.PlanDCP(c, m, shots, opt)
	}
	// The planner admission-checks against the server budget even for
	// explicit backends: its fitDense arithmetic is the single source of
	// peak-memory truth.
	budgetOpt := opt
	if budgetOpt.MemoryBudgetBytes == 0 {
		budgetOpt.MemoryBudgetBytes = s.cfg.MemoryBudgetBytes
	}
	decision, err := tqsim.DecidePlan(plan, m, budgetOpt)
	if err != nil {
		s.stats[statMemory].Add(1)
		return nil, false, errf(http.StatusRequestEntityTooLarge, "planner: %v", err)
	}
	cp = &cachedPlan{plan: plan, decision: decision}
	s.planMu.Lock()
	evicted := s.planCache.add(key, cp)
	s.planMu.Unlock()
	if evicted > 0 {
		s.stats[statPlanEvicted].Add(uint64(evicted))
	}
	return cp, false, nil
}

// circuitHash keys the plan cache: the circuit's structural digest plus
// every option that shapes the plan or the decision. The digest covers the
// full gate content — including raw-unitary matrices with no QASM 2.0
// form. The previous key hashed a canonical QASM rendering and fell back
// to name/width/length when serialization failed, so two same-shape
// circuits differing only in an explicit unitary collided and the second
// silently executed the first one's cached plan (and its gate list).
func circuitHash(c *tqsim.Circuit, noiseName, mode string, opt *tqsim.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%g\x00%d\x00%d\x00%s\x00%d\x00%d\x00%g",
		tqsim.CircuitDigest(c), noiseName, mode, opt.CopyCost, opt.MaxLevels, opt.MemoryBudgetBytes,
		opt.Backend, opt.ClusterNodes, opt.Parallelism, opt.Epsilon)
	return hex.EncodeToString(h.Sum(nil))
}

// BatchSeed derives batch i's trajectory seed from the job seed. Batch 0
// keeps the job seed, so single-batch jobs are byte-identical to
// tqsim.RunTQSim at the same seed; later batches use statistically
// independent split streams, deterministically.
func BatchSeed(seed uint64, i int) uint64 {
	return rng.SeedAt(seed, uint64(i))
}

// errQueueFull reports acquire rejected a submission because MaxConcurrent
// running plus QueueDepth queued requests are already admitted.
var errQueueFull = errors.New("queue full")

// acquire takes an execution slot, bounded by MaxConcurrent running plus
// QueueDepth waiting. Returns errQueueFull when the queue is full, and the
// context's error when the caller goes away while queued. The slot wait
// used to ignore the context entirely: a client that disconnected while
// queued at capacity still took a slot when one freed, ran every batch
// into the dead connection, and booked as failed — the cancellation that
// per-batch ctx checks catch mid-run was invisible before the run started.
func (s *Server) acquire(ctx context.Context) error {
	s.pendMu.Lock()
	if s.pending >= s.cfg.MaxConcurrent+s.cfg.QueueDepth {
		s.pendMu.Unlock()
		return errQueueFull
	}
	s.pending++
	s.pendMu.Unlock()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		// Undo the pending claim exactly the way release would, minus the
		// slot this request never got — including the idle signal DrainWait
		// blocks on, so a drain doesn't hang on a request that left the
		// queue sideways.
		s.pendMu.Lock()
		s.pending--
		if s.pending == 0 && s.idleCh != nil {
			close(s.idleCh)
			s.idleCh = nil
		}
		s.pendMu.Unlock()
		return ctx.Err()
	}
}

func (s *Server) release() {
	<-s.slots
	s.pendMu.Lock()
	s.pending--
	if s.pending == 0 && s.idleCh != nil {
		close(s.idleCh)
		s.idleCh = nil
	}
	s.pendMu.Unlock()
}

// reserveMemory admits a job against the shared budget using the planner's
// peak estimate. 413 when the job can never fit, 503 when it doesn't fit
// right now.
func (s *Server) reserveMemory(est int64) *httpError {
	if s.cfg.MemoryBudgetBytes <= 0 {
		return nil
	}
	if est > s.cfg.MemoryBudgetBytes {
		s.stats[statMemory].Add(1)
		return errf(http.StatusRequestEntityTooLarge,
			"estimated peak %s exceeds the server budget %s",
			hpcmodel.FormatBytes(float64(est)), hpcmodel.FormatBytes(float64(s.cfg.MemoryBudgetBytes)))
	}
	s.memMu.Lock()
	defer s.memMu.Unlock()
	if s.memInUse+est > s.cfg.MemoryBudgetBytes {
		s.stats[statMemory].Add(1)
		return errf(http.StatusServiceUnavailable,
			"estimated peak %s does not fit the budget right now (%s of %s in use); retry",
			hpcmodel.FormatBytes(float64(est)), hpcmodel.FormatBytes(float64(s.memInUse)),
			hpcmodel.FormatBytes(float64(s.cfg.MemoryBudgetBytes)))
	}
	s.memInUse += est
	return nil
}

func (s *Server) releaseMemory(est int64) {
	if s.cfg.MemoryBudgetBytes <= 0 {
		return
	}
	s.memMu.Lock()
	s.memInUse -= est
	s.memMu.Unlock()
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.Draining() {
		s.rejectDraining(w)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, herr := s.prepare(&req)
	if herr != nil {
		s.stats[statFailed].Add(1)
		writeError(w, herr.status, herr.msg)
		return
	}
	// The result-store lookup runs before the queue: a replay writes
	// already-merged bytes and must not wait behind — or consume — an
	// execution slot or any memory budget.
	key := ""
	if s.results != nil {
		key = jobResultKey(j)
		if blob, ok := s.results.Get(key); ok && s.replayJob(w, j, blob) {
			s.stats[statResultsHits].Add(1)
			s.stats[statCompleted].Add(1)
			s.recordLatency(start)
			return
		}
		s.stats[statResultsMisses].Add(1)
	}
	ctx := r.Context()
	if err := s.acquire(ctx); err != nil {
		if errors.Is(err, errQueueFull) {
			s.stats[statQueueFull].Add(1)
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("queue full (%d running + %d queued)", s.cfg.MaxConcurrent, s.cfg.QueueDepth))
			return
		}
		// The client disconnected while queued: the connection is gone, so
		// there is nothing to write — book the job canceled, not failed.
		s.stats[statCanceled].Add(1)
		return
	}
	defer s.release()

	// Multi-batch jobs shard across the worker pool when one is configured;
	// single-batch jobs always run locally (there is nothing to shard).
	distributed := s.pool != nil && j.numBatches() > 1
	if !distributed {
		// Memory is reserved only once the job holds an execution slot:
		// queued jobs consume no state memory, so they must not pin the
		// budget against the jobs actually running. Distributed jobs
		// reserve on the workers that execute their shards (and locally
		// only for a local fallback).
		if herr := s.reserveMemory(j.estPeak); herr != nil {
			writeError(w, herr.status, herr.msg)
			return
		}
		defer s.releaseMemory(j.estPeak)
	}

	if j.stream {
		s.runStreaming(ctx, w, j, distributed, key, start)
		return
	}
	var rec *jobRecorder
	var onBatch func(*batchResult) error
	if key != "" {
		rec = &jobRecorder{}
		onBatch = func(br *batchResult) error { rec.observe(br); return nil }
	}
	resp, herr := s.runJob(ctx, j, distributed, onBatch)
	if herr != nil {
		s.countJobError(ctx, herr)
		writeError(w, herr.status, herr.msg)
		return
	}
	s.stats[statCompleted].Add(1)
	s.recordLatency(start)
	if key != "" {
		s.storeJob(key, resp, rec)
	}
	writeJSON(w, http.StatusOK, resp)
}

// countJobError books a finished-unsuccessfully job under the right
// counter: client-cancelled jobs are canceled, everything else failed.
// The context check catches failures that are really disconnects in
// disguise — e.g. a streaming write to a connection the client already
// closed surfaces as a stream error before the next per-batch ctx check.
func (s *Server) countJobError(ctx context.Context, herr *httpError) {
	if herr.status == statusClientClosedRequest || ctx.Err() != nil {
		s.stats[statCanceled].Add(1)
	} else {
		s.stats[statFailed].Add(1)
	}
}

// batchResult is one executed batch, engine-agnostic: local batches come
// from tqsim.RunPlanContext, remote ones from a worker's ShardBatch.
type batchResult struct {
	index              int
	seed               uint64
	outcomes           int
	counts             map[uint64]int
	backend, structure string
}

// runJob executes the job's batches — sharded across the worker pool when
// distributed, sequentially in-process otherwise — and merges histograms.
// onBatch, when non-nil, observes each batch result as it completes (the
// streaming hook); in distributed mode completion order is not
// deterministic, batch contents and the merge are.
func (s *Server) runJob(ctx context.Context, j *job, distributed bool, onBatch func(*batchResult) error) (*JobResponse, *httpError) {
	start := time.Now()
	var (
		merged             map[uint64]int
		outcomes           int
		backend, structure string
		herr               *httpError
	)
	if distributed {
		merged, outcomes, backend, structure, herr = s.runDistributed(ctx, j, onBatch)
	} else {
		merged, outcomes, backend, structure, herr = s.runBatches(ctx, j, 0, j.numBatches(), onBatch)
	}
	if herr != nil {
		return nil, herr
	}
	return &JobResponse{
		Circuit:     j.circuit.Name,
		Width:       j.circuit.NumQubits,
		Backend:     backend,
		Structure:   structure,
		Outcomes:    outcomes,
		Batches:     j.numBatches(),
		Counts:      countsJSON(merged),
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		Decision:    decisionJSON(j.decision),
		PlanHit:     j.planHit,
		Distributed: distributed,
	}, nil
}

// runBatches executes batches [from, to) in-process, threading ctx into the
// executor so a client disconnect (or a coordinator re-leasing this shard)
// stops in-flight trajectory work instead of computing results nobody will
// read. Returns the merged histogram over the executed range.
func (s *Server) runBatches(ctx context.Context, j *job, from, to int, onBatch func(*batchResult) error) (map[uint64]int, int, string, string, *httpError) {
	merged := make(map[uint64]int)
	outcomes := 0
	backend, structure := "", ""
	// Boundary-snapshot sets for this range's (at most two) batch sizes,
	// assembled from the cross-job cache. A nil map value remembers an
	// assembly failure so it isn't retried per batch.
	var prefixBySize map[int]*tqsim.PrefixSnapshots
	for i := from; i < to; i++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, "", "", errf(statusClientClosedRequest, "cancelled before batch %d: %v", i, err)
		}
		cp := j.planFor(i)
		opt := j.opt
		if opt.Backend == tqsim.AutoBackend {
			// Execute exactly the configuration the job was admitted on:
			// re-deciding inside RunPlan would ignore the server budget and
			// could run more workers (or another engine) than the reserved
			// estimate covers.
			opt.Backend = cp.decision.Backend
			opt.Parallelism = cp.decision.Parallelism
			if opt.ClusterNodes == 0 {
				opt.ClusterNodes = cp.decision.ClusterNodes
			}
		}
		opt.Seed = BatchSeed(j.opt.Seed, i)
		// Prefix reuse is gated exactly like the executor gates it — dense
		// plain backend, Pauli-only noise — so a batch never pays for
		// snapshots an engine would ignore. Reuse is histogram-preserving:
		// a no-fire segment adopts the cached ideal state the executor
		// would have recomputed, RNG consumption unchanged.
		var prefix *tqsim.PrefixSnapshots
		if s.snapCache != nil && opt.Backend == "statevec" && j.noise.PauliOnly() {
			size := j.batchShots(i)
			p, ok := prefixBySize[size]
			if !ok {
				p, _ = s.snapCache.ForPlan(cp.plan) // nil on error: run unprefixed
				if prefixBySize == nil {
					prefixBySize = make(map[int]*tqsim.PrefixSnapshots, 2)
				}
				prefixBySize[size] = p
			}
			prefix = p
		}
		res, err := tqsim.RunPlanPrefixed(ctx, cp.plan, j.noise, opt, prefix)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, 0, "", "", errf(statusClientClosedRequest, "batch %d cancelled: %v", i, err)
			}
			return nil, 0, "", "", errf(http.StatusUnprocessableEntity, "batch %d: %v", i, err)
		}
		s.stats[statBatches].Add(1)
		metrics.MergeCounts(merged, res.Counts)
		outcomes += res.Outcomes
		backend = res.BackendName
		structure = res.Structure
		if onBatch != nil {
			if err := onBatch(&batchResult{
				index: i, seed: opt.Seed, outcomes: res.Outcomes, counts: res.Counts,
				backend: res.BackendName, structure: res.Structure,
			}); err != nil {
				return nil, 0, "", "", errf(http.StatusInternalServerError, "stream: %v", err)
			}
		}
	}
	return merged, outcomes, backend, structure, nil
}

// runStreaming writes the NDJSON stream: a plan header, one line per
// batch, and a final done line with the merged histogram. A non-empty
// storeKey records the finished job in the result store. start is the
// request receipt time, for the completed-request latency histogram.
func (s *Server) runStreaming(ctx context.Context, w http.ResponseWriter, j *job, distributed bool, storeKey string, start time.Time) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(line *batchLine) error {
		if err := enc.Encode(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	// A failed plan-header emit means the client is already gone: abort
	// before admitting any batch work. The job books as canceled (the
	// client disconnected, the request wasn't bad) and nothing runs —
	// previously the emit error was discarded and the whole job executed
	// into a dead connection.
	if err := emit(&batchLine{
		Type:      "plan",
		Batches:   j.numBatches(),
		Structure: j.planFor(0).plan.Structure(),
		Backend:   j.decision.Backend,
		Decision:  decisionJSON(j.decision),
	}); err != nil {
		s.stats[statCanceled].Add(1)
		return
	}
	var rec *jobRecorder
	if storeKey != "" {
		rec = &jobRecorder{}
	}
	resp, herr := s.runJob(ctx, j, distributed, func(br *batchResult) error {
		if rec != nil {
			rec.observe(br)
		}
		return emit(&batchLine{
			Type:   "batch",
			Batch:  br.index,
			Shots:  br.outcomes,
			Seed:   br.seed,
			Counts: countsJSON(br.counts),
		})
	})
	if herr != nil {
		s.countJobError(ctx, herr)
		_ = emit(&batchLine{Type: "error", Error: herr.msg})
		return
	}
	s.stats[statCompleted].Add(1)
	s.recordLatency(start)
	if storeKey != "" {
		s.storeJob(storeKey, resp, rec)
	}
	_ = emit(&batchLine{
		Type:      "done",
		Batches:   resp.Batches,
		Outcomes:  resp.Outcomes,
		Counts:    resp.Counts,
		ElapsedMS: resp.ElapsedMS,
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, herr := s.prepare(&req)
	if herr != nil {
		writeError(w, herr.status, herr.msg)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"circuit":   j.circuit.Name,
		"width":     j.circuit.NumQubits,
		"structure": j.planFor(0).plan.Structure(),
		"batches":   j.numBatches(),
		"decision":  decisionJSON(j.decision),
		"explain":   j.decision.String(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	drainRequest(r)
	if s.Draining() {
		// Health checks fail during drain so load balancers stop routing
		// new traffic while in-flight jobs finish.
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "worker": s.cfg.WorkerMode})
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	drainRequest(r)
	writeJSON(w, http.StatusOK, map[string]any{
		"backends": append([]string{tqsim.AutoBackend}, tqsim.Backends()...),
	})
}

// Snapshot returns the current counters (also served at /v1/stats).
func (s *Server) Snapshot() Stats {
	s.memMu.Lock()
	inUse := s.memInUse
	s.memMu.Unlock()
	s.planMu.Lock()
	planEntries := s.planCache.len()
	s.planMu.Unlock()
	st := Stats{
		JobsCompleted:     s.stats[statCompleted].Load(),
		JobsFailed:        s.stats[statFailed].Load(),
		JobsCanceled:      s.stats[statCanceled].Load(),
		RejectedQueueFull: s.stats[statQueueFull].Load(),
		RejectedMemory:    s.stats[statMemory].Load(),
		RejectedDraining:  s.stats[statDraining].Load(),
		BatchesRun:        s.stats[statBatches].Load(),
		SweepsCompleted:   s.stats[statSweepsCompleted].Load(),
		SweepPointsRun:    s.stats[statSweepPoints].Load(),
		PlanCacheHits:     s.stats[statPlanHits].Load(),
		PlanCacheMisses:   s.stats[statPlanMisses].Load(),
		PlanCacheEvicted:  s.stats[statPlanEvicted].Load(),
		PlanCacheEntries:  planEntries,
		MemoryInUseBytes:  inUse,
		Draining:          s.Draining(),
		ShardsDispatched:  s.stats[statShardsDispatched].Load(),
		ShardsRequeued:    s.stats[statShardsRequeued].Load(),
		WorkerFailures:    s.stats[statWorkerFailures].Load(),
		LeaseRetries:      s.stats[statLeaseRetries].Load(),
		ChecksumFailures:  s.stats[statChecksumFails].Load(),
		RetryAfterWaits:   s.stats[statRetryAfterWaits].Load(),
		WorkersJoined:     s.stats[statWorkersJoined].Load(),
		WorkersRevived:    s.stats[statWorkersRevived].Load(),
	}
	if s.pool != nil {
		st.WorkersAlive = s.aliveWorkers()
		st.WorkersTotal = len(s.pool.snapshot())
		st.Workers = s.workerStats()
	}
	st.ResultsHits = s.stats[statResultsHits].Load()
	st.ResultsMisses = s.stats[statResultsMisses].Load()
	if s.results != nil {
		st.ResultsEntries = s.results.Len()
		st.ResultsBytes = s.results.Bytes()
	}
	if s.snapCache != nil {
		st.SnapshotHits = s.snapCache.Hits()
		st.SnapshotMisses = s.snapCache.Misses()
		st.SnapshotBytes = s.snapCache.Bytes()
	}
	if n := s.reqLat.Count(); n > 0 {
		st.LatencyCount = n
		st.LatencyMeanMS = latMS(s.reqLat.Mean())
		st.LatencyP50MS = latMS(s.reqLat.Quantile(0.50))
		st.LatencyP95MS = latMS(s.reqLat.Quantile(0.95))
		st.LatencyP99MS = latMS(s.reqLat.Quantile(0.99))
	}
	return st
}

// latMS renders a histogram duration as fractional milliseconds.
func latMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	drainRequest(r)
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// countsJSON renders a histogram with decimal string keys. Response bytes
// are deterministic because encoding/json serializes map keys in sorted
// (lexicographic) order itself.
func countsJSON(counts map[uint64]int) map[string]int {
	out := make(map[string]int, len(counts))
	for k, v := range counts {
		out[strconv.FormatUint(k, 10)] = v
	}
	return out
}

// drainRequest consumes any unread request body. net/http only cancels
// r.Context() on client disconnect once the body has been read, so a
// handler that never touches it can park forever on a dead connection —
// the PR 5 lease-timeout footgun. Harmless on body-less GETs.
func drainRequest(r *http.Request) {
	_, _ = io.Copy(io.Discard, r.Body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //lint:allow errdrop -- terminal response write: the status is already committed, nothing to abort
}

// writeError renders an error body. Every 503 carries a Retry-After
// header: all of them (queue, memory, drain, worker-busy) mean "the
// request is fine, the capacity isn't", and well-behaved clients key
// their backoff on the header's presence.
func writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": msg})
}
