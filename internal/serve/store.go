package serve

// The serve layer's integration with internal/resultstore: key derivation,
// the stored record shapes, and byte-identical replay of finished jobs and
// sweeps in both response formats (one JSON body, NDJSON stream).
//
// Determinism argument, in short: a stored entry's key pins every input
// that shapes the merged histogram — the circuit's structural digest (full
// gate content, including raw-unitary matrices), noise model, mode,
// backend, seed, shots, the pinned batch size, and every decision-shaping
// option. Batch i runs at the derived seed BatchSeed(seed, i) regardless of
// scheduling, placement or failure timing, and countsJSON keys serialize in
// sorted order, so two runs with equal keys produce equal bytes — which is
// what lets a replay return the recorded first run verbatim. ElapsedMS is
// the one run-varying response field; replays return the recorded value
// rather than pretending to have simulated.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"tqsim"
)

// jobResultKey derives a job's store identity from the pinned wire request
// (prepare resolved every default into it) plus the circuit's structural
// digest and display name. The digest — not the QASM text — carries the
// program identity, so formatting differences that parse to the same gate
// list share an entry, while same-shape circuits with different unitaries
// never do. BatchShots is part of the key because the batch split changes
// the per-batch seed schedule, and with it the merged histogram.
func jobResultKey(j *job) string {
	w := j.wire
	h := sha256.New()
	fmt.Fprintf(h, "tqsim-result-v1\x00%s\x00%s\x00%s\x00%s\x00%s\x00%d\x00%d\x00%d\x00%g\x00%d\x00%d\x00%d\x00%g\x00%d",
		tqsim.CircuitDigest(j.circuit), j.circuit.Name, w.Noise, w.Mode, w.Backend,
		w.Shots, w.Seed, w.BatchShots, w.CopyCost, w.MaxLevels, w.MemoryBudgetBytes,
		w.Parallelism, w.Epsilon, w.ClusterNodes)
	return hex.EncodeToString(h.Sum(nil))
}

// sweepResultKey derives a sweep's store identity from the canonical JSON
// of the pinned wire spec — the same bytes preparedSweepForLease keys
// worker-side sharing on. Grid expansion, per-point seeds and planner
// decisions are all deterministic in the pinned spec, so equal specs mean
// equal results.
func sweepResultKey(sj *sweepJob) (string, bool) {
	raw, err := json.Marshal(sj.wire)
	if err != nil {
		return "", false
	}
	h := sha256.New()
	h.Write([]byte("tqsim-sweep-v1\x00"))
	h.Write(raw)
	return hex.EncodeToString(h.Sum(nil)), true
}

// storedJob is one finished job's store record: the exact non-streaming
// response body plus the per-batch records an NDJSON replay re-emits. Both
// response shapes are recorded on every store — a job first run with
// stream=false replays byte-identically as a stream, and vice versa.
type storedJob struct {
	Response json.RawMessage `json:"response"`
	Batches  []storedBatch   `json:"batches"`
}

// storedBatch mirrors the fields a live streaming batch line carries.
type storedBatch struct {
	Batch  int            `json:"batch"`
	Seed   uint64         `json:"seed"`
	Shots  int            `json:"shots"`
	Counts map[string]int `json:"counts"`
}

// jobRecorder accumulates batch results during a run that will be stored.
// Distributed batches complete in nondeterministic order; sorted restores
// index order so the stored record — and every stream replayed from it —
// is canonical.
type jobRecorder struct {
	batches []storedBatch
}

func (r *jobRecorder) observe(br *batchResult) {
	r.batches = append(r.batches, storedBatch{
		Batch:  br.index,
		Seed:   br.seed,
		Shots:  br.outcomes,
		Counts: countsJSON(br.counts),
	})
}

func (r *jobRecorder) sorted() []storedBatch {
	sort.Slice(r.batches, func(i, j int) bool { return r.batches[i].Batch < r.batches[j].Batch })
	return r.batches
}

// storeJob records a successfully finished job. Marshal failures drop the
// record silently — the store is an optimization, never a correctness
// dependency.
func (s *Server) storeJob(key string, resp *JobResponse, rec *jobRecorder) {
	raw, err := json.Marshal(resp)
	if err != nil {
		return
	}
	blob, err := json.Marshal(&storedJob{Response: raw, Batches: rec.sorted()})
	if err != nil {
		return
	}
	s.results.Put(key, blob)
}

// replayJob writes a stored job in the response shape this request asked
// for. Reports false — without touching the ResponseWriter — when the blob
// doesn't decode or doesn't cover the request (e.g. a stream replay of a
// truncated record): the caller then runs the job live and overwrites the
// bad entry.
func (s *Server) replayJob(w http.ResponseWriter, j *job, blob []byte) bool {
	var rec storedJob
	if json.Unmarshal(blob, &rec) != nil || len(rec.Response) == 0 {
		return false
	}
	if !j.stream {
		writeRawJSON(w, rec.Response)
		return true
	}
	var resp JobResponse
	if json.Unmarshal(rec.Response, &resp) != nil || len(rec.Batches) != j.numBatches() {
		return false
	}
	// The plan header is recomputed live, not replayed: planning is
	// deterministic, so it matches the cold run's header, and recomputing
	// keeps the record free of redundant decision state.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	// A failed emit means the client hung up mid-replay: the response is
	// already committed, so stop writing the remaining lines — but report
	// the replay as handled either way.
	emit := func(line *batchLine) bool { return enc.Encode(line) == nil }
	if !emit(&batchLine{
		Type:      "plan",
		Batches:   j.numBatches(),
		Structure: j.planFor(0).plan.Structure(),
		Backend:   j.decision.Backend,
		Decision:  decisionJSON(j.decision),
	}) {
		return true
	}
	for i := range rec.Batches {
		b := &rec.Batches[i]
		if !emit(&batchLine{Type: "batch", Batch: b.Batch, Shots: b.Shots, Seed: b.Seed, Counts: b.Counts}) {
			return true
		}
	}
	emit(&batchLine{
		Type:      "done",
		Batches:   resp.Batches,
		Outcomes:  resp.Outcomes,
		Counts:    resp.Counts,
		ElapsedMS: resp.ElapsedMS,
	})
	return true
}

// storeSweep records a successfully finished sweep: the response body is
// the whole record (stream replays derive every line from it).
func (s *Server) storeSweep(key string, resp *SweepResponse) {
	blob, err := json.Marshal(resp)
	if err != nil {
		return
	}
	s.results.Put(key, blob)
}

// replaySweep writes a stored sweep in the requested response shape; false
// means the blob is unusable and the caller should run live.
func (s *Server) replaySweep(w http.ResponseWriter, sj *sweepJob, blob []byte) bool {
	var resp SweepResponse
	if json.Unmarshal(blob, &resp) != nil || resp.Points == 0 {
		return false
	}
	if !sj.stream {
		writeRawJSON(w, blob)
		return true
	}
	if len(resp.Results) != resp.Points {
		return false
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	// As in replayJob: a failed emit means the client hung up, so stop
	// writing but report the replay handled.
	emit := func(line *sweepLine) bool { return enc.Encode(line) == nil }
	if !emit(&sweepLine{Type: "sweep", Points: resp.Points, Distributed: resp.Distributed}) {
		return true
	}
	for i := range resp.Results {
		if !emit(&sweepLine{Type: "point", SweepPointJSON: &resp.Results[i]}) {
			return true
		}
	}
	emit(&sweepLine{
		Type:            "done",
		Points:          resp.Points,
		TotalOps:        resp.Ops,
		TotalPrefixHits: resp.PrefixHits,
		TotalElapsedMS:  resp.ElapsedMS,
	})
	return true
}

// writeRawJSON writes pre-marshaled bytes exactly the way writeJSON writes
// a value: Encoder.Encode is Marshal plus a trailing newline, so a replayed
// body is byte-identical to the recorded live response.
func writeRawJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte{'\n'})
}
