package serve

// The coordinator side of the distributed shard protocol. A Server
// constructed with Config.Workers shards every multi-batch job across its
// worker pool: the job's batch range is cut into contiguous leases, leases
// are handed to workers up to each worker's planner-derived slot count,
// and per-batch histograms are merged as shards complete. Failure
// semantics: a worker that errors is marked dead, its unacked leases are
// re-dispatched to the remaining workers, and its health is re-probed at
// the start of later jobs; when no worker can take a job the coordinator
// finishes it locally. Determinism: batch i's histogram is a pure function
// of the job request and i (workers run batch i at BatchSeed(seed, i)),
// and the coordinator records each batch index at most once, so the merge
// is byte-identical to the single-process run whatever the worker count,
// lease placement, failure timing, or completion order.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tqsim/internal/metrics"
	"tqsim/internal/planner"
)

// leasesPerSlot sets the lease granularity: about this many leases per
// worker slot, so fast workers pick up the slack of slow ones while each
// lease still amortizes one HTTP round-trip over several batches.
const leasesPerSlot = 4

// healthCheckTimeout bounds the /v1/worker probe; a worker that cannot
// answer a capacity query this fast should not be leased trajectory work.
const healthCheckTimeout = 2 * time.Second

// probeBackoff is the minimum spacing between probes of a dead worker.
// refresh runs on the job submission path, so without it a blackholed
// worker (drops packets instead of refusing) would add healthCheckTimeout
// of latency to every multi-batch job until it recovers.
const probeBackoff = 5 * time.Second

// workerClient is the coordinator's view of one worker.
type workerClient struct {
	base string
	hc   *http.Client

	mu        sync.Mutex
	alive     bool
	info      WorkerInfo
	lastProbe time.Time
}

// pool is the coordinator's worker set.
type pool struct {
	workers []*workerClient
}

func newPool(urls []string) *pool {
	p := &pool{}
	for _, u := range urls {
		p.workers = append(p.workers, &workerClient{
			base: strings.TrimRight(u, "/"),
			// No client timeout: a shard lease legitimately runs for as
			// long as its batches take; cancellation comes from the job's
			// request context.
			hc: &http.Client{},
		})
	}
	return p
}

// refresh re-probes every worker not currently believed alive — the
// requeue-on-failure loop's recovery half: a worker marked dead by a
// failed lease rejoins the pool once it answers its health check again.
func (p *pool) refresh(ctx context.Context) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, w := range p.workers {
		w.mu.Lock()
		skip := w.alive || now.Sub(w.lastProbe) < probeBackoff
		if !skip {
			w.lastProbe = now
		}
		w.mu.Unlock()
		if skip {
			continue
		}
		wg.Add(1)
		go func(w *workerClient) {
			defer wg.Done()
			w.check(ctx)
		}(w)
	}
	wg.Wait()
}

// check probes /v1/worker and updates liveness and the capacity
// advertisement.
func (w *workerClient) check(ctx context.Context) bool {
	cctx, cancel := context.WithTimeout(ctx, healthCheckTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, w.base+"/v1/worker", nil)
	if err != nil {
		return false
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		w.markDead()
		return false
	}
	defer resp.Body.Close()
	var info WorkerInfo
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&info) != nil {
		w.markDead()
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.info = info
	w.alive = info.Worker && !info.Draining
	return w.alive
}

func (w *workerClient) markDead() {
	w.mu.Lock()
	w.alive = false
	w.mu.Unlock()
}

func (w *workerClient) snapshot() (bool, WorkerInfo) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive, w.info
}

func (p *pool) aliveCount() int {
	n := 0
	for _, w := range p.workers {
		if alive, _ := w.snapshot(); alive {
			n++
		}
	}
	return n
}

// shardError is a failed lease attempt. status 0 is a transport error
// (worker unreachable mid-lease); otherwise the HTTP status the worker
// answered.
type shardError struct {
	status int
	msg    string
}

// shard posts one lease and decodes the response.
func (w *workerClient) shard(ctx context.Context, req *ShardRequest) (*ShardResponse, *shardError) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, &shardError{msg: "marshal: " + err.Error()}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, &shardError{msg: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(hreq)
	if err != nil {
		return nil, &shardError{msg: err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, &shardError{msg: "read: " + err.Error()}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &shardError{status: resp.StatusCode, msg: strings.TrimSpace(string(raw))}
	}
	var out ShardResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, &shardError{msg: "decode: " + err.Error()}
	}
	return &out, nil
}

// lease is a contiguous block of unit indices dispatched as one shard.
type lease struct{ from, to int }

// leasedWork abstracts a unit-range workload the coordinator can shard
// across the pool: job batches and sweep points share the lease queue,
// placement, failure handling and requeue logic; only the wire request and
// the in-process fallback differ.
type leasedWork struct {
	// units is the total unit count (batches or sweep points).
	units int
	// estPeak is the per-unit admission estimate placement divides worker
	// budgets by.
	estPeak int64
	// wire builds the lease request for units [from, to).
	wire func(from, to int) *ShardRequest
	// runLocal executes units [from, to) in-process — the degraded path
	// when no worker can take the work — emitting one ShardBatch per unit.
	runLocal func(ctx context.Context, from, to int, emit func(*ShardBatch) *httpError) *httpError
}

// runLeased shards the work's units across the worker pool, delivering each
// unit's ShardBatch to onUnit exactly once (a unit that somehow arrives
// twice is dropped rather than double-counted — cheap insurance on top of
// the lease bookkeeping). Every lease round trip is bounded by
// Config.LeaseTimeout: a worker that accepts a lease and then hangs is
// marked dead on expiry and its lease requeues, instead of stalling the
// work forever.
func (s *Server) runLeased(ctx context.Context, work leasedWork, onUnit func(sb *ShardBatch, remote bool) *httpError) *httpError {
	n := work.units
	s.pool.refresh(ctx)

	// Planner-driven placement: a worker may hold as many concurrent
	// leases as whole copies of the work's peak estimate fit in its
	// advertised memory budget (capped by its execution slots); a worker
	// the work can never fit on gets no leases at all.
	slots := make(map[*workerClient]int)
	totalSlots := 0
	for _, w := range s.pool.workers {
		alive, info := w.snapshot()
		if !alive {
			continue
		}
		if k := planner.WorkerSlots(work.estPeak, info.MemoryBudgetBytes, info.MaxConcurrent); k > 0 {
			slots[w] = k
			totalSlots += k
		}
	}

	got := make([]bool, n)
	record := func(sb *ShardBatch, remote bool) *httpError {
		if sb.Batch < 0 || sb.Batch >= n {
			return errf(http.StatusBadGateway, "worker returned unit %d outside the work's %d units", sb.Batch, n)
		}
		if got[sb.Batch] {
			return nil
		}
		got[sb.Batch] = true
		return onUnit(sb, remote)
	}
	recordLocal := func(sb *ShardBatch) *httpError { return record(sb, false) }

	// runLocal finishes leases in-process. Local execution re-enters the
	// coordinator's own admission budget, so a degraded pool degrades to
	// single-process service without overcommitting the coordinator.
	runLocal := func(ls []lease) *httpError {
		if herr := s.reserveMemory(work.estPeak); herr != nil {
			return herr
		}
		defer s.releaseMemory(work.estPeak)
		for _, l := range ls {
			if herr := work.runLocal(ctx, l.from, l.to, recordLocal); herr != nil {
				return herr
			}
		}
		return nil
	}

	// Cut the unit range into leases.
	chunk := 1
	if totalSlots > 0 {
		chunk = (n + leasesPerSlot*totalSlots - 1) / (leasesPerSlot * totalSlots)
	}
	var queue []lease
	for i := 0; i < n; i += chunk {
		end := i + chunk
		if end > n {
			end = n
		}
		queue = append(queue, lease{i, end})
	}

	// Shard calls run on a child context so an aborted job cancels its
	// in-flight leases (the workers' executors stop, not just the HTTP
	// calls).
	sctx, cancelShards := context.WithCancel(ctx)
	defer cancelShards()

	type doneMsg struct {
		w    *workerClient
		l    lease
		resp *ShardResponse
		err  *shardError
	}
	done := make(chan doneMsg)
	inflight := make(map[*workerClient]int)
	inflightN := 0
	// reap lets in-flight senders finish after an abort so their
	// goroutines exit; cancelShards has already stopped their work.
	reap := func() {
		if inflightN > 0 {
			go func(k int) {
				for i := 0; i < k; i++ {
					<-done
				}
			}(inflightN)
		}
	}

	for {
		// Hand queued leases to the least-loaded free workers.
		for len(queue) > 0 {
			var pick *workerClient
			for w, k := range slots {
				if inflight[w] < k && (pick == nil || inflight[w] < inflight[pick]) {
					pick = w
				}
			}
			if pick == nil {
				break
			}
			l := queue[0]
			queue = queue[1:]
			inflight[pick]++
			inflightN++
			s.stats[statShardsDispatched].Add(1)
			go func(w *workerClient, l lease) {
				// Bound the lease: a hung worker (accepted the lease, never
				// answers, connection stays open) turns into a transport
				// error at the deadline and takes the dead-worker path
				// below. The job ctx still cancels leases early; the
				// timeout only adds an upper bound.
				lctx := sctx
				if s.cfg.LeaseTimeout > 0 {
					var cancel context.CancelFunc
					lctx, cancel = context.WithTimeout(sctx, s.cfg.LeaseTimeout)
					defer cancel()
				}
				resp, serr := w.shard(lctx, work.wire(l.from, l.to))
				done <- doneMsg{w: w, l: l, resp: resp, err: serr}
			}(pick, l)
		}
		if inflightN == 0 {
			if len(queue) == 0 {
				break
			}
			if herr := runLocal(queue); herr != nil {
				return herr
			}
			break
		}

		d := <-done
		inflightN--
		inflight[d.w]--
		if d.err != nil {
			if ctx.Err() != nil {
				reap()
				return errf(statusClientClosedRequest, "job cancelled: %v", ctx.Err())
			}
			s.stats[statShardsRequeued].Add(1)
			queue = append(queue, d.l)
			switch {
			case d.err.status == http.StatusServiceUnavailable || d.err.status == http.StatusRequestEntityTooLarge:
				// The worker is healthy but cannot take this work (at
				// capacity, or it exceeds its budget): stop leasing this
				// work to it, leave it in the pool.
				delete(slots, d.w)
			case d.err.status >= 400 && d.err.status < 500:
				// The worker rejected the work itself; re-dispatching the
				// identical request cannot succeed anywhere.
				reap()
				return errf(http.StatusBadGateway,
					"worker %s rejected lease [%d,%d): %s", d.w.base, d.l.from, d.l.to, d.err.msg)
			default:
				// Transport error (including a lease timeout) or 5xx: the
				// worker is dead. Its unacked lease is already back in the
				// queue; pool.refresh re-probes it on later jobs.
				s.stats[statWorkerFailures].Add(1)
				d.w.markDead()
				delete(slots, d.w)
			}
			continue
		}
		for i := range d.resp.Batches {
			if herr := record(&d.resp.Batches[i], true); herr != nil {
				reap()
				return herr
			}
		}
	}

	for i, ok := range got {
		if !ok {
			return errf(http.StatusInternalServerError, "unit %d was never executed", i)
		}
	}
	return nil
}

// runDistributed shards the job's batches across the worker pool and
// merges the per-batch histograms. Matches runBatches' return contract.
func (s *Server) runDistributed(ctx context.Context, j *job, onBatch func(*batchResult) error) (map[uint64]int, int, string, string, *httpError) {
	merged := make(map[uint64]int)
	outcomes := 0
	backend, structure := "", ""
	herr := s.runLeased(ctx, leasedWork{
		units:   j.numBatches(),
		estPeak: j.estPeak,
		wire: func(from, to int) *ShardRequest {
			return &ShardRequest{Job: *j.wire, From: from, To: to}
		},
		runLocal: func(ctx context.Context, from, to int, emit func(*ShardBatch) *httpError) *httpError {
			var eherr *httpError
			_, _, _, _, herr := s.runBatches(ctx, j, from, to, func(br *batchResult) error {
				if h := emit(&ShardBatch{
					Batch:     br.index,
					Seed:      br.seed,
					Outcomes:  br.outcomes,
					Counts:    countsJSON(br.counts),
					Backend:   br.backend,
					Structure: br.structure,
				}); h != nil {
					eherr = h
					return errors.New(h.msg)
				}
				return nil
			})
			if eherr != nil {
				// Emit failures keep their own status (e.g. a client that
				// vanished mid-stream) instead of runBatches' generic wrap.
				return eherr
			}
			return herr
		},
	}, func(sb *ShardBatch, remote bool) *httpError {
		counts, herr := parseCounts(sb.Counts)
		if herr != nil {
			return herr
		}
		metrics.MergeCounts(merged, counts)
		outcomes += sb.Outcomes
		if sb.Backend != "" {
			backend, structure = sb.Backend, sb.Structure
		}
		if remote {
			// Locally executed fallback batches were already counted inside
			// runBatches; only worker-acked batches are new to the counter.
			s.stats[statBatches].Add(1)
		}
		if onBatch != nil {
			if err := onBatch(&batchResult{index: sb.Batch, seed: sb.Seed, outcomes: sb.Outcomes, counts: counts}); err != nil {
				return errf(http.StatusInternalServerError, "stream: %v", err)
			}
		}
		return nil
	})
	if herr != nil {
		return nil, 0, "", "", herr
	}
	return merged, outcomes, backend, structure, nil
}

// parseCounts decodes a wire histogram's decimal keys.
func parseCounts(in map[string]int) (map[uint64]int, *httpError) {
	out := make(map[uint64]int, len(in))
	for k, v := range in {
		key, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			return nil, errf(http.StatusBadGateway, "worker returned non-numeric outcome key %q", k)
		}
		out[key] = v
	}
	return out, nil
}
