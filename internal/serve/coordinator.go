package serve

// The coordinator side of the distributed shard protocol. A Server
// constructed with Config.Workers (or Config.AcceptWorkers) shards every
// multi-batch job across its worker registry: the job's batch range is cut
// into contiguous leases, leases are handed to workers up to each worker's
// planner-derived slot count, and per-batch histograms are merged as shards
// complete.
//
// Resilience: every lease gets bounded retries with exponential backoff and
// seeded jitter before it is requeued; a worker answering 503 with a
// Retry-After header is retried after a capped wait before being excluded
// from the job; responses carry a sha256 checksum over the batch payload so
// a corrupted response is treated as a worker failure (requeued) rather
// than merged; and each worker's circuit breaker holds it out of dispatch
// after consecutive failures until a half-open trial succeeds. Eligibility
// is recomputed every dispatch round from the live registry, so a worker
// that dies mid-job and later revives (heartbeat or probe), or a brand-new
// worker that joins mid-job, picks up queued leases without restarting the
// job. When no worker can take the work the coordinator finishes it
// locally.
//
// Determinism: batch i's histogram is a pure function of the job request
// and i (workers run batch i at BatchSeed(seed, i)), and the coordinator
// records each batch index at most once, so the merge is byte-identical to
// the single-process run whatever the worker count, lease placement,
// failure timing, fault pattern, or completion order.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tqsim/internal/metrics"
	"tqsim/internal/planner"
)

// leasesPerSlot sets the lease granularity: about this many leases per
// worker slot, so fast workers pick up the slack of slow ones while each
// lease still amortizes one HTTP round-trip over several batches.
const leasesPerSlot = 4

// healthCheckTimeout bounds one /v1/worker probe attempt; a worker that
// cannot answer a capacity query this fast should not be leased trajectory
// work.
const healthCheckTimeout = 2 * time.Second

// probeAttempts bounds probe retries: a worker is declared unreachable only
// after this many attempts (backoff + jitter between them), so one dropped
// packet does not cost a healthy worker its place in the job.
const probeAttempts = 2

// refreshPool re-probes every worker not currently alive — the recovery
// half of the requeue-on-failure loop. Probes of the same worker are spaced
// by Config.ProbeBackoff: refresh runs on the job submission path (and
// asynchronously after mid-job failures), so without the spacing a
// blackholed worker would add healthCheckTimeout of latency to every job
// until it recovers.
func (s *Server) refreshPool(ctx context.Context) {
	if s.pool == nil {
		return
	}
	now := time.Now()
	var wg sync.WaitGroup
	for _, w := range s.pool.snapshot() {
		w.mu.Lock()
		skip := w.stateLocked(s.cfg, now) == workerAlive || now.Sub(w.lastProbe) < s.cfg.ProbeBackoff
		if !skip {
			w.lastProbe = now
		}
		w.mu.Unlock()
		if skip {
			continue
		}
		wg.Add(1)
		go func(w *workerClient) {
			defer wg.Done()
			s.probe(ctx, w)
		}(w)
	}
	wg.Wait()
}

// probe health-checks one worker with bounded retries.
func (s *Server) probe(ctx context.Context, w *workerClient) bool {
	for a := 0; a < probeAttempts; a++ {
		if a > 0 {
			if !sleepCtx(ctx, s.backoff(a-1)) {
				return false
			}
		}
		if s.check(ctx, w) {
			return true
		}
	}
	return false
}

// check runs one probe attempt against /v1/worker, updating liveness and
// the capacity advertisement. A probe that finds a dead worker answering
// again is a revival: the registry notifies in-flight dispatch loops so the
// worker rejoins mid-job.
func (s *Server) check(ctx context.Context, w *workerClient) bool {
	cctx, cancel := context.WithTimeout(ctx, healthCheckTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, w.base+"/v1/worker", nil)
	if err != nil {
		return false
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		w.markDead()
		return false
	}
	defer resp.Body.Close()
	var info WorkerInfo
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&info) != nil {
		w.markDead()
		return false
	}
	ok := info.Worker && !info.Draining
	w.mu.Lock()
	w.info = info
	wasDead := w.status == workerDead
	if ok {
		w.status = workerAlive
		w.lastSeen = time.Now()
		if wasDead {
			w.revivals++
		}
	} else {
		w.status = workerDead
	}
	w.mu.Unlock()
	if ok && wasDead {
		s.stats[statWorkersRevived].Add(1)
		s.pool.notify()
	}
	return ok
}

// aliveWorkers counts registry members whose effective state is alive.
func (s *Server) aliveWorkers() int {
	n := 0
	for _, w := range s.pool.snapshot() {
		if w.state(s.cfg) == workerAlive {
			n++
		}
	}
	return n
}

// eligibleWorkers computes the set of workers dispatch may lease to right
// now: alive (liveness state machine), not excluded from this job, not
// draining, and — planner-driven placement — able to fit at least one copy
// of the work's peak estimate, with the slot count bounding concurrent
// leases. Recomputed every dispatch round so membership changes feed
// in-flight jobs.
func (s *Server) eligibleWorkers(estPeak int64, excluded map[*workerClient]bool) map[*workerClient]int {
	out := make(map[*workerClient]int)
	for _, w := range s.pool.snapshot() {
		if excluded[w] || w.state(s.cfg) != workerAlive {
			continue
		}
		info := w.snapshotInfo()
		if !info.Worker || info.Draining {
			continue
		}
		if k := planner.WorkerSlots(estPeak, info.MemoryBudgetBytes, info.MaxConcurrent); k > 0 {
			out[w] = k
		}
	}
	return out
}

// shardError is a failed lease attempt. status 0 is a transport error
// (worker unreachable mid-lease, or a corrupt payload); otherwise the HTTP
// status the worker answered. retryAfter carries the worker's Retry-After
// hint on 503s.
type shardError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

// shard posts one lease attempt and decodes the response.
func (w *workerClient) shard(ctx context.Context, req *ShardRequest) (*ShardResponse, *shardError) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, &shardError{msg: "marshal: " + err.Error()}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, &shardError{msg: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(hreq)
	if err != nil {
		return nil, &shardError{msg: err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, &shardError{msg: "read: " + err.Error()}
	}
	if resp.StatusCode != http.StatusOK {
		serr := &shardError{status: resp.StatusCode, msg: strings.TrimSpace(string(raw))}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
			serr.retryAfter = time.Duration(secs) * time.Second
		}
		return nil, serr
	}
	var out ShardResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, &shardError{msg: "decode: " + err.Error()}
	}
	return &out, nil
}

// leaseWithRetry runs one lease against one worker with bounded retries:
// transport errors, 5xx answers and checksum mismatches back off
// exponentially (with seeded jitter) between attempts; a 503 carrying
// Retry-After waits the worker's own hint, capped by Config.RetryAfterCap,
// before retrying — only after the attempts are exhausted does the caller
// exclude the worker from the job. 413 and other 4xx answers never retry:
// the request cannot succeed by repetition.
func (s *Server) leaseWithRetry(ctx context.Context, w *workerClient, req *ShardRequest) (*ShardResponse, *shardError) {
	attempts := 1 + s.cfg.LeaseRetries
	if s.cfg.LeaseRetries < 0 {
		attempts = 1
	}
	var last *shardError
	for a := 0; a < attempts; a++ {
		if a > 0 {
			s.stats[statLeaseRetries].Add(1)
			w.mu.Lock()
			w.retries++
			w.mu.Unlock()
		}
		resp, serr := w.shard(ctx, req)
		if serr == nil {
			if sum := ShardChecksum(resp.Batches); resp.Checksum != "" && resp.Checksum != sum {
				// A payload that parses but does not hash to its checksum is
				// silent corruption: treat the worker as failed, never merge.
				s.stats[statChecksumFails].Add(1)
				serr = &shardError{msg: fmt.Sprintf(
					"checksum mismatch: worker reported %.8s…, payload hashes to %.8s…", resp.Checksum, sum)}
			} else {
				w.noteSuccess()
				return resp, nil
			}
		}
		last = serr
		w.noteFailure(s.cfg)
		if ctx.Err() != nil {
			return nil, last
		}
		switch {
		case serr.status == http.StatusServiceUnavailable:
			// Busy worker. With a Retry-After hint, honor it (capped) and
			// retry; without one, hand the 503 straight back so the caller
			// excludes the worker from this job.
			if serr.retryAfter <= 0 || a == attempts-1 {
				return nil, last
			}
			wait := serr.retryAfter
			if wait > s.cfg.RetryAfterCap {
				wait = s.cfg.RetryAfterCap
			}
			s.stats[statRetryAfterWaits].Add(1)
			if !sleepCtx(ctx, wait) {
				return nil, last
			}
		case serr.status >= 400 && serr.status < 500:
			return nil, last
		default:
			// Transport error, 5xx, or corruption: back off and retry.
			if a == attempts-1 {
				return nil, last
			}
			if !sleepCtx(ctx, s.backoff(a)) {
				return nil, last
			}
		}
	}
	return nil, last
}

// backoff returns the jittered exponential delay before retry `attempt`:
// uniform in [d/2, 3d/2) around d = RetryBackoff << attempt. The jitter
// stream is seeded (Config.JitterSeed) so fault-injection runs replay the
// same schedule.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBackoff << uint(attempt)
	if d <= 0 {
		return 0
	}
	return s.pool.jitterAround(d)
}

// sleepCtx sleeps d or until ctx cancels; reports whether the full sleep
// completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// lease is a contiguous block of unit indices dispatched as one shard.
type lease struct{ from, to int }

// leasedWork abstracts a unit-range workload the coordinator can shard
// across the pool: job batches and sweep points share the lease queue,
// placement, failure handling and requeue logic; only the wire request and
// the in-process fallback differ.
type leasedWork struct {
	// units is the total unit count (batches or sweep points).
	units int
	// estPeak is the per-unit admission estimate placement divides worker
	// budgets by.
	estPeak int64
	// wire builds the lease request for units [from, to).
	wire func(from, to int) *ShardRequest
	// runLocal executes units [from, to) in-process — the degraded path
	// when no worker can take the work — emitting one ShardBatch per unit.
	runLocal func(ctx context.Context, from, to int, emit func(*ShardBatch) *httpError) *httpError
}

// runLeased shards the work's units across the worker registry, delivering
// each unit's ShardBatch to onUnit exactly once (a unit that somehow
// arrives twice is dropped rather than double-counted — cheap insurance on
// top of the lease bookkeeping). Eligibility is recomputed from the live
// registry at every dispatch round, so a worker that joins or revives
// mid-job starts receiving leases without a restart; the registry's change
// broadcast wakes the loop the moment that happens. Every lease round trip
// (including its retries) is bounded by Config.LeaseTimeout: a worker that
// accepts a lease and then hangs is marked dead on expiry and its lease
// requeues, instead of stalling the work forever.
func (s *Server) runLeased(ctx context.Context, work leasedWork, onUnit func(sb *ShardBatch, remote bool) *httpError) *httpError {
	n := work.units
	s.refreshPool(ctx)

	// excluded holds workers that answered 503 (still busy after the
	// Retry-After retries) or 413 (the work can never fit) for this job:
	// healthy pool members that this particular work should stop courting.
	// Death is deliberately NOT job-scoped exclusion — a worker that dies
	// and revives mid-job re-enters through eligibleWorkers.
	excluded := make(map[*workerClient]bool)

	got := make([]bool, n)
	record := func(sb *ShardBatch, remote bool) *httpError {
		if sb.Batch < 0 || sb.Batch >= n {
			return errf(http.StatusBadGateway, "worker returned unit %d outside the work's %d units", sb.Batch, n)
		}
		if got[sb.Batch] {
			return nil
		}
		got[sb.Batch] = true
		return onUnit(sb, remote)
	}
	recordLocal := func(sb *ShardBatch) *httpError { return record(sb, false) }

	// runLocal finishes leases in-process. Local execution re-enters the
	// coordinator's own admission budget, so a degraded pool degrades to
	// single-process service without overcommitting the coordinator.
	runLocal := func(ls []lease) *httpError {
		if herr := s.reserveMemory(work.estPeak); herr != nil {
			return herr
		}
		defer s.releaseMemory(work.estPeak)
		for _, l := range ls {
			if herr := work.runLocal(ctx, l.from, l.to, recordLocal); herr != nil {
				return herr
			}
		}
		return nil
	}

	// Cut the unit range into leases, sized from the slots available now
	// (later joiners share the same lease size — granularity, not
	// assignment, is fixed up front).
	totalSlots := 0
	for _, k := range s.eligibleWorkers(work.estPeak, excluded) {
		totalSlots += k
	}
	chunk := 1
	if totalSlots > 0 {
		chunk = (n + leasesPerSlot*totalSlots - 1) / (leasesPerSlot * totalSlots)
	}
	var queue []lease
	for i := 0; i < n; i += chunk {
		end := i + chunk
		if end > n {
			end = n
		}
		queue = append(queue, lease{i, end})
	}

	// Shard calls run on a child context so an aborted job cancels its
	// in-flight leases (the workers' executors stop, not just the HTTP
	// calls).
	sctx, cancelShards := context.WithCancel(ctx)
	defer cancelShards()

	type doneMsg struct {
		w    *workerClient
		l    lease
		resp *ShardResponse
		err  *shardError
	}
	done := make(chan doneMsg)
	inflight := make(map[*workerClient]int)
	inflightN := 0
	// reap lets in-flight senders finish after an abort so their
	// goroutines exit; cancelShards has already stopped their work.
	reap := func() {
		if inflightN > 0 {
			go func(k int) {
				for i := 0; i < k; i++ {
					<-done
				}
			}(inflightN)
		}
	}

	for {
		// Subscribe before computing eligibility: a join or revival between
		// the computation and the wait below closes this channel and the
		// select falls through immediately.
		changed := s.pool.subscribe()

		// Hand queued leases to the least-loaded free workers whose
		// breakers admit a lease (a half-open breaker admits exactly one
		// trial).
		denied := make(map[*workerClient]bool)
		for len(queue) > 0 {
			elig := s.eligibleWorkers(work.estPeak, excluded)
			var pick *workerClient
			for w, k := range elig {
				if denied[w] || inflight[w] >= k {
					continue
				}
				if pick == nil || inflight[w] < inflight[pick] {
					pick = w
				}
			}
			if pick == nil {
				break
			}
			if !pick.breakerTryAcquire(s.cfg) {
				denied[pick] = true
				continue
			}
			l := queue[0]
			queue = queue[1:]
			inflight[pick]++
			inflightN++
			s.stats[statShardsDispatched].Add(1)
			pick.mu.Lock()
			pick.dispatched++
			pick.inflight++
			pick.mu.Unlock()
			go func(w *workerClient, l lease) {
				// Bound the lease: a hung worker (accepted the lease, never
				// answers, connection stays open) turns into a transport
				// error at the deadline and takes the dead-worker path
				// below. The job ctx still cancels leases early; the
				// timeout only adds an upper bound over all retry attempts.
				lctx := sctx
				if s.cfg.LeaseTimeout > 0 {
					var cancel context.CancelFunc
					lctx, cancel = context.WithTimeout(sctx, s.cfg.LeaseTimeout)
					defer cancel()
				}
				resp, serr := s.leaseWithRetry(lctx, w, work.wire(l.from, l.to))
				done <- doneMsg{w: w, l: l, resp: resp, err: serr}
			}(pick, l)
		}
		if inflightN == 0 {
			if len(queue) == 0 {
				break
			}
			// No worker can take the remaining leases right now: finish
			// them locally rather than waiting for a membership change that
			// may never come.
			if herr := runLocal(queue); herr != nil {
				return herr
			}
			break
		}

		var d doneMsg
		select {
		case d = <-done:
		case <-changed:
			// Membership changed (join or revival): recompute eligibility
			// and offer the newcomer queued leases.
			continue
		}
		inflightN--
		inflight[d.w]--
		d.w.mu.Lock()
		d.w.inflight--
		d.w.mu.Unlock()
		if d.err != nil {
			if ctx.Err() != nil {
				reap()
				return errf(statusClientClosedRequest, "job cancelled: %v", ctx.Err())
			}
			s.stats[statShardsRequeued].Add(1)
			queue = append(queue, d.l)
			d.w.mu.Lock()
			d.w.failedLeases++
			d.w.requeues++
			d.w.mu.Unlock()
			switch {
			case d.err.status == http.StatusServiceUnavailable || d.err.status == http.StatusRequestEntityTooLarge:
				// The worker is healthy but cannot take this work (still at
				// capacity after the Retry-After retries, or it exceeds its
				// budget): stop leasing this work to it, leave it in the
				// pool.
				excluded[d.w] = true
			case d.err.status >= 400 && d.err.status < 500:
				// The worker rejected the work itself; re-dispatching the
				// identical request cannot succeed anywhere.
				reap()
				return errf(http.StatusBadGateway,
					"worker %s rejected lease [%d,%d): %s", d.w.base, d.l.from, d.l.to, d.err.msg)
			default:
				// Transport error (including a lease timeout), 5xx, or a
				// corrupt payload after all retries: the worker is dead for
				// now. Its unacked lease is already back in the queue; a
				// heartbeat or probe revival re-admits it — including into
				// this very job.
				s.stats[statWorkerFailures].Add(1)
				d.w.markDead()
				// Kick an asynchronous re-probe (spaced by ProbeBackoff) so
				// a static worker that merely blipped can rejoin mid-job
				// even without heartbeats.
				go s.refreshPool(sctx)
			}
			continue
		}
		for i := range d.resp.Batches {
			if herr := record(&d.resp.Batches[i], true); herr != nil {
				reap()
				return herr
			}
		}
	}

	for i, ok := range got {
		if !ok {
			return errf(http.StatusInternalServerError, "unit %d was never executed", i)
		}
	}
	return nil
}

// runDistributed shards the job's batches across the worker pool and
// merges the per-batch histograms. Matches runBatches' return contract.
func (s *Server) runDistributed(ctx context.Context, j *job, onBatch func(*batchResult) error) (map[uint64]int, int, string, string, *httpError) {
	merged := make(map[uint64]int)
	outcomes := 0
	backend, structure := "", ""
	herr := s.runLeased(ctx, leasedWork{
		units:   j.numBatches(),
		estPeak: j.estPeak,
		wire: func(from, to int) *ShardRequest {
			return &ShardRequest{Job: *j.wire, From: from, To: to}
		},
		runLocal: func(ctx context.Context, from, to int, emit func(*ShardBatch) *httpError) *httpError {
			var eherr *httpError
			_, _, _, _, herr := s.runBatches(ctx, j, from, to, func(br *batchResult) error {
				if h := emit(&ShardBatch{
					Batch:     br.index,
					Seed:      br.seed,
					Outcomes:  br.outcomes,
					Counts:    countsJSON(br.counts),
					Backend:   br.backend,
					Structure: br.structure,
				}); h != nil {
					eherr = h
					return errors.New(h.msg)
				}
				return nil
			})
			if eherr != nil {
				// Emit failures keep their own status (e.g. a client that
				// vanished mid-stream) instead of runBatches' generic wrap.
				return eherr
			}
			return herr
		},
	}, func(sb *ShardBatch, remote bool) *httpError {
		counts, herr := parseCounts(sb.Counts)
		if herr != nil {
			return herr
		}
		metrics.MergeCounts(merged, counts)
		outcomes += sb.Outcomes
		if sb.Backend != "" {
			backend, structure = sb.Backend, sb.Structure
		}
		if remote {
			// Locally executed fallback batches were already counted inside
			// runBatches; only worker-acked batches are new to the counter.
			s.stats[statBatches].Add(1)
		}
		if onBatch != nil {
			if err := onBatch(&batchResult{index: sb.Batch, seed: sb.Seed, outcomes: sb.Outcomes, counts: counts}); err != nil {
				return errf(http.StatusInternalServerError, "stream: %v", err)
			}
		}
		return nil
	})
	if herr != nil {
		return nil, 0, "", "", herr
	}
	return merged, outcomes, backend, structure, nil
}

// parseCounts decodes a wire histogram's decimal keys.
func parseCounts(in map[string]int) (map[uint64]int, *httpError) {
	out := make(map[uint64]int, len(in))
	for k, v := range in {
		key, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			return nil, errf(http.StatusBadGateway, "worker returned non-numeric outcome key %q", k)
		}
		out[key] = v
	}
	return out, nil
}
