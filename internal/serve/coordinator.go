package serve

// The coordinator side of the distributed shard protocol. A Server
// constructed with Config.Workers shards every multi-batch job across its
// worker pool: the job's batch range is cut into contiguous leases, leases
// are handed to workers up to each worker's planner-derived slot count,
// and per-batch histograms are merged as shards complete. Failure
// semantics: a worker that errors is marked dead, its unacked leases are
// re-dispatched to the remaining workers, and its health is re-probed at
// the start of later jobs; when no worker can take a job the coordinator
// finishes it locally. Determinism: batch i's histogram is a pure function
// of the job request and i (workers run batch i at BatchSeed(seed, i)),
// and the coordinator records each batch index at most once, so the merge
// is byte-identical to the single-process run whatever the worker count,
// lease placement, failure timing, or completion order.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tqsim/internal/metrics"
	"tqsim/internal/planner"
)

// leasesPerSlot sets the lease granularity: about this many leases per
// worker slot, so fast workers pick up the slack of slow ones while each
// lease still amortizes one HTTP round-trip over several batches.
const leasesPerSlot = 4

// healthCheckTimeout bounds the /v1/worker probe; a worker that cannot
// answer a capacity query this fast should not be leased trajectory work.
const healthCheckTimeout = 2 * time.Second

// probeBackoff is the minimum spacing between probes of a dead worker.
// refresh runs on the job submission path, so without it a blackholed
// worker (drops packets instead of refusing) would add healthCheckTimeout
// of latency to every multi-batch job until it recovers.
const probeBackoff = 5 * time.Second

// workerClient is the coordinator's view of one worker.
type workerClient struct {
	base string
	hc   *http.Client

	mu        sync.Mutex
	alive     bool
	info      WorkerInfo
	lastProbe time.Time
}

// pool is the coordinator's worker set.
type pool struct {
	workers []*workerClient
}

func newPool(urls []string) *pool {
	p := &pool{}
	for _, u := range urls {
		p.workers = append(p.workers, &workerClient{
			base: strings.TrimRight(u, "/"),
			// No client timeout: a shard lease legitimately runs for as
			// long as its batches take; cancellation comes from the job's
			// request context.
			hc: &http.Client{},
		})
	}
	return p
}

// refresh re-probes every worker not currently believed alive — the
// requeue-on-failure loop's recovery half: a worker marked dead by a
// failed lease rejoins the pool once it answers its health check again.
func (p *pool) refresh(ctx context.Context) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, w := range p.workers {
		w.mu.Lock()
		skip := w.alive || now.Sub(w.lastProbe) < probeBackoff
		if !skip {
			w.lastProbe = now
		}
		w.mu.Unlock()
		if skip {
			continue
		}
		wg.Add(1)
		go func(w *workerClient) {
			defer wg.Done()
			w.check(ctx)
		}(w)
	}
	wg.Wait()
}

// check probes /v1/worker and updates liveness and the capacity
// advertisement.
func (w *workerClient) check(ctx context.Context) bool {
	cctx, cancel := context.WithTimeout(ctx, healthCheckTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, w.base+"/v1/worker", nil)
	if err != nil {
		return false
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		w.markDead()
		return false
	}
	defer resp.Body.Close()
	var info WorkerInfo
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&info) != nil {
		w.markDead()
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.info = info
	w.alive = info.Worker && !info.Draining
	return w.alive
}

func (w *workerClient) markDead() {
	w.mu.Lock()
	w.alive = false
	w.mu.Unlock()
}

func (w *workerClient) snapshot() (bool, WorkerInfo) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive, w.info
}

func (p *pool) aliveCount() int {
	n := 0
	for _, w := range p.workers {
		if alive, _ := w.snapshot(); alive {
			n++
		}
	}
	return n
}

// shardError is a failed lease attempt. status 0 is a transport error
// (worker unreachable mid-lease); otherwise the HTTP status the worker
// answered.
type shardError struct {
	status int
	msg    string
}

// shard posts one lease and decodes the response.
func (w *workerClient) shard(ctx context.Context, req *ShardRequest) (*ShardResponse, *shardError) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, &shardError{msg: "marshal: " + err.Error()}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, &shardError{msg: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(hreq)
	if err != nil {
		return nil, &shardError{msg: err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, &shardError{msg: "read: " + err.Error()}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &shardError{status: resp.StatusCode, msg: strings.TrimSpace(string(raw))}
	}
	var out ShardResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, &shardError{msg: "decode: " + err.Error()}
	}
	return &out, nil
}

// lease is a contiguous block of batch indices dispatched as one shard.
type lease struct{ from, to int }

// runDistributed shards the job's batches across the worker pool and
// merges the per-batch histograms. Matches runBatches' return contract.
func (s *Server) runDistributed(ctx context.Context, j *job, onBatch func(*batchResult) error) (map[uint64]int, int, string, string, *httpError) {
	n := j.numBatches()
	s.pool.refresh(ctx)

	// Planner-driven placement: a worker may hold as many concurrent
	// leases as whole copies of the job's peak estimate fit in its
	// advertised memory budget (capped by its execution slots); a worker
	// the job can never fit on gets no leases at all.
	slots := make(map[*workerClient]int)
	totalSlots := 0
	for _, w := range s.pool.workers {
		alive, info := w.snapshot()
		if !alive {
			continue
		}
		if k := planner.WorkerSlots(j.estPeak, info.MemoryBudgetBytes, info.MaxConcurrent); k > 0 {
			slots[w] = k
			totalSlots += k
		}
	}

	merged := make(map[uint64]int)
	outcomes := 0
	backend, structure := "", ""
	got := make([]bool, n)

	// record merges one acked batch, exactly once: a batch index that
	// somehow arrives twice (it cannot, under the lease bookkeeping below,
	// but the guarantee is cheap) is dropped rather than double-counted.
	record := func(sb *ShardBatch) *httpError {
		if sb.Batch < 0 || sb.Batch >= n {
			return errf(http.StatusBadGateway, "worker returned batch %d outside the job's %d batches", sb.Batch, n)
		}
		if got[sb.Batch] {
			return nil
		}
		got[sb.Batch] = true
		counts := make(map[uint64]int, len(sb.Counts))
		for k, v := range sb.Counts {
			key, err := strconv.ParseUint(k, 10, 64)
			if err != nil {
				return errf(http.StatusBadGateway, "worker returned non-numeric outcome key %q", k)
			}
			counts[key] = v
		}
		metrics.MergeCounts(merged, counts)
		outcomes += sb.Outcomes
		s.stats[statBatches].Add(1)
		if onBatch != nil {
			if err := onBatch(&batchResult{index: sb.Batch, seed: sb.Seed, outcomes: sb.Outcomes, counts: counts}); err != nil {
				return errf(http.StatusInternalServerError, "stream: %v", err)
			}
		}
		return nil
	}

	// runLocal finishes leases in-process — the degraded path when no
	// worker can take the job (pool down, or the job fits no worker's
	// budget). Local execution re-enters the coordinator's own admission
	// budget, so a degraded pool degrades to single-process service
	// without overcommitting the coordinator.
	runLocal := func(ls []lease) *httpError {
		if herr := s.reserveMemory(j.estPeak); herr != nil {
			return herr
		}
		defer s.releaseMemory(j.estPeak)
		for _, l := range ls {
			_, _, be, st, herr := s.runBatches(ctx, j, l.from, l.to, func(br *batchResult) error {
				got[br.index] = true
				metrics.MergeCounts(merged, br.counts)
				outcomes += br.outcomes
				if onBatch != nil {
					return onBatch(br)
				}
				return nil
			})
			if herr != nil {
				return herr
			}
			backend, structure = be, st
		}
		return nil
	}

	// Cut the batch range into leases.
	chunk := 1
	if totalSlots > 0 {
		chunk = (n + leasesPerSlot*totalSlots - 1) / (leasesPerSlot * totalSlots)
	}
	var queue []lease
	for i := 0; i < n; i += chunk {
		end := i + chunk
		if end > n {
			end = n
		}
		queue = append(queue, lease{i, end})
	}

	// Shard calls run on a child context so an aborted job cancels its
	// in-flight leases (the workers' executors stop, not just the HTTP
	// calls).
	sctx, cancelShards := context.WithCancel(ctx)
	defer cancelShards()

	type doneMsg struct {
		w    *workerClient
		l    lease
		resp *ShardResponse
		err  *shardError
	}
	done := make(chan doneMsg)
	inflight := make(map[*workerClient]int)
	inflightN := 0
	// reap lets in-flight senders finish after an abort so their
	// goroutines exit; cancelShards has already stopped their work.
	reap := func() {
		if inflightN > 0 {
			go func(k int) {
				for i := 0; i < k; i++ {
					<-done
				}
			}(inflightN)
		}
	}

	for {
		// Hand queued leases to the least-loaded free workers.
		for len(queue) > 0 {
			var pick *workerClient
			for w, k := range slots {
				if inflight[w] < k && (pick == nil || inflight[w] < inflight[pick]) {
					pick = w
				}
			}
			if pick == nil {
				break
			}
			l := queue[0]
			queue = queue[1:]
			inflight[pick]++
			inflightN++
			s.stats[statShardsDispatched].Add(1)
			go func(w *workerClient, l lease) {
				resp, serr := w.shard(sctx, &ShardRequest{Job: *j.wire, From: l.from, To: l.to})
				done <- doneMsg{w: w, l: l, resp: resp, err: serr}
			}(pick, l)
		}
		if inflightN == 0 {
			if len(queue) == 0 {
				break
			}
			if herr := runLocal(queue); herr != nil {
				return nil, 0, "", "", herr
			}
			break
		}

		d := <-done
		inflightN--
		inflight[d.w]--
		if d.err != nil {
			if ctx.Err() != nil {
				reap()
				return nil, 0, "", "", errf(statusClientClosedRequest, "job cancelled: %v", ctx.Err())
			}
			s.stats[statShardsRequeued].Add(1)
			queue = append(queue, d.l)
			switch {
			case d.err.status == http.StatusServiceUnavailable || d.err.status == http.StatusRequestEntityTooLarge:
				// The worker is healthy but cannot take this job (at
				// capacity, or the job exceeds its budget): stop leasing
				// this job to it, leave it in the pool.
				delete(slots, d.w)
			case d.err.status >= 400 && d.err.status < 500:
				// The worker rejected the job itself; re-dispatching the
				// identical request cannot succeed anywhere.
				reap()
				return nil, 0, "", "", errf(http.StatusBadGateway,
					"worker %s rejected lease [%d,%d): %s", d.w.base, d.l.from, d.l.to, d.err.msg)
			default:
				// Transport error or 5xx: the worker is dead. Its unacked
				// lease is already back in the queue; pool.refresh re-probes
				// it on later jobs.
				s.stats[statWorkerFailures].Add(1)
				d.w.markDead()
				delete(slots, d.w)
			}
			continue
		}
		for i := range d.resp.Batches {
			if herr := record(&d.resp.Batches[i]); herr != nil {
				reap()
				return nil, 0, "", "", herr
			}
		}
		backend, structure = d.resp.Backend, d.resp.Structure
	}

	for i, ok := range got {
		if !ok {
			return nil, 0, "", "", errf(http.StatusInternalServerError, "batch %d was never executed", i)
		}
	}
	return merged, outcomes, backend, structure, nil
}
