package serve

// The sweep service layer: POST /v1/sweeps accepts a grid spec (circuit ×
// noise × shots × partitioner × repeats), admission-controls it with the
// planner estimates the sweep engine computed during Prepare, and executes
// it with the engine's cross-point reuse — streaming one NDJSON line per
// point by default. A coordinator shards point ranges across its worker
// pool through the same lease machinery as job batches (runLeased); point
// i's histogram is a pure function of (spec, i) at the derived seed
// rng.SeedAt(seed, i), so the reassembled sweep is byte-identical to a
// single-process run whatever the worker count, lease placement or failure
// timing.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sort"
	"time"

	"tqsim"
	"tqsim/internal/sweep"
)

// SweepRequest is the POST /v1/sweeps body: the sweep spec (see
// internal/sweep.Spec for the axis fields) plus service options.
type SweepRequest struct {
	sweep.Spec
	// Stream selects NDJSON per-point streaming (the default); set false
	// for one JSON body after the sweep completes.
	Stream *bool `json:"stream,omitempty"`
}

// SweepPointJSON is one executed point on the wire.
type SweepPointJSON struct {
	Index      int            `json:"index"`
	Circuit    string         `json:"circuit"`
	Noise      string         `json:"noise"`
	Shots      int            `json:"shots"`
	Partition  string         `json:"partition,omitempty"`
	Rep        int            `json:"rep"`
	Seed       uint64         `json:"seed"`
	Backend    string         `json:"backend,omitempty"`
	Structure  string         `json:"structure,omitempty"`
	Outcomes   int            `json:"outcomes"`
	Counts     map[string]int `json:"counts"`
	Ops        int64          `json:"ops,omitempty"`
	PrefixHits int64          `json:"prefix_hits,omitempty"`
	Fidelity   *float64       `json:"fidelity,omitempty"`
	ElapsedMS  float64        `json:"elapsed_ms,omitempty"`
}

// SweepResponse is the non-streaming POST /v1/sweeps body.
type SweepResponse struct {
	Points      int              `json:"points"`
	Results     []SweepPointJSON `json:"results"`
	Ops         int64            `json:"ops"`
	PrefixHits  int64            `json:"prefix_hits"`
	ElapsedMS   float64          `json:"elapsed_ms"`
	Distributed bool             `json:"distributed,omitempty"`
}

// sweepLine is one NDJSON record of a streaming sweep. Point lines arrive
// in completion order (nondeterministic at Concurrency > 1 or when
// distributed); each line's content and the set of lines are deterministic.
// The embedded pointer keeps header/done/error lines free of zero-valued
// point fields (a nil embedded pointer contributes nothing to the JSON).
type sweepLine struct {
	Type string `json:"type"` // "sweep" | "point" | "done" | "error"
	*SweepPointJSON
	Points          int     `json:"points,omitempty"`
	TotalOps        int64   `json:"total_ops,omitempty"`
	TotalPrefixHits int64   `json:"total_prefix_hits,omitempty"`
	TotalElapsedMS  float64 `json:"total_elapsed_ms,omitempty"`
	Distributed     bool    `json:"distributed,omitempty"`
	Error           string  `json:"error,omitempty"`
}

// sweepJob is a validated, fully planned sweep ready to execute.
type sweepJob struct {
	prep    *tqsim.PreparedSweep
	wire    *SweepRequest // spec with host-derived planner inputs pinned
	estPeak int64
	stream  bool
}

// prepareSweep validates and plans a sweep request. The two planner inputs
// that default from host/server state — memory budget and worker count —
// are pinned into the spec first, so a worker re-preparing the wire spec
// resolves every point's "auto" decision to the same engine the
// coordinator did (the same pinning the job path does).
func (s *Server) prepareSweep(req *SweepRequest) (*sweepJob, *httpError) {
	if req.Spec.MemoryBudgetBytes == 0 {
		req.Spec.MemoryBudgetBytes = s.cfg.MemoryBudgetBytes
	}
	if req.Spec.Parallelism == 0 {
		req.Spec.Parallelism = runtime.GOMAXPROCS(0)
	}
	for _, n := range req.Spec.Shots {
		if n > s.cfg.MaxShots {
			return nil, errf(http.StatusRequestEntityTooLarge,
				"shots %d exceeds the server limit %d", n, s.cfg.MaxShots)
		}
	}
	prep, err := tqsim.PrepareSweep(&req.Spec)
	if err != nil {
		var pe *sweep.PlanError
		if errors.As(err, &pe) {
			s.stats[statMemory].Add(1)
			return nil, errf(http.StatusRequestEntityTooLarge, "planner: %v", err)
		}
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	n := prep.NumPoints()
	if n > s.cfg.MaxSweepPoints {
		return nil, errf(http.StatusRequestEntityTooLarge,
			"sweep expands to %d points, above the server limit %d", n, s.cfg.MaxSweepPoints)
	}

	// Admission: one point's peak times the in-process point concurrency
	// (points beyond it never run simultaneously here; distributed points
	// reserve on the workers that run them).
	conc := prep.Spec().Concurrency
	if conc < 1 {
		conc = 1
	}
	if conc > n {
		conc = n
	}
	sj := &sweepJob{
		prep:    prep,
		estPeak: prep.MaxEstPeakBytes() * int64(conc),
		stream:  req.Stream == nil || *req.Stream,
	}
	// Route the sweep's ideal-prefix snapshots through the cross-job cache:
	// points whose circuit prefixes match an earlier job or sweep adopt the
	// already-computed boundary states instead of rebuilding them.
	if s.snapCache != nil {
		prep.UseSnapshotCache(s.snapCache)
	}
	wire := SweepRequest{Spec: *prep.Spec()}
	stream := false
	wire.Stream = &stream
	sj.wire = &wire
	return sj, nil
}

// preparedSweepForLease returns the prepared sweep for a shard lease,
// served from the worker's small LRU when an earlier lease of the same
// sweep already prepared it. A coordinator cuts one sweep into several
// leases per worker; without the cache every lease would re-expand the
// grid, re-run every planner decision, and rebuild the lazily built
// ideal-prefix snapshots the previous lease already paid for. Safe to
// share: a Prepared is immutable after Prepare apart from sync.Once-guarded
// lazy state, so concurrent leases may run ranges of one instance.
func (s *Server) preparedSweepForLease(req *SweepRequest) (*sweepJob, *httpError) {
	// Key by the pinned wire spec: the coordinator sends every lease of a
	// sweep with the identical (already-pinned) spec, so re-pinning here is
	// a no-op and the canonical JSON is stable across leases.
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "sweep lease: %v", err)
	}
	key := string(raw)
	s.sweepMu.Lock()
	sj, ok := s.sweepPreps.get(key)
	s.sweepMu.Unlock()
	if ok {
		return sj, nil
	}
	sj, herr := s.prepareSweep(req)
	if herr != nil {
		return nil, herr
	}
	s.sweepMu.Lock()
	s.sweepPreps.add(key, sj)
	s.sweepMu.Unlock()
	return sj, nil
}

func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.Draining() {
		s.rejectDraining(w)
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	sj, herr := s.prepareSweep(&req)
	if herr != nil {
		s.stats[statFailed].Add(1)
		writeError(w, herr.status, herr.msg)
		return
	}
	// Store lookup before the queue, as on the job path: a stored sweep
	// replays without a slot, without budget, and without running a point.
	key := ""
	if s.results != nil {
		if k, ok := sweepResultKey(sj); ok {
			key = k
			if blob, hit := s.results.Get(key); hit && s.replaySweep(w, sj, blob) {
				s.stats[statResultsHits].Add(1)
				s.stats[statSweepsCompleted].Add(1)
				s.recordLatency(start)
				return
			}
			s.stats[statResultsMisses].Add(1)
		}
	}
	ctx := r.Context()
	if err := s.acquire(ctx); err != nil {
		if errors.Is(err, errQueueFull) {
			s.stats[statQueueFull].Add(1)
			writeError(w, http.StatusTooManyRequests, "queue full")
			return
		}
		// Client gone while queued: canceled, nothing to write.
		s.stats[statCanceled].Add(1)
		return
	}
	defer s.release()

	// Multi-point sweeps shard across the worker pool when one is
	// configured; memory is reserved locally only when executing locally.
	distributed := s.pool != nil && sj.prep.NumPoints() > 1
	if !distributed {
		if herr := s.reserveMemory(sj.estPeak); herr != nil {
			writeError(w, herr.status, herr.msg)
			return
		}
		defer s.releaseMemory(sj.estPeak)
	}

	if sj.stream {
		s.runSweepStreaming(ctx, w, sj, distributed, key, start)
		return
	}
	resp, herr := s.runSweep(ctx, sj, distributed, nil)
	if herr != nil {
		s.countJobError(ctx, herr)
		writeError(w, herr.status, herr.msg)
		return
	}
	s.stats[statSweepsCompleted].Add(1)
	s.recordLatency(start)
	if key != "" {
		s.storeSweep(key, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// runSweep executes the sweep — locally or sharded — collecting the wire
// form of every point. onPoint, when non-nil, observes each point as it
// completes (the streaming hook).
func (s *Server) runSweep(ctx context.Context, sj *sweepJob, distributed bool, onPoint func(*SweepPointJSON) error) (*SweepResponse, *httpError) {
	start := time.Now()
	resp := &SweepResponse{Points: sj.prep.NumPoints(), Distributed: distributed}
	record := func(pj *SweepPointJSON) *httpError {
		resp.Results = append(resp.Results, *pj)
		resp.Ops += pj.Ops
		resp.PrefixHits += pj.PrefixHits
		s.stats[statSweepPoints].Add(1)
		if onPoint != nil {
			if err := onPoint(pj); err != nil {
				return errf(http.StatusInternalServerError, "stream: %v", err)
			}
		}
		return nil
	}

	onUnit := func(sb *ShardBatch, _ bool) *httpError {
		return record(s.sweepPointFromWire(sj, sb))
	}
	var herr *httpError
	if distributed {
		herr = s.runLeased(ctx, leasedWork{
			units: sj.prep.NumPoints(),
			// The concurrency-scaled estimate: placement divides worker
			// budgets by it (conservative — each lease may run up to
			// Concurrency points at once), and the local fallback reserves
			// it before runSweepRange runs that many points concurrently.
			estPeak: sj.estPeak,
			wire: func(from, to int) *ShardRequest {
				return &ShardRequest{Sweep: sj.wire, From: from, To: to}
			},
			runLocal: func(ctx context.Context, from, to int, emit func(*ShardBatch) *httpError) *httpError {
				return s.runSweepRange(ctx, sj, from, to, emit)
			},
		}, onUnit)
	} else {
		herr = s.runSweepRange(ctx, sj, 0, sj.prep.NumPoints(), func(sb *ShardBatch) *httpError {
			return onUnit(sb, false)
		})
	}
	if herr != nil {
		return nil, herr
	}
	sort.Slice(resp.Results, func(i, j int) bool { return resp.Results[i].Index < resp.Results[j].Index })
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp, nil
}

// runSweepRange executes points [from, to) in-process through the prepared
// sweep, emitting each point in wire form. Emit failures keep their own
// status (a vanished streaming client books as canceled, not failed).
func (s *Server) runSweepRange(ctx context.Context, sj *sweepJob, from, to int, emit func(*ShardBatch) *httpError) *httpError {
	var eherr *httpError
	_, err := tqsim.RunPreparedSweep(ctx, sj.prep, from, to, func(pr *tqsim.SweepPointResult) error {
		sb := &ShardBatch{
			Batch:      pr.Index,
			Seed:       pr.Seed,
			Outcomes:   pr.Outcomes,
			Counts:     countsJSON(pr.Counts),
			Backend:    pr.Backend,
			Structure:  pr.Structure,
			Ops:        pr.GateApplications,
			PrefixHits: pr.PrefixReuseHits,
			ElapsedMS:  float64(pr.Elapsed.Microseconds()) / 1000,
		}
		if pr.HasFidelity {
			f := pr.Fidelity
			sb.Fidelity = &f
		}
		if h := emit(sb); h != nil {
			eherr = h
			return errors.New(h.msg)
		}
		return nil
	})
	if eherr != nil {
		return eherr
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return errf(statusClientClosedRequest, "sweep cancelled: %v", err)
		}
		return errf(http.StatusUnprocessableEntity, "sweep: %v", err)
	}
	return nil
}

// sweepPointFromWire rebuilds a point's wire form from a ShardBatch plus
// the coordinator's own expansion (points are deterministic in the spec, so
// the metadata never crosses the wire).
func (s *Server) sweepPointFromWire(sj *sweepJob, sb *ShardBatch) *SweepPointJSON {
	pt := sj.prep.Point(sb.Batch)
	return &SweepPointJSON{
		Index:      sb.Batch,
		Circuit:    sj.prep.Circuit(sb.Batch).Name,
		Noise:      pt.Noise.Label(),
		Shots:      pt.Shots,
		Partition:  pt.Partition.Label(),
		Rep:        pt.Rep,
		Seed:       sb.Seed,
		Backend:    sb.Backend,
		Structure:  sb.Structure,
		Outcomes:   sb.Outcomes,
		Counts:     sb.Counts,
		Ops:        sb.Ops,
		PrefixHits: sb.PrefixHits,
		Fidelity:   sb.Fidelity,
		ElapsedMS:  sb.ElapsedMS,
	}
}

// runSweepStreaming writes the NDJSON stream: a sweep header, one line per
// point in completion order, and a final done line with totals. A
// non-empty storeKey records the finished sweep in the result store; start
// is the request receipt time for the latency histogram.
func (s *Server) runSweepStreaming(ctx context.Context, w http.ResponseWriter, sj *sweepJob, distributed bool, storeKey string, start time.Time) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(line *sweepLine) error {
		if err := enc.Encode(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	// Header emit failure = client already gone: abort before any point
	// runs (the same contract as the job stream's plan header).
	if err := emit(&sweepLine{Type: "sweep", Points: sj.prep.NumPoints(), Distributed: distributed}); err != nil {
		s.stats[statCanceled].Add(1)
		return
	}
	resp, herr := s.runSweep(ctx, sj, distributed, func(pj *SweepPointJSON) error {
		return emit(&sweepLine{Type: "point", SweepPointJSON: pj})
	})
	if herr != nil {
		s.countJobError(ctx, herr)
		_ = emit(&sweepLine{Type: "error", Error: herr.msg})
		return
	}
	s.stats[statSweepsCompleted].Add(1)
	s.recordLatency(start)
	if storeKey != "" {
		s.storeSweep(storeKey, resp)
	}
	_ = emit(&sweepLine{
		Type:            "done",
		Points:          resp.Points,
		TotalOps:        resp.Ops,
		TotalPrefixHits: resp.PrefixHits,
		TotalElapsedMS:  resp.ElapsedMS,
	})
}
