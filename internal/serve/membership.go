package serve

// Elastic fleet membership. The coordinator keeps a registry of workers —
// seeded from the static Config.Workers list and grown by self-registration
// (POST /v1/workers) — with a per-worker liveness state machine:
//
//	alive ──(heartbeat stale > SuspectAfter)──▶ suspect
//	suspect ──(stale > DeadAfter, or a lease/probe failure)──▶ dead
//	dead ──(heartbeat or successful probe)──▶ alive   (a "revival")
//
// Liveness is evaluated lazily from timestamps, so the registry needs no
// background goroutine: a worker's effective state is computed at each
// dispatch round from its base status plus the age of its last sign of
// life (heartbeat, successful probe, or completed lease). Workers that
// joined by announcing themselves are subject to the age rules; workers
// from the static list that never heartbeat keep the original probe-based
// semantics so a pool of plain `tqsimd -worker` processes behaves as
// before.
//
// Orthogonal to liveness, each worker carries a circuit breaker driven by
// lease outcomes: BreakerThreshold consecutive failures open it (no leases
// dispatched), after BreakerCooldown it half-opens and admits a single
// trial lease whose success closes it again. Liveness answers "is the
// process there"; the breaker answers "is it returning good results" — a
// worker that heartbeats cheerfully while corrupting every payload is held
// out by the breaker alone.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"tqsim/internal/rng"
)

// Worker liveness states, as reported in /v1/stats.
const (
	workerAlive   = "alive"
	workerSuspect = "suspect"
	workerDead    = "dead"
)

// Circuit-breaker states, as reported in /v1/stats.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// workerClient is the coordinator's view of one fleet member.
type workerClient struct {
	base string
	hc   *http.Client

	mu sync.Mutex
	// Liveness. status is the base state (alive/dead); suspect and
	// age-based death are derived from lastSeen at read time. elastic marks
	// workers that have announced themselves at least once — only they are
	// subject to heartbeat-age transitions.
	status    string
	elastic   bool
	lastSeen  time.Time // last heartbeat, successful probe, or lease success
	lastProbe time.Time
	info      WorkerInfo
	revivals  uint64

	// Circuit breaker.
	breaker       string
	consecFails   int
	breakerOpened time.Time
	halfOpenTrial bool

	// Per-worker counters surfaced in /v1/stats.
	dispatched, completed, failedLeases, retries, requeues uint64
	inflight                                               int
}

// registry is the coordinator's elastic worker set.
type registry struct {
	cfg Config

	mu      sync.Mutex
	workers []*workerClient
	byURL   map[string]*workerClient
	// changed is a broadcast channel: closed and replaced whenever a worker
	// joins or revives, so in-flight dispatch loops wake up and offer the
	// newcomer work mid-job.
	changed chan struct{}

	// jit is the seeded backoff-jitter stream (Config.JitterSeed), so a
	// fault-injection run replays the identical retry schedule.
	jmu sync.Mutex
	jit *rng.RNG
}

func newRegistry(cfg Config) *registry {
	r := &registry{
		cfg:     cfg,
		byURL:   make(map[string]*workerClient),
		changed: make(chan struct{}),
		jit:     rng.New(cfg.JitterSeed),
	}
	for _, u := range cfg.Workers {
		r.addLocked(strings.TrimRight(u, "/"))
	}
	return r
}

// jitterAround draws a duration uniform in [d/2, 3d/2).
func (r *registry) jitterAround(d time.Duration) time.Duration {
	r.jmu.Lock()
	defer r.jmu.Unlock()
	return d/2 + time.Duration(r.jit.Uint64()%uint64(d))
}

func (r *registry) addLocked(base string) *workerClient {
	if w, ok := r.byURL[base]; ok {
		return w
	}
	w := &workerClient{
		base: base,
		// Unproven until the first probe or heartbeat: suspect gets no
		// leases but is probed by refreshPool at the next job.
		status:  workerSuspect,
		breaker: breakerClosed,
		// No client timeout: a shard lease legitimately runs for as long as
		// its batches take; cancellation comes from the job's request
		// context (plus Config.LeaseTimeout).
		hc: &http.Client{Transport: r.cfg.Transport},
	}
	r.workers = append(r.workers, w)
	r.byURL[base] = w
	return w
}

// subscribe returns a channel closed at the next membership change. Callers
// must subscribe before computing eligibility so a join between the
// computation and the wait is not missed.
func (r *registry) subscribe() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.changed
}

func (r *registry) notifyLocked() {
	close(r.changed)
	r.changed = make(chan struct{})
}

// notify broadcasts a membership change to all subscribed dispatch loops.
func (r *registry) notify() {
	r.mu.Lock()
	r.notifyLocked()
	r.mu.Unlock()
}

// announce handles one join-or-heartbeat: it registers the worker if new,
// refreshes its capacity advertisement and last-seen time, and revives it
// if it was dead. Returns (joined, revived).
func (r *registry) announce(a *WorkerAnnounce) (bool, bool) {
	base := strings.TrimRight(a.URL, "/")
	r.mu.Lock()
	defer r.mu.Unlock()
	w, known := r.byURL[base]
	if !known {
		w = r.addLocked(base)
	}
	w.mu.Lock()
	w.elastic = true
	w.info = a.Info
	w.lastSeen = time.Now()
	revived := w.status == workerDead && known
	w.status = workerAlive
	if revived {
		w.revivals++
	}
	w.mu.Unlock()
	if !known || revived {
		r.notifyLocked()
	}
	return !known, revived
}

func (r *registry) snapshot() []*workerClient {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*workerClient(nil), r.workers...)
}

// state computes the worker's effective liveness state.
func (w *workerClient) state(cfg Config) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stateLocked(cfg, time.Now())
}

func (w *workerClient) stateLocked(cfg Config, now time.Time) string {
	if w.status == workerDead {
		return workerDead
	}
	if !w.elastic {
		// Static workers never heartbeat; their liveness comes from probes
		// and lease outcomes alone.
		return w.status
	}
	age := now.Sub(w.lastSeen)
	switch {
	case age > cfg.DeadAfter:
		return workerDead
	case age > cfg.SuspectAfter:
		return workerSuspect
	default:
		return w.status
	}
}

// markDead records a lease or probe failure severe enough to pull the
// worker from dispatch until it heartbeats or answers a probe again.
func (w *workerClient) markDead() {
	w.mu.Lock()
	w.status = workerDead
	w.mu.Unlock()
}

// seen records a sign of life (successful probe or lease).
func (w *workerClient) seen() {
	w.mu.Lock()
	w.lastSeen = time.Now()
	w.mu.Unlock()
}

func (w *workerClient) snapshotInfo() WorkerInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.info
}

// --- circuit breaker -------------------------------------------------------

// breakerTryAcquire reports whether the breaker admits a lease right now,
// atomically claiming the half-open trial slot when it does. Threshold <= 0
// disables the breaker.
func (w *workerClient) breakerTryAcquire(cfg Config) bool {
	if cfg.BreakerThreshold <= 0 {
		return true
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	switch w.breaker {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(w.breakerOpened) < cfg.BreakerCooldown {
			return false
		}
		w.breaker = breakerHalfOpen
		w.halfOpenTrial = true
		return true
	default: // half-open
		if w.halfOpenTrial {
			return false
		}
		w.halfOpenTrial = true
		return true
	}
}

// noteSuccess records a successful lease: the breaker closes, the failure
// streak resets, and the worker counts as recently seen.
func (w *workerClient) noteSuccess() {
	w.mu.Lock()
	w.breaker = breakerClosed
	w.consecFails = 0
	w.halfOpenTrial = false
	w.lastSeen = time.Now()
	w.completed++
	w.mu.Unlock()
}

// noteFailure records one failed lease attempt; at the threshold (or on a
// failed half-open trial) the breaker opens.
func (w *workerClient) noteFailure(cfg Config) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.consecFails++
	if cfg.BreakerThreshold <= 0 {
		return
	}
	if w.breaker == breakerHalfOpen || w.consecFails >= cfg.BreakerThreshold {
		w.breaker = breakerOpen
		w.breakerOpened = time.Now()
		w.halfOpenTrial = false
	}
}

// --- coordinator endpoints -------------------------------------------------

// handleWorkerJoin serves POST /v1/workers: worker self-registration and
// heartbeats. The same request both joins and refreshes — a worker simply
// announces itself on a timer and the registry derives join/heartbeat/
// revival from its current state.
func (s *Server) handleWorkerJoin(w http.ResponseWriter, r *http.Request) {
	if s.pool == nil {
		writeError(w, http.StatusNotFound,
			"not a coordinator: start tqsimd with -workers or -accept-workers to form a fleet")
		return
	}
	var a WorkerAnnounce
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		writeError(w, http.StatusBadRequest, "bad announce body: "+err.Error())
		return
	}
	u, err := url.Parse(a.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeError(w, http.StatusBadRequest, "announce url must be an absolute http(s) base URL")
		return
	}
	joined, revived := s.pool.announce(&a)
	if joined {
		s.stats[statWorkersJoined].Add(1)
	}
	if revived {
		s.stats[statWorkersRevived].Add(1)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": true,
		// Heartbeat pacing hint: comfortably inside the suspect window.
		"heartbeat_interval_ms": s.cfg.SuspectAfter.Milliseconds() / 3,
	})
}

// --- worker-side heartbeat loop --------------------------------------------

// Announce posts one join/heartbeat for this server to a coordinator,
// advertising the given base URL. Safe to call on any schedule; the
// coordinator treats every announce as both registration and heartbeat.
func (s *Server) Announce(ctx context.Context, coordinator, advertise string) error {
	body, err := json.Marshal(&WorkerAnnounce{URL: advertise, Info: s.workerInfo()})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(coordinator, "/")+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errf(resp.StatusCode, "announce rejected: %s", resp.Status)
	}
	return nil
}

// JoinFleet announces this worker to a coordinator immediately and then
// heartbeats every interval until ctx is cancelled. Announce failures are
// retried at the same cadence — a coordinator restart loses its registry,
// and the steady heartbeat re-registers the worker automatically. onErr,
// when non-nil, observes announce errors (cmd/tqsimd logs them).
func (s *Server) JoinFleet(ctx context.Context, coordinator, advertise string, interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = defaultHeartbeatInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if err := s.Announce(ctx, coordinator, advertise); err != nil && onErr != nil && ctx.Err() == nil {
			onErr(err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// defaultHeartbeatInterval paces JoinFleet when the caller does not choose:
// one third of the default suspect window.
const defaultHeartbeatInterval = 1500 * time.Millisecond

// workerInfo builds this server's capacity advertisement.
func (s *Server) workerInfo() WorkerInfo {
	return WorkerInfo{
		Worker:            s.cfg.WorkerMode,
		MaxConcurrent:     s.cfg.MaxConcurrent,
		MemoryBudgetBytes: s.cfg.MemoryBudgetBytes,
		Draining:          s.Draining(),
	}
}

// WorkerStat is one registry entry in the /v1/stats payload.
type WorkerStat struct {
	URL   string `json:"url"`
	State string `json:"state"` // alive | suspect | dead
	// Elastic marks workers that self-registered (subject to heartbeat-age
	// liveness) as opposed to the static -workers list.
	Elastic bool `json:"elastic,omitempty"`
	// HeartbeatAgeMS is the age of the last sign of life (heartbeat,
	// successful probe or lease); -1 before the first one.
	HeartbeatAgeMS float64 `json:"heartbeat_age_ms"`
	Breaker        string  `json:"breaker"` // closed | open | half-open
	ConsecFails    int     `json:"consecutive_failures,omitempty"`
	Revivals       uint64  `json:"revivals,omitempty"`
	// Lease accounting: dispatched/completed/failed leases, retry attempts,
	// requeues attributed to this worker, and current in-flight leases.
	LeasesDispatched uint64 `json:"leases_dispatched"`
	LeasesCompleted  uint64 `json:"leases_completed"`
	LeasesFailed     uint64 `json:"leases_failed"`
	Retries          uint64 `json:"retries"`
	Requeues         uint64 `json:"requeues"`
	InFlight         int    `json:"in_flight"`
	// Utilization is in-flight leases over the worker's advertised
	// execution slots (0 when unknown).
	Utilization float64 `json:"utilization"`
}

// workerStats renders the registry for /v1/stats.
func (s *Server) workerStats() []WorkerStat {
	if s.pool == nil {
		return nil
	}
	var out []WorkerStat
	now := time.Now()
	for _, w := range s.pool.snapshot() {
		w.mu.Lock()
		ws := WorkerStat{
			URL:              w.base,
			State:            w.stateLocked(s.cfg, now),
			Elastic:          w.elastic,
			HeartbeatAgeMS:   -1,
			Breaker:          w.breaker,
			ConsecFails:      w.consecFails,
			Revivals:         w.revivals,
			LeasesDispatched: w.dispatched,
			LeasesCompleted:  w.completed,
			LeasesFailed:     w.failedLeases,
			Retries:          w.retries,
			Requeues:         w.requeues,
			InFlight:         w.inflight,
		}
		if !w.lastSeen.IsZero() {
			ws.HeartbeatAgeMS = float64(now.Sub(w.lastSeen).Microseconds()) / 1000
		}
		if slots := w.info.MaxConcurrent; slots > 0 {
			ws.Utilization = float64(w.inflight) / float64(slots)
		}
		w.mu.Unlock()
		out = append(out, ws)
	}
	return out
}
