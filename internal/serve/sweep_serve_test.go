package serve

// Service-layer sweep suite plus the serve-reliability regressions of this
// PR: /v1/sweeps single-process and streaming identity, distributed
// point-sharding identity and failover, the stalling-worker lease timeout,
// the DrainWait completion signal, and the streaming plan-header abort.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"tqsim"
)

func sweepReq() *SweepRequest {
	stream := false
	return &SweepRequest{
		Spec: tqsim.SweepSpec{
			Circuit: "qft_n8",
			Noise: []tqsim.SweepNoisePoint{
				{P1: 0.0005, P2: 0.002},
				{Name: "DC"},
			},
			Shots:    []int{200, 300},
			Repeats:  2,
			Seed:     9,
			CopyCost: 5,
			Backend:  "statevec",
		},
		Stream: &stream,
	}
}

// postSweep posts a sweep and decodes the non-streaming response.
func postSweep(t *testing.T, url string, req *SweepRequest) *SweepResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep failed: %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return &sr
}

// TestSweepEndpointIdentity: the endpoint's per-point histograms are
// byte-identical to standalone tqsim.RunTQSim runs at the derived seeds.
func TestSweepEndpointIdentity(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	sr := postSweep(t, ts.URL, sweepReq())
	if sr.Points != 8 || len(sr.Results) != 8 {
		t.Fatalf("got %d/%d points, want 8", sr.Points, len(sr.Results))
	}
	if sr.PrefixHits == 0 {
		t.Error("endpoint sweep reported no prefix reuse")
	}

	c := tqsim.BenchmarkByName("qft_n8")
	for _, pj := range sr.Results {
		var m *tqsim.NoiseModel
		if pj.Noise == "DC" {
			m = tqsim.SycamoreNoise()
		} else {
			m = tqsim.DepolarizingNoise(0.0005, 0.002)
		}
		ref, err := tqsim.RunTQSim(c, m, pj.Shots, tqsim.Options{
			Seed: pj.Seed, CopyCost: 5, Backend: "statevec",
		})
		if err != nil {
			t.Fatal(err)
		}
		sameJSONCounts(t, "point "+strconv.Itoa(pj.Index), countsJSON(ref.Counts), pj.Counts)
	}
}

// TestSweepEndpointStreaming checks the NDJSON shape: a sweep header, one
// point line per grid cell, a done line with matching totals.
func TestSweepEndpointStreaming(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	req := sweepReq()
	req.Stream = nil // default is streaming
	req.Fidelity = true
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var header, done *sweepLine
	points := 0
	var opsSum int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line sweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "sweep":
			l := line
			header = &l
		case "point":
			points++
			if line.SweepPointJSON == nil {
				t.Fatalf("point line carries no point payload: %q", sc.Text())
			}
			opsSum += line.Ops
			if line.Fidelity == nil {
				t.Errorf("point %d: fidelity requested but missing", line.Index)
			}
		case "done":
			l := line
			done = &l
		case "error":
			t.Fatalf("stream error: %s", line.Error)
		}
	}
	if header == nil || header.Points != 8 {
		t.Fatalf("bad sweep header: %+v", header)
	}
	if points != 8 {
		t.Fatalf("streamed %d point lines, want 8", points)
	}
	if done == nil || done.TotalOps != opsSum {
		t.Fatalf("done totals disagree with point lines: %+v vs ops %d", done, opsSum)
	}
	if done.SweepPointJSON != nil || header.SweepPointJSON != nil {
		t.Error("header/done lines must not carry zero-valued point fields")
	}
}

// TestDistributedSweepIdentity shards a sweep across 1–3 workers and checks
// every worker count reassembles the identical per-point histograms.
func TestDistributedSweepIdentity(t *testing.T) {
	ref := func() map[int]map[string]int {
		ts := httptest.NewServer(New(Config{}))
		defer ts.Close()
		out := map[int]map[string]int{}
		for _, pj := range postSweep(t, ts.URL, sweepReq()).Results {
			out[pj.Index] = pj.Counts
		}
		return out
	}()

	for _, workers := range []int{1, 2, 3} {
		var urls []string
		var servers []*httptest.Server
		for i := 0; i < workers; i++ {
			ws := httptest.NewServer(New(Config{WorkerMode: true}))
			servers = append(servers, ws)
			urls = append(urls, ws.URL)
		}
		coord := New(Config{Workers: urls})
		cts := httptest.NewServer(coord)

		sr := postSweep(t, cts.URL, sweepReq())
		if !sr.Distributed {
			t.Errorf("%d workers: sweep did not distribute", workers)
		}
		if len(sr.Results) != len(ref) {
			t.Fatalf("%d workers: %d points, want %d", workers, len(sr.Results), len(ref))
		}
		for _, pj := range sr.Results {
			sameJSONCounts(t, "workers="+strconv.Itoa(workers)+" point "+strconv.Itoa(pj.Index),
				ref[pj.Index], pj.Counts)
		}
		st := coord.Snapshot()
		if st.ShardsDispatched == 0 {
			t.Errorf("%d workers: no shards dispatched", workers)
		}
		cts.Close()
		for _, ws := range servers {
			ws.Close()
		}
	}
}

// TestDistributedSweepWorkerFailover kills a worker after its first sweep
// lease; the re-dispatched points must still reassemble identically.
func TestDistributedSweepWorkerFailover(t *testing.T) {
	ref := func() map[int]map[string]int {
		ts := httptest.NewServer(New(Config{}))
		defer ts.Close()
		out := map[int]map[string]int{}
		for _, pj := range postSweep(t, ts.URL, sweepReq()).Results {
			out[pj.Index] = pj.Counts
		}
		return out
	}()

	killable := &killableWorker{inner: New(Config{WorkerMode: true})}
	kts := httptest.NewServer(killable)
	defer kts.Close()
	healthy := httptest.NewServer(New(Config{WorkerMode: true}))
	defer healthy.Close()

	coord := New(Config{Workers: []string{kts.URL, healthy.URL}})
	cts := httptest.NewServer(coord)
	defer cts.Close()

	sr := postSweep(t, cts.URL, sweepReq())
	for _, pj := range sr.Results {
		sameJSONCounts(t, "failover point "+strconv.Itoa(pj.Index), ref[pj.Index], pj.Counts)
	}
	if !killable.killed.Load() {
		t.Skip("kill never triggered (all leases landed on the healthy worker)")
	}
	if coord.Snapshot().WorkerFailures == 0 {
		t.Error("worker failure not counted")
	}
}

// stallingWorker accepts shard leases and then hangs until the request
// context dies — the failure mode the lease timeout exists for: the TCP
// connection stays open, no bytes ever come back.
type stallingWorker struct {
	inner   http.Handler
	stalled chan struct{}
}

func (sw *stallingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" {
		// Drain the body first: net/http only detects a client disconnect
		// (and cancels r.Context()) once the request body is consumed, so
		// an unread body would leave this handler stuck past the test.
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case sw.stalled <- struct{}{}:
		default:
		}
		<-r.Context().Done()
		return
	}
	sw.inner.ServeHTTP(w, r)
}

// TestLeaseTimeoutRequeuesStalledWorker is the regression for the
// unbounded shard-lease client: a worker that accepts a lease and hangs
// must be declared dead at the lease timeout and its range re-dispatched,
// instead of stalling the job forever.
func TestLeaseTimeoutRequeuesStalledWorker(t *testing.T) {
	stall := &stallingWorker{inner: New(Config{WorkerMode: true}), stalled: make(chan struct{}, 1)}
	sts := httptest.NewServer(stall)
	defer sts.Close()
	healthy := httptest.NewServer(New(Config{WorkerMode: true}))
	defer healthy.Close()

	coord := New(Config{
		Workers:      []string{sts.URL, healthy.URL},
		LeaseTimeout: 150 * time.Millisecond,
	})
	cts := httptest.NewServer(coord)
	defer cts.Close()

	req := &JobRequest{Circuit: "qft_n8", Noise: "DC", Shots: 800, Seed: 4, BatchShots: 100}
	want := singleProcessReference(t, req)

	doneCh := make(chan *JobResponse, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, body := postJSON(t, cts.URL+"/v1/jobs", req)
		if resp.StatusCode != http.StatusOK {
			errCh <- errors.New("job failed: " + string(body))
			return
		}
		var jr JobResponse
		if err := json.Unmarshal(body, &jr); err != nil {
			errCh <- err
			return
		}
		doneCh <- &jr
	}()

	// The job must complete despite the stalled worker — well before a
	// CI-visible hang, and strictly because the lease timeout fired.
	select {
	case jr := <-doneCh:
		sameJSONCounts(t, "stalled-worker job", want.Counts, jr.Counts)
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(30 * time.Second):
		t.Fatal("job hung behind the stalled worker — lease timeout did not fire")
	}
	select {
	case <-stall.stalled:
	default:
		t.Skip("stalling worker never received a lease")
	}
	st := coord.Snapshot()
	if st.WorkerFailures == 0 {
		t.Error("stalled worker was not declared dead")
	}
	if st.ShardsRequeued == 0 {
		t.Error("stalled lease was not requeued")
	}
}

// TestDrainWaitSignals is the busy-poll regression: DrainWait must return
// promptly (signal, not a 50ms poll loop) when the last job finishes, keep
// the ctx cancel path, and return immediately on an idle server.
func TestDrainWaitSignals(t *testing.T) {
	srv := New(Config{})

	// Idle server: immediate return.
	if err := srv.DrainWait(context.Background()); err != nil {
		t.Fatalf("idle DrainWait: %v", err)
	}

	// Busy server: DrainWait returns once release fires.
	if err := srv.acquire(context.Background()); err != nil {
		t.Fatalf("acquire failed: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.DrainWait(ctx)
	}()
	select {
	case err := <-done:
		t.Fatalf("DrainWait returned %v while a job was pending", err)
	case <-time.After(20 * time.Millisecond):
	}
	start := time.Now()
	srv.release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("DrainWait: %v", err)
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("DrainWait took %v after the last release", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DrainWait never observed the drained state")
	}

	// ctx cancel path with a job still pending.
	if err := srv.acquire(context.Background()); err != nil {
		t.Fatalf("acquire failed: %v", err)
	}
	defer srv.release()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.DrainWait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled DrainWait returned %v", err)
	}
}

// failingWriter is a ResponseWriter whose body writes fail — the server's
// view of a client that disconnected before the first streamed byte.
type failingWriter struct {
	header http.Header
	status int
}

func (f *failingWriter) Header() http.Header {
	if f.header == nil {
		f.header = http.Header{}
	}
	return f.header
}
func (f *failingWriter) WriteHeader(status int)    { f.status = status }
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

// TestStreamingHeaderEmitAborts is the regression for the discarded
// plan-header emit error: a streaming job whose client vanished before the
// header must abort without running a single batch, booked as canceled.
func TestStreamingHeaderEmitAborts(t *testing.T) {
	srv := New(Config{})
	body, err := json.Marshal(&JobRequest{
		Circuit: "qft_n10", Noise: "DC", Shots: 2000, Seed: 1,
		BatchShots: 100, Stream: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(string(body)))
	srv.ServeHTTP(&failingWriter{}, r)

	st := srv.Snapshot()
	if st.JobsCanceled != 1 {
		t.Errorf("canceled %d jobs, want 1: %+v", st.JobsCanceled, st)
	}
	if st.JobsCompleted != 0 {
		t.Errorf("completed %d jobs, want 0", st.JobsCompleted)
	}
	if st.BatchesRun != 0 {
		t.Errorf("ran %d batches into a dead connection, want 0", st.BatchesRun)
	}

	// The sweep stream header follows the same contract.
	sbody, err := json.Marshal(sweepReq())
	if err != nil {
		t.Fatal(err)
	}
	r = httptest.NewRequest(http.MethodPost, "/v1/sweeps", strings.NewReader(
		strings.Replace(string(sbody), `"stream":false`, `"stream":true`, 1)))
	srv.ServeHTTP(&failingWriter{}, r)
	st = srv.Snapshot()
	if st.JobsCanceled != 2 {
		t.Errorf("sweep header abort not booked as canceled: %+v", st)
	}
	if st.SweepPointsRun != 0 {
		t.Errorf("ran %d sweep points into a dead connection", st.SweepPointsRun)
	}
}
