package serve

// The distributed shard protocol. A coordinator (a Server constructed with
// Config.Workers) splits a job's batches into contiguous leases and posts
// each lease to a worker (a Server constructed with Config.WorkerMode) as a
// ShardRequest. The worker plans the job independently — planning is
// deterministic in the request, so coordinator and worker always agree on
// the batch arithmetic — runs batches [From, To) at their derived seeds
// (BatchSeed(job seed, i)), and returns one ShardBatch histogram per batch.
//
// Determinism contract: batch i's histogram is a pure function of the job
// request and i, so the coordinator's merge is byte-identical to the
// single-process run of the same job at the same seed regardless of how
// many workers participated, which worker ran which lease, or how a failed
// worker's leases were re-dispatched. Re-running a lease after a worker
// failure is safe for the same reason: the retry reproduces the identical
// per-batch histograms, and the coordinator records each batch index at
// most once.

// ShardRequest is the POST /v1/shard body: a complete job description plus
// the half-open batch-index range this worker is leasing.
type ShardRequest struct {
	// Job is the full job request. Stream is ignored; Shots, Seed and
	// BatchShots must match the coordinator's so both sides derive the same
	// batch count, sizes and seeds.
	Job JobRequest `json:"job"`
	// From and To bound the leased batch indices: From <= i < To.
	From int `json:"from"`
	To   int `json:"to"`
}

// ShardBatch is one executed batch inside a ShardResponse.
type ShardBatch struct {
	// Batch is the job-wide batch index.
	Batch int `json:"batch"`
	// Seed echoes BatchSeed(job seed, Batch) — the stream the batch ran at.
	Seed uint64 `json:"seed"`
	// Outcomes is the number of sampled outcomes (tree leaves) in Counts.
	Outcomes int `json:"outcomes"`
	// Counts is the batch histogram, decimal basis index -> count.
	Counts map[string]int `json:"counts"`
}

// ShardResponse is the POST /v1/shard success body.
type ShardResponse struct {
	// Backend and Structure echo the engine and tree the batches ran on.
	Backend   string `json:"backend"`
	Structure string `json:"structure"`
	// Batches holds one entry per leased batch, in index order.
	Batches []ShardBatch `json:"batches"`
}

// WorkerInfo is the GET /v1/worker body — the capacity advertisement the
// coordinator's planner-driven placement consumes.
type WorkerInfo struct {
	// Worker reports whether this server accepts shard leases.
	Worker bool `json:"worker"`
	// MaxConcurrent is the worker's execution-slot count.
	MaxConcurrent int `json:"max_concurrent"`
	// MemoryBudgetBytes is the worker's admission budget (0 = unlimited).
	// The coordinator divides it by a job's planner peak estimate to bound
	// in-flight shards per worker, and skips workers a job can never fit on.
	MemoryBudgetBytes int64 `json:"memory_budget_bytes"`
	// Draining reports a worker that is shutting down; the coordinator
	// treats it as unavailable.
	Draining bool `json:"draining"`
}
