package serve

// The distributed shard protocol. A coordinator (a Server constructed with
// Config.Workers) splits a job's batches into contiguous leases and posts
// each lease to a worker (a Server constructed with Config.WorkerMode) as a
// ShardRequest. The worker plans the job independently — planning is
// deterministic in the request, so coordinator and worker always agree on
// the batch arithmetic — runs batches [From, To) at their derived seeds
// (BatchSeed(job seed, i)), and returns one ShardBatch histogram per batch.
//
// Determinism contract: batch i's histogram is a pure function of the job
// request and i, so the coordinator's merge is byte-identical to the
// single-process run of the same job at the same seed regardless of how
// many workers participated, which worker ran which lease, or how a failed
// worker's leases were re-dispatched. Re-running a lease after a worker
// failure is safe for the same reason: the retry reproduces the identical
// per-batch histograms, and the coordinator records each batch index at
// most once.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// ShardRequest is the POST /v1/shard body: a complete work description plus
// the half-open unit-index range this worker is leasing. The unit is a
// batch index for jobs and a sweep-point index for sweeps; exactly one of
// Job or Sweep describes the work.
type ShardRequest struct {
	// Job is the full job request (batch leases). Stream is ignored; Shots,
	// Seed and BatchShots must match the coordinator's so both sides derive
	// the same batch count, sizes and seeds.
	Job JobRequest `json:"job"`
	// Sweep, when non-nil, makes this a sweep-point lease: the worker
	// expands the identical grid (expansion is deterministic in the spec)
	// and runs points [From, To).
	Sweep *SweepRequest `json:"sweep,omitempty"`
	// From and To bound the leased unit indices: From <= i < To.
	From int `json:"from"`
	To   int `json:"to"`
}

// ShardBatch is one executed unit (job batch or sweep point) inside a
// ShardResponse.
type ShardBatch struct {
	// Batch is the job-wide unit index (batch index or sweep-point index).
	Batch int `json:"batch"`
	// Seed echoes the unit's derived seed (BatchSeed for batches, the
	// sweep point seed for points).
	Seed uint64 `json:"seed"`
	// Outcomes is the number of sampled outcomes (tree leaves) in Counts.
	Outcomes int `json:"outcomes"`
	// Counts is the unit histogram, decimal basis index -> count.
	Counts map[string]int `json:"counts"`
	// Backend and Structure echo the engine and tree the unit ran on.
	Backend   string `json:"backend,omitempty"`
	Structure string `json:"structure,omitempty"`
	// Ops and PrefixHits carry the unit's work accounting (sweep points
	// report them so coordinator-side totals match local execution).
	Ops        int64 `json:"ops,omitempty"`
	PrefixHits int64 `json:"prefix_hits,omitempty"`
	// Fidelity is the point's normalized fidelity, for sweep leases whose
	// spec requested it (nil otherwise).
	Fidelity *float64 `json:"fidelity,omitempty"`
	// ElapsedMS is the unit's wall-clock duration (sweep points only).
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// ShardResponse is the POST /v1/shard success body.
type ShardResponse struct {
	// Backend and Structure echo the engine and tree the batches ran on.
	Backend   string `json:"backend"`
	Structure string `json:"structure"`
	// Batches holds one entry per leased batch, in index order.
	Batches []ShardBatch `json:"batches"`
	// Checksum is ShardChecksum(Batches), computed by the worker. The
	// coordinator recomputes it over the decoded payload: a mismatch means
	// the response was corrupted in flight (or by a sick worker) and the
	// lease is treated as failed and requeued instead of merged.
	Checksum string `json:"checksum,omitempty"`
}

// ShardChecksum is the integrity hash both sides of the shard protocol
// compute over a response's batch payload: the sha256 of its canonical
// JSON encoding (encoding/json sorts map keys and round-trips float64
// exactly, so worker-side and coordinator-side encodings agree byte for
// byte).
func ShardChecksum(batches []ShardBatch) string {
	b, err := json.Marshal(batches)
	if err != nil {
		// Unmarshalable batches cannot occur for wire-decoded values; an
		// impossible hash forces the mismatch path rather than hiding it.
		return "unmarshalable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// WorkerAnnounce is the POST /v1/workers body: a worker's join-or-heartbeat
// announcement. The same message serves both purposes — the coordinator
// registers unknown URLs, refreshes known ones, and revives dead ones.
type WorkerAnnounce struct {
	// URL is the worker's base URL as the coordinator should dial it.
	URL string `json:"url"`
	// Info is the worker's current capacity advertisement (the same payload
	// GET /v1/worker serves).
	Info WorkerInfo `json:"info"`
}

// WorkerInfo is the GET /v1/worker body — the capacity advertisement the
// coordinator's planner-driven placement consumes.
type WorkerInfo struct {
	// Worker reports whether this server accepts shard leases.
	Worker bool `json:"worker"`
	// MaxConcurrent is the worker's execution-slot count.
	MaxConcurrent int `json:"max_concurrent"`
	// MemoryBudgetBytes is the worker's admission budget (0 = unlimited).
	// The coordinator divides it by a job's planner peak estimate to bound
	// in-flight shards per worker, and skips workers a job can never fit on.
	MemoryBudgetBytes int64 `json:"memory_budget_bytes"`
	// Draining reports a worker that is shutting down; the coordinator
	// treats it as unavailable.
	Draining bool `json:"draining"`
}
