package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"tqsim"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func wantCounts(t *testing.T, ctx string, want map[uint64]int, got map[string]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: support %d vs %d", ctx, len(want), len(got))
	}
	for k, v := range want {
		if got[strconv.FormatUint(k, 10)] != v {
			t.Fatalf("%s: outcome %d: want %d, got %d", ctx, k, v, got[strconv.FormatUint(k, 10)])
		}
	}
}

// TestRoundTripByteIdenticalToRunTQSim is the acceptance test: a daemon job
// must return exactly the histogram tqsim.RunTQSim produces in-process for
// the same circuit, noise, shots and seed.
func TestRoundTripByteIdenticalToRunTQSim(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	c := tqsim.QFTCircuit(7)
	qasm, err := tqsim.SerializeQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	const shots, seed = 600, 42

	ref, err := tqsim.RunTQSim(c, tqsim.NoiseByName("DC"), shots, tqsim.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
		QASM: qasm, Noise: "DC", Shots: shots, Seed: seed,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if jr.Backend != ref.BackendName || jr.Structure != ref.Structure {
		t.Fatalf("served %s/%s, reference %s/%s", jr.Backend, jr.Structure, ref.BackendName, ref.Structure)
	}
	if jr.Decision == nil || jr.Decision.Why == "" {
		t.Fatalf("response lacks the planner decision: %s", body)
	}
	wantCounts(t, "round-trip", ref.Counts, jr.Counts)
}

// TestConcurrentJobsMatchSingleProcessRuns floods the bounded scheduler
// with concurrent jobs at distinct seeds; every histogram must be
// byte-identical to its single-process equivalent.
func TestConcurrentJobsMatchSingleProcessRuns(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxConcurrent: 4, QueueDepth: 32}))
	defer ts.Close()

	c := tqsim.QFTCircuit(6)
	qasm, err := tqsim.SerializeQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 300
	refs := make(map[uint64]map[uint64]int)
	for seed := uint64(1); seed <= 8; seed++ {
		res, err := tqsim.RunTQSim(c, tqsim.NoiseByName("DC"), shots, tqsim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		refs[seed] = res.Counts
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for seed := uint64(1); seed <= 8; seed++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
				QASM: qasm, Noise: "DC", Shots: shots, Seed: seed,
			})
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("seed %d: status %d: %s", seed, resp.StatusCode, body)
				return
			}
			var jr JobResponse
			if err := json.Unmarshal(body, &jr); err != nil {
				errc <- fmt.Errorf("seed %d: %v", seed, err)
				return
			}
			for k, v := range refs[seed] {
				if jr.Counts[strconv.FormatUint(k, 10)] != v {
					errc <- fmt.Errorf("seed %d: outcome %d diverged", seed, k)
					return
				}
			}
			if len(jr.Counts) != len(refs[seed]) {
				errc <- fmt.Errorf("seed %d: support %d vs %d", seed, len(jr.Counts), len(refs[seed]))
			}
		}(seed)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := New(Config{}).Snapshot() // fresh server: zero counters sanity
	if st.JobsCompleted != 0 {
		t.Fatalf("fresh server reports completed jobs: %+v", st)
	}
}

// TestStreamingBatchesMergeDeterministically runs a multi-batch streaming
// job and checks (a) each batch line matches the single-process run at the
// derived batch seed, and (b) the final line merges them exactly.
func TestStreamingBatchesMergeDeterministically(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	c := tqsim.QFTCircuit(6)
	qasm, err := tqsim.SerializeQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	const shots, batch, seed = 500, 200, 9 // 200+200+100
	m := tqsim.NoiseByName("DC")

	req, err := json.Marshal(&JobRequest{
		QASM: qasm, Noise: "DC", Shots: shots, Seed: seed,
		BatchShots: batch, Stream: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	wantSizes := []int{200, 200, 100}
	merged := map[uint64]int{}
	sc := bufio.NewScanner(resp.Body)
	var lines []batchLine
	for sc.Scan() {
		var l batchLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 || lines[0].Type != "plan" || lines[4].Type != "done" {
		t.Fatalf("stream shape wrong: %d lines", len(lines))
	}
	if lines[0].Decision == nil || lines[0].Batches != 3 {
		t.Fatalf("plan header incomplete: %+v", lines[0])
	}
	for i, l := range lines[1:4] {
		if l.Type != "batch" || l.Batch != i || l.Shots != wantSizes[i] {
			t.Fatalf("batch line %d wrong: %+v", i, l)
		}
		bseed := BatchSeed(seed, i)
		if l.Seed != bseed {
			t.Fatalf("batch %d seed %d, want %d", i, l.Seed, bseed)
		}
		ref, err := tqsim.RunTQSim(c, m, wantSizes[i], tqsim.Options{Seed: bseed})
		if err != nil {
			t.Fatal(err)
		}
		wantCounts(t, fmt.Sprintf("batch %d", i), ref.Counts, l.Counts)
		for k, v := range ref.Counts {
			merged[k] += v
		}
	}
	wantCounts(t, "done-merge", merged, lines[4].Counts)
	if lines[4].Outcomes < shots {
		t.Fatalf("outcomes %d below shots %d", lines[4].Outcomes, shots)
	}
}

// TestPlanEndpointAndCache: /v1/plan explains without running, and repeated
// jobs hit the plan cache.
func TestPlanEndpointAndCache(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/plan", &JobRequest{Circuit: "qft_n12", Shots: 2000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", resp.StatusCode, body)
	}
	var pr struct {
		Width    int           `json:"width"`
		Decision *DecisionJSON `json:"decision"`
		Explain  string        `json:"explain"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Width != 12 || pr.Decision == nil || pr.Decision.Backend != "statevec" || pr.Explain == "" {
		t.Fatalf("plan response wrong: %s", body)
	}
	if srv.Snapshot().JobsCompleted != 0 {
		t.Fatal("/v1/plan must not execute jobs")
	}

	for i := 0; i < 2; i++ {
		resp, body = postJSON(t, ts.URL+"/v1/jobs", &JobRequest{Circuit: "qft_n12", Shots: 2000, Seed: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status %d: %s", resp.StatusCode, body)
		}
	}
	st := srv.Snapshot()
	if st.PlanCacheHits < 2 { // second job + the /v1/plan prewarm
		t.Fatalf("expected plan cache hits, got %+v", st)
	}
	if st.JobsCompleted != 2 {
		t.Fatalf("jobs completed %d, want 2", st.JobsCompleted)
	}
}

// TestAdmissionControl: jobs whose planner estimate exceeds the server
// budget are rejected up front with the hpcmodel byte estimate, and a full
// queue answers 429.
func TestAdmissionControl(t *testing.T) {
	// 1 MiB budget: a 16-qubit dense plan (1 MiB per state, times levels+1)
	// can never fit.
	srv := New(Config{MemoryBudgetBytes: 1 << 20})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{Circuit: "qft_n16", Shots: 500, Seed: 1})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("memory budget")) {
		t.Fatalf("rejection unexplained: %s", body)
	}
	if srv.Snapshot().RejectedMemory == 0 {
		t.Fatalf("memory rejection not counted: %+v", srv.Snapshot())
	}

	// A budget that admits one worker's states must execute at the clamped
	// worker count: the served decision reports the parallelism that
	// actually ran, and counts stay byte-identical to the unclamped direct
	// run (histograms are parallelism-invariant).
	plan := tqsim.PlanDCP(tqsim.BenchmarkByName("qft_n12"), tqsim.NoiseByName("DC"), 500, tqsim.Options{})
	budget := int64(plan.Levels()+1) * (16 << 12)
	csrv := New(Config{MemoryBudgetBytes: budget})
	cts := httptest.NewServer(csrv)
	defer cts.Close()
	resp, body = postJSON(t, cts.URL+"/v1/jobs", &JobRequest{
		Circuit: "qft_n12", Noise: "DC", Shots: 500, Seed: 3, Parallelism: 8,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clamped job status %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Decision.Parallelism != 1 {
		t.Fatalf("admitted at %d workers under a one-worker budget", jr.Decision.Parallelism)
	}
	ref, err := tqsim.RunTQSim(tqsim.BenchmarkByName("qft_n12"), tqsim.NoiseByName("DC"), 500,
		tqsim.Options{Seed: 3, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, "memory-clamped", ref.Counts, jr.Counts)

	// Queue bound: fill every slot and the whole queue white-box, then one
	// more job must bounce with 429.
	qsrv := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	qts := httptest.NewServer(qsrv)
	defer qts.Close()
	qsrv.pendMu.Lock()
	qsrv.pending = qsrv.cfg.MaxConcurrent + qsrv.cfg.QueueDepth
	qsrv.pendMu.Unlock()
	resp, body = postJSON(t, qts.URL+"/v1/jobs", &JobRequest{Circuit: "qft_n8", Shots: 100, Seed: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if qsrv.Snapshot().RejectedQueueFull != 1 {
		t.Fatalf("queue rejection not counted: %+v", qsrv.Snapshot())
	}
}

// TestRequestValidation covers the 400 paths.
func TestRequestValidation(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	bad := []JobRequest{
		{},                                       // no program
		{Circuit: "qft_n8"},                      // no shots
		{Circuit: "qft_n8", QASM: "x", Shots: 1}, // both programs
		{Circuit: "nope_n9", Shots: 10},          // unknown suite name
		{Circuit: "qft_n8", Shots: 10, Noise: "WAT"},      // unknown noise
		{Circuit: "qft_n8", Shots: 10, Mode: "magic"},     // unknown mode
		{Circuit: "qft_n8", Shots: 10, Backend: "abacus"}, // unknown backend
		{QASM: "OPENQASM 9;", Shots: 10},                  // bad qasm
	}
	for i, req := range bad {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", &req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
}

// TestBaselineModeMatchesRunBackend pins the second determinism contract:
// mode "baseline" serves RunBackend's histogram byte-identically.
func TestBaselineModeMatchesRunBackend(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	c := tqsim.BenchmarkByName("bv_n10")
	ref, err := tqsim.RunBackend(c, tqsim.NoiseByName("DC"), 400, tqsim.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
		Circuit: "bv_n10", Noise: "DC", Shots: 400, Seed: 5, Mode: "baseline",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Backend != ref.BackendName {
		t.Fatalf("served backend %s, reference %s", jr.Backend, ref.BackendName)
	}
	wantCounts(t, "baseline-mode", ref.Counts, jr.Counts)
}

// TestBatchArithmetic pins the lazy batch sizing: batches are never
// materialized, so sizes must come out right for every index.
func TestBatchArithmetic(t *testing.T) {
	cases := []struct {
		shots, batch int
		want         []int
	}{
		{500, 200, []int{200, 200, 100}},
		{500, 0, []int{500}},
		{500, -1, []int{500}},
		{500, 500, []int{500}},
		{500, 600, []int{500}},
		{1, 1, []int{1}},
		{4_194_304, 1, nil}, // max-shots at batch 1: count only, O(1) to ask
	}
	for _, tc := range cases {
		j := &job{shots: tc.shots, batchSize: tc.batch}
		if tc.want == nil {
			if j.numBatches() != tc.shots || j.batchShots(0) != 1 || j.batchShots(tc.shots-1) != 1 {
				t.Fatalf("batches(%d,%d): count %d", tc.shots, tc.batch, j.numBatches())
			}
			continue
		}
		if j.numBatches() != len(tc.want) {
			t.Fatalf("batches(%d,%d) count %d, want %d", tc.shots, tc.batch, j.numBatches(), len(tc.want))
		}
		total := 0
		for i, w := range tc.want {
			if got := j.batchShots(i); got != w {
				t.Fatalf("batches(%d,%d)[%d] = %d, want %d", tc.shots, tc.batch, i, got, w)
			}
			total += tc.want[i]
		}
		if total != tc.shots {
			t.Fatalf("batches(%d,%d) sum %d", tc.shots, tc.batch, total)
		}
	}
	if BatchSeed(7, 0) != 7 {
		t.Fatal("batch 0 must keep the job seed")
	}
	if BatchSeed(7, 1) == 7 || BatchSeed(7, 1) == BatchSeed(7, 2) {
		t.Fatal("derived batch seeds must differ")
	}
}

// TestPlanCacheLRUBounded: the plan cache must stay within its entry cap
// under many distinct circuits, evicting (and counting) the excess.
func TestPlanCacheLRUBounded(t *testing.T) {
	srv := New(Config{PlanCacheEntries: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 12 distinct cache keys (shots is part of the key via the batch size).
	for shots := 100; shots < 112; shots++ {
		resp, body := postJSON(t, ts.URL+"/v1/plan", &JobRequest{Circuit: "qft_n8", Shots: shots})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan %d: %d: %s", shots, resp.StatusCode, body)
		}
	}
	st := srv.Snapshot()
	if st.PlanCacheEntries > 4 {
		t.Fatalf("cache grew past its cap: %+v", st)
	}
	if st.PlanCacheEvicted < 8 {
		t.Fatalf("expected >= 8 evictions, got %+v", st)
	}
	if st.PlanCacheMisses != 12 {
		t.Fatalf("expected 12 misses, got %+v", st)
	}

	// The most recent entry is still cached; the oldest was evicted.
	resp, _ := postJSON(t, ts.URL+"/v1/plan", &JobRequest{Circuit: "qft_n8", Shots: 111})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("recache probe failed")
	}
	st2 := srv.Snapshot()
	if st2.PlanCacheHits != st.PlanCacheHits+1 {
		t.Fatalf("most recent entry was evicted: %+v", st2)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/plan", &JobRequest{Circuit: "qft_n8", Shots: 100})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("evicted-entry probe failed")
	}
	if srv.Snapshot().PlanCacheMisses != st2.PlanCacheMisses+1 {
		t.Fatalf("oldest entry should have been evicted: %+v", srv.Snapshot())
	}
}

// TestGracefulDrain: a draining server 503s new jobs and shard leases with
// a Retry-After header, fails its health check so load balancers stop
// routing, and reports draining in stats.
func TestGracefulDrain(t *testing.T) {
	srv := New(Config{WorkerMode: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.BeginDrain()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{Circuit: "qft_n8", Shots: 100, Seed: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted a job: %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain lacks Retry-After")
	}
	resp, _ = postJSON(t, ts.URL+"/v1/shard", &ShardRequest{
		Job: JobRequest{Circuit: "qft_n8", Shots: 100, BatchShots: 50}, From: 0, To: 1,
	})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining worker accepted a lease: %d", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining health check returned %d, want 503", hr.StatusCode)
	}
	st := srv.Snapshot()
	if !st.Draining || st.RejectedDraining != 2 {
		t.Fatalf("drain not reported: %+v", st)
	}

	// Every 503 carries Retry-After, not just drain: the memory-pressure
	// rejection path uses the same writer.
	rec := httptest.NewRecorder()
	writeError(rec, http.StatusServiceUnavailable, "no memory right now")
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	rec = httptest.NewRecorder()
	writeError(rec, http.StatusBadRequest, "bad")
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("non-503 must not advertise Retry-After")
	}
}

// TestCancelledStreamingJobStopsWork: disconnecting a streaming client
// must stop the in-flight batch work (counted as canceled, not failed) —
// the executor observes the request context instead of burning CPU on
// results nobody will read.
func TestCancelledStreamingJobStopsWork(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 200 batches of a 14-qubit circuit: long enough that cancellation
	// lands mid-job on any machine.
	reqBody, err := json.Marshal(&JobRequest{
		Circuit: "qft_n14", Noise: "DC", Shots: 4000, Seed: 2, BatchShots: 20, Stream: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the plan header and the first batch line, then hang up.
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2 && sc.Scan(); i++ {
	}
	cancel()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Snapshot()
		if st.JobsCanceled == 1 {
			if st.JobsFailed != 0 {
				t.Fatalf("cancelled job misfiled as failure: %+v", st)
			}
			if st.BatchesRun >= 200 {
				t.Fatalf("job ran to completion despite cancellation: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation never observed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
