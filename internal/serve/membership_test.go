package serve

// Elastic membership suite: the liveness state machine, the join/heartbeat
// endpoint, the circuit breaker, and the regressions of this PR — a worker
// that dies mid-job must rejoin that same job after revival, and a 503
// carrying Retry-After must be retried after a capped wait instead of
// costing the worker its place in the job. Plus the drain-with-leases-in-
// flight contracts on both roles.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// getStats decodes the coordinator's /v1/stats payload.
func getStats(t *testing.T, url string) *Stats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// announceLoop heartbeats a worker URL to a coordinator every interval until
// stop closes — a miniature JoinFleet under test control.
func announceLoop(t *testing.T, coordURL, workerURL string, interval time.Duration, stop <-chan struct{}) {
	t.Helper()
	body, err := json.Marshal(&WorkerAnnounce{
		URL:  workerURL,
		Info: WorkerInfo{Worker: true, MaxConcurrent: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			resp, err := http.Post(coordURL+"/v1/workers", "application/json",
				bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
			select {
			case <-stop:
				return
			case <-tick.C:
			}
		}
	}()
}

func TestLivenessStateMachine(t *testing.T) {
	cfg := Config{SuspectAfter: 5 * time.Second, DeadAfter: 15 * time.Second}
	w := &workerClient{status: workerAlive, elastic: true, lastSeen: time.Now()}

	now := w.lastSeen
	for _, tc := range []struct {
		age  time.Duration
		want string
	}{
		{0, workerAlive},
		{3 * time.Second, workerAlive},
		{6 * time.Second, workerSuspect},
		{16 * time.Second, workerDead},
	} {
		if got := w.stateLocked(cfg, now.Add(tc.age)); got != tc.want {
			t.Errorf("elastic worker at age %v: state %q, want %q", tc.age, got, tc.want)
		}
	}

	// Static (never-announced) workers are exempt from heartbeat aging.
	s := &workerClient{status: workerAlive, lastSeen: now.Add(-time.Hour)}
	if got := s.stateLocked(cfg, now); got != workerAlive {
		t.Errorf("static worker aged to %q; probe-based liveness must not age out", got)
	}

	// Explicit death dominates any heartbeat age.
	w.status = workerDead
	if got := w.stateLocked(cfg, now); got != workerDead {
		t.Errorf("dead worker reported %q", got)
	}

	// An announce revives and counts the revival exactly once.
	r := newRegistry(Config{JitterSeed: 1})
	r.addLocked("http://w1")
	r.byURL["http://w1"].status = workerDead
	if joined, revived := r.announce(&WorkerAnnounce{URL: "http://w1"}); joined || !revived {
		t.Fatalf("announce of a dead known worker: joined=%v revived=%v", joined, revived)
	}
	if joined, revived := r.announce(&WorkerAnnounce{URL: "http://w1"}); joined || revived {
		t.Fatalf("steady heartbeat misread: joined=%v revived=%v", joined, revived)
	}
	if joined, _ := r.announce(&WorkerAnnounce{URL: "http://w2"}); !joined {
		t.Fatal("first announce of a new worker did not join")
	}
	if got := r.byURL["http://w1"].revivals; got != 1 {
		t.Fatalf("revivals = %d, want 1", got)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := Config{BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond}
	w := &workerClient{breaker: breakerClosed}

	for i := 0; i < 3; i++ {
		if !w.breakerTryAcquire(cfg) {
			t.Fatalf("closed breaker denied lease %d", i)
		}
		w.noteFailure(cfg)
	}
	if w.breaker != breakerOpen {
		t.Fatalf("after %d failures breaker is %q", cfg.BreakerThreshold, w.breaker)
	}
	if w.breakerTryAcquire(cfg) {
		t.Fatal("open breaker admitted a lease inside the cooldown")
	}

	time.Sleep(cfg.BreakerCooldown + 5*time.Millisecond)
	if !w.breakerTryAcquire(cfg) {
		t.Fatal("cooled-down breaker denied the half-open trial")
	}
	if w.breaker != breakerHalfOpen {
		t.Fatalf("breaker %q after trial admission", w.breaker)
	}
	if w.breakerTryAcquire(cfg) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	// Failed trial reopens immediately; successful trial closes.
	w.noteFailure(cfg)
	if w.breaker != breakerOpen {
		t.Fatalf("breaker %q after failed half-open trial", w.breaker)
	}
	time.Sleep(cfg.BreakerCooldown + 5*time.Millisecond)
	if !w.breakerTryAcquire(cfg) {
		t.Fatal("second half-open trial denied")
	}
	w.noteSuccess()
	if w.breaker != breakerClosed || w.consecFails != 0 {
		t.Fatalf("breaker %q consecFails %d after success", w.breaker, w.consecFails)
	}

	// Threshold <= 0 disables the breaker entirely.
	off := Config{BreakerThreshold: -1}
	d := &workerClient{breaker: breakerClosed}
	for i := 0; i < 10; i++ {
		d.noteFailure(off)
	}
	if !d.breakerTryAcquire(off) || d.breaker != breakerClosed {
		t.Fatal("disabled breaker still opened")
	}
}

func TestWorkerJoinEndpoint(t *testing.T) {
	// A server with no pool is not a coordinator.
	plain := httptest.NewServer(New(Config{}))
	defer plain.Close()
	resp, _ := postJSON(t, plain.URL+"/v1/workers", &WorkerAnnounce{URL: "http://x:1"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-coordinator accepted a join: %d", resp.StatusCode)
	}

	coord := New(Config{AcceptWorkers: true})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	// Relative or schemeless URLs are rejected.
	for _, bad := range []string{"", "localhost:1", "ftp://x", "/v1"} {
		resp, _ := postJSON(t, ts.URL+"/v1/workers", &WorkerAnnounce{URL: bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("announce url %q accepted: %d", bad, resp.StatusCode)
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/workers", &WorkerAnnounce{
		URL:  "http://127.0.0.1:9",
		Info: WorkerInfo{Worker: true, MaxConcurrent: 4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join failed: %d: %s", resp.StatusCode, body)
	}
	var ack struct {
		OK          bool  `json:"ok"`
		HeartbeatMS int64 `json:"heartbeat_interval_ms"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.OK || ack.HeartbeatMS <= 0 {
		t.Fatalf("join ack wrong: %+v", ack)
	}

	st := getStats(t, ts.URL)
	if st.WorkersJoined != 1 || len(st.Workers) != 1 {
		t.Fatalf("registry after join: joined=%d workers=%d", st.WorkersJoined, len(st.Workers))
	}
	ws := st.Workers[0]
	if ws.URL != "http://127.0.0.1:9" || !ws.Elastic || ws.State != workerAlive ||
		ws.Breaker != breakerClosed || ws.HeartbeatAgeMS < 0 {
		t.Fatalf("worker stat wrong: %+v", ws)
	}

	// The worker-side Announce helper speaks the same protocol.
	wsrv := New(Config{WorkerMode: true, MaxConcurrent: 3})
	if err := wsrv.Announce(context.Background(), ts.URL, "http://127.0.0.1:10"); err != nil {
		t.Fatalf("Announce: %v", err)
	}
	if st := getStats(t, ts.URL); st.WorkersJoined != 2 {
		t.Fatalf("Announce did not register: %+v", st)
	}
}

// flakyWorker fails its first N shard leases with 500, then serves normally
// — a worker that blips mid-job and comes back.
type flakyWorker struct {
	inner  http.Handler
	fails  int64
	shards atomic.Int64
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" {
		if n := f.shards.Add(1); n <= f.fails {
			http.Error(w, "transient crash", http.StatusInternalServerError)
			return
		}
	}
	f.inner.ServeHTTP(w, r)
}

// slowWorker delays every shard lease — it keeps the job open long enough
// for membership changes to land mid-job.
type slowWorker struct {
	inner http.Handler
	delay time.Duration
	first chan struct{}
}

func (s *slowWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" {
		if s.first != nil {
			select {
			case s.first <- struct{}{}:
			default:
			}
		}
		time.Sleep(s.delay)
	}
	s.inner.ServeHTTP(w, r)
}

// TestWorkerRevivalRejoinsMidJob is the satellite regression: a worker
// declared dead mid-job must rejoin the SAME job once a heartbeat revives
// it — death is not job-scoped exclusion. Before the registry, the dead
// worker was excluded for the rest of the job even if it recovered.
func TestWorkerRevivalRejoinsMidJob(t *testing.T) {
	slow := &slowWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 1}), delay: 25 * time.Millisecond}
	slowS := httptest.NewServer(slow)
	defer slowS.Close()
	flaky := &flakyWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 2}), fails: 1}
	flakyS := httptest.NewServer(flaky)
	defer flakyS.Close()

	coord := New(Config{
		Workers:      []string{slowS.URL, flakyS.URL},
		LeaseRetries: -1,        // fail fast: one 500 marks the worker dead
		ProbeBackoff: time.Hour, // no probe revival — only the heartbeat path
		RetryBackoff: time.Millisecond,
	})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	// The flaky worker heartbeats throughout, as a joined worker would.
	stop := make(chan struct{})
	defer close(stop)
	announceLoop(t, ts.URL, flakyS.URL, 2*time.Millisecond, stop)

	req := distributedJob(21)
	ref := singleProcessReference(t, req)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job failed: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	sameJSONCounts(t, "revival merge", ref.Counts, jr.Counts)
	if jr.Outcomes != ref.Outcomes {
		t.Fatalf("outcomes %d, want %d", jr.Outcomes, ref.Outcomes)
	}

	// The flaky worker died (first lease 500d) and then served at least one
	// more lease of the same job after its heartbeat revival.
	if got := flaky.shards.Load(); got < 2 {
		t.Fatalf("flaky worker saw %d leases; it never rejoined the job after death", got)
	}
	st := getStats(t, ts.URL)
	if st.WorkerFailures == 0 || st.ShardsRequeued == 0 {
		t.Fatalf("the death was not recorded: %+v", st)
	}
	if st.WorkersRevived == 0 {
		t.Fatalf("no revival recorded: %+v", st)
	}
	var fs *WorkerStat
	for i := range st.Workers {
		if st.Workers[i].URL == flakyS.URL {
			fs = &st.Workers[i]
		}
	}
	if fs == nil {
		t.Fatalf("flaky worker missing from /v1/stats workers: %+v", st.Workers)
	}
	if !fs.Elastic || fs.Revivals == 0 || fs.Requeues == 0 || fs.LeasesCompleted == 0 {
		t.Fatalf("per-worker stats do not show the death/revival cycle: %+v", fs)
	}
}

// retryAfterWorker answers 503 + Retry-After for its first N shard
// requests, then serves normally — a worker that is briefly at capacity.
type retryAfterWorker struct {
	inner  http.Handler
	busyN  int64
	shards atomic.Int64
}

func (b *retryAfterWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" && b.shards.Add(1) <= b.busyN {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "briefly at capacity", http.StatusServiceUnavailable)
		return
	}
	b.inner.ServeHTTP(w, r)
}

// TestRetryAfterHonored is the satellite regression: a 503 carrying
// Retry-After must be retried after a capped wait, not exclude the worker
// from the job. Before the retry layer, the first 503 pulled the only
// worker out of the job and everything fell back to local execution.
func TestRetryAfterHonored(t *testing.T) {
	bw := &retryAfterWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 2}), busyN: 2}
	ws := httptest.NewServer(bw)
	defer ws.Close()

	coord := New(Config{
		Workers:       []string{ws.URL},
		LeaseRetries:  3,
		RetryBackoff:  time.Millisecond,
		RetryAfterCap: 10 * time.Millisecond, // the worker's hint says 1s
	})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	req := distributedJob(33)
	ref := singleProcessReference(t, req)
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job failed: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	sameJSONCounts(t, "retry-after merge", ref.Counts, jr.Counts)

	st := getStats(t, ts.URL)
	if st.RetryAfterWaits != 2 {
		t.Fatalf("retry-after waits = %d, want 2", st.RetryAfterWaits)
	}
	// No requeue means no exclusion: every lease stayed with the worker.
	if st.ShardsRequeued != 0 {
		t.Fatalf("the 503s excluded the worker (%d requeues); Retry-After was not honored", st.ShardsRequeued)
	}
	if st.LeaseRetries < 2 {
		t.Fatalf("lease retries = %d, want >= 2", st.LeaseRetries)
	}
	// Two hints of 1s each were capped to 10ms: uncapped waits alone would
	// exceed 2s.
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("job took %v; the Retry-After hint was not capped", elapsed)
	}
}

// TestCoordinatorDrainWithLeasesInFlight: SIGTERM on a coordinator mid-job
// (BeginDrain) must let in-flight distributed work — a job and a sweep —
// run to completion with identical results while new submissions bounce
// 503 + Retry-After.
func TestCoordinatorDrainWithLeasesInFlight(t *testing.T) {
	slow := &slowWorker{
		inner: New(Config{WorkerMode: true, MaxConcurrent: 4}),
		delay: 10 * time.Millisecond,
		first: make(chan struct{}, 1),
	}
	ws := httptest.NewServer(slow)
	defer ws.Close()

	coord := New(Config{Workers: []string{ws.URL}})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	jobReq := distributedJob(55)
	jobRef := singleProcessReference(t, jobReq)
	sweepRef := func() map[int]map[string]int {
		rs := httptest.NewServer(New(Config{}))
		defer rs.Close()
		out := map[int]map[string]int{}
		for _, pj := range postSweep(t, rs.URL, sweepReq()).Results {
			out[pj.Index] = pj.Counts
		}
		return out
	}()

	type jobOut struct {
		jr  *JobResponse
		err string
	}
	jobCh := make(chan jobOut, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", jobReq)
		if resp.StatusCode != http.StatusOK {
			jobCh <- jobOut{err: string(body)}
			return
		}
		var jr JobResponse
		if err := json.Unmarshal(body, &jr); err != nil {
			jobCh <- jobOut{err: err.Error()}
			return
		}
		jobCh <- jobOut{jr: &jr}
	}()
	sweepCh := make(chan *SweepResponse, 1)
	go func() {
		sweepCh <- postSweep(t, ts.URL, sweepReq())
	}()

	// Drain once the first lease is demonstrably in flight.
	select {
	case <-slow.first:
	case <-time.After(10 * time.Second):
		t.Fatal("no lease ever reached the worker")
	}
	coord.BeginDrain()

	// New submissions are refused with the documented 503 + Retry-After.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", distributedJob(56))
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining coordinator answered %d (Retry-After %q)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sweeps", sweepReq())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining coordinator accepted a sweep: %d", resp.StatusCode)
	}

	// The in-flight job and sweep complete, byte-identical.
	out := <-jobCh
	if out.err != "" {
		t.Fatalf("in-flight job failed during drain: %s", out.err)
	}
	sameJSONCounts(t, "drained job", jobRef.Counts, out.jr.Counts)
	sr := <-sweepCh
	for _, pj := range sr.Results {
		sameJSONCounts(t, "drained sweep point", sweepRef[pj.Index], pj.Counts)
	}

	// DrainWait observes completion promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.DrainWait(ctx); err != nil {
		t.Fatalf("DrainWait after completion: %v", err)
	}
}

// TestWorkerDrainMidJobRequeuesElsewhere: a worker draining mid-job
// finishes the lease it already accepted, answers 503 to new leases, and
// the coordinator moves the rest of the work to the other worker — with no
// unit run twice (byte identity proves it).
func TestWorkerDrainMidJobRequeuesElsewhere(t *testing.T) {
	drainee := New(Config{WorkerMode: true, MaxConcurrent: 1})
	dw := &slowWorker{inner: drainee, delay: 15 * time.Millisecond, first: make(chan struct{}, 1)}
	ds := httptest.NewServer(dw)
	defer ds.Close()
	healthy := &countingWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 2})}
	hs := httptest.NewServer(healthy)
	defer hs.Close()

	coord := New(Config{
		Workers:       []string{ds.URL, hs.URL},
		RetryBackoff:  time.Millisecond,
		RetryAfterCap: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	req := distributedJob(77)
	ref := singleProcessReference(t, req)
	done := make(chan []byte, 1)
	status := make(chan int, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
		status <- resp.StatusCode
		done <- body
	}()

	select {
	case <-dw.first:
	case <-time.After(10 * time.Second):
		t.Skip("draining worker never received a lease")
	}
	drainee.BeginDrain()

	if code := <-status; code != http.StatusOK {
		t.Fatalf("job failed after worker drain: %d: %s", code, <-done)
	}
	var jr JobResponse
	if err := json.Unmarshal(<-done, &jr); err != nil {
		t.Fatal(err)
	}
	sameJSONCounts(t, "worker-drain merge", ref.Counts, jr.Counts)
	if jr.Outcomes != ref.Outcomes {
		t.Fatalf("outcomes %d, want %d — a unit ran twice or was lost", jr.Outcomes, ref.Outcomes)
	}
	if healthy.shards.Load() == 0 {
		t.Fatal("the healthy worker never picked up the drained worker's leases")
	}

	// The drained worker refuses leases outright now.
	resp, _ := postJSON(t, ds.URL+"/v1/shard", &ShardRequest{Job: *distributedJob(1), From: 0, To: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining worker accepted a lease: %d", resp.StatusCode)
	}

	// The same contract holds for sweep leases: drain a worker mid-sweep.
	drainee2 := New(Config{WorkerMode: true, MaxConcurrent: 1})
	dw2 := &slowWorker{inner: drainee2, delay: 15 * time.Millisecond, first: make(chan struct{}, 1)}
	ds2 := httptest.NewServer(dw2)
	defer ds2.Close()
	healthy2 := httptest.NewServer(New(Config{WorkerMode: true, MaxConcurrent: 2}))
	defer healthy2.Close()
	coord2 := New(Config{
		Workers:       []string{ds2.URL, healthy2.URL},
		RetryBackoff:  time.Millisecond,
		RetryAfterCap: 5 * time.Millisecond,
	})
	ts2 := httptest.NewServer(coord2)
	defer ts2.Close()

	sweepRef := func() map[int]map[string]int {
		rs := httptest.NewServer(New(Config{}))
		defer rs.Close()
		out := map[int]map[string]int{}
		for _, pj := range postSweep(t, rs.URL, sweepReq()).Results {
			out[pj.Index] = pj.Counts
		}
		return out
	}()
	sweepCh := make(chan *SweepResponse, 1)
	go func() { sweepCh <- postSweep(t, ts2.URL, sweepReq()) }()
	select {
	case <-dw2.first:
		drainee2.BeginDrain()
	case <-time.After(10 * time.Second):
		t.Skip("draining worker never received a sweep lease")
	}
	sr := <-sweepCh
	if len(sr.Results) != len(sweepRef) {
		t.Fatalf("sweep returned %d points, want %d", len(sr.Results), len(sweepRef))
	}
	for _, pj := range sr.Results {
		sameJSONCounts(t, "worker-drain sweep point", sweepRef[pj.Index], pj.Counts)
	}
}
