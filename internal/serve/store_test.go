package serve

// Conformance and regression suite for the content-addressed result store,
// the cross-job snapshot cache, and the serve-layer cache-correctness
// fixes (structural circuitHash, ctx-aware acquire, stats consistency).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tqsim"
	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/qmath"
)

// storeConfig mirrors tqsimd's defaults: store and snapshot cache on.
func storeConfig() Config {
	return Config{StoreEntries: 64, SnapshotCacheBytes: 64 << 20}
}

// ghzQASM is a QASM workload for the replay grid (exercises the parse path
// rather than the benchmark registry).
const ghzQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
`

// postRaw posts and returns the raw response body bytes.
func postRaw(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, url, body)
}

// stripElapsed removes the run-varying elapsed_ms field from a JSON body so
// two live runs can be compared byte-for-byte on everything deterministic.
func stripElapsed(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("strip elapsed_ms: %v in %s", err, body)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestResultStoreReplayByteIdentical is the replay conformance grid:
// workload × backend resolution × response shape. The second identical
// request must return the byte-identical body without running a batch, and
// the stats must show the replay.
func TestResultStoreReplayByteIdentical(t *testing.T) {
	workloads := []struct {
		name string
		req  JobRequest
	}{
		// Tree-mode dense plan (multi-level at CopyCost 5) on a suite circuit.
		{"qft-tree-statevec", JobRequest{Circuit: "qft_n8", Noise: "DC", Shots: 400, Seed: 9, CopyCost: 5, Backend: "statevec"}},
		// Auto backend resolution (stabilizer-friendly Clifford circuit).
		{"bv-auto", JobRequest{Circuit: "bv_n10", Noise: "DC", Shots: 200, Seed: 5}},
		// QASM parse path, ideal noise, multi-batch split.
		{"ghz-qasm-batched", JobRequest{QASM: ghzQASM, Noise: "ideal", Shots: 300, Seed: 3, BatchShots: 64}},
		// Baseline mode.
		{"qft-baseline", JobRequest{Circuit: "qft_n8", Noise: "TR", Shots: 150, Seed: 11, Mode: "baseline"}},
	}
	for _, wl := range workloads {
		for _, stream := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/stream=%v", wl.name, stream), func(t *testing.T) {
				srv := New(storeConfig())
				ts := httptest.NewServer(srv)
				defer ts.Close()

				req := wl.req
				req.Stream = stream
				resp1, body1 := postRaw(t, ts.URL+"/v1/jobs", &req)
				if resp1.StatusCode != http.StatusOK {
					t.Fatalf("cold run failed: %d: %s", resp1.StatusCode, body1)
				}
				batchesCold := srv.Snapshot().BatchesRun

				resp2, body2 := postRaw(t, ts.URL+"/v1/jobs", &req)
				if resp2.StatusCode != http.StatusOK {
					t.Fatalf("replay failed: %d: %s", resp2.StatusCode, body2)
				}
				if !bytes.Equal(body1, body2) {
					t.Fatalf("replay differs from cold run\ncold   %s\nreplay %s", body1, body2)
				}
				st := srv.Snapshot()
				if st.ResultsHits != 1 || st.ResultsMisses != 1 {
					t.Fatalf("results hits/misses %d/%d, want 1/1", st.ResultsHits, st.ResultsMisses)
				}
				if st.BatchesRun != batchesCold {
					t.Fatal("replay executed batches")
				}
				if st.JobsCompleted != 2 {
					t.Fatalf("jobs_completed %d, want 2", st.JobsCompleted)
				}
				if st.ResultsEntries == 0 || st.ResultsBytes == 0 {
					t.Fatalf("store reports %d entries / %d bytes after a put", st.ResultsEntries, st.ResultsBytes)
				}
			})
		}
	}
}

// TestResultStoreCrossShapeReplay: a job recorded from a non-streaming run
// replays as a stream (and vice versa) — both shapes come from one record.
func TestResultStoreCrossShapeReplay(t *testing.T) {
	srv := New(storeConfig())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := JobRequest{Circuit: "qft_n8", Noise: "DC", Shots: 400, Seed: 2, BatchShots: 100}
	if resp, body := postRaw(t, ts.URL+"/v1/jobs", &req); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run failed: %d: %s", resp.StatusCode, body)
	}

	// Streamed replay of the non-streamed record.
	req.Stream = true
	resp, body := postRaw(t, ts.URL+"/v1/jobs", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream replay failed: %d: %s", resp.StatusCode, body)
	}
	if srv.Snapshot().ResultsHits != 1 {
		t.Fatal("stream request did not replay from the store")
	}
	// The replayed stream must be byte-identical to a live stream of the
	// same job (fresh server, so it runs cold) apart from the done line's
	// recorded elapsed_ms.
	refSrv := New(Config{})
	refTS := httptest.NewServer(refSrv)
	defer refTS.Close()
	refResp, refBody := postRaw(t, refTS.URL+"/v1/jobs", &req)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference stream failed: %d: %s", refResp.StatusCode, refBody)
	}
	gotLines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	refLines := bytes.Split(bytes.TrimSpace(refBody), []byte("\n"))
	if len(gotLines) != len(refLines) {
		t.Fatalf("stream line count %d vs reference %d", len(gotLines), len(refLines))
	}
	for i := range gotLines {
		got, ref := gotLines[i], refLines[i]
		if i == len(gotLines)-1 { // done line carries elapsed_ms
			got, ref = stripElapsed(t, got), stripElapsed(t, ref)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("stream line %d differs\nreplay %s\nlive   %s", i, gotLines[i], refLines[i])
		}
	}
}

// TestResultStoreDistributedReplay: a sharded job's merged result is stored
// on the coordinator and replays byte-identically without re-leasing.
func TestResultStoreDistributedReplay(t *testing.T) {
	cw := &countingWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 2})}
	ws := httptest.NewServer(cw)
	defer ws.Close()
	cfg := storeConfig()
	cfg.Workers = []string{ws.URL}
	coord := New(cfg)
	ts := httptest.NewServer(coord)
	defer ts.Close()

	req := distributedJob(42)
	resp1, body1 := postRaw(t, ts.URL+"/v1/jobs", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("distributed run failed: %d: %s", resp1.StatusCode, body1)
	}
	leased := cw.shards.Load()
	if leased == 0 {
		t.Fatal("job did not shard")
	}
	resp2, body2 := postRaw(t, ts.URL+"/v1/jobs", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("distributed replay failed: %d: %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("distributed replay differs from the recorded run")
	}
	if cw.shards.Load() != leased {
		t.Fatal("replay leased shards to the worker")
	}
	if coord.Snapshot().ResultsHits != 1 {
		t.Fatal("replay not served from the store")
	}

	// Streamed replay of the distributed record: batch lines must come out
	// in index order even though shard completion order recorded them
	// arbitrarily.
	sreq := *req
	sreq.Stream = true
	resp3, body3 := postRaw(t, ts.URL+"/v1/jobs", &sreq)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("stream replay failed: %d", resp3.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(body3), []byte("\n"))
	next := 0
	for _, ln := range lines {
		var bl batchLine
		if err := json.Unmarshal(ln, &bl); err != nil {
			t.Fatalf("bad stream line %s: %v", ln, err)
		}
		if bl.Type != "batch" {
			continue
		}
		if bl.Batch != next {
			t.Fatalf("replayed batch %d out of order (want %d)", bl.Batch, next)
		}
		next++
	}
	if next != 16 {
		t.Fatalf("replayed %d batches, want 16", next)
	}
}

// TestResultStoreSweepReplay: sweeps replay byte-identically in both
// response shapes, and the replay runs zero points.
func TestResultStoreSweepReplay(t *testing.T) {
	for _, stream := range []bool{false, true} {
		t.Run(fmt.Sprintf("stream=%v", stream), func(t *testing.T) {
			srv := New(storeConfig())
			ts := httptest.NewServer(srv)
			defer ts.Close()

			req := sweepReq()
			*req.Stream = stream
			resp1, body1 := postRaw(t, ts.URL+"/v1/sweeps", req)
			if resp1.StatusCode != http.StatusOK {
				t.Fatalf("cold sweep failed: %d: %s", resp1.StatusCode, body1)
			}
			pointsCold := srv.Snapshot().SweepPointsRun
			if pointsCold == 0 {
				t.Fatal("cold sweep ran no points")
			}
			resp2, body2 := postRaw(t, ts.URL+"/v1/sweeps", req)
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("sweep replay failed: %d: %s", resp2.StatusCode, body2)
			}
			if !bytes.Equal(body1, body2) {
				t.Fatalf("sweep replay differs from cold run\ncold   %.200s\nreplay %.200s", body1, body2)
			}
			st := srv.Snapshot()
			if st.ResultsHits != 1 || st.SweepPointsRun != pointsCold {
				t.Fatalf("replay hits %d, points run %d (cold %d)", st.ResultsHits, st.SweepPointsRun, pointsCold)
			}
			if st.SweepsCompleted != 2 {
				t.Fatalf("sweeps_completed %d, want 2", st.SweepsCompleted)
			}
		})
	}
}

// TestResultStoreSurvivesRestart: with a backing directory, a brand-new
// server over the same directory replays a previous instance's results —
// including as a stream — byte-identically, without simulating.
func TestResultStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := storeConfig()
	cfg.StoreDir = dir

	srv1 := New(cfg)
	if err := srv1.StoreError(); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	req := JobRequest{Circuit: "qft_n8", Noise: "DC", Shots: 400, Seed: 7, CopyCost: 5, BatchShots: 100}
	resp1, body1 := postRaw(t, ts1.URL+"/v1/jobs", &req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run failed: %d: %s", resp1.StatusCode, body1)
	}
	sweep1 := sweepReq()
	sresp1, sbody1 := postRaw(t, ts1.URL+"/v1/sweeps", sweep1)
	if sresp1.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep failed: %d: %s", sresp1.StatusCode, sbody1)
	}
	ts1.Close()

	// The restarted daemon: same directory, fresh everything else.
	srv2 := New(cfg)
	if err := srv2.StoreError(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	resp2, body2 := postRaw(t, ts2.URL+"/v1/jobs", &req)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body1, body2) {
		t.Fatalf("restarted replay differs (status %d)", resp2.StatusCode)
	}
	sresp2, sbody2 := postRaw(t, ts2.URL+"/v1/sweeps", sweep1)
	if sresp2.StatusCode != http.StatusOK || !bytes.Equal(sbody1, sbody2) {
		t.Fatalf("restarted sweep replay differs (status %d)", sresp2.StatusCode)
	}
	st := srv2.Snapshot()
	if st.ResultsHits != 2 || st.BatchesRun != 0 || st.SweepPointsRun != 0 {
		t.Fatalf("restarted server simulated: %+v", st)
	}

	// Stream replay across the restart: the stored batch records survived.
	req.Stream = true
	resp3, body3 := postRaw(t, ts2.URL+"/v1/jobs", &req)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("restarted stream replay failed: %d", resp3.StatusCode)
	}
	if !bytes.Contains(body3, []byte(`"type":"batch"`)) || !bytes.Contains(body3, []byte(`"type":"done"`)) {
		t.Fatalf("restarted stream replay incomplete: %.300s", body3)
	}
}

// TestSnapshotCacheCrossJobHits is the cross-job snapshot conformance test:
// a second job whose circuit shares only a gate prefix (and plan bounds)
// with the first is served boundary states from the cache — visible as
// snapshot_hits — and its body is byte-identical (modulo elapsed_ms) to
// the same request on a server with the cache disabled.
func TestSnapshotCacheCrossJobHits(t *testing.T) {
	base := tqsim.BenchmarkByName("qft_n8")
	qasm, err := tqsim.SerializeQASM(base)
	if err != nil {
		t.Fatal(err)
	}
	// Same gate prefix, different final rotation angle: DCP ignores angles,
	// so both circuits get identical plan bounds, and every boundary before
	// the final cut shares its prefix digest.
	qasmA := qasm + "rz(0.3) q[0];\n"
	qasmB := qasm + "rz(0.7) q[0];\n"
	mkReq := func(src string, seed uint64) *JobRequest {
		return &JobRequest{QASM: src, Noise: "DC", Shots: 400, Seed: seed, CopyCost: 5, Backend: "statevec"}
	}

	srv := New(Config{SnapshotCacheBytes: 64 << 20})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, body := postRaw(t, ts.URL+"/v1/jobs", mkReq(qasmA, 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("job A failed: %d: %s", resp.StatusCode, body)
	}
	st0 := srv.Snapshot()
	if st0.SnapshotMisses == 0 {
		t.Skipf("plan produced no snapshot boundaries (structure changed?): %+v", st0)
	}

	respB, bodyB := postRaw(t, ts.URL+"/v1/jobs", mkReq(qasmB, 1))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("job B failed: %d: %s", respB.StatusCode, bodyB)
	}
	st1 := srv.Snapshot()
	if st1.SnapshotHits <= st0.SnapshotHits {
		t.Fatalf("job B sharing a prefix booked no snapshot hits: before %d after %d", st0.SnapshotHits, st1.SnapshotHits)
	}
	if st1.SnapshotBytes == 0 {
		t.Fatal("snapshot cache reports zero resident bytes")
	}

	// Byte-identity against a cache-disabled server: prefix reuse must be
	// histogram-preserving down to the last byte.
	refSrv := New(Config{})
	refTS := httptest.NewServer(refSrv)
	defer refTS.Close()
	respRef, bodyRef := postRaw(t, refTS.URL+"/v1/jobs", mkReq(qasmB, 1))
	if respRef.StatusCode != http.StatusOK {
		t.Fatalf("reference job failed: %d: %s", respRef.StatusCode, bodyRef)
	}
	if !bytes.Equal(stripElapsed(t, bodyB), stripElapsed(t, bodyRef)) {
		t.Fatalf("snapshot reuse changed the response\nreuse %s\nref   %s", bodyB, bodyRef)
	}
}

// TestSweepUsesSharedSnapshotCache: a sweep run after a job over the same
// circuit adopts the job's cached boundary states (the engine-level reuse
// promoted to service scope).
func TestSweepUsesSharedSnapshotCache(t *testing.T) {
	srv := New(Config{SnapshotCacheBytes: 64 << 20})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, body := postRaw(t, ts.URL+"/v1/jobs",
		&JobRequest{Circuit: "qft_n8", Noise: "DC", Shots: 400, Seed: 1, CopyCost: 5, Backend: "statevec"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming job failed: %d: %s", resp.StatusCode, body)
	}
	st0 := srv.Snapshot()
	if st0.SnapshotMisses == 0 {
		t.Skip("plan produced no snapshot boundaries")
	}

	stream := false
	req := &SweepRequest{Spec: tqsim.SweepSpec{
		Circuit: "qft_n8", Noise: []tqsim.SweepNoisePoint{{Name: "DC"}},
		Shots: []int{400}, Seed: 1, CopyCost: 5, Backend: "statevec",
	}, Stream: &stream}
	if resp, body := postRaw(t, ts.URL+"/v1/sweeps", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep failed: %d: %s", resp.StatusCode, body)
	}
	if st := srv.Snapshot(); st.SnapshotHits <= st0.SnapshotHits {
		t.Fatalf("sweep booked no snapshot hits: before %d after %d", st0.SnapshotHits, st.SnapshotHits)
	}
}

// TestCircuitHashDistinguishesUnitaries is the plan-cache collision
// regression. The old key hashed canonical QASM and fell back to
// name/width/length for unserializable circuits, so two same-shape circuits
// differing only in an explicit unitary matrix shared one plan-cache entry
// — the second executed the first's cached gate list.
func TestCircuitHashDistinguishesUnitaries(t *testing.T) {
	build := func(p complex128) *tqsim.Circuit {
		u := qmath.Identity(2)
		u.Set(1, 1, p)
		c := circuit.New("twin", 2)
		c.H(0).CX(0, 1)
		c.Append(gate.NewUnitary(u, "phase", 1))
		return c
	}
	a, b := build(1i), build(-1i)
	if _, err := tqsim.SerializeQASM(a); err == nil {
		t.Skip("unitary gates became serializable; the fallback no longer applies")
	}
	opt := &tqsim.Options{Backend: tqsim.AutoBackend}
	ha := circuitHash(a, "DC", "tqsim", opt)
	hb := circuitHash(b, "DC", "tqsim", opt)
	if ha == hb {
		t.Fatal("same-shape circuits with different unitaries share a plan-cache key")
	}
	if ha != circuitHash(build(1i), "DC", "tqsim", opt) {
		t.Fatal("circuitHash is not deterministic")
	}
}

// TestQueuedClientDisconnectCancels is the queued-cancellation regression:
// a client that disconnects while waiting for an execution slot must leave
// the queue immediately and book as canceled — not hold its queue slot
// until a slot frees and then execute into a dead connection.
func TestQueuedClientDisconnectCancels(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 4})
	// Hold the server's only slot so the next job queues.
	if err := srv.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	pending := func() int {
		srv.pendMu.Lock()
		defer srv.pendMu.Unlock()
		return srv.pending
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	body, err := json.Marshal(&JobRequest{Circuit: "bv_n10", Noise: "DC", Shots: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()

	waitFor("the job to queue", func() bool { return pending() == 2 })
	cancel() // the client disconnects while queued
	if err := <-done; err == nil {
		t.Fatal("request succeeded despite cancellation")
	}
	waitFor("the queued job to leave", func() bool { return pending() == 1 })
	waitFor("the cancel to be booked", func() bool { return srv.Snapshot().JobsCanceled == 1 })
	if st := srv.Snapshot(); st.JobsFailed != 0 || st.BatchesRun != 0 {
		t.Fatalf("cancelled-while-queued job failed or ran: %+v", st)
	}
	srv.release()
	// The released slot is free again: a normal job must run fine.
	resp, rbody := postRaw(t, ts.URL+"/v1/jobs", &JobRequest{Circuit: "bv_n10", Noise: "DC", Shots: 100, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel job failed: %d: %s", resp.StatusCode, rbody)
	}
}

// TestPlanCacheStatsConsistentUnderEviction hammers a tiny plan cache from
// many goroutines with distinct keys and checks the counter algebra the
// /v1/stats consumers rely on: every miss either stays resident or books an
// eviction, under the race detector.
func TestPlanCacheStatsConsistentUnderEviction(t *testing.T) {
	srv := New(Config{PlanCacheEntries: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const goroutines = 8
	const perG = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Distinct shots → distinct plan-cache keys; the /v1/plan
				// endpoint plans without executing.
				req := JobRequest{Circuit: "bv_n10", Noise: "DC", Shots: 101 + g*perG + i}
				buf, _ := json.Marshal(&req)
				resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(buf))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()

	st := srv.Snapshot()
	if st.PlanCacheMisses != goroutines*perG {
		t.Fatalf("misses %d, want %d (all keys distinct)", st.PlanCacheMisses, goroutines*perG)
	}
	if got := st.PlanCacheMisses - st.PlanCacheEvicted; got != uint64(st.PlanCacheEntries) {
		t.Fatalf("misses-evicted=%d but entries=%d: a plan was double-counted or lost",
			got, st.PlanCacheEntries)
	}
	if st.PlanCacheEntries > 4 {
		t.Fatalf("plan cache over its cap: %d entries", st.PlanCacheEntries)
	}
}
