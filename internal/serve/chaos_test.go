package serve

// The chaos property suite: seeded fault plans (internal/faultinject) are
// injected between the coordinator and its workers — on the worker side via
// handler middleware, on the coordinator side via Config.Transport — and the
// headline invariant is checked for every plan: as long as the coordinator
// survives, the merged job and sweep histograms are BYTE-IDENTICAL to the
// fault-free run. Faults may slow the job down, requeue leases, trip
// breakers, kill and revive workers; they may never change a single count.
//
// Run via `make test-chaos` (under -race); the plans are deterministic in
// their seeds, so a failure reproduces with the seed in the test name.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"tqsim/internal/faultinject"
)

// chaosConfig is the coordinator configuration the chaos grid runs under:
// fast retries and probes so faulty runs stay quick, a breaker tight enough
// to actually trip, and a pinned jitter seed so the retry schedule replays.
func chaosConfig(workers []string, seed uint64, transport http.RoundTripper) Config {
	return Config{
		Workers:          workers,
		Transport:        transport,
		LeaseRetries:     2,
		RetryBackoff:     time.Millisecond,
		RetryAfterCap:    10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Millisecond,
		ProbeBackoff:     5 * time.Millisecond,
		JitterSeed:       seed,
	}
}

// chaosPlans is the fault grid. Every rule targets /v1/shard so probes and
// stats stay clean; Probability 1 + Count caps make each plan's fault count
// certain, so the suite can assert the faults actually fired.
var chaosPlans = []struct {
	name string
	plan faultinject.Plan
}{
	{"drop-burst", faultinject.Plan{Seed: 101, Rules: []faultinject.Rule{
		{Kind: faultinject.Drop, Path: "/v1/shard", Probability: 1, Count: 3},
	}}},
	{"5xx-burst", faultinject.Plan{Seed: 102, Rules: []faultinject.Rule{
		{Kind: faultinject.Err5xx, Path: "/v1/shard", Probability: 1, Count: 4},
	}}},
	{"503-retry-after", faultinject.Plan{Seed: 103, Rules: []faultinject.Rule{
		{Kind: faultinject.Err5xx, Path: "/v1/shard", Probability: 1, Count: 2,
			Status: http.StatusServiceUnavailable, RetryAfter: time.Second},
	}}},
	{"kill-mid-lease", faultinject.Plan{Seed: 104, Rules: []faultinject.Rule{
		{Kind: faultinject.KillMidLease, Path: "/v1/shard", Probability: 1, Count: 2},
	}}},
	{"corrupt-payload", faultinject.Plan{Seed: 105, Rules: []faultinject.Rule{
		{Kind: faultinject.Corrupt, Path: "/v1/shard", Probability: 1, Count: 2},
	}}},
	{"delay-then-drop", faultinject.Plan{Seed: 106, Rules: []faultinject.Rule{
		{Kind: faultinject.Delay, Path: "/v1/shard", Probability: 0.5, Delay: 5 * time.Millisecond},
		{Kind: faultinject.Drop, Path: "/v1/shard", Probability: 1, After: 2, Count: 2},
	}}},
	{"mixed-storm", faultinject.Plan{Seed: 107, Rules: []faultinject.Rule{
		{Kind: faultinject.Drop, Path: "/v1/shard", Probability: 0.5, Count: 2},
		{Kind: faultinject.Err5xx, Path: "/v1/shard", Probability: 1, Count: 2},
		{Kind: faultinject.KillMidLease, Path: "/v1/shard", Probability: 1, After: 1, Count: 2},
		{Kind: faultinject.Corrupt, Path: "/v1/shard", Probability: 1, After: 3, Count: 2},
		{Kind: faultinject.Delay, Path: "/v1/shard", Probability: 0.3, Delay: 3 * time.Millisecond},
	}}},
}

// runChaosJob runs the standard distributed job through a faulty pool and
// returns the response and the coordinator's stats.
func runChaosJob(t *testing.T, cfgOf func(urls []string) Config, wrap func(http.Handler) http.Handler) (*JobResponse, *Stats) {
	t.Helper()
	var urls []string
	for i := 0; i < 3; i++ {
		var h http.Handler = New(Config{WorkerMode: true, MaxConcurrent: 2})
		if wrap != nil {
			h = wrap(h)
		}
		ws := httptest.NewServer(h)
		t.Cleanup(ws.Close)
		urls = append(urls, ws.URL)
	}
	coord := New(cfgOf(urls))
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", distributedJob(64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos job failed: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	st := coord.Snapshot()
	return &jr, &st
}

// TestChaosJobHistogramsByteIdentical is the headline invariant over the
// server-seam grid: worker-side faults of every kind, merged histogram
// byte-identical to the fault-free run.
func TestChaosJobHistogramsByteIdentical(t *testing.T) {
	ref := singleProcessReference(t, distributedJob(64))
	for _, tc := range chaosPlans {
		t.Run(tc.name+"-seed"+strconv.FormatUint(tc.plan.Seed, 10), func(t *testing.T) {
			in := faultinject.New(tc.plan)
			jr, st := runChaosJob(t,
				func(urls []string) Config { return chaosConfig(urls, tc.plan.Seed, nil) },
				in.Middleware)
			sameJSONCounts(t, tc.name, ref.Counts, jr.Counts)
			if jr.Outcomes != ref.Outcomes {
				t.Fatalf("outcomes %d, want %d — a batch ran twice or was lost", jr.Outcomes, ref.Outcomes)
			}
			if in.FiredTotal() == 0 {
				t.Fatal("the fault plan never fired; the run proved nothing")
			}
			// Faults must be visible in the stats surface, not silently eaten.
			if st.LeaseRetries == 0 && st.ShardsRequeued == 0 && st.RetryAfterWaits == 0 {
				t.Fatalf("faults fired %d times but no retry/requeue was recorded: %+v", in.FiredTotal(), st)
			}
		})
	}
}

// TestChaosClientSeam runs a mixed plan on the coordinator's own transport
// (Config.Transport): requests dropped before the worker, responses lost
// after the work, and synthesized 503s — same invariant.
func TestChaosClientSeam(t *testing.T) {
	ref := singleProcessReference(t, distributedJob(64))
	plan := faultinject.Plan{Seed: 201, Rules: []faultinject.Rule{
		{Kind: faultinject.Drop, Path: "/v1/shard", Probability: 1, Count: 2},
		{Kind: faultinject.KillMidLease, Path: "/v1/shard", Probability: 1, After: 2, Count: 2},
		{Kind: faultinject.Err5xx, Path: "/v1/shard", Probability: 1, After: 5, Count: 1,
			Status: http.StatusServiceUnavailable, RetryAfter: time.Second},
	}}
	in := faultinject.New(plan)
	jr, st := runChaosJob(t,
		func(urls []string) Config { return chaosConfig(urls, plan.Seed, in.RoundTripper(nil)) },
		nil)
	sameJSONCounts(t, "client seam", ref.Counts, jr.Counts)
	if in.FiredTotal() < 3 {
		t.Fatalf("client-seam plan fired %d faults, want >= 3", in.FiredTotal())
	}
	if st.LeaseRetries == 0 {
		t.Fatalf("transport faults produced no retries: %+v", st)
	}
}

// TestChaosCorruptionNeverMerges pins the checksum path: corrupted payloads
// are counted, requeued and re-run — and the merged histogram still matches.
func TestChaosCorruptionNeverMerges(t *testing.T) {
	ref := singleProcessReference(t, distributedJob(64))
	plan := faultinject.Plan{Seed: 301, Rules: []faultinject.Rule{
		{Kind: faultinject.Corrupt, Path: "/v1/shard", Probability: 1, Count: 3},
	}}
	in := faultinject.New(plan)
	jr, st := runChaosJob(t,
		func(urls []string) Config { return chaosConfig(urls, plan.Seed, nil) },
		in.Middleware)
	sameJSONCounts(t, "corruption", ref.Counts, jr.Counts)
	if st.ChecksumFailures == 0 {
		t.Fatalf("corrupt payloads fired %d times but no checksum failure recorded: %+v",
			in.FiredTotal(), st)
	}
}

// TestChaosSweepHistogramsByteIdentical runs the sweep grid through faulty
// pools: per-point histograms byte-identical to the local sweep.
func TestChaosSweepHistogramsByteIdentical(t *testing.T) {
	ref := func() map[int]map[string]int {
		rs := httptest.NewServer(New(Config{}))
		defer rs.Close()
		out := map[int]map[string]int{}
		for _, pj := range postSweep(t, rs.URL, sweepReq()).Results {
			out[pj.Index] = pj.Counts
		}
		return out
	}()

	for _, tc := range []struct {
		name string
		plan faultinject.Plan
	}{
		{"sweep-kill-corrupt", faultinject.Plan{Seed: 401, Rules: []faultinject.Rule{
			{Kind: faultinject.KillMidLease, Path: "/v1/shard", Probability: 1, Count: 1},
			{Kind: faultinject.Corrupt, Path: "/v1/shard", Probability: 1, After: 1, Count: 1},
		}}},
		{"sweep-5xx-drop", faultinject.Plan{Seed: 402, Rules: []faultinject.Rule{
			{Kind: faultinject.Err5xx, Path: "/v1/shard", Probability: 1, Count: 2},
			{Kind: faultinject.Drop, Path: "/v1/shard", Probability: 0.5, After: 2, Count: 2},
		}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := faultinject.New(tc.plan)
			var urls []string
			for i := 0; i < 2; i++ {
				ws := httptest.NewServer(in.Middleware(New(Config{WorkerMode: true, MaxConcurrent: 2})))
				t.Cleanup(ws.Close)
				urls = append(urls, ws.URL)
			}
			coord := New(chaosConfig(urls, tc.plan.Seed, nil))
			ts := httptest.NewServer(coord)
			t.Cleanup(ts.Close)

			sr := postSweep(t, ts.URL, sweepReq())
			if len(sr.Results) != len(ref) {
				t.Fatalf("%d points, want %d", len(sr.Results), len(ref))
			}
			for _, pj := range sr.Results {
				sameJSONCounts(t, tc.name+" point "+strconv.Itoa(pj.Index), ref[pj.Index], pj.Counts)
			}
			if in.FiredTotal() == 0 {
				t.Fatal("the sweep fault plan never fired")
			}
		})
	}
}

// TestChaosJoinLeaveChurn is the membership half of the grid: a job starts
// on one slow worker, two more join mid-job through /v1/workers (one of
// them dies after its first lease), and the merge is still byte-identical.
func TestChaosJoinLeaveChurn(t *testing.T) {
	// 32 batches (not the suite's usual 16) so plenty of leases remain
	// queued when the joiners arrive.
	churnJob := func() *JobRequest {
		return &JobRequest{Circuit: "qft_n8", Noise: "DC", Shots: 800, Seed: 88, BatchShots: 25}
	}
	ref := singleProcessReference(t, churnJob())

	// Two slots at 40ms per lease: the job is cut into 8 leases, the slow
	// worker holds 2 of them well past the join moment, and at least 4 sit
	// queued when the joiners arrive — so the least-loaded dispatch is
	// guaranteed to hand the joiner work.
	slow := &slowWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 2}), delay: 40 * time.Millisecond}
	slowS := httptest.NewServer(slow)
	defer slowS.Close()
	joiner := &countingWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 2})}
	joinerS := httptest.NewServer(joiner)
	defer joinerS.Close()
	leaver := &killableWorker{inner: New(Config{WorkerMode: true, MaxConcurrent: 2})}
	leaverS := httptest.NewServer(leaver)
	defer leaverS.Close()

	cfg := chaosConfig([]string{slowS.URL}, 501, nil)
	cfg.AcceptWorkers = true
	coord := New(cfg)
	ts := httptest.NewServer(coord)
	defer ts.Close()

	done := make(chan []byte, 1)
	status := make(chan int, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", churnJob())
		status <- resp.StatusCode
		done <- body
	}()

	// Two workers join while the job is running; their heartbeats keep them
	// alive (and revive the leaver if its failure marked it dead).
	time.Sleep(25 * time.Millisecond)
	stop := make(chan struct{})
	defer close(stop)
	announceLoop(t, ts.URL, joinerS.URL, 2*time.Millisecond, stop)
	announceLoop(t, ts.URL, leaverS.URL, 2*time.Millisecond, stop)

	if code := <-status; code != http.StatusOK {
		t.Fatalf("churn job failed: %d: %s", code, <-done)
	}
	var jr JobResponse
	if err := json.Unmarshal(<-done, &jr); err != nil {
		t.Fatal(err)
	}
	sameJSONCounts(t, "churn merge", ref.Counts, jr.Counts)
	if jr.Outcomes != ref.Outcomes {
		t.Fatalf("outcomes %d, want %d", jr.Outcomes, ref.Outcomes)
	}

	st := coord.Snapshot()
	if st.WorkersJoined != 2 {
		t.Fatalf("workers joined = %d, want 2", st.WorkersJoined)
	}
	if joiner.shards.Load() == 0 {
		t.Fatal("the mid-job joiner never served a lease")
	}
	if st.WorkersTotal != 3 {
		t.Fatalf("registry holds %d workers, want 3", st.WorkersTotal)
	}
}
