package serve

// The worker side of the distributed shard protocol: a Server constructed
// with Config.WorkerMode leases batch ranges from a coordinator via
// POST /v1/shard and advertises its capacity via GET /v1/worker. A shard
// lease runs through exactly the same validation, planning, admission and
// execution machinery as a directly submitted job — a worker is a full
// tqsimd that additionally accepts leases, so it can also be probed,
// queried for stats, and even used directly while serving a pool.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// handleShard executes one leased batch range and returns the per-batch
// histograms. Capacity problems answer 503 (busy) or 413 (the job can
// never fit this worker) — the coordinator re-leases elsewhere; both are
// planner-arithmetic rejections, mirroring direct job admission.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.WorkerMode {
		writeError(w, http.StatusNotFound, "not a worker: start tqsimd with -worker to accept shard leases")
		return
	}
	if s.Draining() {
		s.rejectDraining(w)
		return
	}
	var sr ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard body: "+err.Error())
		return
	}
	if sr.Sweep != nil {
		s.handleSweepShard(w, r, &sr)
		return
	}
	sr.Job.Stream = false
	j, herr := s.prepare(&sr.Job)
	if herr != nil {
		s.stats[statFailed].Add(1)
		writeError(w, herr.status, herr.msg)
		return
	}
	if n := j.numBatches(); sr.From < 0 || sr.To > n || sr.From >= sr.To {
		s.stats[statFailed].Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("lease [%d,%d) outside the job's %d batches", sr.From, sr.To, n))
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		if errors.Is(err, errQueueFull) {
			// 503, not the job endpoint's 429: the caller is a coordinator and
			// should re-lease the range to another worker, not bounce a client.
			s.stats[statQueueFull].Add(1)
			writeError(w, http.StatusServiceUnavailable, "worker at capacity; re-lease elsewhere")
		} else {
			// The coordinator abandoned the lease while it was queued here.
			s.stats[statCanceled].Add(1)
		}
		return
	}
	defer s.release()
	if herr := s.reserveMemory(j.estPeak); herr != nil {
		writeError(w, herr.status, herr.msg)
		return
	}
	defer s.releaseMemory(j.estPeak)

	// r.Context() threads coordinator cancellation into the executor: when
	// the coordinator abandons the lease (client disconnect, job abort),
	// the in-flight trajectory work here stops too.
	resp := &ShardResponse{}
	_, _, backend, structure, herr := s.runBatches(r.Context(), j, sr.From, sr.To, func(br *batchResult) error {
		resp.Batches = append(resp.Batches, ShardBatch{
			Batch:     br.index,
			Seed:      br.seed,
			Outcomes:  br.outcomes,
			Counts:    countsJSON(br.counts),
			Backend:   br.backend,
			Structure: br.structure,
		})
		return nil
	})
	if herr != nil {
		s.countJobError(r.Context(), herr)
		writeError(w, herr.status, herr.msg)
		return
	}
	resp.Backend, resp.Structure = backend, structure
	resp.Checksum = ShardChecksum(resp.Batches)
	s.stats[statCompleted].Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleSweepShard executes one leased range of sweep points. The worker
// re-prepares the wire spec — expansion and planning are deterministic in
// the (pinned) spec, so coordinator and worker always agree on the grid,
// the per-point seeds, and each point's resolved engine; the per-point
// histograms it returns are byte-identical to the coordinator running the
// same points itself.
func (s *Server) handleSweepShard(w http.ResponseWriter, r *http.Request, sr *ShardRequest) {
	sj, herr := s.preparedSweepForLease(sr.Sweep)
	if herr != nil {
		s.stats[statFailed].Add(1)
		writeError(w, herr.status, herr.msg)
		return
	}
	if n := sj.prep.NumPoints(); sr.From < 0 || sr.To > n || sr.From >= sr.To {
		s.stats[statFailed].Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("lease [%d,%d) outside the sweep's %d points", sr.From, sr.To, n))
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		if errors.Is(err, errQueueFull) {
			s.stats[statQueueFull].Add(1)
			writeError(w, http.StatusServiceUnavailable, "worker at capacity; re-lease elsewhere")
		} else {
			s.stats[statCanceled].Add(1)
		}
		return
	}
	defer s.release()
	if herr := s.reserveMemory(sj.estPeak); herr != nil {
		writeError(w, herr.status, herr.msg)
		return
	}
	defer s.releaseMemory(sj.estPeak)

	resp := &ShardResponse{}
	if herr := s.runSweepRange(r.Context(), sj, sr.From, sr.To, func(sb *ShardBatch) *httpError {
		resp.Batches = append(resp.Batches, *sb)
		resp.Backend, resp.Structure = sb.Backend, sb.Structure
		s.stats[statSweepPoints].Add(1)
		return nil
	}); herr != nil {
		s.countJobError(r.Context(), herr)
		writeError(w, herr.status, herr.msg)
		return
	}
	resp.Checksum = ShardChecksum(resp.Batches)
	s.stats[statCompleted].Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkerInfo serves the capacity advertisement; coordinators poll it
// as the health check and placement input. The same payload rides inside
// WorkerAnnounce heartbeats.
func (s *Server) handleWorkerInfo(w http.ResponseWriter, r *http.Request) {
	drainRequest(r)
	writeJSON(w, http.StatusOK, s.workerInfo())
}
