package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func statsOf(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStatsLatencyAccounting pins the server-side latency histogram in
// /v1/stats: every completed request — fresh runs, store replays, and
// sweeps — lands exactly one sample, and the exported quantiles are
// consistent.
func TestStatsLatencyAccounting(t *testing.T) {
	ts := httptest.NewServer(New(Config{StoreEntries: 16}))
	defer ts.Close()

	if st := statsOf(t, ts.URL); st.LatencyCount != 0 || st.LatencyP99MS != 0 {
		t.Fatalf("fresh server already has latency samples: %+v", st)
	}

	job := &JobRequest{Circuit: "bv_n8", Noise: "DC", Shots: 100, Seed: 5}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", job)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status %d: %s", resp.StatusCode, body)
	}
	st := statsOf(t, ts.URL)
	if st.LatencyCount != 1 {
		t.Fatalf("after one job: latency_count %d, want 1", st.LatencyCount)
	}
	if st.LatencyP50MS <= 0 || st.LatencyMeanMS <= 0 {
		t.Fatalf("latency quantiles not populated: %+v", st)
	}

	// The identical request replays from the result store — replays are
	// requests too and must be measured, not skipped.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", job)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status %d: %s", resp.StatusCode, body)
	}
	st = statsOf(t, ts.URL)
	if st.ResultsHits == 0 {
		t.Fatalf("second identical job was not a store replay: %+v", st)
	}
	if st.LatencyCount != 2 {
		t.Fatalf("after job + replay: latency_count %d, want 2", st.LatencyCount)
	}

	// A rejected request must NOT land in the histogram.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", &JobRequest{Circuit: "no_such_circuit", Shots: 10})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("bogus circuit accepted")
	}
	if st = statsOf(t, ts.URL); st.LatencyCount != 2 {
		t.Fatalf("rejected request recorded latency: count %d, want 2", st.LatencyCount)
	}

	// Quantile ordering holds with mixed samples.
	if st.LatencyP99MS < st.LatencyP95MS || st.LatencyP95MS < st.LatencyP50MS {
		t.Fatalf("quantiles out of order: %+v", st)
	}
}

// TestStatsLatencyStreaming: a streaming (NDJSON) job records exactly one
// sample covering the whole stream.
func TestStatsLatencyStreaming(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
		Circuit: "bv_n8", Noise: "DC", Shots: 200, Seed: 9, BatchShots: 50, Stream: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream job status %d: %s", resp.StatusCode, body)
	}
	if st := statsOf(t, ts.URL); st.LatencyCount != 1 {
		t.Fatalf("streaming job: latency_count %d, want 1", st.LatencyCount)
	}
}
