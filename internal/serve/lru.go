package serve

import "container/list"

// lruCache is a bounded most-recently-used cache. The previous unbounded
// plan map grew one entry per distinct (circuit, noise, options, batch
// size) forever — under sustained traffic from many distinct circuits that
// is a slow memory leak that eventually takes the daemon down. Entries are
// tiny next to running state vectors, but plans pin their circuits (gate
// slices), so the cap matters at service lifetimes. The type is generic:
// the plan cache stores *cachedPlan, the worker's sweep-lease cache stores
// prepared sweeps.
//
// Not goroutine-safe: callers hold their own mutex (Server.planMu /
// Server.sweepMu).
type lruCache[V any] struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache[V]) get(key string) (V, bool) {
	el, ok := c.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// add inserts (or refreshes) an entry and reports how many entries were
// evicted to stay within the cap.
func (c *lruCache[V]) add(key string, val V) (evicted int) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return 0
	}
	c.m[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.cap > 0 && c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*lruEntry[V]).key)
		evicted++
	}
	return evicted
}

func (c *lruCache[V]) len() int { return c.ll.Len() }
