package serve

import "container/list"

// lruCache is a bounded most-recently-used plan cache. The previous
// unbounded map grew one entry per distinct (circuit, noise, options,
// batch size) forever — under sustained traffic from many distinct
// circuits that is a slow memory leak that eventually takes the daemon
// down. Entries are tiny next to running state vectors, but plans pin
// their circuits (gate slices), so the cap matters at service lifetimes.
//
// Not goroutine-safe: callers hold Server.planMu.
type lruCache struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val *cachedPlan
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (*cachedPlan, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) an entry and reports how many entries were
// evicted to stay within the cap.
func (c *lruCache) add(key string, val *cachedPlan) (evicted int) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return 0
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.cap > 0 && c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

func (c *lruCache) len() int { return c.ll.Len() }
