// Package gate defines the quantum gate library: the named gates used by the
// benchmark workloads, their unitary matrices, parameterized rotations, and
// arbitrary-unitary gates (needed for Quantum Volume model circuits).
//
// A Gate value is an *instance*: a Kind, the qubits it acts on, optional real
// parameters, and, for KindUnitary, an explicit matrix. Matrices use the
// little-endian qubit convention shared with internal/statevec: basis index
// bit i corresponds to qubit i, and for a multi-qubit gate the first qubit in
// Qubits is the least significant bit of the matrix's basis index.
package gate

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"

	"tqsim/internal/qmath"
)

// Kind identifies a gate type.
type Kind int

// Gate kinds. One- and two-qubit gates cover the full benchmark suite; CCX
// is provided for the arithmetic circuits and is decomposed by workloads
// that want a strictly 1q/2q gate set.
const (
	KindI Kind = iota
	KindX
	KindY
	KindZ
	KindH
	KindS
	KindSdg
	KindT
	KindTdg
	KindSX  // sqrt(X)
	KindSY  // sqrt(Y)
	KindSW  // sqrt(W), W=(X+Y)/sqrt(2); used by supremacy-style circuits
	KindRX  // params: theta
	KindRY  // params: theta
	KindRZ  // params: theta
	KindP   // phase gate diag(1, e^{i theta}); params: theta
	KindU3  // params: theta, phi, lambda
	KindCX  // Qubits: [control, target]
	KindCY  // Qubits: [control, target]
	KindCZ  // Qubits: [control, target] (symmetric)
	KindCP  // controlled phase; Qubits: [control, target]; params: theta
	KindCRZ // controlled RZ; Qubits: [control, target]; params: theta
	KindCRX // controlled RX; Qubits: [control, target]; params: theta
	KindCRY // controlled RY; Qubits: [control, target]; params: theta
	KindCH  // controlled H
	KindSWAP
	KindCCX     // Toffoli; Qubits: [c0, c1, target]
	KindCSWAP   // Fredkin; Qubits: [control, a, b]
	KindUnitary // explicit matrix on 1..3 qubits
	kindCount
)

var kindNames = [...]string{
	KindI: "id", KindX: "x", KindY: "y", KindZ: "z", KindH: "h",
	KindS: "s", KindSdg: "sdg", KindT: "t", KindTdg: "tdg",
	KindSX: "sx", KindSY: "sy", KindSW: "sw",
	KindRX: "rx", KindRY: "ry", KindRZ: "rz", KindP: "p", KindU3: "u3",
	KindCX: "cx", KindCY: "cy", KindCZ: "cz", KindCP: "cp",
	KindCRZ: "crz", KindCRX: "crx", KindCRY: "cry", KindCH: "ch",
	KindSWAP: "swap", KindCCX: "ccx", KindCSWAP: "cswap",
	KindUnitary: "unitary",
}

var kindParams = [...]int{
	KindRX: 1, KindRY: 1, KindRZ: 1, KindP: 1, KindU3: 3,
	KindCP: 1, KindCRZ: 1, KindCRX: 1, KindCRY: 1,
}

var kindArity = [...]int{
	KindI: 1, KindX: 1, KindY: 1, KindZ: 1, KindH: 1,
	KindS: 1, KindSdg: 1, KindT: 1, KindTdg: 1,
	KindSX: 1, KindSY: 1, KindSW: 1,
	KindRX: 1, KindRY: 1, KindRZ: 1, KindP: 1, KindU3: 1,
	KindCX: 2, KindCY: 2, KindCZ: 2, KindCP: 2,
	KindCRZ: 2, KindCRX: 2, KindCRY: 2, KindCH: 2,
	KindSWAP: 2, KindCCX: 3, KindCSWAP: 3,
	KindUnitary: 0, // arity taken from the instance
}

// String returns the lowercase QASM-style mnemonic for the kind.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// NumParams returns the number of real parameters the kind requires.
func (k Kind) NumParams() int {
	if k >= 0 && int(k) < len(kindParams) {
		return kindParams[k]
	}
	return 0
}

// Arity returns the number of qubits a gate of this kind acts on, or 0 for
// KindUnitary whose arity depends on the instance.
func (k Kind) Arity() int {
	if k >= 0 && int(k) < len(kindArity) {
		return kindArity[k]
	}
	return 0
}

// Gate is a single gate instance within a circuit.
type Gate struct {
	Kind   Kind
	Qubits []int
	Params []float64
	// U holds the explicit matrix for KindUnitary gates; nil otherwise.
	U *qmath.Matrix
	// Label optionally tags the gate (e.g. "su4" for QV blocks).
	Label string
}

// New constructs a parameterless gate instance.
func New(k Kind, qubits ...int) Gate {
	g := Gate{Kind: k, Qubits: qubits}
	g.mustValidate()
	return g
}

// NewParam constructs a parameterized gate instance.
func NewParam(k Kind, params []float64, qubits ...int) Gate {
	g := Gate{Kind: k, Qubits: qubits, Params: params}
	g.mustValidate()
	return g
}

// NewUnitary constructs an explicit-matrix gate. The matrix dimension must
// be 2^len(qubits).
func NewUnitary(u qmath.Matrix, label string, qubits ...int) Gate {
	g := Gate{Kind: KindUnitary, Qubits: qubits, U: &u, Label: label}
	g.mustValidate()
	return g
}

func (g Gate) mustValidate() {
	if err := g.Validate(); err != nil {
		panic(err)
	}
}

// Validate checks arity, parameter count, matrix dimension and qubit
// distinctness.
func (g Gate) Validate() error {
	if g.Kind == KindUnitary {
		if g.U == nil {
			return fmt.Errorf("gate: unitary gate without matrix")
		}
		want := 1 << len(g.Qubits)
		if g.U.N != want {
			return fmt.Errorf("gate: unitary on %d qubits needs a %dx%d matrix, got %dx%d",
				len(g.Qubits), want, want, g.U.N, g.U.N)
		}
		if len(g.Qubits) < 1 || len(g.Qubits) > 3 {
			return fmt.Errorf("gate: unitary arity %d unsupported", len(g.Qubits))
		}
	} else {
		if got, want := len(g.Qubits), g.Kind.Arity(); got != want {
			return fmt.Errorf("gate: %s needs %d qubits, got %d", g.Kind, want, got)
		}
		if got, want := len(g.Params), g.Kind.NumParams(); got != want {
			return fmt.Errorf("gate: %s needs %d params, got %d", g.Kind, want, got)
		}
	}
	seen := map[int]bool{}
	for _, q := range g.Qubits {
		if q < 0 {
			return fmt.Errorf("gate: %s has negative qubit %d", g.Kind, q)
		}
		if seen[q] {
			return fmt.Errorf("gate: %s touches qubit %d twice", g.Kind, q)
		}
		seen[q] = true
	}
	return nil
}

// Arity returns the number of qubits this instance acts on.
func (g Gate) Arity() int { return len(g.Qubits) }

// String renders the gate in a QASM-like syntax, e.g. "cx q[0],q[3]".
func (g Gate) String() string {
	var b strings.Builder
	name := g.Kind.String()
	if g.Kind == KindUnitary && g.Label != "" {
		name = g.Label
	}
	b.WriteString(name)
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.6g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	return b.String()
}

// Matrix returns the unitary matrix for the gate instance, in the
// little-endian convention described in the package comment.
func (g Gate) Matrix() qmath.Matrix {
	switch g.Kind {
	case KindUnitary:
		return g.U.Clone()
	case KindI:
		return qmath.Identity(2)
	case KindX:
		return qmath.FromRows([][]complex128{{0, 1}, {1, 0}})
	case KindY:
		return qmath.FromRows([][]complex128{{0, -1i}, {1i, 0}})
	case KindZ:
		return qmath.FromRows([][]complex128{{1, 0}, {0, -1}})
	case KindH:
		s := complex(1/math.Sqrt2, 0)
		return qmath.FromRows([][]complex128{{s, s}, {s, -s}})
	case KindS:
		return qmath.FromRows([][]complex128{{1, 0}, {0, 1i}})
	case KindSdg:
		return qmath.FromRows([][]complex128{{1, 0}, {0, -1i}})
	case KindT:
		return qmath.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}})
	case KindTdg:
		return qmath.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}})
	case KindSX:
		return qmath.FromRows([][]complex128{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)},
		})
	case KindSY:
		return qmath.FromRows([][]complex128{
			{complex(0.5, 0.5), complex(-0.5, -0.5)},
			{complex(0.5, 0.5), complex(0.5, 0.5)},
		})
	case KindSW:
		// sqrt(W) with W = (X+Y)/sqrt(2), per Arute et al. 2019 (SI), up to
		// global phase: e^{i pi/4}(I - iW)/sqrt(2).
		inv := 1 / math.Sqrt2
		return qmath.FromRows([][]complex128{
			{complex(0.5, 0.5), complex(0, -inv)},
			{complex(inv, 0), complex(0.5, 0.5)},
		})
	case KindRX:
		t := g.Params[0] / 2
		c, s := complex(math.Cos(t), 0), complex(0, -math.Sin(t))
		return qmath.FromRows([][]complex128{{c, s}, {s, c}})
	case KindRY:
		t := g.Params[0] / 2
		c, s := complex(math.Cos(t), 0), complex(math.Sin(t), 0)
		return qmath.FromRows([][]complex128{{c, -s}, {s, c}})
	case KindRZ:
		t := g.Params[0] / 2
		return qmath.FromRows([][]complex128{
			{cmplx.Exp(complex(0, -t)), 0},
			{0, cmplx.Exp(complex(0, t))},
		})
	case KindP:
		return qmath.FromRows([][]complex128{
			{1, 0}, {0, cmplx.Exp(complex(0, g.Params[0]))},
		})
	case KindU3:
		th, ph, la := g.Params[0]/2, g.Params[1], g.Params[2]
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return qmath.FromRows([][]complex128{
			{c, -cmplx.Exp(complex(0, la)) * s},
			{cmplx.Exp(complex(0, ph)) * s, cmplx.Exp(complex(0, ph+la)) * c},
		})
	case KindCX:
		return controlled2(New(KindX, 0).Matrix())
	case KindCY:
		return controlled2(New(KindY, 0).Matrix())
	case KindCZ:
		return controlled2(New(KindZ, 0).Matrix())
	case KindCH:
		return controlled2(New(KindH, 0).Matrix())
	case KindCP:
		return controlled2(NewParam(KindP, g.Params, 0).Matrix())
	case KindCRZ:
		return controlled2(NewParam(KindRZ, g.Params, 0).Matrix())
	case KindCRX:
		return controlled2(NewParam(KindRX, g.Params, 0).Matrix())
	case KindCRY:
		return controlled2(NewParam(KindRY, g.Params, 0).Matrix())
	case KindSWAP:
		m := qmath.NewMatrix(4)
		m.Set(0, 0, 1)
		m.Set(1, 2, 1)
		m.Set(2, 1, 1)
		m.Set(3, 3, 1)
		return m
	case KindCCX:
		// Qubits [c0, c1, t]; basis bit0=c0, bit1=c1, bit2=t.
		m := qmath.Identity(8)
		// Both controls set: indices with bits 0 and 1 set → 3 and 7 swap on bit 2.
		m.Set(3, 3, 0)
		m.Set(7, 7, 0)
		m.Set(3, 7, 1)
		m.Set(7, 3, 1)
		return m
	case KindCSWAP:
		// Qubits [c, a, b]; bit0=c, bit1=a, bit2=b. Control set → swap a,b.
		m := qmath.Identity(8)
		// control=1, a=1, b=0 → index 3; control=1, a=0, b=1 → index 5.
		m.Set(3, 3, 0)
		m.Set(5, 5, 0)
		m.Set(3, 5, 1)
		m.Set(5, 3, 1)
		return m
	}
	panic(fmt.Sprintf("gate: no matrix for kind %v", g.Kind))
}

// controlled2 embeds a single-qubit unitary u as a controlled gate on two
// qubits with Qubits=[control, target]: bit0=control, bit1=target. The gate
// applies u on the target when the control bit is 1.
func controlled2(u qmath.Matrix) qmath.Matrix {
	m := qmath.Identity(4)
	// Basis states with control(bit0)=1: indices 1 (t=0) and 3 (t=1).
	m.Set(1, 1, u.At(0, 0))
	m.Set(1, 3, u.At(0, 1))
	m.Set(3, 1, u.At(1, 0))
	m.Set(3, 3, u.At(1, 1))
	return m
}

// Dagger returns a gate instance realizing the adjoint of g.
func (g Gate) Dagger() Gate {
	switch g.Kind {
	case KindI, KindX, KindY, KindZ, KindH, KindCX, KindCY, KindCZ, KindCH,
		KindSWAP, KindCCX, KindCSWAP:
		return g // self-adjoint
	case KindS:
		return New(KindSdg, g.Qubits...)
	case KindSdg:
		return New(KindS, g.Qubits...)
	case KindT:
		return New(KindTdg, g.Qubits...)
	case KindTdg:
		return New(KindT, g.Qubits...)
	case KindRX, KindRY, KindRZ, KindP, KindCP, KindCRZ, KindCRX, KindCRY:
		return NewParam(g.Kind, []float64{-g.Params[0]}, g.Qubits...)
	case KindU3:
		return NewParam(KindU3,
			[]float64{-g.Params[0], -g.Params[2], -g.Params[1]}, g.Qubits...)
	default:
		u := g.Matrix().Dagger()
		label := g.Label
		if label != "" {
			label += "dg"
		}
		return NewUnitary(u, label, g.Qubits...)
	}
}
