package gate

import (
	"math"
	"testing"

	"tqsim/internal/qmath"
	"tqsim/internal/rng"
)

// allKinds enumerates representative instances of every gate kind.
func allKinds() []Gate {
	u := qmath.Identity(2)
	return []Gate{
		New(KindI, 0), New(KindX, 0), New(KindY, 0), New(KindZ, 0),
		New(KindH, 0), New(KindS, 0), New(KindSdg, 0), New(KindT, 0),
		New(KindTdg, 0), New(KindSX, 0), New(KindSY, 0), New(KindSW, 0),
		NewParam(KindRX, []float64{0.7}, 0),
		NewParam(KindRY, []float64{1.1}, 0),
		NewParam(KindRZ, []float64{-0.4}, 0),
		NewParam(KindP, []float64{2.2}, 0),
		NewParam(KindU3, []float64{0.3, 0.9, -1.7}, 0),
		New(KindCX, 0, 1), New(KindCY, 0, 1), New(KindCZ, 0, 1),
		New(KindCH, 0, 1),
		NewParam(KindCP, []float64{0.8}, 0, 1),
		NewParam(KindCRZ, []float64{0.5}, 0, 1),
		NewParam(KindCRX, []float64{0.6}, 0, 1),
		NewParam(KindCRY, []float64{0.9}, 0, 1),
		New(KindSWAP, 0, 1), New(KindCCX, 0, 1, 2), New(KindCSWAP, 0, 1, 2),
		NewUnitary(u, "custom", 0),
	}
}

func TestAllMatricesUnitary(t *testing.T) {
	for _, g := range allKinds() {
		m := g.Matrix()
		if !m.IsUnitary(1e-10) {
			t.Errorf("%s matrix not unitary:\n%v", g.Kind, m)
		}
		if m.N != 1<<uint(g.Arity()) {
			t.Errorf("%s matrix dimension %d for arity %d", g.Kind, m.N, g.Arity())
		}
	}
}

func TestDaggerInvertsMatrix(t *testing.T) {
	for _, g := range allKinds() {
		prod := qmath.Mul(g.Dagger().Matrix(), g.Matrix())
		id := qmath.Identity(prod.N)
		// Allow a global phase: normalize by the (0,0) entry.
		ph := prod.At(0, 0)
		if ph == 0 {
			t.Errorf("%s: U†U has zero corner", g.Kind)
			continue
		}
		norm := prod.Scale(1 / ph)
		if d := qmath.MaxAbsDiff(norm, id); d > 1e-9 {
			t.Errorf("%s: U†U deviates from identity by %v", g.Kind, d)
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	x := New(KindX, 0).Matrix()
	y := New(KindY, 0).Matrix()
	z := New(KindZ, 0).Matrix()
	// XY = iZ
	if d := qmath.MaxAbsDiff(qmath.Mul(x, y), z.Scale(1i)); d > 1e-12 {
		t.Fatalf("XY != iZ: %v", d)
	}
	// HXH = Z
	h := New(KindH, 0).Matrix()
	if d := qmath.MaxAbsDiff(qmath.Mul(qmath.Mul(h, x), h), z); d > 1e-12 {
		t.Fatalf("HXH != Z: %v", d)
	}
}

func TestSquareRootGates(t *testing.T) {
	cases := []struct {
		name string
		root Kind
		full Kind
	}{
		{"sx^2=x", KindSX, KindX},
		{"sy^2=y", KindSY, KindY},
		{"s^2=z", KindS, KindZ},
		{"t^2=s", KindT, KindS},
	}
	for _, c := range cases {
		r := New(c.root, 0).Matrix()
		sq := qmath.Mul(r, r)
		full := New(c.full, 0).Matrix()
		if d := qmath.MaxAbsDiff(sq, full); d > 1e-10 {
			t.Errorf("%s: diff %v", c.name, d)
		}
	}
}

func TestSWSquaresToW(t *testing.T) {
	sw := New(KindSW, 0).Matrix()
	sq := qmath.Mul(sw, sw)
	inv := complex(1/math.Sqrt2, 0)
	x := New(KindX, 0).Matrix()
	y := New(KindY, 0).Matrix()
	w := qmath.Add(x, y).Scale(inv)
	// sq may differ by global phase.
	ph := sq.At(0, 1) / w.At(0, 1)
	if d := qmath.MaxAbsDiff(sq, w.Scale(ph)); d > 1e-10 {
		t.Fatalf("SW^2 != W up to phase: %v\nsq=%v\nw=%v", d, sq, w)
	}
}

func TestRotationComposition(t *testing.T) {
	a := NewParam(KindRZ, []float64{0.4}, 0).Matrix()
	b := NewParam(KindRZ, []float64{0.6}, 0).Matrix()
	ab := qmath.Mul(a, b)
	c := NewParam(KindRZ, []float64{1.0}, 0).Matrix()
	if d := qmath.MaxAbsDiff(ab, c); d > 1e-10 {
		t.Fatalf("RZ(0.4)RZ(0.6) != RZ(1.0): %v", d)
	}
}

func TestU3Specializations(t *testing.T) {
	// U3(theta, -pi/2, pi/2) = RX(theta)
	rx := NewParam(KindRX, []float64{0.8}, 0).Matrix()
	u3 := NewParam(KindU3, []float64{0.8, -math.Pi / 2, math.Pi / 2}, 0).Matrix()
	if d := qmath.MaxAbsDiff(rx, u3); d > 1e-10 {
		t.Fatalf("U3 does not specialize to RX: %v", d)
	}
	// U3(theta, 0, 0) = RY(theta)
	ry := NewParam(KindRY, []float64{1.3}, 0).Matrix()
	u3y := NewParam(KindU3, []float64{1.3, 0, 0}, 0).Matrix()
	if d := qmath.MaxAbsDiff(ry, u3y); d > 1e-10 {
		t.Fatalf("U3 does not specialize to RY: %v", d)
	}
}

func TestCXMatrixConvention(t *testing.T) {
	// Qubits [control, target]: control = low bit. Basis |t c>: index 1 =
	// control set, target clear → maps to index 3.
	m := New(KindCX, 0, 1).Matrix()
	if m.At(3, 1) != 1 || m.At(1, 3) != 1 || m.At(0, 0) != 1 || m.At(2, 2) != 1 {
		t.Fatalf("CX convention wrong:\n%v", m)
	}
}

func TestCCXMatrixConvention(t *testing.T) {
	m := New(KindCCX, 0, 1, 2).Matrix()
	// Controls (bits 0,1) both set, target (bit 2) clear: index 3 <-> 7.
	if m.At(7, 3) != 1 || m.At(3, 7) != 1 {
		t.Fatalf("CCX does not flip target when controls set:\n%v", m)
	}
	if m.At(1, 1) != 1 || m.At(2, 2) != 1 || m.At(5, 5) != 1 {
		t.Fatal("CCX perturbs states with a clear control")
	}
}

func TestCSWAPMatrixConvention(t *testing.T) {
	m := New(KindCSWAP, 0, 1, 2).Matrix()
	// Control (bit 0) set: swap bits 1 and 2 → index 3 <-> 5.
	if m.At(5, 3) != 1 || m.At(3, 5) != 1 {
		t.Fatalf("CSWAP wrong:\n%v", m)
	}
	if m.At(2, 2) != 1 || m.At(4, 4) != 1 {
		t.Fatal("CSWAP acts with clear control")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []Gate{
		{Kind: KindCX, Qubits: []int{0}},      // arity
		{Kind: KindRX, Qubits: []int{0}},      // missing param
		{Kind: KindCX, Qubits: []int{1, 1}},   // duplicate qubit
		{Kind: KindX, Qubits: []int{-1}},      // negative qubit
		{Kind: KindUnitary, Qubits: []int{0}}, // missing matrix
		{Kind: KindUnitary, Qubits: []int{0, 1}, U: &qmath.Matrix{N: 2, Data: make([]complex128, 4)}}, // dim mismatch
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid gate accepted: %v", i, g)
		}
	}
}

func TestStringFormat(t *testing.T) {
	g := NewParam(KindCP, []float64{0.5}, 2, 7)
	want := "cp(0.5) q[2],q[7]"
	if got := g.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestRandomUnitaryGate(t *testing.T) {
	r := rng.New(44)
	u := qmath.RandomUnitary(4, r)
	g := NewUnitary(u, "su4", 3, 5)
	if g.Arity() != 2 {
		t.Fatalf("arity %d", g.Arity())
	}
	if !g.Matrix().IsUnitary(1e-9) {
		t.Fatal("unitary gate matrix not unitary")
	}
	dg := g.Dagger()
	prod := qmath.Mul(dg.Matrix(), g.Matrix())
	if d := qmath.MaxAbsDiff(prod, qmath.Identity(4)); d > 1e-9 {
		t.Fatalf("unitary dagger wrong: %v", d)
	}
}

func TestKindMetadata(t *testing.T) {
	if KindCX.Arity() != 2 || KindCCX.Arity() != 3 || KindH.Arity() != 1 {
		t.Fatal("arity table wrong")
	}
	if KindU3.NumParams() != 3 || KindRZ.NumParams() != 1 || KindH.NumParams() != 0 {
		t.Fatal("param table wrong")
	}
	if KindCX.String() != "cx" || KindSdg.String() != "sdg" {
		t.Fatal("name table wrong")
	}
}
