package redunelim

import (
	"testing"

	"tqsim/internal/noise"
	"tqsim/internal/workloads"
)

func TestZeroNoiseFullyDeduplicates(t *testing.T) {
	// With no noise every shot is identical: unique work = one pass.
	c := workloads.BV(8, workloads.BVSecret(8))
	a := Analyze(c, noise.NewDepolarizing(0, 0), 100, 1)
	if a.UniqueOps != int64(c.Len()) {
		t.Fatalf("unique ops %d, want %d", a.UniqueOps, c.Len())
	}
	if a.NormalizedComputation >= 0.02 {
		t.Fatalf("normalized computation %v", a.NormalizedComputation)
	}
}

func TestNormalizedComputationBounded(t *testing.T) {
	c := workloads.QFT(8, true)
	a := Analyze(c, noise.NewSycamore(), 200, 2)
	if a.NormalizedComputation <= 0 || a.NormalizedComputation > 1 {
		t.Fatalf("normalized computation %v out of (0,1]", a.NormalizedComputation)
	}
	if a.BaselineOps != int64(200*c.Len()) {
		t.Fatalf("baseline ops %d", a.BaselineOps)
	}
}

func TestRedundancyDropsWithGateCount(t *testing.T) {
	// The paper's Figure 19 argument: dedup pays on short circuits and
	// collapses as gate count grows (distinct noise histories).
	// Redundancy is governed by the expected error events per trajectory
	// (error mass), which grows with gate count at fixed rates.
	m := noise.NewSycamore()
	short := Analyze(workloads.BV(6, workloads.BVSecret(6)), m, 500, 3)
	medium := Analyze(workloads.QFT(10, true), m, 500, 3)
	long := Analyze(workloads.QFT(14, true), m, 500, 3)
	if short.NormalizedComputation >= medium.NormalizedComputation {
		t.Fatalf("short %v should dedup better than medium %v",
			short.NormalizedComputation, medium.NormalizedComputation)
	}
	if medium.NormalizedComputation >= long.NormalizedComputation {
		t.Fatalf("medium %v should dedup better than long %v",
			medium.NormalizedComputation, long.NormalizedComputation)
	}
	// ~500 gates at Sycamore rates: most work cannot dedup — the regime
	// where TQSim wins in Figure 19.
	if long.NormalizedComputation < 0.5 {
		t.Fatalf("long circuit deduped implausibly well: %v", long.NormalizedComputation)
	}
	if short.NormalizedComputation > 0.2 {
		t.Fatalf("short circuit deduped too little: %v", short.NormalizedComputation)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	c := workloads.QFT(6, true)
	m := noise.NewSycamore()
	a := Analyze(c, m, 100, 7)
	b := Analyze(c, m, 100, 7)
	if a.UniqueOps != b.UniqueOps {
		t.Fatal("analysis not deterministic")
	}
	other := Analyze(c, m, 100, 8)
	if other.UniqueOps == a.UniqueOps && other.PrefixStates == a.PrefixStates {
		t.Log("different seeds gave identical stats (possible but unlikely)")
	}
}

func TestHigherNoiseLessRedundancy(t *testing.T) {
	c := workloads.QFT(8, true)
	low := Analyze(c, noise.NewDepolarizing(0.0005, 0.002), 300, 5)
	high := Analyze(c, noise.NewDepolarizing(0.01, 0.05), 300, 5)
	if low.NormalizedComputation >= high.NormalizedComputation {
		t.Fatalf("low noise %v should dedup better than high noise %v",
			low.NormalizedComputation, high.NormalizedComputation)
	}
}

func TestEmptyInputs(t *testing.T) {
	c := workloads.BV(4, 1)
	a := Analyze(c, noise.NewSycamore(), 0, 1)
	if a.UniqueOps != 0 || a.NormalizedComputation != 0 {
		t.Fatalf("empty analysis wrong: %+v", a)
	}
}

func TestPrefixStatesGrowth(t *testing.T) {
	c := workloads.QFT(8, true)
	a := Analyze(c, noise.NewSycamore(), 100, 9)
	// The method must track at least one state per gate level and at most
	// shots * gates.
	if a.PrefixStates < int64(c.Len()) || a.PrefixStates > int64(100*c.Len()) {
		t.Fatalf("prefix states %d outside [%d, %d]",
			a.PrefixStates, c.Len(), 100*c.Len())
	}
}
