// Package redunelim implements the inter-shot redundancy-elimination
// comparator of Li, Ding and Xie (DAC 2020), the prior-art technique the
// paper contrasts with TQSim in Figure 19. The method samples all N noisy
// circuit variants up front, then deduplicates identical circuit *prefixes*
// across shots: two shots share computation exactly up to the first gate at
// which their sampled noise sequences diverge.
//
// The computation model counts one unit per (gate, distinct prefix) — a
// shot's gate application is free whenever another shot with an identical
// noise history has already produced that intermediate state. As the paper
// observes, with realistic error rates the probability of two shots sharing
// a long exact noise history collapses once circuits exceed ~150 gates,
// which is precisely where TQSim's approximate reuse keeps paying off.
package redunelim

import (
	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/noise"
	"tqsim/internal/rng"
)

// noiseTag encodes the sampled noise event after one gate: 0 means "no
// error"; otherwise an operator id (Pauli index combination).
type noiseTag uint32

// sampleTags draws the per-gate noise events of one shot under the model's
// Pauli channels. Damping-channel jumps are state-dependent and therefore
// cannot be precomputed circuit-side; like Li et al., the analysis covers
// stochastic Pauli noise (the paper's Figure 19 uses the depolarizing
// channel).
func sampleTags(c *circuit.Circuit, m *noise.Model, r *rng.RNG) []noiseTag {
	tags := make([]noiseTag, c.Len())
	for i, g := range c.Gates {
		tags[i] = sampleGateTag(g, m, r)
	}
	return tags
}

func sampleGateTag(g gate.Gate, m *noise.Model, r *rng.RNG) noiseTag {
	var tag noiseTag
	chans := m.OneQubit
	if g.Arity() >= 2 {
		chans = m.TwoQubit
	}
	for ci, ch := range chans {
		p := ch.ErrorProb()
		if p <= 0 || r.Float64() >= p {
			continue
		}
		var op int
		switch ch.(type) {
		case noise.Depolarizing1Q:
			op = 1 + r.Intn(3)
		case noise.Depolarizing2Q:
			op = 1 + r.Intn(15)
		default:
			op = 1 + r.Intn(3)
		}
		// Pack channel index and operator id; shifts keep events from
		// different channels distinguishable.
		tag |= noiseTag((op + 1) << uint(5*ci))
	}
	return tag
}

// Analysis reports the computation of the redundancy-elimination method on
// one workload.
type Analysis struct {
	// Shots is the trajectory count analyzed.
	Shots int
	// Gates is the circuit length.
	Gates int
	// BaselineOps is Shots * Gates: the no-reuse gate-application count.
	BaselineOps int64
	// UniqueOps is the gate-application count after prefix deduplication.
	UniqueOps int64
	// NormalizedComputation is UniqueOps / BaselineOps — Figure 19's
	// y-axis (lower is better).
	NormalizedComputation float64
	// PrefixStates is the number of distinct intermediate states the
	// method has to keep addressable.
	PrefixStates int64
}

// Analyze samples `shots` noise-tag sequences for the circuit and computes
// the prefix-deduplicated work. The dedup is exact: a trie over
// (gate-index, tag) built breadth-first with hashing.
func Analyze(c *circuit.Circuit, m *noise.Model, shots int, seed uint64) *Analysis {
	a := &Analysis{
		Shots:       shots,
		Gates:       c.Len(),
		BaselineOps: int64(shots) * int64(c.Len()),
	}
	if c.Len() == 0 || shots == 0 {
		return a
	}
	root := rng.New(seed)
	tags := make([][]noiseTag, shots)
	for s := 0; s < shots; s++ {
		tags[s] = sampleTags(c, m, root.SplitAt(uint64(s)))
	}
	// group holds, per live prefix, the shots sharing it. Process gate by
	// gate: each distinct (prefix, tag) pair costs one gate application
	// and spawns the next level's prefix.
	groups := [][]int{make([]int, shots)}
	for s := range groups[0] {
		groups[0][s] = s
	}
	for gi := 0; gi < c.Len(); gi++ {
		var next [][]int
		for _, grp := range groups {
			byTag := map[noiseTag][]int{}
			for _, s := range grp {
				t := tags[s][gi]
				byTag[t] = append(byTag[t], s)
			}
			for _, sub := range byTag {
				a.UniqueOps++ // one gate application serves the whole subgroup
				next = append(next, sub)
			}
		}
		a.PrefixStates += int64(len(next))
		groups = next
	}
	a.NormalizedComputation = float64(a.UniqueOps) / float64(a.BaselineOps)
	return a
}
