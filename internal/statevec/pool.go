package statevec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernel worker pool. A tree run applies millions of gate kernels, and
// the original parallelFor spawned (and tore down) GOMAXPROCS goroutines for
// every one of them. The pool below starts its workers once, lazily, and
// thereafter dispatches each kernel as a single job whose chunk ranges the
// long-lived workers claim with one atomic increment apiece — the per-call
// cost is one job allocation and a channel wakeup instead of a goroutine
// fan-out.
//
// The submitting goroutine always participates in draining its own job, so a
// kernel makes progress even when every pool worker is busy with other jobs
// (e.g. parallel tree workers in internal/core issuing kernels
// concurrently). That also means the pool can never deadlock: job wakeups
// are best-effort non-blocking sends.

// minChunk is the smallest chunk (in loop iterations) worth handing to a
// worker; below it the dispatch overhead dominates the loop body.
const minChunk = 1 << 10

// poolJob is one parallel loop: body over [0, n) split into fixed chunks.
// Workers (and the submitter) claim chunk c via next and process
// [c*chunk, min((c+1)*chunk, n)).
type poolJob struct {
	body  func(chunk, start, end int)
	n     int
	chunk int
	next  atomic.Int64
	wg    sync.WaitGroup
}

// drain claims and runs chunks until the job is exhausted.
func (j *poolJob) drain() {
	for {
		c := int(j.next.Add(1)) - 1
		start := c * j.chunk
		if start >= j.n {
			return
		}
		end := start + j.chunk
		if end > j.n {
			end = j.n
		}
		j.body(c, start, end)
		j.wg.Done()
	}
}

// workerPool is the package-level persistent pool.
type workerPool struct {
	workers int
	jobs    chan *poolJob
}

var (
	poolOnce sync.Once
	pool     *workerPool
)

// getPool starts the pool on first use with GOMAXPROCS workers.
func getPool() *workerPool {
	poolOnce.Do(func() {
		w := runtime.GOMAXPROCS(0)
		if w < 1 {
			w = 1
		}
		pool = &workerPool{workers: w, jobs: make(chan *poolJob, 4*w)}
		for i := 0; i < w; i++ {
			go func() {
				for job := range pool.jobs {
					job.drain()
				}
			}()
		}
	})
	return pool
}

// split returns the chunk size and chunk count for an n-iteration loop. The
// loop is oversplit 2x relative to the worker count (bounded below by
// minChunk) so a worker that starts late or runs slow does not stretch the
// whole kernel by a full chunk. The split depends only on n and the worker
// count fixed at pool start, keeping chunk boundaries — and therefore any
// per-chunk floating-point reduction order — deterministic for a process.
func (p *workerPool) split(n int) (chunk, chunks int) {
	chunks = 2 * p.workers
	chunk = (n + chunks - 1) / chunks
	if chunk < minChunk {
		chunk = minChunk
	}
	chunks = (n + chunk - 1) / chunk
	return chunk, chunks
}

// run executes body over [0, n) on the pool and returns when every chunk has
// completed. The calling goroutine takes part in the work.
func (p *workerPool) run(n int, body func(chunk, start, end int)) {
	chunk, chunks := p.split(n)
	job := &poolJob{body: body, n: n, chunk: chunk}
	job.wg.Add(chunks)
	// Wake at most chunks-1 workers; the caller claims a share itself. A
	// full queue just means the caller (and already-busy workers) do more.
	for i := 0; i < chunks-1; i++ {
		select {
		case p.jobs <- job:
		default:
			i = chunks // queue full; stop signalling
		}
	}
	job.drain()
	job.wg.Wait()
}

// parallelFor splits [0, n) across the persistent worker pool when the
// problem is large enough. ParallelThreshold stays a variable so benchmarks
// can ablate the serial/parallel crossover.
func parallelFor(n int, body func(start, end int)) {
	if n < ParallelThreshold {
		body(0, n)
		return
	}
	getPool().run(n, func(_, start, end int) { body(start, end) })
}

// parallelSum reduces fn over [0, n): each chunk's partial sum lands in a
// slot indexed by its chunk number and the slots are added in ascending
// order, so the floating-point result is independent of worker scheduling.
func parallelSum(n int, fn func(start, end int) float64) float64 {
	if n < ParallelThreshold {
		return fn(0, n)
	}
	p := getPool()
	_, chunks := p.split(n)
	partials := make([]float64, chunks)
	p.run(n, func(chunk, start, end int) {
		partials[chunk] = fn(start, end)
	})
	var total float64
	for _, v := range partials {
		total += v
	}
	return total
}
