package statevec

import (
	"fmt"
	"testing"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
)

// The kernel-equivalence property test: every gate kind, at randomized qubit
// positions and widths, applied through the fast-path kernels must agree
// with a naive dense matrix-vector application of the same gate matrix to
// 1e-12. This is the safety net under the strided kernel rewrites — the
// reference path below shares nothing with the kernels except the gate
// matrix itself.

const equivTol = 1e-12

// naiveApply applies the 2^k x 2^k matrix m on the given qubits to amps by
// direct dense enumeration: out[i] = sum_col m[sub(i)][col] * amps[i with
// gate bits replaced by col]. O(4^k * 2^n), independent of the kernel code.
func naiveApply(amps []complex128, qubits []int, m qmath.Matrix) []complex128 {
	out := make([]complex128, len(amps))
	k := len(qubits)
	for i := range amps {
		gi := 0
		for b, q := range qubits {
			if i>>uint(q)&1 == 1 {
				gi |= 1 << uint(b)
			}
		}
		for col := 0; col < 1<<uint(k); col++ {
			j := i
			for b, q := range qubits {
				j &^= 1 << uint(q)
				if col>>uint(b)&1 == 1 {
					j |= 1 << uint(q)
				}
			}
			out[i] += m.At(gi, col) * amps[j]
		}
	}
	return out
}

// randomQubits draws arity distinct qubit positions on n qubits.
// (randomState is shared with statevec_test.go.)
func randomQubits(n, arity int, r *rng.RNG) []int {
	return r.Perm(n)[:arity]
}

// randomGate builds a random instance of kind on n qubits.
func randomGate(kind gate.Kind, n int, r *rng.RNG) gate.Gate {
	arity := kind.Arity()
	qs := randomQubits(n, arity, r)
	if kind.NumParams() == 0 {
		return gate.New(kind, qs...)
	}
	params := make([]float64, kind.NumParams())
	for i := range params {
		params[i] = (r.Float64() - 0.5) * 6
	}
	return gate.NewParam(kind, params, qs...)
}

// allKinds is every named gate kind with a fixed arity (KindUnitary is
// exercised separately with Haar-random matrices).
var allKinds = []gate.Kind{
	gate.KindI, gate.KindX, gate.KindY, gate.KindZ, gate.KindH,
	gate.KindS, gate.KindSdg, gate.KindT, gate.KindTdg,
	gate.KindSX, gate.KindSY, gate.KindSW,
	gate.KindRX, gate.KindRY, gate.KindRZ, gate.KindP, gate.KindU3,
	gate.KindCX, gate.KindCY, gate.KindCZ, gate.KindCP,
	gate.KindCRZ, gate.KindCRX, gate.KindCRY, gate.KindCH,
	gate.KindSWAP, gate.KindCCX, gate.KindCSWAP,
}

// checkGate applies g both ways and compares amplitudes.
func checkGate(t *testing.T, st *State, g gate.Gate) {
	t.Helper()
	want := naiveApply(st.Amplitudes(), g.Qubits, g.Matrix())
	got := st.Clone()
	got.Apply(g)
	for i, w := range want {
		d := got.Amplitude(uint64(i)) - w
		if real(d)*real(d)+imag(d)*imag(d) > equivTol*equivTol {
			t.Fatalf("%v on %d qubits: amplitude %d: got %v want %v",
				g, st.NumQubits(), i, got.Amplitude(uint64(i)), w)
		}
	}
}

// TestKernelEquivalence exercises every gate kind at randomized positions on
// small registers (serial kernels).
func TestKernelEquivalence(t *testing.T) {
	r := rng.New(42)
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				n := kind.Arity() + r.Intn(6)
				st := randomState(n, r)
				checkGate(t, st, randomGate(kind, n, r))
			}
		})
	}
	t.Run("unitary", func(t *testing.T) {
		for _, arity := range []int{1, 2, 3} {
			for trial := 0; trial < 4; trial++ {
				n := arity + r.Intn(4)
				u := qmath.RandomUnitary(1<<uint(arity), r)
				qs := randomQubits(n, arity, r)
				st := randomState(n, r)
				checkGate(t, st, gate.NewUnitary(u, "rand", qs...))
			}
		}
	})
}

// TestKernelEquivalenceParallel forces the worker-pool path by dropping
// ParallelThreshold to 1, covering chunked execution and the low/high qubit
// position extremes of each strided kernel.
func TestKernelEquivalenceParallel(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	r := rng.New(7)
	const n = 10
	st := randomState(n, r)
	gates := []gate.Gate{
		gate.New(gate.KindH, 0),
		gate.New(gate.KindH, n-1),
		gate.New(gate.KindX, 0),
		gate.New(gate.KindX, n-1),
		gate.New(gate.KindZ, n/2),
		gate.NewParam(gate.KindRZ, []float64{0.9}, 0),
		gate.NewParam(gate.KindP, []float64{1.2}, n-1),
		gate.New(gate.KindCX, 0, 1),
		gate.New(gate.KindCX, n-1, 0),
		gate.New(gate.KindCX, n-1, n-2),
		gate.New(gate.KindCZ, 0, n-1),
		gate.NewParam(gate.KindCP, []float64{0.4}, 1, n-2),
		gate.NewParam(gate.KindCRX, []float64{0.7}, 0, 1),
		gate.NewParam(gate.KindCRX, []float64{0.7}, n-1, n-2),
		gate.New(gate.KindSWAP, 0, n-1),
		gate.New(gate.KindCCX, 0, n/2, n-1),
	}
	for _, g := range gates {
		checkGate(t, st, g)
	}
	for trial := 0; trial < 24; trial++ {
		kind := allKinds[r.Intn(len(allKinds))]
		checkGate(t, st, randomGate(kind, n, r))
	}
}

// TestKernelEquivalenceWide crosses the real ParallelThreshold so the
// chunked pool path runs at production chunk sizes.
func TestKernelEquivalenceWide(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-register equivalence skipped in -short")
	}
	r := rng.New(99)
	const n = 16
	st := randomState(n, r)
	for _, g := range []gate.Gate{
		gate.New(gate.KindH, 0),
		gate.New(gate.KindH, n-1),
		gate.New(gate.KindCX, 2, 11),
		gate.New(gate.KindCX, 15, 3),
		gate.New(gate.KindCZ, 0, 15),
		gate.NewParam(gate.KindRZ, []float64{0.31}, 9),
		gate.NewParam(gate.KindCRY, []float64{1.1}, 4, 13),
	} {
		checkGate(t, st, g)
	}
}

// TestProb1Equivalence checks the strided subspace Prob1 against a naive
// full scan, serial and forced-parallel.
func TestProb1Equivalence(t *testing.T) {
	r := rng.New(5)
	for _, force := range []bool{false, true} {
		name := "serial"
		if force {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			if force {
				old := ParallelThreshold
				ParallelThreshold = 1
				defer func() { ParallelThreshold = old }()
			}
			for _, n := range []int{1, 3, 8, 12} {
				st := randomState(n, r)
				for q := 0; q < n; q++ {
					var want float64
					for i, a := range st.Amplitudes() {
						if i>>uint(q)&1 == 1 {
							want += real(a)*real(a) + imag(a)*imag(a)
						}
					}
					got := st.Prob1(q)
					if diff := got - want; diff > 1e-12 || diff < -1e-12 {
						t.Fatalf("n=%d q=%d: Prob1=%g want %g", n, q, got, want)
					}
				}
			}
		})
	}
}

// TestApplyDiag1QAndApplyX covers the exported scratch-free noise entry
// points against the generic matrix path.
func TestApplyDiag1QAndApplyX(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 6; trial++ {
		n := 1 + r.Intn(8)
		q := r.Intn(n)
		st := randomState(n, r)
		d0 := complex(r.NormFloat64(), r.NormFloat64())
		d1 := complex(r.NormFloat64(), r.NormFloat64())
		ref := st.Clone()
		ref.Apply1Q(q, qmath.FromRows([][]complex128{{d0, 0}, {0, d1}}))
		got := st.Clone()
		got.ApplyDiag1Q(q, d0, d1)
		for i := range ref.Amplitudes() {
			d := got.Amplitude(uint64(i)) - ref.Amplitude(uint64(i))
			if real(d)*real(d)+imag(d)*imag(d) > equivTol*equivTol {
				t.Fatalf("ApplyDiag1Q(%d, %v, %v) mismatch at %d", q, d0, d1, i)
			}
		}
		gotX := st.Clone()
		gotX.ApplyX(q)
		refX := st.Clone()
		refX.Apply(gate.New(gate.KindX, q))
		for i := range refX.Amplitudes() {
			if gotX.Amplitude(uint64(i)) != refX.Amplitude(uint64(i)) {
				t.Fatalf("ApplyX(%d) mismatch at %d", q, i)
			}
		}
	}
}

// TestParallelForCoversRange guards the pool's chunking: every index must be
// visited exactly once for a spread of sizes around chunk boundaries.
func TestParallelForCoversRange(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	for _, n := range []int{1, 2, minChunk - 1, minChunk, minChunk + 1, 3*minChunk + 17, 1 << 15} {
		hits := make([]int32, n)
		parallelFor(n, func(start, end int) {
			for i := start; i < end; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

// TestParallelSumDeterministic checks that the chunk-ordered reduction gives
// bit-identical results across repeated parallel evaluations.
func TestParallelSumDeterministic(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	n := 1<<15 + 331
	vals := make([]float64, n)
	r := rng.New(3)
	for i := range vals {
		vals[i] = r.NormFloat64()
	}
	sum := func() float64 {
		return parallelSum(n, func(start, end int) float64 {
			var s float64
			for _, v := range vals[start:end] {
				s += v
			}
			return s
		})
	}
	want := sum()
	for trial := 0; trial < 20; trial++ {
		if got := sum(); got != want {
			t.Fatalf("trial %d: sum %v != first run %v", trial, got, want)
		}
	}
}

// TestPoolConcurrentKernels drives many goroutines through the shared pool
// at once — the shape of parallel tree execution — to shake out job
// interference (run with -race).
func TestPoolConcurrentKernels(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	r := rng.New(17)
	const n = 8
	ref := randomState(n, r)
	g := gate.New(gate.KindH, 3)
	want := ref.Clone()
	want.Apply(g)
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func() {
			st := ref.Clone()
			for iter := 0; iter < 50; iter++ {
				st.Apply(g)
				st.Apply(g) // H^2 = I
			}
			st.Apply(g)
			for i := range want.Amplitudes() {
				d := st.Amplitude(uint64(i)) - want.Amplitude(uint64(i))
				if real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
					done <- fmt.Errorf("amplitude %d diverged", i)
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
