package statevec

import (
	"fmt"
	"testing"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
)

// The kernel-equivalence property test: every gate kind, at randomized qubit
// positions and widths, applied through the fast-path kernels must agree
// with a naive dense matrix-vector application of the same gate matrix to
// 1e-12. This is the safety net under the strided kernel rewrites — the
// reference path below shares nothing with the kernels except the gate
// matrix itself.

const equivTol = 1e-12

// naiveApply applies the 2^k x 2^k matrix m on the given qubits to amps by
// direct dense enumeration: out[i] = sum_col m[sub(i)][col] * amps[i with
// gate bits replaced by col]. O(4^k * 2^n), independent of the kernel code.
func naiveApply(amps []complex128, qubits []int, m qmath.Matrix) []complex128 {
	out := make([]complex128, len(amps))
	k := len(qubits)
	for i := range amps {
		gi := 0
		for b, q := range qubits {
			if i>>uint(q)&1 == 1 {
				gi |= 1 << uint(b)
			}
		}
		for col := 0; col < 1<<uint(k); col++ {
			j := i
			for b, q := range qubits {
				j &^= 1 << uint(q)
				if col>>uint(b)&1 == 1 {
					j |= 1 << uint(q)
				}
			}
			out[i] += m.At(gi, col) * amps[j]
		}
	}
	return out
}

// randomQubits draws arity distinct qubit positions on n qubits.
// (randomState is shared with statevec_test.go.)
func randomQubits(n, arity int, r *rng.RNG) []int {
	return r.Perm(n)[:arity]
}

// randomGate builds a random instance of kind on n qubits.
func randomGate(kind gate.Kind, n int, r *rng.RNG) gate.Gate {
	arity := kind.Arity()
	qs := randomQubits(n, arity, r)
	if kind.NumParams() == 0 {
		return gate.New(kind, qs...)
	}
	params := make([]float64, kind.NumParams())
	for i := range params {
		params[i] = (r.Float64() - 0.5) * 6
	}
	return gate.NewParam(kind, params, qs...)
}

// allKinds is every named gate kind with a fixed arity (KindUnitary is
// exercised separately with Haar-random matrices).
var allKinds = []gate.Kind{
	gate.KindI, gate.KindX, gate.KindY, gate.KindZ, gate.KindH,
	gate.KindS, gate.KindSdg, gate.KindT, gate.KindTdg,
	gate.KindSX, gate.KindSY, gate.KindSW,
	gate.KindRX, gate.KindRY, gate.KindRZ, gate.KindP, gate.KindU3,
	gate.KindCX, gate.KindCY, gate.KindCZ, gate.KindCP,
	gate.KindCRZ, gate.KindCRX, gate.KindCRY, gate.KindCH,
	gate.KindSWAP, gate.KindCCX, gate.KindCSWAP,
}

// checkGate applies g both ways and compares amplitudes.
func checkGate(t *testing.T, st *State, g gate.Gate) {
	t.Helper()
	want := naiveApply(st.Amplitudes(), g.Qubits, g.Matrix())
	got := st.Clone()
	got.Apply(g)
	for i, w := range want {
		d := got.Amplitude(uint64(i)) - w
		if real(d)*real(d)+imag(d)*imag(d) > equivTol*equivTol {
			t.Fatalf("%v on %d qubits: amplitude %d: got %v want %v",
				g, st.NumQubits(), i, got.Amplitude(uint64(i)), w)
		}
	}
}

// TestKernelEquivalence exercises every gate kind at randomized positions on
// small registers (serial kernels).
func TestKernelEquivalence(t *testing.T) {
	r := rng.New(42)
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				n := kind.Arity() + r.Intn(6)
				st := randomState(n, r)
				checkGate(t, st, randomGate(kind, n, r))
			}
		})
	}
	t.Run("unitary", func(t *testing.T) {
		for _, arity := range []int{1, 2, 3} {
			for trial := 0; trial < 4; trial++ {
				n := arity + r.Intn(4)
				u := qmath.RandomUnitary(1<<uint(arity), r)
				qs := randomQubits(n, arity, r)
				st := randomState(n, r)
				checkGate(t, st, gate.NewUnitary(u, "rand", qs...))
			}
		}
	})
}

// TestKernelEquivalenceParallel forces the worker-pool path by dropping
// ParallelThreshold to 1, covering chunked execution and the low/high qubit
// position extremes of each strided kernel.
func TestKernelEquivalenceParallel(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	r := rng.New(7)
	const n = 10
	st := randomState(n, r)
	gates := []gate.Gate{
		gate.New(gate.KindH, 0),
		gate.New(gate.KindH, n-1),
		gate.New(gate.KindX, 0),
		gate.New(gate.KindX, n-1),
		gate.New(gate.KindZ, n/2),
		gate.NewParam(gate.KindRZ, []float64{0.9}, 0),
		gate.NewParam(gate.KindP, []float64{1.2}, n-1),
		gate.New(gate.KindCX, 0, 1),
		gate.New(gate.KindCX, n-1, 0),
		gate.New(gate.KindCX, n-1, n-2),
		gate.New(gate.KindCZ, 0, n-1),
		gate.NewParam(gate.KindCP, []float64{0.4}, 1, n-2),
		gate.NewParam(gate.KindCRX, []float64{0.7}, 0, 1),
		gate.NewParam(gate.KindCRX, []float64{0.7}, n-1, n-2),
		gate.New(gate.KindSWAP, 0, n-1),
		gate.New(gate.KindCCX, 0, n/2, n-1),
	}
	for _, g := range gates {
		checkGate(t, st, g)
	}
	// The full gate-kind grid again, now on the chunked pool path: every
	// kind that passed serially must agree when its sweep is split across
	// workers.
	for _, kind := range allKinds {
		for trial := 0; trial < 3; trial++ {
			checkGate(t, st, randomGate(kind, n, r))
		}
	}
	for _, arity := range []int{1, 2, 3} {
		u := qmath.RandomUnitary(1<<uint(arity), r)
		checkGate(t, st, gate.NewUnitary(u, "rand", randomQubits(n, arity, r)...))
	}
}

// TestKernelEquivalenceWide crosses the real ParallelThreshold so the
// chunked pool path runs at production chunk sizes.
func TestKernelEquivalenceWide(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-register equivalence skipped in -short")
	}
	r := rng.New(99)
	const n = 16
	st := randomState(n, r)
	for _, g := range []gate.Gate{
		gate.New(gate.KindH, 0),
		gate.New(gate.KindH, n-1),
		gate.New(gate.KindCX, 2, 11),
		gate.New(gate.KindCX, 15, 3),
		gate.New(gate.KindCZ, 0, 15),
		gate.NewParam(gate.KindRZ, []float64{0.31}, 9),
		gate.NewParam(gate.KindCRY, []float64{1.1}, 4, 13),
	} {
		checkGate(t, st, g)
	}
}

// TestProb1Equivalence checks the strided subspace Prob1 against a naive
// full scan, serial and forced-parallel.
func TestProb1Equivalence(t *testing.T) {
	r := rng.New(5)
	for _, force := range []bool{false, true} {
		name := "serial"
		if force {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			if force {
				old := ParallelThreshold
				ParallelThreshold = 1
				defer func() { ParallelThreshold = old }()
			}
			for _, n := range []int{1, 3, 8, 12} {
				st := randomState(n, r)
				for q := 0; q < n; q++ {
					var want float64
					for i, a := range st.Amplitudes() {
						if i>>uint(q)&1 == 1 {
							want += real(a)*real(a) + imag(a)*imag(a)
						}
					}
					got := st.Prob1(q)
					if diff := got - want; diff > 1e-12 || diff < -1e-12 {
						t.Fatalf("n=%d q=%d: Prob1=%g want %g", n, q, got, want)
					}
				}
			}
		})
	}
}

// TestApplyDiag1QAndApplyX covers the exported scratch-free noise entry
// points against the generic matrix path.
func TestApplyDiag1QAndApplyX(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 6; trial++ {
		n := 1 + r.Intn(8)
		q := r.Intn(n)
		st := randomState(n, r)
		d0 := complex(r.NormFloat64(), r.NormFloat64())
		d1 := complex(r.NormFloat64(), r.NormFloat64())
		ref := st.Clone()
		ref.Apply1Q(q, qmath.FromRows([][]complex128{{d0, 0}, {0, d1}}))
		got := st.Clone()
		got.ApplyDiag1Q(q, d0, d1)
		for i := range ref.Amplitudes() {
			d := got.Amplitude(uint64(i)) - ref.Amplitude(uint64(i))
			if real(d)*real(d)+imag(d)*imag(d) > equivTol*equivTol {
				t.Fatalf("ApplyDiag1Q(%d, %v, %v) mismatch at %d", q, d0, d1, i)
			}
		}
		gotX := st.Clone()
		gotX.ApplyX(q)
		refX := st.Clone()
		refX.Apply(gate.New(gate.KindX, q))
		for i := range refX.Amplitudes() {
			if gotX.Amplitude(uint64(i)) != refX.Amplitude(uint64(i)) {
				t.Fatalf("ApplyX(%d) mismatch at %d", q, i)
			}
		}
	}
}

// TestParallelForCoversRange guards the pool's chunking: every index must be
// visited exactly once for a spread of sizes around chunk boundaries.
func TestParallelForCoversRange(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	for _, n := range []int{1, 2, minChunk - 1, minChunk, minChunk + 1, 3*minChunk + 17, 1 << 15} {
		hits := make([]int32, n)
		parallelFor(n, func(start, end int) {
			for i := start; i < end; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

// TestParallelSumDeterministic checks that the chunk-ordered reduction gives
// bit-identical results across repeated parallel evaluations.
func TestParallelSumDeterministic(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	n := 1<<15 + 331
	vals := make([]float64, n)
	r := rng.New(3)
	for i := range vals {
		vals[i] = r.NormFloat64()
	}
	sum := func() float64 {
		return parallelSum(n, func(start, end int) float64 {
			var s float64
			for _, v := range vals[start:end] {
				s += v
			}
			return s
		})
	}
	want := sum()
	for trial := 0; trial < 20; trial++ {
		if got := sum(); got != want {
			t.Fatalf("trial %d: sum %v != first run %v", trial, got, want)
		}
	}
}

// TestPoolConcurrentKernels drives many goroutines through the shared pool
// at once — the shape of parallel tree execution — to shake out job
// interference (run with -race).
func TestPoolConcurrentKernels(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	r := rng.New(17)
	const n = 8
	ref := randomState(n, r)
	g := gate.New(gate.KindH, 3)
	want := ref.Clone()
	want.Apply(g)
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func() {
			st := ref.Clone()
			for iter := 0; iter < 50; iter++ {
				st.Apply(g)
				st.Apply(g) // H^2 = I
			}
			st.Apply(g)
			for i := range want.Amplitudes() {
				d := st.Amplitude(uint64(i)) - want.Amplitude(uint64(i))
				if real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
					done <- fmt.Errorf("amplitude %d diverged", i)
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestAmplitudeRoundTrip pins the SoA boundary contract: interleaved
// amplitudes survive FromAmplitudes -> Amplitudes and SetAmplitudes ->
// Amplitudes unchanged, Amplitudes returns a snapshot (not a view), and
// Components / FromComponents write through to the same planes.
func TestAmplitudeRoundTrip(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 8; trial++ {
		n := 1 + r.Intn(10)
		amps := make([]complex128, 1<<uint(n))
		for i := range amps {
			amps[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		st := FromAmplitudes(amps)
		got := st.Amplitudes()
		for i := range amps {
			if got[i] != amps[i] {
				t.Fatalf("n=%d: FromAmplitudes round trip differs at %d: %v != %v", n, i, got[i], amps[i])
			}
		}
		// Amplitudes is a copy: clobbering it must not touch the state.
		for i := range got {
			got[i] = 0
		}
		if st.Amplitude(0) != amps[0] {
			t.Fatal("Amplitudes returned an aliasing slice")
		}
		// SetAmplitudes overwrites in place.
		for i := range amps {
			amps[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		st.SetAmplitudes(amps)
		for i, want := range amps {
			if st.Amplitude(uint64(i)) != want {
				t.Fatalf("SetAmplitudes differs at %d", i)
			}
		}
		// Components aliases the planes; FromComponents adopts without copy.
		re, im := st.Components()
		re[0], im[0] = 42, -7
		if st.Amplitude(0) != complex(42, -7) {
			t.Fatal("Components did not write through")
		}
		adopted := FromComponents(re, im)
		adopted.SetAmplitude(1, complex(3, 4))
		if st.Amplitude(1) != complex(3, 4) {
			t.Fatal("FromComponents copied instead of adopting")
		}
	}
}

// TestViewAliasing checks that View windows alias the parent planes: kernel
// mutations through a view land in the parent, and amplitudes outside the
// window are untouched. This is the contract cluster mode's zero-copy shard
// windows rely on.
func TestViewAliasing(t *testing.T) {
	r := rng.New(29)
	const n = 8
	st := randomState(n, r)
	before := st.Amplitudes()
	const start, length = 64, 32 // a 5-qubit window
	v := st.View(start, length)
	if v.NumQubits() != 5 || v.Dim() != length {
		t.Fatalf("View dims: n=%d dim=%d", v.NumQubits(), v.Dim())
	}
	v.Apply(gate.New(gate.KindH, 2))
	after := st.Amplitudes()
	changed := false
	for i := range after {
		inWindow := i >= start && i < start+length
		if !inWindow && after[i] != before[i] {
			t.Fatalf("amplitude %d outside view window changed", i)
		}
		if inWindow && after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("kernel through view did not write through to parent")
	}
	// Direct writes through the view also land in the parent.
	v.SetAmplitude(0, complex(9, 9))
	if st.Amplitude(start) != complex(9, 9) {
		t.Fatal("SetAmplitude through view did not alias parent")
	}
}

// TestApplyPhaseRunEquivalence drives the fused controlled-phase run against
// the obvious reference — the same gates applied one ApplyCPhase at a time —
// across every sweep shape the kernel special-cases: anchor above the support
// (the QFT row shape, lowest support qubit 0), anchor below the support,
// anchor in the middle with a nonzero support floor, unsorted and duplicated
// run qubits, table-width chunking, and the tiny-register floor where the
// table bound collapses to one gate per pass. Serial and forced-parallel.
func TestApplyPhaseRunEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		anchor int
		qubits []int
		real   bool // purely real phases exercise the realP scale path
	}{
		{name: "anchor-high-support-at-zero", n: 12, anchor: 9, qubits: []int{0, 1, 2, 3}},
		{name: "anchor-below-support", n: 12, anchor: 0, qubits: []int{5, 7, 9}},
		{name: "anchor-mid-support-floor", n: 12, anchor: 6, qubits: []int{2, 4, 9, 11}},
		{name: "singleton", n: 12, anchor: 4, qubits: []int{8}},
		{name: "unsorted", n: 12, anchor: 11, qubits: []int{7, 2, 9, 0}},
		{name: "duplicates", n: 12, anchor: 10, qubits: []int{3, 5, 3}},
		{name: "chunked", n: 10, anchor: 9, qubits: []int{0, 1, 2, 3, 4}},
		{name: "tiny-register-floor", n: 6, anchor: 5, qubits: []int{0, 1, 2}},
		{name: "real-phases", n: 12, anchor: 8, qubits: []int{1, 3, 10}, real: true},
	}
	for _, force := range []bool{false, true} {
		mode := "serial"
		if force {
			mode = "parallel"
		}
		t.Run(mode, func(t *testing.T) {
			if force {
				old := ParallelThreshold
				ParallelThreshold = 1
				defer func() { ParallelThreshold = old }()
			}
			r := rng.New(31)
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					st := randomState(tc.n, r)
					phases := make([]complex128, len(tc.qubits))
					for i := range phases {
						if tc.real {
							phases[i] = complex(r.NormFloat64(), 0)
						} else {
							phases[i] = complex(r.NormFloat64(), r.NormFloat64())
						}
					}
					ref := st.Clone()
					for j, q := range tc.qubits {
						ref.ApplyCPhase(tc.anchor, q, phases[j])
					}
					got := st.Clone()
					got.ApplyPhaseRun(tc.anchor, tc.qubits, phases)
					exact := len(tc.qubits) == 1 // doc: a run of one is bit-identical
					for i := 0; i < ref.Dim(); i++ {
						d := got.Amplitude(uint64(i)) - ref.Amplitude(uint64(i))
						if exact && d != 0 {
							t.Fatalf("singleton run not bit-identical at %d: %v vs %v",
								i, got.Amplitude(uint64(i)), ref.Amplitude(uint64(i)))
						}
						if real(d)*real(d)+imag(d)*imag(d) > equivTol*equivTol {
							t.Fatalf("amplitude %d: fused %v vs sequential %v",
								i, got.Amplitude(uint64(i)), ref.Amplitude(uint64(i)))
						}
					}
				})
			}
		})
	}
}

// TestApplyDiag2QEquivalence checks the one-pass diagonal 4x4 kernel against
// the dense Apply2Q path with the same diagonal, including unit entries that
// trigger the kernel's skip fast path.
func TestApplyDiag2QEquivalence(t *testing.T) {
	r := rng.New(37)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(8)
		qs := randomQubits(n, 2, r)
		var d [4]complex128
		for i := range d {
			if r.Intn(3) == 0 {
				d[i] = 1 // exercise the skip[sel] branch
			} else {
				d[i] = complex(r.NormFloat64(), r.NormFloat64())
			}
		}
		st := randomState(n, r)
		ref := st.Clone()
		ref.Apply2Q(qs[0], qs[1], qmath.FromRows([][]complex128{
			{d[0], 0, 0, 0},
			{0, d[1], 0, 0},
			{0, 0, d[2], 0},
			{0, 0, 0, d[3]},
		}))
		got := st.Clone()
		got.ApplyDiag2Q(qs[0], qs[1], d[0], d[1], d[2], d[3])
		for i := 0; i < ref.Dim(); i++ {
			diff := got.Amplitude(uint64(i)) - ref.Amplitude(uint64(i))
			if real(diff)*real(diff)+imag(diff)*imag(diff) > equivTol*equivTol {
				t.Fatalf("trial %d (q0=%d q1=%d): amplitude %d: diag %v vs dense %v",
					trial, qs[0], qs[1], i, got.Amplitude(uint64(i)), ref.Amplitude(uint64(i)))
			}
		}
	}
}
